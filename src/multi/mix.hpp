// tdn::multi — multiprogram colocation on one shared NUCA substrate.
//
// A mix describes N independent task-dataflow applications co-scheduled on
// disjoint (or overlapping) core partitions of a single TiledSystem-class
// machine: one event queue, one NoC, one banked LLC and one DRAM subsystem,
// N runtimes. Mixes are spelled as '+'-joined workload names ("gauss+histo")
// so they flow through the existing RunConfig / results-cache plumbing as
// ordinary workload strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/tile_mask.hpp"
#include "common/types.hpp"

namespace tdn::multi {

/// Virtual-address stride between colocated apps: app k's VirtualSpace
/// starts at k * kAppStride + mem::kHeapBase, so app streams can never
/// alias and the owning app of any address is just its top bits.
inline constexpr Addr kAppStride = Addr{1} << 40;  // 1 TiB

inline unsigned app_of_vaddr(Addr vaddr) noexcept {
  return static_cast<unsigned>(vaddr / kAppStride);
}

/// Split a mesh_w x mesh_h mesh into @p n row-granular tile partitions:
/// partition k owns rows [k*h/n, (k+1)*h/n). Rows keep each partition
/// spatially contiguous (its banks are its cores' nearest), which is what a
/// colocation-aware OS scheduler would hand out. Requires mesh_h % n == 0.
/// Shared by MultiProgramSystem (per-app partitions) and serve::ServeSystem
/// (per-slot partitions).
std::vector<CoreMask> row_partitions(unsigned mesh_w, unsigned mesh_h,
                                     unsigned n);

enum class PartitionMode : std::uint8_t {
  /// Each app's NUCA policy is confined to its own bank rows (and, for
  /// TD-NUCA, its replication clusters are clipped to them); optionally a
  /// CAT-style way quota is stacked on top.
  Partitioned,
  /// Free-for-all: every app's policy maps across the whole LLC and apps
  /// contend for capacity — the ablation baseline.
  Shared,
};

const char* to_string(PartitionMode m);

/// Colocation knobs. Fingerprinted via canonical(): two runs with different
/// options never share a results-cache entry.
struct MultiOptions {
  PartitionMode mode = PartitionMode::Partitioned;
  /// Per-app LLC way quota inside every set (Partitioned mode only);
  /// 0 disables way partitioning. num_apps * ways_per_app must fit the
  /// LLC associativity.
  unsigned ways_per_app = 0;
  /// All apps schedule on all cores and contend for them task-by-task
  /// instead of owning disjoint partitions. Per-app LLC counters are then
  /// attributed by each core's round-robin home app (a documented
  /// approximation; the per-app makespans remain exact).
  bool overlap_cores = false;

  std::string canonical() const;  ///< e.g. "part/w4/ovl0", for fingerprints
};

/// A parsed '+'-joined mix. Single names parse to a one-app spec, which
/// run_experiment treats as an ordinary single-program run.
struct MixSpec {
  std::vector<std::string> apps;

  /// Parse "gauss+histo+jacobi". Every component must be a valid workload
  /// name (make_workload's set); unknown names fail loudly listing the
  /// valid ones.
  static MixSpec parse(std::string_view text);

  bool is_multi() const noexcept { return apps.size() > 1; }
  std::string joined() const;  ///< canonical '+'-joined form
};

}  // namespace tdn::multi
