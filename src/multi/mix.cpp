#include "multi/mix.hpp"

#include <sstream>

#include "common/require.hpp"
#include "workloads/workload.hpp"

namespace tdn::multi {

std::vector<CoreMask> row_partitions(unsigned mesh_w, unsigned mesh_h,
                                     unsigned n) {
  TDN_REQUIRE(n >= 1, "at least one partition");
  TDN_REQUIRE(mesh_h % n == 0,
              "mesh height must divide evenly into per-partition rows");
  const unsigned rows_each = mesh_h / n;
  std::vector<CoreMask> part(n);
  for (unsigned k = 0; k < n; ++k)
    for (unsigned r = k * rows_each; r < (k + 1) * rows_each; ++r)
      for (unsigned x = 0; x < mesh_w; ++x) part[k].set(r * mesh_w + x);
  return part;
}

const char* to_string(PartitionMode m) {
  switch (m) {
    case PartitionMode::Partitioned: return "partitioned";
    case PartitionMode::Shared: return "shared";
  }
  return "?";
}

std::string MultiOptions::canonical() const {
  std::ostringstream os;
  os << (mode == PartitionMode::Partitioned ? "part" : "shared") << "/w"
     << ways_per_app << "/ovl" << (overlap_cores ? 1 : 0);
  return os.str();
}

MixSpec MixSpec::parse(std::string_view text) {
  MixSpec mix;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t plus = text.find('+', start);
    const std::string_view part =
        text.substr(start, plus == std::string_view::npos ? std::string_view::npos
                                                          : plus - start);
    TDN_REQUIRE(!part.empty(), "empty component in mix: '" +
                                   std::string(text) + "'");
    TDN_REQUIRE(workloads::is_valid_workload(part),
                "unknown workload '" + std::string(part) + "' in mix '" +
                    std::string(text) +
                    "' (valid: " + workloads::valid_workload_names() + ")");
    mix.apps.emplace_back(part);
    if (plus == std::string_view::npos) break;
    start = plus + 1;
  }
  TDN_REQUIRE(!mix.apps.empty(), "empty mix");
  return mix;
}

std::string MixSpec::joined() const {
  std::string s;
  for (const std::string& a : apps) {
    if (!s.empty()) s += '+';
    s += a;
  }
  return s;
}

}  // namespace tdn::multi
