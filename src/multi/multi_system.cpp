#include "multi/multi_system.hpp"

#include <string>

#include "common/require.hpp"
#include "energy/energy_model.hpp"
#include "obs/recorder.hpp"
#include "system/sim_exec.hpp"

namespace tdn::multi {

MultiProgramSystem::MultiProgramSystem(system::SystemConfig cfg, MixSpec mix,
                                       MultiOptions opts, obs::Recorder* rec)
    : cfg_(cfg), opts_(opts), rec_(rec), mesh_(cfg.mesh_w, cfg.mesh_h),
      page_table_(cfg.page_table, cfg.vm) {
  const unsigned n = cfg_.num_cores();
  const unsigned num_apps = static_cast<unsigned>(mix.apps.size());
  TDN_REQUIRE(num_apps >= 1, "a mix needs at least one app");
  TDN_REQUIRE(num_apps <= n, "more apps than cores");
  TDN_REQUIRE(cfg_.policy != system::PolicyKind::TdNucaDryRun,
              "TdNucaDryRun is a single-program overhead study; "
              "not supported in multiprogram mode");

  net_ = std::make_unique<noc::Network>(mesh_, eq_, cfg_.network);

  // Memory controllers: identical placement to TiledSystem, so a 1-app mix
  // simulates the very machine the single-program harness builds.
  std::vector<CoreId> mc_tiles;
  std::vector<CoreId> edge_tiles;
  for (unsigned x = 0; x < cfg_.mesh_w; ++x) {
    edge_tiles.push_back(x);
    edge_tiles.push_back((cfg_.mesh_h - 1) * cfg_.mesh_w + x);
  }
  for (unsigned i = 0; i < cfg_.num_memory_controllers; ++i)
    mc_tiles.push_back(edge_tiles[i % edge_tiles.size()]);
  mcs_ = std::make_unique<mem::MemControllers>(cfg_.num_memory_controllers,
                                               mc_tiles, cfg_.dram);

  // --- core / bank partitions ------------------------------------------
  // Row-granular split (multi::row_partitions): app a owns mesh rows
  // [a*rpa, (a+1)*rpa).
  const unsigned rows_per_app = cfg_.mesh_h / std::max(num_apps, 1u);
  const std::vector<CoreMask> part =
      row_partitions(cfg_.mesh_w, cfg_.mesh_h, num_apps);

  // --- per-app address spaces + NUCA policies --------------------------
  apps_.reserve(num_apps);
  std::vector<nuca::MappingPolicy*> app_policies;
  for (unsigned a = 0; a < num_apps; ++a) {
    apps_.push_back(std::make_unique<App>(a * kAppStride + mem::kHeapBase));
    App& app = *apps_.back();
    app.workload_name = mix.apps[a];
    app.cores = opts_.overlap_cores ? CoreMask::first_n(n) : part[a];
    app.banks =
        opts_.mode == PartitionMode::Partitioned ? part[a] : BankMask{};

    switch (cfg_.policy) {
      case system::PolicyKind::SNuca:
        app.snuca = std::make_unique<nuca::SNucaPolicy>(
            n, cfg_.hierarchy.l1.line_size);
        app.policy = app.snuca.get();
        break;
      case system::PolicyKind::RNuca:
        app.rnuca = std::make_unique<nuca::RNucaPolicy>(mesh_, n, page_table_,
                                                        cfg_.rnuca);
        app.policy = app.rnuca.get();
        break;
      case system::PolicyKind::TdNuca:
      case system::PolicyKind::TdNucaBypassOnly: {
        auto td_cfg = cfg_.tdnuca;
        td_cfg.bypass_only =
            (cfg_.policy == system::PolicyKind::TdNucaBypassOnly);
        app.tdnuca = std::make_unique<nuca::TdNucaPolicy>(mesh_, n, td_cfg);
        app.policy = app.tdnuca.get();
        break;
      }
      case system::PolicyKind::TdNucaDryRun:
        break;  // rejected above
    }
    if (opts_.mode == PartitionMode::Partitioned)
      app.policy->set_partition(app.banks, part[a]);
    app_policies.push_back(app.policy);
  }

  router_ = std::make_unique<AppRouter>(app_policies);
  // The hierarchy's set_ops lands on the router, which fans it out.
  caches_ = std::make_unique<coherence::CoherentSystem>(
      eq_, *net_, mesh_, *mcs_, *router_, cfg_.hierarchy, n, rec_);

  // --- per-app LLC accounting (+ optional way quotas) -------------------
  coherence::CoherentSystem::AppView view;
  view.num_apps = num_apps;
  view.core_app.resize(n);
  for (unsigned c = 0; c < n; ++c) {
    view.core_app[c] =
        opts_.overlap_cores
            ? static_cast<std::uint8_t>(c % num_apps)  // home-app attribution
            : static_cast<std::uint8_t>(c / (rows_per_app * cfg_.mesh_w));
  }
  if (opts_.mode == PartitionMode::Partitioned && opts_.ways_per_app > 0) {
    TDN_REQUIRE(num_apps * opts_.ways_per_app <=
                    cfg_.hierarchy.llc_bank.associativity,
                "way quotas exceed LLC associativity");
    view.ways.resize(num_apps);
    for (unsigned a = 0; a < num_apps; ++a)
      view.ways[a] = {a * opts_.ways_per_app, opts_.ways_per_app};
  }
  caches_->set_app_view(std::move(view));

  // --- cores ------------------------------------------------------------
  cores_.reserve(n);
  std::vector<vm::Mmu*> mmus;
  for (unsigned i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<core::SimCore>(
        i, eq_, *caches_, page_table_, cfg_.core, cfg_.tlb, cfg_.vm));
    mmus.push_back(&cores_.back()->mmu());
  }
  for (auto& app : apps_)
    if (app->rnuca) app->rnuca->set_mmus(mmus);

  // --- per-app runtimes -------------------------------------------------
  for (unsigned a = 0; a < num_apps; ++a) {
    App& app = *apps_[a];
    switch (cfg_.scheduler) {
      case system::SchedulerKind::Fifo:
        app.scheduler = std::make_unique<runtime::FifoScheduler>();
        break;
      case system::SchedulerKind::Affinity:
        app.scheduler = std::make_unique<runtime::AffinityScheduler>();
        break;
    }
    runtime::RuntimeHooks* hooks = nullptr;
    if (app.tdnuca) {
      auto hooks_cfg = cfg_.hooks;
      hooks_cfg.line_size = cfg_.hierarchy.l1.line_size;
      app.hooks_td = std::make_unique<tdnuca::TdNucaRuntimeHooks>(
          *app.tdnuca, page_table_, n, hooks_cfg, rec_);
      hooks = app.hooks_td.get();
    } else {
      app.hooks_base = std::make_unique<runtime::RuntimeHooks>();
      hooks = app.hooks_base.get();
    }
    std::vector<core::SimCore*> core_ptrs;
    app.cores.for_each([&](CoreId c) { core_ptrs.push_back(cores_[c].get()); });
    // Distinct jitter streams: co-scheduled runtimes must not mirror each
    // other's dispatch noise (and a shared stream would make results depend
    // on app completion interleaving).
    auto rt_cfg = cfg_.runtime;
    rt_cfg.jitter_seed += 0x9E3779B97F4A7C15ull * a;
    app.rt = std::make_unique<runtime::RuntimeSystem>(
        eq_, core_ptrs, *app.scheduler, *hooks, rt_cfg, rec_);
    if (app.hooks_td) app.hooks_td->set_runtime(app.rt.get());
    if (auto* aff =
            dynamic_cast<runtime::AffinityScheduler*>(app.scheduler.get()))
      aff->set_tasks(&app.rt->tasks());
  }

  // --- fault injection --------------------------------------------------
  if (!cfg_.fault.plan.empty()) {
    fault::FaultInjector::Targets t;
    t.eq = &eq_;
    t.mesh = &mesh_;
    t.net = net_.get();
    t.caches = caches_.get();
    t.mcs = mcs_.get();
    // No RRT scrub target: each app owns its own RRT set, and the policies'
    // in-map health guards already mask dead banks out of stale entries.
    t.tdnuca = nullptr;
    t.rec = rec_;
    injector_ = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(cfg_.fault.plan), cfg_.fault, t, n,
        cfg_.hierarchy.l1.line_size);
    const fault::HealthState* hs = &injector_->health();
    for (auto& app : apps_) {
      app->policy->set_health(hs);
      if (app->hooks_td) app->hooks_td->set_health(hs);
    }
    caches_->set_health(hs);
    net_->set_health(hs);
  }

  if (rec_ != nullptr) register_observability();
}

MultiProgramSystem::~MultiProgramSystem() = default;

void MultiProgramSystem::build(const workloads::WorkloadParams& params) {
  TDN_REQUIRE(!built_, "build() already called");
  built_ = true;
  for (unsigned a = 0; a < num_apps(); ++a) {
    App& app = *apps_[a];
    workloads::WorkloadParams p = params;
    // Decorrelate identical workloads: "gauss+gauss" must model two
    // independent instances, not one program mirrored.
    p.seed = params.seed + 1000003ull * a;
    app.workload = workloads::make_workload(app.workload_name, p);
    app.workload->build(
        workloads::BuildContext{app.vspace, *app.rt});
    TDN_REQUIRE(app.vspace.footprint() < kAppStride,
                "app footprint overflows its address-space slot");
  }
}

Cycle MultiProgramSystem::run(Cycle cycle_limit) {
  TDN_REQUIRE(built_, "call build() before run()");
  completed_ = false;
  if (rec_ != nullptr) rec_->arm(eq_);
  if (injector_) injector_->arm();
  unsigned remaining = num_apps();
  for (unsigned a = 0; a < num_apps(); ++a) {
    apps_[a]->done = false;
    apps_[a]->rt->run([this, a, &remaining] {
      apps_[a]->done = true;
      if (--remaining == 0) completed_ = true;
    });
  }
  if (opts_.overlap_cores) {
    // Apps contend for cores task-by-task: when one app frees a core, every
    // co-runner gets a chance to claim it.
    for (unsigned a = 0; a < num_apps(); ++a) {
      apps_[a]->rt->set_on_task_complete([this, a] {
        for (unsigned b = 0; b < num_apps(); ++b)
          if (b != a && !apps_[b]->done) apps_[b]->rt->kick();
      });
    }
  }
  system::run_event_queue(eq_, cfg_, cycle_limit);
  TDN_REQUIRE(completed_, "mix drained without completing every app");
  Cycle makespan = 0;
  for (const auto& app : apps_)
    makespan = std::max(makespan, app->rt->makespan());
  return makespan;
}

void MultiProgramSystem::register_observability() {
  const unsigned n = cfg_.num_cores();
  rec_->attach_clock(&eq_);
  if (obs::LatencyAttribution* attr = rec_->attribution()) {
    net_->set_transit_sinks(&attr->noc_transit(0), &attr->noc_transit(1));
    for (unsigned m = 0; m < mcs_->count(); ++m)
      mcs_->mc(m).set_queue_sink(&attr->dram_queue());
  }
  for (unsigned i = 0; i < n; ++i)
    rec_->set_track_name(i, "core " + std::to_string(i));
  rec_->set_track_name(obs::Recorder::kRuntimeTrack, "runtime");
  rec_->set_track_name(obs::Recorder::kFlushTrack, "flush engine");
  rec_->set_track_name(obs::Recorder::kCoherenceTrack, "coherence");

  // --- machine-level series and heatmaps (as in TiledSystem) --------------
  for (unsigned b = 0; b < n; ++b) {
    rec_->add_series(
        "llc.bank" + std::to_string(b) + ".hit_ratio",
        [this, b, ph = std::uint64_t{0}, pm = std::uint64_t{0}]() mutable {
          const auto& c = caches_->bank_counters(b);
          const std::uint64_t dh = c.hits - ph;
          const std::uint64_t dm = c.misses - pm;
          ph = c.hits;
          pm = c.misses;
          return (dh + dm) > 0
                     ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                     : 0.0;
        });
    rec_->add_series("llc.bank" + std::to_string(b) + ".occupancy",
                     [this, b] {
                       return static_cast<double>(
                                  caches_->bank_occupied_lines(b)) /
                              static_cast<double>(
                                  caches_->bank_capacity_lines());
                     });
  }
  const double link_cap =
      static_cast<double>(cfg_.network.link_bytes_per_cycle);
  for (unsigned t = 0; t < n; ++t) {
    for (unsigned d = 0; d < noc::Network::kLinkDirs; ++d) {
      if (!net_->has_link(t, d)) continue;
      rec_->add_series(
          "noc.t" + std::to_string(t) + "." + noc::Network::dir_name(d) +
              ".util",
          [this, t, d, link_cap, prev = std::uint64_t{0}]() mutable {
            const std::uint64_t cur = net_->link_bytes(t, d);
            const double delta = static_cast<double>(cur - prev);
            prev = cur;
            const double full =
                link_cap * static_cast<double>(rec_->config().epoch_cycles);
            return full > 0 ? delta / full : 0.0;
          });
    }
  }
  for (unsigned m = 0; m < cfg_.num_memory_controllers; ++m) {
    rec_->add_series("dram.mc" + std::to_string(m) + ".backlog", [this, m] {
      const auto& mc = mcs_->mc(m);
      const Cycle now = eq_.now();
      if (mc.busy_until() <= now) return 0.0;
      return static_cast<double>(mc.busy_until() - now) /
             static_cast<double>(mc.config().service_interval);
    });
  }
  if (injector_) {
    rec_->set_track_name(obs::Recorder::kFaultTrack, "faults");
    rec_->add_series("fault.healthy_banks", [this] {
      return static_cast<double>(injector_->health().num_healthy());
    });
  }
  const unsigned w = cfg_.mesh_w;
  const unsigned h = cfg_.mesh_h;
  rec_->add_heatmap("llc_bank_accesses", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b) {
      const auto& c = caches_->bank_counters(b);
      v[b] = static_cast<double>(c.requests + c.writebacks);
    }
    return v;
  });
  rec_->add_heatmap("llc_bank_hits", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b)
      v[b] = static_cast<double>(caches_->bank_counters(b).hits);
    return v;
  });
  rec_->add_heatmap("noc_router_bytes", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned t = 0; t < n; ++t)
      v[t] = static_cast<double>(net_->router_bytes_at(t));
    return v;
  });
  rec_->add_heatmap("cross_app_conflicts", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b)
      v[b] = static_cast<double>(caches_->bank_cross_app_conflicts(b));
    return v;
  });

  const double cap = static_cast<double>(caches_->bank_capacity_lines()) *
                     static_cast<double>(n);
  for (unsigned a = 0; a < num_apps(); ++a) {
    // Where each app's footprint actually lives — the colocation heatmap.
    rec_->add_heatmap("app" + std::to_string(a) + "_resident_lines", cfg_.mesh_w,
                      cfg_.mesh_h, [this, a, n] {
                        std::vector<double> v(n);
                        for (unsigned b = 0; b < n; ++b)
                          v[b] = static_cast<double>(
                              caches_->app_resident_lines(a, b));
                        return v;
                      });
  }
  for (unsigned a = 0; a < num_apps(); ++a) {
    const std::string p = "app" + std::to_string(a);
    rec_->add_series(p + ".llc.occupancy", [this, a, cap] {
      return static_cast<double>(caches_->app_resident_lines(a)) / cap;
    });
    rec_->add_series(
        p + ".llc.hit_ratio",
        [this, a, ph = std::uint64_t{0}, pm = std::uint64_t{0}]() mutable {
          const auto& c = caches_->app_counters(a);
          const std::uint64_t dh = c.llc_hits - ph;
          const std::uint64_t dm = c.llc_misses - pm;
          ph = c.llc_hits;
          pm = c.llc_misses;
          return (dh + dm) > 0
                     ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                     : 0.0;
        });
    rec_->add_series(p + ".tasks.completed", [this, a] {
      return static_cast<double>(apps_[a]->rt->tasks_completed());
    });
    rec_->add_series(p + ".runtime.ready_tasks", [this, a] {
      return static_cast<double>(apps_[a]->scheduler->size());
    });
  }
  rec_->add_series("multi.cross_app_conflicts", [this] {
    return static_cast<double>(caches_->cross_app_conflicts());
  });
}

stats::Registry MultiProgramSystem::collect_stats() const {
  stats::Registry r;
  const unsigned n = cfg_.num_cores();
  const auto& cs = caches_->stats();

  Cycle makespan = 0;
  std::size_t tasks = 0;
  for (const auto& app : apps_) {
    makespan = std::max(makespan, app->rt->makespan());
    tasks += app->rt->tasks_completed();
  }
  r.set("sim.cycles", static_cast<double>(makespan));
  r.set("sim.events", static_cast<double>(eq_.executed()));
  r.set("tasks.completed", static_cast<double>(tasks));
  r.set("l1.hits", static_cast<double>(cs.l1_hits.value()));
  r.set("l1.misses", static_cast<double>(cs.l1_misses.value()));
  r.set("llc.requests", static_cast<double>(cs.llc_requests.value()));
  r.set("llc.hits", static_cast<double>(cs.llc_hits.value()));
  r.set("llc.misses", static_cast<double>(cs.llc_misses.value()));
  r.set("llc.writebacks", static_cast<double>(cs.llc_writebacks.value()));
  r.set("llc.accesses", static_cast<double>(caches_->llc_accesses()));
  r.set("llc.hit_ratio", caches_->llc_hit_ratio());
  r.set("llc.bypass_reads", static_cast<double>(cs.bypass_reads.value()));
  r.set("cache.forced_unsafe_evictions",
        static_cast<double>(caches_->forced_unsafe_evictions()));
  for (unsigned b = 0; b < n; ++b) {
    const auto& bc = caches_->bank_counters(b);
    const std::string p = "llc.bank" + std::to_string(b);
    r.set(p + ".requests", static_cast<double>(bc.requests));
    r.set(p + ".hits", static_cast<double>(bc.hits));
    r.set(p + ".misses", static_cast<double>(bc.misses));
    r.set(p + ".writebacks", static_cast<double>(bc.writebacks));
    r.set(p + ".cross_app_conflicts",
          static_cast<double>(caches_->bank_cross_app_conflicts(b)));
  }
  r.set("nuca.mean_distance", cs.nuca_distance.mean());
  r.set("l1.mean_miss_latency", cs.miss_latency.mean());
  r.set("noc.router_bytes", static_cast<double>(net_->total_router_bytes()));
  r.set("noc.messages", static_cast<double>(net_->messages()));
  r.set("dram.accesses", static_cast<double>(mcs_->total_accesses()));

  // Translation aggregates across every core's Mmu (per-core breakdowns are
  // a single-program TiledSystem affordance).
  {
    std::uint64_t tlb_hits = 0, tlb_misses = 0, tlb_shootdowns = 0;
    std::uint64_t walks = 0, walk_loads = 0, psc_hits = 0, l2_hits = 0;
    Cycle walk_cycles = 0, charge_cycles = 0;
    for (const auto& core : cores_) {
      const vm::Mmu& m = core->mmu();
      tlb_hits += m.tlb_hits();
      tlb_misses += m.tlb_misses();
      tlb_shootdowns += m.tlb_shootdowns();
      walks += m.walks();
      walk_loads += m.walk_loads();
      walk_cycles += m.walk_cycles();
      charge_cycles += m.charge_walk_cycles();
      psc_hits += m.psc_hits();
      l2_hits += m.l2_tlb_hits();
    }
    r.set("tlb.hits", static_cast<double>(tlb_hits));
    r.set("tlb.misses", static_cast<double>(tlb_misses));
    r.set("mem.tlb_shootdowns", static_cast<double>(tlb_shootdowns));
    r.set("mem.mapped_pages",
          static_cast<double>(page_table_.mapped_pages()));
    r.set("mem.frames_used", static_cast<double>(page_table_.frames_used()));
    if (cfg_.vm.enabled) {
      r.set("vm.walks", static_cast<double>(walks));
      r.set("vm.walk_loads", static_cast<double>(walk_loads));
      r.set("vm.walk_cycles", static_cast<double>(walk_cycles));
      r.set("vm.isa_walk_cycles", static_cast<double>(charge_cycles));
      r.set("vm.psc_hits", static_cast<double>(psc_hits));
      r.set("vm.l2_tlb_hits", static_cast<double>(l2_hits));
      r.set("vm.pages_4k",
            static_cast<double>(page_table_.pages_of(vm::kPage4K)));
      r.set("vm.pages_2m",
            static_cast<double>(page_table_.pages_of(vm::kPage2M)));
      r.set("vm.pages_1g",
            static_cast<double>(page_table_.pages_of(vm::kPage1G)));
      r.set("vm.huge_fallbacks",
            static_cast<double>(page_table_.huge_fallbacks()));
      r.set("vm.punctured_frames",
            static_cast<double>(page_table_.punctured_frames()));
    }
  }

  std::uint64_t rrt_lookups = 0;
  for (const auto& app : apps_)
    if (app->tdnuca)
      rrt_lookups += app->tdnuca->rrt_hits() + app->tdnuca->rrt_misses();
  const auto e = energy::compute_energy(*caches_, *net_, *mcs_, rrt_lookups,
                                        energy::EnergyParams{});
  r.set("energy.llc_pj", e.llc_pj);
  r.set("energy.noc_pj", e.noc_pj);
  r.set("energy.dram_pj", e.dram_pj);
  r.set("energy.total_pj", e.total_pj());

  // --- colocation aggregates -------------------------------------------
  r.set("multi.num_apps", static_cast<double>(num_apps()));
  r.set("multi.ways_per_app", static_cast<double>(opts_.ways_per_app));
  r.set("multi.partitioned",
        opts_.mode == PartitionMode::Partitioned ? 1.0 : 0.0);
  r.set("multi.overlap_cores", opts_.overlap_cores ? 1.0 : 0.0);
  r.set("multi.cross_app_conflicts",
        static_cast<double>(caches_->cross_app_conflicts()));

  // --- per-app namespaces -----------------------------------------------
  const double llc_cap = static_cast<double>(caches_->bank_capacity_lines()) *
                         static_cast<double>(n);
  for (unsigned a = 0; a < num_apps(); ++a) {
    const App& app = *apps_[a];
    const std::string p = "app" + std::to_string(a);
    r.set(p + ".sim.cycles", static_cast<double>(app.rt->makespan()));
    r.set(p + ".tasks.completed",
          static_cast<double>(app.rt->tasks_completed()));
    r.set(p + ".cores", static_cast<double>(app.cores.count()));
    r.set(p + ".banks", static_cast<double>(
                            app.banks.empty() ? n : app.banks.count()));
    const auto& ac = caches_->app_counters(a);
    r.set(p + ".llc.requests", static_cast<double>(ac.llc_requests));
    r.set(p + ".llc.hits", static_cast<double>(ac.llc_hits));
    r.set(p + ".llc.misses", static_cast<double>(ac.llc_misses));
    r.set(p + ".llc.writebacks", static_cast<double>(ac.llc_writebacks));
    r.set(p + ".llc.bypass_reads", static_cast<double>(ac.bypass_reads));
    r.set(p + ".llc.hit_ratio",
          (ac.llc_hits + ac.llc_misses) > 0
              ? static_cast<double>(ac.llc_hits) /
                    static_cast<double>(ac.llc_hits + ac.llc_misses)
              : 0.0);
    const std::uint64_t resident = caches_->app_resident_lines(a);
    r.set(p + ".llc.resident_lines", static_cast<double>(resident));
    r.set(p + ".llc.occupancy", static_cast<double>(resident) / llc_cap);
    if (app.tdnuca) {
      r.set(p + ".rrt.lookups",
            static_cast<double>(app.tdnuca->rrt_hits() +
                                app.tdnuca->rrt_misses()));
    }
    const auto& ws = app.workload->stats();
    r.set(p + ".workload.input_bytes", static_cast<double>(ws.input_bytes));
    r.set(p + ".workload.num_tasks", static_cast<double>(ws.num_tasks));
    r.set(p + ".workload.num_phases", static_cast<double>(ws.num_phases));
  }
  return r;
}

}  // namespace tdn::multi
