// MultiProgramSystem — N independent task-dataflow applications colocated on
// one shared machine substrate (DESIGN.md Sec. 3, docs/multiprog.md).
//
// Shared between apps: the event queue, mesh/NoC, memory controllers, page
// table and the banked coherent LLC. Per app: a workload, an offset virtual
// address space (mix.hpp's kAppStride keeps streams alias-free), a NUCA
// mapping policy instance (own RRTs / page classifications), a scheduler and
// a RuntimeSystem over that app's core partition. An AppRouter presents the
// per-app policies to the hierarchy as one; the CoherentSystem's AppView
// provides per-app LLC counters, optional way quotas and inter-app
// bank-conflict accounting.
//
// Determinism: one single-threaded event loop drives all apps, per-app PRNG
// seeds derive from the app index alone, so mixes are bit-identical across
// repeated runs and SweepRunner job counts — and cacheable like any run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "coherence/coherent_system.hpp"
#include "core/sim_core.hpp"
#include "fault/injector.hpp"
#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "multi/app_router.hpp"
#include "multi/mix.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/snuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "stats/registry.hpp"
#include "system/config.hpp"
#include "tdnuca/runtime_hooks.hpp"
#include "workloads/workload.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::multi {

class MultiProgramSystem {
 public:
  /// Builds the machine and the per-app runtimes; call build() to create
  /// the task graphs and run() to execute them. @p cfg.policy selects the
  /// NUCA policy *every* app runs (the colocation benchmarks compare
  /// policies, not mixed-policy systems); TdNucaDryRun is not supported.
  /// @p rec (optional) observes only, as in TiledSystem.
  MultiProgramSystem(system::SystemConfig cfg, MixSpec mix,
                     MultiOptions opts = {}, obs::Recorder* rec = nullptr);
  ~MultiProgramSystem();
  MultiProgramSystem(const MultiProgramSystem&) = delete;
  MultiProgramSystem& operator=(const MultiProgramSystem&) = delete;

  /// Instantiate every app's workload into its own runtime and offset
  /// address space. Per-app seeds are derived from @p params.seed and the
  /// app index, so two copies of the same workload never run in lockstep.
  void build(const workloads::WorkloadParams& params);

  /// Run all apps to completion; returns the mix makespan (the cycle the
  /// last app finished). @p cycle_limit guards tests against deadlock.
  Cycle run(Cycle cycle_limit = kNeverCycle);
  bool completed() const noexcept { return completed_; }

  // --- introspection ----------------------------------------------------
  unsigned num_apps() const noexcept {
    return static_cast<unsigned>(apps_.size());
  }
  const std::string& app_name(unsigned a) const {
    return apps_.at(a)->workload_name;
  }
  mem::VirtualSpace& app_vspace(unsigned a) { return apps_.at(a)->vspace; }
  runtime::RuntimeSystem& app_runtime(unsigned a) { return *apps_.at(a)->rt; }
  const CoreMask& app_cores(unsigned a) const { return apps_.at(a)->cores; }
  const BankMask& app_banks(unsigned a) const { return apps_.at(a)->banks; }
  /// The app's completion cycle (its slowdown numerator in WS/ANTT).
  Cycle app_makespan(unsigned a) const { return apps_.at(a)->rt->makespan(); }
  const workloads::WorkloadStats& app_workload_stats(unsigned a) const {
    return apps_.at(a)->workload->stats();
  }
  nuca::TdNucaPolicy* app_tdnuca_policy(unsigned a) {
    return apps_.at(a)->tdnuca.get();
  }

  sim::EventQueue& events() noexcept { return eq_; }
  coherence::CoherentSystem& caches() noexcept { return *caches_; }
  const system::SystemConfig& config() const noexcept { return cfg_; }
  const MultiOptions& options() const noexcept { return opts_; }
  fault::FaultInjector* fault_injector() noexcept { return injector_.get(); }

  /// Global keys mirror TiledSystem::collect_stats; per-app metrics are
  /// namespaced appK.* (appK.sim.cycles, appK.llc.requests, ...), and the
  /// colocation aggregates live under multi.* — see docs/multiprog.md.
  stats::Registry collect_stats() const;

 private:
  struct App {
    explicit App(Addr vspace_base) : vspace(vspace_base) {}
    std::string workload_name;
    mem::VirtualSpace vspace;
    CoreMask cores;
    BankMask banks;  ///< empty in Shared mode (whole LLC)
    std::unique_ptr<nuca::SNucaPolicy> snuca;
    std::unique_ptr<nuca::RNucaPolicy> rnuca;
    std::unique_ptr<nuca::TdNucaPolicy> tdnuca;
    nuca::MappingPolicy* policy = nullptr;
    std::unique_ptr<runtime::Scheduler> scheduler;
    std::unique_ptr<runtime::RuntimeHooks> hooks_base;
    std::unique_ptr<tdnuca::TdNucaRuntimeHooks> hooks_td;
    std::unique_ptr<runtime::RuntimeSystem> rt;
    std::unique_ptr<workloads::Workload> workload;
    bool done = false;
  };

  void register_observability();

  system::SystemConfig cfg_;
  MultiOptions opts_;
  obs::Recorder* rec_ = nullptr;

  sim::EventQueue eq_;
  noc::Mesh mesh_;
  mem::PageTable page_table_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<mem::MemControllers> mcs_;
  std::vector<std::unique_ptr<App>> apps_;
  std::unique_ptr<AppRouter> router_;
  std::unique_ptr<coherence::CoherentSystem> caches_;
  std::vector<std::unique_ptr<core::SimCore>> cores_;
  std::unique_ptr<fault::FaultInjector> injector_;

  bool built_ = false;
  bool completed_ = false;
};

}  // namespace tdn::multi
