// AppRouter — the one MappingPolicy a multiprogram CoherentSystem sees.
//
// The coherent hierarchy consults a single policy object; in a mix, each app
// brings its own (with its own RRTs, page classifications and partition
// masks). The router dispatches every map()/on_access() to the policy of the
// app that owns the address — cheap and unambiguous, because colocated apps
// live kAppStride apart in virtual memory (mix.hpp). Writebacks never reach
// the router: the L1 remembers each line's home bank (L1Meta::home).
#pragma once

#include <vector>

#include "common/require.hpp"
#include "multi/mix.hpp"
#include "nuca/mapping.hpp"

namespace tdn::multi {

class AppRouter final : public nuca::MappingPolicy {
 public:
  /// @p apps in app-index order; the router does not own them. With
  /// @p wrap, the owner index is taken modulo the slot count: tdn::serve
  /// gives every *request* a fresh kAppStride-aligned address-space slice
  /// (slice s + slots * generation), so the wrap maps each slice back to
  /// the worker slot serving it.
  explicit AppRouter(std::vector<nuca::MappingPolicy*> apps, bool wrap = false)
      : apps_(std::move(apps)), wrap_(wrap) {
    TDN_REQUIRE(!apps_.empty(), "router needs at least one app policy");
  }

  const char* name() const override { return "multi-router"; }

  nuca::MapDecision map(CoreId core, Addr vaddr, Addr paddr,
                        AccessKind kind) override {
    return app_policy(vaddr).map(core, vaddr, paddr, kind);
  }

  Cycle on_access(CoreId core, Addr vaddr, AccessKind kind) override {
    return app_policy(vaddr).on_access(core, vaddr, kind);
  }

  /// The system builder injects CacheOps once, into the router; every app
  /// policy needs it too (R-NUCA reclassification / TD-NUCA flushes).
  void set_ops(nuca::CacheOps* ops) override {
    nuca::MappingPolicy::set_ops(ops);
    for (nuca::MappingPolicy* p : apps_) p->set_ops(ops);
  }

  /// Swap the policy behind slot @p idx (tdn::serve adaptive switching:
  /// future dispatches on the slot route through a different policy; the
  /// old one keeps serving its still-cached lines by L1 home, which never
  /// consults the router). The new policy receives the injected CacheOps.
  void set_policy(unsigned idx, nuca::MappingPolicy* p) {
    TDN_REQUIRE(idx < apps_.size(), "slot index out of range");
    TDN_REQUIRE(p != nullptr, "null slot policy");
    apps_[idx] = p;
    if (ops_ != nullptr) p->set_ops(ops_);
  }

 private:
  nuca::MappingPolicy& app_policy(Addr vaddr) {
    unsigned a = app_of_vaddr(vaddr);
    if (wrap_) a %= static_cast<unsigned>(apps_.size());
    TDN_REQUIRE(a < apps_.size(),
                "address belongs to no colocated app's address space");
    return *apps_[a];
  }

  std::vector<nuca::MappingPolicy*> apps_;
  bool wrap_ = false;
};

}  // namespace tdn::multi
