// ServeSystem — open-arrival request serving on one shared NUCA machine.
//
// The open-system counterpart of multi::MultiProgramSystem (docs/serving.md):
// instead of N fixed co-resident applications, task-graph *requests* arrive
// over simulated time (serve::ArrivalSpec), pass an admission controller with
// a bounded pending queue, and execute one-at-a-time on row-granular worker
// slots of the shared LLC/NoC/DRAM substrate. Each request gets a fresh
// runtime, scheduler and kAppStride-aligned address-space slice (slice
// slot + slots * generation; the wrap-mode AppRouter folds slices back onto
// slots), so consecutive requests on a slot can never alias in memory and a
// mid-stream policy switch never leaves two policies disagreeing about a
// live line.
//
// QoS accounting: per-tenant and total sojourn / queue-wait / service-time
// LatencyHistograms (deterministic tail percentiles), goodput, shed rate and
// time-to-drain — all surfaced through collect_stats() as serve.* keys.
//
// Adaptive policy switching (opts.adaptive): slots carry both a TD-NUCA and
// an R-NUCA policy instance; an epoch sampler on *real* events (it mutates
// scheduling, so it must be part of the simulation) watches the admitted
// tenant mix and flips which policy future dispatches use when tenant 0's
// share crosses opts.switch_threshold. In-flight requests keep the policy
// they started with.
//
// Determinism: the arrival trace is pre-generated from the config seed, one
// single-threaded event loop serves everything, per-request seeds derive
// from the request id alone — runs are bit-identical across repetitions and
// SweepRunner job counts, and cacheable like any RunConfig.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coherence/coherent_system.hpp"
#include "core/sim_core.hpp"
#include "fault/injector.hpp"
#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "multi/app_router.hpp"
#include "multi/mix.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/snuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"
#include "serve/arrival.hpp"
#include "serve/options.hpp"
#include "sim/event_queue.hpp"
#include "stats/registry.hpp"
#include "system/config.hpp"
#include "tdnuca/runtime_hooks.hpp"
#include "workloads/workload.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::serve {

/// Per-tenant QoS accumulators.
struct TenantQos {
  std::uint64_t offered = 0;    ///< arrivals
  std::uint64_t shed = 0;       ///< rejected / dropped by admission
  std::uint64_t completed = 0;  ///< ran to completion
  obs::LatencyHistogram sojourn;     ///< complete - arrive
  obs::LatencyHistogram queue_wait;  ///< dispatch - arrive
  obs::LatencyHistogram service;     ///< complete - dispatch
};

class ServeSystem {
 public:
  /// Builds the machine and the per-slot partitions. @p tenants names one
  /// workload per tenant ('+'-joined, single names allowed); arrivals draw
  /// a tenant per request by opts.weights. @p cfg.policy is the per-slot
  /// NUCA policy (TdNucaDryRun unsupported); opts.adaptive requires TdNuca.
  /// @p rec (optional) observes only, as everywhere else.
  ServeSystem(system::SystemConfig cfg, multi::MixSpec tenants,
              ServeOptions opts, obs::Recorder* rec = nullptr);
  ~ServeSystem();
  ServeSystem(const ServeSystem&) = delete;
  ServeSystem& operator=(const ServeSystem&) = delete;

  /// Expand the arrival trace for [0, opts.horizon) from @p params.seed and
  /// size the request table. Call once, before run().
  void build(const workloads::WorkloadParams& params);

  /// Serve the whole trace and drain: returns the cycle the last admitted
  /// request completed (the makespan). @p cycle_limit guards tests.
  Cycle run(Cycle cycle_limit = kNeverCycle);
  bool completed() const noexcept { return completed_; }

  // --- introspection ----------------------------------------------------
  unsigned num_tenants() const noexcept {
    return static_cast<unsigned>(tenants_.apps.size());
  }
  unsigned num_slots() const noexcept { return opts_.slots; }
  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t shed() const noexcept { return shed_; }
  std::uint64_t requests_completed() const noexcept { return done_; }
  std::size_t queue_max_depth() const noexcept { return queue_max_depth_; }
  std::uint64_t policy_switches() const noexcept { return policy_switches_; }
  const TenantQos& tenant_qos(unsigned t) const { return qos_.at(t); }
  const obs::LatencyHistogram& sojourn() const noexcept { return sojourn_; }

  sim::EventQueue& events() noexcept { return eq_; }
  const system::SystemConfig& config() const noexcept { return cfg_; }
  const ServeOptions& options() const noexcept { return opts_; }
  fault::FaultInjector* fault_injector() noexcept { return injector_.get(); }

  /// Machine totals mirror MultiProgramSystem::collect_stats (sim.*, llc.*,
  /// noc.*, dram.*, energy.*); serving metrics live under serve.* and
  /// serve.tenantK.* — see docs/serving.md for every key.
  stats::Registry collect_stats() const;

 private:
  /// One entry per generated arrival, in arrival order.
  struct Request {
    unsigned tenant = 0;
    Cycle arrive = 0;
    Cycle dispatch = 0;
    Cycle complete = 0;
    unsigned slot = 0;
    bool shed = false;
    bool done = false;
  };

  /// Everything owned by one in-flight request; destroyed (via the
  /// graveyard) after its runtime drains.
  struct Live {
    std::unique_ptr<mem::VirtualSpace> vspace;
    std::unique_ptr<runtime::Scheduler> scheduler;
    std::unique_ptr<runtime::RuntimeHooks> hooks_base;
    std::unique_ptr<tdnuca::TdNucaRuntimeHooks> hooks_td;
    std::unique_ptr<runtime::RuntimeSystem> rt;
    std::unique_ptr<workloads::Workload> workload;
  };

  struct Slot {
    CoreMask cores;
    BankMask banks;
    std::vector<core::SimCore*> core_ptrs;
    // Adaptive mode builds both tdnuca and rnuca; otherwise exactly one of
    // the three is non-null per cfg.policy.
    std::unique_ptr<nuca::SNucaPolicy> snuca;
    std::unique_ptr<nuca::RNucaPolicy> rnuca;
    std::unique_ptr<nuca::TdNucaPolicy> tdnuca;
    nuca::MappingPolicy* policy = nullptr;  ///< initial router entry
    bool busy = false;
    unsigned generation = 0;  ///< completed dispatches on this slot
    std::unique_ptr<Live> live;
  };

  void on_arrival(unsigned rid);
  void shed_request(unsigned rid);
  void dispatch(unsigned slot, unsigned rid);
  void on_complete(unsigned slot, unsigned rid);
  /// Dispatch queued requests onto freed slots (deferred off the finishing
  /// runtime's own call stack via a zero-delay event).
  void pump();
  void epoch_tick();
  bool any_busy() const noexcept;
  void register_observability();

  system::SystemConfig cfg_;
  multi::MixSpec tenants_;
  ServeOptions opts_;
  obs::Recorder* rec_ = nullptr;

  sim::EventQueue eq_;
  noc::Mesh mesh_;
  mem::PageTable page_table_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<mem::MemControllers> mcs_;
  std::vector<Slot> slots_;
  std::unique_ptr<multi::AppRouter> router_;
  std::unique_ptr<coherence::CoherentSystem> caches_;
  std::vector<std::unique_ptr<core::SimCore>> cores_;
  std::unique_ptr<fault::FaultInjector> injector_;
  const fault::HealthState* health_ = nullptr;

  workloads::WorkloadParams params_;
  std::vector<Request> requests_;
  std::deque<unsigned> pending_;  ///< admitted, waiting for a slot
  /// Retired request state. The TD-NUCA flush joiners of a finished request
  /// can fire after its runtime's completion callback, so retired Lives are
  /// only destroyed once run() drains the whole event queue.
  std::vector<std::unique_ptr<Live>> graveyard_;

  // --- counters / QoS ----------------------------------------------------
  std::uint64_t offered_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t tasks_total_ = 0;  ///< tasks across all retired runtimes
  std::uint64_t arrivals_remaining_ = 0;
  std::size_t queue_max_depth_ = 0;
  Cycle makespan_ = 0;
  std::vector<TenantQos> qos_;
  obs::LatencyHistogram sojourn_, queue_wait_, service_;

  // --- adaptive switching -------------------------------------------------
  bool use_tdnuca_ = true;  ///< which policy future dispatches use
  std::uint64_t policy_switches_ = 0;
  std::vector<std::uint64_t> epoch_admitted_;  ///< per-tenant, current epoch

  bool built_ = false;
  bool ran_ = false;
  bool completed_ = false;
};

}  // namespace tdn::serve
