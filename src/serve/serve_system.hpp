// ServeSystem — open-arrival request serving on one shared NUCA machine.
//
// The open-system counterpart of multi::MultiProgramSystem (docs/serving.md):
// instead of N fixed co-resident applications, task-graph *requests* arrive
// over simulated time (serve::ArrivalSpec), pass an admission controller with
// a bounded pending queue, and execute one-at-a-time on row-granular worker
// slots of the shared LLC/NoC/DRAM substrate. Each request gets a fresh
// runtime, scheduler and kAppStride-aligned address-space slice (slice
// slot + slots * generation; the wrap-mode AppRouter folds slices back onto
// slots), so consecutive requests on a slot can never alias in memory and a
// mid-stream policy switch never leaves two policies disagreeing about a
// live line.
//
// QoS accounting: per-tenant and total sojourn / queue-wait / service-time
// LatencyHistograms (deterministic tail percentiles), goodput, shed rate and
// time-to-drain — all surfaced through collect_stats() as serve.* keys.
//
// Adaptive policy switching (opts.adaptive): slots carry both a TD-NUCA and
// an R-NUCA policy instance; an epoch sampler on *real* events (it mutates
// scheduling, so it must be part of the simulation) watches the admitted
// tenant mix and flips which policy future dispatches use when tenant 0's
// share crosses opts.switch_threshold. In-flight requests keep the policy
// they started with.
//
// Determinism: the arrival trace is pre-generated from the config seed, one
// single-threaded event loop serves everything, per-request seeds derive
// from the request id alone — runs are bit-identical across repetitions and
// SweepRunner job counts, and cacheable like any RunConfig.
//
// Checkpoint/restore (tdn::ckpt, docs/serving.md §checkpointing): with
// set_checkpoint(), the run periodically drains to a dispatch-boundary
// quiescent point (no slot busy, no transaction in flight), folds every
// machine counter into a baseline, cold-normalizes the machine (arrays,
// TLBs, RRTs, page classifications, VA mappings) and publishes a crash-safe
// snapshot of the logical serving state. Because the continuing run performs
// the *same* fold and cold-reset it snapshots, a run restored from any
// snapshot replays the identical event stream: end-of-run metrics — counts,
// means, energies, and every tail percentile — are bit-identical to the
// uninterrupted run's. Checkpoint cadence is simulated behavior and enters
// the fingerprint via ckpt::Options::canonical().
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "coherence/coherent_system.hpp"
#include "energy/energy_model.hpp"
#include "fault/watchdog.hpp"
#include "core/sim_core.hpp"
#include "fault/injector.hpp"
#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "multi/app_router.hpp"
#include "multi/mix.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/snuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"
#include "serve/arrival.hpp"
#include "serve/options.hpp"
#include "sim/event_queue.hpp"
#include "stats/registry.hpp"
#include "system/config.hpp"
#include "tdnuca/runtime_hooks.hpp"
#include "workloads/workload.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::serve {

/// Per-tenant QoS accumulators.
struct TenantQos {
  std::uint64_t offered = 0;    ///< arrivals
  std::uint64_t shed = 0;       ///< rejected / dropped by admission
  std::uint64_t completed = 0;  ///< ran to completion
  obs::LatencyHistogram sojourn;     ///< complete - arrive
  obs::LatencyHistogram queue_wait;  ///< dispatch - arrive
  obs::LatencyHistogram service;     ///< complete - dispatch
};

class ServeSystem {
 public:
  /// Builds the machine and the per-slot partitions. @p tenants names one
  /// workload per tenant ('+'-joined, single names allowed); arrivals draw
  /// a tenant per request by opts.weights. @p cfg.policy is the per-slot
  /// NUCA policy (TdNucaDryRun unsupported); opts.adaptive requires TdNuca.
  /// @p rec (optional) observes only, as everywhere else.
  ServeSystem(system::SystemConfig cfg, multi::MixSpec tenants,
              ServeOptions opts, obs::Recorder* rec = nullptr);
  ~ServeSystem();
  ServeSystem(const ServeSystem&) = delete;
  ServeSystem& operator=(const ServeSystem&) = delete;

  /// Expand the arrival trace for [0, opts.horizon) from @p params.seed and
  /// size the request table. Call once, before run().
  void build(const workloads::WorkloadParams& params);

  /// Serve the whole trace and drain: returns the cycle the last admitted
  /// request completed (the makespan). @p cycle_limit guards tests.
  Cycle run(Cycle cycle_limit = kNeverCycle);
  bool completed() const noexcept { return completed_; }

  // --- checkpoint/restore (tdn::ckpt) -----------------------------------
  /// Enable quiescent-point checkpointing. @p opts.every is the sim-time
  /// cadence (behavioral: it enters the run's fingerprint — pass that
  /// fingerprint hash as @p config_fingerprint so snapshot files bind to
  /// this exact configuration). Under adaptive switching the cadence must
  /// be a multiple of opts_.epoch: the drain rides the epoch-tick chain, so
  /// marker-vs-tick tie ordering can never diverge between the original and
  /// a restored lineage. Call before run().
  void set_checkpoint(const ckpt::Options& opts,
                      std::uint64_t config_fingerprint);
  /// Rebuild the logical serving state from a validated snapshot (same
  /// fingerprint, produced by an identically configured run). Call after
  /// build() and before run(); run() then resumes at snap.cycle. Throws
  /// ckpt::SnapshotError on any payload inconsistency.
  void resume_from(const ckpt::Snapshot& snap);
  bool resumed() const noexcept { return resumed_; }
  Cycle resume_cycle() const noexcept { return resume_cycle_; }
  /// Snapshots successfully published by this run.
  std::uint64_t snapshots_written() const noexcept {
    return snapshots_written_;
  }
  /// The liveness watchdog, armed by run() when
  /// config().fault.watchdog_budget > 0 (null before run() / when off).
  fault::Watchdog* watchdog() noexcept { return watchdog_.get(); }

  // --- introspection ----------------------------------------------------
  unsigned num_tenants() const noexcept {
    return static_cast<unsigned>(tenants_.apps.size());
  }
  unsigned num_slots() const noexcept { return opts_.slots; }
  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t shed() const noexcept { return shed_; }
  std::uint64_t requests_completed() const noexcept { return done_; }
  std::size_t queue_max_depth() const noexcept { return queue_max_depth_; }
  std::uint64_t policy_switches() const noexcept { return policy_switches_; }
  const TenantQos& tenant_qos(unsigned t) const { return qos_.at(t); }
  const obs::LatencyHistogram& sojourn() const noexcept { return sojourn_; }

  sim::EventQueue& events() noexcept { return eq_; }
  const system::SystemConfig& config() const noexcept { return cfg_; }
  const ServeOptions& options() const noexcept { return opts_; }
  fault::FaultInjector* fault_injector() noexcept { return injector_.get(); }

  /// Machine totals mirror MultiProgramSystem::collect_stats (sim.*, llc.*,
  /// noc.*, dram.*, energy.*); serving metrics live under serve.* and
  /// serve.tenantK.* — see docs/serving.md for every key.
  stats::Registry collect_stats() const;

 private:
  /// One entry per generated arrival, in arrival order.
  struct Request {
    unsigned tenant = 0;
    Cycle arrive = 0;
    Cycle dispatch = 0;
    Cycle complete = 0;
    unsigned slot = 0;
    bool shed = false;
    bool done = false;
  };

  /// Everything owned by one in-flight request; destroyed (via the
  /// graveyard) after its runtime drains.
  struct Live {
    std::unique_ptr<mem::VirtualSpace> vspace;
    std::unique_ptr<runtime::Scheduler> scheduler;
    std::unique_ptr<runtime::RuntimeHooks> hooks_base;
    std::unique_ptr<tdnuca::TdNucaRuntimeHooks> hooks_td;
    std::unique_ptr<runtime::RuntimeSystem> rt;
    std::unique_ptr<workloads::Workload> workload;
  };

  struct Slot {
    CoreMask cores;
    BankMask banks;
    std::vector<core::SimCore*> core_ptrs;
    // Adaptive mode builds both tdnuca and rnuca; otherwise exactly one of
    // the three is non-null per cfg.policy.
    std::unique_ptr<nuca::SNucaPolicy> snuca;
    std::unique_ptr<nuca::RNucaPolicy> rnuca;
    std::unique_ptr<nuca::TdNucaPolicy> tdnuca;
    nuca::MappingPolicy* policy = nullptr;  ///< initial router entry
    bool busy = false;
    unsigned generation = 0;  ///< completed dispatches on this slot
    std::unique_ptr<Live> live;
  };

  void on_arrival(unsigned rid);
  void shed_request(unsigned rid);
  void dispatch(unsigned slot, unsigned rid);
  void on_complete(unsigned slot, unsigned rid);
  /// Dispatch queued requests onto freed slots (deferred off the finishing
  /// runtime's own call stack via a zero-delay event).
  void pump();
  void epoch_tick();
  bool any_busy() const noexcept;
  void register_observability();

  // --- checkpoint machinery (tdn::ckpt) ---------------------------------
  /// Per-slot AppView counters folded at checkpoint boundaries (they feed
  /// the serve.slotN.llc.* keys).
  struct SlotBaseline {
    std::uint64_t llc_requests = 0;
    std::uint64_t llc_hits = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t llc_writebacks = 0;
    std::uint64_t bypass_reads = 0;
  };
  /// Machine counters folded (and then reset) at every checkpoint boundary.
  /// collect_stats() always reports baseline + fresh, so the continuing and
  /// any restored lineage compute each metric from identical operands —
  /// double accumulation is not associative, which is exactly why the
  /// continuing run must fold too instead of just letting its counters run.
  struct MachineBaseline {
    std::uint64_t events = 0;  ///< executed events (restored lineages only)
    std::uint64_t llc_hits = 0;
    std::uint64_t bypass_reads = 0;
    std::uint64_t noc_messages = 0;
    energy::EnergyInputs en;  ///< l1/llc/flush/noc/dram/rrt event counts
    double nuca_total = 0.0;  ///< Sampled numerators/denominators
    double nuca_weight = 0.0;
    double miss_lat_total = 0.0;
    double miss_lat_weight = 0.0;
    // Translation counters, folded from every core's Mmu (payload v2).
    std::uint64_t tlb_hits = 0;
    std::uint64_t tlb_misses = 0;
    std::uint64_t tlb_shootdowns = 0;
    std::uint64_t l2_tlb_hits = 0;
    std::uint64_t walks = 0;
    std::uint64_t walk_loads = 0;
    Cycle walk_cycles = 0;
    Cycle isa_walk_cycles = 0;
    std::uint64_t psc_hits = 0;
    std::uint64_t huge_fallbacks = 0;
  };
  bool ckpt_active() const noexcept { return ckpt_.enabled(); }
  /// Standalone cadence chain (non-adaptive mode only; adaptive rides the
  /// epoch-tick chain — see set_checkpoint).
  void ckpt_marker();
  /// Stop dispatching and wait for the machine to go idle.
  void begin_drain(bool emergency);
  /// Periodic (settle_grace) quiescence probe while draining.
  void ckpt_settle();
  /// True when nothing is in flight: no busy slot and every pending real
  /// event is expected future work (arrivals, the tick/marker chains,
  /// unfired fault-plan events) rather than an in-flight transaction.
  bool quiescent() const;
  /// At the quiescent point: fold+reset counters, cold-normalize, publish
  /// the snapshot, then resume dispatching (or throw on an interrupt).
  void ckpt_fold();
  void fold_machine_counters();
  void cold_normalize();
  std::string encode_snapshot() const;
  /// Begin an off-cadence emergency drain when a SIGINT/SIGTERM handler
  /// raised the ckpt interrupt flag.
  void poll_interrupt();

  system::SystemConfig cfg_;
  multi::MixSpec tenants_;
  ServeOptions opts_;
  obs::Recorder* rec_ = nullptr;

  sim::EventQueue eq_;
  noc::Mesh mesh_;
  mem::PageTable page_table_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<mem::MemControllers> mcs_;
  std::vector<Slot> slots_;
  std::unique_ptr<multi::AppRouter> router_;
  std::unique_ptr<coherence::CoherentSystem> caches_;
  std::vector<std::unique_ptr<core::SimCore>> cores_;
  std::unique_ptr<fault::FaultInjector> injector_;
  const fault::HealthState* health_ = nullptr;

  workloads::WorkloadParams params_;
  std::vector<Request> requests_;
  std::deque<unsigned> pending_;  ///< admitted, waiting for a slot
  /// Retired request state. The TD-NUCA flush joiners of a finished request
  /// can fire after its runtime's completion callback, so retired Lives are
  /// only destroyed once run() drains the whole event queue.
  std::vector<std::unique_ptr<Live>> graveyard_;

  // --- counters / QoS ----------------------------------------------------
  std::uint64_t offered_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t tasks_total_ = 0;  ///< tasks across all retired runtimes
  std::uint64_t arrivals_remaining_ = 0;
  std::size_t queue_max_depth_ = 0;
  Cycle makespan_ = 0;
  std::vector<TenantQos> qos_;
  obs::LatencyHistogram sojourn_, queue_wait_, service_;

  // --- adaptive switching -------------------------------------------------
  bool use_tdnuca_ = true;  ///< which policy future dispatches use
  std::uint64_t policy_switches_ = 0;
  std::vector<std::uint64_t> epoch_admitted_;  ///< per-tenant, current epoch
  bool tick_alive_ = false;   ///< an epoch tick is scheduled
  Cycle next_tick_at_ = 0;    ///< its absolute cycle (valid when alive)

  // --- checkpoint state ---------------------------------------------------
  ckpt::Options ckpt_;
  std::uint64_t ckpt_fingerprint_ = 0;
  bool draining_ = false;   ///< dispatching suspended until the next fold
  bool emergency_ = false;  ///< this drain answers an interrupt request
  bool marker_alive_ = false;  ///< a cadence marker is scheduled
  Cycle next_marker_at_ = 0;   ///< its absolute cycle (valid when alive)
  std::uint64_t snapshots_written_ = 0;
  MachineBaseline baseline_;
  std::vector<SlotBaseline> slot_baseline_;
  bool resumed_ = false;
  Cycle resume_cycle_ = 0;
  std::uint64_t cursor_ = 0;  ///< arrivals consumed before the snapshot
  std::unique_ptr<fault::Watchdog> watchdog_;

  bool built_ = false;
  bool ran_ = false;
  bool completed_ = false;
};

}  // namespace tdn::serve
