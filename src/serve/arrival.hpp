// Arrival processes for tdn::serve — deterministic open-arrival traces.
//
// A spec string describes *when* requests arrive and is expanded, before the
// simulation starts, into a concrete arrival trace (cycle + tenant per
// request) by a PRNG seeded from the spec text and the run seed alone. The
// trace therefore depends only on the RunConfig — never on execution order,
// thread count or wall clock — which is what keeps serving runs bit-identical
// between serial and --jobs sweeps and safe to memoize in the results cache.
//
// Grammar (docs/serving.md has the full reference):
//
//   spec    := kind [":" key "=" value ("," key "=" value)*]
//   kind    := "poisson" | "mmpp" | "diurnal" | "fixed"
//   value   := number with optional k (x1e3) / M (x1e6) suffix
//
//   poisson:gap=40k            exponential inter-arrivals, mean 40k cycles
//   fixed:gap=40k              deterministic inter-arrivals (closed-form)
//   mmpp:gap=80k,burst=8k,dwell=120k
//                              2-state Markov-modulated Poisson process:
//                              calm state mean gap `gap`, burst state mean
//                              gap `burst`, exponential state dwell `dwell`
//   diurnal:gap=40k,amp=0.8,period=300k
//                              sinusoid-modulated Poisson ("day/night"
//                              replay): rate (1 + amp*sin(2*pi*t/period))/gap,
//                              realized by thinning against the peak rate
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tdn::serve {

enum class ArrivalKind : std::uint8_t { Poisson, Mmpp, Diurnal, Fixed };

const char* to_string(ArrivalKind k);

/// One request in the expanded trace.
struct Arrival {
  Cycle cycle = 0;
  unsigned tenant = 0;
};

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::Poisson;
  Cycle gap = 40'000;     ///< mean inter-arrival (calm state for mmpp)
  Cycle burst = 8'000;    ///< mmpp: burst-state mean inter-arrival
  Cycle dwell = 120'000;  ///< mmpp: mean dwell per state
  Cycle period = 300'000; ///< diurnal: modulation period
  double amp = 0.8;       ///< diurnal: modulation amplitude in [0, 1)

  /// Parse the DSL; unknown kinds/keys and zero gaps fail loudly with the
  /// grammar in the message (a typo must not become an empty trace).
  static ArrivalSpec parse(std::string_view text);

  /// Expand into a concrete trace over [0, horizon). Tenants are drawn per
  /// arrival with the given weights (size = tenant count, all >= 1). The
  /// generator is seeded from @p seed and the spec fields alone.
  std::vector<Arrival> generate(Cycle horizon, const std::vector<unsigned>& weights,
                                std::uint64_t seed) const;
};

/// Parse a colon-joined weight string ("3:1") into per-tenant weights;
/// empty input yields `num_tenants` equal weights. Component count and
/// zero weights are validated loudly.
std::vector<unsigned> parse_weights(std::string_view text, unsigned num_tenants);

}  // namespace tdn::serve
