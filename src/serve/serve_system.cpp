#include "serve/serve_system.hpp"

#include <algorithm>
#include <string>

#include "common/require.hpp"
#include "energy/energy_model.hpp"
#include "obs/recorder.hpp"

namespace tdn::serve {

ServeSystem::ServeSystem(system::SystemConfig cfg, multi::MixSpec tenants,
                         ServeOptions opts, obs::Recorder* rec)
    : cfg_(cfg), tenants_(std::move(tenants)), opts_(std::move(opts)),
      rec_(rec), mesh_(cfg.mesh_w, cfg.mesh_h), page_table_(cfg.page_table) {
  const unsigned n = cfg_.num_cores();
  TDN_REQUIRE(opts_.enabled(), "ServeSystem needs an arrival spec");
  TDN_REQUIRE(opts_.slots >= 1, "at least one worker slot");
  TDN_REQUIRE(cfg_.policy != system::PolicyKind::TdNucaDryRun,
              "TdNucaDryRun is a single-program overhead study; "
              "not supported in serving mode");
  TDN_REQUIRE(!opts_.adaptive || cfg_.policy == system::PolicyKind::TdNuca,
              "adaptive switching starts from the TdNuca policy");
  if (opts_.adaptive) TDN_REQUIRE(opts_.epoch > 0, "adaptive needs an epoch");
  qos_.resize(tenants_.apps.size());
  epoch_admitted_.assign(tenants_.apps.size(), 0);

  net_ = std::make_unique<noc::Network>(mesh_, eq_, cfg_.network);

  // Memory controllers: identical placement to TiledSystem/MultiProgram.
  std::vector<CoreId> mc_tiles;
  std::vector<CoreId> edge_tiles;
  for (unsigned x = 0; x < cfg_.mesh_w; ++x) {
    edge_tiles.push_back(x);
    edge_tiles.push_back((cfg_.mesh_h - 1) * cfg_.mesh_w + x);
  }
  for (unsigned i = 0; i < cfg_.num_memory_controllers; ++i)
    mc_tiles.push_back(edge_tiles[i % edge_tiles.size()]);
  mcs_ = std::make_unique<mem::MemControllers>(cfg_.num_memory_controllers,
                                               mc_tiles, cfg_.dram);

  // --- worker slots: row-granular machine partitions ---------------------
  const std::vector<CoreMask> part =
      multi::row_partitions(cfg_.mesh_w, cfg_.mesh_h, opts_.slots);
  slots_.resize(opts_.slots);
  std::vector<nuca::MappingPolicy*> slot_policies;
  for (unsigned s = 0; s < opts_.slots; ++s) {
    Slot& slot = slots_[s];
    slot.cores = part[s];
    slot.banks = part[s];
    switch (cfg_.policy) {
      case system::PolicyKind::SNuca:
        slot.snuca = std::make_unique<nuca::SNucaPolicy>(
            n, cfg_.hierarchy.l1.line_size);
        slot.policy = slot.snuca.get();
        break;
      case system::PolicyKind::RNuca:
        slot.rnuca = std::make_unique<nuca::RNucaPolicy>(mesh_, n, page_table_,
                                                         cfg_.rnuca);
        slot.policy = slot.rnuca.get();
        break;
      case system::PolicyKind::TdNuca:
      case system::PolicyKind::TdNucaBypassOnly: {
        auto td_cfg = cfg_.tdnuca;
        td_cfg.bypass_only =
            (cfg_.policy == system::PolicyKind::TdNucaBypassOnly);
        slot.tdnuca = std::make_unique<nuca::TdNucaPolicy>(mesh_, n, td_cfg);
        slot.policy = slot.tdnuca.get();
        // Adaptive slots carry the alternate policy too; dispatch picks.
        if (opts_.adaptive)
          slot.rnuca = std::make_unique<nuca::RNucaPolicy>(
              mesh_, n, page_table_, cfg_.rnuca);
        break;
      }
      case system::PolicyKind::TdNucaDryRun:
        break;  // rejected above
    }
    if (slot.tdnuca) slot.tdnuca->set_partition(slot.banks, slot.cores);
    if (slot.rnuca) slot.rnuca->set_partition(slot.banks, slot.cores);
    if (slot.snuca) slot.snuca->set_partition(slot.banks, slot.cores);
    slot_policies.push_back(slot.policy);
  }

  // Wrap mode: request address-space slice slot + slots*generation folds
  // back onto its worker slot's active policy.
  router_ = std::make_unique<multi::AppRouter>(slot_policies, /*wrap=*/true);
  caches_ = std::make_unique<coherence::CoherentSystem>(
      eq_, *net_, mesh_, *mcs_, *router_, cfg_.hierarchy, n, rec_);

  // Per-slot LLC accounting (attribution is by requester core, so slices
  // beyond the slot count never index the view).
  coherence::CoherentSystem::AppView view;
  view.num_apps = opts_.slots;
  view.core_app.resize(n);
  const unsigned rows_per_slot = cfg_.mesh_h / opts_.slots;
  for (unsigned c = 0; c < n; ++c)
    view.core_app[c] =
        static_cast<std::uint8_t>(c / (rows_per_slot * cfg_.mesh_w));
  caches_->set_app_view(std::move(view));

  // --- cores ------------------------------------------------------------
  cores_.reserve(n);
  std::vector<mem::Tlb*> tlbs;
  for (unsigned i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<core::SimCore>(
        i, eq_, *caches_, page_table_, cfg_.core, cfg_.tlb));
    tlbs.push_back(&cores_.back()->tlb());
  }
  for (Slot& slot : slots_) {
    if (slot.rnuca) slot.rnuca->set_tlbs(tlbs);
    slot.cores.for_each(
        [&](CoreId c) { slot.core_ptrs.push_back(cores_[c].get()); });
  }

  // --- fault injection --------------------------------------------------
  if (!cfg_.fault.plan.empty()) {
    fault::FaultInjector::Targets t;
    t.eq = &eq_;
    t.mesh = &mesh_;
    t.net = net_.get();
    t.caches = caches_.get();
    t.mcs = mcs_.get();
    t.tdnuca = nullptr;  // per-slot RRTs; in-map health guards suffice
    t.rec = rec_;
    injector_ = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(cfg_.fault.plan), cfg_.fault, t, n,
        cfg_.hierarchy.l1.line_size);
    health_ = &injector_->health();
    for (Slot& slot : slots_) {
      if (slot.snuca) slot.snuca->set_health(health_);
      if (slot.rnuca) slot.rnuca->set_health(health_);
      if (slot.tdnuca) slot.tdnuca->set_health(health_);
    }
    caches_->set_health(health_);
    net_->set_health(health_);
  }

  if (rec_ != nullptr) register_observability();
}

ServeSystem::~ServeSystem() = default;

void ServeSystem::build(const workloads::WorkloadParams& params) {
  TDN_REQUIRE(!built_, "build() already called");
  built_ = true;
  params_ = params;
  const ArrivalSpec spec = ArrivalSpec::parse(opts_.arrival);
  const std::vector<unsigned> weights =
      parse_weights(opts_.weights, num_tenants());
  const std::vector<Arrival> trace =
      spec.generate(opts_.horizon, weights, params.seed);
  requests_.reserve(trace.size());
  for (const Arrival& a : trace) {
    Request r;
    r.tenant = a.tenant;
    r.arrive = a.cycle;
    requests_.push_back(r);
  }
}

Cycle ServeSystem::run(Cycle cycle_limit) {
  TDN_REQUIRE(built_, "call build() before run()");
  TDN_REQUIRE(!ran_, "run() already called");
  ran_ = true;
  if (rec_ != nullptr) rec_->arm(eq_);
  if (injector_) injector_->arm();
  arrivals_remaining_ = requests_.size();
  for (unsigned i = 0; i < requests_.size(); ++i)
    eq_.schedule_at(requests_[i].arrive, [this, i] { on_arrival(i); });
  // The mix sampler rides *real* events: it mutates future scheduling, so
  // it must be part of the simulation proper (obs observer events must
  // never change behavior). The chain ends itself once the system drains.
  if (opts_.adaptive && !requests_.empty())
    eq_.schedule_in(opts_.epoch, [this] { epoch_tick(); });
  if (requests_.empty()) completed_ = true;
  eq_.run_until(cycle_limit);
  TDN_REQUIRE(completed_,
              "serving drained without completing every admitted request");
  graveyard_.clear();  // queue is empty: no event references retired state
  return makespan_;
}

bool ServeSystem::any_busy() const noexcept {
  for (const Slot& slot : slots_)
    if (slot.busy) return true;
  return false;
}

void ServeSystem::on_arrival(unsigned rid) {
  --arrivals_remaining_;
  Request& r = requests_[rid];
  ++offered_;
  ++qos_[r.tenant].offered;
  for (unsigned s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].busy) {
      ++epoch_admitted_[r.tenant];
      dispatch(s, rid);
      return;
    }
  }
  if (pending_.size() < opts_.max_pending) {
    ++epoch_admitted_[r.tenant];
    pending_.push_back(rid);
    queue_max_depth_ = std::max(queue_max_depth_, pending_.size());
    return;
  }
  if (opts_.admission == AdmissionPolicy::DropOldest && !pending_.empty()) {
    // Trade the oldest queued request (its deadline is the most blown) for
    // the newcomer; the queue depth is unchanged.
    const unsigned victim = pending_.front();
    pending_.pop_front();
    shed_request(victim);
    ++epoch_admitted_[r.tenant];
    pending_.push_back(rid);
    return;
  }
  shed_request(rid);
}

void ServeSystem::shed_request(unsigned rid) {
  Request& r = requests_[rid];
  r.shed = true;
  ++shed_;
  ++qos_[r.tenant].shed;
  if (rec_ != nullptr && rec_->trace_on()) {
    rec_->instant(obs::Recorder::kServeTrackBase + opts_.slots, "serve",
                  "shed " + tenants_.apps[r.tenant] + "#" +
                      std::to_string(rid),
                  "\"tenant\":" + std::to_string(r.tenant));
  }
  if (arrivals_remaining_ == 0 && done_ + shed_ == offered_)
    completed_ = true;
}

void ServeSystem::dispatch(unsigned s, unsigned rid) {
  Slot& slot = slots_[s];
  Request& r = requests_[rid];
  TDN_REQUIRE(!slot.busy, "dispatch onto a busy slot");
  slot.busy = true;
  r.slot = s;
  r.dispatch = eq_.now();

  auto live = std::make_unique<Live>();

  // Fresh kAppStride-aligned address-space slice per request: consecutive
  // requests on a slot (and an adaptive policy switch between them) can
  // never alias, and stale RRT / page-classification entries from the
  // previous request never match a new address.
  const Addr base =
      mem::kHeapBase + static_cast<Addr>(s + opts_.slots * slot.generation) *
                           multi::kAppStride;
  live->vspace = std::make_unique<mem::VirtualSpace>(base);

  nuca::MappingPolicy* pol = slot.policy;
  if (opts_.adaptive)
    pol = use_tdnuca_ ? static_cast<nuca::MappingPolicy*>(slot.tdnuca.get())
                      : slot.rnuca.get();
  router_->set_policy(s, pol);

  switch (cfg_.scheduler) {
    case system::SchedulerKind::Fifo:
      live->scheduler = std::make_unique<runtime::FifoScheduler>();
      break;
    case system::SchedulerKind::Affinity:
      live->scheduler = std::make_unique<runtime::AffinityScheduler>();
      break;
  }

  runtime::RuntimeHooks* hooks = nullptr;
  if (pol == static_cast<nuca::MappingPolicy*>(slot.tdnuca.get()) &&
      slot.tdnuca) {
    auto hooks_cfg = cfg_.hooks;
    hooks_cfg.line_size = cfg_.hierarchy.l1.line_size;
    live->hooks_td = std::make_unique<tdnuca::TdNucaRuntimeHooks>(
        *slot.tdnuca, page_table_, cfg_.num_cores(), hooks_cfg, rec_);
    if (health_ != nullptr) live->hooks_td->set_health(health_);
    hooks = live->hooks_td.get();
  } else {
    live->hooks_base = std::make_unique<runtime::RuntimeHooks>();
    hooks = live->hooks_base.get();
  }

  // Distinct jitter stream per request id: back-to-back requests on a slot
  // must not mirror each other's dispatch noise.
  auto rt_cfg = cfg_.runtime;
  rt_cfg.jitter_seed += 0x9E3779B97F4A7C15ull * (rid + 1);
  live->rt = std::make_unique<runtime::RuntimeSystem>(
      eq_, slot.core_ptrs, *live->scheduler, *hooks, rt_cfg, rec_);
  if (live->hooks_td) live->hooks_td->set_runtime(live->rt.get());
  if (auto* aff =
          dynamic_cast<runtime::AffinityScheduler*>(live->scheduler.get()))
    aff->set_tasks(&live->rt->tasks());

  workloads::WorkloadParams p = params_;
  p.scale = opts_.request_scale;
  // Decorrelate repeated requests of one tenant's workload.
  p.seed = params_.seed + 1000003ull * (rid + 1);
  live->workload = workloads::make_workload(tenants_.apps[r.tenant], p);
  live->workload->build(workloads::BuildContext{*live->vspace, *live->rt});
  TDN_REQUIRE(live->vspace->footprint() < multi::kAppStride,
              "request footprint overflows its address-space slice");

  slot.live = std::move(live);
  slot.live->rt->run([this, s, rid] { on_complete(s, rid); });
}

void ServeSystem::on_complete(unsigned s, unsigned rid) {
  Slot& slot = slots_[s];
  Request& r = requests_[rid];
  r.complete = eq_.now();
  r.done = true;
  ++done_;
  tasks_total_ += slot.live->rt->tasks_completed();
  makespan_ = std::max(makespan_, r.complete);

  const Cycle sojourn = r.complete - r.arrive;
  const Cycle waited = r.dispatch - r.arrive;
  const Cycle service = r.complete - r.dispatch;
  sojourn_.add(sojourn);
  queue_wait_.add(waited);
  service_.add(service);
  TenantQos& q = qos_[r.tenant];
  ++q.completed;
  q.sojourn.add(sojourn);
  q.queue_wait.add(waited);
  q.service.add(service);

  if (rec_ != nullptr && rec_->trace_on()) {
    rec_->span(obs::Recorder::kServeTrackBase + s, "serve",
               tenants_.apps[r.tenant] + "#" + std::to_string(rid), r.dispatch,
               service,
               "\"tenant\":" + std::to_string(r.tenant) + ",\"queue_wait\":" +
                   std::to_string(waited) + ",\"sojourn\":" +
                   std::to_string(sojourn));
  }

  // Deferred teardown: we are inside this runtime's own completion path,
  // and the TD-NUCA hooks' end-of-task flush joiners can still fire after
  // the last task completes — so retired request state must outlive every
  // event that references it. The graveyard holds it until run() drains
  // the whole queue; the zero-delay pump event only re-dispatches.
  slot.busy = false;
  ++slot.generation;
  graveyard_.push_back(std::move(slot.live));
  eq_.schedule_in(0, [this] { pump(); });

  if (arrivals_remaining_ == 0 && done_ + shed_ == offered_)
    completed_ = true;
}

void ServeSystem::pump() {
  while (!pending_.empty()) {
    int free_slot = -1;
    for (unsigned s = 0; s < slots_.size(); ++s)
      if (!slots_[s].busy) {
        free_slot = static_cast<int>(s);
        break;
      }
    if (free_slot < 0) break;
    const unsigned rid = pending_.front();
    pending_.pop_front();
    dispatch(static_cast<unsigned>(free_slot), rid);
  }
}

void ServeSystem::epoch_tick() {
  std::uint64_t total = 0;
  for (std::uint64_t c : epoch_admitted_) total += c;
  if (total > 0) {
    const double share0 = static_cast<double>(epoch_admitted_[0]) /
                          static_cast<double>(total);
    const bool want_tdnuca = share0 >= opts_.switch_threshold;
    if (want_tdnuca != use_tdnuca_) {
      use_tdnuca_ = want_tdnuca;
      ++policy_switches_;
      if (rec_ != nullptr && rec_->trace_on()) {
        rec_->instant(obs::Recorder::kServeTrackBase + opts_.slots, "serve",
                      use_tdnuca_ ? "switch->tdnuca" : "switch->rnuca");
      }
    }
    std::fill(epoch_admitted_.begin(), epoch_admitted_.end(), 0);
  }
  if (arrivals_remaining_ > 0 || !pending_.empty() || any_busy())
    eq_.schedule_in(opts_.epoch, [this] { epoch_tick(); });
}

void ServeSystem::register_observability() {
  const unsigned n = cfg_.num_cores();
  rec_->attach_clock(&eq_);
  if (obs::LatencyAttribution* attr = rec_->attribution()) {
    net_->set_transit_sinks(&attr->noc_transit(0), &attr->noc_transit(1));
    for (unsigned m = 0; m < mcs_->count(); ++m)
      mcs_->mc(m).set_queue_sink(&attr->dram_queue());
  }
  for (unsigned i = 0; i < n; ++i)
    rec_->set_track_name(i, "core " + std::to_string(i));
  rec_->set_track_name(obs::Recorder::kRuntimeTrack, "runtime");
  rec_->set_track_name(obs::Recorder::kFlushTrack, "flush engine");
  rec_->set_track_name(obs::Recorder::kCoherenceTrack, "coherence");
  for (unsigned s = 0; s < opts_.slots; ++s)
    rec_->set_track_name(obs::Recorder::kServeTrackBase + s,
                         "serve slot " + std::to_string(s));
  rec_->set_track_name(obs::Recorder::kServeTrackBase + opts_.slots,
                       "serve admission");
  if (injector_) rec_->set_track_name(obs::Recorder::kFaultTrack, "faults");

  for (unsigned b = 0; b < n; ++b) {
    rec_->add_series(
        "llc.bank" + std::to_string(b) + ".hit_ratio",
        [this, b, ph = std::uint64_t{0}, pm = std::uint64_t{0}]() mutable {
          const auto& c = caches_->bank_counters(b);
          const std::uint64_t dh = c.hits - ph;
          const std::uint64_t dm = c.misses - pm;
          ph = c.hits;
          pm = c.misses;
          return (dh + dm) > 0
                     ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                     : 0.0;
        });
  }
  for (unsigned m = 0; m < cfg_.num_memory_controllers; ++m) {
    rec_->add_series("dram.mc" + std::to_string(m) + ".backlog", [this, m] {
      const auto& mc = mcs_->mc(m);
      const Cycle now = eq_.now();
      if (mc.busy_until() <= now) return 0.0;
      return static_cast<double>(mc.busy_until() - now) /
             static_cast<double>(mc.config().service_interval);
    });
  }

  // --- serving series: the load/occupancy picture over time --------------
  rec_->add_series("serve.pending_depth",
                   [this] { return static_cast<double>(pending_.size()); });
  rec_->add_series("serve.busy_slots", [this] {
    unsigned busy = 0;
    for (const Slot& slot : slots_)
      if (slot.busy) ++busy;
    return static_cast<double>(busy);
  });
  rec_->add_series("serve.offered",
                   [this] { return static_cast<double>(offered_); });
  rec_->add_series("serve.shed",
                   [this] { return static_cast<double>(shed_); });
  rec_->add_series("serve.completed",
                   [this] { return static_cast<double>(done_); });

  const unsigned w = cfg_.mesh_w;
  const unsigned h = cfg_.mesh_h;
  rec_->add_heatmap("llc_bank_accesses", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b) {
      const auto& c = caches_->bank_counters(b);
      v[b] = static_cast<double>(c.requests + c.writebacks);
    }
    return v;
  });
  rec_->add_heatmap("noc_router_bytes", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned t = 0; t < n; ++t)
      v[t] = static_cast<double>(net_->router_bytes_at(t));
    return v;
  });
}

stats::Registry ServeSystem::collect_stats() const {
  stats::Registry r;
  const unsigned n = cfg_.num_cores();
  const auto& cs = caches_->stats();

  r.set("sim.cycles", static_cast<double>(makespan_));
  r.set("sim.events", static_cast<double>(eq_.executed()));
  r.set("tasks.completed", static_cast<double>(tasks_total_));
  r.set("l1.hits", static_cast<double>(cs.l1_hits.value()));
  r.set("l1.misses", static_cast<double>(cs.l1_misses.value()));
  r.set("llc.requests", static_cast<double>(cs.llc_requests.value()));
  r.set("llc.hits", static_cast<double>(cs.llc_hits.value()));
  r.set("llc.misses", static_cast<double>(cs.llc_misses.value()));
  r.set("llc.writebacks", static_cast<double>(cs.llc_writebacks.value()));
  r.set("llc.accesses", static_cast<double>(caches_->llc_accesses()));
  r.set("llc.hit_ratio", caches_->llc_hit_ratio());
  r.set("llc.bypass_reads", static_cast<double>(cs.bypass_reads.value()));
  r.set("nuca.mean_distance", cs.nuca_distance.mean());
  r.set("l1.mean_miss_latency", cs.miss_latency.mean());
  r.set("noc.router_bytes", static_cast<double>(net_->total_router_bytes()));
  r.set("noc.messages", static_cast<double>(net_->messages()));
  r.set("dram.accesses", static_cast<double>(mcs_->total_accesses()));

  std::uint64_t rrt_lookups = 0;
  for (const Slot& slot : slots_)
    if (slot.tdnuca)
      rrt_lookups += slot.tdnuca->rrt_hits() + slot.tdnuca->rrt_misses();
  const auto e = energy::compute_energy(*caches_, *net_, *mcs_, rrt_lookups,
                                        energy::EnergyParams{});
  r.set("energy.llc_pj", e.llc_pj);
  r.set("energy.noc_pj", e.noc_pj);
  r.set("energy.dram_pj", e.dram_pj);
  r.set("energy.total_pj", e.total_pj());

  // --- serving aggregates ------------------------------------------------
  const double offered = static_cast<double>(offered_);
  r.set("serve.slots", static_cast<double>(opts_.slots));
  r.set("serve.horizon", static_cast<double>(opts_.horizon));
  r.set("serve.offered", offered);
  r.set("serve.admitted", static_cast<double>(offered_ - shed_));
  r.set("serve.shed", static_cast<double>(shed_));
  r.set("serve.shed_rate",
        offered_ > 0 ? static_cast<double>(shed_) / offered : 0.0);
  r.set("serve.completed", static_cast<double>(done_));
  // Goodput: completed requests per million cycles of the serving window
  // (its natural end is the later of horizon and last completion).
  const Cycle window = std::max(makespan_, opts_.horizon);
  r.set("serve.goodput",
        window > 0 ? static_cast<double>(done_) * 1e6 /
                         static_cast<double>(window)
                   : 0.0);
  r.set("serve.makespan", static_cast<double>(makespan_));
  r.set("serve.drain_cycles",
        static_cast<double>(makespan_ > opts_.horizon
                                ? makespan_ - opts_.horizon
                                : 0));
  r.set("serve.queue.max_depth", static_cast<double>(queue_max_depth_));
  r.set("serve.policy_switches", static_cast<double>(policy_switches_));

  auto emit_hist = [&r](const std::string& p, const obs::LatencyHistogram& h) {
    r.set(p + ".mean", h.mean());
    r.set(p + ".p50", static_cast<double>(h.percentile(0.50)));
    r.set(p + ".p99", static_cast<double>(h.percentile(0.99)));
    r.set(p + ".p999", static_cast<double>(h.percentile(0.999)));
    r.set(p + ".max", static_cast<double>(h.max()));
  };
  emit_hist("serve.sojourn", sojourn_);
  emit_hist("serve.queue_wait", queue_wait_);
  emit_hist("serve.service", service_);

  // --- per-tenant QoS ----------------------------------------------------
  for (unsigned t = 0; t < num_tenants(); ++t) {
    const TenantQos& q = qos_[t];
    const std::string p = "serve.tenant" + std::to_string(t);
    r.set(p + ".offered", static_cast<double>(q.offered));
    r.set(p + ".shed", static_cast<double>(q.shed));
    r.set(p + ".shed_rate", q.offered > 0 ? static_cast<double>(q.shed) /
                                                static_cast<double>(q.offered)
                                          : 0.0);
    r.set(p + ".completed", static_cast<double>(q.completed));
    r.set(p + ".goodput",
          window > 0 ? static_cast<double>(q.completed) * 1e6 /
                           static_cast<double>(window)
                     : 0.0);
    emit_hist(p + ".sojourn", q.sojourn);
    emit_hist(p + ".queue_wait", q.queue_wait);
  }

  // Per-slot LLC view (the AppView counters).
  for (unsigned s = 0; s < opts_.slots; ++s) {
    const auto& ac = caches_->app_counters(s);
    const std::string p = "serve.slot" + std::to_string(s);
    r.set(p + ".llc.requests", static_cast<double>(ac.llc_requests));
    r.set(p + ".llc.hits", static_cast<double>(ac.llc_hits));
    r.set(p + ".llc.misses", static_cast<double>(ac.llc_misses));
    r.set(p + ".requests_served", static_cast<double>(slots_[s].generation));
  }
  (void)n;
  return r;
}

}  // namespace tdn::serve
