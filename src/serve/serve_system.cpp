#include "serve/serve_system.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "common/require.hpp"
#include "energy/energy_model.hpp"
#include "obs/recorder.hpp"
#include "system/sim_exec.hpp"

namespace tdn::serve {

ServeSystem::ServeSystem(system::SystemConfig cfg, multi::MixSpec tenants,
                         ServeOptions opts, obs::Recorder* rec)
    : cfg_(cfg), tenants_(std::move(tenants)), opts_(std::move(opts)),
      rec_(rec), mesh_(cfg.mesh_w, cfg.mesh_h),
      page_table_(cfg.page_table, cfg.vm) {
  const unsigned n = cfg_.num_cores();
  TDN_REQUIRE(opts_.enabled(), "ServeSystem needs an arrival spec");
  TDN_REQUIRE(opts_.slots >= 1, "at least one worker slot");
  TDN_REQUIRE(cfg_.policy != system::PolicyKind::TdNucaDryRun,
              "TdNucaDryRun is a single-program overhead study; "
              "not supported in serving mode");
  TDN_REQUIRE(!opts_.adaptive || cfg_.policy == system::PolicyKind::TdNuca,
              "adaptive switching starts from the TdNuca policy");
  if (opts_.adaptive) TDN_REQUIRE(opts_.epoch > 0, "adaptive needs an epoch");
  qos_.resize(tenants_.apps.size());
  epoch_admitted_.assign(tenants_.apps.size(), 0);
  slot_baseline_.resize(opts_.slots);

  net_ = std::make_unique<noc::Network>(mesh_, eq_, cfg_.network);

  // Memory controllers: identical placement to TiledSystem/MultiProgram.
  std::vector<CoreId> mc_tiles;
  std::vector<CoreId> edge_tiles;
  for (unsigned x = 0; x < cfg_.mesh_w; ++x) {
    edge_tiles.push_back(x);
    edge_tiles.push_back((cfg_.mesh_h - 1) * cfg_.mesh_w + x);
  }
  for (unsigned i = 0; i < cfg_.num_memory_controllers; ++i)
    mc_tiles.push_back(edge_tiles[i % edge_tiles.size()]);
  mcs_ = std::make_unique<mem::MemControllers>(cfg_.num_memory_controllers,
                                               mc_tiles, cfg_.dram);

  // --- worker slots: row-granular machine partitions ---------------------
  const std::vector<CoreMask> part =
      multi::row_partitions(cfg_.mesh_w, cfg_.mesh_h, opts_.slots);
  slots_.resize(opts_.slots);
  std::vector<nuca::MappingPolicy*> slot_policies;
  for (unsigned s = 0; s < opts_.slots; ++s) {
    Slot& slot = slots_[s];
    slot.cores = part[s];
    slot.banks = part[s];
    switch (cfg_.policy) {
      case system::PolicyKind::SNuca:
        slot.snuca = std::make_unique<nuca::SNucaPolicy>(
            n, cfg_.hierarchy.l1.line_size);
        slot.policy = slot.snuca.get();
        break;
      case system::PolicyKind::RNuca:
        slot.rnuca = std::make_unique<nuca::RNucaPolicy>(mesh_, n, page_table_,
                                                         cfg_.rnuca);
        slot.policy = slot.rnuca.get();
        break;
      case system::PolicyKind::TdNuca:
      case system::PolicyKind::TdNucaBypassOnly: {
        auto td_cfg = cfg_.tdnuca;
        td_cfg.bypass_only =
            (cfg_.policy == system::PolicyKind::TdNucaBypassOnly);
        slot.tdnuca = std::make_unique<nuca::TdNucaPolicy>(mesh_, n, td_cfg);
        slot.policy = slot.tdnuca.get();
        // Adaptive slots carry the alternate policy too; dispatch picks.
        if (opts_.adaptive)
          slot.rnuca = std::make_unique<nuca::RNucaPolicy>(
              mesh_, n, page_table_, cfg_.rnuca);
        break;
      }
      case system::PolicyKind::TdNucaDryRun:
        break;  // rejected above
    }
    if (slot.tdnuca) slot.tdnuca->set_partition(slot.banks, slot.cores);
    if (slot.rnuca) slot.rnuca->set_partition(slot.banks, slot.cores);
    if (slot.snuca) slot.snuca->set_partition(slot.banks, slot.cores);
    slot_policies.push_back(slot.policy);
  }

  // Wrap mode: request address-space slice slot + slots*generation folds
  // back onto its worker slot's active policy.
  router_ = std::make_unique<multi::AppRouter>(slot_policies, /*wrap=*/true);
  caches_ = std::make_unique<coherence::CoherentSystem>(
      eq_, *net_, mesh_, *mcs_, *router_, cfg_.hierarchy, n, rec_);

  // Per-slot LLC accounting (attribution is by requester core, so slices
  // beyond the slot count never index the view).
  coherence::CoherentSystem::AppView view;
  view.num_apps = opts_.slots;
  view.core_app.resize(n);
  const unsigned rows_per_slot = cfg_.mesh_h / opts_.slots;
  for (unsigned c = 0; c < n; ++c)
    view.core_app[c] =
        static_cast<std::uint8_t>(c / (rows_per_slot * cfg_.mesh_w));
  caches_->set_app_view(std::move(view));

  // --- cores ------------------------------------------------------------
  cores_.reserve(n);
  std::vector<vm::Mmu*> mmus;
  for (unsigned i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<core::SimCore>(
        i, eq_, *caches_, page_table_, cfg_.core, cfg_.tlb, cfg_.vm));
    mmus.push_back(&cores_.back()->mmu());
  }
  for (Slot& slot : slots_) {
    if (slot.rnuca) slot.rnuca->set_mmus(mmus);
    slot.cores.for_each(
        [&](CoreId c) { slot.core_ptrs.push_back(cores_[c].get()); });
  }

  // --- fault injection --------------------------------------------------
  if (!cfg_.fault.plan.empty()) {
    fault::FaultInjector::Targets t;
    t.eq = &eq_;
    t.mesh = &mesh_;
    t.net = net_.get();
    t.caches = caches_.get();
    t.mcs = mcs_.get();
    t.tdnuca = nullptr;  // per-slot RRTs; in-map health guards suffice
    t.rec = rec_;
    injector_ = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(cfg_.fault.plan), cfg_.fault, t, n,
        cfg_.hierarchy.l1.line_size);
    health_ = &injector_->health();
    for (Slot& slot : slots_) {
      if (slot.snuca) slot.snuca->set_health(health_);
      if (slot.rnuca) slot.rnuca->set_health(health_);
      if (slot.tdnuca) slot.tdnuca->set_health(health_);
    }
    caches_->set_health(health_);
    net_->set_health(health_);
  }

  if (rec_ != nullptr) register_observability();
}

ServeSystem::~ServeSystem() = default;

void ServeSystem::build(const workloads::WorkloadParams& params) {
  TDN_REQUIRE(!built_, "build() already called");
  built_ = true;
  params_ = params;
  const ArrivalSpec spec = ArrivalSpec::parse(opts_.arrival);
  const std::vector<unsigned> weights =
      parse_weights(opts_.weights, num_tenants());
  const std::vector<Arrival> trace =
      spec.generate(opts_.horizon, weights, params.seed);
  requests_.reserve(trace.size());
  for (const Arrival& a : trace) {
    Request r;
    r.tenant = a.tenant;
    r.arrive = a.cycle;
    requests_.push_back(r);
  }
}

Cycle ServeSystem::run(Cycle cycle_limit) {
  TDN_REQUIRE(built_, "call build() before run()");
  TDN_REQUIRE(!ran_, "run() already called");
  ran_ = true;
  // Restored lineage: jump the fresh queue's clock to the quiescent point
  // first, so everything below schedules at absolute post-restore cycles.
  if (resumed_) eq_.fast_forward(resume_cycle_);
  if (rec_ != nullptr) rec_->arm(eq_);
  if (injector_) {
    // Scheduling order is load-bearing for same-cycle ties: plan events get
    // the lowest sequence numbers (before arrivals), exactly as in the
    // original lineage, so a fault and an arrival on the same cycle keep
    // their relative order across a restore.
    if (resumed_)
      injector_->arm_from(resume_cycle_);
    else
      injector_->arm();
  }
  const std::size_t first = resumed_ ? static_cast<std::size_t>(cursor_) : 0;
  arrivals_remaining_ = requests_.size() - first;
  for (std::size_t i = first; i < requests_.size(); ++i) {
    const unsigned rid = static_cast<unsigned>(i);
    eq_.schedule_at(requests_[i].arrive, [this, rid] { on_arrival(rid); });
  }
  // The mix sampler rides *real* events: it mutates future scheduling, so
  // it must be part of the simulation proper (obs observer events must
  // never change behavior). The chain ends itself once the system drains.
  // Restored lineages re-arm both periodic chains at the exact absolute
  // cycles recorded in the snapshot (a tick can be pending at the fold
  // cycle itself when settle_grace exceeds the epoch) — and in this order,
  // after arrivals and before the re-dispatch pump below, reproducing the
  // original lineage's sequence-number tie order.
  if (!resumed_) {
    if (opts_.adaptive && !requests_.empty()) {
      tick_alive_ = true;
      next_tick_at_ = opts_.epoch;
      eq_.schedule_in(opts_.epoch, [this] { epoch_tick(); });
    }
    if (ckpt_active() && !opts_.adaptive && !requests_.empty()) {
      marker_alive_ = true;
      next_marker_at_ = ckpt_.every;
      eq_.schedule_at(ckpt_.every, [this] { ckpt_marker(); });
    }
  } else {
    if (tick_alive_)
      eq_.schedule_at(next_tick_at_, [this] { epoch_tick(); });
    if (marker_alive_)
      eq_.schedule_at(next_marker_at_, [this] { ckpt_marker(); });
  }
  if (!resumed_ && requests_.empty()) completed_ = true;
  if (resumed_) {
    // The snapshot captured the pending queue *before* the post-fold pump;
    // the original lineage pumped inside the fold event, we pump here —
    // same cycle, same dispatch order, same derived seeds.
    if (arrivals_remaining_ == 0 && pending_.empty() &&
        done_ + shed_ == offered_)
      completed_ = true;
    pump();
  }
  if (cfg_.fault.watchdog_budget > 0) {
    watchdog_ =
        std::make_unique<fault::Watchdog>(eq_, cfg_.fault.watchdog_budget);
    // Witness: memory-system traffic plus admission outcomes. Any of these
    // moving within a budget window is forward progress; a checkpoint fold
    // resets the cache counters, which the inequality test also counts as
    // progress (a fold IS progress).
    watchdog_->set_progress([this] {
      const auto& cs = caches_->stats();
      return cs.l1_hits.value() + cs.l1_misses.value() + offered_ + done_ +
             shed_;
    });
    watchdog_->add_diagnostic("serve", [this] {
      std::string s = "offered=" + std::to_string(offered_) +
                      " done=" + std::to_string(done_) +
                      " shed=" + std::to_string(shed_) +
                      " pending=" + std::to_string(pending_.size()) +
                      " draining=" + std::to_string(draining_ ? 1 : 0);
      return s;
    });
    watchdog_->add_diagnostic("checkpoint", [this] {
      if (!ckpt_active()) return std::string("disabled");
      return "dir=" + (ckpt_.dir.empty() ? std::string("<none>") : ckpt_.dir) +
             " written=" + std::to_string(snapshots_written_) +
             " (resume the newest snapshot with ckpt.resume=true)";
    });
    watchdog_->arm();
  }
  system::run_event_queue(eq_, cfg_, cycle_limit);
  TDN_REQUIRE(completed_,
              "serving drained without completing every admitted request");
  graveyard_.clear();  // queue is empty: no event references retired state
  return makespan_;
}

bool ServeSystem::any_busy() const noexcept {
  for (const Slot& slot : slots_)
    if (slot.busy) return true;
  return false;
}

void ServeSystem::on_arrival(unsigned rid) {
  poll_interrupt();
  --arrivals_remaining_;
  Request& r = requests_[rid];
  ++offered_;
  ++qos_[r.tenant].offered;
  // While draining toward a checkpoint boundary no new request may start
  // (quiescence means idle slots); arrivals queue (or shed) instead. This
  // admission detour is simulated checkpoint cost, identical in the
  // original and every restored lineage — the cadence is fingerprinted.
  if (!draining_) {
    for (unsigned s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].busy) {
        ++epoch_admitted_[r.tenant];
        dispatch(s, rid);
        return;
      }
    }
  }
  if (pending_.size() < opts_.max_pending) {
    ++epoch_admitted_[r.tenant];
    pending_.push_back(rid);
    queue_max_depth_ = std::max(queue_max_depth_, pending_.size());
    return;
  }
  if (opts_.admission == AdmissionPolicy::DropOldest && !pending_.empty()) {
    // Trade the oldest queued request (its deadline is the most blown) for
    // the newcomer; the queue depth is unchanged.
    const unsigned victim = pending_.front();
    pending_.pop_front();
    shed_request(victim);
    ++epoch_admitted_[r.tenant];
    pending_.push_back(rid);
    return;
  }
  shed_request(rid);
}

void ServeSystem::shed_request(unsigned rid) {
  Request& r = requests_[rid];
  r.shed = true;
  ++shed_;
  ++qos_[r.tenant].shed;
  if (rec_ != nullptr && rec_->trace_on()) {
    rec_->instant(obs::Recorder::kServeTrackBase + opts_.slots, "serve",
                  "shed " + tenants_.apps[r.tenant] + "#" +
                      std::to_string(rid),
                  "\"tenant\":" + std::to_string(r.tenant));
  }
  if (arrivals_remaining_ == 0 && done_ + shed_ == offered_)
    completed_ = true;
}

void ServeSystem::dispatch(unsigned s, unsigned rid) {
  Slot& slot = slots_[s];
  Request& r = requests_[rid];
  TDN_REQUIRE(!slot.busy, "dispatch onto a busy slot");
  slot.busy = true;
  r.slot = s;
  r.dispatch = eq_.now();

  auto live = std::make_unique<Live>();

  // Fresh kAppStride-aligned address-space slice per request: consecutive
  // requests on a slot (and an adaptive policy switch between them) can
  // never alias, and stale RRT / page-classification entries from the
  // previous request never match a new address.
  const Addr base =
      mem::kHeapBase + static_cast<Addr>(s + opts_.slots * slot.generation) *
                           multi::kAppStride;
  live->vspace = std::make_unique<mem::VirtualSpace>(base);

  nuca::MappingPolicy* pol = slot.policy;
  if (opts_.adaptive)
    pol = use_tdnuca_ ? static_cast<nuca::MappingPolicy*>(slot.tdnuca.get())
                      : slot.rnuca.get();
  router_->set_policy(s, pol);

  switch (cfg_.scheduler) {
    case system::SchedulerKind::Fifo:
      live->scheduler = std::make_unique<runtime::FifoScheduler>();
      break;
    case system::SchedulerKind::Affinity:
      live->scheduler = std::make_unique<runtime::AffinityScheduler>();
      break;
  }

  runtime::RuntimeHooks* hooks = nullptr;
  if (pol == static_cast<nuca::MappingPolicy*>(slot.tdnuca.get()) &&
      slot.tdnuca) {
    auto hooks_cfg = cfg_.hooks;
    hooks_cfg.line_size = cfg_.hierarchy.l1.line_size;
    live->hooks_td = std::make_unique<tdnuca::TdNucaRuntimeHooks>(
        *slot.tdnuca, page_table_, cfg_.num_cores(), hooks_cfg, rec_);
    if (health_ != nullptr) live->hooks_td->set_health(health_);
    hooks = live->hooks_td.get();
  } else {
    live->hooks_base = std::make_unique<runtime::RuntimeHooks>();
    hooks = live->hooks_base.get();
  }

  // Distinct jitter stream per request id: back-to-back requests on a slot
  // must not mirror each other's dispatch noise.
  auto rt_cfg = cfg_.runtime;
  rt_cfg.jitter_seed += 0x9E3779B97F4A7C15ull * (rid + 1);
  live->rt = std::make_unique<runtime::RuntimeSystem>(
      eq_, slot.core_ptrs, *live->scheduler, *hooks, rt_cfg, rec_);
  if (live->hooks_td) live->hooks_td->set_runtime(live->rt.get());
  if (auto* aff =
          dynamic_cast<runtime::AffinityScheduler*>(live->scheduler.get()))
    aff->set_tasks(&live->rt->tasks());

  workloads::WorkloadParams p = params_;
  p.scale = opts_.request_scale;
  // Decorrelate repeated requests of one tenant's workload.
  p.seed = params_.seed + 1000003ull * (rid + 1);
  live->workload = workloads::make_workload(tenants_.apps[r.tenant], p);
  live->workload->build(workloads::BuildContext{*live->vspace, *live->rt});
  TDN_REQUIRE(live->vspace->footprint() < multi::kAppStride,
              "request footprint overflows its address-space slice");

  slot.live = std::move(live);
  slot.live->rt->run([this, s, rid] { on_complete(s, rid); });
}

void ServeSystem::on_complete(unsigned s, unsigned rid) {
  Slot& slot = slots_[s];
  Request& r = requests_[rid];
  r.complete = eq_.now();
  r.done = true;
  ++done_;
  tasks_total_ += slot.live->rt->tasks_completed();
  makespan_ = std::max(makespan_, r.complete);

  const Cycle sojourn = r.complete - r.arrive;
  const Cycle waited = r.dispatch - r.arrive;
  const Cycle service = r.complete - r.dispatch;
  sojourn_.add(sojourn);
  queue_wait_.add(waited);
  service_.add(service);
  TenantQos& q = qos_[r.tenant];
  ++q.completed;
  q.sojourn.add(sojourn);
  q.queue_wait.add(waited);
  q.service.add(service);

  if (rec_ != nullptr && rec_->trace_on()) {
    rec_->span(obs::Recorder::kServeTrackBase + s, "serve",
               tenants_.apps[r.tenant] + "#" + std::to_string(rid), r.dispatch,
               service,
               "\"tenant\":" + std::to_string(r.tenant) + ",\"queue_wait\":" +
                   std::to_string(waited) + ",\"sojourn\":" +
                   std::to_string(sojourn));
  }

  // Deferred teardown: we are inside this runtime's own completion path,
  // and the TD-NUCA hooks' end-of-task flush joiners can still fire after
  // the last task completes — so retired request state must outlive every
  // event that references it. The graveyard holds it until run() drains
  // the whole queue; the zero-delay pump event only re-dispatches.
  slot.busy = false;
  ++slot.generation;
  graveyard_.push_back(std::move(slot.live));
  eq_.schedule_in(0, [this] { pump(); });

  if (arrivals_remaining_ == 0 && done_ + shed_ == offered_)
    completed_ = true;
  poll_interrupt();
}

void ServeSystem::pump() {
  if (draining_) return;  // refills resume at the fold
  while (!pending_.empty()) {
    int free_slot = -1;
    for (unsigned s = 0; s < slots_.size(); ++s)
      if (!slots_[s].busy) {
        free_slot = static_cast<int>(s);
        break;
      }
    if (free_slot < 0) break;
    const unsigned rid = pending_.front();
    pending_.pop_front();
    dispatch(static_cast<unsigned>(free_slot), rid);
  }
}

void ServeSystem::epoch_tick() {
  tick_alive_ = false;
  std::uint64_t total = 0;
  for (std::uint64_t c : epoch_admitted_) total += c;
  if (total > 0) {
    const double share0 = static_cast<double>(epoch_admitted_[0]) /
                          static_cast<double>(total);
    const bool want_tdnuca = share0 >= opts_.switch_threshold;
    if (want_tdnuca != use_tdnuca_) {
      use_tdnuca_ = want_tdnuca;
      ++policy_switches_;
      if (rec_ != nullptr && rec_->trace_on()) {
        rec_->instant(obs::Recorder::kServeTrackBase + opts_.slots, "serve",
                      use_tdnuca_ ? "switch->tdnuca" : "switch->rnuca");
      }
    }
    std::fill(epoch_admitted_.begin(), epoch_admitted_.end(), 0);
  }
  if (arrivals_remaining_ > 0 || !pending_.empty() || any_busy()) {
    tick_alive_ = true;
    next_tick_at_ = eq_.now() + opts_.epoch;
    eq_.schedule_in(opts_.epoch, [this] { epoch_tick(); });
  }
  // Adaptive + checkpointing: the cadence is a multiple of the epoch
  // (enforced by set_checkpoint), so the drain rides this chain — there is
  // never a separate marker event to race the tick at the same cycle.
  if (ckpt_active() && opts_.adaptive && tick_alive_ && !draining_ &&
      eq_.now() > 0 && eq_.now() % ckpt_.every == 0)
    begin_drain(/*emergency=*/false);
  poll_interrupt();
}

void ServeSystem::register_observability() {
  const unsigned n = cfg_.num_cores();
  rec_->attach_clock(&eq_);
  if (obs::LatencyAttribution* attr = rec_->attribution()) {
    net_->set_transit_sinks(&attr->noc_transit(0), &attr->noc_transit(1));
    for (unsigned m = 0; m < mcs_->count(); ++m)
      mcs_->mc(m).set_queue_sink(&attr->dram_queue());
  }
  for (unsigned i = 0; i < n; ++i)
    rec_->set_track_name(i, "core " + std::to_string(i));
  rec_->set_track_name(obs::Recorder::kRuntimeTrack, "runtime");
  rec_->set_track_name(obs::Recorder::kFlushTrack, "flush engine");
  rec_->set_track_name(obs::Recorder::kCoherenceTrack, "coherence");
  for (unsigned s = 0; s < opts_.slots; ++s)
    rec_->set_track_name(obs::Recorder::kServeTrackBase + s,
                         "serve slot " + std::to_string(s));
  rec_->set_track_name(obs::Recorder::kServeTrackBase + opts_.slots,
                       "serve admission");
  if (injector_) rec_->set_track_name(obs::Recorder::kFaultTrack, "faults");

  for (unsigned b = 0; b < n; ++b) {
    rec_->add_series(
        "llc.bank" + std::to_string(b) + ".hit_ratio",
        [this, b, ph = std::uint64_t{0}, pm = std::uint64_t{0}]() mutable {
          const auto& c = caches_->bank_counters(b);
          const std::uint64_t dh = c.hits - ph;
          const std::uint64_t dm = c.misses - pm;
          ph = c.hits;
          pm = c.misses;
          return (dh + dm) > 0
                     ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                     : 0.0;
        });
  }
  for (unsigned m = 0; m < cfg_.num_memory_controllers; ++m) {
    rec_->add_series("dram.mc" + std::to_string(m) + ".backlog", [this, m] {
      const auto& mc = mcs_->mc(m);
      const Cycle now = eq_.now();
      if (mc.busy_until() <= now) return 0.0;
      return static_cast<double>(mc.busy_until() - now) /
             static_cast<double>(mc.config().service_interval);
    });
  }

  // --- serving series: the load/occupancy picture over time --------------
  rec_->add_series("serve.pending_depth",
                   [this] { return static_cast<double>(pending_.size()); });
  rec_->add_series("serve.busy_slots", [this] {
    unsigned busy = 0;
    for (const Slot& slot : slots_)
      if (slot.busy) ++busy;
    return static_cast<double>(busy);
  });
  rec_->add_series("serve.offered",
                   [this] { return static_cast<double>(offered_); });
  rec_->add_series("serve.shed",
                   [this] { return static_cast<double>(shed_); });
  rec_->add_series("serve.completed",
                   [this] { return static_cast<double>(done_); });

  const unsigned w = cfg_.mesh_w;
  const unsigned h = cfg_.mesh_h;
  rec_->add_heatmap("llc_bank_accesses", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b) {
      const auto& c = caches_->bank_counters(b);
      v[b] = static_cast<double>(c.requests + c.writebacks);
    }
    return v;
  });
  rec_->add_heatmap("noc_router_bytes", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned t = 0; t < n; ++t)
      v[t] = static_cast<double>(net_->router_bytes_at(t));
    return v;
  });
}

// --- checkpoint machinery (tdn::ckpt) --------------------------------------

namespace {

// v2: AllocState grew vm_words (tdn::vm buddy-allocator state; empty for
// legacy snapshots, but the field is always present in the encoding).
constexpr std::uint32_t kPayloadVersion = 2;

/// Sparse histogram encoding: (count, sum, min, max) then the nonzero
/// buckets as (index, count) pairs. Bit-exact: restore() reproduces every
/// percentile walk identically.
void encode_hist(ckpt::Encoder& e, const obs::LatencyHistogram& h) {
  e.u64(h.count());
  e.u64(h.sum());
  e.u64(h.min());
  e.u64(h.max());
  std::uint64_t nonzero = 0;
  for (std::size_t i = 0; i < obs::LatencyHistogram::kBuckets; ++i)
    if (h.bucket_count(i) != 0) ++nonzero;
  e.u64(nonzero);
  for (std::size_t i = 0; i < obs::LatencyHistogram::kBuckets; ++i) {
    if (h.bucket_count(i) != 0) {
      e.u64(i);
      e.u64(h.bucket_count(i));
    }
  }
}

void decode_hist(ckpt::Decoder& d, obs::LatencyHistogram& h) {
  const std::uint64_t count = d.u64();
  const Cycle sum = d.u64();
  const Cycle mn = d.u64();
  const Cycle mx = d.u64();
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> counts{};
  const std::uint64_t nonzero = d.u64();
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < nonzero; ++k) {
    const std::uint64_t idx = d.u64();
    if (idx >= obs::LatencyHistogram::kBuckets)
      throw ckpt::SnapshotError("snapshot histogram bucket out of range");
    counts[static_cast<std::size_t>(idx)] = d.u64();
    total += counts[static_cast<std::size_t>(idx)];
  }
  if (total != count)
    throw ckpt::SnapshotError("snapshot histogram bucket/count mismatch");
  h.restore(counts, count, sum, mn, mx);
}

}  // namespace

void ServeSystem::set_checkpoint(const ckpt::Options& opts,
                                 std::uint64_t config_fingerprint) {
  TDN_REQUIRE(!ran_, "set_checkpoint must precede run()");
  TDN_REQUIRE(opts.enabled(), "checkpointing needs a cadence (every > 0)");
  TDN_REQUIRE(opts.settle_grace >= 1, "settle grace must be >= 1 cycle");
  TDN_REQUIRE(!opts_.adaptive || opts.every % opts_.epoch == 0,
              "adaptive serving: checkpoint cadence must be a multiple of "
              "the adaptation epoch (the drain rides the epoch-tick chain, "
              "so tick-vs-marker tie order can never diverge on restore)");
  ckpt_ = opts;
  ckpt_fingerprint_ = config_fingerprint;
}

void ServeSystem::poll_interrupt() {
  if (!ckpt_active() || draining_ || !ckpt::interrupt_requested()) return;
  begin_drain(/*emergency=*/true);
}

void ServeSystem::begin_drain(bool emergency) {
  TDN_ASSERT(!draining_);
  draining_ = true;
  emergency_ = emergency;
  eq_.schedule_in(ckpt_.settle_grace, [this] { ckpt_settle(); });
}

void ServeSystem::ckpt_marker() {
  marker_alive_ = false;
  poll_interrupt();  // an emergency drain outranks the cadence one
  if (arrivals_remaining_ == 0 && pending_.empty() && !any_busy() &&
      !draining_)
    return;  // served everything: the chain dies with the system
  marker_alive_ = true;
  next_marker_at_ = eq_.now() + ckpt_.every;
  eq_.schedule_at(next_marker_at_, [this] { ckpt_marker(); });
  if (!draining_) begin_drain(/*emergency=*/false);
}

void ServeSystem::ckpt_settle() {
  TDN_ASSERT(draining_);
  if (!quiescent()) {
    eq_.schedule_in(ckpt_.settle_grace, [this] { ckpt_settle(); });
    return;
  }
  ckpt_fold();
}

bool ServeSystem::quiescent() const {
  if (any_busy()) return false;
  // Exact event census: every pending *real* event must be expected future
  // work. In-flight coherence/NoC/DRAM events, retired runtimes' trailing
  // flush joiners, fault-recovery flushes and zero-delay pump events all
  // make real_pending exceed this count until they finish draining.
  std::size_t expected = static_cast<std::size_t>(arrivals_remaining_);
  if (tick_alive_) ++expected;
  if (marker_alive_) ++expected;
  if (injector_) expected += injector_->plan_pending();
  return eq_.real_pending() == expected;
}

void ServeSystem::ckpt_fold() {
  TDN_ASSERT(draining_ && quiescent());
  const Cycle cyc = eq_.now();
  fold_machine_counters();
  cold_normalize();
  // Quiescence proves no event references retired request state: dropping
  // the graveyard here (in both lineages) bounds a long run's memory.
  graveyard_.clear();
  const std::string payload = encode_snapshot();
  draining_ = false;
  if (!ckpt_.dir.empty()) {
    if (ckpt::write_snapshot(ckpt_, ckpt_fingerprint_, cyc, payload,
                             emergency_))
      ++snapshots_written_;
  }
  if (emergency_) {
    emergency_ = false;
    throw ckpt::InterruptedError(
        std::string("serving interrupted at cycle ") + std::to_string(cyc) +
        (ckpt_.dir.empty() ? " (no checkpoint directory configured)"
                           : " (emergency snapshot published)"));
  }
  pump();  // the restored lineage pumps in run() at this same cycle
}

void ServeSystem::fold_machine_counters() {
  const auto& cs = caches_->stats();
  baseline_.en.l1_hits += cs.l1_hits.value();
  baseline_.en.l1_misses += cs.l1_misses.value();
  baseline_.en.flush_l1_lines += cs.flush_l1_lines.value();
  baseline_.en.llc_requests += cs.llc_requests.value();
  baseline_.en.llc_misses += cs.llc_misses.value();
  baseline_.en.llc_writebacks += cs.llc_writebacks.value();
  baseline_.en.flush_llc_lines += cs.flush_llc_lines.value();
  baseline_.en.noc_router_bytes += net_->total_router_bytes();
  baseline_.en.dram_accesses += mcs_->total_accesses();
  baseline_.llc_hits += cs.llc_hits.value();
  baseline_.bypass_reads += cs.bypass_reads.value();
  baseline_.noc_messages += net_->messages();
  baseline_.nuca_total += cs.nuca_distance.total();
  baseline_.nuca_weight += cs.nuca_distance.weight();
  baseline_.miss_lat_total += cs.miss_latency.total();
  baseline_.miss_lat_weight += cs.miss_latency.weight();
  for (unsigned s = 0; s < opts_.slots; ++s) {
    if (slots_[s].tdnuca)
      baseline_.en.rrt_lookups +=
          slots_[s].tdnuca->rrt_hits() + slots_[s].tdnuca->rrt_misses();
    const auto& ac = caches_->app_counters(s);
    SlotBaseline& sb = slot_baseline_[s];
    sb.llc_requests += ac.llc_requests;
    sb.llc_hits += ac.llc_hits;
    sb.llc_misses += ac.llc_misses;
    sb.llc_writebacks += ac.llc_writebacks;
    sb.bypass_reads += ac.bypass_reads;
  }
  for (auto& core : cores_) {
    vm::Mmu& mmu = core->mmu();
    baseline_.tlb_hits += mmu.tlb_hits();
    baseline_.tlb_misses += mmu.tlb_misses();
    baseline_.tlb_shootdowns += mmu.tlb_shootdowns();
    baseline_.l2_tlb_hits += mmu.l2_tlb_hits();
    baseline_.walks += mmu.walks();
    baseline_.walk_loads += mmu.walk_loads();
    baseline_.walk_cycles += mmu.walk_cycles();
    baseline_.isa_walk_cycles += mmu.charge_walk_cycles();
    baseline_.psc_hits += mmu.psc_hits();
    mmu.ckpt_reset_stats();
  }
  baseline_.huge_fallbacks += page_table_.huge_fallbacks();
  page_table_.ckpt_reset_stats();
  caches_->ckpt_reset_stats();
  net_->ckpt_reset_stats();
  for (unsigned m = 0; m < mcs_->count(); ++m) mcs_->mc(m).ckpt_reset_stats();
}

void ServeSystem::cold_normalize() {
  caches_->ckpt_cold_reset();
  // Stale TLB entries can never *match* a future request's slice (slices
  // are generation-unique), but their residency would skew replacement —
  // the restored lineage's TLBs are empty, so the continuing one's must be.
  // In vm mode this also clears the paging-structure caches, matching the
  // freshly constructed walkers on the restored side.
  for (auto& core : cores_) core->mmu().ckpt_cold_reset();
  for (Slot& slot : slots_) {
    if (slot.tdnuca) slot.tdnuca->ckpt_reset();
    if (slot.rnuca) slot.rnuca->ckpt_reset();
  }
  page_table_.ckpt_drop_mappings();
}

std::string ServeSystem::encode_snapshot() const {
  ckpt::Encoder e;
  e.u32(kPayloadVersion);
  e.u64(requests_.size() - arrivals_remaining_);  // arrival cursor
  e.u64(pending_.size());
  for (unsigned rid : pending_) e.u64(rid);
  e.u64(offered_);
  e.u64(shed_);
  e.u64(done_);
  e.u64(tasks_total_);
  e.u64(queue_max_depth_);
  e.u64(makespan_);
  e.u64(policy_switches_);
  e.u8(use_tdnuca_ ? 1 : 0);
  // Periodic chains: the *absolute* pending cycle (0 = chain dead). A tick
  // can be pending at the fold cycle itself (settle_grace > epoch), so this
  // must be recorded, never re-derived from the cadence.
  e.u64(tick_alive_ ? next_tick_at_ : 0);
  e.u64(marker_alive_ ? next_marker_at_ : 0);
  e.u64_vec(epoch_admitted_);
  e.u64(qos_.size());
  for (const TenantQos& q : qos_) {
    e.u64(q.offered);
    e.u64(q.shed);
    e.u64(q.completed);
    encode_hist(e, q.sojourn);
    encode_hist(e, q.queue_wait);
    encode_hist(e, q.service);
  }
  encode_hist(e, sojourn_);
  encode_hist(e, queue_wait_);
  encode_hist(e, service_);
  e.u64(slots_.size());
  for (unsigned s = 0; s < slots_.size(); ++s) {
    e.u64(slots_[s].generation);
    const SlotBaseline& sb = slot_baseline_[s];
    e.u64(sb.llc_requests);
    e.u64(sb.llc_hits);
    e.u64(sb.llc_misses);
    e.u64(sb.llc_writebacks);
    e.u64(sb.bypass_reads);
  }
  // Machine baseline (fresh counters were just folded and reset, so the
  // baseline alone is the cumulative machine history). The events field
  // carries a +1 compensation: the fold event executing right now is
  // counted by the live queue only after its action returns, but it
  // belongs to the restored lineage's past.
  e.u64(baseline_.events + eq_.executed() + 1);
  e.u64(baseline_.llc_hits);
  e.u64(baseline_.bypass_reads);
  e.u64(baseline_.noc_messages);
  e.u64(baseline_.en.llc_requests);
  e.u64(baseline_.en.llc_misses);
  e.u64(baseline_.en.llc_writebacks);
  e.u64(baseline_.en.flush_llc_lines);
  e.u64(baseline_.en.l1_hits);
  e.u64(baseline_.en.l1_misses);
  e.u64(baseline_.en.flush_l1_lines);
  e.u64(baseline_.en.noc_router_bytes);
  e.u64(baseline_.en.dram_accesses);
  e.u64(baseline_.en.rrt_lookups);
  e.f64(baseline_.nuca_total);
  e.f64(baseline_.nuca_weight);
  e.f64(baseline_.miss_lat_total);
  e.f64(baseline_.miss_lat_weight);
  // Translation baseline (payload v2; the cores' Mmu counters were folded
  // and reset alongside the machine counters above).
  e.u64(baseline_.tlb_hits);
  e.u64(baseline_.tlb_misses);
  e.u64(baseline_.tlb_shootdowns);
  e.u64(baseline_.l2_tlb_hits);
  e.u64(baseline_.walks);
  e.u64(baseline_.walk_loads);
  e.u64(baseline_.walk_cycles);
  e.u64(baseline_.isa_walk_cycles);
  e.u64(baseline_.psc_hits);
  e.u64(baseline_.huge_fallbacks);
  // Derived-PRNG position of the page allocator: a restored run's
  // first-touch allocations continue the exact fragmentation sample
  // sequence the snapshotted lineage would have drawn.
  const mem::PageTable::AllocState as = page_table_.alloc_state();
  e.u64(as.next_frame);
  e.u64(as.rng_state);
  e.u64_vec(as.skipped_frames);
  e.u64_vec(as.vm_words);
  return e.take();
}

void ServeSystem::resume_from(const ckpt::Snapshot& snap) {
  TDN_REQUIRE(built_, "call build() before resume_from()");
  TDN_REQUIRE(!ran_, "resume_from must precede run()");
  TDN_REQUIRE(ckpt_active(), "call set_checkpoint() before resume_from()");
  TDN_REQUIRE(snap.config_fingerprint == ckpt_fingerprint_,
              "snapshot belongs to a different configuration");
  ckpt::Decoder d(snap.payload);
  if (d.u32() != kPayloadVersion)
    throw ckpt::SnapshotError("unsupported snapshot payload version");
  cursor_ = d.u64();
  if (cursor_ > requests_.size())
    throw ckpt::SnapshotError("snapshot cursor beyond the regenerated trace");
  // The cursor must split the regenerated trace exactly at the snapshot
  // cycle — anything else means the trace (seed/spec) drifted.
  if (cursor_ > 0 && requests_[cursor_ - 1].arrive > snap.cycle)
    throw ckpt::SnapshotError("snapshot cursor disagrees with the trace");
  if (cursor_ < requests_.size() && requests_[cursor_].arrive <= snap.cycle)
    throw ckpt::SnapshotError("snapshot cursor disagrees with the trace");
  const std::uint64_t npend = d.u64();
  pending_.clear();
  for (std::uint64_t i = 0; i < npend; ++i) {
    const std::uint64_t rid = d.u64();
    if (rid >= cursor_)
      throw ckpt::SnapshotError("snapshot pending request never arrived");
    pending_.push_back(static_cast<unsigned>(rid));
  }
  offered_ = d.u64();
  shed_ = d.u64();
  done_ = d.u64();
  tasks_total_ = d.u64();
  queue_max_depth_ = static_cast<std::size_t>(d.u64());
  makespan_ = d.u64();
  policy_switches_ = d.u64();
  use_tdnuca_ = d.u8() != 0;
  next_tick_at_ = d.u64();
  tick_alive_ = next_tick_at_ != 0;
  next_marker_at_ = d.u64();
  marker_alive_ = next_marker_at_ != 0;
  if ((tick_alive_ && next_tick_at_ < snap.cycle) ||
      (marker_alive_ && next_marker_at_ < snap.cycle))
    throw ckpt::SnapshotError("snapshot periodic chain is in the past");
  {
    auto ea = d.u64_vec();
    if (ea.size() != epoch_admitted_.size())
      throw ckpt::SnapshotError("snapshot tenant count mismatch");
    epoch_admitted_ = std::move(ea);
  }
  if (d.u64() != qos_.size())
    throw ckpt::SnapshotError("snapshot tenant count mismatch");
  for (TenantQos& q : qos_) {
    q.offered = d.u64();
    q.shed = d.u64();
    q.completed = d.u64();
    decode_hist(d, q.sojourn);
    decode_hist(d, q.queue_wait);
    decode_hist(d, q.service);
  }
  decode_hist(d, sojourn_);
  decode_hist(d, queue_wait_);
  decode_hist(d, service_);
  if (d.u64() != slots_.size())
    throw ckpt::SnapshotError("snapshot slot count mismatch");
  for (unsigned s = 0; s < slots_.size(); ++s) {
    slots_[s].generation = static_cast<unsigned>(d.u64());
    SlotBaseline& sb = slot_baseline_[s];
    sb.llc_requests = d.u64();
    sb.llc_hits = d.u64();
    sb.llc_misses = d.u64();
    sb.llc_writebacks = d.u64();
    sb.bypass_reads = d.u64();
  }
  baseline_.events = d.u64();
  baseline_.llc_hits = d.u64();
  baseline_.bypass_reads = d.u64();
  baseline_.noc_messages = d.u64();
  baseline_.en.llc_requests = d.u64();
  baseline_.en.llc_misses = d.u64();
  baseline_.en.llc_writebacks = d.u64();
  baseline_.en.flush_llc_lines = d.u64();
  baseline_.en.l1_hits = d.u64();
  baseline_.en.l1_misses = d.u64();
  baseline_.en.flush_l1_lines = d.u64();
  baseline_.en.noc_router_bytes = d.u64();
  baseline_.en.dram_accesses = d.u64();
  baseline_.en.rrt_lookups = d.u64();
  baseline_.nuca_total = d.f64();
  baseline_.nuca_weight = d.f64();
  baseline_.miss_lat_total = d.f64();
  baseline_.miss_lat_weight = d.f64();
  baseline_.tlb_hits = d.u64();
  baseline_.tlb_misses = d.u64();
  baseline_.tlb_shootdowns = d.u64();
  baseline_.l2_tlb_hits = d.u64();
  baseline_.walks = d.u64();
  baseline_.walk_loads = d.u64();
  baseline_.walk_cycles = d.u64();
  baseline_.isa_walk_cycles = d.u64();
  baseline_.psc_hits = d.u64();
  baseline_.huge_fallbacks = d.u64();
  mem::PageTable::AllocState as;
  as.next_frame = d.u64();
  as.rng_state = d.u64();
  as.skipped_frames = d.u64_vec();
  as.vm_words = d.u64_vec();
  page_table_.set_alloc_state(as);
  if (!d.done())
    throw ckpt::SnapshotError("snapshot payload has trailing bytes");
  // Admission conservation must hold at any quiescent point.
  if (done_ + shed_ + pending_.size() != offered_)
    throw ckpt::SnapshotError("snapshot violates admission conservation");
  resumed_ = true;
  resume_cycle_ = snap.cycle;
}

stats::Registry ServeSystem::collect_stats() const {
  stats::Registry r;
  const unsigned n = cfg_.num_cores();
  const auto& cs = caches_->stats();

  // Every machine-level metric is `baseline + fresh`: checkpoint folds move
  // the live counters into baseline_ and reset them, so with checkpointing
  // off the baseline is zero and these reduce to the original expressions
  // bit-for-bit (0 + x and 0.0 + x are exact for the finite values here;
  // integer counts combine as u64 before any double conversion).
  energy::EnergyInputs en = baseline_.en;
  en.llc_requests += cs.llc_requests.value();
  en.llc_misses += cs.llc_misses.value();
  en.llc_writebacks += cs.llc_writebacks.value();
  en.flush_llc_lines += cs.flush_llc_lines.value();
  en.l1_hits += cs.l1_hits.value();
  en.l1_misses += cs.l1_misses.value();
  en.flush_l1_lines += cs.flush_l1_lines.value();
  en.noc_router_bytes += net_->total_router_bytes();
  en.dram_accesses += mcs_->total_accesses();
  for (const Slot& slot : slots_)
    if (slot.tdnuca)
      en.rrt_lookups += slot.tdnuca->rrt_hits() + slot.tdnuca->rrt_misses();
  const std::uint64_t llc_hits = baseline_.llc_hits + cs.llc_hits.value();

  r.set("sim.cycles", static_cast<double>(makespan_));
  r.set("sim.events", static_cast<double>(baseline_.events + eq_.executed()));
  r.set("tasks.completed", static_cast<double>(tasks_total_));
  r.set("l1.hits", static_cast<double>(en.l1_hits));
  r.set("l1.misses", static_cast<double>(en.l1_misses));
  r.set("llc.requests", static_cast<double>(en.llc_requests));
  r.set("llc.hits", static_cast<double>(llc_hits));
  r.set("llc.misses", static_cast<double>(en.llc_misses));
  r.set("llc.writebacks", static_cast<double>(en.llc_writebacks));
  r.set("llc.accesses",
        static_cast<double>(en.llc_requests + en.llc_writebacks));
  {
    const double h = static_cast<double>(llc_hits);
    const double m = static_cast<double>(en.llc_misses);
    r.set("llc.hit_ratio", (h + m) > 0 ? h / (h + m) : 0.0);
  }
  r.set("llc.bypass_reads",
        static_cast<double>(baseline_.bypass_reads + cs.bypass_reads.value()));
  {
    const double w = baseline_.nuca_weight + cs.nuca_distance.weight();
    const double s = baseline_.nuca_total + cs.nuca_distance.total();
    r.set("nuca.mean_distance", w > 0 ? s / w : 0.0);
  }
  {
    const double w = baseline_.miss_lat_weight + cs.miss_latency.weight();
    const double s = baseline_.miss_lat_total + cs.miss_latency.total();
    r.set("l1.mean_miss_latency", w > 0 ? s / w : 0.0);
  }
  r.set("noc.router_bytes", static_cast<double>(en.noc_router_bytes));
  r.set("noc.messages",
        static_cast<double>(baseline_.noc_messages + net_->messages()));
  r.set("dram.accesses", static_cast<double>(en.dram_accesses));

  // Translation metrics: baseline + fresh like everything above (per-core
  // breakdowns are a single-program TiledSystem affordance; serving reports
  // machine aggregates). State-derived keys (page census) need no folding —
  // mappings and the buddy pool are part of the snapshot itself.
  {
    MachineBaseline t = baseline_;
    for (const auto& core : cores_) {
      const vm::Mmu& m = core->mmu();
      t.tlb_hits += m.tlb_hits();
      t.tlb_misses += m.tlb_misses();
      t.tlb_shootdowns += m.tlb_shootdowns();
      t.l2_tlb_hits += m.l2_tlb_hits();
      t.walks += m.walks();
      t.walk_loads += m.walk_loads();
      t.walk_cycles += m.walk_cycles();
      t.isa_walk_cycles += m.charge_walk_cycles();
      t.psc_hits += m.psc_hits();
    }
    r.set("tlb.hits", static_cast<double>(t.tlb_hits));
    r.set("tlb.misses", static_cast<double>(t.tlb_misses));
    r.set("mem.tlb_shootdowns", static_cast<double>(t.tlb_shootdowns));
    r.set("mem.mapped_pages",
          static_cast<double>(page_table_.mapped_pages()));
    r.set("mem.frames_used", static_cast<double>(page_table_.frames_used()));
    if (cfg_.vm.enabled) {
      r.set("vm.walks", static_cast<double>(t.walks));
      r.set("vm.walk_loads", static_cast<double>(t.walk_loads));
      r.set("vm.walk_cycles", static_cast<double>(t.walk_cycles));
      r.set("vm.isa_walk_cycles", static_cast<double>(t.isa_walk_cycles));
      r.set("vm.psc_hits", static_cast<double>(t.psc_hits));
      r.set("vm.l2_tlb_hits", static_cast<double>(t.l2_tlb_hits));
      r.set("vm.pages_4k",
            static_cast<double>(page_table_.pages_of(vm::kPage4K)));
      r.set("vm.pages_2m",
            static_cast<double>(page_table_.pages_of(vm::kPage2M)));
      r.set("vm.pages_1g",
            static_cast<double>(page_table_.pages_of(vm::kPage1G)));
      r.set("vm.huge_fallbacks",
            static_cast<double>(t.huge_fallbacks +
                                page_table_.huge_fallbacks()));
      r.set("vm.punctured_frames",
            static_cast<double>(page_table_.punctured_frames()));
    }
  }

  const auto e = energy::compute_energy(en, energy::EnergyParams{});
  r.set("energy.llc_pj", e.llc_pj);
  r.set("energy.noc_pj", e.noc_pj);
  r.set("energy.dram_pj", e.dram_pj);
  r.set("energy.total_pj", e.total_pj());

  // --- serving aggregates ------------------------------------------------
  const double offered = static_cast<double>(offered_);
  r.set("serve.slots", static_cast<double>(opts_.slots));
  r.set("serve.horizon", static_cast<double>(opts_.horizon));
  r.set("serve.offered", offered);
  r.set("serve.admitted", static_cast<double>(offered_ - shed_));
  r.set("serve.shed", static_cast<double>(shed_));
  r.set("serve.shed_rate",
        offered_ > 0 ? static_cast<double>(shed_) / offered : 0.0);
  r.set("serve.completed", static_cast<double>(done_));
  // Goodput: completed requests per million cycles of the serving window
  // (its natural end is the later of horizon and last completion).
  const Cycle window = std::max(makespan_, opts_.horizon);
  r.set("serve.goodput",
        window > 0 ? static_cast<double>(done_) * 1e6 /
                         static_cast<double>(window)
                   : 0.0);
  r.set("serve.makespan", static_cast<double>(makespan_));
  r.set("serve.drain_cycles",
        static_cast<double>(makespan_ > opts_.horizon
                                ? makespan_ - opts_.horizon
                                : 0));
  r.set("serve.queue.max_depth", static_cast<double>(queue_max_depth_));
  r.set("serve.policy_switches", static_cast<double>(policy_switches_));

  auto emit_hist = [&r](const std::string& p, const obs::LatencyHistogram& h) {
    r.set(p + ".mean", h.mean());
    r.set(p + ".p50", static_cast<double>(h.percentile(0.50)));
    r.set(p + ".p99", static_cast<double>(h.percentile(0.99)));
    r.set(p + ".p999", static_cast<double>(h.percentile(0.999)));
    r.set(p + ".max", static_cast<double>(h.max()));
  };
  emit_hist("serve.sojourn", sojourn_);
  emit_hist("serve.queue_wait", queue_wait_);
  emit_hist("serve.service", service_);

  // --- per-tenant QoS ----------------------------------------------------
  for (unsigned t = 0; t < num_tenants(); ++t) {
    const TenantQos& q = qos_[t];
    const std::string p = "serve.tenant" + std::to_string(t);
    r.set(p + ".offered", static_cast<double>(q.offered));
    r.set(p + ".shed", static_cast<double>(q.shed));
    r.set(p + ".shed_rate", q.offered > 0 ? static_cast<double>(q.shed) /
                                                static_cast<double>(q.offered)
                                          : 0.0);
    r.set(p + ".completed", static_cast<double>(q.completed));
    r.set(p + ".goodput",
          window > 0 ? static_cast<double>(q.completed) * 1e6 /
                           static_cast<double>(window)
                     : 0.0);
    emit_hist(p + ".sojourn", q.sojourn);
    emit_hist(p + ".queue_wait", q.queue_wait);
  }

  // Per-slot LLC view (the AppView counters, plus their folded baselines).
  for (unsigned s = 0; s < opts_.slots; ++s) {
    const auto& ac = caches_->app_counters(s);
    const SlotBaseline& sb = slot_baseline_[s];
    const std::string p = "serve.slot" + std::to_string(s);
    r.set(p + ".llc.requests",
          static_cast<double>(sb.llc_requests + ac.llc_requests));
    r.set(p + ".llc.hits", static_cast<double>(sb.llc_hits + ac.llc_hits));
    r.set(p + ".llc.misses",
          static_cast<double>(sb.llc_misses + ac.llc_misses));
    r.set(p + ".requests_served", static_cast<double>(slots_[s].generation));
  }
  (void)n;
  return r;
}

}  // namespace tdn::serve
