// tdn::serve — open-arrival traffic serving on the shared NUCA substrate.
//
// Where tdn::multi colocates a *closed* fixed mix, serve models the open
// system of ROADMAP item 2: task-graph "requests" arrive over simulated time
// via a configurable arrival process, pass an admission controller with a
// bounded pending queue, and execute on per-slot machine partitions with
// per-tenant QoS accounting (sojourn-time tail percentiles, goodput, shed
// rate). ServeOptions is the whole contract: every field is folded into the
// experiment fingerprint via canonical(), so serving runs are cacheable and
// sweep-deterministic like any other RunConfig. Operator's manual:
// docs/serving.md.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tdn::serve {

/// What the admission controller does with an arrival that finds the
/// pending queue full.
enum class AdmissionPolicy : std::uint8_t {
  /// Shed the incoming request (classic bounded-queue tail drop).
  Reject,
  /// Shed the *oldest* queued request and admit the newcomer — trades a
  /// stale request (whose sojourn deadline is likely already blown) for a
  /// fresh one; lowers tail sojourn at equal shed rate.
  DropOldest,
};

const char* to_string(AdmissionPolicy p);

/// Serving knobs. A non-empty `arrival` spec turns a RunConfig into an
/// open-arrival serving run (harness::run_experiment routes it onto a
/// ServeSystem); everything here enters RunConfig::fingerprint() through
/// canonical(), so two runs with different serving options never share a
/// results-cache entry.
struct ServeOptions {
  /// Arrival-process DSL, e.g. "poisson:gap=40k" — see arrival.hpp for the
  /// grammar. Empty = serving disabled (the default: ordinary closed runs).
  std::string arrival;
  /// Open-arrival window: requests are generated in [0, horizon); admitted
  /// requests still in the system at the horizon run to completion
  /// (time-to-drain is reported as serve.drain_cycles).
  Cycle horizon = 600'000;
  /// Worker slots: row-granular machine partitions (multi::row_partitions),
  /// each serving one request at a time with its own NUCA policy instance.
  /// Must divide the mesh height evenly.
  unsigned slots = 2;
  /// Admission-queue bound: at most this many admitted-but-undispatched
  /// requests wait; an arrival beyond it is shed per `admission`. 0 means
  /// no queueing at all (a request is served immediately or shed).
  unsigned max_pending = 8;
  AdmissionPolicy admission = AdmissionPolicy::Reject;
  /// Per-tenant arrival weights, colon-joined ("3:1" = tenant 0 arrives 3x
  /// as often as tenant 1). Empty = equal weights. Must have exactly one
  /// component per tenant when non-empty.
  std::string weights;
  /// Workload scale of each request's task graph (WorkloadParams::scale).
  /// Serving studies want many small graphs, not one LLC-busting one.
  double request_scale = 0.05;
  /// Runtime policy switching: start every slot on TD-NUCA and switch
  /// future dispatches to R-NUCA (and back) when the admitted tenant mix
  /// shifts across `switch_threshold`, sampled every `epoch` cycles.
  /// Requires the RunConfig policy to be TdNuca. Switches apply at request
  /// dispatch boundaries only — in-flight requests keep the policy they
  /// started with (each request lives in a fresh address-space slot, so the
  /// two policies never disagree about a live line).
  bool adaptive = false;
  /// Mix-observation period for adaptive switching, in simulated cycles.
  /// This sampler mutates scheduling decisions, so it rides on *real*
  /// events (never obs observer events) and is part of the fingerprint.
  Cycle epoch = 20'000;
  /// Tenant-0 share of admitted requests in the last epoch at or above
  /// which future dispatches use TD-NUCA; below it they use R-NUCA.
  double switch_threshold = 0.5;

  bool enabled() const noexcept { return !arrival.empty(); }
  /// e.g. "poisson:gap=40k/h600000/s2/q8/rej/w3:1/sc0.05/ad0/e20000/th0.5"
  /// — folded into RunConfig::fingerprint().
  std::string canonical() const;
};

}  // namespace tdn::serve
