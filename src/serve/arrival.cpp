#include "serve/arrival.hpp"

#include <cmath>
#include <sstream>

#include "common/prng.hpp"
#include "common/require.hpp"
#include "serve/options.hpp"

namespace tdn::serve {

namespace {

constexpr const char* kGrammar =
    "expected 'poisson:gap=N', 'fixed:gap=N', "
    "'mmpp:gap=N,burst=N,dwell=N' or 'diurnal:gap=N,amp=F,period=N' "
    "(N takes k/M suffixes; see docs/serving.md)";

/// "40k" -> 40000, "2M" -> 2000000, plain digits otherwise.
Cycle parse_cycles(std::string_view text, std::string_view what) {
  TDN_REQUIRE(!text.empty(), "empty value for '" + std::string(what) + "'");
  std::uint64_t mul = 1;
  if (text.back() == 'k') {
    mul = 1000;
    text.remove_suffix(1);
  } else if (text.back() == 'M') {
    mul = 1'000'000;
    text.remove_suffix(1);
  }
  std::uint64_t v = 0;
  for (char c : text) {
    TDN_REQUIRE(c >= '0' && c <= '9', "bad number '" + std::string(text) +
                                          "' for '" + std::string(what) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v * mul;
}

double parse_fraction(std::string_view text, std::string_view what) {
  TDN_REQUIRE(!text.empty(), "empty value for '" + std::string(what) + "'");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(std::string(text), &pos);
  } catch (...) {
    TDN_REQUIRE(false, "bad fraction '" + std::string(text) + "' for '" +
                           std::string(what) + "'");
  }
  TDN_REQUIRE(pos == text.size(), "trailing junk in '" + std::string(text) +
                                      "' for '" + std::string(what) + "'");
  return v;
}

/// Exponential inter-arrival draw with the given mean, floored to whole
/// cycles. Uses log1p(-u) with u in [0,1) so the argument never hits zero.
Cycle exp_draw(SplitMix64& prng, Cycle mean) {
  const double u = prng.next_double();
  double g = -static_cast<double>(mean) * std::log1p(-u);
  if (g < 0.0) g = 0.0;
  const double cap = 1e15;  // absurd-draw guard, far past any horizon
  if (g > cap) g = cap;
  return static_cast<Cycle>(g);
}

unsigned draw_tenant(SplitMix64& prng, const std::vector<unsigned>& weights,
                     unsigned total) {
  std::uint64_t r = prng.next_below(total);
  for (unsigned t = 0; t < weights.size(); ++t) {
    if (r < weights[t]) return t;
    r -= weights[t];
  }
  return static_cast<unsigned>(weights.size() - 1);  // unreachable
}

}  // namespace

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Mmpp: return "mmpp";
    case ArrivalKind::Diurnal: return "diurnal";
    case ArrivalKind::Fixed: return "fixed";
  }
  return "?";
}

const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::Reject: return "reject";
    case AdmissionPolicy::DropOldest: return "drop-oldest";
  }
  return "?";
}

std::string ServeOptions::canonical() const {
  std::ostringstream os;
  os << arrival << "/h" << horizon << "/s" << slots << "/q" << max_pending
     << '/' << (admission == AdmissionPolicy::Reject ? "rej" : "dropold")
     << "/w" << (weights.empty() ? "-" : weights) << "/sc" << request_scale
     << "/ad" << (adaptive ? 1 : 0);
  if (adaptive) os << "/e" << epoch << "/th" << switch_threshold;
  return os.str();
}

ArrivalSpec ArrivalSpec::parse(std::string_view text) {
  TDN_REQUIRE(!text.empty(), std::string("empty arrival spec: ") + kGrammar);
  const std::size_t colon = text.find(':');
  const std::string_view kind_txt = text.substr(0, colon);

  ArrivalSpec spec;
  if (kind_txt == "poisson") spec.kind = ArrivalKind::Poisson;
  else if (kind_txt == "mmpp") spec.kind = ArrivalKind::Mmpp;
  else if (kind_txt == "diurnal") spec.kind = ArrivalKind::Diurnal;
  else if (kind_txt == "fixed") spec.kind = ArrivalKind::Fixed;
  else
    TDN_REQUIRE(false, "unknown arrival kind '" + std::string(kind_txt) +
                           "': " + kGrammar);

  if (colon != std::string_view::npos) {
    std::string_view rest = text.substr(colon + 1);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view kv = rest.substr(0, comma);
      const std::size_t eq = kv.find('=');
      TDN_REQUIRE(eq != std::string_view::npos && eq > 0,
                  "bad key=value '" + std::string(kv) + "': " + kGrammar);
      const std::string_view key = kv.substr(0, eq);
      const std::string_view val = kv.substr(eq + 1);
      if (key == "gap") spec.gap = parse_cycles(val, key);
      else if (key == "burst") spec.burst = parse_cycles(val, key);
      else if (key == "dwell") spec.dwell = parse_cycles(val, key);
      else if (key == "period") spec.period = parse_cycles(val, key);
      else if (key == "amp") spec.amp = parse_fraction(val, key);
      else
        TDN_REQUIRE(false, "unknown arrival key '" + std::string(key) +
                               "': " + kGrammar);
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
  }

  TDN_REQUIRE(spec.gap > 0, "arrival gap must be positive");
  if (spec.kind == ArrivalKind::Mmpp) {
    TDN_REQUIRE(spec.burst > 0 && spec.dwell > 0,
                "mmpp needs positive burst and dwell");
  }
  if (spec.kind == ArrivalKind::Diurnal) {
    TDN_REQUIRE(spec.period > 0, "diurnal needs a positive period");
    TDN_REQUIRE(spec.amp >= 0.0 && spec.amp < 1.0,
                "diurnal amp must be in [0, 1)");
  }
  return spec;
}

std::vector<Arrival> ArrivalSpec::generate(
    Cycle horizon, const std::vector<unsigned>& weights,
    std::uint64_t seed) const {
  TDN_REQUIRE(!weights.empty(), "at least one tenant");
  unsigned total_weight = 0;
  for (unsigned w : weights) {
    TDN_REQUIRE(w >= 1, "tenant weights must be >= 1");
    total_weight += w;
  }

  // The trace depends only on (spec, horizon, weights, seed): hash every
  // spec field into the stream seed so e.g. poisson:gap=40k and
  // fixed:gap=40k never share draws.
  std::ostringstream id;
  id << to_string(kind) << '/' << gap << '/' << burst << '/' << dwell << '/'
     << period << '/' << amp;
  const std::string s = id.str();
  SplitMix64 prng(fnv1a64(s.data(), s.size(), 0x5e12e5e12ull) ^
                  (seed * 0x9e3779b97f4a7c15ull + 1));

  // Runaway-spec guard: a serving run is tens-to-hundreds of requests, not
  // millions; a gap orders of magnitude below the horizon is a config bug.
  constexpr std::size_t kMaxArrivals = 100'000;

  std::vector<Arrival> out;
  Cycle t = 0;
  switch (kind) {
    case ArrivalKind::Fixed: {
      for (t = gap; t < horizon; t += gap)
        out.push_back({t, draw_tenant(prng, weights, total_weight)});
      break;
    }
    case ArrivalKind::Poisson: {
      while (true) {
        t += exp_draw(prng, gap);
        if (t >= horizon) break;
        out.push_back({t, draw_tenant(prng, weights, total_weight)});
        TDN_REQUIRE(out.size() <= kMaxArrivals, "arrival spec generates too many requests");
      }
      break;
    }
    case ArrivalKind::Mmpp: {
      unsigned state = 0;  // 0 = calm, 1 = burst
      Cycle switch_at = exp_draw(prng, dwell);
      while (true) {
        const Cycle g = exp_draw(prng, state == 0 ? gap : burst);
        // Memorylessness lets us clip an inter-arrival at a state switch
        // and redraw under the new rate — the standard MMPP construction.
        if (t + g >= switch_at) {
          t = switch_at;
          if (t >= horizon) break;
          state ^= 1u;
          switch_at = t + exp_draw(prng, dwell);
          continue;
        }
        t += g;
        if (t >= horizon) break;
        out.push_back({t, draw_tenant(prng, weights, total_weight)});
        TDN_REQUIRE(out.size() <= kMaxArrivals, "arrival spec generates too many requests");
      }
      break;
    }
    case ArrivalKind::Diurnal: {
      // Thinning against the peak rate (1 + amp) / gap: candidates arrive
      // at the peak rate and are accepted with probability rate(t) / peak.
      const double peak_mean = static_cast<double>(gap) / (1.0 + amp);
      const Cycle peak_gap =
          peak_mean < 1.0 ? 1 : static_cast<Cycle>(peak_mean);
      const double two_pi = 6.283185307179586;
      while (true) {
        t += exp_draw(prng, peak_gap);
        if (t >= horizon) break;
        const double phase =
            two_pi * static_cast<double>(t % period) / static_cast<double>(period);
        const double accept =
            (1.0 + amp * std::sin(phase)) / (1.0 + amp);
        const double u = prng.next_double();
        if (u < accept)
          out.push_back({t, draw_tenant(prng, weights, total_weight)});
        TDN_REQUIRE(out.size() <= kMaxArrivals, "arrival spec generates too many requests");
      }
      break;
    }
  }
  return out;
}

std::vector<unsigned> parse_weights(std::string_view text,
                                    unsigned num_tenants) {
  TDN_REQUIRE(num_tenants >= 1, "at least one tenant");
  if (text.empty()) return std::vector<unsigned>(num_tenants, 1);
  std::vector<unsigned> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    const std::string_view part = text.substr(
        start, colon == std::string_view::npos ? std::string_view::npos
                                               : colon - start);
    const Cycle w = parse_cycles(part, "weights");
    TDN_REQUIRE(w >= 1 && w <= 1'000'000, "tenant weight out of range");
    out.push_back(static_cast<unsigned>(w));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  TDN_REQUIRE(out.size() == num_tenants,
              "weights '" + std::string(text) + "' name " +
                  std::to_string(out.size()) + " tenants, mix has " +
                  std::to_string(num_tenants));
  return out;
}

}  // namespace tdn::serve
