// Network timing + traffic accounting.
//
// Messages follow XY routes hop by hop. Per-hop latency is router + link
// delay; each directional link additionally enforces a serialization /
// bandwidth constraint via a busy-until horizon, so bursts (e.g. flush storms)
// experience queuing. The model accounts, per router, the bytes that passed
// through it — the paper's Fig. 12 "data movement" metric is the aggregate of
// those bytes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "fault/health.hpp"
#include "noc/mesh.hpp"
#include "obs/latency_histogram.hpp"
#include "sim/event_queue.hpp"
#include "stats/counters.hpp"

namespace tdn::sim {
class ShardedEventQueue;
}  // namespace tdn::sim

namespace tdn::noc {

class DomainMap;

/// Message classes, sized as in a MESI protocol on a 64B-line system:
/// control packets carry address + command; data packets add one line.
enum class MsgClass : std::uint8_t { Control, Data };

struct NetworkConfig {
  Cycle link_latency = 1;
  Cycle router_latency = 1;
  /// 128-bit links (gem5 Garnet default). The suite's memory-bound phases
  /// load the mesh to a level where placement quality shows up in queueing
  /// as well as latency, without making the NoC the sole bottleneck.
  unsigned link_bytes_per_cycle = 16;
  unsigned control_bytes = 8;
  unsigned data_bytes = 72;  ///< 8B header + 64B line
  /// Fault handling: when every deterministic route (XY, the YX fallback,
  /// and the dog-leg detours through src's neighbours) crosses a failed
  /// link, the message backs off dead_link_backoff * (attempt + 1) cycles
  /// and retries, up to dead_link_max_retries attempts before the run is
  /// declared unroutable (TDN_CHECK).
  Cycle dead_link_backoff = 8;
  unsigned dead_link_max_retries = 16;
};

class Network {
 public:
  Network(const Mesh& mesh, sim::EventQueue& eq, NetworkConfig cfg = {});

  /// Send a message; @p deliver runs when the head arrives at @p dst.
  /// src == dst is a local (same-tile) transfer: zero network latency, but
  /// the bytes still count as passing through the one local router.
  /// @p deliver is an inline callable (sim::Action): per-message delivery
  /// state never touches the heap — see sim/inline_function.hpp.
  void send(CoreId src, CoreId dst, MsgClass cls, sim::Action deliver);

  /// Attach the shared resource-health view. Null (the default) keeps
  /// routing on the plain XY path with no per-link checks.
  void set_health(const fault::HealthState* health) { health_ = health; }

  /// Attach a sharded engine: deliveries whose src and dst tiles live in
  /// different domains of @p map travel through the engine's per-edge
  /// channels (sim::ShardedEventQueue::schedule_cross) instead of a direct
  /// schedule, and all timing reads the *sender domain's* clock. The
  /// engine's lookahead must not exceed DomainMap::min_lookahead(config())
  /// — one hop is the cheapest cross-domain delivery, so every channel
  /// send clears the horizon by construction. Detach with nulls. The
  /// default (unattached) path is byte-for-byte the serial behavior.
  void set_shard(sim::ShardedEventQueue* engine, const DomainMap* map) {
    shard_ = engine;
    dmap_ = map;
  }

  /// Attach per-class transit-latency histogram sinks (obs latency
  /// attribution). Null sinks (the default) cost one pointer test per send.
  void set_transit_sinks(obs::LatencyHistogram* control,
                         obs::LatencyHistogram* data) noexcept {
    transit_sinks_[0] = control;
    transit_sinks_[1] = data;
  }

  unsigned bytes_of(MsgClass cls) const noexcept {
    return cls == MsgClass::Control ? cfg_.control_bytes : cfg_.data_bytes;
  }
  unsigned hops(CoreId a, CoreId b) const { return mesh_.hops(a, b); }

  // --- statistics -----------------------------------------------------
  std::uint64_t total_router_bytes() const noexcept { return router_bytes_; }
  std::uint64_t messages() const noexcept { return messages_.value(); }
  std::uint64_t data_messages() const noexcept { return data_messages_.value(); }
  std::uint64_t router_bytes_at(CoreId tile) const {
    return per_router_bytes_.at(tile);
  }
  double mean_latency() const noexcept { return latency_.mean(); }
  std::uint64_t total_hops() const noexcept { return hops_total_; }

  // --- per-link traffic (obs epoch sampler / heatmaps) ------------------
  /// Directional links are indexed (tile, dir) with dir 0=E,1=W,2=N,3=S:
  /// the link leaving @p tile toward that neighbour.
  static constexpr unsigned kLinkDirs = 4;
  static const char* dir_name(unsigned dir) noexcept {
    constexpr const char* names[kLinkDirs] = {"e", "w", "n", "s"};
    return dir < kLinkDirs ? names[dir] : "?";
  }
  /// Whether @p tile has a neighbour in direction @p dir.
  bool has_link(CoreId tile, unsigned dir) const;
  /// Cumulative bytes serialized onto the (tile, dir) link.
  std::uint64_t link_bytes(CoreId tile, unsigned dir) const {
    return link_bytes_.at(tile).at(dir);
  }
  const NetworkConfig& config() const noexcept { return cfg_; }

  // --- checkpoint fold (tdn::ckpt) -------------------------------------
  /// Mean-latency numerator/denominator for exact recombination across a
  /// checkpoint fold (Sampled weight is the sample count here: every send
  /// adds with weight 1).
  double latency_total() const noexcept { return latency_.total(); }
  double latency_weight() const noexcept { return latency_.weight(); }
  /// Fold-and-reset all traffic statistics at a quiescent checkpoint
  /// boundary. Link busy-until horizons are left alone: at quiescence
  /// every horizon is <= now, so they never influence post-boundary
  /// timing (the settle grace covers the serialization tail).
  void ckpt_reset_stats() noexcept {
    for (auto& per_dir : link_bytes_) per_dir.fill(0);
    for (auto& b : per_router_bytes_) b = 0;
    router_bytes_ = 0;
    hops_total_ = 0;
    messages_.reset();
    data_messages_.reset();
    latency_.reset();
  }

 private:
  struct Link {
    Cycle next_free = 0;
  };
  /// Direction index (0=E,1=W,2=N,3=S) of the link from @p from to the
  /// adjacent tile @p to.
  unsigned dir_between(CoreId from, CoreId to) const;
  /// Whether any link on @p path (hop list, endpoints inclusive) has failed.
  bool path_blocked(const std::vector<CoreId>& path) const;
  /// The tile adjacent to @p tile in direction @p dir (must exist).
  CoreId neighbor(CoreId tile, unsigned dir) const;
  /// When XY and YX both cross a dead link (src/dst share a row or column),
  /// try dog-leg routes through each healthy neighbour of src. Returns true
  /// and fills @p path with the first fully healthy candidate.
  bool find_detour(CoreId src, CoreId dst, std::vector<CoreId>& path) const;
  void send_attempt(CoreId src, CoreId dst, MsgClass cls,
                    sim::Action deliver, unsigned attempt);

  /// The clock + local-delivery queue for a message entering at @p src:
  /// the sender domain's queue when sharded, else the single serial queue.
  sim::EventQueue& queue_for(CoreId src) const;

  const Mesh& mesh_;
  sim::EventQueue& eq_;
  NetworkConfig cfg_;
  sim::ShardedEventQueue* shard_ = nullptr;
  const DomainMap* dmap_ = nullptr;
  const fault::HealthState* health_ = nullptr;
  std::array<obs::LatencyHistogram*, 2> transit_sinks_{};  ///< [Control, Data]
  std::vector<std::array<Link, 4>> links_;
  std::vector<std::array<std::uint64_t, kLinkDirs>> link_bytes_;
  std::vector<std::uint64_t> per_router_bytes_;
  std::uint64_t router_bytes_ = 0;
  std::uint64_t hops_total_ = 0;
  stats::Counter messages_;
  stats::Counter data_messages_;
  stats::Sampled latency_;
};

}  // namespace tdn::noc
