// 2D mesh topology: tile numbering, coordinates, Manhattan (NUCA) distance
// and deterministic XY (dimension-ordered) routes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace tdn::noc {

struct Coord {
  unsigned x = 0;
  unsigned y = 0;
  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

class Mesh {
 public:
  Mesh(unsigned width, unsigned height) : w_(width), h_(height) {
    TDN_REQUIRE(width > 0 && height > 0, "mesh dimensions must be positive");
  }

  unsigned width() const noexcept { return w_; }
  unsigned height() const noexcept { return h_; }
  unsigned tiles() const noexcept { return w_ * h_; }

  Coord coord(CoreId tile) const {
    TDN_ASSERT(tile < tiles());
    return Coord{tile % w_, tile / w_};
  }
  CoreId tile(Coord c) const {
    TDN_ASSERT(c.x < w_ && c.y < h_);
    return c.y * w_ + c.x;
  }

  /// Manhattan hop count — the paper's "NUCA distance" (local bank = 0).
  unsigned hops(CoreId a, CoreId b) const {
    const Coord ca = coord(a);
    const Coord cb = coord(b);
    const unsigned dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
    const unsigned dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
    return dx + dy;
  }

  /// Tiles on the XY route from src to dst, inclusive of both endpoints.
  std::vector<CoreId> xy_route(CoreId src, CoreId dst) const;

  /// Tiles on the YX (Y-dimension first) route from src to dst, inclusive of
  /// both endpoints. The deterministic fallback route when a link on the XY
  /// path has failed.
  std::vector<CoreId> yx_route(CoreId src, CoreId dst) const;

  /// The quadrant cluster (paper Sec. III "LLC Cluster Replication"):
  /// the mesh is divided into (w/2 x h/2)-aligned 2x2 quadrants on a 4x4
  /// mesh. Returns the cluster index of a tile.
  unsigned cluster_of(CoreId tile, unsigned cluster_w = 2,
                      unsigned cluster_h = 2) const {
    const Coord c = coord(tile);
    const unsigned clusters_per_row = w_ / cluster_w;
    return (c.y / cluster_h) * clusters_per_row + (c.x / cluster_w);
  }

  /// Tiles belonging to a cluster, ascending.
  std::vector<CoreId> cluster_tiles(unsigned cluster, unsigned cluster_w = 2,
                                    unsigned cluster_h = 2) const;

  /// Theoretical mean hop distance from a uniformly random tile to a
  /// uniformly random tile (2.5 on a 4x4 mesh; paper Sec. V-B).
  double theoretical_mean_distance() const;

 private:
  unsigned w_;
  unsigned h_;
};

}  // namespace tdn::noc
