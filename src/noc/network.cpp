#include "noc/network.hpp"

#include <array>
#include <memory>

#include "common/require.hpp"
#include "noc/domain_map.hpp"
#include "sim/sharded_event_queue.hpp"

namespace tdn::noc {

sim::EventQueue& Network::queue_for(CoreId src) const {
  if (shard_ == nullptr) return eq_;
  return shard_->domain(dmap_->domain_of(src));
}

Network::Network(const Mesh& mesh, sim::EventQueue& eq, NetworkConfig cfg)
    : mesh_(mesh), eq_(eq), cfg_(cfg), links_(mesh.tiles()),
      link_bytes_(mesh.tiles(), {0, 0, 0, 0}),
      per_router_bytes_(mesh.tiles(), 0) {
  TDN_REQUIRE(cfg_.link_bytes_per_cycle > 0, "link bandwidth must be positive");
}

unsigned Network::dir_between(CoreId from, CoreId to) const {
  const Coord a = mesh_.coord(from);
  const Coord b = mesh_.coord(to);
  if (b.x == a.x + 1) return 0;  // east
  if (a.x == b.x + 1) return 1;  // west
  if (b.y == a.y + 1) return 3;  // south (y grows downward)
  return 2;                      // north
}

bool Network::has_link(CoreId tile, unsigned dir) const {
  const Coord c = mesh_.coord(tile);
  switch (dir) {
    case 0: return c.x + 1 < mesh_.width();
    case 1: return c.x > 0;
    case 2: return c.y > 0;
    case 3: return c.y + 1 < mesh_.height();
  }
  return false;
}

bool Network::path_blocked(const std::vector<CoreId>& path) const {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!health_->link_ok(path[i], dir_between(path[i], path[i + 1])))
      return true;
  }
  return false;
}

CoreId Network::neighbor(CoreId tile, unsigned dir) const {
  Coord c = mesh_.coord(tile);
  switch (dir) {
    case 0: ++c.x; break;
    case 1: --c.x; break;
    case 2: --c.y; break;
    case 3: ++c.y; break;
  }
  return mesh_.tile(c);
}

bool Network::find_detour(CoreId src, CoreId dst,
                          std::vector<CoreId>& path) const {
  // X-Y and Y-X coincide when src and dst share a row or column, so a dead
  // link between neighbours defeats both. Dog-leg through each healthy
  // neighbour of src (fixed direction order keeps routing deterministic)
  // and take the first fully healthy path.
  for (unsigned dir = 0; dir < 4; ++dir) {
    if (!has_link(src, dir) || !health_->link_ok(src, dir)) continue;
    const CoreId w = neighbor(src, dir);
    for (const bool yx : {false, true}) {
      auto tail = yx ? mesh_.yx_route(w, dst) : mesh_.xy_route(w, dst);
      std::vector<CoreId> cand;
      cand.reserve(tail.size() + 1);
      cand.push_back(src);
      cand.insert(cand.end(), tail.begin(), tail.end());
      if (!path_blocked(cand)) {
        path = std::move(cand);
        return true;
      }
    }
  }
  return false;
}

void Network::send(CoreId src, CoreId dst, MsgClass cls, sim::Action deliver) {
  send_attempt(src, dst, cls, std::move(deliver), 0);
}

void Network::send_attempt(CoreId src, CoreId dst, MsgClass cls,
                           sim::Action deliver, unsigned attempt) {
  auto path = mesh_.xy_route(src, dst);
  if (health_ != nullptr && health_->any_link_failed() && path_blocked(path)) {
    auto alt = mesh_.yx_route(src, dst);
    if (!path_blocked(alt)) {
      ++health_->counters.noc_reroutes;
      path = std::move(alt);
    } else if (find_detour(src, dst, path)) {
      ++health_->counters.noc_reroutes;
    } else {
      // Every known route crosses a dead link (a cut through the mesh).
      // Back off and retry a bounded number of times; the bound turns a
      // silent livelock into a diagnosable failure.
      TDN_CHECK(attempt < cfg_.dead_link_max_retries,
                "message cannot route around failed links");
      ++health_->counters.noc_retries;
      // An Action cannot nest inside another Action of the same capacity;
      // box it for the (rare, fault-only) backoff. This is the one place on
      // the message path that may allocate, and only when links have failed.
      // The retry stays at the sender: its domain's queue.
      auto boxed = std::make_shared<sim::Action>(std::move(deliver));
      queue_for(src).schedule_in(cfg_.dead_link_backoff * (attempt + 1),
                                 [this, src, dst, cls, boxed, attempt] {
                                   send_attempt(src, dst, cls,
                                                std::move(*boxed), attempt + 1);
                                 });
      return;
    }
  }
  const unsigned bytes = bytes_of(cls);
  messages_.inc();
  if (cls == MsgClass::Data) data_messages_.inc();

  // Every router the message traverses (including src and dst) moves the
  // payload through its crossbar once.
  for (const CoreId t : path) {
    per_router_bytes_[t] += bytes;
    router_bytes_ += bytes;
  }
  hops_total_ += path.size() - 1;

  sim::EventQueue& src_q = queue_for(src);
  const Cycle start = src_q.now();
  Cycle t = start;
  const Cycle serialization =
      (bytes + cfg_.link_bytes_per_cycle - 1) / cfg_.link_bytes_per_cycle;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const unsigned dir = dir_between(path[i], path[i + 1]);
    Link& link = links_[path[i]][dir];
    link_bytes_[path[i]][dir] += bytes;
    const Cycle depart = t > link.next_free ? t : link.next_free;
    // A bandwidth-degraded link serializes the same bytes over a longer
    // occupancy window (the degradation factor).
    Cycle occupancy = serialization;
    if (health_ != nullptr)
      occupancy *= health_->link_factor(path[i], dir);
    link.next_free = depart + occupancy;
    t = depart + cfg_.router_latency + cfg_.link_latency;
  }
  latency_.add(static_cast<double>(t - start));
  if (auto* sink = transit_sinks_[static_cast<unsigned>(cls) & 1])
    sink->add(t - start);
  if (shard_ != nullptr) {
    const sim::DomainId sd = dmap_->domain_of(src);
    const sim::DomainId dd = dmap_->domain_of(dst);
    if (sd != dd) {
      // Cross-domain delivery: merged at the window barrier with its serial
      // (when, seq) stamp. One hop costs router + link >= the engine's
      // lookahead, so t always clears the horizon.
      shard_->schedule_cross(sd, dd, t, std::move(deliver));
      return;
    }
  }
  if (t == start) {
    // Local delivery in the same cycle would re-enter the caller's stack;
    // defer by zero cycles through the queue to keep ordering uniform.
    src_q.schedule_in(0, std::move(deliver));
  } else {
    src_q.schedule_at(t, std::move(deliver));
  }
}

}  // namespace tdn::noc
