#include "noc/network.hpp"

#include <array>

#include "common/require.hpp"

namespace tdn::noc {

Network::Network(const Mesh& mesh, sim::EventQueue& eq, NetworkConfig cfg)
    : mesh_(mesh), eq_(eq), cfg_(cfg), links_(mesh.tiles()),
      link_bytes_(mesh.tiles(), {0, 0, 0, 0}),
      per_router_bytes_(mesh.tiles(), 0) {
  TDN_REQUIRE(cfg_.link_bytes_per_cycle > 0, "link bandwidth must be positive");
}

unsigned Network::dir_between(CoreId from, CoreId to) const {
  const Coord a = mesh_.coord(from);
  const Coord b = mesh_.coord(to);
  if (b.x == a.x + 1) return 0;  // east
  if (a.x == b.x + 1) return 1;  // west
  if (b.y == a.y + 1) return 3;  // south (y grows downward)
  return 2;                      // north
}

bool Network::has_link(CoreId tile, unsigned dir) const {
  const Coord c = mesh_.coord(tile);
  switch (dir) {
    case 0: return c.x + 1 < mesh_.width();
    case 1: return c.x > 0;
    case 2: return c.y > 0;
    case 3: return c.y + 1 < mesh_.height();
  }
  return false;
}

void Network::send(CoreId src, CoreId dst, MsgClass cls,
                   std::function<void()> deliver) {
  const unsigned bytes = bytes_of(cls);
  messages_.inc();
  if (cls == MsgClass::Data) data_messages_.inc();

  const auto path = mesh_.xy_route(src, dst);
  // Every router the message traverses (including src and dst) moves the
  // payload through its crossbar once.
  for (const CoreId t : path) {
    per_router_bytes_[t] += bytes;
    router_bytes_ += bytes;
  }
  hops_total_ += path.size() - 1;

  const Cycle start = eq_.now();
  Cycle t = start;
  const Cycle serialization =
      (bytes + cfg_.link_bytes_per_cycle - 1) / cfg_.link_bytes_per_cycle;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const unsigned dir = dir_between(path[i], path[i + 1]);
    Link& link = links_[path[i]][dir];
    link_bytes_[path[i]][dir] += bytes;
    const Cycle depart = t > link.next_free ? t : link.next_free;
    link.next_free = depart + serialization;
    t = depart + cfg_.router_latency + cfg_.link_latency;
  }
  latency_.add(static_cast<double>(t - start));
  if (t == start) {
    // Local delivery in the same cycle would re-enter the caller's stack;
    // defer by zero cycles through the queue to keep ordering uniform.
    eq_.schedule_in(0, std::move(deliver));
  } else {
    eq_.schedule_at(t, std::move(deliver));
  }
}

}  // namespace tdn::noc
