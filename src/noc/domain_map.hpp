// DomainMap — tile → shard-domain assignment derived from the NoC topology.
//
// The sharded engine (sim::ShardedEventQueue) partitions the simulation into
// domains and synchronizes them with a conservative lookahead. For a mesh
// NoC the natural partitions are per-tile (one domain per router, maximum
// parallelism) or contiguous row blocks (fewer barriers crossed by local
// traffic); the natural lookahead is the cheapest cross-domain delivery —
// one router + link traversal, since queueing and extra hops only push
// arrivals further out. DESIGN.md decision 7 has the full protocol.
#pragma once

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "sim/sharded_event_queue.hpp"

namespace tdn::noc {

class DomainMap {
 public:
  /// One domain per tile: every router is its own shard.
  static DomainMap per_tile(const Mesh& mesh) {
    DomainMap m;
    m.domains_ = mesh.tiles();
    m.map_.resize(mesh.tiles());
    for (CoreId t = 0; t < mesh.tiles(); ++t) m.map_[t] = t;
    return m;
  }

  /// Contiguous row blocks: rows are striped across @p domains partitions
  /// (clamped to the row count), so horizontally-adjacent tiles — the bulk
  /// of XY traffic's first leg — stay in one domain.
  static DomainMap row_blocks(const Mesh& mesh, unsigned domains) {
    DomainMap m;
    const unsigned n =
        domains == 0 ? 1 : std::min(domains, mesh.height());
    m.domains_ = n;
    m.map_.resize(mesh.tiles());
    for (CoreId t = 0; t < mesh.tiles(); ++t) {
      const unsigned row = mesh.coord(t).y;
      m.map_[t] = static_cast<sim::DomainId>(row * n / mesh.height());
    }
    return m;
  }

  sim::DomainId domain_of(CoreId tile) const { return map_.at(tile); }
  unsigned domains() const noexcept { return domains_; }

  /// Conservative lookahead for this topology: the cheapest cross-domain
  /// delivery is one hop (router + link traversal); serialization and
  /// queueing only push arrivals later, never earlier.
  static Cycle min_lookahead(const NetworkConfig& cfg) noexcept {
    return cfg.router_latency + cfg.link_latency;
  }

 private:
  std::vector<sim::DomainId> map_;
  unsigned domains_ = 0;
};

}  // namespace tdn::noc
