#include "noc/mesh.hpp"

namespace tdn::noc {

std::vector<CoreId> Mesh::xy_route(CoreId src, CoreId dst) const {
  std::vector<CoreId> path;
  Coord c = coord(src);
  const Coord d = coord(dst);
  path.push_back(tile(c));
  while (c.x != d.x) {  // X first
    c.x += (d.x > c.x) ? 1 : -1;
    path.push_back(tile(c));
  }
  while (c.y != d.y) {  // then Y
    c.y += (d.y > c.y) ? 1 : -1;
    path.push_back(tile(c));
  }
  return path;
}

std::vector<CoreId> Mesh::yx_route(CoreId src, CoreId dst) const {
  std::vector<CoreId> path;
  Coord c = coord(src);
  const Coord d = coord(dst);
  path.push_back(tile(c));
  while (c.y != d.y) {  // Y first
    c.y += (d.y > c.y) ? 1 : -1;
    path.push_back(tile(c));
  }
  while (c.x != d.x) {  // then X
    c.x += (d.x > c.x) ? 1 : -1;
    path.push_back(tile(c));
  }
  return path;
}

std::vector<CoreId> Mesh::cluster_tiles(unsigned cluster, unsigned cluster_w,
                                        unsigned cluster_h) const {
  std::vector<CoreId> out;
  for (CoreId t = 0; t < tiles(); ++t) {
    if (cluster_of(t, cluster_w, cluster_h) == cluster) out.push_back(t);
  }
  return out;
}

double Mesh::theoretical_mean_distance() const {
  std::uint64_t total = 0;
  const unsigned n = tiles();
  for (CoreId a = 0; a < n; ++a)
    for (CoreId b = 0; b < n; ++b) total += hops(a, b);
  return static_cast<double>(total) / (static_cast<double>(n) * n);
}

}  // namespace tdn::noc
