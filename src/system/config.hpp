// SystemConfig — everything needed to build one simulated machine + runtime
// (paper Table I, scaled; DESIGN.md Sec. 6). The fingerprint() hash keys the
// harness results cache: identical configs produce bit-identical results.
#pragma once

#include <cstdint>
#include <string>

#include "coherence/config.hpp"
#include "common/types.hpp"
#include "core/sim_core.hpp"
#include "fault/injector.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"
#include "noc/network.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "runtime/runtime_system.hpp"
#include "tdnuca/runtime_hooks.hpp"
#include "vm/config.hpp"

namespace tdn::system {

enum class PolicyKind : std::uint8_t {
  SNuca,             ///< baseline static interleaving
  RNuca,             ///< OS page classification + replication enhancement
  TdNuca,            ///< full TD-NUCA
  TdNucaBypassOnly,  ///< Fig. 15 variant
  TdNucaDryRun,      ///< Sec. V-E runtime-overhead study: bookkeeping only,
                     ///< cache behaves as S-NUCA
};

const char* to_string(PolicyKind k);

enum class SchedulerKind : std::uint8_t { Fifo, Affinity };

/// Sharded-engine execution knobs (sim::ShardedEventQueue). Like --jobs,
/// these change *how* a simulation executes, never *what* it computes —
/// results are bit-identical for every setting — so SystemConfig's
/// fingerprint deliberately excludes them (a cached result is valid for
/// any thread count). docs/harness.md §sim.threads.
struct SimConfig {
  /// Worker threads for the event engine. 1 (the default) runs the
  /// original serial EventQueue code path, untouched.
  unsigned threads = 1;
};

struct SystemConfig {
  unsigned mesh_w = 4;
  unsigned mesh_h = 4;
  PolicyKind policy = PolicyKind::SNuca;
  SchedulerKind scheduler = SchedulerKind::Fifo;

  coherence::HierarchyConfig hierarchy{};
  noc::NetworkConfig network{};
  mem::DramConfig dram{};
  unsigned num_memory_controllers = 8;
  mem::PageTableConfig page_table{};
  mem::TlbConfig tlb{};
  /// tdn::vm virtual-memory subsystem (docs/memory.md). Disabled by
  /// default: the legacy flat-TLB/4K path runs bit-identically.
  vm::VmConfig vm{};
  core::CoreConfig core{};
  runtime::RuntimeConfig runtime{};
  nuca::TdNucaConfig tdnuca{};
  nuca::RNucaConfig rnuca{};
  tdnuca::HooksConfig hooks{};
  fault::FaultConfig fault{};
  /// Execution-only (excluded from fingerprint()): see SimConfig.
  SimConfig sim{};

  unsigned num_cores() const { return mesh_w * mesh_h; }

  /// Stable hash over every *behavior* field, for the results cache.
  /// Execution-only knobs (sim.threads) are excluded: results are
  /// bit-identical across them by the sharded-engine contract, so they
  /// must share cache entries and goldens.
  std::uint64_t fingerprint() const;
};

}  // namespace tdn::system
