// run_event_queue — one place that honors the sim.threads execution knob.
//
// threads <= 1 is *exactly* the serial code path: the queue's own
// run_until, untouched. threads > 1 drives the same queue as domain 0 of a
// windowed sim::ShardedEventQueue — bit-identical by the engine's replay
// contract (DESIGN.md decision 7), and the full window/renumber machinery
// runs against the real event stream. Today the whole machine occupies one
// domain (the coherence layer shares state across tiles), so the windows
// execute on the caller; per-tile machine domains are the ROADMAP item 1
// follow-on, staged behind the Network/CoherentSystem set_shard hooks.
#pragma once

#include "common/types.hpp"
#include "noc/domain_map.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_event_queue.hpp"
#include "system/config.hpp"

namespace tdn::system {

inline Cycle run_event_queue(sim::EventQueue& eq, const SystemConfig& cfg,
                             Cycle limit) {
  if (cfg.sim.threads <= 1) return eq.run_until(limit);
  sim::ShardedEventQueue engine({&eq}, cfg.sim.threads,
                                noc::DomainMap::min_lookahead(cfg.network));
  return engine.run_until(limit);
}

}  // namespace tdn::system
