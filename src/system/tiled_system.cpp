#include "system/tiled_system.hpp"

#include <sstream>
#include <string>

#include "common/prng.hpp"
#include "common/require.hpp"
#include "fault/invariant.hpp"
#include "obs/recorder.hpp"
#include "system/sim_exec.hpp"

namespace tdn::system {

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::SNuca: return "S-NUCA";
    case PolicyKind::RNuca: return "R-NUCA";
    case PolicyKind::TdNuca: return "TD-NUCA";
    case PolicyKind::TdNucaBypassOnly: return "TD-NUCA(bypass-only)";
    case PolicyKind::TdNucaDryRun: return "TD-NUCA(dry-run)";
  }
  return "?";
}

std::uint64_t SystemConfig::fingerprint() const {
  // Serialize every field that affects simulation results and hash it.
  std::ostringstream os;
  os << mesh_w << '/' << mesh_h << '/' << static_cast<int>(policy) << '/'
     << static_cast<int>(scheduler) << '/' << hierarchy.l1.size_bytes << '/'
     << hierarchy.l1.associativity << '/' << hierarchy.l1.line_size << '/'
     << hierarchy.l1_latency << '/' << hierarchy.llc_bank.size_bytes << '/'
     << hierarchy.llc_bank.associativity << '/' << hierarchy.llc_latency << '/'
     << hierarchy.bank_service_interval << '/' << hierarchy.l1_mshrs << '/'
     << hierarchy.flush_lines_per_cycle << '/' << hierarchy.mshr_retry_delay
     << '/' << network.link_latency << '/' << network.router_latency << '/'
     << network.link_bytes_per_cycle << '/' << network.control_bytes << '/'
     << network.data_bytes << '/' << dram.access_latency << '/'
     << dram.service_interval << '/' << num_memory_controllers << '/'
     << page_table.page_size << '/' << page_table.fragmentation << '/'
     << page_table.seed << '/' << tlb.entries << '/' << tlb.hit_latency << '/'
     << tlb.miss_penalty << '/' << core.store_buffer_entries << '/'
     << core.store_issue_cost << '/' << core.load_window << '/'
     << core.load_issue_cost << '/' << runtime.dispatch_overhead << '/'
     << runtime.per_dep_overhead << '/' << runtime.dispatch_jitter << '/'
     << runtime.jitter_seed << '/' << tdnuca.rrt_entries << '/'
     << tdnuca.rrt_latency << '/' << tdnuca.bypass_only << '/'
     << rnuca.reclassification_penalty << '/' << rnuca.first_touch_penalty
     << '/' << hooks.decision_overhead << '/' << hooks.isa.per_rrt_slot << '/'
     << hooks.isa.issue_overhead << '/' << hooks.isa.flush_poll_overhead << '/'
     << hooks.dry_run << '/' << hooks.line_size << '/'
     << network.dead_link_backoff << '/' << network.dead_link_max_retries
     << '/' << fault::FaultPlan::parse(fault.plan).canonical() << '/'
     << fault.seed << '/' << fault.rrt_scrub_delay << '/' << vm.canonical();
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

TiledSystem::TiledSystem(SystemConfig cfg, obs::Recorder* rec)
    : cfg_(cfg), rec_(rec), mesh_(cfg.mesh_w, cfg.mesh_h),
      page_table_(cfg.page_table, cfg.vm) {
  const unsigned n = cfg_.num_cores();
  TDN_REQUIRE(n > 0, "system needs at least one tile");

  net_ = std::make_unique<noc::Network>(mesh_, eq_, cfg_.network);

  // Memory controllers attach along the top and bottom mesh edges (where
  // the DDR PHYs sit on real tiled parts), alternating rows so traffic to
  // memory spreads instead of concentrating on corner links.
  std::vector<CoreId> mc_tiles;
  std::vector<CoreId> edge_tiles;
  for (unsigned x = 0; x < cfg_.mesh_w; ++x) {
    edge_tiles.push_back(x);                                  // top row
    edge_tiles.push_back((cfg_.mesh_h - 1) * cfg_.mesh_w + x);  // bottom row
  }
  for (unsigned i = 0; i < cfg_.num_memory_controllers; ++i)
    mc_tiles.push_back(edge_tiles[i % edge_tiles.size()]);
  mcs_ = std::make_unique<mem::MemControllers>(cfg_.num_memory_controllers,
                                               mc_tiles, cfg_.dram);

  // --- NUCA mapping policy ---------------------------------------------
  switch (cfg_.policy) {
    case PolicyKind::SNuca:
      snuca_policy_ = std::make_unique<nuca::SNucaPolicy>(
          n, cfg_.hierarchy.l1.line_size);
      active_policy_ = snuca_policy_.get();
      break;
    case PolicyKind::RNuca:
      rnuca_policy_ = std::make_unique<nuca::RNucaPolicy>(mesh_, n,
                                                          page_table_,
                                                          cfg_.rnuca);
      active_policy_ = rnuca_policy_.get();
      break;
    case PolicyKind::TdNuca:
    case PolicyKind::TdNucaBypassOnly: {
      auto td_cfg = cfg_.tdnuca;
      td_cfg.bypass_only = (cfg_.policy == PolicyKind::TdNucaBypassOnly);
      tdnuca_policy_ =
          std::make_unique<nuca::TdNucaPolicy>(mesh_, n, td_cfg);
      active_policy_ = tdnuca_policy_.get();
      break;
    }
    case PolicyKind::TdNucaDryRun:
      // Bookkeeping runs (hooks below) but the hierarchy behaves as S-NUCA.
      tdnuca_policy_ =
          std::make_unique<nuca::TdNucaPolicy>(mesh_, n, cfg_.tdnuca);
      snuca_policy_ = std::make_unique<nuca::SNucaPolicy>(
          n, cfg_.hierarchy.l1.line_size);
      active_policy_ = snuca_policy_.get();
      break;
  }

  caches_ = std::make_unique<coherence::CoherentSystem>(
      eq_, *net_, mesh_, *mcs_, *active_policy_, cfg_.hierarchy, n, rec_);
  if (tdnuca_policy_ && active_policy_ != tdnuca_policy_.get()) {
    // Dry-run: the TD policy object still needs CacheOps for completeness.
    tdnuca_policy_->set_ops(caches_.get());
  }

  // --- cores -------------------------------------------------------------
  cores_.reserve(n);
  std::vector<core::SimCore*> core_ptrs;
  std::vector<vm::Mmu*> mmus;
  for (unsigned i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<core::SimCore>(
        i, eq_, *caches_, page_table_, cfg_.core, cfg_.tlb, cfg_.vm));
    core_ptrs.push_back(cores_.back().get());
    mmus.push_back(&cores_.back()->mmu());
  }
  if (rnuca_policy_) rnuca_policy_->set_mmus(mmus);

  // --- runtime -------------------------------------------------------------
  switch (cfg_.scheduler) {
    case SchedulerKind::Fifo:
      scheduler_ = std::make_unique<runtime::FifoScheduler>();
      break;
    case SchedulerKind::Affinity:
      scheduler_ = std::make_unique<runtime::AffinityScheduler>();
      break;
  }
  runtime::RuntimeHooks* hooks = nullptr;
  if (cfg_.policy == PolicyKind::TdNuca ||
      cfg_.policy == PolicyKind::TdNucaBypassOnly ||
      cfg_.policy == PolicyKind::TdNucaDryRun) {
    auto hooks_cfg = cfg_.hooks;
    hooks_cfg.dry_run = (cfg_.policy == PolicyKind::TdNucaDryRun);
    hooks_cfg.line_size = cfg_.hierarchy.l1.line_size;
    hooks_td_ = std::make_unique<tdnuca::TdNucaRuntimeHooks>(
        *tdnuca_policy_, page_table_, n, hooks_cfg, rec_);
    hooks = hooks_td_.get();
  } else {
    hooks_base_ = std::make_unique<runtime::RuntimeHooks>();
    hooks = hooks_base_.get();
  }
  runtime_ = std::make_unique<runtime::RuntimeSystem>(
      eq_, core_ptrs, *scheduler_, *hooks, cfg_.runtime, rec_);
  if (hooks_td_) hooks_td_->set_runtime(runtime_.get());
  if (auto* aff = dynamic_cast<runtime::AffinityScheduler*>(scheduler_.get()))
    aff->set_tasks(&runtime_->tasks());

  // --- fault injection ---------------------------------------------------
  // Wiring only happens with a non-empty plan: every layer keeps a null
  // HealthState pointer otherwise, so an empty plan is bit-identical to a
  // build without fault support.
  if (!cfg_.fault.plan.empty()) {
    fault::FaultInjector::Targets t;
    t.eq = &eq_;
    t.mesh = &mesh_;
    t.net = net_.get();
    t.caches = caches_.get();
    t.mcs = mcs_.get();
    t.tdnuca = tdnuca_policy_.get();
    t.rec = rec_;
    injector_ = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(cfg_.fault.plan), cfg_.fault, t, n,
        cfg_.hierarchy.l1.line_size);
    const fault::HealthState* hs = &injector_->health();
    active_policy_->set_health(hs);
    if (tdnuca_policy_ && active_policy_ != tdnuca_policy_.get())
      tdnuca_policy_->set_health(hs);
    caches_->set_health(hs);
    net_->set_health(hs);
    if (hooks_td_) hooks_td_->set_health(hs);
  }
  if (cfg_.fault.watchdog_budget > 0) {
    watchdog_ =
        std::make_unique<fault::Watchdog>(eq_, cfg_.fault.watchdog_budget);
    watchdog_->set_progress([this] {
      const auto& cs = caches_->stats();
      return runtime_->tasks_completed() + mcs_->total_accesses() +
             caches_->llc_accesses() + cs.l1_hits.value() +
             cs.l1_misses.value();
    });
    watchdog_->add_diagnostic("mshr_outstanding", [this] {
      std::ostringstream os;
      for (unsigned c = 0; c < cfg_.num_cores(); ++c)
        if (const auto v = caches_->mshr_outstanding(c); v != 0)
          os << " core" << c << '=' << v;
      return os.str().empty() ? std::string(" none") : os.str();
    });
    watchdog_->add_diagnostic("blocked_bank_lines", [this] {
      std::ostringstream os;
      for (unsigned b = 0; b < cfg_.num_cores(); ++b)
        if (const auto v = caches_->bank_blocked_lines(b); v != 0)
          os << " bank" << b << '=' << v;
      return os.str().empty() ? std::string(" none") : os.str();
    });
    watchdog_->add_diagnostic("runtime", [this] {
      std::ostringstream os;
      os << " ready_tasks=" << scheduler_->size()
         << " tasks_completed=" << runtime_->tasks_completed();
      if (hooks_td_)
        os << " pending_flushes=" << hooks_td_->pending_flushes();
      return os.str();
    });
  }

  if (rec_ != nullptr) register_observability();
}

void TiledSystem::register_observability() {
  const unsigned n = cfg_.num_cores();
  rec_->attach_clock(&eq_);

  // --- latency attribution sinks -----------------------------------------
  // The coherence layer stamps through rec_->attribution() directly; the
  // NoC and DRAM models additionally feed their own histograms.
  if (obs::LatencyAttribution* attr = rec_->attribution()) {
    net_->set_transit_sinks(&attr->noc_transit(0), &attr->noc_transit(1));
    for (unsigned m = 0; m < mcs_->count(); ++m)
      mcs_->mc(m).set_queue_sink(&attr->dram_queue());
    for (const auto& c : cores_)
      c->mmu().set_obs_sinks(&attr->translation(), &attr->walk());
  }

  // --- trace tracks -----------------------------------------------------
  for (unsigned i = 0; i < n; ++i)
    rec_->set_track_name(i, "core " + std::to_string(i));
  rec_->set_track_name(obs::Recorder::kRuntimeTrack, "runtime");
  rec_->set_track_name(obs::Recorder::kFlushTrack, "flush engine");
  rec_->set_track_name(obs::Recorder::kCoherenceTrack, "coherence");

  // --- epoch time series -------------------------------------------------
  // Interval probes snapshot cumulative counters and report per-epoch
  // deltas via mutable captures; gauges read current state directly.
  for (unsigned b = 0; b < n; ++b) {
    rec_->add_series(
        "llc.bank" + std::to_string(b) + ".hit_ratio",
        [this, b, ph = std::uint64_t{0}, pm = std::uint64_t{0}]() mutable {
          const auto& c = caches_->bank_counters(b);
          const std::uint64_t dh = c.hits - ph;
          const std::uint64_t dm = c.misses - pm;
          ph = c.hits;
          pm = c.misses;
          return (dh + dm) > 0
                     ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                     : 0.0;
        });
    rec_->add_series(
        "llc.bank" + std::to_string(b) + ".occupancy", [this, b] {
          return static_cast<double>(caches_->bank_occupied_lines(b)) /
                 static_cast<double>(caches_->bank_capacity_lines());
        });
  }
  const double link_cap = static_cast<double>(
      cfg_.network.link_bytes_per_cycle);
  for (unsigned t = 0; t < n; ++t) {
    for (unsigned d = 0; d < noc::Network::kLinkDirs; ++d) {
      if (!net_->has_link(t, d)) continue;
      rec_->add_series(
          "noc.t" + std::to_string(t) + "." + noc::Network::dir_name(d) +
              ".util",
          [this, t, d, link_cap, prev = std::uint64_t{0}]() mutable {
            const std::uint64_t cur = net_->link_bytes(t, d);
            const double delta = static_cast<double>(cur - prev);
            prev = cur;
            const double cap =
                link_cap * static_cast<double>(rec_->config().epoch_cycles);
            return cap > 0 ? delta / cap : 0.0;
          });
    }
  }
  if (tdnuca_policy_) {
    for (unsigned c = 0; c < n; ++c) {
      rec_->add_series("rrt.core" + std::to_string(c) + ".entries",
                       [this, c] {
                         return static_cast<double>(
                             tdnuca_policy_->rrt(c).size());
                       });
    }
  }
  for (unsigned c = 0; c < n; ++c) {
    rec_->add_series(
        "mem.core" + std::to_string(c) + ".tlb_misses",
        [this, c, prev = std::uint64_t{0}]() mutable {
          const std::uint64_t cur = cores_[c]->mmu().tlb_misses();
          const double delta = static_cast<double>(cur - prev);
          prev = cur;
          return delta;
        });
  }
  rec_->add_series("mem.mapped_pages", [this] {
    return static_cast<double>(page_table_.mapped_pages());
  });
  rec_->add_series("mem.frames_used", [this] {
    return static_cast<double>(page_table_.frames_used());
  });
  if (cfg_.vm.enabled) {
    rec_->add_series("vm.walk_cycles",
                     [this, prev = Cycle{0}]() mutable {
                       Cycle cur = 0;
                       for (const auto& c : cores_)
                         cur += c->mmu().walk_cycles();
                       const double delta = static_cast<double>(cur - prev);
                       prev = cur;
                       return delta;
                     });
  }
  rec_->add_series("runtime.ready_tasks",
                   [this] { return static_cast<double>(scheduler_->size()); });
  rec_->add_series("tasks.completed", [this] {
    return static_cast<double>(runtime_->tasks_completed());
  });
  for (unsigned m = 0; m < cfg_.num_memory_controllers; ++m) {
    rec_->add_series("dram.mc" + std::to_string(m) + ".backlog", [this, m] {
      const auto& mc = mcs_->mc(m);
      const Cycle now = eq_.now();
      if (mc.busy_until() <= now) return 0.0;
      // Backlog horizon expressed in queued requests.
      return static_cast<double>(mc.busy_until() - now) /
             static_cast<double>(mc.config().service_interval);
    });
  }
  if (injector_) {
    rec_->set_track_name(obs::Recorder::kFaultTrack, "faults");
    rec_->add_series("fault.healthy_banks", [this] {
      return static_cast<double>(injector_->health().num_healthy());
    });
    rec_->add_series("fault.bounced_requests", [this] {
      return static_cast<double>(
          injector_->health().counters.bounced_requests);
    });
    rec_->add_series("fault.noc_reroutes", [this] {
      return static_cast<double>(injector_->health().counters.noc_reroutes);
    });
  }

  // --- heatmaps -----------------------------------------------------------
  const unsigned w = cfg_.mesh_w;
  const unsigned h = cfg_.mesh_h;
  rec_->add_heatmap("llc_bank_accesses", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b) {
      const auto& c = caches_->bank_counters(b);
      v[b] = static_cast<double>(c.requests + c.writebacks);
    }
    return v;
  });
  rec_->add_heatmap("llc_bank_hits", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned b = 0; b < n; ++b)
      v[b] = static_cast<double>(caches_->bank_counters(b).hits);
    return v;
  });
  rec_->add_heatmap("noc_router_bytes", w, h, [this, n] {
    std::vector<double> v(n);
    for (unsigned t = 0; t < n; ++t)
      v[t] = static_cast<double>(net_->router_bytes_at(t));
    return v;
  });
  for (unsigned d = 0; d < noc::Network::kLinkDirs; ++d) {
    rec_->add_heatmap(
        std::string("noc_link_bytes_") + noc::Network::dir_name(d), w, h,
        [this, n, d] {
          std::vector<double> v(n);
          for (unsigned t = 0; t < n; ++t)
            v[t] = net_->has_link(t, d)
                       ? static_cast<double>(net_->link_bytes(t, d))
                       : 0.0;
          return v;
        });
  }
}

TiledSystem::~TiledSystem() = default;

Cycle TiledSystem::run(Cycle cycle_limit) {
  completed_ = false;
  if (rec_ != nullptr) rec_->arm(eq_);
  if (injector_) injector_->arm();
  if (watchdog_) watchdog_->arm();
  runtime_->run([this] { completed_ = true; });
  run_event_queue(eq_, cfg_, cycle_limit);
  TDN_REQUIRE(completed_, "simulation drained without completing all tasks");
  if (cfg_.fault.check_invariants) {
    const fault::HealthState* hs =
        injector_ ? &injector_->health() : nullptr;
    const fault::InvariantReport report = fault::check_invariants(
        *caches_, tdnuca_policy_.get(), hooks_td_.get(), hs,
        cfg_.num_cores());
    TDN_CHECK(report.ok(), report.to_string());
  }
  return runtime_->makespan();
}

energy::EnergyBreakdown TiledSystem::energy(
    const energy::EnergyParams& params) const {
  std::uint64_t rrt_lookups = 0;
  if (tdnuca_policy_ && cfg_.policy != PolicyKind::TdNucaDryRun) {
    rrt_lookups = tdnuca_policy_->rrt_hits() + tdnuca_policy_->rrt_misses();
  }
  return energy::compute_energy(*caches_, *net_, *mcs_, rrt_lookups, params);
}

stats::Registry TiledSystem::collect_stats() const {
  stats::Registry r;
  const auto& cs = caches_->stats();
  r.set("sim.cycles", static_cast<double>(runtime_->makespan()));
  r.set("sim.events", static_cast<double>(eq_.executed()));
  r.set("tasks.completed", static_cast<double>(runtime_->tasks_completed()));
  r.set("l1.hits", static_cast<double>(cs.l1_hits.value()));
  r.set("l1.misses", static_cast<double>(cs.l1_misses.value()));
  r.set("llc.requests", static_cast<double>(cs.llc_requests.value()));
  r.set("llc.hits", static_cast<double>(cs.llc_hits.value()));
  r.set("llc.misses", static_cast<double>(cs.llc_misses.value()));
  r.set("llc.writebacks", static_cast<double>(cs.llc_writebacks.value()));
  r.set("llc.accesses", static_cast<double>(caches_->llc_accesses()));
  r.set("llc.hit_ratio", caches_->llc_hit_ratio());
  r.set("llc.bypass_reads", static_cast<double>(cs.bypass_reads.value()));
  r.set("cache.forced_unsafe_evictions",
        static_cast<double>(caches_->forced_unsafe_evictions()));
  for (unsigned b = 0; b < cfg_.num_cores(); ++b) {
    const auto& bc = caches_->bank_counters(b);
    const std::string p = "llc.bank" + std::to_string(b);
    r.set(p + ".requests", static_cast<double>(bc.requests));
    r.set(p + ".hits", static_cast<double>(bc.hits));
    r.set(p + ".misses", static_cast<double>(bc.misses));
    r.set(p + ".writebacks", static_cast<double>(bc.writebacks));
  }
  r.set("nuca.mean_distance", cs.nuca_distance.mean());
  r.set("l1.mean_miss_latency", cs.miss_latency.mean());
  r.set("noc.router_bytes", static_cast<double>(net_->total_router_bytes()));
  r.set("noc.messages", static_cast<double>(net_->messages()));
  r.set("dram.accesses", static_cast<double>(mcs_->total_accesses()));
  const auto e = energy(energy::EnergyParams{});
  r.set("energy.llc_pj", e.llc_pj);
  r.set("energy.noc_pj", e.noc_pj);
  r.set("energy.dram_pj", e.dram_pj);
  r.set("energy.total_pj", e.total_pj());
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t tlb_shootdowns = 0;
  Cycle flush_cycles = 0;
  for (const auto& c : cores_) {
    const vm::Mmu& m = c->mmu();
    const std::string p = "mem.core" + std::to_string(c->id());
    r.set(p + ".tlb_hits", static_cast<double>(m.tlb_hits()));
    r.set(p + ".tlb_misses", static_cast<double>(m.tlb_misses()));
    r.set(p + ".tlb_shootdowns", static_cast<double>(m.tlb_shootdowns()));
    tlb_hits += m.tlb_hits();
    tlb_misses += m.tlb_misses();
    tlb_shootdowns += m.tlb_shootdowns();
    flush_cycles += caches_->flush_busy_cycles(c->id());
  }
  r.set("tlb.hits", static_cast<double>(tlb_hits));
  r.set("tlb.misses", static_cast<double>(tlb_misses));
  r.set("mem.tlb_shootdowns", static_cast<double>(tlb_shootdowns));
  r.set("mem.mapped_pages", static_cast<double>(page_table_.mapped_pages()));
  r.set("mem.frames_used", static_cast<double>(page_table_.frames_used()));
  r.set("flush.busy_cycles", static_cast<double>(flush_cycles));
  if (cfg_.vm.enabled) {
    // tdn::vm keys appear only when the subsystem is on so legacy runs keep
    // the pre-vm key set (same guard discipline as the fault block below).
    std::uint64_t walks = 0, walk_loads = 0, psc_hits = 0, l2_hits = 0;
    Cycle walk_cycles = 0, charge_cycles = 0;
    for (const auto& c : cores_) {
      const vm::Mmu& m = c->mmu();
      walks += m.walks();
      walk_loads += m.walk_loads();
      walk_cycles += m.walk_cycles();
      charge_cycles += m.charge_walk_cycles();
      psc_hits += m.psc_hits();
      l2_hits += m.l2_tlb_hits();
    }
    r.set("vm.walks", static_cast<double>(walks));
    r.set("vm.walk_loads", static_cast<double>(walk_loads));
    r.set("vm.walk_cycles", static_cast<double>(walk_cycles));
    r.set("vm.isa_walk_cycles", static_cast<double>(charge_cycles));
    r.set("vm.psc_hits", static_cast<double>(psc_hits));
    r.set("vm.l2_tlb_hits", static_cast<double>(l2_hits));
    r.set("vm.pages_4k",
          static_cast<double>(page_table_.pages_of(vm::kPage4K)));
    r.set("vm.pages_2m",
          static_cast<double>(page_table_.pages_of(vm::kPage2M)));
    r.set("vm.pages_1g",
          static_cast<double>(page_table_.pages_of(vm::kPage1G)));
    r.set("vm.huge_fallbacks",
          static_cast<double>(page_table_.huge_fallbacks()));
    r.set("vm.punctured_frames",
          static_cast<double>(page_table_.punctured_frames()));
  }
  if (tdnuca_policy_) {
    r.set("rrt.mean_occupancy", tdnuca_policy_->mean_rrt_occupancy());
    r.set("rrt.max_occupancy",
          static_cast<double>(tdnuca_policy_->max_rrt_occupancy()));
    r.set("rrt.lookups", static_cast<double>(tdnuca_policy_->rrt_hits() +
                                             tdnuca_policy_->rrt_misses()));
  }
  if (hooks_td_) {
    r.set("tdnuca.bypass_placements",
          static_cast<double>(hooks_td_->bypass_placements()));
    r.set("tdnuca.local_placements",
          static_cast<double>(hooks_td_->local_placements()));
    r.set("tdnuca.replicated_placements",
          static_cast<double>(hooks_td_->replicated_placements()));
    r.set("tdnuca.runtime_overhead_cycles",
          static_cast<double>(hooks_td_->runtime_overhead_cycles()));
    r.set("tdnuca.translate_pages",
          static_cast<double>(hooks_td_->translate_pages()));
    r.set("tdnuca.translate_cycles",
          static_cast<double>(hooks_td_->translate_cycles()));
  }
  if (rnuca_policy_) {
    const auto c = rnuca_policy_->census();
    r.set("rnuca.private_pages", static_cast<double>(c.private_pages));
    r.set("rnuca.shared_ro_pages", static_cast<double>(c.shared_ro_pages));
    r.set("rnuca.shared_pages", static_cast<double>(c.shared_pages));
  }
  if (injector_) {
    // Only present with an active plan so healthy runs keep the pre-fault
    // key set (and thus byte-identical serialized results).
    const fault::FaultCounters& fc = injector_->health().counters;
    r.set("fault.banks_failed", static_cast<double>(fc.banks_failed));
    r.set("fault.banks_slowed", static_cast<double>(fc.banks_slowed));
    r.set("fault.links_failed", static_cast<double>(fc.links_failed));
    r.set("fault.links_degraded", static_cast<double>(fc.links_degraded));
    r.set("fault.bounced_requests",
          static_cast<double>(fc.bounced_requests));
    r.set("fault.dead_bank_writebacks",
          static_cast<double>(fc.dead_bank_writebacks));
    r.set("fault.evacuated_lines", static_cast<double>(fc.evacuated_lines));
    r.set("fault.evacuated_dirty", static_cast<double>(fc.evacuated_dirty));
    r.set("fault.rrt_entries_narrowed",
          static_cast<double>(fc.rrt_entries_narrowed));
    r.set("fault.rrt_entries_dropped",
          static_cast<double>(fc.rrt_entries_dropped));
    r.set("fault.rrt_corruptions", static_cast<double>(fc.rrt_corruptions));
    r.set("fault.rrt_evictions", static_cast<double>(fc.rrt_evictions));
    r.set("fault.rrt_scrubs", static_cast<double>(fc.rrt_scrubs));
    r.set("fault.noc_reroutes", static_cast<double>(fc.noc_reroutes));
    r.set("fault.noc_retries", static_cast<double>(fc.noc_retries));
    r.set("fault.dram_stalls", static_cast<double>(fc.dram_stalls));
    r.set("fault.healthy_banks",
          static_cast<double>(injector_->health().num_healthy()));
  }
  return r;
}

}  // namespace tdn::system
