// TiledSystem — builds and owns one complete simulated machine: the mesh,
// NoC, memory controllers, page table, NUCA policy, coherent cache
// hierarchy, timing cores, and the task dataflow runtime, wired per the
// selected PolicyKind. This is the top-level object workloads and the
// benchmark harness interact with.
#pragma once

#include <memory>
#include <vector>

#include "coherence/coherent_system.hpp"
#include "core/sim_core.hpp"
#include "energy/energy_model.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/snuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "stats/registry.hpp"
#include "system/config.hpp"
#include "tdnuca/runtime_hooks.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::system {

class TiledSystem {
 public:
  /// @p rec (optional) is wired through every layer at construction: the
  /// runtime, TD-NUCA hooks and cache hierarchy emit trace events into it,
  /// and the system registers its epoch time-series probes and heatmap
  /// providers. run() arms the epoch sampler. The recorder observes only —
  /// results are bit-identical with and without one attached.
  explicit TiledSystem(SystemConfig cfg, obs::Recorder* rec = nullptr);
  ~TiledSystem();
  TiledSystem(const TiledSystem&) = delete;
  TiledSystem& operator=(const TiledSystem&) = delete;

  const SystemConfig& config() const noexcept { return cfg_; }

  // --- the pieces workloads need ---------------------------------------
  mem::VirtualSpace& vspace() noexcept { return vspace_; }
  runtime::RuntimeSystem& runtime() noexcept { return *runtime_; }

  // --- execution --------------------------------------------------------
  /// Run the created task graph to completion; returns the makespan cycle.
  /// @p cycle_limit guards against protocol deadlock in tests.
  Cycle run(Cycle cycle_limit = kNeverCycle);
  bool completed() const noexcept { return completed_; }

  // --- component access (stats, tests) ----------------------------------
  sim::EventQueue& events() noexcept { return eq_; }
  const noc::Mesh& mesh() const noexcept { return mesh_; }
  noc::Network& network() noexcept { return *net_; }
  coherence::CoherentSystem& caches() noexcept { return *caches_; }
  mem::MemControllers& mcs() noexcept { return *mcs_; }
  mem::PageTable& page_table() noexcept { return page_table_; }
  core::SimCore& core(CoreId id) { return *cores_.at(id); }

  /// Non-null only for the matching PolicyKind.
  nuca::TdNucaPolicy* tdnuca_policy() noexcept { return tdnuca_policy_.get(); }
  nuca::RNucaPolicy* rnuca_policy() noexcept { return rnuca_policy_.get(); }
  tdnuca::TdNucaRuntimeHooks* tdnuca_hooks() noexcept { return hooks_td_.get(); }

  /// Non-null only when cfg.fault.plan is non-empty.
  fault::FaultInjector* fault_injector() noexcept { return injector_.get(); }
  /// Non-null only when cfg.fault.watchdog_budget > 0.
  fault::Watchdog* watchdog() noexcept { return watchdog_.get(); }

  energy::EnergyBreakdown energy(
      const energy::EnergyParams& params = {}) const;

  /// Export the run's headline statistics into a registry.
  stats::Registry collect_stats() const;

 private:
  void register_observability();

  SystemConfig cfg_;
  obs::Recorder* rec_ = nullptr;
  sim::EventQueue eq_;
  noc::Mesh mesh_;
  mem::VirtualSpace vspace_;
  mem::PageTable page_table_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<mem::MemControllers> mcs_;

  std::unique_ptr<nuca::SNucaPolicy> snuca_policy_;
  std::unique_ptr<nuca::RNucaPolicy> rnuca_policy_;
  std::unique_ptr<nuca::TdNucaPolicy> tdnuca_policy_;
  nuca::MappingPolicy* active_policy_ = nullptr;

  std::unique_ptr<coherence::CoherentSystem> caches_;
  std::vector<std::unique_ptr<core::SimCore>> cores_;

  std::unique_ptr<runtime::Scheduler> scheduler_;
  std::unique_ptr<runtime::RuntimeHooks> hooks_base_;
  std::unique_ptr<tdnuca::TdNucaRuntimeHooks> hooks_td_;
  std::unique_ptr<runtime::RuntimeSystem> runtime_;

  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::Watchdog> watchdog_;

  bool completed_ = false;
};

}  // namespace tdn::system
