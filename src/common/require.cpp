#include "common/require.hpp"

#include <sstream>

namespace tdn {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << msg << " [" << expr << "] at " << file << ":"
     << line;
  throw RequireError(os.str());
}

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << msg << " [" << expr << "] at " << file << ":"
     << line;
  throw RequireError(os.str());
}

}  // namespace tdn
