// Minimal leveled logging. The simulator is a library, so logging defaults to
// Warn and is controlled programmatically (or via TDN_LOG env var in tools).
#pragma once

#include <sstream>
#include <string>

namespace tdn::log {

enum class Level { Trace, Debug, Info, Warn, Error, Off };

Level level() noexcept;
void set_level(Level lvl) noexcept;
/// Read TDN_LOG=trace|debug|info|warn|error|off, if present.
void init_from_env();

void write(Level lvl, const std::string& msg);

}  // namespace tdn::log

#define TDN_LOG(lvl, stream_expr)                              \
  do {                                                         \
    if (static_cast<int>(lvl) >=                               \
        static_cast<int>(::tdn::log::level())) {               \
      std::ostringstream tdn_log_os;                           \
      tdn_log_os << stream_expr;                               \
      ::tdn::log::write((lvl), tdn_log_os.str());              \
    }                                                          \
  } while (false)

#define TDN_LOG_DEBUG(s) TDN_LOG(::tdn::log::Level::Debug, s)
#define TDN_LOG_INFO(s) TDN_LOG(::tdn::log::Level::Info, s)
#define TDN_LOG_WARN(s) TDN_LOG(::tdn::log::Level::Warn, s)
#define TDN_LOG_ERROR(s) TDN_LOG(::tdn::log::Level::Error, s)
