// Minimal leveled logging with per-subsystem levels. The simulator is a
// library, so logging defaults to Warn and is controlled programmatically
// (or via the TDN_LOG env var in tools).
//
// TDN_LOG accepts either a single level ("debug") or a comma-separated spec
// with per-subsystem overrides: "info,noc=debug,cache=trace". The bare level
// (if present) applies to every subsystem first; named entries then override
// individual subsystems. Full spec: docs/harness.md.
//
// Thread-safe: level loads are relaxed atomics, first-use TDN_LOG parsing
// is guarded by a once_flag, and write() serializes stderr so lines from
// concurrent SweepRunner workers never interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace tdn::log {

enum class Level { Trace, Debug, Info, Warn, Error, Off };

/// Log-producing subsystems, mirroring the src/ module layout.
enum class Sub {
  General,
  Sim,
  Mem,
  Noc,
  Cache,
  Coherence,
  Core,
  Runtime,
  TdNuca,
  Nuca,
  Energy,
  System,
  Workload,
  Harness,
  Obs,
  kCount,
};

Level level() noexcept;  ///< General subsystem level.
Level level(Sub sub) noexcept;
void set_level(Level lvl) noexcept;  ///< Sets every subsystem.
void set_level(Sub sub, Level lvl) noexcept;

/// Apply a TDN_LOG-style spec ("info", "noc=debug", "info,noc=debug,...").
/// Applies every valid entry; returns false if any entry failed to parse.
bool configure(const std::string& spec);
/// Read the TDN_LOG env var, if present, through configure().
void init_from_env();

const char* sub_name(Sub sub) noexcept;

void write(Level lvl, const std::string& msg);
void write(Level lvl, Sub sub, const std::string& msg);

}  // namespace tdn::log

#define TDN_LOG_AT(sub, lvl, stream_expr)                      \
  do {                                                         \
    if (static_cast<int>(lvl) >=                               \
        static_cast<int>(::tdn::log::level(sub))) {            \
      std::ostringstream tdn_log_os;                           \
      tdn_log_os << stream_expr;                               \
      ::tdn::log::write((lvl), (sub), tdn_log_os.str());       \
    }                                                          \
  } while (false)

#define TDN_LOG(lvl, stream_expr) \
  TDN_LOG_AT(::tdn::log::Sub::General, lvl, stream_expr)

#define TDN_LOG_DEBUG(s) TDN_LOG(::tdn::log::Level::Debug, s)
#define TDN_LOG_INFO(s) TDN_LOG(::tdn::log::Level::Info, s)
#define TDN_LOG_WARN(s) TDN_LOG(::tdn::log::Level::Warn, s)
#define TDN_LOG_ERROR(s) TDN_LOG(::tdn::log::Level::Error, s)
