// Deterministic pseudo-random number generation for workload access-pattern
// synthesis. SplitMix64 is tiny, fast, and has well-studied statistical
// quality; every simulated run is seeded explicitly so results are
// bit-reproducible (DESIGN.md decision 6).
#pragma once

#include <cstdint>

namespace tdn {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Raw generator position — checkpoint/restore of long-lived streams
  /// (e.g. the page allocator's fragmentation PRNG). Restoring the state
  /// resumes the exact sample sequence.
  constexpr std::uint64_t state() const noexcept { return state_; }
  constexpr void set_state(std::uint64_t s) noexcept { state_ = s; }

 private:
  std::uint64_t state_;
};

/// Stable 64-bit FNV-1a hash, used for config fingerprints in the results
/// cache and for deriving per-entity PRNG seeds.
constexpr std::uint64_t fnv1a64(const char* data, std::size_t n,
                                std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace tdn
