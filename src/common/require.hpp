// Error handling policy (C++ Core Guidelines E.*) — three tiers:
//   * TDN_REQUIRE  — precondition / configuration validation; throws
//     tdn::RequireError so callers and tests can observe the failure.
//     Always active. Use for errors caused by bad input.
//   * TDN_CHECK    — runtime invariants that must hold even in Release
//     builds (e.g. the end-of-run fault::InvariantChecker, NoC retry-budget
//     exhaustion). Throws tdn::RequireError like TDN_REQUIRE but documents
//     that the failure is a bug in the simulator, not in the caller's input.
//     Always active; keep it off hot per-access paths.
//   * TDN_ASSERT   — internal invariants on hot paths; aborts in debug,
//     compiled out in release unless TDN_CHECKED is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace tdn {

class RequireError : public std::runtime_error {
 public:
  explicit RequireError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& msg);

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace tdn

#define TDN_REQUIRE(expr, msg)                                 \
  do {                                                         \
    if (!(expr)) {                                             \
      ::tdn::require_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                          \
  } while (false)

#define TDN_CHECK(expr, msg)                                 \
  do {                                                       \
    if (!(expr)) {                                           \
      ::tdn::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                        \
  } while (false)

#if !defined(NDEBUG) || defined(TDN_CHECKED)
#include <cassert>
#define TDN_ASSERT(expr) assert(expr)
#else
#define TDN_ASSERT(expr) ((void)0)
#endif
