// TileMask — the BankMask / CoreMask bit vectors of the TD-NUCA ISA
// (paper Sec. III-A). One bit per tile; in the evaluated 16-tile system the
// masks are 16 bits wide, but the type supports up to 64 tiles.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tdn {

class TileMask {
 public:
  constexpr TileMask() = default;
  constexpr explicit TileMask(std::uint64_t bits) : bits_(bits) {}

  static constexpr TileMask none() { return TileMask{}; }
  static constexpr TileMask single(CoreId tile) { return TileMask{1ull << tile}; }
  static constexpr TileMask first_n(unsigned n) {
    return TileMask{n >= 64 ? ~0ull : ((1ull << n) - 1)};
  }

  constexpr bool test(CoreId tile) const { return (bits_ >> tile) & 1u; }
  constexpr void set(CoreId tile) { bits_ |= (1ull << tile); }
  constexpr void clear(CoreId tile) { bits_ &= ~(1ull << tile); }

  constexpr bool empty() const { return bits_ == 0; }
  constexpr int count() const { return __builtin_popcountll(bits_); }
  constexpr std::uint64_t bits() const { return bits_; }

  /// Index of the only set bit. Precondition: count() == 1.
  constexpr CoreId sole_bit() const {
    assert(count() == 1);
    return static_cast<CoreId>(__builtin_ctzll(bits_));
  }

  /// Index of the n-th set bit (n counted from 0, from the LSB).
  constexpr CoreId nth_bit(int n) const {
    std::uint64_t b = bits_;
    for (int i = 0; i < n; ++i) b &= b - 1;  // clear lowest set bit n times
    assert(b != 0);
    return static_cast<CoreId>(__builtin_ctzll(b));
  }

  /// Invoke @p fn for every set bit, in ascending tile order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t b = bits_;
    while (b != 0) {
      fn(static_cast<CoreId>(__builtin_ctzll(b)));
      b &= b - 1;
    }
  }

  constexpr TileMask operator|(TileMask o) const { return TileMask{bits_ | o.bits_}; }
  constexpr TileMask operator&(TileMask o) const { return TileMask{bits_ & o.bits_}; }
  constexpr TileMask& operator|=(TileMask o) {
    bits_ |= o.bits_;
    return *this;
  }
  friend constexpr bool operator==(TileMask, TileMask) = default;

  std::string to_string(unsigned width = 16) const {
    std::string s;
    s.reserve(width);
    for (unsigned i = width; i-- > 0;) s.push_back(test(i) ? '1' : '0');
    return s;
  }

 private:
  std::uint64_t bits_ = 0;
};

using BankMask = TileMask;
using CoreMask = TileMask;

}  // namespace tdn
