// Minimal JSON formatting helpers shared by the stats registry and the
// observability sinks. Emission only — the simulator never parses JSON.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tdn {

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Format a double as a JSON number that round-trips (%.17g); non-finite
/// values (not representable in JSON) become null.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // Integral values print without an exponent/decimal tail so the common
  // case (counters) stays readable.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace tdn
