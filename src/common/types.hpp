// Fundamental value types shared by every module of the TD-NUCA simulator.
//
// The simulator distinguishes three address spaces:
//   * virtual addresses (what workloads and the runtime system see),
//   * physical addresses (what caches, directories and DRAM see),
//   * block/line addresses (physical addresses with the offset bits dropped).
// All are carried in 64-bit integers; helper functions below convert between
// them for a given line/page size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace tdn {

using Addr = std::uint64_t;   ///< Virtual or physical byte address.
using Cycle = std::uint64_t;  ///< Simulated time in core clock cycles.

using CoreId = std::uint32_t;  ///< Tile/core index, 0 .. numCores-1.
using BankId = std::uint32_t;  ///< LLC bank index; one bank per tile.
using TaskId = std::uint64_t;  ///< Runtime task identifier (creation order).
using DepId = std::uint64_t;   ///< Runtime dependency-region identifier.

inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();
inline constexpr BankId kInvalidBank = std::numeric_limits<BankId>::max();
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// How a task declares it will use a dependency region (OpenMP 4.0
/// depend(in/out/inout) clauses).
enum class DepUse : std::uint8_t { In, Out, InOut };

/// Memory reference kind as seen by the cache hierarchy.
enum class AccessKind : std::uint8_t { Read, Write };

constexpr bool is_write(AccessKind k) noexcept { return k == AccessKind::Write; }

/// A half-open byte range [begin, end) in one address space.
struct AddrRange {
  Addr begin = 0;
  Addr end = 0;

  constexpr Addr size() const noexcept { return end - begin; }
  constexpr bool empty() const noexcept { return end <= begin; }
  constexpr bool contains(Addr a) const noexcept { return a >= begin && a < end; }
  constexpr bool overlaps(const AddrRange& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  constexpr bool contains_range(const AddrRange& o) const noexcept {
    return o.begin >= begin && o.end <= end;
  }
  friend constexpr bool operator==(const AddrRange&, const AddrRange&) = default;
};

/// Round @p a down to a multiple of @p align (power of two).
constexpr Addr align_down(Addr a, Addr align) noexcept { return a & ~(align - 1); }
/// Round @p a up to a multiple of @p align (power of two).
constexpr Addr align_up(Addr a, Addr align) noexcept {
  return (a + align - 1) & ~(align - 1);
}
constexpr bool is_pow2(std::uint64_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

inline constexpr Addr kKiB = 1024;
inline constexpr Addr kMiB = 1024 * kKiB;
inline constexpr Addr kGiB = 1024 * kMiB;

/// Base of the simulated kernel physical region. Page-table structures live
/// here, so a cache/coherence layer can recognize page-walker loads (their
/// vaddr == paddr >= kKernelBase) and keep them out of the NUCA policies'
/// page-classification machinery — hardware walkers bypass the dTLB and OS
/// page-grain bookkeeping the same way. Far above any workload heap or serve
/// generation slice.
inline constexpr Addr kKernelBase = 0xFFFF'8000'0000'0000ull;

}  // namespace tdn
