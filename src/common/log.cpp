#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tdn::log {

namespace {
std::atomic<Level> g_level{Level::Warn};

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

void init_from_env() {
  const char* v = std::getenv("TDN_LOG");
  if (v == nullptr) return;
  if (std::strcmp(v, "trace") == 0) set_level(Level::Trace);
  else if (std::strcmp(v, "debug") == 0) set_level(Level::Debug);
  else if (std::strcmp(v, "info") == 0) set_level(Level::Info);
  else if (std::strcmp(v, "warn") == 0) set_level(Level::Warn);
  else if (std::strcmp(v, "error") == 0) set_level(Level::Error);
  else if (std::strcmp(v, "off") == 0) set_level(Level::Off);
}

void write(Level lvl, const std::string& msg) {
  std::fprintf(stderr, "[tdn %-5s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace tdn::log
