#include "common/log.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tdn::log {

namespace {

constexpr std::size_t kSubs = static_cast<std::size_t>(Sub::kCount);

using LevelArray = std::array<std::atomic<Level>, kSubs>;

bool apply_spec(LevelArray& a, const std::string& spec);

struct Levels {
  LevelArray a;
  Levels() {
    for (auto& l : a) l.store(Level::Warn, std::memory_order_relaxed);
  }
};

// First-use TDN_LOG parsing must be safe when the first use happens on a
// SweepRunner pool thread: the magic static serializes construction
// (C++11), and the env parse runs under its own once_flag so concurrent
// first callers observe either no spec applied yet or the complete spec —
// never a half-applied one. SweepRunner additionally calls init_from_env()
// on the main thread before starting workers.
std::once_flag g_env_once;

LevelArray& levels() {
  static Levels g;
  std::call_once(g_env_once, [] {
    // Applied at first logger use, so every tool linking the library
    // honours TDN_LOG without an explicit init_from_env() call.
    if (const char* v = std::getenv("TDN_LOG")) apply_spec(g.a, v);
  });
  return g.a;
}

// Serializes stderr writes from concurrent simulation workers so log lines
// never interleave mid-line.
std::mutex& write_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

bool parse_level(const std::string& s, Level& out) {
  if (s == "trace") out = Level::Trace;
  else if (s == "debug") out = Level::Debug;
  else if (s == "info") out = Level::Info;
  else if (s == "warn") out = Level::Warn;
  else if (s == "error") out = Level::Error;
  else if (s == "off") out = Level::Off;
  else return false;
  return true;
}

bool parse_sub(const std::string& s, Sub& out) {
  for (std::size_t i = 0; i < kSubs; ++i) {
    if (s == sub_name(static_cast<Sub>(i))) {
      out = static_cast<Sub>(i);
      return true;
    }
  }
  return false;
}

// Operates on an explicit array so the Levels constructor can use it while
// the levels() magic static is still being initialised.
bool apply_spec(LevelArray& a, const std::string& spec) {
  bool ok = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    Level lvl;
    if (eq == std::string::npos) {
      // Bare level: applies to every subsystem (legacy single-level syntax).
      if (parse_level(entry, lvl)) {
        for (auto& l : a) l.store(lvl, std::memory_order_relaxed);
      } else {
        ok = false;
      }
      continue;
    }
    Sub sub;
    if (parse_sub(entry.substr(0, eq), sub) &&
        parse_level(entry.substr(eq + 1), lvl)) {
      a[static_cast<std::size_t>(sub)].store(lvl, std::memory_order_relaxed);
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace

const char* sub_name(Sub sub) noexcept {
  switch (sub) {
    case Sub::General: return "general";
    case Sub::Sim: return "sim";
    case Sub::Mem: return "mem";
    case Sub::Noc: return "noc";
    case Sub::Cache: return "cache";
    case Sub::Coherence: return "coherence";
    case Sub::Core: return "core";
    case Sub::Runtime: return "runtime";
    case Sub::TdNuca: return "tdnuca";
    case Sub::Nuca: return "nuca";
    case Sub::Energy: return "energy";
    case Sub::System: return "system";
    case Sub::Workload: return "workload";
    case Sub::Harness: return "harness";
    case Sub::Obs: return "obs";
    case Sub::kCount: break;
  }
  return "?";
}

Level level() noexcept { return level(Sub::General); }

Level level(Sub sub) noexcept {
  return levels()[static_cast<std::size_t>(sub)].load(std::memory_order_relaxed);
}

void set_level(Level lvl) noexcept {
  for (auto& l : levels()) l.store(lvl, std::memory_order_relaxed);
}

void set_level(Sub sub, Level lvl) noexcept {
  levels()[static_cast<std::size_t>(sub)].store(lvl, std::memory_order_relaxed);
}

bool configure(const std::string& spec) { return apply_spec(levels(), spec); }

void init_from_env() {
  const char* v = std::getenv("TDN_LOG");
  if (v == nullptr) return;
  configure(v);
}

void write(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(write_mutex());
  std::fprintf(stderr, "[tdn %-5s] %s\n", level_name(lvl), msg.c_str());
}

void write(Level lvl, Sub sub, const std::string& msg) {
  if (sub == Sub::General) {
    write(lvl, msg);
    return;
  }
  std::lock_guard<std::mutex> lock(write_mutex());
  std::fprintf(stderr, "[tdn %-5s %s] %s\n", level_name(lvl), sub_name(sub),
               msg.c_str());
}

}  // namespace tdn::log
