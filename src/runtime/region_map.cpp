#include "runtime/region_map.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace tdn::runtime {

void RegionMap::ensure_boundary(Addr a) {
  auto it = nodes_.upper_bound(a);
  if (it == nodes_.begin()) return;
  --it;
  if (it->first == a || it->second.end <= a) return;
  // Node [it->first, end) covers `a` strictly inside: split it.
  Node right = it->second;           // copies writer/readers
  const Addr right_end = right.end;  // keep
  it->second.end = a;
  right.end = right_end;
  nodes_.emplace(a, std::move(right));
}

std::vector<TaskId> RegionMap::access(const AddrRange& range, TaskId task,
                                      bool write) {
  TDN_REQUIRE(!range.empty(), "dependency range must be non-empty");
  ensure_boundary(range.begin);
  ensure_boundary(range.end);

  std::vector<TaskId> preds;
  auto add_pred = [&](TaskId t) {
    if (t == task || t == kNoWriter) return;
    if (std::find(preds.begin(), preds.end(), t) == preds.end())
      preds.push_back(t);
  };

  Addr cursor = range.begin;
  auto it = nodes_.lower_bound(range.begin);
  // Step back if the previous node ends beyond our start (only possible when
  // no boundary existed — but ensure_boundary created one, so lower_bound is
  // correct; keep the invariant checked).
  while (cursor < range.end) {
    if (it == nodes_.end() || it->first > cursor) {
      // Gap: untouched bytes; create a node covering up to the next boundary.
      const Addr gap_end =
          it == nodes_.end() ? range.end : std::min(it->first, range.end);
      it = nodes_.emplace_hint(it, cursor, Node{gap_end, kNoWriter, {}});
    }
    Node& n = it->second;
    TDN_ASSERT(it->first == cursor && n.end <= range.end);
    add_pred(n.last_writer);
    if (write) {
      for (TaskId r : n.readers) add_pred(r);
      n.last_writer = task;
      n.readers.clear();
    } else {
      if (std::find(n.readers.begin(), n.readers.end(), task) ==
          n.readers.end())
        n.readers.push_back(task);
    }
    cursor = n.end;
    ++it;
  }
  return preds;
}

}  // namespace tdn::runtime
