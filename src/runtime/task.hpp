// Task — a node of the Task Dependency Graph.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/access_stream.hpp"
#include "runtime/dependency.hpp"

namespace tdn::runtime {

enum class TaskState : std::uint8_t { Created, Ready, Running, Done };

struct Task {
  TaskId id = 0;
  std::string label;
  std::vector<DepAccess> deps;
  core::TaskProgram program;

  // --- TDG state (managed by the runtime) ------------------------------
  TaskState state = TaskState::Created;
  std::size_t phase = 0;  ///< creation phase (between taskwaits)
  std::vector<TaskId> successors;
  std::vector<TaskId> predecessors;
  unsigned unmet_predecessors = 0;
  CoreId ran_on = kInvalidCore;
  Cycle ready_at = 0;  ///< when the last predecessor retired (obs tracing)
  Cycle started_at = 0;
  Cycle finished_at = 0;
  // --- execution breakdown (obs critical-path analysis) ----------------
  Cycle exec_started_at = 0;   ///< core.execute() began (after dispatch+hooks)
  Cycle exec_finished_at = 0;  ///< core.execute() drained (before end hooks)
  Cycle compute_cycles = 0;    ///< ideal stall-free cycles of the program
  Cycle hook_cycles = 0;       ///< TD-NUCA ISA cycles charged for this task
};

}  // namespace tdn::runtime
