// RuntimeSystem — the task dataflow runtime (Nanos++/OmpSs substitution).
//
// Execution model (paper Sec. II-D): the program first creates all its tasks
// in program order; the runtime inserts them into the TDG by analysing their
// in/out/inout dependencies; ready tasks are then dynamically scheduled onto
// idle cores and executed asynchronously until the graph drains.
//
// TD-NUCA plugs in through RuntimeHooks: placement decisions run after a
// task is scheduled to a core but before it executes, and end-of-task
// flush/invalidate sequences run after it completes (Sec. III-C2).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "core/sim_core.hpp"
#include "runtime/dependency.hpp"
#include "runtime/hooks.hpp"
#include "runtime/region_map.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "sim/event_queue.hpp"
#include "stats/counters.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::runtime {

struct RuntimeConfig {
  /// Scheduling/bookkeeping cycles charged to a core per task dispatch.
  Cycle dispatch_overhead = 200;
  /// Extra per-dependency bookkeeping cycles at dispatch (RTCacheDirectory
  /// maintenance is charged separately by the TD-NUCA hooks).
  Cycle per_dep_overhead = 20;
  /// Random extra dispatch cycles in [0, jitter): models lock contention
  /// inside the runtime and breaks the perfect core/task symmetry a
  /// deterministic simulator would otherwise exhibit — with zero jitter,
  /// FIFO dispatch re-assigns iteration i's task to the same core every
  /// iteration, which no real dynamic scheduler does (and which would
  /// unrealistically flatter OS page classification).
  Cycle dispatch_jitter = 64;
  std::uint64_t jitter_seed = 0x5eed5eed;
};

class RuntimeSystem {
 public:
  /// @p cores is the set this runtime may schedule on, in strictly
  /// increasing id order. It need not be contiguous or start at id 0: a
  /// multiprogram system (tdn::multi) gives each app's runtime a partition
  /// of the machine's cores. Task::ran_on always records the *global* core
  /// id. @p rec (optional) receives one trace span per executed task plus
  /// phase-transition instants; it observes only and never alters timing.
  RuntimeSystem(sim::EventQueue& eq, std::vector<core::SimCore*> cores,
                Scheduler& sched, RuntimeHooks& hooks, RuntimeConfig cfg = {},
                obs::Recorder* rec = nullptr);

  // --- program construction (the "create all tasks" phase) -------------
  /// Register a dependency region; returns its id. Regions are matched by
  /// identity, exactly as task-dataflow runtimes match dependencies by
  /// their (start address, size): registering the same range twice returns
  /// the same id, while overlapping-but-different ranges are distinct
  /// dependencies. This identity is what the TD-NUCA reuse predictor keys
  /// its UseDesc counters on.
  DepId region(AddrRange vrange, std::string name = {});
  const Dependency& dep(DepId id) const { return deps_.at(id); }
  std::size_t num_deps() const noexcept { return deps_.size(); }

  /// Create a task with its dependency accesses and access program.
  /// Dataflow edges against earlier tasks are derived automatically.
  TaskId create_task(std::string label, std::vector<DepAccess> accesses,
                     core::TaskProgram program);

  /// Global synchronization point (OpenMP taskwait / barrier). Tasks created
  /// afterwards belong to the next phase: they cannot start until every
  /// earlier task completes, and — crucially for TD-NUCA's reuse predictor —
  /// they are not visible in the TDG until the phase opens, exactly as in
  /// the real execution model where the creating thread is blocked at the
  /// barrier (paper Sec. II-D). Iterative benchmarks with per-iteration
  /// taskwaits therefore predict almost everything as not-reused (Fig. 3).
  void taskwait();

  // --- execution --------------------------------------------------------
  /// Start dispatching; @p on_complete fires when every task is done.
  /// Drive the event queue (eq.run()) after calling this.
  void run(std::function<void()> on_complete);

  /// Re-examine idle cores and dispatch ready tasks onto them. A no-op
  /// before run() or after the graph drains. Needed when core occupancy can
  /// change without this runtime observing it — e.g. a co-scheduled runtime
  /// sharing (a subset of) our cores released one (tdn::multi overlap mode).
  void kick();

  /// Invoked after every task completion, *after* this runtime has
  /// re-dispatched its own idle cores — co-scheduled runtimes hook this to
  /// contend for the freed core. Observes only; must not create tasks.
  void set_on_task_complete(std::function<void()> cb) {
    on_task_complete_ = std::move(cb);
  }

  // --- introspection ----------------------------------------------------
  const std::vector<Task>& tasks() const noexcept { return tasks_; }
  Task& task(TaskId id) { return tasks_.at(id); }
  std::size_t tasks_completed() const noexcept { return completed_; }
  Cycle makespan() const noexcept { return makespan_; }
  unsigned num_cores() const noexcept {
    return static_cast<unsigned>(cores_.size());
  }

  std::size_t num_phases() const noexcept { return phases_.size(); }

 private:
  void dispatch_idle_cores();
  void start_on_core(Task& t, core::SimCore& core);
  void complete_task(Task& t);
  void open_phase(std::size_t p);
  core::SimCore& core_by_id(CoreId id);

  sim::EventQueue& eq_;
  std::vector<core::SimCore*> cores_;
  Scheduler& sched_;
  RuntimeHooks& hooks_;
  RuntimeConfig cfg_;
  obs::Recorder* rec_;

  std::vector<Dependency> deps_;
  std::map<std::pair<Addr, Addr>, DepId> dep_by_range_;
  std::vector<Task> tasks_;
  RegionMap regions_;

  struct Phase {
    std::size_t first_task = 0;
    std::size_t count = 0;
    std::size_t remaining = 0;
  };
  std::vector<Phase> phases_{Phase{}};
  std::size_t open_phase_ = 0;

  bool running_ = false;
  std::size_t completed_ = 0;
  Cycle makespan_ = 0;
  SplitMix64 jitter_{0};
  std::function<void()> on_complete_;
  std::function<void()> on_task_complete_;
};

}  // namespace tdn::runtime
