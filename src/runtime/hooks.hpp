// RuntimeHooks — the extension points TD-NUCA adds to the task lifecycle
// (paper Sec. III-C2). The base implementation is a no-op, which is exactly
// what the S-NUCA and R-NUCA configurations use: those policies act below
// the runtime, in the OS/hardware.
//
// TD-NUCA's hooks (tdnuca/runtime_hooks.hpp) maintain the RTCacheDirectory,
// decide each dependency's LLC placement before the task starts, and issue
// the tdnuca_register / invalidate / flush instructions whose execution time
// is charged to the core.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace tdn::core {
class SimCore;
}

namespace tdn::runtime {

struct Task;

class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;

  /// The task has been inserted into the TDG (program order).
  virtual void on_task_created(const Task& /*task*/) {}

  /// The task has been scheduled to @p core but has not started. Call
  /// @p done (possibly after consuming simulated core time) to let it run.
  virtual void before_task(Task& /*task*/, core::SimCore& /*core*/,
                           std::function<void()> done) {
    done();
  }

  /// The task's accesses have completed. Call @p done to retire the task.
  virtual void after_task(Task& /*task*/, core::SimCore& /*core*/,
                          std::function<void()> done) {
    done();
  }
};

}  // namespace tdn::runtime
