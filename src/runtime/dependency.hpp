// Task dependency regions (the "array sections" of OpenMP 4.0 depend
// clauses). A Dependency names a virtual address range; tasks reference it
// with a direction (in / out / inout). The runtime keeps one record per
// region — the paper's RTCacheDirectory has "a unique entry for each task
// dependency".
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace tdn::runtime {

struct Dependency {
  DepId id = 0;
  AddrRange vrange;
  std::string name;
};

struct DepAccess {
  DepId dep = 0;
  DepUse use = DepUse::In;

  bool reads() const noexcept { return use != DepUse::Out; }
  bool writes() const noexcept { return use != DepUse::In; }
};

inline const char* to_string(DepUse u) {
  switch (u) {
    case DepUse::In: return "in";
    case DepUse::Out: return "out";
    case DepUse::InOut: return "inout";
  }
  return "?";
}

}  // namespace tdn::runtime
