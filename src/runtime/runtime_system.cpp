#include "runtime/runtime_system.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "obs/recorder.hpp"

namespace tdn::runtime {

RuntimeSystem::RuntimeSystem(sim::EventQueue& eq,
                             std::vector<core::SimCore*> cores,
                             Scheduler& sched, RuntimeHooks& hooks,
                             RuntimeConfig cfg, obs::Recorder* rec)
    : eq_(eq), cores_(std::move(cores)), sched_(sched), hooks_(hooks),
      cfg_(cfg), rec_(rec), jitter_(cfg.jitter_seed) {
  TDN_REQUIRE(!cores_.empty(), "runtime needs at least one core");
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    TDN_REQUIRE(cores_[i] != nullptr, "null core");
    TDN_REQUIRE(i == 0 || cores_[i]->id() > cores_[i - 1]->id(),
                "cores must be passed in strictly increasing id order");
  }
}

core::SimCore& RuntimeSystem::core_by_id(CoreId id) {
  for (core::SimCore* c : cores_) {
    if (c->id() == id) return *c;
  }
  TDN_REQUIRE(false, "task ran on a core this runtime does not own");
  return *cores_.front();
}

DepId RuntimeSystem::region(AddrRange vrange, std::string name) {
  TDN_REQUIRE(!vrange.empty(), "dependency region must be non-empty");
  const auto key = std::make_pair(vrange.begin, vrange.end);
  auto it = dep_by_range_.find(key);
  if (it != dep_by_range_.end()) return it->second;
  const DepId id = deps_.size();
  deps_.push_back(Dependency{id, vrange, std::move(name)});
  dep_by_range_.emplace(key, id);
  return id;
}

TaskId RuntimeSystem::create_task(std::string label,
                                  std::vector<DepAccess> accesses,
                                  core::TaskProgram program) {
  TDN_REQUIRE(!running_, "cannot create tasks after run() started");
  const TaskId id = tasks_.size();
  Task t;
  t.id = id;
  t.label = std::move(label);
  t.deps = std::move(accesses);
  t.program = std::move(program);

  // Derive dataflow edges. Reads are registered before writes so an inout
  // access does not create a self-edge.
  std::vector<TaskId> preds;
  auto merge = [&](const std::vector<TaskId>& more) {
    for (TaskId p : more)
      if (std::find(preds.begin(), preds.end(), p) == preds.end())
        preds.push_back(p);
  };
  for (const DepAccess& a : t.deps) {
    const Dependency& d = deps_.at(a.dep);
    if (a.reads()) merge(regions_.access(d.vrange, id, /*write=*/false));
    if (a.writes()) merge(regions_.access(d.vrange, id, /*write=*/true));
  }
  t.predecessors = preds;
  t.unmet_predecessors = static_cast<unsigned>(preds.size());
  t.phase = phases_.size() - 1;
  tasks_.push_back(std::move(t));
  for (TaskId p : preds) tasks_[p].successors.push_back(id);
  ++phases_.back().count;
  ++phases_.back().remaining;
  // Note: hooks_.on_task_created fires when the task's phase opens, not
  // here — the runtime cannot see tasks beyond the next taskwait.
  return id;
}

void RuntimeSystem::taskwait() {
  TDN_REQUIRE(!running_, "cannot add phases after run() started");
  if (phases_.back().count == 0) return;  // empty phase: coalesce
  phases_.push_back(Phase{tasks_.size(), 0, 0});
}

void RuntimeSystem::run(std::function<void()> on_complete) {
  TDN_REQUIRE(!running_, "run() may only be called once");
  running_ = true;
  on_complete_ = std::move(on_complete);
  if (tasks_.empty()) {
    auto done = std::move(on_complete_);
    if (done) done();
    return;
  }
  open_phase(0);
  dispatch_idle_cores();
}

void RuntimeSystem::kick() {
  if (!running_ || completed_ == tasks_.size()) return;
  dispatch_idle_cores();
}

void RuntimeSystem::open_phase(std::size_t p) {
  TDN_ASSERT(p < phases_.size());
  open_phase_ = p;
  const Phase& ph = phases_[p];
  if (rec_ != nullptr && rec_->trace_on()) {
    rec_->instant(obs::Recorder::kRuntimeTrack, "runtime",
                  "phase " + std::to_string(p),
                  "\"tasks\":" + std::to_string(ph.count));
  }
  // The creating thread resumes past the barrier: the phase's tasks become
  // visible to the runtime (and to TD-NUCA's UseDesc counters) only now.
  for (std::size_t i = ph.first_task; i < ph.first_task + ph.count; ++i)
    hooks_.on_task_created(tasks_[i]);
  for (std::size_t i = ph.first_task; i < ph.first_task + ph.count; ++i) {
    Task& t = tasks_[i];
    if (t.unmet_predecessors == 0) {
      t.state = TaskState::Ready;
      t.ready_at = eq_.now();
      sched_.enqueue(t);
    }
  }
}

void RuntimeSystem::dispatch_idle_cores() {
  // Gather the idle cores and hand out tasks in random order: idle workers
  // race on the central ready queue, and which one wins a task is
  // effectively arbitrary. This task migration across cores is inherent to
  // dynamic schedulers — and is precisely what defeats OS page
  // classification (paper Sec. II-C).
  std::vector<core::SimCore*> idle;
  idle.reserve(cores_.size());
  for (core::SimCore* c : cores_) {
    if (c->idle()) idle.push_back(c);
  }
  while (!idle.empty()) {
    const std::size_t pick = jitter_.next_below(idle.size());
    core::SimCore* c = idle[pick];
    idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(pick));
    Task* t = sched_.dequeue(c->id());
    if (t == nullptr) return;  // central queue drained
    start_on_core(*t, *c);
  }
}

void RuntimeSystem::start_on_core(Task& t, core::SimCore& core) {
  TDN_ASSERT(t.state == TaskState::Ready);
  core.reserve();
  t.state = TaskState::Running;
  t.ran_on = core.id();
  t.started_at = eq_.now();
  Cycle overhead =
      cfg_.dispatch_overhead + cfg_.per_dep_overhead * t.deps.size();
  if (cfg_.dispatch_jitter > 0)
    overhead += jitter_.next_below(cfg_.dispatch_jitter);
  core.busy(overhead, [this, &t, &core] {
    hooks_.before_task(t, core, [this, &t, &core] {
      t.exec_started_at = eq_.now();
      core.execute(t.program, [this, &t, &core] {
        t.exec_finished_at = eq_.now();
        t.compute_cycles = core.task_ideal_cycles();
        hooks_.after_task(t, core, [this, &t] { complete_task(t); });
      });
    });
  });
}

void RuntimeSystem::complete_task(Task& t) {
  TDN_ASSERT(t.state == TaskState::Running);
  core_by_id(t.ran_on).release();
  t.state = TaskState::Done;
  t.finished_at = eq_.now();
  if (rec_ != nullptr && rec_->trace_on()) {
    std::ostringstream args;
    args << "\"id\":" << t.id << ",\"phase\":" << t.phase
         << ",\"deps\":" << t.deps.size()
         << ",\"wait\":" << (t.started_at - t.ready_at);
    rec_->span(t.ran_on, "task", t.label, t.started_at,
               t.finished_at - t.started_at, args.str());
  }
  makespan_ = std::max(makespan_, t.finished_at);
  ++completed_;
  for (TaskId s : t.successors) {
    Task& succ = tasks_[s];
    TDN_ASSERT(succ.unmet_predecessors > 0);
    if (--succ.unmet_predecessors == 0 && succ.phase <= open_phase_) {
      succ.state = TaskState::Ready;
      succ.ready_at = eq_.now();
      sched_.enqueue(succ);
    }
  }
  TDN_ASSERT(phases_[t.phase].remaining > 0);
  if (--phases_[t.phase].remaining == 0 && t.phase == open_phase_ &&
      t.phase + 1 < phases_.size()) {
    open_phase(t.phase + 1);
  }
  if (completed_ == tasks_.size()) {
    auto done = std::move(on_complete_);
    if (done) done();
    // on_complete (a multiprogram orchestrator, say) kicks co-runners; the
    // per-task hook below is for the steady state, not the final drain.
    return;
  }
  dispatch_idle_cores();
  if (on_task_complete_) on_task_complete_();
}

}  // namespace tdn::runtime
