// RegionMap — interval-based data-dependence tracking.
//
// Records, per disjoint byte interval, the last writing task and the readers
// since that write, and derives the dataflow edges for a new access:
//   read  -> RAW edge to the last writer
//   write -> WAW edge to the last writer, WAR edges to readers since
// Intervals split on demand, so partially overlapping dependency regions are
// handled exactly (OmpSs-style region analysis).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace tdn::runtime {

class RegionMap {
 public:
  /// Record an access by @p task to @p range.
  /// Returns the de-duplicated predecessor task ids (never contains @p task).
  std::vector<TaskId> access(const AddrRange& range, TaskId task, bool write);

  std::size_t interval_count() const noexcept { return nodes_.size(); }

 private:
  static constexpr TaskId kNoWriter = ~TaskId{0};
  struct Node {
    Addr end;
    TaskId last_writer = kNoWriter;
    std::vector<TaskId> readers;  // since last write
  };

  /// Ensure @p a is an interval boundary (split the covering node, if any).
  void ensure_boundary(Addr a);

  std::map<Addr, Node> nodes_;  // key = interval begin; disjoint, sorted
};

}  // namespace tdn::runtime
