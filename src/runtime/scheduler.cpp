#include "runtime/scheduler.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace tdn::runtime {

Task* AffinityScheduler::dequeue(CoreId core) {
  if (queue_.empty()) return nullptr;
  TDN_REQUIRE(tasks_ != nullptr,
              "AffinityScheduler: set_tasks() not called before the first "
              "dispatch — wire the runtime's task table during assembly");
  // Scan a bounded window for a task with a predecessor that ran on this
  // core; see kAffinityWindow.
  const std::size_t window = std::min(queue_.size(), kAffinityWindow);
  for (std::size_t i = 0; i < window; ++i) {
    Task* t = queue_[i];
    const bool affine =
        std::any_of(t->predecessors.begin(), t->predecessors.end(),
                    [&](TaskId pid) {
                      TDN_REQUIRE(pid < tasks_->size(),
                                  "AffinityScheduler: predecessor id out of "
                                  "range — scheduler wired to the wrong "
                                  "runtime's task table");
                      return (*tasks_)[pid].ran_on == core;
                    });
    if (affine) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return t;
    }
  }
  Task* t = queue_.front();
  queue_.pop_front();
  return t;
}

}  // namespace tdn::runtime
