// Ready-queue schedulers. The dynamic scheduler is the reason OS-based page
// classification breaks down (paper Sec. II-C): tasks touching the same data
// migrate freely between cores. FifoScheduler reproduces that behaviour;
// AffinityScheduler is the ablation that prefers to re-run tasks where their
// predecessors ran.
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "runtime/task.hpp"

namespace tdn::runtime {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;
  virtual void enqueue(Task& task) = 0;
  /// Pick a task for @p core; nullptr if none available.
  virtual Task* dequeue(CoreId core) = 0;
  virtual bool empty() const = 0;
  /// Ready tasks currently queued (obs epoch sampler series).
  virtual std::size_t size() const = 0;
};

/// First-come-first-served central ready queue (Nanos++ default behaviour
/// approximation): any idle core takes the oldest ready task.
class FifoScheduler final : public Scheduler {
 public:
  const char* name() const override { return "fifo"; }
  void enqueue(Task& task) override { queue_.push_back(&task); }
  Task* dequeue(CoreId /*core*/) override {
    if (queue_.empty()) return nullptr;
    Task* t = queue_.front();
    queue_.pop_front();
    return t;
  }
  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }

 private:
  std::deque<Task*> queue_;
};

/// Prefers tasks with a predecessor that ran on the requesting core (cheap
/// locality heuristic); falls back to FIFO. Used by the scheduler ablation.
class AffinityScheduler final : public Scheduler {
 public:
  /// Upper bound on the dequeue affinity scan: at most this many queued
  /// tasks are inspected before falling back to FIFO, keeping dequeue
  /// O(1)-ish and old tasks from starving.
  static constexpr std::size_t kAffinityWindow = 8;

  /// The task table lives in the RuntimeSystem, which is constructed after
  /// the scheduler; wire it before the first dispatch. This is a checked
  /// invariant: dequeue REQUIREs a non-null table, and every predecessor id
  /// it reads must be in range for *this* table — so wiring a scheduler to
  /// the wrong runtime's table (easy to do once several runtimes coexist in
  /// one process, see tdn::multi) fails loudly instead of scheduling on
  /// another app's placement history.
  void set_tasks(const std::vector<Task>* tasks) { tasks_ = tasks; }

  const char* name() const override { return "affinity"; }
  void enqueue(Task& task) override { queue_.push_back(&task); }
  Task* dequeue(CoreId core) override;
  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }

 private:
  const std::vector<Task>* tasks_ = nullptr;
  std::deque<Task*> queue_;
};

}  // namespace tdn::runtime
