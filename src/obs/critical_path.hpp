// Critical-path analysis over the executed task DAG.
//
// Reconstructs the dependency graph the runtime actually executed (from the
// per-task timestamps RuntimeSystem and SimCore stamp) and reports two
// measures:
//
//  * realized path — the backward walk from the last-finishing task through
//    its latest-finishing predecessor. Its cycles telescope to the makespan
//    and decompose into dependency wait, runtime overhead (dispatch +
//    before/after hooks), ideal compute, and memory stall — the "where did
//    the makespan go" answer for one policy.
//  * inherent path — the longest chain of task *durations* through the DAG
//    (what the schedule could not have avoided with infinite cores). Always
//    >= the longest single task and <= the makespan.
//
// Pure post-processing: runs once after the simulation drains and never
// touches simulation state.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "runtime/task.hpp"

namespace tdn::obs {

struct CriticalPathReport {
  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_done = 0;
  Cycle makespan = 0;       ///< max finished_at over completed tasks
  Cycle longest_task = 0;   ///< max single-task duration (started->finished)

  // --- realized path ----------------------------------------------------
  std::vector<TaskId> path;     ///< source -> sink task ids
  Cycle realized_cycles = 0;    ///< == makespan when the graph completed
  Cycle dep_wait = 0;           ///< waiting on predecessors / phase barriers
  Cycle runtime_overhead = 0;   ///< dispatch + before/after task hooks
  Cycle compute = 0;            ///< ideal (stall-free) execution cycles
  Cycle memory_stall = 0;       ///< execution cycles lost to the memory system
  Cycle hook_cycles = 0;        ///< TD-NUCA ISA hook cycles on the path

  // --- inherent path ----------------------------------------------------
  Cycle inherent_cycles = 0;    ///< longest duration chain through the DAG

  /// The `critical_path` object of the tdn-obs-report-v1 document.
  std::string report_json() const;
};

/// Analyze @p tasks (the runtime's task table after a run). Tasks that never
/// completed (fault-degraded runs) are excluded from both measures.
CriticalPathReport analyze_critical_path(
    const std::vector<runtime::Task>& tasks);

}  // namespace tdn::obs
