#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/jsonfmt.hpp"
#include "common/log.hpp"
#include "common/require.hpp"
#include "sim/event_queue.hpp"

namespace tdn::obs {

Recorder::Recorder(RecorderConfig cfg) : cfg_(cfg) {
  TDN_REQUIRE(cfg_.epoch_cycles > 0, "epoch length must be positive");
  if (cfg_.attribution) attr_ = std::make_unique<LatencyAttribution>();
}

Cycle Recorder::now() const noexcept { return eq_ != nullptr ? eq_->now() : 0; }

void Recorder::set_track_name(std::uint32_t tid, std::string name) {
  if (!cfg_.trace) return;
  track_names_[tid] = std::move(name);
}

void Recorder::span(std::uint32_t tid, const char* cat, std::string name,
                    Cycle start, Cycle dur, std::string args) {
  if (!cfg_.trace) return;
  events_.push_back(TraceEvent{start, dur, tid, 'X', std::move(name), cat,
                               std::move(args)});
}

void Recorder::instant(std::uint32_t tid, const char* cat, std::string name,
                       std::string args) {
  if (!cfg_.trace) return;
  events_.push_back(
      TraceEvent{now(), 0, tid, 'i', std::move(name), cat, std::move(args)});
}

void Recorder::add_series(std::string name, SeriesProbe probe) {
  if (!cfg_.epochs) return;
  series_.push_back(Series{std::move(name), std::move(probe)});
}

void Recorder::add_heatmap(std::string name, unsigned w, unsigned h,
                           HeatmapFill fill) {
  if (!cfg_.heatmaps) return;
  heatmaps_.push_back(Heatmap{std::move(name), w, h, std::move(fill)});
}

bool Recorder::tick_live(const sim::EventQueue& eq) const noexcept {
  // The last scheduled tick is still queued iff it has not fired
  // (tick_pending_), its cycle is still in the future, and the queue has
  // not dropped any observer event since it was scheduled (run_until drops
  // past-limit observers; a changed drop count means our tick may be gone,
  // and re-arming is then the safe side — the generation counter makes a
  // survivor inert).
  return tick_pending_ && eq.now() < next_tick_ &&
         eq.observer_dropped() == drops_at_schedule_;
}

void Recorder::schedule_tick(sim::EventQueue& eq) {
  tick_pending_ = true;
  next_tick_ = eq.now() + cfg_.epoch_cycles;
  drops_at_schedule_ = eq.observer_dropped();
  const std::uint64_t gen = ++tick_gen_;
  eq.schedule_observer_at(next_tick_, [this, &eq, gen] { sample(eq, gen); });
}

void Recorder::arm(sim::EventQueue& eq) {
  if (!cfg_.epochs || series_.empty()) return;
  // Re-arming while the previous tick is still queued (a resumed run) must
  // not start a second tick chain — that would double every epoch row.
  if (tick_live(eq)) return;
  schedule_tick(eq);
}

void Recorder::sample(sim::EventQueue& eq, std::uint64_t gen) {
  if (gen != tick_gen_) return;  // superseded by a later arm(): inert
  tick_pending_ = false;
  // A re-armed tick can land on a cycle that already has a row (the drop /
  // re-arm path); emit each sample cycle once.
  if (rows_.empty() || rows_.back().first != eq.now()) {
    std::vector<double> row;
    row.reserve(series_.size());
    for (Series& s : series_) row.push_back(s.probe());
    rows_.emplace_back(eq.now(), std::move(row));
  }
  // Keep ticking only while the simulation itself is still live; the tick
  // that finds the queue drained is the final (tail) sample.
  if (eq.real_pending() > 0 && cfg_.epoch_cycles > 0) schedule_tick(eq);
}

// --------------------------------------------------------------------------
// Trace sink output
// --------------------------------------------------------------------------

std::string Recorder::trace_json() const {
  // Sort by start timestamp (stable: emission order breaks ties) — spans are
  // recorded at completion time, so raw emission order is not monotone.
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].ts < events_[b].ts;
                   });

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    os << (first ? "" : ",\n");
    first = false;
  };
  for (const auto& [tid, name] : track_names_) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")" << json_escape(name)
       << "\"}}";
  }
  for (const std::size_t i : order) {
    const TraceEvent& e = events_[i];
    sep();
    os << "{\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"cat\":\"" << json_escape(e.cat) << "\",\"name\":\""
       << json_escape(e.name) << "\"";
    if (!e.args_json.empty()) os << ",\"args\":{" << e.args_json << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
  return os.str();
}

// --------------------------------------------------------------------------
// Epoch sampler output
// --------------------------------------------------------------------------

std::string Recorder::epochs_csv() const {
  std::ostringstream os;
  os << "cycle";
  for (const Series& s : series_) os << ',' << s.name;
  os << '\n';
  for (const auto& [cycle, row] : rows_) {
    os << cycle;
    for (const double v : row) os << ',' << json_number(v);
    os << '\n';
  }
  return os.str();
}

std::string Recorder::epochs_json() const {
  std::ostringstream os;
  os << "{\"epoch_cycles\":" << cfg_.epoch_cycles << ",\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape(series_[i].name) << '"';
  os << "],\"rows\":[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ",\n" : "") << "[" << rows_[r].first;
    for (const double v : rows_[r].second) os << ',' << json_number(v);
    os << "]";
  }
  os << "\n]}\n";
  return os.str();
}

// --------------------------------------------------------------------------
// Heatmap output
// --------------------------------------------------------------------------

std::string Recorder::heatmaps_text() {
  std::ostringstream os;
  for (Heatmap& hm : heatmaps_) {
    const std::vector<double> v = hm.fill();
    TDN_REQUIRE(v.size() == static_cast<std::size_t>(hm.w) * hm.h,
                "heatmap provider returned wrong cell count: " + hm.name);
    os << "# " << hm.name << " (" << hm.w << "x" << hm.h << ")\n";
    for (unsigned y = 0; y < hm.h; ++y) {
      for (unsigned x = 0; x < hm.w; ++x) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%14.6g", v[y * hm.w + x]);
        os << buf;
      }
      os << '\n';
    }
    os << '\n';
  }
  return os.str();
}

std::string Recorder::heatmaps_json() {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < heatmaps_.size(); ++i) {
    Heatmap& hm = heatmaps_[i];
    const std::vector<double> v = hm.fill();
    TDN_REQUIRE(v.size() == static_cast<std::size_t>(hm.w) * hm.h,
                "heatmap provider returned wrong cell count: " + hm.name);
    os << (i ? ",\n" : "\n") << "  \"" << json_escape(hm.name)
       << "\": {\"w\":" << hm.w << ",\"h\":" << hm.h << ",\"rows\":[";
    for (unsigned y = 0; y < hm.h; ++y) {
      os << (y ? "," : "") << "[";
      for (unsigned x = 0; x < hm.w; ++x)
        os << (x ? "," : "") << json_number(v[y * hm.w + x]);
      os << "]";
    }
    os << "]}";
  }
  os << (heatmaps_.empty() ? "}" : "\n}");
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    TDN_LOG_AT(log::Sub::Obs, log::Level::Error,
               "cannot open " << path << " for writing");
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (n != content.size()) {
    TDN_LOG_AT(log::Sub::Obs, log::Level::Error, "short write to " << path);
    return false;
  }
  return true;
}

}  // namespace tdn::obs
