#include "obs/critical_path.hpp"

#include <algorithm>
#include <sstream>

namespace tdn::obs {

namespace {

using runtime::Task;
using runtime::TaskState;

Cycle duration(const Task& t) { return t.finished_at - t.started_at; }

/// Latest-finishing completed predecessor of @p t (ties broken toward the
/// lowest id for determinism); nullptr when t has none.
const Task* latest_pred(const std::vector<Task>& tasks, const Task& t) {
  const Task* best = nullptr;
  for (const TaskId p : t.predecessors) {
    if (p >= tasks.size()) continue;
    const Task& pt = tasks[p];
    if (pt.state != TaskState::Done) continue;
    if (best == nullptr || pt.finished_at > best->finished_at ||
        (pt.finished_at == best->finished_at && pt.id < best->id))
      best = &pt;
  }
  return best;
}

}  // namespace

CriticalPathReport analyze_critical_path(const std::vector<Task>& tasks) {
  CriticalPathReport r;
  r.tasks_total = tasks.size();

  const Task* sink = nullptr;
  for (const Task& t : tasks) {
    if (t.state != TaskState::Done) continue;
    ++r.tasks_done;
    r.makespan = std::max(r.makespan, t.finished_at);
    r.longest_task = std::max(r.longest_task, duration(t));
    if (sink == nullptr || t.finished_at > sink->finished_at) sink = &t;
  }
  if (sink == nullptr) return r;  // nothing ran to completion

  // Realized path: backward walk from the sink through the latest-finishing
  // predecessor. Segment cycles telescope: each task contributes the gap
  // from its critical predecessor's finish to its own finish, so the
  // decomposition sums to the sink's finish time exactly.
  for (const Task* t = sink; t != nullptr;) {
    r.path.push_back(t->id);
    const Task* pred = latest_pred(tasks, *t);
    const Cycle from = pred != nullptr ? pred->finished_at : 0;
    // started_at >= pred.finished_at by the dependency rule; the clamp only
    // guards the synthetic from=0 start of the chain.
    r.dep_wait += t->started_at > from ? t->started_at - from : 0;
    // Clamp the exec stamps into [started_at, finished_at]: a task that was
    // never stamped (all-zero exec window) degrades to pure overhead rather
    // than underflowing.
    const Cycle es = std::max(t->exec_started_at, t->started_at);
    const Cycle ef = std::min(std::max(t->exec_finished_at, es),
                              t->finished_at);
    r.runtime_overhead += (es - t->started_at) + (t->finished_at - ef);
    const Cycle span = ef - es;
    const Cycle ideal = std::min(t->compute_cycles, span);
    r.compute += ideal;
    r.memory_stall += span - ideal;
    r.hook_cycles += t->hook_cycles;
    t = pred;
  }
  std::reverse(r.path.begin(), r.path.end());
  r.realized_cycles = r.dep_wait + r.runtime_overhead + r.compute +
                      r.memory_stall;

  // Inherent path: DP over the DAG for the longest chain of task durations.
  // Task ids are topological (a dependency always points at an earlier
  // creation), so one forward sweep suffices.
  std::vector<Cycle> longest(tasks.size(), 0);
  for (const Task& t : tasks) {
    if (t.state != TaskState::Done) continue;
    Cycle best = 0;
    for (const TaskId p : t.predecessors) {
      if (p < t.id) best = std::max(best, longest[p]);
    }
    longest[t.id] = best + duration(t);
    r.inherent_cycles = std::max(r.inherent_cycles, longest[t.id]);
  }
  return r;
}

std::string CriticalPathReport::report_json() const {
  std::ostringstream os;
  os << "{\"tasks_total\":" << tasks_total << ",\"tasks_done\":" << tasks_done
     << ",\"makespan\":" << makespan << ",\"longest_task\":" << longest_task
     << ",\"realized\":{\"cycles\":" << realized_cycles
     << ",\"tasks\":" << path.size() << ",\"dep_wait\":" << dep_wait
     << ",\"runtime_overhead\":" << runtime_overhead
     << ",\"compute\":" << compute << ",\"memory_stall\":" << memory_stall
     << ",\"tdnuca_hook_cycles\":" << hook_cycles << ",\"path\":[";
  for (std::size_t i = 0; i < path.size(); ++i)
    os << (i ? "," : "") << path[i];
  os << "]},\"inherent_cycles\":" << inherent_cycles << "}";
  return os.str();
}

}  // namespace tdn::obs
