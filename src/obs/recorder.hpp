// tdn::obs — time-resolved observability for the whole simulation stack.
//
// One Recorder instance coordinates three sinks, all disabled by default and
// all zero-cost on the simulator's hot paths when disabled (call sites guard
// on a null pointer / an inline flag check and build no strings):
//
//  1. Trace sink  — Chrome trace_event JSON (loadable in Perfetto or
//     chrome://tracing). Tracks: one per simulated core (task spans, TD-NUCA
//     ISA instruction spans), plus auxiliary tracks for the runtime (phase
//     openings), the flush engines, and coherence/bypass transactions.
//     Timestamps are simulated cycles written as trace microseconds.
//  2. Epoch sampler — snapshots a set of registered time-series probes every
//     `epoch_cycles` simulated cycles (per-bank LLC hit ratio and occupancy,
//     per-link NoC utilization, per-core RRT occupancy, ready-queue depth,
//     DRAM queue depth, ...) into CSV or JSON. Sampling rides *observer*
//     events on the main event queue (sim::EventQueue::schedule_observer_at)
//     so the simulation's own event accounting is untouched.
//  3. Heatmap dump — named W x H matrices (bank access counts, per-direction
//     link traffic) filled by provider closures at output time, formatted as
//     aligned text or JSON for the harness.
//
// Determinism contract: the Recorder observes and never mutates simulation
// state, so every stats::Registry metric is bit-identical whether recording
// is enabled or not (enforced by tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/attribution.hpp"
#include "sim/inline_function.hpp"

namespace tdn::sim {
class EventQueue;
}

namespace tdn::obs {

struct RecorderConfig {
  bool trace = false;     ///< Chrome trace_event sink
  bool epochs = false;    ///< epoch time-series sampler
  bool heatmaps = false;  ///< end-of-run heatmap matrices
  /// Also record one instant event per coherence transaction (LLC request /
  /// invalidation / bypass). High volume: off by default even when tracing.
  bool trace_coherence = false;
  /// Per-access latency attribution + histograms (obs::LatencyAttribution).
  bool attribution = false;
  Cycle epoch_cycles = 10'000;

  bool any() const noexcept {
    return trace || epochs || heatmaps || attribution;
  }
};

/// One Chrome trace_event record. Only the two phases the simulator emits:
/// 'X' (complete span with duration) and 'i' (instant).
struct TraceEvent {
  Cycle ts = 0;
  Cycle dur = 0;
  std::uint32_t tid = 0;
  char ph = 'X';
  std::string name;
  std::string cat;
  std::string args_json;  ///< pre-rendered `"k":v` pairs, no braces; may be empty
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig cfg = {});

  const RecorderConfig& config() const noexcept { return cfg_; }
  bool trace_on() const noexcept { return cfg_.trace; }
  bool coherence_on() const noexcept { return cfg_.trace && cfg_.trace_coherence; }
  bool epochs_on() const noexcept { return cfg_.epochs; }
  bool heatmaps_on() const noexcept { return cfg_.heatmaps; }
  bool attribution_on() const noexcept { return attr_ != nullptr; }
  /// Null unless the attribution sink is enabled; the coherence layer
  /// null-tests this once at construction and stamps through the pointer.
  LatencyAttribution* attribution() noexcept { return attr_.get(); }
  const LatencyAttribution* attribution() const noexcept { return attr_.get(); }

  // --- auxiliary trace tracks (cores use their CoreId as tid) -----------
  static constexpr std::uint32_t kRuntimeTrack = 1000;
  static constexpr std::uint32_t kFlushTrack = 1001;
  static constexpr std::uint32_t kCoherenceTrack = 1002;
  static constexpr std::uint32_t kFaultTrack = 1003;
  /// Serving (tdn::serve): one track per worker slot — slot s emits its
  /// request-lifecycle spans on tid kServeTrackBase + s.
  static constexpr std::uint32_t kServeTrackBase = 1100;

  // --- wiring (done by system::TiledSystem at construction) -------------
  /// Probe callables live inline (no heap), same substrate rule as
  /// sim::Action; 48 bytes covers every registered probe (a `this` pointer
  /// plus a few indices / running counters).
  static constexpr std::size_t kProbeCapacity = 48;
  using SeriesProbe = sim::InlineFunction<double(), kProbeCapacity>;
  using HeatmapFill =
      sim::InlineFunction<std::vector<double>(), kProbeCapacity>;

  /// The clock `span_now`/`instant` stamp events with.
  void attach_clock(const sim::EventQueue* eq) noexcept { eq_ = eq; }
  void set_track_name(std::uint32_t tid, std::string name);
  /// Register an epoch time-series probe; called once per epoch in
  /// registration order. Probes must not mutate simulation state.
  void add_series(std::string name, SeriesProbe probe);
  /// Register a heatmap provider; @p fill returns w*h row-major values and
  /// runs at output time.
  void add_heatmap(std::string name, unsigned w, unsigned h, HeatmapFill fill);
  /// Start epoch sampling on @p eq (no-op unless the epoch sink is enabled).
  /// Sampling ticks at epoch_cycles intervals for as long as the simulation
  /// has real (non-observer) events pending, plus one final tail sample.
  /// Idempotent while a tick is live: re-arming after run_until() dropped
  /// the pending tick schedules a fresh one, but re-arming with the tick
  /// still queued (resumed runs) does not start a duplicate tick chain.
  void arm(sim::EventQueue& eq);

  // --- trace sink (instrumentation call sites) --------------------------
  Cycle now() const noexcept;
  void span(std::uint32_t tid, const char* cat, std::string name, Cycle start,
            Cycle dur, std::string args = {});
  /// Span starting at the attached clock's current cycle.
  void span_now(std::uint32_t tid, const char* cat, std::string name,
                Cycle dur, std::string args = {}) {
    span(tid, cat, std::move(name), now(), dur, std::move(args));
  }
  void instant(std::uint32_t tid, const char* cat, std::string name,
               std::string args = {});

  // --- outputs ----------------------------------------------------------
  std::size_t trace_events() const noexcept { return events_.size(); }
  /// Full trace_event JSON document, events sorted by start timestamp.
  std::string trace_json() const;

  std::size_t epoch_rows() const noexcept { return rows_.size(); }
  std::size_t epoch_series() const noexcept { return series_.size(); }
  std::string epochs_csv() const;
  std::string epochs_json() const;

  std::size_t heatmap_count() const noexcept { return heatmaps_.size(); }
  // Non-const: heatmap providers are inline callables that may carry
  // mutable capture state, and they run at output time.
  std::string heatmaps_text();
  std::string heatmaps_json();

 private:
  struct Series {
    std::string name;
    SeriesProbe probe;
  };
  struct Heatmap {
    std::string name;
    unsigned w = 0;
    unsigned h = 0;
    HeatmapFill fill;
  };

  void sample(sim::EventQueue& eq, std::uint64_t gen);
  void schedule_tick(sim::EventQueue& eq);
  /// Whether the tick scheduled by the last schedule_tick() is still queued
  /// on @p eq (not yet fired, not dropped by a cycle-limited run).
  bool tick_live(const sim::EventQueue& eq) const noexcept;

  RecorderConfig cfg_;
  const sim::EventQueue* eq_ = nullptr;

  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> track_names_;

  std::vector<Series> series_;
  std::vector<std::pair<Cycle, std::vector<double>>> rows_;

  std::vector<Heatmap> heatmaps_;
  std::unique_ptr<LatencyAttribution> attr_;

  // Sampler-tick liveness (see arm()): a tick is live while one is queued
  // for next_tick_ and the queue has not dropped an observer since it was
  // scheduled. The generation counter makes superseded ticks inert — a
  // queued tick from before a re-arm fires as a no-op instead of starting a
  // second tick chain.
  bool tick_pending_ = false;
  Cycle next_tick_ = 0;
  std::uint64_t drops_at_schedule_ = 0;
  std::uint64_t tick_gen_ = 0;
};

/// Write @p content to @p path; returns false (and logs) on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace tdn::obs
