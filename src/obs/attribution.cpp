#include "obs/attribution.hpp"

#include <sstream>

namespace tdn::obs {

void LatencyAttribution::on_launch(CoreId core, Addr line, Cycle issued_at,
                                   Cycle sent_at, unsigned hops) {
  Inflight& r = inflight_[key(core, line)];
  r = Inflight{};
  r.t_issue = issued_at;
  r.t_sent = sent_at;
  r.hops = hops;
}

void LatencyAttribution::on_bank_arrival(CoreId core, Addr line, Cycle now) {
  auto it = inflight_.find(key(core, line));
  if (it != inflight_.end()) it->second.t_bank = now;
}

void LatencyAttribution::on_service_start(CoreId core, Addr line, Cycle start,
                                          Cycle probe_at) {
  auto it = inflight_.find(key(core, line));
  if (it == inflight_.end()) return;
  it->second.t_svc = start;
  it->second.t_probe = probe_at;
}

void LatencyAttribution::on_memory_data(CoreId core, Addr line, Cycle now) {
  auto it = inflight_.find(key(core, line));
  if (it != inflight_.end()) it->second.t_mem = now;
}

void LatencyAttribution::on_complete(CoreId core, Addr line, Cycle issued_at,
                                     Cycle now) {
  auto it = inflight_.find(key(core, line));
  if (it == inflight_.end()) {
    // MSHR-merged miss: it never launched a transaction of its own, so the
    // whole latency is time spent coalesced behind the primary.
    merged_.add(now - issued_at);
    return;
  }
  const Inflight r = it->second;
  inflight_.erase(it);

  // Telescoping clamped differences: prev only moves forward, every
  // component is >= 0, and the six components sum to exactly (now - issue).
  // Stamps a transaction flavour never touched stay 0 and contribute 0.
  Cycle prev = issued_at;
  std::array<Cycle, kComponents> comp{};
  auto seg = [&prev](Cycle t) -> Cycle {
    if (t <= prev) return 0;
    const Cycle d = t - prev;
    prev = t;
    return d;
  };
  comp[0] = seg(r.t_sent);   // MshrWait
  comp[1] = seg(r.t_bank);   // NocRequest
  comp[2] = seg(r.t_svc);    // BankQueue
  comp[3] = seg(r.t_probe);  // BankService
  comp[4] = seg(r.t_mem);    // Dram
  comp[5] = now > prev ? now - prev : 0;  // NocReply (remainder)

  for (unsigned i = 0; i < kComponents; ++i) components_[i].add(comp[i]);
  const Cycle total = now - issued_at;
  total_.add(total);
  by_distance_[r.hops > kMaxDistance ? kMaxDistance : r.hops].add(total);
}

std::string LatencyAttribution::report_json() const {
  std::ostringstream os;
  os << "\"access_latency\":{\"total\":" << total_.summary_json()
     << ",\"merged\":" << merged_.summary_json() << ",\"components\":{";
  for (unsigned i = 0; i < kComponents; ++i) {
    os << (i ? "," : "")
       << '"' << to_string(static_cast<LatencyComponent>(i)) << "\":"
       << components_[i].summary_json();
  }
  os << "},\"component_sum\":";
  Cycle comp_sum = 0;
  for (const LatencyHistogram& h : components_) comp_sum += h.sum();
  os << comp_sum << ",\"sum_check\":"
     << (comp_sum == total_.sum() ? "true" : "false")
     << ",\"unattributed_inflight\":" << inflight_.size()
     << ",\"by_distance\":[";
  bool first = true;
  for (unsigned d = 0; d <= kMaxDistance; ++d) {
    if (by_distance_[d].count() == 0) continue;
    os << (first ? "" : ",") << "{\"hops\":" << d
       << ",\"latency\":" << by_distance_[d].summary_json() << "}";
    first = false;
  }
  os << "]},\"noc\":{\"control_transit\":" << noc_transit_[0].summary_json()
     << ",\"data_transit\":" << noc_transit_[1].summary_json()
     << "},\"dram\":{\"queue_delay\":" << dram_queue_.summary_json()
     // Translation is charged before the access issues, so it is reported
     // beside the attribution rather than as a seventh component — the
     // six-way breakdown still sums to the measured miss latency exactly.
     << "},\"translation\":{\"latency\":" << translation_.summary_json()
     << ",\"walk\":" << walk_.summary_json() << "}";
  return os.str();
}

}  // namespace tdn::obs
