// LatencyHistogram — deterministic log-bucketed (HDR-style) latency
// histogram with fixed inline storage.
//
// Bucket layout: values below 16 get exact unit buckets; above that, each
// power-of-two octave is split into 16 linear sub-buckets, so the relative
// quantization error is bounded by 1/16 (6.25%) at any magnitude. Storage is
// a fixed std::array (~3.6 KiB) — recording a sample is a handful of integer
// ops and one increment, never a heap allocation, per the PR 5 substrate
// rules for hot-path instrumentation.
//
// Percentiles are reported as the lower bound of the covering bucket, which
// makes them exactly reproducible across runs and platforms (no
// interpolation, no floating-point accumulation on the hot path).
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace tdn::obs {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSub = 1u << kSubBits;
  /// Values are clamped here (~10^9 cycles — far beyond any single access).
  static constexpr Cycle kMaxValue = Cycle{1} << 30;
  /// Unit buckets [0,16) + 27 octaves ([16,32) .. [2^30, 2^31)) * 16.
  static constexpr std::size_t kBuckets = kSub + (30 - kSubBits + 1) * kSub;

  /// Bucket index of @p v (after clamping to kMaxValue).
  static constexpr std::size_t index(Cycle v) noexcept {
    if (v > kMaxValue) v = kMaxValue;
    if (v < kSub) return static_cast<std::size_t>(v);
    unsigned msb = 0;
    for (Cycle t = v; t > 1; t >>= 1) ++msb;
    const unsigned shift = msb - kSubBits;
    const std::size_t sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    return (msb - kSubBits + 1) * kSub + sub;
  }

  /// Smallest value that maps to bucket @p idx (inverse of index()).
  static constexpr Cycle bucket_floor(std::size_t idx) noexcept {
    if (idx < kSub) return static_cast<Cycle>(idx);
    const std::size_t group = idx / kSub;  // >= 1
    const std::size_t sub = idx % kSub;
    const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
    return (Cycle{kSub} + sub) << (msb - kSubBits);
  }

  void add(Cycle v) noexcept {
    ++counts_[index(v)];
    ++count_;
    sum_ += v > kMaxValue ? kMaxValue : v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LatencyHistogram& o) noexcept {
    if (o.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  Cycle sum() const noexcept { return sum_; }
  Cycle min() const noexcept { return count_ ? min_ : 0; }
  Cycle max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Lower bound of the bucket holding the q-quantile sample (0 < q <= 1);
  /// 0 on an empty histogram. Exact values survive for v < 16 (unit
  /// buckets); larger values are under-reported by at most 6.25%.
  Cycle percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the quantile sample, 1-based, ceil(q * count) clamped to
    // [1, count]. Integer arithmetic keeps the walk deterministic.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.999999);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return bucket_floor(i);
    }
    return bucket_floor(kBuckets - 1);
  }

  /// `{"count":..,"sum":..,"mean":..,"min":..,"p50":..,"p90":..,"p99":..,
  ///   "p999":..,"max":..}` — the summary every report section uses.
  std::string summary_json() const {
    std::ostringstream os;
    os << "{\"count\":" << count_ << ",\"sum\":" << sum_;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", mean());
    os << ",\"mean\":" << buf << ",\"min\":" << min()
       << ",\"p50\":" << percentile(0.50) << ",\"p90\":" << percentile(0.90)
       << ",\"p99\":" << percentile(0.99) << ",\"p999\":" << percentile(0.999)
       << ",\"max\":" << max_ << "}";
    return os.str();
  }

  // --- checkpoint/restore (tdn::ckpt) -----------------------------------
  /// Raw count of bucket @p idx — snapshot encoding walks the (sparse)
  /// nonzero buckets.
  std::uint64_t bucket_count(std::size_t idx) const {
    return counts_.at(idx);
  }
  /// Overwrite the full histogram state from a decoded snapshot. The
  /// restored object is bit-identical to the one snapshotted: every
  /// percentile walk, mean and summary reproduces exactly.
  void restore(const std::array<std::uint64_t, kBuckets>& counts,
               std::uint64_t count, Cycle sum, Cycle min, Cycle max) noexcept {
    counts_ = counts;
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  Cycle sum_ = 0;
  Cycle min_ = 0;
  Cycle max_ = 0;
};

// Bucket-boundary sanity: the linear range hands over to the first octave
// without a gap, and every octave starts where the previous one ended.
static_assert(LatencyHistogram::index(15) == 15);
static_assert(LatencyHistogram::index(16) == 16);
static_assert(LatencyHistogram::bucket_floor(16) == 16);
static_assert(LatencyHistogram::index(31) == 31);
static_assert(LatencyHistogram::index(32) == 32);
static_assert(LatencyHistogram::bucket_floor(32) == 32);
static_assert(LatencyHistogram::bucket_floor(LatencyHistogram::index(1000)) <=
              1000);
static_assert(LatencyHistogram::index(LatencyHistogram::kMaxValue) <
              LatencyHistogram::kBuckets);

}  // namespace tdn::obs
