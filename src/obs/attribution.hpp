// LatencyAttribution — per-access cycle attribution for the LLC demand path.
//
// The coherence layer stamps one in-flight record per (core, line) primary
// miss as the transaction moves through the machine:
//
//   t_issue  L1 miss issued (MSHR registration attempt)
//   t_sent   request leaves the core (after L1 probe + policy lookup)
//   t_bank   request delivered at the home bank (or the MC, for bypasses)
//   t_svc    bank service-window slot begins
//   t_probe  bank tag probe completes (hit/miss known)
//   t_mem    fill data arrives back at the bank from the memory controller
//   done     the fill lands in the L1 and the access replays
//
// finalize() turns the stamps into a six-way breakdown by telescoping
// clamped differences — each component is max(0, t_k - prev) with prev
// advancing monotonically — so the components sum to the measured
// end-to-end miss latency *by construction*, whatever subset of stamps a
// particular transaction flavour (hit, miss, upgrade, bypass) touched.
// Merged (MSHR-coalesced) misses have no record of their own: their whole
// latency is inherited waiting, reported in a separate histogram.
//
// Everything here observes; nothing feeds back into simulation timing, and
// the per-access cost when attribution is off is a single null-pointer test
// at each stamp site.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "obs/latency_histogram.hpp"

namespace tdn::obs {

/// Components of one LLC access's latency, in pipeline order.
enum class LatencyComponent : std::uint8_t {
  MshrWait,    ///< issue -> request leaves the core (incl. MSHR-full backoff)
  NocRequest,  ///< request hops core -> home bank
  BankQueue,   ///< home-bank arrival -> service-window slot (incl. blocking)
  BankService, ///< tag/data array access
  Dram,        ///< bank -> MC -> DRAM -> bank (zero for LLC hits/upgrades)
  NocReply,    ///< data return + fill (incl. invalidation round-trips)
  kCount,
};

constexpr const char* to_string(LatencyComponent c) noexcept {
  switch (c) {
    case LatencyComponent::MshrWait: return "mshr_wait";
    case LatencyComponent::NocRequest: return "noc_request";
    case LatencyComponent::BankQueue: return "bank_queue";
    case LatencyComponent::BankService: return "bank_service";
    case LatencyComponent::Dram: return "dram";
    case LatencyComponent::NocReply: return "noc_reply";
    default: return "?";
  }
}

class LatencyAttribution {
 public:
  static constexpr unsigned kComponents =
      static_cast<unsigned>(LatencyComponent::kCount);
  /// Per-distance histograms for 0..kMaxDistance hops (larger clamps).
  static constexpr unsigned kMaxDistance = 12;

  // --- hot-path stamping (coherence layer; all O(1), no allocation beyond
  // --- the inflight hash map) ------------------------------------------
  void on_launch(CoreId core, Addr line, Cycle issued_at, Cycle sent_at,
                 unsigned hops);
  void on_bank_arrival(CoreId core, Addr line, Cycle now);
  void on_service_start(CoreId core, Addr line, Cycle start, Cycle probe_at);
  void on_memory_data(CoreId core, Addr line, Cycle now);
  /// Finalize the access completing at @p now. A missing record marks a
  /// merged (MSHR-coalesced) miss: its whole latency is inherited waiting.
  void on_complete(CoreId core, Addr line, Cycle issued_at, Cycle now);

  // --- sinks the NoC / DRAM models feed directly (wired by the system) --
  LatencyHistogram& noc_transit(unsigned cls) noexcept {
    return noc_transit_[cls & 1];
  }
  LatencyHistogram& dram_queue() noexcept { return dram_queue_; }
  /// Demand-path translation latency per access (TLB probe, plus the walk
  /// on a vm-mode miss); fed by each core's Mmu.
  LatencyHistogram& translation() noexcept { return translation_; }
  /// Completed page-walk latencies (vm mode only; empty otherwise).
  LatencyHistogram& walk() noexcept { return walk_; }

  // --- results ----------------------------------------------------------
  const LatencyHistogram& total() const noexcept { return total_; }
  const LatencyHistogram& merged() const noexcept { return merged_; }
  const LatencyHistogram& component(LatencyComponent c) const noexcept {
    return components_[static_cast<unsigned>(c)];
  }
  const LatencyHistogram& by_distance(unsigned hops) const noexcept {
    return by_distance_[hops > kMaxDistance ? kMaxDistance : hops];
  }
  const LatencyHistogram& noc_transit_const(unsigned cls) const noexcept {
    return noc_transit_[cls & 1];
  }
  const LatencyHistogram& dram_queue_const() const noexcept {
    return dram_queue_;
  }
  const LatencyHistogram& translation_const() const noexcept {
    return translation_;
  }
  const LatencyHistogram& walk_const() const noexcept { return walk_; }
  /// Transactions stamped but never completed (lost to fault evacuation;
  /// zero on a fault-free run).
  std::size_t inflight() const noexcept { return inflight_.size(); }

  /// The `access_latency` / `noc` / `dram` sections of the
  /// tdn-obs-report-v1 document (see docs/observability.md).
  std::string report_json() const;

 private:
  struct Inflight {
    Cycle t_issue = 0;
    Cycle t_sent = 0;
    Cycle t_bank = 0;
    Cycle t_svc = 0;
    Cycle t_probe = 0;
    Cycle t_mem = 0;
    unsigned hops = 0;
  };
  static std::uint64_t key(CoreId core, Addr line) noexcept {
    return (static_cast<std::uint64_t>(core) << 56) ^ line;
  }

  std::unordered_map<std::uint64_t, Inflight> inflight_;
  LatencyHistogram total_;
  LatencyHistogram merged_;
  std::array<LatencyHistogram, kComponents> components_;
  std::array<LatencyHistogram, kMaxDistance + 1> by_distance_;
  std::array<LatencyHistogram, 2> noc_transit_;  ///< [0]=Control, [1]=Data
  LatencyHistogram dram_queue_;
  LatencyHistogram translation_;
  LatencyHistogram walk_;
};

}  // namespace tdn::obs
