#include "tdnuca/runtime_hooks.hpp"

#include <sstream>

#include "common/require.hpp"
#include "core/sim_core.hpp"
#include "obs/recorder.hpp"
#include "sim/joiner.hpp"

namespace tdn::tdnuca {

TdNucaRuntimeHooks::TdNucaRuntimeHooks(nuca::TdNucaPolicy& policy,
                                       mem::PageTable& pt, unsigned num_tiles,
                                       HooksConfig cfg, obs::Recorder* rec)
    : policy_(policy), pt_(pt), num_tiles_(num_tiles), cfg_(cfg), rec_(rec) {}

void TdNucaRuntimeHooks::on_task_created(const runtime::Task& task) {
  TDN_REQUIRE(rts_ != nullptr, "set_runtime() must be called first");
  // UseDesc: one increment per use of the dependency by a created task.
  for (const runtime::DepAccess& a : task.deps) {
    DirEntry& e = dir_.entry(a.dep, rts_->dep(a.dep).vrange);
    ++e.use_desc;
    // The runtime knows dependency regions are accessed as units — the
    // madvise-like huge-page hint per region at creation time is the vm
    // integration point the paper's runtime-driven story implies
    // (docs/memory.md). No-op unless vm runs with ThpPolicy::Madvise.
    pt_.advise_huge(rts_->dep(a.dep).vrange);
  }
}

TdNucaRuntimeHooks::Translated TdNucaRuntimeHooks::translate_dep(
    const AddrRange& vrange, core::SimCore& core) {
  Translated out;
  // Alignment rule (paper Sec. III-D): only blocks entirely inside the
  // dependency are managed; partial first/last blocks fall back to S-NUCA.
  const AddrRange eff{align_up(vrange.begin, cfg_.line_size),
                      align_down(vrange.end, cfg_.line_size)};
  if (eff.empty()) return out;
  auto tr = pt_.translate_range(eff);
  out.pieces = std::move(tr.physical_pieces);
  out.pages = tr.pages_walked;
  // The iterative translation performs one TLB access per page of the range
  // (paper Fig. 5); misses pay the page-walk cost through the MMU — flat
  // penalty in legacy mode, a charged walk (with real PTE loads fired into
  // the hierarchy) under tdn::vm. Stepping by the mapped page span is what
  // collapses the iteration count under huge pages.
  const Addr ps = pt_.page_size();
  for (Addr va = align_down(eff.begin, ps); va < eff.end;) {
    out.tlb_cycles += core.mmu().charge_translation(va);
    va = pt_.page_base(va) + pt_.page_span(va);
  }
  translate_pages_ += out.pages;
  translate_cycles_ += out.tlb_cycles;
  return out;
}

void TdNucaRuntimeHooks::flush_finished(DepId dep) {
  auto it = sync_.find(dep);
  TDN_ASSERT(it != sync_.end() && it->second.pending > 0);
  if (--it->second.pending == 0) {
    auto waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
    for (auto& w : waiters) w();
  }
}

bool TdNucaRuntimeHooks::quiescent() const {
  if (!active_.empty()) return false;
  for (const auto& [dep, s] : sync_) {
    (void)dep;
    if (s.pending > 0 || !s.waiters.empty()) return false;
  }
  return true;
}

std::uint64_t TdNucaRuntimeHooks::pending_flushes() const {
  std::uint64_t n = 0;
  for (const auto& [dep, s] : sync_) {
    (void)dep;
    n += s.pending;
  }
  return n;
}

void TdNucaRuntimeHooks::when_clean(
    const std::vector<runtime::DepAccess>& deps, std::function<void()> fn) {
  for (const auto& a : deps) {
    auto it = sync_.find(a.dep);
    if (it != sync_.end() && it->second.pending > 0) {
      // Poll again once this dependency's flushes drain; re-check the rest.
      it->second.waiters.push_back(
          [this, &deps, fn = std::move(fn)]() mutable {
            when_clean(deps, std::move(fn));
          });
      return;
    }
  }
  fn();
}

void TdNucaRuntimeHooks::before_task(runtime::Task& task, core::SimCore& core,
                                     std::function<void()> done) {
  TDN_REQUIRE(rts_ != nullptr, "set_runtime() must be called first");
  // The runtime polls the flush-completion register for any in-flight flush
  // of this task's dependencies before re-registering them.
  when_clean(task.deps,
             [this, &task, &core, done = std::move(done)]() mutable {
               before_task_clean(task, core, std::move(done));
             });
}

void TdNucaRuntimeHooks::before_task_clean(runtime::Task& task,
                                           core::SimCore& core,
                                           std::function<void()> done) {
  const CoreId cid = core.id();
  const bool bypass_only = policy_.config().bypass_only;
  nuca::CacheOps* ops = policy_.ops();
  TDN_REQUIRE(cfg_.dry_run || ops != nullptr,
              "policy must be wired to a cache system");

  Cycle cycles = 0;
  // ISA spans are laid back-to-back from now() over exactly the cycles the
  // core will be charged below (core.busy runs them sequentially), so using
  // the running accumulator as the span offset reproduces the timeline
  // without touching the cost arithmetic.
  const bool tr_on = rec_ != nullptr && rec_->trace_on();
  const Cycle span_base = tr_on ? rec_->now() : 0;
  auto charge = [&](const char* name, Cycle cost, std::string args = {}) {
    if (tr_on && cost > 0)
      rec_->span(cid, "isa", name, span_base + cycles, cost, std::move(args));
    cycles += cost;
  };
  auto dep_args = [&](DepId dep, const Translated& tr,
                      const char* placement = nullptr) {
    if (!tr_on) return std::string();
    std::ostringstream os;
    os << "\"dep\":" << dep << ",\"tlb_cycles\":" << tr.tlb_cycles
       << ",\"pieces\":" << tr.pieces.size();
    if (placement != nullptr) os << ",\"placement\":\"" << placement << "\"";
    return os.str();
  };
  charge("decision", cfg_.decision_overhead * task.deps.size(),
         tr_on ? "\"deps\":" + std::to_string(task.deps.size())
               : std::string());
  auto join = sim::make_joiner(std::move(done));
  std::vector<PlacedDep> placed;
  placed.reserve(task.deps.size());

  for (const runtime::DepAccess& a : task.deps) {
    const runtime::Dependency& d = rts_->dep(a.dep);
    DirEntry& e = dir_.entry(a.dep, d.vrange);
    TDN_ASSERT(e.use_desc > 0);
    --e.use_desc;  // this task starts executing now
    if (a.reads()) e.ever_in = true;
    if (a.writes()) e.ever_out = true;

    // --- Fig. 7 placement decision ------------------------------------
    // UseDesc == 0 predicts the data is not reused by any visible task.
    // Bypass applies only when the dependency was never visibly reused:
    // reused data is LLC-resident (locally mapped or replicated), and
    // sending its final use to memory would refetch resident lines from
    // DRAM (see DirEntry::seen_visible_reuse).
    const bool predicted_dead = (e.use_desc == 0);
    if (predicted_dead) e.ever_predicted_dead = true;
    else e.seen_visible_reuse = true;
    Placement p;
    if (predicted_dead && !e.seen_visible_reuse) p = Placement::Bypass;
    else if (a.writes()) p = Placement::LocalBank;
    else p = Placement::Replicated;
    if (bypass_only && p != Placement::Bypass) p = Placement::Unmapped;

    // --- degraded-mode placement guard ---------------------------------
    // Never pin a dependency to a failed bank: local-bank placement on a
    // dead local bank and replication into a fully-dead cluster both fall
    // back to S-NUCA interleaving over the healthy set.
    if (health_ != nullptr && health_->any_bank_failed()) {
      if (p == Placement::LocalBank &&
          !health_->bank_ok(policy_.local_bank(cid))) {
        p = Placement::Unmapped;
      } else if (p == Placement::Replicated) {
        if ((policy_.replication_mask(cid) & health_->healthy_banks())
                .empty())
          p = Placement::Unmapped;
      }
    }

    // --- lazy read-only invalidation (Sec. III-C2) ---------------------
    // A replicated dependency that is about to be written must first be
    // invalidated from every cache and every RRT. Overlapping dependencies
    // (finer-grained halo regions carved out of a larger block) transition
    // together: writing the block also kills its halo's replicas.
    auto invalidate_replicas = [&](DirEntry& re) {
      n_transitions_.inc();
      Translated tr = translate_dep(re.vrange, core);
      charge("tdnuca_invalidate",
             isa_invalidate_cost(cfg_.isa, tr.tlb_cycles,
                                 static_cast<unsigned>(tr.pieces.size())),
             dep_args(a.dep, tr));
      charge("tdnuca_flush", isa_flush_issue_cost(cfg_.isa, 0),
             dep_args(a.dep, tr));
      // Replicas and RRT entries can only exist on this policy's cores
      // (the whole machine unless partitioned for colocation).
      const CoreMask all_cores = policy_.core_partition().empty()
                                     ? CoreMask::first_n(num_tiles_)
                                     : policy_.core_partition();
      for (const AddrRange& piece : tr.pieces) {
        all_cores.for_each(
            [&](CoreId c) { policy_.rrt(c).invalidate_range(piece); });
        join->add();
        ops->flush_llc_range(re.map_mask, piece, [join] { join->complete(); });
        join->add();
        ops->flush_l1_range(all_cores, piece, [join] { join->complete(); });
      }
      re.map_mask = BankMask::none();
      re.rrt_cores = CoreMask::none();
      re.placement = Placement::Unmapped;
    };
    if (!cfg_.dry_run && a.writes()) {
      if (e.placement == Placement::Replicated) invalidate_replicas(e);
      for (auto& [other_id, other] : dir_.mutable_all()) {
        if (other_id == a.dep) continue;
        if (other.placement == Placement::Replicated &&
            other.vrange.overlaps(d.vrange)) {
          invalidate_replicas(other);
        }
      }
    }

    // --- register the new mapping --------------------------------------
    PlacedDep pd{a.dep, p, BankMask::none(), {}, 0};
    switch (p) {
      case Placement::Bypass: {
        n_bypass_.inc();
        e.ever_bypassed = true;
        pd.mask = BankMask::none();
        if (!cfg_.dry_run) {
          // A dependency leaving the Replicated state with no future users:
          // clear the stale replicated RRT entries of past readers so dead
          // mappings do not pin RRT capacity (its cached replicas are clean
          // and age out naturally). This keeps occupancy in the paper's
          // observed range on reuse-heavy workloads.
          if (e.placement == Placement::Replicated && !e.rrt_cores.empty()) {
            Translated tr_old = translate_dep(d.vrange, core);
            charge("tdnuca_invalidate",
                   isa_invalidate_cost(
                       cfg_.isa, tr_old.tlb_cycles,
                       static_cast<unsigned>(tr_old.pieces.size())),
                   dep_args(a.dep, tr_old));
            e.rrt_cores.for_each([&](CoreId c) {
              for (const AddrRange& piece : tr_old.pieces)
                policy_.rrt(c).invalidate_range(piece);
            });
            e.rrt_cores = CoreMask::none();
          }
          Translated tr = translate_dep(d.vrange, core);
          charge("tdnuca_register",
                 isa_register_cost(cfg_.isa, tr.tlb_cycles,
                                   static_cast<unsigned>(tr.pieces.size())),
                 dep_args(a.dep, tr, "bypass"));
          for (const AddrRange& piece : tr.pieces)
            policy_.rrt(cid).register_range(piece, BankMask::none());
          pd.pieces = std::move(tr.pieces);
          pd.pages = tr.pages;
        }
        e.placement = Placement::Bypass;
        e.map_mask = BankMask::none();
        e.local_owner = cid;
        break;
      }
      case Placement::LocalBank: {
        n_local_.inc();
        pd.mask = BankMask::single(policy_.local_bank(cid));
        if (!cfg_.dry_run) {
          Translated tr = translate_dep(d.vrange, core);
          charge("tdnuca_register",
                 isa_register_cost(cfg_.isa, tr.tlb_cycles,
                                   static_cast<unsigned>(tr.pieces.size())),
                 dep_args(a.dep, tr, "local"));
          for (const AddrRange& piece : tr.pieces)
            policy_.rrt(cid).register_range(piece, pd.mask);
          pd.pieces = std::move(tr.pieces);
          pd.pages = tr.pages;
        }
        e.placement = Placement::LocalBank;
        e.map_mask = pd.mask;
        e.local_owner = cid;
        break;
      }
      case Placement::Replicated: {
        n_replicated_.inc();
        pd.mask = policy_.replication_mask(cid);
        // Replicate only over the cluster's surviving banks (the guard
        // above ensures at least one remains).
        if (health_ != nullptr && health_->any_bank_failed())
          pd.mask = pd.mask & health_->healthy_banks();
        if (!cfg_.dry_run && !e.rrt_cores.test(cid)) {
          // First task on this core to read the dependency: register the
          // cluster mapping in this core's RRT. Later readers on the same
          // core reuse the entry (it stays resident until invalidated).
          Translated tr = translate_dep(d.vrange, core);
          charge("tdnuca_register",
                 isa_register_cost(cfg_.isa, tr.tlb_cycles,
                                   static_cast<unsigned>(tr.pieces.size())),
                 dep_args(a.dep, tr, "replicated"));
          for (const AddrRange& piece : tr.pieces)
            policy_.rrt(cid).register_range(piece, pd.mask);
          e.rrt_cores.set(cid);
        }
        e.placement = Placement::Replicated;
        e.map_mask |= pd.mask;
        break;
      }
      case Placement::Unmapped:
        break;  // bypass-only variant: fall back to S-NUCA interleaving
    }
    placed.push_back(std::move(pd));
  }

  active_[task.id] = std::move(placed);
  overhead_cycles_ += cycles;
  task.hook_cycles += cycles;
  join->add();
  core.busy(cycles, [join] { join->complete(); });
  join->arm();
}

void TdNucaRuntimeHooks::after_task(runtime::Task& task, core::SimCore& core,
                                    std::function<void()> done) {
  const CoreId cid = core.id();
  nuca::CacheOps* ops = policy_.ops();
  auto it = active_.find(task.id);
  TDN_ASSERT(it != active_.end());

  Cycle cycles = 0;
  const bool tr_on = rec_ != nullptr && rec_->trace_on();
  const Cycle span_base = tr_on ? rec_->now() : 0;
  auto charge = [&](const char* name, Cycle cost, std::string args = {}) {
    if (tr_on && cost > 0)
      rec_->span(cid, "isa", name, span_base + cycles, cost, std::move(args));
    cycles += cost;
  };
  auto pd_args = [&](const PlacedDep& pd) {
    if (!tr_on) return std::string();
    std::ostringstream os;
    os << "\"dep\":" << pd.dep << ",\"pages\":" << pd.pages
       << ",\"pieces\":" << pd.pieces.size();
    return os.str();
  };
  auto join = sim::make_joiner(std::move(done));
  for (PlacedDep& pd : it->second) {
    DirEntry& e = dir_.entry(pd.dep, rts_->dep(pd.dep).vrange);
    // The flushes below drain in the background: the core pays only the
    // instruction issue cost here, and the next task that names the same
    // dependency polls the completion register (when_clean) before
    // re-registering it.
    switch (pd.placement) {
      case Placement::Bypass: {
        // Flush the dependency from this core's L1 and clear the RRT entry
        // (Fig. 7, "LLC Bypass" end-of-task actions).
        if (!cfg_.dry_run) {
          charge("tdnuca_flush", isa_flush_issue_cost(cfg_.isa, pd.pages),
                 pd_args(pd));
          charge("tdnuca_invalidate",
                 isa_invalidate_cost(cfg_.isa, pd.pages,
                                     static_cast<unsigned>(pd.pieces.size())),
                 pd_args(pd));
          for (const AddrRange& piece : pd.pieces) {
            policy_.rrt(cid).invalidate_range(piece);
            flush_started(pd.dep);
            ops->flush_l1_range(CoreMask::single(cid), piece,
                                [this, dep = pd.dep] { flush_finished(dep); });
          }
        }
        if (e.placement == Placement::Bypass && e.local_owner == cid)
          e.placement = Placement::Unmapped;
        break;
      }
      case Placement::LocalBank: {
        // Flush from the mapped LLC bank and this core's private cache,
        // then clear the RRT entry.
        if (!cfg_.dry_run) {
          charge("tdnuca_flush", isa_flush_issue_cost(cfg_.isa, pd.pages),
                 pd_args(pd));
          charge("tdnuca_invalidate",
                 isa_invalidate_cost(cfg_.isa, pd.pages,
                                     static_cast<unsigned>(pd.pieces.size())),
                 pd_args(pd));
          for (const AddrRange& piece : pd.pieces) {
            policy_.rrt(cid).invalidate_range(piece);
            flush_started(pd.dep);
            ops->flush_l1_range(CoreMask::single(cid), piece,
                                [this, dep = pd.dep] { flush_finished(dep); });
            flush_started(pd.dep);
            ops->flush_llc_range(pd.mask, piece,
                                 [this, dep = pd.dep] { flush_finished(dep); });
          }
        }
        if (e.placement == Placement::LocalBank && e.local_owner == cid) {
          e.placement = Placement::Unmapped;
          e.map_mask = BankMask::none();
        }
        break;
      }
      case Placement::Replicated: {
        // Replicated mappings persist for future readers; but once the last
        // visible reader has finished (UseDesc == 0), the RRT entries are
        // dead weight — clear them everywhere so the no-replacement RRTs
        // don't fill up with stale mappings. The cached replicas stay (they
        // are clean and age out; a later write still sees the Replicated
        // placement and triggers the full invalidation).
        if (!cfg_.dry_run && e.use_desc == 0 &&
            e.placement == Placement::Replicated && !e.rrt_cores.empty()) {
          charge("tdnuca_invalidate",
                 isa_invalidate_cost(
                     cfg_.isa, pd.pages,
                     static_cast<unsigned>(pd.pieces.size())),
                 pd_args(pd));
          Translated tr = translate_dep(rts_->dep(pd.dep).vrange, core);
          e.rrt_cores.for_each([&](CoreId c) {
            for (const AddrRange& piece : tr.pieces)
              policy_.rrt(c).invalidate_range(piece);
          });
          e.rrt_cores = CoreMask::none();
        }
        break;
      }
      case Placement::Unmapped:
        break;
    }
  }
  active_.erase(it);
  overhead_cycles_ += cycles;
  task.hook_cycles += cycles;
  join->add();
  core.busy(cycles, [join] { join->complete(); });
  join->arm();
}

}  // namespace tdn::tdnuca
