// RTCacheDirectory (paper Sec. III-C1) — the runtime-system software
// structure with one entry per task dependency:
//   * start address and size (from the Dependency record),
//   * MapMask: which LLC banks the dependency is currently mapped to,
//   * UseDesc: how many created-but-not-yet-executing tasks still use the
//     dependency. It is incremented when a task using the dependency is
//     created and decremented when that task starts to execute; when it
//     reaches zero at placement time the dependency is "predicted NotReused"
//     and bypasses the LLC. Reuse is keyed on exact region identity, so a
//     region that is only ever named by one task (e.g. per-task halo spans)
//     immediately predicts as not-reused — this is what makes the predictor
//     so effective on streaming stencils (paper Fig. 3 / Sec. V-D).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/tile_mask.hpp"
#include "common/types.hpp"

namespace tdn::tdnuca {

/// Current LLC placement of a dependency.
enum class Placement : std::uint8_t { Unmapped, Bypass, LocalBank, Replicated };

struct DirEntry {
  AddrRange vrange;  ///< virtual range (start address + size)
  BankMask map_mask; ///< LLC banks currently holding the dependency
  std::int64_t use_desc = 0;
  Placement placement = Placement::Unmapped;
  CoreId local_owner = kInvalidCore;  ///< core for LocalBank placement
  /// Cores whose RRT currently holds this dependency's replicated mapping
  /// (software bookkeeping that lets the runtime skip redundant
  /// tdnuca_register instructions for already-registered readers).
  CoreMask rrt_cores;

  // Lifetime usage flags, for the Fig. 3 dependency-type classification.
  bool ever_in = false;
  bool ever_out = false;
  /// A placement decision ever saw UseDesc == 0 ("predicted NotReused").
  bool ever_predicted_dead = false;
  /// The dependency ever actually bypassed the LLC.
  bool ever_bypassed = false;
  /// Some decision saw UseDesc > 0: the dependency is visibly reused across
  /// tasks. Such data is never bypassed even when its last use arrives
  /// (UseDesc == 0): it is hot — resident in the LLC or its replicas — and
  /// routing its final reads to DRAM would refetch resident lines. The
  /// prediction is still recorded for the Fig. 3 classification.
  bool seen_visible_reuse = false;
};

class RtCacheDirectory {
 public:
  DirEntry& entry(DepId dep, const AddrRange& vrange) {
    auto [it, inserted] = entries_.try_emplace(dep);
    if (inserted) it->second.vrange = vrange;
    return it->second;
  }
  const DirEntry* find(DepId dep) const {
    auto it = entries_.find(dep);
    return it == entries_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<DepId, DirEntry>& all() const { return entries_; }
  std::unordered_map<DepId, DirEntry>& mutable_all() { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_map<DepId, DirEntry> entries_;
};

}  // namespace tdn::tdnuca
