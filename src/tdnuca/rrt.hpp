// Runtime Region Table (paper Sec. III-B1) — the per-core hardware structure
// mapping physical address ranges of task dependencies to LLC BankMasks.
//
//  * 64 entries by default; range lookups (TCAM-style) at a configurable
//    latency (Sec. V-E sweeps 0–4 cycles).
//  * No replacement policy: when full, further ranges are simply not
//    registered and fall back to S-NUCA interleaving (Sec. III-B2).
//  * Entries are kept pairwise disjoint: registering a range that overlaps
//    existing entries trims it against them and inserts only the uncovered
//    remainder, so older registrations keep steering the addresses they
//    already own and invalidate_range never double-counts shadowed
//    duplicates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/tile_mask.hpp"
#include "common/types.hpp"
#include "stats/counters.hpp"

namespace tdn::tdnuca {

struct RrtEntry {
  AddrRange prange;  ///< physical, line-aligned
  BankMask mask;     ///< 0 bits: bypass; 1 bit: single bank; 4 bits: cluster
};

class Rrt {
 public:
  explicit Rrt(unsigned capacity = 64, Cycle lookup_latency = 1)
      : capacity_(capacity), latency_(lookup_latency) {}

  /// Register a physical range. The range is first trimmed against existing
  /// entries (which keep steering the addresses they already cover); each
  /// uncovered piece becomes its own entry. Returns false when any piece was
  /// dropped because the table is full — those addresses fall back to S-NUCA
  /// mapping. A fully shadowed range registers nothing and returns true.
  bool register_range(const AddrRange& prange, BankMask mask);

  /// Remove every entry overlapping @p prange. Returns entries removed.
  unsigned invalidate_range(const AddrRange& prange);

  /// Range lookup for one physical address; nullopt on miss. Entries are
  /// disjoint, so at most one can match.
  std::optional<RrtEntry> lookup(Addr paddr) const;

  Cycle lookup_latency() const noexcept { return latency_; }
  unsigned size() const noexcept { return static_cast<unsigned>(entries_.size()); }
  unsigned capacity() const noexcept { return capacity_; }
  const std::vector<RrtEntry>& entries() const noexcept { return entries_; }

  // --- degradation / fault-injection hooks (tdn::fault) ---------------
  /// Drop failed banks from every entry's mask. Entries whose mask becomes
  /// empty *and was not empty before* (i.e. not bypass entries) are erased so
  /// their addresses fall back to S-NUCA over the healthy set. Returns
  /// {entries with a narrowed mask, entries erased}.
  struct HealResult {
    unsigned narrowed = 0;
    unsigned erased = 0;
  };
  HealResult heal(BankMask healthy);
  /// Overwrite entry @p idx's mask (fault injection: soft-error bit flip).
  void corrupt_entry(unsigned idx, BankMask mask);
  /// Drop every entry (checkpoint cold-normalization: the retired requests'
  /// registrations must not shadow a restored run's fresh ones). Occupancy
  /// statistics survive — they describe history.
  void clear() noexcept { entries_.clear(); }
  /// Erase entry @p idx (fault injection: forced eviction). Returns its
  /// former physical range so the runtime can scrub it.
  AddrRange evict_entry(unsigned idx);

  // --- occupancy statistics (Sec. V-E) --------------------------------
  unsigned max_occupancy() const noexcept { return max_occupancy_; }
  std::uint64_t lookups() const noexcept { return lookups_.value(); }
  std::uint64_t overflows() const noexcept { return overflow_.value(); }
  std::uint64_t overlap_trims() const noexcept { return overlap_trims_.value(); }
  /// Sample current occupancy into an external aggregate.
  void sample_occupancy(stats::Sampled& agg) const {
    agg.add(static_cast<double>(entries_.size()));
  }

 private:
  unsigned capacity_;
  Cycle latency_;
  std::vector<RrtEntry> entries_;
  unsigned max_occupancy_ = 0;
  mutable stats::Counter lookups_;
  stats::Counter overflow_;
  stats::Counter overlap_trims_;
};

}  // namespace tdn::tdnuca
