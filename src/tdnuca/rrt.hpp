// Runtime Region Table (paper Sec. III-B1) — the per-core hardware structure
// mapping physical address ranges of task dependencies to LLC BankMasks.
//
//  * 64 entries by default; range lookups (TCAM-style) at a configurable
//    latency (Sec. V-E sweeps 0–4 cycles).
//  * No replacement policy: when full, further ranges are simply not
//    registered and fall back to S-NUCA interleaving (Sec. III-B2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/tile_mask.hpp"
#include "common/types.hpp"
#include "stats/counters.hpp"

namespace tdn::tdnuca {

struct RrtEntry {
  AddrRange prange;  ///< physical, line-aligned
  BankMask mask;     ///< 0 bits: bypass; 1 bit: single bank; 4 bits: cluster
};

class Rrt {
 public:
  explicit Rrt(unsigned capacity = 64, Cycle lookup_latency = 1)
      : capacity_(capacity), latency_(lookup_latency) {}

  /// Register a physical range. Returns false (and registers nothing) when
  /// the table is full — the range then falls back to S-NUCA mapping.
  bool register_range(const AddrRange& prange, BankMask mask);

  /// Remove every entry overlapping @p prange. Returns entries removed.
  unsigned invalidate_range(const AddrRange& prange);

  /// Range lookup for one physical address; nullopt on miss.
  std::optional<RrtEntry> lookup(Addr paddr) const;

  Cycle lookup_latency() const noexcept { return latency_; }
  unsigned size() const noexcept { return static_cast<unsigned>(entries_.size()); }
  unsigned capacity() const noexcept { return capacity_; }

  // --- occupancy statistics (Sec. V-E) --------------------------------
  unsigned max_occupancy() const noexcept { return max_occupancy_; }
  std::uint64_t lookups() const noexcept { return lookups_.value(); }
  std::uint64_t overflows() const noexcept { return overflow_.value(); }
  /// Sample current occupancy into an external aggregate.
  void sample_occupancy(stats::Sampled& agg) const {
    agg.add(static_cast<double>(entries_.size()));
  }

 private:
  unsigned capacity_;
  Cycle latency_;
  std::vector<RrtEntry> entries_;
  unsigned max_occupancy_ = 0;
  mutable stats::Counter lookups_;
  stats::Counter overflow_;
};

}  // namespace tdn::tdnuca
