#include "tdnuca/rrt.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace tdn::tdnuca {

bool Rrt::register_range(const AddrRange& prange, BankMask mask) {
  TDN_REQUIRE(!prange.empty(), "RRT ranges must be non-empty");
  if (entries_.size() >= capacity_) {
    overflow_.inc();
    return false;
  }
  entries_.push_back(RrtEntry{prange, mask});
  max_occupancy_ = std::max<unsigned>(max_occupancy_,
                                      static_cast<unsigned>(entries_.size()));
  return true;
}

unsigned Rrt::invalidate_range(const AddrRange& prange) {
  const auto old = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const RrtEntry& e) {
                                  return e.prange.overlaps(prange);
                                }),
                 entries_.end());
  return static_cast<unsigned>(old - entries_.size());
}

std::optional<RrtEntry> Rrt::lookup(Addr paddr) const {
  lookups_.inc();
  for (const RrtEntry& e : entries_) {
    if (e.prange.contains(paddr)) return e;
  }
  return std::nullopt;
}

}  // namespace tdn::tdnuca
