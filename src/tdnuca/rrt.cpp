#include "tdnuca/rrt.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace tdn::tdnuca {

bool Rrt::register_range(const AddrRange& prange, BankMask mask) {
  TDN_REQUIRE(!prange.empty(), "RRT ranges must be non-empty");
  // Trim the new range against existing entries: older registrations keep
  // steering the addresses they already cover (the pre-split first-match
  // lookup resolved overlaps the same way), and entries stay disjoint.
  std::vector<AddrRange> pieces{prange};
  for (const RrtEntry& e : entries_) {
    std::vector<AddrRange> next;
    for (const AddrRange& p : pieces) {
      if (!p.overlaps(e.prange)) {
        next.push_back(p);
        continue;
      }
      overlap_trims_.inc();
      if (p.begin < e.prange.begin) next.push_back({p.begin, e.prange.begin});
      if (e.prange.end < p.end) next.push_back({e.prange.end, p.end});
    }
    pieces = std::move(next);
    if (pieces.empty()) break;
  }
  bool all_inserted = true;
  std::sort(pieces.begin(), pieces.end(),
            [](const AddrRange& a, const AddrRange& b) { return a.begin < b.begin; });
  for (const AddrRange& p : pieces) {
    if (entries_.size() >= capacity_) {
      overflow_.inc();
      all_inserted = false;
      continue;
    }
    entries_.push_back(RrtEntry{p, mask});
  }
  max_occupancy_ = std::max<unsigned>(max_occupancy_,
                                      static_cast<unsigned>(entries_.size()));
  return all_inserted;
}

unsigned Rrt::invalidate_range(const AddrRange& prange) {
  const auto old = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const RrtEntry& e) {
                                  return e.prange.overlaps(prange);
                                }),
                 entries_.end());
  return static_cast<unsigned>(old - entries_.size());
}

std::optional<RrtEntry> Rrt::lookup(Addr paddr) const {
  lookups_.inc();
  for (const RrtEntry& e : entries_) {
    if (e.prange.contains(paddr)) return e;
  }
  return std::nullopt;
}

Rrt::HealResult Rrt::heal(BankMask healthy) {
  HealResult res;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->mask.empty()) {  // bypass entries reference no bank
      ++it;
      continue;
    }
    const BankMask surviving = it->mask & healthy;
    if (surviving == it->mask) {
      ++it;
    } else if (surviving.empty()) {
      it = entries_.erase(it);  // fall back to S-NUCA over the healthy set
      ++res.erased;
    } else {
      it->mask = surviving;
      ++it;
      ++res.narrowed;
    }
  }
  return res;
}

void Rrt::corrupt_entry(unsigned idx, BankMask mask) {
  TDN_REQUIRE(idx < entries_.size(), "RRT corrupt index out of range");
  entries_[idx].mask = mask;
}

AddrRange Rrt::evict_entry(unsigned idx) {
  TDN_REQUIRE(idx < entries_.size(), "RRT evict index out of range");
  const AddrRange r = entries_[idx].prange;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(idx));
  return r;
}

}  // namespace tdn::tdnuca
