// Timing model of the three TD-NUCA ISA instructions (paper Sec. III-A/B2).
//
// tdnuca_register / tdnuca_invalidate / tdnuca_flush all perform the same
// iterative virtual-to-physical translation over the dependency's address
// range (one TLB access per page, contiguous frames collapsed); register and
// invalidate then update the RRT (one slot operation per collapsed piece),
// and flush kicks the cache flush engine, whose completion the runtime
// observes by polling the memory-mapped flush-completion register.
#pragma once

#include "common/types.hpp"

namespace tdn::tdnuca {

struct IsaCostConfig {
  Cycle per_rrt_slot = 1;       ///< write/clear one RRT entry
  Cycle issue_overhead = 4;     ///< decode + setup per instruction
  Cycle flush_poll_overhead = 10;  ///< polling loop on the completion register
};

/// Cycles to execute one register/invalidate instruction given the number of
/// TLB lookups the range walk performed (caller accumulates real TLB
/// latencies, which include misses) and the number of collapsed pieces.
inline Cycle isa_register_cost(const IsaCostConfig& c, Cycle tlb_cycles,
                               unsigned pieces) {
  return c.issue_overhead + tlb_cycles + c.per_rrt_slot * pieces;
}

inline Cycle isa_invalidate_cost(const IsaCostConfig& c, Cycle tlb_cycles,
                                 unsigned pieces) {
  return c.issue_overhead + tlb_cycles + c.per_rrt_slot * pieces;
}

/// Core-side cost of issuing a flush (the flush itself runs in the cache
/// hierarchy; the runtime then polls the completion register).
inline Cycle isa_flush_issue_cost(const IsaCostConfig& c, Cycle tlb_cycles) {
  return c.issue_overhead + tlb_cycles + c.flush_poll_overhead;
}

}  // namespace tdn::tdnuca
