// TdNucaRuntimeHooks — the runtime-system side of TD-NUCA (paper Sec. III-C).
//
// After the scheduler binds a task to a core and before the task executes,
// the hooks walk its dependencies, decrement their UseDesc, and decide the
// placement per the Fig. 7 flowchart:
//
//     UseDesc == 0            -> LLC Bypass        (BankMask = 0 bits)
//     out / inout             -> Local LLC bank    (BankMask = 1 bit)
//     otherwise (reused in)   -> Cluster Replicated(BankMask = 4 bits)
//
// and communicate it to the hardware with tdnuca_register (charged to the
// core, including the iterative VA->PA translation through the TLB). On task
// end, Bypass and Local placements are eagerly flushed and de-registered;
// Replicated mappings stay for future readers and are lazily invalidated
// everywhere when the dependency transitions from read-only to written.
//
// The `bypass_only` variant (Fig. 15) applies only the Bypass placement.
// The `dry_run` variant (Sec. V-E runtime-overhead study) performs all the
// bookkeeping and decisions but never executes the ISA instructions, so the
// cache hierarchy behaves exactly as the underlying policy (S-NUCA).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "fault/health.hpp"
#include "mem/page_table.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "runtime/hooks.hpp"
#include "runtime/runtime_system.hpp"
#include "stats/counters.hpp"
#include "tdnuca/isa.hpp"
#include "tdnuca/rt_cache_directory.hpp"

namespace tdn::obs {
class Recorder;
}

namespace tdn::tdnuca {

struct HooksConfig {
  /// Decision-algorithm cycles per dependency (RTCacheDirectory lookup +
  /// placement choice) — the paper's "biggest source of overhead".
  Cycle decision_overhead = 40;
  IsaCostConfig isa{};
  /// Sec. V-E study: bookkeeping without ISA instructions.
  bool dry_run = false;
  unsigned line_size = 64;
};

class TdNucaRuntimeHooks final : public runtime::RuntimeHooks {
 public:
  /// @p rec (optional) receives one trace span per TD-NUCA ISA instruction
  /// (decision, tdnuca_register/invalidate/flush) laid back-to-back over the
  /// cycles the core is charged; it observes only and never alters timing.
  TdNucaRuntimeHooks(nuca::TdNucaPolicy& policy, mem::PageTable& pt,
                     unsigned num_tiles, HooksConfig cfg = {},
                     obs::Recorder* rec = nullptr);

  /// Wire the runtime (needed to resolve DepIds); must be called before the
  /// first task is created.
  void set_runtime(runtime::RuntimeSystem* rts) { rts_ = rts; }

  /// Attach the shared resource-health view (fault injection): placement
  /// decisions then avoid failed banks. Null — the default — keeps the
  /// original Fig. 7 flowchart untouched.
  void set_health(const fault::HealthState* health) { health_ = health; }

  /// End-of-run invariant: no task holds active placements and no
  /// end-of-task flush is still in flight.
  bool quiescent() const;
  /// Number of dependency flushes still draining.
  std::uint64_t pending_flushes() const;

  void on_task_created(const runtime::Task& task) override;
  void before_task(runtime::Task& task, core::SimCore& core,
                   std::function<void()> done) override;
  void after_task(runtime::Task& task, core::SimCore& core,
                  std::function<void()> done) override;

 private:
  void before_task_clean(runtime::Task& task, core::SimCore& core,
                         std::function<void()> done);

 public:

  const RtCacheDirectory& directory() const noexcept { return dir_; }

  // --- statistics ------------------------------------------------------
  std::uint64_t bypass_placements() const noexcept { return n_bypass_.value(); }
  std::uint64_t local_placements() const noexcept { return n_local_.value(); }
  std::uint64_t replicated_placements() const noexcept {
    return n_replicated_.value();
  }
  std::uint64_t ro_rw_transitions() const noexcept {
    return n_transitions_.value();
  }
  Cycle runtime_overhead_cycles() const noexcept { return overhead_cycles_; }
  /// Pages iterated by every ISA-path translate_range (register/invalidate/
  /// flush) — huge pages collapse this (paper Fig. 5 / docs/memory.md).
  std::uint64_t translate_pages() const noexcept { return translate_pages_; }
  /// Translation cycles (TLB probes + walks) charged on the ISA path.
  Cycle translate_cycles() const noexcept { return translate_cycles_; }

 private:
  struct Translated {
    std::vector<AddrRange> pieces;
    Cycle tlb_cycles = 0;
    std::uint64_t pages = 0;
  };
  Translated translate_dep(const AddrRange& vrange, core::SimCore& core);

  struct PlacedDep {
    DepId dep;
    Placement placement;
    BankMask mask;
    std::vector<AddrRange> pieces;
    std::uint64_t pages = 0;
  };

  /// End-of-task flushes drain asynchronously: the core moves on after the
  /// issue cost, and only a *future task touching the same dependency* must
  /// wait for completion (the runtime polls the flush-completion register
  /// right before re-registering the region). DepSync tracks in-flight
  /// flushes per dependency and queues those waiters.
  struct DepSync {
    unsigned pending = 0;
    std::vector<std::function<void()>> waiters;
  };
  void flush_started(DepId dep) { ++sync_[dep].pending; }
  void flush_finished(DepId dep);
  /// Run @p fn once no flush is in flight for any of @p deps.
  void when_clean(const std::vector<runtime::DepAccess>& deps,
                  std::function<void()> fn);

  nuca::TdNucaPolicy& policy_;
  mem::PageTable& pt_;
  unsigned num_tiles_;
  HooksConfig cfg_;
  obs::Recorder* rec_;
  const fault::HealthState* health_ = nullptr;
  runtime::RuntimeSystem* rts_ = nullptr;
  RtCacheDirectory dir_;
  std::unordered_map<TaskId, std::vector<PlacedDep>> active_;
  std::unordered_map<DepId, DepSync> sync_;

  stats::Counter n_bypass_;
  stats::Counter n_local_;
  stats::Counter n_replicated_;
  stats::Counter n_transitions_;
  Cycle overhead_cycles_ = 0;
  std::uint64_t translate_pages_ = 0;
  Cycle translate_cycles_ = 0;
};

}  // namespace tdn::tdnuca
