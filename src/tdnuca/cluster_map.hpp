// LLC Cluster Replication geometry (paper Sec. III): the chip is divided
// into quadrants — 4 clusters of 4 tiles on the 4x4 mesh. A replicated
// read-only dependency maps once per cluster; within a cluster its blocks
// are address-interleaved across the 4 banks, selected by the low block
// address bits ("the last two bits of the block address").
#pragma once

#include <vector>

#include "common/require.hpp"
#include "common/tile_mask.hpp"
#include "noc/mesh.hpp"

namespace tdn::tdnuca {

class ClusterMap {
 public:
  explicit ClusterMap(const noc::Mesh& mesh, unsigned cluster_w = 2,
                      unsigned cluster_h = 2)
      : mesh_(&mesh), cw_(cluster_w), ch_(cluster_h) {
    TDN_REQUIRE(mesh.width() % cluster_w == 0 && mesh.height() % cluster_h == 0,
                "clusters must tile the mesh exactly");
    const unsigned n = num_clusters();
    banks_.resize(n);
    for (unsigned c = 0; c < n; ++c) banks_[c] = mesh.cluster_tiles(c, cw_, ch_);
  }

  unsigned num_clusters() const {
    return (mesh_->width() / cw_) * (mesh_->height() / ch_);
  }
  unsigned cluster_size() const { return cw_ * ch_; }

  unsigned cluster_of(CoreId tile) const {
    return mesh_->cluster_of(tile, cw_, ch_);
  }

  const std::vector<CoreId>& banks_of(unsigned cluster) const {
    return banks_.at(cluster);
  }

  BankMask mask_of(unsigned cluster) const {
    BankMask m;
    for (CoreId b : banks_.at(cluster)) m.set(b);
    return m;
  }

  /// Bank serving @p line_addr inside @p cluster (address-interleaved).
  BankId bank_for(unsigned cluster, Addr line_addr,
                  unsigned line_size = 64) const {
    const auto& banks = banks_.at(cluster);
    return banks[(line_addr / line_size) % banks.size()];
  }

  /// Same interleave, but given a BankMask (as the hardware does: the RRT
  /// entry carries only the mask).
  static BankId bank_for_mask(BankMask mask, Addr line_addr,
                              unsigned line_size = 64) {
    const int n = mask.count();
    TDN_ASSERT(n > 0);
    return mask.nth_bit(static_cast<int>((line_addr / line_size) % n));
  }

 private:
  const noc::Mesh* mesh_;
  unsigned cw_;
  unsigned ch_;
  std::vector<std::vector<CoreId>> banks_;
};

}  // namespace tdn::tdnuca
