#include "nuca/tdnuca_policy.hpp"

#include <algorithm>

namespace tdn::nuca {

TdNucaPolicy::TdNucaPolicy(const noc::Mesh& mesh, unsigned num_banks,
                           TdNucaConfig cfg)
    : cfg_(cfg), num_banks_(num_banks), clusters_(mesh) {
  rrts_.reserve(num_banks);
  for (unsigned i = 0; i < num_banks; ++i)
    rrts_.emplace_back(cfg_.rrt_entries, cfg_.rrt_latency);
}

MapDecision TdNucaPolicy::map(CoreId core, Addr /*vaddr*/, Addr paddr,
                              AccessKind /*kind*/) {
  tdnuca::Rrt& rrt = rrts_[core];
  rrt.sample_occupancy(occupancy_);
  const auto entry = rrt.lookup(paddr);
  const Cycle lat = cfg_.rrt_latency;
  if (!entry) {
    rrt_misses_.inc();
    return MapDecision::to_bank(
        degrade(interleave_bank(paddr, num_banks_), paddr), lat);
  }
  rrt_hits_.inc();
  BankMask mask = entry->mask;
  if (health_ != nullptr && health_->any_bank_failed() && !mask.empty()) {
    // Stale entries can survive briefly between a bank failure and the
    // runtime's scrub pass; mask dead banks out here so no request targets
    // them. A fully-dead mask falls back to healthy-set interleaving.
    mask = mask & health_->healthy_banks();
    if (mask.empty())
      return MapDecision::to_bank(
          degrade(interleave_bank(paddr, num_banks_), paddr), lat);
  }
  const int bits = mask.count();
  if (bits == 0) return MapDecision::bypass(lat);
  if (bits == 1) return MapDecision::to_bank(mask.sole_bit(), lat);
  return MapDecision::to_bank(tdnuca::ClusterMap::bank_for_mask(mask, paddr),
                              lat);
}

BankMask TdNucaPolicy::replication_mask(CoreId core) const {
  const BankMask cl = clusters_.mask_of(clusters_.cluster_of(core));
  if (bank_partition().empty()) return cl;
  const BankMask m = cl & bank_partition();
  return m.empty() ? bank_partition() : m;
}

BankId TdNucaPolicy::local_bank(CoreId core) const {
  const BankMask part = bank_partition();
  if (part.empty() || part.test(core)) return core;
  return part.nth_bit(static_cast<int>(core % part.count()));
}

unsigned TdNucaPolicy::max_rrt_occupancy() const {
  unsigned m = 0;
  for (const auto& r : rrts_) m = std::max(m, r.max_occupancy());
  return m;
}

}  // namespace tdn::nuca
