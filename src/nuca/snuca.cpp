// S-NUCA is fully inline (snuca.hpp); this translation unit anchors the
// vtable of SNucaPolicy.
#include "nuca/snuca.hpp"

namespace tdn::nuca {}  // namespace tdn::nuca
