// S-NUCA — the baseline of every figure in the paper: static address
// interleaving of cache blocks across all LLC banks. Mapping and search are
// trivial; capacity is maximal; NUCA distance averages the mesh mean.
#pragma once

#include "common/types.hpp"
#include "nuca/mapping.hpp"

namespace tdn::nuca {

/// The interleaving function, shared by every policy that falls back to
/// static interleaving (S-NUCA itself, RRT misses under TD-NUCA, shared
/// pages under R-NUCA).
inline BankId snuca_bank(Addr paddr, unsigned num_banks,
                         unsigned line_size = 64) {
  return static_cast<BankId>((paddr / line_size) % num_banks);
}

class SNucaPolicy final : public MappingPolicy {
 public:
  explicit SNucaPolicy(unsigned num_banks, unsigned line_size = 64)
      : num_banks_(num_banks), line_size_(line_size) {}

  const char* name() const override { return "S-NUCA"; }

  MapDecision map(CoreId /*core*/, Addr /*vaddr*/, Addr paddr,
                  AccessKind /*kind*/) override {
    return MapDecision::to_bank(
        degrade(interleave_bank(paddr, num_banks_, line_size_), paddr));
  }

 private:
  unsigned num_banks_;
  unsigned line_size_;
};

}  // namespace tdn::nuca
