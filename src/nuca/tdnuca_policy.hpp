// TD-NUCA hardware-side mapping (paper Sec. III-B3).
//
// On every private-cache miss and writeback the core's RRT is consulted:
//   * miss in the RRT        -> S-NUCA static interleaving (untracked data),
//   * BankMask with 0 bits   -> bypass the LLC (straight to memory),
//   * BankMask with 1 bit    -> that LLC bank (local-bank mapping),
//   * BankMask with 4 bits   -> cluster-replicated: interleave across the
//                               cluster's banks by the low block-address bits.
// The RRT lookup latency is charged on the miss path (Sec. V-E sweeps it).
//
// The software side — placement decisions, RRT maintenance, flush sequencing
// — lives in tdnuca::TdNucaRuntimeHooks.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "noc/mesh.hpp"
#include "nuca/mapping.hpp"
#include "nuca/snuca.hpp"
#include "stats/counters.hpp"
#include "tdnuca/cluster_map.hpp"
#include "tdnuca/rrt.hpp"

namespace tdn::nuca {

struct TdNucaConfig {
  unsigned rrt_entries = 64;
  Cycle rrt_latency = 1;
  /// Fig. 15 variant: only the LLC-bypass placement is applied; private
  /// local-bank mapping and cluster replication are disabled.
  bool bypass_only = false;
};

class TdNucaPolicy final : public MappingPolicy {
 public:
  TdNucaPolicy(const noc::Mesh& mesh, unsigned num_banks,
               TdNucaConfig cfg = {});

  const char* name() const override {
    return cfg_.bypass_only ? "TD-NUCA(bypass-only)" : "TD-NUCA";
  }

  MapDecision map(CoreId core, Addr vaddr, Addr paddr,
                  AccessKind kind) override;

  const TdNucaConfig& config() const noexcept { return cfg_; }
  tdnuca::Rrt& rrt(CoreId core) { return rrts_.at(core); }
  const tdnuca::Rrt& rrt(CoreId core) const { return rrts_.at(core); }
  const tdnuca::ClusterMap& clusters() const noexcept { return clusters_; }
  nuca::CacheOps* ops() const noexcept { return ops_; }

  /// Cluster-replication mask for @p core under the current partition: the
  /// core's quadrant restricted to this app's banks, or the whole partition
  /// when the quadrant lies entirely outside it. Identical to the plain
  /// quadrant mask without a partition.
  BankMask replication_mask(CoreId core) const;
  /// Local-bank placement target for @p core: its own tile's bank, or — for
  /// a core whose tile is outside the partition (overlapping-core
  /// colocation) — a partition bank picked by core-id rotation.
  BankId local_bank(CoreId core) const;

  std::uint64_t rrt_hits() const noexcept { return rrt_hits_.value(); }
  std::uint64_t rrt_misses() const noexcept { return rrt_misses_.value(); }
  /// Mean RRT occupancy, sampled once per map() call (a dense, unbiased
  /// proxy for "during the whole execution", Sec. V-E).
  double mean_rrt_occupancy() const noexcept { return occupancy_.mean(); }
  unsigned max_rrt_occupancy() const;

  // --- checkpoint cold-normalization (tdn::ckpt) ------------------------
  /// Numerator/denominator for exact mean-occupancy recombination across a
  /// checkpoint fold.
  double occupancy_total() const noexcept { return occupancy_.total(); }
  double occupancy_weight() const noexcept { return occupancy_.weight(); }
  /// Drop every RRT entry (retired requests' registrations must not steer a
  /// restored run) and fold-and-reset the lookup statistics. Quiescence
  /// guarantees no dependency ranges are live, so clearing loses nothing.
  void ckpt_reset() {
    for (auto& r : rrts_) r.clear();
    rrt_hits_.reset();
    rrt_misses_.reset();
    occupancy_.reset();
  }

 private:
  TdNucaConfig cfg_;
  unsigned num_banks_;
  tdnuca::ClusterMap clusters_;
  std::vector<tdnuca::Rrt> rrts_;
  stats::Counter rrt_hits_;
  stats::Counter rrt_misses_;
  stats::Sampled occupancy_;
};

}  // namespace tdn::nuca
