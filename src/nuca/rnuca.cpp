#include "nuca/rnuca.hpp"

namespace tdn::nuca {

RNucaPolicy::RNucaPolicy(const noc::Mesh& mesh, unsigned num_banks,
                         mem::PageTable& pt, RNucaConfig cfg)
    : cfg_(cfg), num_banks_(num_banks), pt_(pt), clusters_(mesh) {}

void RNucaPolicy::flush_page(Addr page_base, CoreMask cores, BankMask banks) {
  if (ops_ == nullptr) return;
  Addr pa = 0;
  if (!pt_.try_translate(page_base, pa))
    return;  // never materialized: nothing cached
  const AddrRange prange{pa, pa + pt_.page_span(page_base)};
  page_flushes_.inc();
  if (!cores.empty()) ops_->flush_l1_range(cores, prange, [] {});
  if (!banks.empty()) ops_->flush_llc_range(banks, prange, [] {});
}

Cycle RNucaPolicy::on_access(CoreId core, Addr vaddr, AccessKind kind) {
  const Addr vpage = pt_.page_base(vaddr);
  auto [it, inserted] = pages_.try_emplace(vpage);
  PageState& ps = it->second;
  if (inserted) {
    ps.cls = PageClass::Private;
    ps.owner = core;
    ps.written = is_write(kind);
    return cfg_.first_touch_penalty;
  }
  switch (ps.cls) {
    case PageClass::Private:
      if (ps.owner == core) {
        ps.written = ps.written || is_write(kind);
        return 0;
      }
      // Second core touches the page: reclassify. The previous owner's
      // cached copies (its L1 and its local LLC bank) are flushed and its
      // TLB entry is invalidated (paper Sec. II-C). Under a partition a
      // foreign-tile owner's lines live interleaved across the partition
      // banks instead of on its own tile.
      reclassifications_.inc();
      flush_page(vpage, CoreMask::single(ps.owner),
                 bank_partition().empty() || bank_partition().test(ps.owner)
                     ? BankMask::single(ps.owner)
                     : bank_partition());
      if (ps.owner < mmus_.size() && mmus_[ps.owner] != nullptr)
        mmus_[ps.owner]->invalidate_page(vaddr);
      ps.cls = (ps.written || is_write(kind)) ? PageClass::Shared
                                              : PageClass::SharedRO;
      ps.written = ps.written || is_write(kind);
      ps.owner = kInvalidCore;
      return cfg_.reclassification_penalty;
    case PageClass::SharedRO:
      if (!is_write(kind)) return 0;
      // A write to a replicated read-only page: demote to Shared and flush
      // every replica from every cache (Sec. V enhancement).
      reclassifications_.inc();
      ps.cls = PageClass::Shared;
      ps.written = true;
      // Replicas can only live on this policy's cores/banks: restrict the
      // all-caches flush to the partition when one is set.
      flush_page(vpage,
                 core_partition().empty() ? CoreMask::first_n(num_banks_)
                                          : core_partition(),
                 bank_partition().empty() ? BankMask::first_n(num_banks_)
                                          : bank_partition());
      for (auto* mmu : mmus_)
        if (mmu != nullptr) mmu->invalidate_page(vaddr);
      return cfg_.reclassification_penalty;
    case PageClass::Shared:
      return 0;  // terminal class
  }
  return 0;
}

MapDecision RNucaPolicy::map(CoreId core, Addr vaddr, Addr paddr,
                             AccessKind /*kind*/) {
  const Addr vpage = pt_.page_base(vaddr);
  auto it = pages_.find(vpage);
  // on_access always runs first on the demand path, but writebacks can
  // outlive the map state; fall back to interleaving for unknown pages.
  if (it == pages_.end())
    return MapDecision::to_bank(
        degrade(interleave_bank(paddr, num_banks_), paddr));
  switch (it->second.cls) {
    case PageClass::Private: {
      const CoreId owner = it->second.owner;
      // A foreign-tile owner (overlapping-core colocation) has no bank of
      // its own inside the partition; its pages interleave instead.
      if (!bank_partition().empty() && !bank_partition().test(owner))
        return MapDecision::to_bank(
            degrade(interleave_bank(paddr, num_banks_), paddr));
      return MapDecision::to_bank(degrade(owner, paddr));
    }
    case PageClass::SharedRO: {
      if (bank_partition().empty())
        return MapDecision::to_bank(degrade(
            clusters_.bank_for(clusters_.cluster_of(core), paddr), paddr));
      // Rotational interleave over the quadrant's in-partition banks; a
      // quadrant fully outside the partition falls back to interleaving.
      const BankMask m =
          clusters_.mask_of(clusters_.cluster_of(core)) & bank_partition();
      if (m.empty())
        return MapDecision::to_bank(
            degrade(interleave_bank(paddr, num_banks_), paddr));
      return MapDecision::to_bank(
          degrade(tdnuca::ClusterMap::bank_for_mask(m, paddr), paddr));
    }
    case PageClass::Shared:
      return MapDecision::to_bank(
          degrade(interleave_bank(paddr, num_banks_), paddr));
  }
  return MapDecision::to_bank(
      degrade(interleave_bank(paddr, num_banks_), paddr));
}

RNucaPolicy::Census RNucaPolicy::census() const {
  Census c;
  for (const auto& [page, ps] : pages_) {
    (void)page;
    switch (ps.cls) {
      case PageClass::Private: ++c.private_pages; break;
      case PageClass::SharedRO: ++c.shared_ro_pages; break;
      case PageClass::Shared: ++c.shared_pages; break;
    }
  }
  return c;
}

}  // namespace tdn::nuca
