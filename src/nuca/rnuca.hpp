// R-NUCA (Reactive NUCA, Hardavellas et al. ISCA'09) — the state-of-the-art
// competitor the paper evaluates against, including the paper's enhancement
// (Sec. V): shared *read-only data* pages are replicated like instruction
// pages, not only classified.
//
// OS page classification (paper Sec. II-C):
//   * first touch            -> Private(owner = accessing core)
//   * access by another core -> Shared (or SharedRO if never written);
//     the page is flushed from the previous owner's caches and its TLB
//     entry is shot down,
//   * write to a SharedRO page -> Shared; the page is flushed from all
//     caches (consistent with R-NUCA's private->shared flush approach).
// Once Shared, a page never returns to Private — the key limitation under
// dynamic task schedulers that TD-NUCA exploits.
//
// Placement:
//   * Private   -> the owner's local LLC bank,
//   * Shared    -> standard address interleaving across all banks,
//   * SharedRO  -> degree-4 rotational interleaving. With rotational ids
//     rid(x,y) = (x mod 2) + 2*(y mod 2), the tile with a given rid inside
//     the requester's aligned 2x2 neighbourhood is unique, so degree-4
//     rotational interleaving is exactly the aligned-quadrant cluster
//     interleave implemented by tdnuca::ClusterMap.
//
// Instruction fetch is not modelled (data-only simulator), matching the
// figures that evaluate data placement.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "nuca/mapping.hpp"
#include "nuca/snuca.hpp"
#include "stats/counters.hpp"
#include "tdnuca/cluster_map.hpp"
#include "vm/mmu.hpp"

namespace tdn::nuca {

struct RNucaConfig {
  /// OS cost charged to the faulting core on a page reclassification
  /// (page-table update, flush orchestration, TLB shootdown IPIs).
  Cycle reclassification_penalty = 600;
  /// First-touch classification cost (page-table bit update).
  Cycle first_touch_penalty = 40;
};

enum class PageClass : std::uint8_t { Private, SharedRO, Shared };

class RNucaPolicy final : public MappingPolicy {
 public:
  RNucaPolicy(const noc::Mesh& mesh, unsigned num_banks, mem::PageTable& pt,
              RNucaConfig cfg = {});

  const char* name() const override { return "R-NUCA"; }

  /// The per-core MMUs whose TLBs are shot down on reclassification
  /// (index = core id). Optional: without them, shootdown cost is still
  /// charged but no TLB state changes.
  void set_mmus(std::vector<vm::Mmu*> mmus) { mmus_ = std::move(mmus); }

  Cycle on_access(CoreId core, Addr vaddr, AccessKind kind) override;
  MapDecision map(CoreId core, Addr vaddr, Addr paddr,
                  AccessKind kind) override;

  // --- classification census (Fig. 3 left bars) -----------------------
  struct Census {
    std::uint64_t private_pages = 0;
    std::uint64_t shared_ro_pages = 0;
    std::uint64_t shared_pages = 0;
    std::uint64_t total() const {
      return private_pages + shared_ro_pages + shared_pages;
    }
  };
  Census census() const;

  std::uint64_t reclassifications() const noexcept {
    return reclassifications_.value();
  }
  std::uint64_t page_flushes() const noexcept { return page_flushes_.value(); }

  // --- checkpoint cold-normalization (tdn::ckpt) ------------------------
  /// Drop every page classification and fold-and-reset the counters. Run at
  /// a quiescent checkpoint boundary in both lineages: the restored run's
  /// page table starts unmapped, so stale classifications keyed by retired
  /// vpages must not survive either.
  void ckpt_reset() {
    pages_.clear();
    reclassifications_.reset();
    page_flushes_.reset();
  }

 private:
  struct PageState {
    PageClass cls = PageClass::Private;
    CoreId owner = kInvalidCore;
    bool written = false;
  };

  /// Flush the physical blocks of a virtual page from the given cores' L1s
  /// and LLC banks (fire-and-forget; the OS penalty is charged separately).
  void flush_page(Addr page_base, CoreMask cores, BankMask banks);

  RNucaConfig cfg_;
  unsigned num_banks_;
  mem::PageTable& pt_;
  tdnuca::ClusterMap clusters_;
  std::vector<vm::Mmu*> mmus_;
  /// Classification state, keyed by the *actual* page base the page table
  /// mapped (4K in legacy mode; 4K/2M/1G under tdn::vm) — so huge pages
  /// visibly coarsen R-NUCA's grain: one touch classifies the whole page,
  /// and mixed In/Out data inside it collapses into one class.
  std::unordered_map<Addr, PageState> pages_;
  stats::Counter reclassifications_;
  stats::Counter page_flushes_;
};

}  // namespace tdn::nuca
