// NUCA mapping policy interface.
//
// A MappingPolicy answers the two questions every NUCA design must answer
// (paper Sec. II-A): *NUCA Mapping* — which LLC bank serves a given cache
// block for a given requester — and whether the access should bypass the LLC
// entirely. Concrete policies: S-NUCA (snuca.hpp), R-NUCA (rnuca.hpp) and
// TD-NUCA (tdnuca_policy.hpp).
//
// Policies that relocate data at run time (R-NUCA reclassification, TD-NUCA
// dependency remapping) need to flush caches; they do so through the CacheOps
// interface implemented by coherence::CoherentSystem, which is injected after
// construction (set_ops) to break the layering cycle.
#pragma once

#include <functional>
#include <vector>

#include "common/tile_mask.hpp"
#include "common/types.hpp"
#include "fault/health.hpp"

namespace tdn::nuca {

struct MapDecision {
  enum class Kind : std::uint8_t { Bank, Bypass };
  Kind kind = Kind::Bank;
  BankId bank = 0;
  /// Extra cycles the lookup itself cost (e.g. the RRT access, paper
  /// Sec. III-B3: "this operation adds a delay to the private cache misses").
  Cycle lookup_latency = 0;

  static MapDecision to_bank(BankId b, Cycle lat = 0) {
    return MapDecision{Kind::Bank, b, lat};
  }
  static MapDecision bypass(Cycle lat = 0) {
    return MapDecision{Kind::Bypass, kInvalidBank, lat};
  }
};

/// Cache maintenance operations a policy may trigger (flushes on data
/// relocation). Ranges are physical and block-aligned by the caller.
class CacheOps {
 public:
  virtual ~CacheOps() = default;
  /// Write back + invalidate all blocks of @p prange from the private caches
  /// of @p cores. @p done fires when the flush has fully drained.
  virtual void flush_l1_range(CoreMask cores, const AddrRange& prange,
                              std::function<void()> done) = 0;
  /// Write back + invalidate all blocks of @p prange from the given LLC
  /// banks, including back-invalidation of L1 copies they track.
  virtual void flush_llc_range(BankMask banks, const AddrRange& prange,
                               std::function<void()> done) = 0;
  virtual Cycle now() const = 0;
};

class MappingPolicy {
 public:
  virtual ~MappingPolicy() = default;

  virtual const char* name() const = 0;

  /// Decide the LLC destination for an L1 miss or writeback issued by
  /// @p core. Called on the critical path of every private-cache miss.
  virtual MapDecision map(CoreId core, Addr vaddr, Addr paddr,
                          AccessKind kind) = 0;

  /// Demand-access hook, called once per L1 *access* (hit or miss) with the
  /// virtual address, before map(). OS-based policies use it to run their
  /// page classification state machine. Returns extra latency to charge.
  virtual Cycle on_access(CoreId /*core*/, Addr /*vaddr*/,
                          AccessKind /*kind*/) {
    return 0;
  }

  /// Inject the cache-maintenance backend (called by the system builder).
  virtual void set_ops(CacheOps* ops) { ops_ = ops; }

  /// Attach the shared resource-health view (fault injection). Null — the
  /// default — keeps every decision on the original, fault-free path.
  void set_health(const fault::HealthState* health) { health_ = health; }

  /// Restrict this policy instance to a machine partition (tdn::multi
  /// colocation): @p banks are the LLC banks it may map to, @p cores the
  /// cores whose private caches its relocation flushes may target. Empty
  /// masks — the default — mean "the whole machine" and keep every decision
  /// bit-identical to an unpartitioned policy.
  void set_partition(BankMask banks, CoreMask cores) {
    partition_ = banks;
    partition_cores_ = cores;
    part_banks_.clear();
    banks.for_each([this](CoreId b) { part_banks_.push_back(b); });
  }
  const BankMask& bank_partition() const noexcept { return partition_; }
  const CoreMask& core_partition() const noexcept { return partition_cores_; }

 protected:
  /// Static-interleave fallback home for @p paddr: over the partition's
  /// banks when one is set, else over all @p num_banks (== snuca_bank).
  BankId interleave_bank(Addr paddr, unsigned num_banks,
                         unsigned line_size = 64) const {
    if (part_banks_.empty())
      return static_cast<BankId>((paddr / line_size) % num_banks);
    return part_banks_[(paddr / line_size) % part_banks_.size()];
  }

  /// Degraded-mode guard for a bank choice: identity while the bank is
  /// healthy (or no HealthState is attached); S-NUCA re-interleaving over
  /// the healthy set once it has failed. Under a partition the re-interleave
  /// stays inside the partition's surviving banks, so one app's dead bank
  /// never spills its traffic into a co-runner's banks; only a fully-dead
  /// partition overflows to the global healthy set.
  BankId degrade(BankId bank, Addr paddr) const {
    if (health_ == nullptr || health_->bank_ok(bank)) return bank;
    if (!partition_.empty()) {
      const BankMask ok = partition_ & health_->healthy_banks();
      if (!ok.empty())
        return ok.nth_bit(static_cast<int>((paddr / 64) % ok.count()));
    }
    return health_->remap_bank(paddr);
  }

  CacheOps* ops_ = nullptr;
  const fault::HealthState* health_ = nullptr;

 private:
  BankMask partition_;
  CoreMask partition_cores_;
  std::vector<BankId> part_banks_;
};

}  // namespace tdn::nuca
