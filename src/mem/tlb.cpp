#include "mem/tlb.hpp"

#include "common/require.hpp"

namespace tdn::mem {

Tlb::Tlb(TlbConfig cfg, Addr page_size) : cfg_(cfg), page_size_(page_size) {
  TDN_REQUIRE(cfg_.entries > 0, "TLB needs at least one entry");
  TDN_REQUIRE(is_pow2(page_size_), "page size must be a power of two");
}

Cycle Tlb::access(Addr vaddr) {
  const Addr vpage = vaddr / page_size_;
  auto it = map_.find(vpage);
  if (it != map_.end()) {
    hits_.inc();
    lru_.splice(lru_.begin(), lru_, it->second);
    return cfg_.hit_latency;
  }
  misses_.inc();
  if (map_.size() >= cfg_.entries) {
    const Addr victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(vpage);
  map_[vpage] = lru_.begin();
  return cfg_.hit_latency + cfg_.miss_penalty;
}

void Tlb::invalidate_page(Addr vaddr) {
  const Addr vpage = vaddr / page_size_;
  auto it = map_.find(vpage);
  if (it == map_.end()) return;
  shootdowns_.inc();
  lru_.erase(it->second);
  map_.erase(it);
}

void Tlb::invalidate_all() {
  shootdowns_.inc(map_.size());
  lru_.clear();
  map_.clear();
}

bool Tlb::contains(Addr vaddr) const {
  return map_.count(vaddr / page_size_) != 0;
}

}  // namespace tdn::mem
