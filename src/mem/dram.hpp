// Memory controller / DRAM timing model.
//
// Each controller serves line-sized requests with a fixed access latency plus
// a bandwidth constraint modeled as a busy-until horizon (one request every
// `service_interval` cycles). Controllers are attached to edge tiles of the
// mesh and lines are address-interleaved across them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/latency_histogram.hpp"
#include "stats/counters.hpp"

namespace tdn::mem {

struct DramConfig {
  Cycle access_latency = 120;   ///< row access + transfer
  Cycle service_interval = 2;   ///< min cycles between request starts per MC
};

class MemController {
 public:
  explicit MemController(DramConfig cfg = {}) : cfg_(cfg) {}

  /// Issue a line read/write arriving at cycle @p arrival.
  /// Returns the cycle at which the data/ack is ready to leave the MC.
  Cycle request(Cycle arrival, AccessKind kind);

  std::uint64_t reads() const noexcept { return reads_.value(); }
  std::uint64_t writes() const noexcept { return writes_.value(); }
  std::uint64_t accesses() const noexcept { return reads() + writes(); }
  double mean_queue_delay() const noexcept { return queue_delay_.mean(); }
  /// Cycle until which the controller is committed to already-issued
  /// requests; (busy_until - now) / service_interval is the instantaneous
  /// queue depth the obs epoch sampler reports.
  Cycle busy_until() const noexcept { return next_free_; }
  const DramConfig& config() const noexcept { return cfg_; }

  /// Fault injection (DRAM stall storm): hold the controller busy until
  /// @p until; requests arriving meanwhile queue behind the horizon.
  void inject_stall(Cycle until) {
    if (until > next_free_) next_free_ = until;
  }

  /// Attach a queue-delay histogram sink (obs latency attribution; shared
  /// across controllers). Null (the default) costs one pointer test.
  void set_queue_sink(obs::LatencyHistogram* sink) noexcept {
    queue_sink_ = sink;
  }

  // --- checkpoint fold (tdn::ckpt) -------------------------------------
  /// Queue-delay numerator/denominator for exact mean recombination.
  double queue_delay_total() const noexcept { return queue_delay_.total(); }
  double queue_delay_weight() const noexcept { return queue_delay_.weight(); }
  /// Fold-and-reset traffic counters at a quiescent checkpoint boundary.
  /// next_free_ is preserved deliberately: an injected stall horizon can
  /// extend past the boundary, and the restore path replays it via
  /// inject_stall so both lineages see the same horizon.
  void ckpt_reset_stats() noexcept {
    reads_.reset();
    writes_.reset();
    queue_delay_.reset();
  }

 private:
  DramConfig cfg_;
  Cycle next_free_ = 0;
  obs::LatencyHistogram* queue_sink_ = nullptr;
  stats::Counter reads_;
  stats::Counter writes_;
  stats::Sampled queue_delay_;
};

/// The set of memory controllers in the system with the line interleaving
/// function and their tile attachment points.
class MemControllers {
 public:
  MemControllers(unsigned count, std::vector<CoreId> attach_tiles,
                 DramConfig cfg = {});

  unsigned count() const noexcept { return static_cast<unsigned>(mcs_.size()); }
  /// Which controller owns the line containing @p paddr.
  unsigned index_for(Addr line_addr) const noexcept {
    return static_cast<unsigned>((line_addr >> 6) % mcs_.size());
  }
  CoreId tile_of(unsigned mc) const { return attach_tiles_.at(mc); }
  MemController& mc(unsigned i) { return mcs_.at(i); }
  const MemController& mc(unsigned i) const { return mcs_.at(i); }

  std::uint64_t total_accesses() const noexcept;

 private:
  std::vector<MemController> mcs_;
  std::vector<CoreId> attach_tiles_;
};

}  // namespace tdn::mem
