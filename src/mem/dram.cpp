#include "mem/dram.hpp"

#include "common/require.hpp"

namespace tdn::mem {

Cycle MemController::request(Cycle arrival, AccessKind kind) {
  if (kind == AccessKind::Read) reads_.inc();
  else writes_.inc();
  const Cycle start = arrival > next_free_ ? arrival : next_free_;
  queue_delay_.add(static_cast<double>(start - arrival));
  if (queue_sink_ != nullptr) queue_sink_->add(start - arrival);
  next_free_ = start + cfg_.service_interval;
  return start + cfg_.access_latency;
}

MemControllers::MemControllers(unsigned count, std::vector<CoreId> attach_tiles,
                               DramConfig cfg)
    : attach_tiles_(std::move(attach_tiles)) {
  TDN_REQUIRE(count > 0, "need at least one memory controller");
  TDN_REQUIRE(attach_tiles_.size() == count,
              "one attach tile per memory controller");
  mcs_.reserve(count);
  for (unsigned i = 0; i < count; ++i) mcs_.emplace_back(cfg);
}

std::uint64_t MemControllers::total_accesses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& m : mcs_) n += m.accesses();
  return n;
}

}  // namespace tdn::mem
