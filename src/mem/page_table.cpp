#include "mem/page_table.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace tdn::mem {

PageTable::PageTable(PageTableConfig cfg, vm::VmConfig vm)
    : cfg_(cfg), vm_(vm), rng_(cfg.seed),
      buddy_(vm.enabled ? vm.fragmentation : 0.0, vm.seed) {
  TDN_REQUIRE(is_pow2(cfg_.page_size), "page size must be a power of two");
  TDN_REQUIRE(cfg_.fragmentation >= 0.0 && cfg_.fragmentation <= 1.0,
              "fragmentation must be in [0,1]");
  if (vm_.enabled)
    TDN_REQUIRE(cfg_.page_size == vm::kPage4K,
                "vm mode models the x86 radix tree: base pages are 4K");
}

Addr PageTable::allocate_frame() {
  // Fragmentation injection: occasionally put a frame aside and hand out the
  // next one, so consecutively touched virtual pages get non-adjacent frames.
  if (cfg_.fragmentation > 0.0 && rng_.next_double() < cfg_.fragmentation) {
    skipped_frames_.push_back(next_frame_++);
  } else if (!skipped_frames_.empty() && rng_.next_double() < 0.5) {
    const Addr frame = skipped_frames_.back();
    skipped_frames_.pop_back();
    return frame;
  }
  return next_frame_++;
}

const PageTable::PageMapping* PageTable::find_mapping(Addr vaddr) const {
  auto it = vm_map_.upper_bound(vaddr);
  if (it == vm_map_.begin()) return nullptr;
  --it;
  const PageMapping& m = it->second;
  return vaddr < m.va_base + m.span ? &m : nullptr;
}

bool PageTable::huge_candidate(Addr va_base, Addr span) const {
  if (vm_.thp == vm::ThpPolicy::Always) return true;
  if (vm_.thp != vm::ThpPolicy::Madvise) return false;
  // The whole aligned span must lie inside one advised interval.
  auto it = advised_.upper_bound(va_base);
  if (it == advised_.begin()) return false;
  --it;
  return va_base >= it->first && va_base + span <= it->second;
}

PageTable::PageMapping PageTable::touch_page(Addr vaddr) {
  if (!vm_.enabled) {
    const Addr ps = cfg_.page_size;
    const Addr vpage = vaddr / ps;
    auto [it, inserted] = va_to_pa_.try_emplace(vpage, 0);
    if (inserted) it->second = allocate_frame();
    return PageMapping{vpage * ps, it->second * ps, ps};
  }
  if (const PageMapping* m = find_mapping(vaddr)) return *m;

  // Establish a new mapping: largest policy-eligible page first, falling
  // back when the aligned VA span conflicts with an existing mapping or the
  // buddy pool has no contiguous run (fragmentation).
  Addr sizes[3];
  unsigned n = 0;
  if (vm_.use_1g) sizes[n++] = vm::kPage1G;
  sizes[n++] = vm::kPage2M;
  sizes[n++] = vm::kPage4K;
  for (unsigned i = 0; i < n; ++i) {
    const Addr span = sizes[i];
    const Addr va_base = align_down(vaddr, span);
    if (span > vm::kPage4K) {
      if (!huge_candidate(va_base, span)) continue;
      // A mapping overlapping [va_base, va_base+span) but not covering
      // vaddr forbids the huge page (mappings never nest).
      auto it = vm_map_.lower_bound(va_base);
      const bool conflict =
          (it != vm_map_.end() && it->first < va_base + span) ||
          (it != vm_map_.begin() &&
           std::prev(it)->second.va_base + std::prev(it)->second.span >
               va_base);
      if (conflict) {
        ++huge_fallbacks_;
        continue;
      }
    }
    const unsigned order = log2_exact(span / vm::kPage4K);
    const auto frame = buddy_.try_allocate(order, order == 0 ? 2 : 1);
    if (!frame) {
      ++huge_fallbacks_;
      continue;
    }
    const PageMapping m{va_base, *frame * vm::kPage4K, span};
    vm_map_.emplace(va_base, m);
    return m;
  }
  TDN_REQUIRE(false, "4K allocation cannot fail");
  return {};
}

Addr PageTable::translate(Addr vaddr) {
  const PageMapping m = touch_page(vaddr);
  return m.pa_base + (vaddr - m.va_base);
}

bool PageTable::try_translate(Addr vaddr, Addr& paddr) const {
  if (vm_.enabled) {
    const PageMapping* m = find_mapping(vaddr);
    if (m == nullptr) return false;
    paddr = m->pa_base + (vaddr - m->va_base);
    return true;
  }
  const Addr vpage = vaddr / cfg_.page_size;
  auto it = va_to_pa_.find(vpage);
  if (it == va_to_pa_.end()) return false;
  paddr = it->second * cfg_.page_size + (vaddr & (cfg_.page_size - 1));
  return true;
}

Addr PageTable::page_base(Addr vaddr) const {
  if (vm_.enabled)
    if (const PageMapping* m = find_mapping(vaddr)) return m->va_base;
  return align_down(vaddr, cfg_.page_size);
}

Addr PageTable::page_span(Addr vaddr) const {
  if (vm_.enabled)
    if (const PageMapping* m = find_mapping(vaddr)) return m->span;
  return cfg_.page_size;
}

void PageTable::advise_huge(const AddrRange& vrange) {
  if (!vm_madvise() || vrange.empty()) return;
  // Insert [begin, end) and merge with abutting/overlapping intervals.
  Addr begin = vrange.begin;
  Addr end = vrange.end;
  auto it = advised_.upper_bound(begin);
  if (it != advised_.begin() && std::prev(it)->second >= begin) {
    --it;
    begin = it->first;
  }
  while (it != advised_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = advised_.erase(it);
  }
  advised_[begin] = end;
}

PageTable::RangeTranslation PageTable::translate_range(const AddrRange& vrange) {
  RangeTranslation out;
  if (vrange.empty()) return out;
  const Addr ps = cfg_.page_size;
  Addr va = align_down(vrange.begin, ps);
  const Addr va_end = align_up(vrange.end, ps);
  AddrRange current{0, 0};
  while (va < va_end) {
    const PageMapping m = touch_page(va);
    ++out.pages_walked;
    const Addr seg_end = std::min(va_end, m.va_base + m.span);
    // Clip the physical piece to the byte bounds of the virtual range.
    const Addr lo = std::max(va, vrange.begin);
    const Addr hi = std::min(seg_end, vrange.end);
    const Addr piece_begin = m.pa_base + (lo - m.va_base);
    const Addr piece_end = m.pa_base + (hi - m.va_base);
    if (!current.empty() && current.end == piece_begin) {
      current.end = piece_end;  // physically contiguous: collapse
    } else {
      if (!current.empty()) out.physical_pieces.push_back(current);
      current = AddrRange{piece_begin, piece_end};
    }
    va = seg_end;
  }
  if (!current.empty()) out.physical_pieces.push_back(current);
  return out;
}

std::uint64_t PageTable::pages_of(Addr span) const {
  std::uint64_t n = 0;
  for (const auto& [base, m] : vm_map_)
    if (m.span == span) ++n;
  return n;
}

}  // namespace tdn::mem
