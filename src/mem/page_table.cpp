#include "mem/page_table.hpp"

#include "common/require.hpp"

namespace tdn::mem {

PageTable::PageTable(PageTableConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  TDN_REQUIRE(is_pow2(cfg_.page_size), "page size must be a power of two");
  TDN_REQUIRE(cfg_.fragmentation >= 0.0 && cfg_.fragmentation <= 1.0,
              "fragmentation must be in [0,1]");
}

Addr PageTable::allocate_frame() {
  // Fragmentation injection: occasionally put a frame aside and hand out the
  // next one, so consecutively touched virtual pages get non-adjacent frames.
  if (cfg_.fragmentation > 0.0 && rng_.next_double() < cfg_.fragmentation) {
    skipped_frames_.push_back(next_frame_++);
  } else if (!skipped_frames_.empty() && rng_.next_double() < 0.5) {
    const Addr frame = skipped_frames_.back();
    skipped_frames_.pop_back();
    return frame;
  }
  return next_frame_++;
}

Addr PageTable::translate(Addr vaddr) {
  const Addr vpage = vaddr / cfg_.page_size;
  auto [it, inserted] = va_to_pa_.try_emplace(vpage, 0);
  if (inserted) it->second = allocate_frame();
  return it->second * cfg_.page_size + (vaddr & (cfg_.page_size - 1));
}

bool PageTable::try_translate(Addr vaddr, Addr& paddr) const {
  const Addr vpage = vaddr / cfg_.page_size;
  auto it = va_to_pa_.find(vpage);
  if (it == va_to_pa_.end()) return false;
  paddr = it->second * cfg_.page_size + (vaddr & (cfg_.page_size - 1));
  return true;
}

PageTable::RangeTranslation PageTable::translate_range(const AddrRange& vrange) {
  RangeTranslation out;
  if (vrange.empty()) return out;
  const Addr ps = cfg_.page_size;
  Addr va = align_down(vrange.begin, ps);
  const Addr va_end = align_up(vrange.end, ps);
  AddrRange current{0, 0};
  for (; va < va_end; va += ps) {
    const Addr pa_page = translate(va);
    ++out.pages_walked;
    // Clip the physical piece to the byte bounds of the virtual range.
    const Addr piece_begin = pa_page + (va < vrange.begin ? vrange.begin - va : 0);
    const Addr piece_end =
        pa_page + (va + ps > vrange.end ? vrange.end - va : ps);
    if (!current.empty() && current.end == piece_begin) {
      current.end = piece_end;  // physically contiguous: collapse
    } else {
      if (!current.empty()) out.physical_pieces.push_back(current);
      current = AddrRange{piece_begin, piece_end};
    }
  }
  if (!current.empty()) out.physical_pieces.push_back(current);
  return out;
}

}  // namespace tdn::mem
