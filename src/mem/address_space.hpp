// VirtualSpace — a bump allocator for workload data regions in the simulated
// virtual address space. Workloads allocate their matrices / buffers here and
// pass the resulting ranges to the runtime as task dependencies.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace tdn::mem {

/// Base of the simulated heap; anything below is reserved (null page, code).
inline constexpr Addr kHeapBase = 0x1000'0000;

class VirtualSpace {
 public:
  explicit VirtualSpace(Addr base = kHeapBase) : next_(base), base_(base) {}

  /// Allocate @p bytes aligned to @p align (power of two, >= 64).
  /// The returned range is never recycled; workloads build their whole
  /// footprint once.
  AddrRange allocate(Addr bytes, Addr align = 64, std::string name = {});

  /// Total bytes handed out so far.
  Addr footprint() const noexcept { return next_ - base_; }

  struct NamedRange {
    AddrRange range;
    std::string name;
  };
  const std::vector<NamedRange>& regions() const noexcept { return regions_; }

 private:
  Addr next_;
  Addr base_;
  std::vector<NamedRange> regions_;
};

}  // namespace tdn::mem
