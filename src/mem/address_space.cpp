#include "mem/address_space.hpp"

#include "common/require.hpp"

namespace tdn::mem {

AddrRange VirtualSpace::allocate(Addr bytes, Addr align, std::string name) {
  TDN_REQUIRE(bytes > 0, "cannot allocate zero bytes");
  TDN_REQUIRE(is_pow2(align) && align >= 64,
              "alignment must be a power of two >= one cache line");
  const Addr begin = align_up(next_, align);
  next_ = begin + bytes;
  AddrRange r{begin, next_};
  regions_.push_back({r, std::move(name)});
  return r;
}

}  // namespace tdn::mem
