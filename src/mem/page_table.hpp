// Page table + first-touch physical page allocator.
//
// The allocator can inject physical fragmentation: with fragmentation > 0,
// consecutive virtual pages are deliberately given non-consecutive physical
// frames some of the time. This matters for TD-NUCA because the RRT collapses
// contiguous physical pages into one entry (paper Fig. 5); fragmented
// dependencies need multiple RRT entries and create the occupancy pressure
// discussed in Sec. V-E.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace tdn::mem {

struct PageTableConfig {
  Addr page_size = 4 * kKiB;
  /// Probability that the allocator breaks physical contiguity on the next
  /// first-touch allocation (0 = fully contiguous, 1 = every page random).
  double fragmentation = 0.15;
  std::uint64_t seed = 0x7dfca150'9e21b4c3ull;
};

class PageTable {
 public:
  explicit PageTable(PageTableConfig cfg = {});

  Addr page_size() const noexcept { return cfg_.page_size; }

  /// Translate a virtual address; allocates the physical frame on first
  /// touch (Linux default allocator behaviour).
  Addr translate(Addr vaddr);

  /// Translate without allocating; returns false if the page is unmapped.
  bool try_translate(Addr vaddr, Addr& paddr) const;

  /// Translate a whole virtual range into maximal physically-contiguous
  /// pieces — exactly the iterative collapse the tdnuca_register instruction
  /// performs. Allocates frames on first touch. Also reports how many page
  /// translations (TLB lookups) the iteration needed.
  struct RangeTranslation {
    std::vector<AddrRange> physical_pieces;
    std::uint64_t pages_walked = 0;
  };
  RangeTranslation translate_range(const AddrRange& vrange);

  std::uint64_t mapped_pages() const noexcept { return va_to_pa_.size(); }
  std::uint64_t frames_used() const noexcept { return next_frame_; }

  // --- checkpoint/restore (tdn::ckpt) ----------------------------------
  /// The allocator's derived-PRNG position plus frame bookkeeping — the
  /// part of page-table state that is NOT reconstructible from the request
  /// stream (fragmentation decisions consumed PRNG samples). Snapshotted
  /// verbatim so a restored run's first-touch allocations continue the
  /// exact sample sequence the uninterrupted run would have drawn.
  struct AllocState {
    std::uint64_t next_frame = 0;
    std::uint64_t rng_state = 0;
    std::vector<std::uint64_t> skipped_frames;
  };
  AllocState alloc_state() const {
    return AllocState{next_frame_, rng_.state(), skipped_frames_};
  }
  void set_alloc_state(const AllocState& s) {
    next_frame_ = s.next_frame;
    rng_.set_state(s.rng_state);
    skipped_frames_ = s.skipped_frames;
  }
  /// Drop every VA→PA mapping but keep the allocator position (see
  /// AllocState). Checkpoint cold-normalization: retired requests' private
  /// regions must not alias live ones after restore, and the continuing
  /// lineage performs the same drop so both re-map identically.
  void ckpt_drop_mappings() { va_to_pa_.clear(); }

 private:
  Addr allocate_frame();

  PageTableConfig cfg_;
  std::unordered_map<Addr, Addr> va_to_pa_;  // vpage number -> pframe number
  std::uint64_t next_frame_ = 0;
  SplitMix64 rng_;
  /// Frames skipped by fragmentation injection, reusable later (keeps the
  /// physical footprint bounded).
  std::vector<std::uint64_t> skipped_frames_;
};

}  // namespace tdn::mem
