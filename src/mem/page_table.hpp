// Page table + physical page allocator.
//
// Two allocation models share this interface:
//
//  * Legacy (vm disabled, the default): first-touch 4K pages with PRNG
//    fragmentation injection — with fragmentation > 0, consecutive virtual
//    pages are deliberately given non-consecutive physical frames some of
//    the time. This matters for TD-NUCA because the RRT collapses contiguous
//    physical pages into one entry (paper Fig. 5); fragmented dependencies
//    need multiple RRT entries and create the occupancy pressure discussed
//    in Sec. V-E.
//
//  * tdn::vm (vm.enabled): multi-size pages (4K/2M/1G) backed by a
//    contiguity-aware buddy allocator, with THP-style promotion policies
//    (never/always/madvise — the runtime issues the madvise-like hint per
//    dependency region at tdnuca_register time via advise_huge()). A 2M
//    page collapses 512 translate_range iterations into one, which is the
//    RRT-registration ablation docs/memory.md describes.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "vm/buddy_allocator.hpp"
#include "vm/config.hpp"

namespace tdn::mem {

struct PageTableConfig {
  Addr page_size = 4 * kKiB;
  /// Probability that the allocator breaks physical contiguity on the next
  /// first-touch allocation (0 = fully contiguous, 1 = every page random).
  /// Legacy mode only; vm mode fragments the physical pool instead
  /// (vm::VmConfig::fragmentation).
  double fragmentation = 0.15;
  std::uint64_t seed = 0x7dfca150'9e21b4c3ull;
};

class PageTable {
 public:
  explicit PageTable(PageTableConfig cfg = {}, vm::VmConfig vm = {});

  /// Base (smallest) page size. Huge pages are multiples of this.
  Addr page_size() const noexcept { return cfg_.page_size; }
  bool vm_enabled() const noexcept { return vm_.enabled; }
  const vm::VmConfig& vm_config() const noexcept { return vm_; }
  /// True when the runtime should issue madvise-like huge-page hints.
  bool vm_madvise() const noexcept {
    return vm_.enabled && vm_.thp == vm::ThpPolicy::Madvise;
  }

  /// One established VA->PA mapping (legacy mappings are base-page sized).
  struct PageMapping {
    Addr va_base = 0;
    Addr pa_base = 0;
    Addr span = 0;
  };

  /// Mapping covering @p vaddr, allocating it on first touch (Linux
  /// first-touch behaviour; in vm mode the THP policy decides the size).
  PageMapping touch_page(Addr vaddr);

  /// Translate a virtual address; allocates on first touch.
  Addr translate(Addr vaddr);

  /// Translate without allocating; returns false if the page is unmapped.
  bool try_translate(Addr vaddr, Addr& paddr) const;

  /// Base VA of the page covering @p vaddr. For an unmapped vm-mode address
  /// this falls back to base-page alignment (callers on the demand path
  /// always translate first, so their pages are mapped).
  Addr page_base(Addr vaddr) const;
  /// Size of the page covering @p vaddr (same fallback).
  Addr page_span(Addr vaddr) const;

  /// Madvise-like hint: subsequent first touches inside @p vrange may be
  /// backed by huge pages (vm mode with ThpPolicy::Madvise; no-op
  /// otherwise). A huge page is used only when its aligned span lies fully
  /// inside the advised union.
  void advise_huge(const AddrRange& vrange);

  /// Translate a whole virtual range into maximal physically-contiguous
  /// pieces — exactly the iterative collapse the tdnuca_register instruction
  /// performs. Allocates frames on first touch. Also reports how many page
  /// translations (TLB lookups) the iteration needed; one huge page is one
  /// iteration, which is where vm mode collapses RRT registration cost.
  struct RangeTranslation {
    std::vector<AddrRange> physical_pieces;
    std::uint64_t pages_walked = 0;
  };
  RangeTranslation translate_range(const AddrRange& vrange);

  std::uint64_t mapped_pages() const noexcept {
    return vm_.enabled ? vm_map_.size() : va_to_pa_.size();
  }
  std::uint64_t frames_used() const noexcept {
    return vm_.enabled ? buddy_.frames_allocated() : next_frame_;
  }
  /// Currently mapped pages of the given span (vm mode; 0 otherwise).
  std::uint64_t pages_of(Addr span) const;
  /// First touches where a policy-eligible huge page could not be backed
  /// (punctured pool or VA-range conflict) and a smaller size was used.
  std::uint64_t huge_fallbacks() const noexcept { return huge_fallbacks_; }
  std::uint64_t punctured_frames() const noexcept {
    return buddy_.punctured_frames();
  }

  // --- checkpoint/restore (tdn::ckpt) ----------------------------------
  /// The allocator's derived-PRNG position plus frame bookkeeping — the
  /// part of page-table state that is NOT reconstructible from the request
  /// stream (fragmentation decisions consumed PRNG samples). Snapshotted
  /// verbatim so a restored run's first-touch allocations continue the
  /// exact sample sequence the uninterrupted run would have drawn. In vm
  /// mode `vm_words` carries the buddy allocator (free lists + PRNG) in the
  /// same spirit; it is empty for legacy snapshots.
  struct AllocState {
    std::uint64_t next_frame = 0;
    std::uint64_t rng_state = 0;
    std::vector<std::uint64_t> skipped_frames;
    std::vector<std::uint64_t> vm_words;
  };
  AllocState alloc_state() const {
    AllocState s{next_frame_, rng_.state(), skipped_frames_, {}};
    if (vm_.enabled) s.vm_words = buddy_.serialize();
    return s;
  }
  void set_alloc_state(const AllocState& s) {
    next_frame_ = s.next_frame;
    rng_.set_state(s.rng_state);
    skipped_frames_ = s.skipped_frames;
    if (vm_.enabled) buddy_.restore(s.vm_words);
  }
  /// Drop every VA→PA mapping (and pending huge-page advice) but keep the
  /// allocator position (see AllocState). Checkpoint cold-normalization:
  /// retired requests' private regions must not alias live ones after
  /// restore, and the continuing lineage performs the same drop so both
  /// re-map identically.
  void ckpt_drop_mappings() {
    va_to_pa_.clear();
    vm_map_.clear();
    advised_.clear();
  }
  /// Reset monotonic allocator counters (checkpoint counter folding).
  void ckpt_reset_stats() { huge_fallbacks_ = 0; }

 private:
  Addr allocate_frame();
  /// vm mode: mapping covering @p vaddr, or nullptr.
  const PageMapping* find_mapping(Addr vaddr) const;
  bool huge_candidate(Addr va_base, Addr span) const;

  PageTableConfig cfg_;
  vm::VmConfig vm_;

  // Legacy-mode state.
  std::unordered_map<Addr, Addr> va_to_pa_;  // vpage number -> pframe number
  std::uint64_t next_frame_ = 0;
  SplitMix64 rng_;
  /// Frames skipped by fragmentation injection, reusable later (keeps the
  /// physical footprint bounded).
  std::vector<std::uint64_t> skipped_frames_;

  // vm-mode state. Ordered by va_base so coverage lookup is one
  // upper_bound and iteration order is deterministic.
  std::map<Addr, PageMapping> vm_map_;
  std::map<Addr, Addr> advised_;  // merged advice intervals, begin -> end
  vm::BuddyAllocator buddy_;
  std::uint64_t huge_fallbacks_ = 0;
};

}  // namespace tdn::mem
