// Per-core data TLB model: fully associative, true-LRU, as in the paper's
// gem5 configuration (64 entries, 1-cycle access). Used both on the demand
// access path and by the iterative VA->PA translation that the tdnuca_register
// / invalidate / flush instructions perform.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.hpp"
#include "stats/counters.hpp"

namespace tdn::mem {

struct TlbConfig {
  unsigned entries = 64;
  Cycle hit_latency = 1;
  /// Page-walk cost on a TLB miss: an x86 hardware walker with warm
  /// paging-structure caches resolves most walks in a couple of memory
  /// accesses.
  Cycle miss_penalty = 24;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig cfg = {}, Addr page_size = 4 * kKiB);

  /// Look up the page of @p vaddr; updates LRU and fills on miss.
  /// Returns the access latency (hit_latency or hit_latency + miss_penalty).
  Cycle access(Addr vaddr);

  /// Drop the entry for the page containing @p vaddr (TLB shootdown).
  void invalidate_page(Addr vaddr);
  void invalidate_all();
  /// Drop every entry WITHOUT counting shootdowns — checkpoint cold
  /// normalization is a simulation artifact, not an architectural event,
  /// and the count must not depend on occupancy at the fold (a restored
  /// lineage's TLB is empty where the continuing one's was warm).
  void ckpt_cold_reset() {
    lru_.clear();
    map_.clear();
  }

  bool contains(Addr vaddr) const;
  std::uint64_t hits() const noexcept { return hits_.value(); }
  std::uint64_t misses() const noexcept { return misses_.value(); }
  std::uint64_t shootdowns() const noexcept { return shootdowns_.value(); }
  /// Zero the counters (checkpoint counter folding); entries are untouched.
  void ckpt_reset_stats() noexcept {
    hits_.reset();
    misses_.reset();
    shootdowns_.reset();
  }

 private:
  TlbConfig cfg_;
  Addr page_size_;
  // LRU list front = most recent; map vpage -> list iterator.
  std::list<Addr> lru_;
  std::unordered_map<Addr, std::list<Addr>::iterator> map_;
  stats::Counter hits_;
  stats::Counter misses_;
  stats::Counter shootdowns_;
};

}  // namespace tdn::mem
