// CoherentSystem — the full cache hierarchy of one tiled CMP:
// per-tile private L1s, a banked shared NUCA LLC with a colocated directory,
// and the coherence protocol connecting them over the NoC.
//
// Protocol: directory-based MESI in the paper's "blocking states, silent
// evictions" style —
//   * L1 lines are S (clean shared) or M (exclusive dirty). Reads install S,
//     writes obtain M via GetX / upgrade. Clean evictions are silent, so the
//     directory may hold stale sharer bits; invalidations to non-holders are
//     acknowledged without data (standard for silent-eviction MESI).
//   * One transaction in flight per block per bank (blocking directory);
//     later requests queue behind it.
//   * The LLC is inclusive: the directory entry lives with the LLC line, and
//     LLC evictions back-invalidate L1 copies.
//   * TD-NUCA bypass transactions go straight to the memory controller and
//     install in the L1 without touching LLC or directory (paper
//     Sec. III-B3); the runtime's eager flushes guarantee exclusivity.
//
// The NUCA mapping policy is consulted on every L1 miss and writeback to pick
// the destination bank (or bypass), exactly where the paper places the RRT
// lookup.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hpp"
#include "cache/mshr.hpp"
#include "coherence/config.hpp"
#include "common/tile_mask.hpp"
#include "common/types.hpp"
#include "fault/health.hpp"
#include "mem/dram.hpp"
#include "noc/network.hpp"
#include "nuca/mapping.hpp"
#include "sim/event_queue.hpp"
#include "sim/joiner.hpp"
#include "sim/sharded_event_queue.hpp"
#include "stats/counters.hpp"

namespace tdn::obs {
class Recorder;
class LatencyAttribution;
}

namespace tdn::coherence {

/// Per-line private cache state.
struct L1Meta {
  enum class State : std::uint8_t { S, M };
  State state = State::S;
  bool dirty = false;
  /// Bank the line was served from; kInvalidBank marks an LLC-bypassed line
  /// whose home is memory.
  BankId home = kInvalidBank;
};

/// Per-line LLC state with the colocated directory entry.
struct LlcMeta {
  bool dirty = false;
  CoreId owner = kInvalidCore;  ///< L1 holding the line in M, if any
  CoreMask sharers;             ///< L1s that fetched the line (may be stale)
  /// App that installed the line (tdn::multi occupancy accounting); 0 when
  /// no app view is attached.
  std::uint8_t app = 0;
};

class CoherentSystem final : public nuca::CacheOps {
 public:
  /// @p rec (optional) receives flush spans and coherence-transaction
  /// instants; it observes only and never alters timing.
  CoherentSystem(sim::EventQueue& eq, noc::Network& net, const noc::Mesh& mesh,
                 mem::MemControllers& mcs, nuca::MappingPolicy& policy,
                 HierarchyConfig cfg, unsigned num_cores,
                 obs::Recorder* rec = nullptr);

  // --- core-facing demand path ---------------------------------------
  /// Perform one memory reference. @p done receives the cycle at which the
  /// reference completes; for L1 hits it is invoked synchronously.
  void access(CoreId core, Addr vaddr, Addr paddr, AccessKind kind,
              std::function<void(Cycle done_at)> done);

  // --- CacheOps (flushes driven by policies / the runtime) ------------
  void flush_l1_range(CoreMask cores, const AddrRange& prange,
                      std::function<void()> done) override;
  void flush_llc_range(BankMask banks, const AddrRange& prange,
                       std::function<void()> done) override;
  Cycle now() const override { return eq_.now(); }

  // --- fault injection / graceful degradation --------------------------
  /// Attach the shared resource-health view. Null (the default) keeps every
  /// path identical to the fault-free protocol.
  void set_health(const fault::HealthState* health) { health_ = health; }

  // --- sharded execution (sim::ShardedEventQueue) -----------------------
  /// Attach a sharded engine: continuations that logically run at a remote
  /// tile (bank service, memory-controller ready, core-side launch) are
  /// scheduled through schedule_tile, which routes them over the engine's
  /// per-edge channels when the target tile lives outside @p home_domain.
  /// Today the whole machine occupies one domain, so every schedule stays
  /// local and serial-identical; the helper marks the decomposition
  /// boundary for per-tile sharding (ROADMAP item 1 follow-on).
  void set_shard(sim::ShardedEventQueue* engine, const noc::DomainMap* map,
                 sim::DomainId home_domain) {
    shard_ = engine;
    dmap_ = map;
    home_domain_ = home_domain;
  }
  /// Drain a failed bank: back-invalidate tracked L1 copies, write dirty
  /// lines to memory and empty the array. Lines with an in-flight
  /// transaction are evacuated when the transaction unblocks.
  void evacuate_bank(BankId bank);

  // --- statistics ------------------------------------------------------
  struct Stats {
    stats::Counter l1_hits;
    stats::Counter l1_misses;
    stats::Counter llc_requests;   ///< GetS+GetX+upgrades arriving at banks
    stats::Counter llc_hits;
    stats::Counter llc_misses;
    stats::Counter llc_writebacks;  ///< PutM arriving at banks
    stats::Counter llc_evictions;
    stats::Counter bypass_reads;
    stats::Counter bypass_writebacks;
    stats::Counter invalidations_sent;
    stats::Counter back_invalidations;
    stats::Counter flush_l1_lines;
    stats::Counter flush_llc_lines;
    stats::Counter flush_writebacks;
    stats::Counter mshr_stalls;
    stats::Sampled nuca_distance;     ///< hops, demand requests only
    stats::Sampled miss_latency;      ///< cycles from L1 miss to fill
  };
  const Stats& stats() const noexcept { return stats_; }
  /// Total accesses arriving at the LLC banks (requests + writebacks) —
  /// the Fig. 9 metric.
  std::uint64_t llc_accesses() const noexcept {
    return stats_.llc_requests.value() + stats_.llc_writebacks.value();
  }
  double llc_hit_ratio() const noexcept {
    const double h = static_cast<double>(stats_.llc_hits.value());
    const double m = static_cast<double>(stats_.llc_misses.value());
    return (h + m) > 0 ? h / (h + m) : 0.0;
  }
  /// Cycles each core's flush engine spent scanning (Sec. V-E overhead).
  Cycle flush_busy_cycles(CoreId core) const { return l1s_.at(core).flush_busy; }
  std::uint64_t llc_resident_lines() const;
  /// Evictions forced onto a pinned (in-flight) line because every way in
  /// the allocation window was pinned — summed over all L1s and LLC banks.
  /// Nonzero values flag a protocol hazard (narrow way quotas make it
  /// reachable); see cache::CacheArray::allocate.
  std::uint64_t forced_unsafe_evictions() const;

  /// Per-bank request breakdown — always accounted (it feeds the Registry's
  /// llc.bankN.* keys, the obs epoch sampler and the bank heatmap).
  struct BankCounters {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
  };
  const BankCounters& bank_counters(BankId bank) const {
    return banks_.at(bank).counters;
  }
  std::uint64_t bank_occupied_lines(BankId bank) const {
    return banks_.at(bank).array.occupied_lines();
  }
  std::uint64_t bank_capacity_lines() const {
    return cfg_.llc_bank.size_bytes / cfg_.llc_bank.line_size;
  }
  /// Misses still in flight in @p core's MSHR file (invariant checking:
  /// must be zero once the simulation has drained).
  std::uint64_t mshr_outstanding(CoreId core) const {
    return l1s_.at(core).mshr.outstanding();
  }
  /// Lines with an open (blocking-directory) transaction at @p bank.
  std::uint64_t bank_blocked_lines(BankId bank) const {
    return banks_.at(bank).blocked.size();
  }

  unsigned num_cores() const noexcept { return num_cores_; }
  const HierarchyConfig& config() const noexcept { return cfg_; }

  // --- multiprogram view (tdn::multi) ----------------------------------
  /// Per-app LLC way quota inside every set; count == 0 means "all ways"
  /// (bank/cluster partitioning only, no way partitioning).
  struct WayRange {
    unsigned first = 0;
    unsigned count = 0;
  };
  /// Maps each core to the colocated app it belongs to and (optionally)
  /// gives each app a CAT-style way quota. Attaching a view enables per-app
  /// request/hit/miss/writeback counters, the LlcMeta app tag and per-bank
  /// cross-app conflict counting. With no view attached (num_apps == 0,
  /// the default) every path is bit-identical to the single-program system.
  struct AppView {
    std::vector<std::uint8_t> core_app;  ///< core id -> app index
    unsigned num_apps = 0;
    std::vector<WayRange> ways;  ///< per-app quota; may be empty
  };
  void set_app_view(AppView view);
  bool app_view_active() const noexcept { return view_.num_apps > 0; }

  struct AppCounters {
    std::uint64_t llc_requests = 0;
    std::uint64_t llc_hits = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t llc_writebacks = 0;
    std::uint64_t bypass_reads = 0;
  };
  const AppCounters& app_counters(unsigned app) const {
    return app_counters_.at(app);
  }
  /// Times a request found its bank busy servicing (or queued behind) a
  /// request from a *different* app — the interference signal the colocation
  /// benchmarks report per bank and in aggregate.
  std::uint64_t bank_cross_app_conflicts(BankId bank) const {
    return banks_.at(bank).cross_app_conflicts;
  }
  std::uint64_t cross_app_conflicts() const;
  /// LLC lines currently resident that @p app installed (occupancy series).
  std::uint64_t app_resident_lines(unsigned app) const;
  std::uint64_t app_resident_lines(unsigned app, BankId bank) const;

  // --- checkpoint cold-normalization (tdn::ckpt) ------------------------
  /// At a quiescent checkpoint boundary (no in-flight transaction anywhere)
  /// return the hierarchy to its post-construction state: every L1 and LLC
  /// bank array emptied, replacement trees rewound, bank service horizons
  /// and per-bank app affinity cleared. Run in BOTH lineages — the
  /// continuing run and the restored run — so "continue after the fold" and
  /// "rebuild from the snapshot" are the same machine by construction.
  /// Refuses (TDN_REQUIRE) if any MSHR entry or blocked-directory line is
  /// still live: that means quiescence detection was wrong, and snapshotting
  /// would tear a transaction.
  void ckpt_cold_reset() {
    for (auto& l1 : l1s_) {
      TDN_REQUIRE(l1.mshr.outstanding() == 0,
                  "ckpt_cold_reset: MSHR entries still in flight");
      l1.array.reset_all();
      l1.flush_busy = 0;
    }
    for (auto& bank : banks_) {
      TDN_REQUIRE(bank.blocked.empty(),
                  "ckpt_cold_reset: blocked directory lines still live");
      bank.array.reset_all();
      bank.next_free = 0;
      bank.last_app = kNoApp;
    }
  }
  /// Fold-and-reset every hierarchy statistic (aggregate Stats, per-bank
  /// breakdown, per-app counters). The caller folds the emitted values into
  /// its baseline first; see serve::ServeSystem checkpoint fold.
  void ckpt_reset_stats() {
    stats_ = Stats{};
    for (auto& bank : banks_) {
      bank.counters = BankCounters{};
      bank.cross_app_conflicts = 0;
    }
    for (auto& ac : app_counters_) ac = AppCounters{};
  }

 private:
  struct L1 {
    explicit L1(const HierarchyConfig& cfg)
        : array(cfg.l1), mshr(cfg.l1_mshrs) {}
    cache::CacheArray<L1Meta> array;
    cache::MshrFile mshr;
    Cycle flush_busy = 0;
  };
  struct Bank {
    explicit Bank(const HierarchyConfig& cfg) : array(cfg.llc_bank) {}
    cache::CacheArray<LlcMeta> array;
    BankCounters counters;
    Cycle next_free = 0;
    std::uint64_t cross_app_conflicts = 0;  ///< see bank_cross_app_conflicts
    std::uint8_t last_app = 0xff;  ///< app of the last accepted request
    /// Blocking directory: blocked[line] holds actions to replay once the
    /// in-flight transaction on that line completes. Inline callables: a
    /// queued request costs no allocation (see sim/inline_function.hpp).
    std::unordered_map<Addr, std::deque<sim::Action>> blocked;
  };

  Addr line_of(Addr a) const { return align_down(a, cfg_.l1.line_size); }

  void access_internal(CoreId core, Addr vaddr, Addr paddr, AccessKind kind,
                       std::function<void(Cycle)> done, bool replay);
  void start_miss(CoreId core, Addr vaddr, Addr line, AccessKind kind,
                  Cycle issued_at, std::function<void(Cycle)> done);
  /// (Re-)register a prepared on_fill callback with @p core's MSHR file,
  /// launching the transaction on NewEntry and backing off on Full. The
  /// callback is never dropped: MshrFile guarantees it is left intact on
  /// Outcome::Full, and this helper re-queues it until it registers.
  void register_miss_or_retry(CoreId core, Addr vaddr, Addr line,
                              AccessKind kind, Cycle issued_at,
                              std::function<void()> on_fill);
  void launch_transaction(CoreId core, Addr vaddr, Addr line, AccessKind kind,
                          Cycle issued_at);
  /// Home bank for page-table lines (vaddr >= kKernelBase): static
  /// interleave over all banks, degraded to the healthy set under faults —
  /// kernel structures never route through the workload-facing policies.
  nuca::MapDecision kernel_map(Addr line) const;
  void bank_request(BankId bank, CoreId requester, Addr line, AccessKind kind);
  void bank_respond_read(BankId bank, CoreId requester, Addr line);
  void bank_respond_write(BankId bank, CoreId requester, Addr line);
  void bank_fetch_from_memory(BankId bank, CoreId requester, Addr line,
                              AccessKind kind);
  void bank_install(BankId bank, CoreId requester, Addr line);
  void bank_unblock(BankId bank, Addr line);
  void bank_writeback(BankId bank, CoreId from, Addr line);

  /// Install a fill in the requester's L1 and replay merged misses.
  void l1_fill(CoreId core, Addr line, L1Meta meta);
  /// Evict an L1 victim (writeback if dirty).
  void l1_evict_victim(CoreId core, Addr line, const L1Meta& meta);
  /// Handle an invalidation arriving at an L1 (from GetX or back-inval).
  /// Returns true if a dirty copy was written back.
  bool l1_invalidate(CoreId core, Addr line, bool writeback_to_memory);

  void bypass_fetch(CoreId core, Addr line, AccessKind kind, Cycle issued_at);
  void memory_writeback(CoreId from_tile, Addr line);
  /// Bounce a request that reached a dead bank onto the healthy-set home,
  /// releasing this bank's block on the line.
  void bounce_request(BankId bank, CoreId requester, Addr line,
                      AccessKind kind);
  /// Schedule @p fn to run at absolute cycle @p when *at @p tile*: through
  /// the engine's channels when the tile's domain differs from the
  /// scheduling context's, else a plain (serial-identical) schedule.
  void schedule_tile(CoreId tile, Cycle when, sim::Action fn);
  void evacuate_line(BankId bank, Addr la, const LlcMeta& m);
  void flush_llc_line_now(BankId bank, Addr la, const LlcMeta& m,
                          const std::shared_ptr<sim::Joiner>& join,
                          Cycle delay);

  sim::EventQueue& eq_;
  noc::Network& net_;
  const noc::Mesh& mesh_;
  mem::MemControllers& mcs_;
  nuca::MappingPolicy& policy_;
  HierarchyConfig cfg_;
  unsigned num_cores_;
  obs::Recorder* rec_;
  /// Latency-attribution sink; null unless the recorder enables it. Stamp
  /// sites are single null tests and never alter timing (docs §attribution).
  obs::LatencyAttribution* attr_;
  const fault::HealthState* health_ = nullptr;
  sim::ShardedEventQueue* shard_ = nullptr;
  const noc::DomainMap* dmap_ = nullptr;
  sim::DomainId home_domain_ = 0;

  static constexpr std::uint8_t kNoApp = 0xff;
  std::uint8_t app_of(CoreId core) const {
    return view_.num_apps > 0 ? view_.core_app[core] : kNoApp;
  }
  /// Way quota of @p core's app ({0, 0} = whole set).
  WayRange way_quota(CoreId core) const;

  std::vector<L1> l1s_;
  std::vector<Bank> banks_;
  Stats stats_;
  AppView view_;
  std::vector<AppCounters> app_counters_;
};

}  // namespace tdn::coherence
