#include "coherence/coherent_system.hpp"

#include <sstream>

#include "noc/domain_map.hpp"
#include "obs/recorder.hpp"
#include "sim/joiner.hpp"

namespace tdn::coherence {

using noc::MsgClass;

CoherentSystem::CoherentSystem(sim::EventQueue& eq, noc::Network& net,
                               const noc::Mesh& mesh, mem::MemControllers& mcs,
                               nuca::MappingPolicy& policy, HierarchyConfig cfg,
                               unsigned num_cores, obs::Recorder* rec)
    : eq_(eq), net_(net), mesh_(mesh), mcs_(mcs), policy_(policy), cfg_(cfg),
      num_cores_(num_cores), rec_(rec),
      attr_(rec != nullptr ? rec->attribution() : nullptr) {
  TDN_REQUIRE(num_cores_ > 0 && num_cores_ <= mesh.tiles(),
              "core count must fit the mesh");
  // Skip the bank-interleave bits when indexing sets inside a bank; see
  // CacheGeometry::set_index_shift.
  if (is_pow2(num_cores_) && cfg_.llc_bank.set_index_shift == 0)
    cfg_.llc_bank.set_index_shift = log2_exact(num_cores_);
  l1s_.reserve(num_cores_);
  banks_.reserve(num_cores_);
  for (unsigned i = 0; i < num_cores_; ++i) {
    l1s_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
  policy_.set_ops(this);
}

std::uint64_t CoherentSystem::llc_resident_lines() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.array.occupied_lines();
  return n;
}

std::uint64_t CoherentSystem::forced_unsafe_evictions() const {
  std::uint64_t n = 0;
  for (const auto& l1 : l1s_) n += l1.array.forced_unsafe_evictions();
  for (const auto& b : banks_) n += b.array.forced_unsafe_evictions();
  return n;
}

// --------------------------------------------------------------------------
// Multiprogram view (tdn::multi)
// --------------------------------------------------------------------------

void CoherentSystem::set_app_view(AppView view) {
  TDN_REQUIRE(view.num_apps > 0, "app view needs at least one app");
  TDN_REQUIRE(view.core_app.size() == num_cores_,
              "app view must map every core");
  for (std::uint8_t a : view.core_app)
    TDN_REQUIRE(a < view.num_apps, "core mapped to an out-of-range app");
  TDN_REQUIRE(view.ways.empty() || view.ways.size() == view.num_apps,
              "way quotas must cover every app (or be empty)");
  for (const WayRange& w : view.ways)
    TDN_REQUIRE(w.first + w.count <= cfg_.llc_bank.associativity,
                "way quota exceeds LLC associativity");
  view_ = std::move(view);
  app_counters_.assign(view_.num_apps, AppCounters{});
}

CoherentSystem::WayRange CoherentSystem::way_quota(CoreId core) const {
  if (view_.num_apps == 0 || view_.ways.empty()) return WayRange{};
  return view_.ways[view_.core_app[core]];
}

std::uint64_t CoherentSystem::cross_app_conflicts() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.cross_app_conflicts;
  return n;
}

std::uint64_t CoherentSystem::app_resident_lines(unsigned app,
                                                 BankId bank) const {
  std::uint64_t n = 0;
  banks_.at(bank).array.for_each_valid([&](Addr, const LlcMeta& m) {
    if (m.app == app) ++n;
  });
  return n;
}

std::uint64_t CoherentSystem::app_resident_lines(unsigned app) const {
  std::uint64_t n = 0;
  for (BankId b = 0; b < banks_.size(); ++b) n += app_resident_lines(app, b);
  return n;
}

// --------------------------------------------------------------------------
// Demand path
// --------------------------------------------------------------------------

void CoherentSystem::access(CoreId core, Addr vaddr, Addr paddr,
                            AccessKind kind,
                            std::function<void(Cycle)> done) {
  access_internal(core, vaddr, paddr, kind, std::move(done),
                  /*replay=*/false);
}

void CoherentSystem::access_internal(CoreId core, Addr vaddr, Addr paddr,
                                     AccessKind kind,
                                     std::function<void(Cycle)> done,
                                     bool replay) {
  // Page-walker PTE loads (kernel physical region) stay out of the NUCA
  // policies' page-classification machinery: hardware walkers bypass the
  // OS page-grain bookkeeping, and a kernel address would poison R-NUCA's
  // per-page state machine and TD-NUCA's RRT lookups.
  const bool kernel = vaddr >= kKernelBase;
  const Cycle hook_lat =
      (replay || kernel) ? 0 : policy_.on_access(core, vaddr, kind);
  const Addr line = line_of(paddr);
  L1& l1 = l1s_[core];
  auto* ln = l1.array.find(line);
  if (ln != nullptr) {
    if (kind == AccessKind::Write && ln->meta.state == L1Meta::State::S &&
        ln->meta.home != kInvalidBank) {
      // Write hit on a shared line: needs an upgrade transaction.
      if (!replay) stats_.l1_misses.inc();
      start_miss(core, vaddr, line, kind, eq_.now(), std::move(done));
      return;
    }
    if (!replay) stats_.l1_hits.inc();
    if (kind == AccessKind::Write) {
      ln->meta.state = L1Meta::State::M;
      ln->meta.dirty = true;
    }
    l1.array.touch(line);
    done(eq_.now() + cfg_.l1_latency + hook_lat);
    return;
  }
  if (!replay) stats_.l1_misses.inc();
  start_miss(core, vaddr, line, kind, eq_.now(), std::move(done));
}

void CoherentSystem::start_miss(CoreId core, Addr vaddr, Addr line,
                                AccessKind kind, Cycle issued_at,
                                std::function<void(Cycle)> done) {
  L1& l1 = l1s_[core];
  // Structural hazard: all MSHRs busy and this line is not mergeable.
  // Back off and retry the whole miss.
  if (!l1.mshr.in_flight(line) &&
      l1.mshr.outstanding() >= l1.mshr.capacity()) {
    stats_.mshr_stalls.inc();
    eq_.schedule_in(cfg_.mshr_retry_delay,
                    [this, core, vaddr, line, kind, issued_at,
                     done = std::move(done)]() mutable {
                      start_miss(core, vaddr, line, kind, issued_at,
                                 std::move(done));
                    });
    return;
  }
  // Retrying through the full access path replays the reference once the
  // fill lands; the line is then (normally) an L1 hit.
  auto retry = [this, core, vaddr, line, kind, issued_at,
                done = std::move(done)]() mutable {
    // Note: `line` recomputes identically as paddr (it is line-aligned).
    // The replay is the same demand access: it must not re-count stats.
    if (attr_ != nullptr) attr_->on_complete(core, line, issued_at, eq_.now());
    stats_.miss_latency.add(static_cast<double>(eq_.now() - issued_at));
    access_internal(core, vaddr, line, kind, std::move(done),
                    /*replay=*/true);
  };
  register_miss_or_retry(core, vaddr, line, kind, issued_at, std::move(retry));
}

void CoherentSystem::register_miss_or_retry(CoreId core, Addr vaddr, Addr line,
                                            AccessKind kind, Cycle issued_at,
                                            std::function<void()> on_fill) {
  const auto outcome = l1s_[core].mshr.register_miss(line, std::move(on_fill));
  if (outcome == cache::MshrFile::Outcome::Full) {
    // The pre-check in start_miss normally backs off before registration can
    // fail, but a Full outcome must never lose the fill callback: MshrFile
    // guarantees on_fill is left intact on Full, so re-queue it until a
    // register slot frees up.
    stats_.mshr_stalls.inc();
    eq_.schedule_in(cfg_.mshr_retry_delay,
                    [this, core, vaddr, line, kind, issued_at,
                     cb = std::move(on_fill)]() mutable {
                      register_miss_or_retry(core, vaddr, line, kind,
                                             issued_at, std::move(cb));
                    });
    return;
  }
  if (outcome == cache::MshrFile::Outcome::NewEntry) {
    launch_transaction(core, vaddr, line, kind, issued_at);
  }
}

void CoherentSystem::schedule_tile(CoreId tile, Cycle when, sim::Action fn) {
  if (shard_ != nullptr) {
    const sim::DomainId dd = dmap_->domain_of(tile);
    if (dd != home_domain_) {
      shard_->schedule_cross(home_domain_, dd, when, std::move(fn));
      return;
    }
  }
  eq_.schedule_at(when, std::move(fn));
}

void CoherentSystem::launch_transaction(CoreId core, Addr vaddr, Addr line,
                                        AccessKind kind, Cycle issued_at) {
  const nuca::MapDecision d = vaddr >= kKernelBase
                                  ? kernel_map(line)
                                  : policy_.map(core, vaddr, line, kind);
  const Cycle send_at = eq_.now() + cfg_.l1_latency + d.lookup_latency;
  if (d.kind == nuca::MapDecision::Kind::Bypass) {
    if (attr_ != nullptr)
      attr_->on_launch(core, line, issued_at, send_at,
                       mesh_.hops(core, mcs_.tile_of(mcs_.index_for(line))));
    schedule_tile(core, send_at,
                  [this, core, line, kind] { bypass_fetch(core, line, kind, eq_.now()); });
    return;
  }
  stats_.nuca_distance.add(static_cast<double>(mesh_.hops(core, d.bank)));
  if (attr_ != nullptr)
    attr_->on_launch(core, line, issued_at, send_at, mesh_.hops(core, d.bank));
  schedule_tile(core, send_at, [this, core, line, kind, bank = d.bank] {
    net_.send(core, bank, MsgClass::Control,
              [this, bank, core, line, kind] { bank_request(bank, core, line, kind); });
  });
}

nuca::MapDecision CoherentSystem::kernel_map(Addr line) const {
  BankId bank =
      static_cast<BankId>((line / cfg_.l1.line_size) % banks_.size());
  if (health_ != nullptr && !health_->bank_ok(bank))
    bank = health_->remap_bank(line);
  return nuca::MapDecision::to_bank(bank);
}

// --------------------------------------------------------------------------
// LLC bank / directory
// --------------------------------------------------------------------------

void CoherentSystem::bank_request(BankId bank, CoreId requester, Addr line,
                                  AccessKind kind) {
  Bank& b = banks_[bank];
  if (attr_ != nullptr) attr_->on_bank_arrival(requester, line, eq_.now());
  auto process = [this, bank, requester, line, kind] {
    if (health_ != nullptr && !health_->bank_ok(bank)) {
      // The home bank died while this request was queued/in flight: bounce
      // it to the healthy-set home instead of servicing a dead array.
      bounce_request(bank, requester, line, kind);
      return;
    }
    Bank& bb = banks_[bank];
    const Cycle start = eq_.now() > bb.next_free ? eq_.now() : bb.next_free;
    Cycle interval = cfg_.bank_service_interval;
    if (health_ != nullptr) interval *= health_->bank_factor(bank);
    if (view_.num_apps > 0) {
      // Inter-app interference: this request queues behind the bank's
      // service window and the previous occupant belongs to another app.
      const std::uint8_t app = app_of(requester);
      if (bb.next_free > eq_.now() && bb.last_app != kNoApp &&
          bb.last_app != app)
        ++bb.cross_app_conflicts;
      bb.last_app = app;
    }
    bb.next_free = start + interval;
    if (attr_ != nullptr)
      attr_->on_service_start(requester, line, start, start + cfg_.llc_latency);
    schedule_tile(bank, start + cfg_.llc_latency, [this, bank, requester, line, kind] {
      stats_.llc_requests.inc();
      ++banks_[bank].counters.requests;
      AppCounters* ac =
          view_.num_apps > 0 ? &app_counters_[app_of(requester)] : nullptr;
      if (ac != nullptr) ++ac->llc_requests;
      auto* ln = banks_[bank].array.find(line);
      if (rec_ != nullptr && rec_->coherence_on()) {
        std::ostringstream args;
        args << "\"bank\":" << bank << ",\"core\":" << requester
             << ",\"hit\":" << (ln != nullptr ? "true" : "false");
        rec_->instant(obs::Recorder::kCoherenceTrack, "coherence",
                      kind == AccessKind::Read ? "GetS" : "GetX", args.str());
      }
      if (ln == nullptr) {
        stats_.llc_misses.inc();
        ++banks_[bank].counters.misses;
        if (ac != nullptr) ++ac->llc_misses;
        bank_fetch_from_memory(bank, requester, line, kind);
        return;
      }
      stats_.llc_hits.inc();
      ++banks_[bank].counters.hits;
      if (ac != nullptr) ++ac->llc_hits;
      banks_[bank].array.touch(line);
      if (kind == AccessKind::Read) bank_respond_read(bank, requester, line);
      else bank_respond_write(bank, requester, line);
    });
  };
  auto it = b.blocked.find(line);
  if (it != b.blocked.end()) {
    it->second.push_back(std::move(process));  // blocking directory
    return;
  }
  b.blocked.emplace(line, std::deque<sim::Action>{});
  process();
}

void CoherentSystem::bank_respond_read(BankId bank, CoreId requester,
                                       Addr line) {
  auto* ln = banks_[bank].array.find(line);
  TDN_ASSERT(ln != nullptr);
  LlcMeta& meta = ln->meta;
  const CoreId owner = meta.owner;
  meta.sharers.set(requester);
  if (owner != kInvalidCore && owner != requester) {
    // Another L1 holds the line in M: forward, owner downgrades to S and
    // writes the dirty data back to the LLC while sourcing the requester.
    meta.owner = kInvalidCore;
    meta.sharers.set(owner);
    net_.send(bank, owner, MsgClass::Control, [this, bank, owner, requester, line] {
      auto* oln = l1s_[owner].array.find(line);
      const bool has_copy = oln != nullptr;
      if (has_copy) {
        oln->meta.state = L1Meta::State::S;
        oln->meta.dirty = false;
        net_.send(owner, bank, MsgClass::Data, [this, bank, line] {
          if (health_ != nullptr && !health_->bank_ok(bank)) {
            // Dirty downgrade data arriving at a dead bank: divert to memory
            // so the only up-to-date copy is not dropped.
            ++health_->counters.dead_bank_writebacks;
            memory_writeback(bank, line);
            return;
          }
          if (auto* l = banks_[bank].array.find(line)) l->meta.dirty = true;
        });
      }
      // Source the data to the requester (from the owner if it still has the
      // copy; otherwise the crossing PutM means the LLC copy is usable and we
      // source from the bank — same message count either way in this model).
      const CoreId src = has_copy ? owner : bank;
      net_.send(src, requester, MsgClass::Data, [this, bank, requester, line] {
        l1_fill(requester, line, L1Meta{L1Meta::State::S, false, bank});
        bank_unblock(bank, line);
      });
    });
    return;
  }
  if (owner == requester) meta.owner = kInvalidCore;  // crossing PutM
  net_.send(bank, requester, MsgClass::Data, [this, bank, requester, line] {
    l1_fill(requester, line, L1Meta{L1Meta::State::S, false, bank});
    bank_unblock(bank, line);
  });
}

void CoherentSystem::bank_respond_write(BankId bank, CoreId requester,
                                        Addr line) {
  auto* ln = banks_[bank].array.find(line);
  TDN_ASSERT(ln != nullptr);
  LlcMeta& meta = ln->meta;
  // Collect every L1 that may hold a copy (sharer bits can be stale after
  // silent evictions; invalidating a non-holder just costs an ack).
  CoreMask targets = meta.sharers;
  if (meta.owner != kInvalidCore) targets.set(meta.owner);
  targets.clear(requester);
  meta.owner = requester;
  meta.sharers = CoreMask::none();

  auto grant = [this, bank, requester, line] {
    // Upgrade if the requester still holds the line in S; otherwise a fresh
    // fill. An upgrade grant carries no data.
    auto* rl = l1s_[requester].array.find(line);
    const MsgClass cls = rl != nullptr ? MsgClass::Control : MsgClass::Data;
    net_.send(bank, requester, cls, [this, bank, requester, line] {
      auto* rl2 = l1s_[requester].array.find(line);
      if (rl2 != nullptr) {
        rl2->meta.state = L1Meta::State::M;
        rl2->meta.dirty = true;
        l1s_[requester].array.touch(line);
        // Replay any merged misses waiting on this line.
        if (l1s_[requester].mshr.in_flight(line)) {
          for (auto& cb : l1s_[requester].mshr.complete(line))
            eq_.schedule_in(0, std::move(cb));
        }
      } else {
        l1_fill(requester, line, L1Meta{L1Meta::State::M, true, bank});
      }
      bank_unblock(bank, line);
    });
  };

  if (targets.empty()) {
    grant();
    return;
  }
  auto join = sim::make_joiner(std::move(grant));
  targets.for_each([&](CoreId t) {
    join->add();
    stats_.invalidations_sent.inc();
    net_.send(bank, t, MsgClass::Control, [this, bank, t, line, join] {
      const bool dirty = l1_invalidate(t, line, /*writeback_to_memory=*/false);
      // Ack (with data if the copy was dirty) back to the bank.
      const MsgClass cls = dirty ? MsgClass::Data : MsgClass::Control;
      net_.send(t, bank, cls, [this, bank, line, dirty, join] {
        if (dirty) {
          if (health_ != nullptr && !health_->bank_ok(bank)) {
            ++health_->counters.dead_bank_writebacks;
            memory_writeback(bank, line);
          } else if (auto* l = banks_[bank].array.find(line)) {
            l->meta.dirty = true;
          }
        }
        join->complete();
      });
    });
  });
  join->arm();
}

void CoherentSystem::bank_fetch_from_memory(BankId bank, CoreId requester,
                                            Addr line, AccessKind kind) {
  const unsigned mc = mcs_.index_for(line);
  const CoreId mc_tile = mcs_.tile_of(mc);
  net_.send(bank, mc_tile, MsgClass::Control, [this, bank, requester, line, kind,
                                               mc, mc_tile] {
    const Cycle ready = mcs_.mc(mc).request(eq_.now(), AccessKind::Read);
    schedule_tile(mc_tile, ready, [this, bank, requester, line, kind, mc_tile] {
      net_.send(mc_tile, bank, MsgClass::Data, [this, bank, requester, line, kind] {
        if (attr_ != nullptr) attr_->on_memory_data(requester, line, eq_.now());
        if (health_ != nullptr && !health_->bank_ok(bank)) {
          // The bank died while the fill was in flight: the data cannot be
          // installed; restart the transaction at the healthy-set home.
          bounce_request(bank, requester, line, kind);
          return;
        }
        bank_install(bank, requester, line);
        if (kind == AccessKind::Read) bank_respond_read(bank, requester, line);
        else bank_respond_write(bank, requester, line);
      });
    });
  });
}

void CoherentSystem::bank_install(BankId bank, CoreId requester, Addr line) {
  Bank& b = banks_[bank];
  std::optional<cache::CacheArray<LlcMeta>::Eviction> evicted;
  auto busy = [&b](Addr a) { return b.blocked.count(a) != 0; };
  const WayRange wq = way_quota(requester);
  auto& ln = b.array.allocate(line, evicted, busy, wq.first, wq.count);
  if (view_.num_apps > 0) ln.meta.app = app_of(requester);
  if (!evicted) return;
  stats_.llc_evictions.inc();
  const Addr va = evicted->addr;
  const LlcMeta vm = evicted->meta;
  // Inclusive LLC: displace any L1 copies (back-invalidation). Owners write
  // their dirty data straight to memory.
  CoreMask copies = vm.sharers;
  if (vm.owner != kInvalidCore) copies.set(vm.owner);
  copies.for_each([&](CoreId t) {
    stats_.back_invalidations.inc();
    net_.send(bank, t, MsgClass::Control, [this, t, va] {
      l1_invalidate(t, va, /*writeback_to_memory=*/true);
    });
  });
  if (vm.dirty) memory_writeback(bank, va);
}

void CoherentSystem::bank_unblock(BankId bank, Addr line) {
  Bank& b = banks_[bank];
  auto it = b.blocked.find(line);
  TDN_ASSERT(it != b.blocked.end());
  if (it->second.empty()) {
    b.blocked.erase(it);
    return;
  }
  auto next = std::move(it->second.front());
  it->second.pop_front();
  eq_.schedule_in(0, std::move(next));  // line stays blocked for `next`
}

void CoherentSystem::bank_writeback(BankId bank, CoreId from, Addr line) {
  if (health_ != nullptr && !health_->bank_ok(bank)) {
    // The home bank died while the PutM was in flight: forward the dirty
    // data straight to memory.
    ++health_->counters.dead_bank_writebacks;
    memory_writeback(bank, line);
    return;
  }
  stats_.llc_writebacks.inc();
  ++banks_[bank].counters.writebacks;
  if (view_.num_apps > 0) ++app_counters_[app_of(from)].llc_writebacks;
  auto* ln = banks_[bank].array.find(line);
  if (ln == nullptr) {
    // The line was evicted from the (inclusive) LLC while the PutM crossed a
    // back-invalidation; forward the data to memory.
    memory_writeback(bank, line);
    return;
  }
  ln->meta.dirty = true;
  if (ln->meta.owner == from) ln->meta.owner = kInvalidCore;
}

// --------------------------------------------------------------------------
// Fault handling
// --------------------------------------------------------------------------

void CoherentSystem::bounce_request(BankId bank, CoreId requester, Addr line,
                                    AccessKind kind) {
  TDN_ASSERT(health_ != nullptr);
  ++health_->counters.bounced_requests;
  const BankId nb = health_->remap_bank(line);
  net_.send(bank, nb, MsgClass::Control, [this, nb, requester, line, kind] {
    bank_request(nb, requester, line, kind);
  });
  // Release this bank's block; any queued requests replay and bounce too.
  bank_unblock(bank, line);
}

void CoherentSystem::evacuate_bank(BankId bank) {
  TDN_REQUIRE(bank < banks_.size(), "evacuate_bank: bank out of range");
  Bank& b = banks_[bank];
  const AddrRange all{0, ~Addr{0}};
  b.array.for_each_in_range(all, [&](Addr la, LlcMeta& m) {
    if (b.blocked.count(la) != 0) {
      // A transaction is in flight on this line; evacuate once it settles.
      b.blocked[la].push_back([this, bank, la] {
        if (auto* ln = banks_[bank].array.find(la)) {
          evacuate_line(bank, la, ln->meta);
          banks_[bank].array.invalidate(la);
        }
        bank_unblock(bank, la);
      });
      return false;  // keep for now
    }
    evacuate_line(bank, la, m);
    return true;  // invalidate
  });
}

void CoherentSystem::evacuate_line(BankId bank, Addr la, const LlcMeta& m) {
  if (health_ != nullptr) {
    ++health_->counters.evacuated_lines;
    if (m.dirty) ++health_->counters.evacuated_dirty;
  }
  // Inclusive LLC: tracked L1 copies lose their home and are displaced, the
  // way a capacity eviction displaces them; owners write dirty data back to
  // memory on the invalidation.
  CoreMask copies = m.sharers;
  if (m.owner != kInvalidCore) copies.set(m.owner);
  copies.for_each([&](CoreId t) {
    stats_.back_invalidations.inc();
    net_.send(bank, t, MsgClass::Control, [this, t, la] {
      l1_invalidate(t, la, /*writeback_to_memory=*/true);
    });
  });
  if (m.dirty) memory_writeback(bank, la);
}

// --------------------------------------------------------------------------
// L1 side
// --------------------------------------------------------------------------

void CoherentSystem::l1_fill(CoreId core, Addr line, L1Meta meta) {
  L1& l1 = l1s_[core];
  if (l1.array.find(line) == nullptr) {
    std::optional<cache::CacheArray<L1Meta>::Eviction> evicted;
    auto busy = [&l1](Addr a) { return l1.mshr.in_flight(a); };
    auto& ln = l1.array.allocate(line, evicted, busy);
    ln.meta = meta;
    if (evicted) l1_evict_victim(core, evicted->addr, evicted->meta);
  }
  if (l1.mshr.in_flight(line)) {
    for (auto& cb : l1.mshr.complete(line)) eq_.schedule_in(0, std::move(cb));
  }
}

void CoherentSystem::l1_evict_victim(CoreId core, Addr line,
                                     const L1Meta& meta) {
  if (!meta.dirty && meta.state != L1Meta::State::M) return;  // silent
  if (!meta.dirty) return;  // clean M (never written): silent eviction
  if (meta.home == kInvalidBank) {
    stats_.bypass_writebacks.inc();
    memory_writeback(core, line);
    return;
  }
  net_.send(core, meta.home, MsgClass::Data,
            [this, bank = meta.home, core, line] { bank_writeback(bank, core, line); });
}

bool CoherentSystem::l1_invalidate(CoreId core, Addr line,
                                   bool writeback_to_memory) {
  auto m = l1s_[core].array.invalidate(line);
  if (!m) return false;
  const bool dirty = m->dirty;
  if (dirty && writeback_to_memory) memory_writeback(core, line);
  return dirty;
}

// --------------------------------------------------------------------------
// Bypass + memory
// --------------------------------------------------------------------------

void CoherentSystem::bypass_fetch(CoreId core, Addr line, AccessKind kind,
                                  Cycle /*issued_at*/) {
  stats_.bypass_reads.inc();
  if (view_.num_apps > 0) ++app_counters_[app_of(core)].bypass_reads;
  if (rec_ != nullptr && rec_->coherence_on()) {
    rec_->instant(obs::Recorder::kCoherenceTrack, "coherence", "bypass",
                  "\"core\":" + std::to_string(core));
  }
  const unsigned mc = mcs_.index_for(line);
  const CoreId mc_tile = mcs_.tile_of(mc);
  net_.send(core, mc_tile, MsgClass::Control, [this, core, line, kind, mc, mc_tile] {
    // Attribution stamps for bypasses reuse the bank slots: arrival at the
    // MC plays the bank-arrival role and the data-ready cycle the
    // memory-data one, so bank queue/service decompose to zero and the MC
    // round trip lands in the dram component.
    if (attr_ != nullptr) attr_->on_bank_arrival(core, line, eq_.now());
    const Cycle ready = mcs_.mc(mc).request(eq_.now(), AccessKind::Read);
    schedule_tile(mc_tile, ready, [this, core, line, kind, mc_tile] {
      if (attr_ != nullptr) attr_->on_memory_data(core, line, eq_.now());
      net_.send(mc_tile, core, MsgClass::Data, [this, core, line, kind] {
        // Bypassed lines are exclusive by runtime discipline (the paper's
        // eager end-of-task flushes), so install in M; dirty only if written.
        l1_fill(core, line,
                L1Meta{L1Meta::State::M, kind == AccessKind::Write,
                       kInvalidBank});
      });
    });
  });
}

void CoherentSystem::memory_writeback(CoreId from_tile, Addr line) {
  const unsigned mc = mcs_.index_for(line);
  net_.send(from_tile, mcs_.tile_of(mc), MsgClass::Data,
            [this, mc] { mcs_.mc(mc).request(eq_.now(), AccessKind::Write); });
}

// --------------------------------------------------------------------------
// Flush engine (CacheOps)
// --------------------------------------------------------------------------

void CoherentSystem::flush_l1_range(CoreMask cores, const AddrRange& prange,
                                    std::function<void()> done) {
  const std::uint64_t range_lines =
      prange.size() / cfg_.l1.line_size + (prange.size() % cfg_.l1.line_size ? 1 : 0);
  if (rec_ != nullptr && rec_->trace_on()) {
    // Wrap the completion so the span carries the flush's true duration.
    const Cycle start = eq_.now();
    std::ostringstream args;
    args << "\"cores\":" << cores.count() << ",\"lines\":" << range_lines;
    done = [this, start, a = args.str(), inner = std::move(done)] {
      rec_->span(obs::Recorder::kFlushTrack, "flush", "flush.l1", start,
                 eq_.now() - start, a);
      if (inner) inner();
    };
  }
  auto join = sim::make_joiner(std::move(done));
  const Cycle scan_cycles =
      (range_lines + cfg_.flush_lines_per_cycle - 1) / cfg_.flush_lines_per_cycle;
  cores.for_each([&](CoreId c) {
    if (c >= num_cores_) return;
    join->add();
    L1& l1 = l1s_[c];
    l1.flush_busy += scan_cycles;
    // The engine walks the range at flush_lines_per_cycle: writebacks are
    // paced accordingly rather than burst into the NoC in one cycle (a
    // burst would poison the link queues for every concurrent miss).
    std::uint64_t wb_index = 0;
    l1.array.for_each_in_range(prange, [&](Addr la, L1Meta& m) {
      stats_.flush_l1_lines.inc();
      if (m.dirty) {
        stats_.flush_writebacks.inc();
        join->add();
        const Cycle at = ++wb_index / cfg_.flush_lines_per_cycle;
        const BankId home = m.home;
        if (home == kInvalidBank) {
          const unsigned mc = mcs_.index_for(la);
          eq_.schedule_in(at, [this, c, mc, join] {
            net_.send(c, mcs_.tile_of(mc), MsgClass::Data, [this, mc, join] {
              mcs_.mc(mc).request(eq_.now(), AccessKind::Write);
              join->complete();
            });
          });
        } else {
          eq_.schedule_in(at, [this, c, home, la, join] {
            net_.send(c, home, MsgClass::Data, [this, home, c, la, join] {
              bank_writeback(home, c, la);
              join->complete();
            });
          });
        }
      }
      return true;  // invalidate
    });
    // The engine's scan occupies the core until scan_cycles have elapsed.
    eq_.schedule_in(scan_cycles, [join] { join->complete(); });
  });
  join->arm();
}

void CoherentSystem::flush_llc_range(BankMask banks, const AddrRange& prange,
                                     std::function<void()> done) {
  const std::uint64_t range_lines =
      prange.size() / cfg_.l1.line_size + (prange.size() % cfg_.l1.line_size ? 1 : 0);
  if (rec_ != nullptr && rec_->trace_on()) {
    const Cycle start = eq_.now();
    std::ostringstream args;
    args << "\"banks\":" << banks.count() << ",\"lines\":" << range_lines;
    done = [this, start, a = args.str(), inner = std::move(done)] {
      rec_->span(obs::Recorder::kFlushTrack, "flush", "flush.llc", start,
                 eq_.now() - start, a);
      if (inner) inner();
    };
  }
  auto join = sim::make_joiner(std::move(done));
  const Cycle scan_cycles =
      (range_lines + cfg_.flush_lines_per_cycle - 1) / cfg_.flush_lines_per_cycle;
  banks.for_each([&](CoreId bank) {
    if (bank >= num_cores_) return;
    join->add();
    Bank& b = banks_[bank];
    std::uint64_t wb_index = 0;
    b.array.for_each_in_range(prange, [&](Addr la, LlcMeta& m) {
      if (b.blocked.count(la) != 0) {
        // A transaction is in flight on this line: defer this line's flush
        // until it completes, then finish it out-of-band.
        join->add();
        b.blocked[la].push_back([this, bank, la, join] {
          if (auto* ln = banks_[bank].array.find(la)) {
            flush_llc_line_now(bank, la, ln->meta, join, 0);
            banks_[bank].array.invalidate(la);
          }
          bank_unblock(bank, la);
          join->complete();
        });
        return false;  // keep for now
      }
      // Pace the flush traffic at the engine's scan rate (see
      // flush_l1_range).
      flush_llc_line_now(bank, la, m, join,
                         ++wb_index / cfg_.flush_lines_per_cycle);
      return true;  // invalidate
    });
    eq_.schedule_in(scan_cycles, [join] { join->complete(); });
  });
  join->arm();
}

void CoherentSystem::flush_llc_line_now(BankId bank, Addr la, const LlcMeta& m,
                                        const sim::JoinerPtr& join,
                                        Cycle delay) {
  stats_.flush_llc_lines.inc();
  CoreMask copies = m.sharers;
  if (m.owner != kInvalidCore) copies.set(m.owner);
  copies.for_each([&](CoreId t) {
    stats_.back_invalidations.inc();
    join->add();
    eq_.schedule_in(delay, [this, bank, t, la, join] {
      net_.send(bank, t, MsgClass::Control, [this, t, la, join] {
        l1_invalidate(t, la, /*writeback_to_memory=*/true);
        join->complete();
      });
    });
  });
  if (m.dirty) {
    stats_.flush_writebacks.inc();
    join->add();
    const unsigned mc = mcs_.index_for(la);
    eq_.schedule_in(delay, [this, bank, mc, join] {
      net_.send(bank, mcs_.tile_of(mc), MsgClass::Data, [this, mc, join] {
        mcs_.mc(mc).request(eq_.now(), AccessKind::Write);
        join->complete();
      });
    });
  }
}

}  // namespace tdn::coherence
