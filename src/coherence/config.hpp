// Cache hierarchy configuration (paper Table I, with scaled default
// capacities; see DESIGN.md Sec. 6 for the scaling rules).
#pragma once

#include "cache/cache_array.hpp"
#include "common/types.hpp"

namespace tdn::coherence {

struct HierarchyConfig {
  cache::CacheGeometry l1{32 * kKiB, 8, 64};
  Cycle l1_latency = 2;

  cache::CacheGeometry llc_bank{256 * kKiB, 16, 64};
  Cycle llc_latency = 15;
  /// Minimum cycles between request starts at one bank (bank occupancy).
  Cycle bank_service_interval = 2;

  unsigned l1_mshrs = 16;
  /// Lines the flush engine can scan per cycle when processing a
  /// tdnuca_flush / page-reclassification flush.
  unsigned flush_lines_per_cycle = 1;
  /// Retry backoff when the MSHR file is full.
  Cycle mshr_retry_delay = 8;
};

}  // namespace tdn::coherence
