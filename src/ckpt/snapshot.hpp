// tdn::ckpt — crash-safe snapshot files for long serving runs.
//
// On-disk format (version 1), written via harness::atomic_write_file
// (unique temp file + fsync + atomic rename, so a host crash or SIGKILL
// can publish either the previous file or the complete new one, never a
// torn hybrid):
//
//   offset  size  field
//        0     8  magic "TDNCKPT\n"
//        8     4  format version (1)
//       12     4  flags (bit 0: emergency snapshot taken on interrupt)
//       16     8  RunConfig fingerprint of the producing run
//       24     8  simulated cycle of the quiescent point
//       32     8  payload size in bytes
//       40     8  FNV-1a 64 hash of the payload
//       48     -  payload (ckpt::Encoder bytes; serve_system.cpp owns the
//                 schema — see docs/serving.md §snapshot format)
//
// Readers validate magic, version, fingerprint, declared size and checksum
// before trusting one byte of payload; anything off marks the file invalid
// and the loader falls back to the next-newest snapshot in the directory.
// Snapshots are named snap-<fingerprint>-<cycle>.ckpt, so one directory can
// hold checkpoints of many configurations side by side.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/options.hpp"
#include "common/types.hpp"

namespace tdn::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// A validated snapshot: header fields plus the checksum-verified payload.
struct Snapshot {
  std::uint64_t config_fingerprint = 0;
  Cycle cycle = 0;
  bool emergency = false;  ///< written on SIGINT/SIGTERM, off-cadence
  std::string payload;
  std::string path;  ///< file it was loaded from (empty when in-memory)
};

/// Serialize and durably publish one snapshot into @p opts.dir, then prune
/// all but the newest opts.keep snapshots of this fingerprint. Returns the
/// published path, or nullopt on I/O failure (simulation continues; a
/// checkpoint that cannot be written must never kill the run).
///
/// Test hook: when the environment variable TDN_CKPT_EXIT_AFTER=N is set,
/// the process calls _exit(137) immediately after the Nth successful
/// publish — a deterministic stand-in for SIGKILL used by the CI
/// kill-and-resume smoke job.
std::optional<std::string> write_snapshot(const Options& opts,
                                          std::uint64_t config_fingerprint,
                                          Cycle cycle,
                                          const std::string& payload,
                                          bool emergency = false);

/// Validate and load one snapshot file. Returns nullopt (with the reason in
/// @p why, if given) on any validation failure — wrong magic/version,
/// fingerprint mismatch, truncation, checksum failure.
std::optional<Snapshot> load_file(const std::string& path,
                                  std::uint64_t config_fingerprint,
                                  std::string* why = nullptr);

/// Scan @p dir for snapshots of @p config_fingerprint and return the
/// highest-cycle *valid* one, skipping (never trusting) corrupt or torn
/// files. @p skipped, when non-null, collects "path: reason" lines for the
/// files that failed validation.
std::optional<Snapshot> load_latest(const std::string& dir,
                                    std::uint64_t config_fingerprint,
                                    std::vector<std::string>* skipped = nullptr);

/// All valid snapshots of @p config_fingerprint in @p dir, by ascending
/// cycle (tests resume from mid-run snapshots, not just the newest).
std::vector<Snapshot> load_all(const std::string& dir,
                               std::uint64_t config_fingerprint);

// --- cooperative interruption (bench signal handler → serving loop) ------

/// Thrown by the serving loop after it honors an interrupt request: the
/// final checkpoint (if configured) is already on disk when this escapes.
class InterruptedError : public RequireError {
 public:
  explicit InterruptedError(const std::string& what) : RequireError(what) {}
};

/// Async-signal-safe: sets a sig_atomic_t flag. Installed by the bench
/// SIGINT/SIGTERM handler (bench_common.hpp); polled by ServeSystem at its
/// control events.
void request_interrupt() noexcept;
bool interrupt_requested() noexcept;
void clear_interrupt() noexcept;

}  // namespace tdn::ckpt
