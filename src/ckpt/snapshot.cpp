#include "ckpt/snapshot.hpp"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/prng.hpp"
#include "harness/results_cache.hpp"

namespace tdn::ckpt {

namespace {

constexpr char kMagic[8] = {'T', 'D', 'N', 'C', 'K', 'P', 'T', '\n'};
constexpr std::size_t kHeaderSize = 48;
constexpr std::uint32_t kFlagEmergency = 1u;

std::string fingerprint_hex(std::uint64_t fp) {
  std::ostringstream os;
  os << std::hex << fp;
  return os.str();
}

std::string snapshot_name(std::uint64_t fp, Cycle cycle) {
  std::ostringstream os;
  // Zero-padded cycle so lexicographic file order matches cycle order.
  os << "snap-" << fingerprint_hex(fp) << "-";
  os.width(20);
  os.fill('0');
  os << cycle;
  os << ".ckpt";
  return os.str();
}

/// Parse "snap-<fp>-<cycle>.ckpt"; false if the name is not ours.
bool parse_name(const std::string& name, std::uint64_t fp, Cycle& cycle) {
  const std::string prefix = "snap-" + fingerprint_hex(fp) + "-";
  if (name.size() <= prefix.size() + 5) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - 5, 5, ".ckpt") != 0) return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - 5);
  cycle = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    cycle = cycle * 10 + static_cast<Cycle>(c - '0');
  }
  return true;
}

/// Kill-and-resume CI hook: _exit(137) right after the Nth publish, the
/// deterministic equivalent of a SIGKILL landing between two checkpoints.
void maybe_exit_after_publish() {
  static int budget = [] {
    const char* v = std::getenv("TDN_CKPT_EXIT_AFTER");
    return v != nullptr ? std::atoi(v) : 0;
  }();
  if (budget <= 0) return;
  if (--budget == 0) ::_exit(137);
}

volatile std::sig_atomic_t g_interrupt = 0;

}  // namespace

void request_interrupt() noexcept { g_interrupt = 1; }
bool interrupt_requested() noexcept { return g_interrupt != 0; }
void clear_interrupt() noexcept { g_interrupt = 0; }

std::optional<std::string> write_snapshot(const Options& opts,
                                          std::uint64_t config_fingerprint,
                                          Cycle cycle,
                                          const std::string& payload,
                                          bool emergency) {
  if (opts.dir.empty()) return std::nullopt;
  std::string bytes(kMagic, sizeof kMagic);
  {
    Encoder e;
    e.u32(kFormatVersion);
    e.u32(emergency ? kFlagEmergency : 0u);
    e.u64(config_fingerprint);
    e.u64(cycle);
    e.u64(payload.size());
    e.u64(fnv1a64(payload.data(), payload.size()));
    bytes += e.bytes();
  }
  bytes += payload;

  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(opts.dir) / snapshot_name(config_fingerprint, cycle);
  // atomic_write_file fsyncs the temp file before the rename (docs/harness.md
  // §durability): after it returns true the snapshot is complete on disk,
  // and a crash mid-write leaves only the previous snapshots behind.
  if (!harness::atomic_write_file(path.string(), bytes)) return std::nullopt;

  // Prune: keep the newest opts.keep snapshots of this fingerprint. Errors
  // here are ignored — retention is best-effort, correctness only needs the
  // newly published file.
  const unsigned keep = std::max(2u, opts.keep);
  std::vector<std::pair<Cycle, fs::path>> have;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(opts.dir, ec)) {
    Cycle c = 0;
    if (parse_name(ent.path().filename().string(), config_fingerprint, c))
      have.emplace_back(c, ent.path());
  }
  std::sort(have.begin(), have.end());
  for (std::size_t i = 0; i + keep < have.size(); ++i)
    fs::remove(have[i].second, ec);

  maybe_exit_after_publish();
  return path.string();
}

std::optional<Snapshot> load_file(const std::string& path,
                                  std::uint64_t config_fingerprint,
                                  std::string* why) {
  auto fail = [&](const std::string& reason) -> std::optional<Snapshot> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("unreadable");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderSize) return fail("truncated header");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    return fail("bad magic");
  Decoder d(bytes.data() + sizeof kMagic, kHeaderSize - sizeof kMagic);
  Snapshot s;
  try {
    const std::uint32_t version = d.u32();
    if (version != kFormatVersion)
      return fail("unsupported version " + std::to_string(version));
    const std::uint32_t flags = d.u32();
    s.emergency = (flags & kFlagEmergency) != 0;
    s.config_fingerprint = d.u64();
    if (s.config_fingerprint != config_fingerprint)
      return fail("fingerprint mismatch");
    s.cycle = d.u64();
    const std::uint64_t payload_size = d.u64();
    const std::uint64_t payload_hash = d.u64();
    if (bytes.size() != kHeaderSize + payload_size)
      return fail("truncated payload");
    s.payload = bytes.substr(kHeaderSize);
    if (fnv1a64(s.payload.data(), s.payload.size()) != payload_hash)
      return fail("checksum mismatch");
  } catch (const SnapshotError& e) {
    return fail(e.what());
  }
  s.path = path;
  return s;
}

std::optional<Snapshot> load_latest(const std::string& dir,
                                    std::uint64_t config_fingerprint,
                                    std::vector<std::string>* skipped) {
  namespace fs = std::filesystem;
  std::vector<std::pair<Cycle, fs::path>> have;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    Cycle c = 0;
    if (parse_name(ent.path().filename().string(), config_fingerprint, c))
      have.emplace_back(c, ent.path());
  }
  // Newest first: the first file that validates wins; invalid newer files
  // (torn by a crash mid-publish on a non-atomic filesystem, truncated by a
  // full disk, hand-damaged) are skipped, falling back to older snapshots.
  std::sort(have.begin(), have.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [cycle, path] : have) {
    (void)cycle;
    std::string why;
    if (auto s = load_file(path.string(), config_fingerprint, &why)) return s;
    if (skipped != nullptr) skipped->push_back(path.string() + ": " + why);
  }
  return std::nullopt;
}

std::vector<Snapshot> load_all(const std::string& dir,
                               std::uint64_t config_fingerprint) {
  namespace fs = std::filesystem;
  std::vector<std::pair<Cycle, fs::path>> have;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    Cycle c = 0;
    if (parse_name(ent.path().filename().string(), config_fingerprint, c))
      have.emplace_back(c, ent.path());
  }
  std::sort(have.begin(), have.end());
  std::vector<Snapshot> out;
  for (const auto& [cycle, path] : have) {
    (void)cycle;
    if (auto s = load_file(path.string(), config_fingerprint))
      out.push_back(std::move(*s));
  }
  return out;
}

}  // namespace tdn::ckpt
