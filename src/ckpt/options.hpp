// Checkpoint configuration carried by harness::RunConfig.
//
// The cadence knobs are *behavioral*: reaching a quiescent point means the
// serving loop pauses dispatch, drains in-flight work and cold-normalizes
// the machine (serve_system.cpp §checkpointing), which changes downstream
// timing. They therefore enter RunConfig::fingerprint() via canonical().
// The I/O knobs (directory, resume, retention) only say where snapshots go
// and whether to load one — two runs differing only in those produce
// bit-identical results, so they stay out of the fingerprint, like
// harness::ObsOptions.
#pragma once

#include <sstream>
#include <string>

#include "common/types.hpp"

namespace tdn::ckpt {

struct Options {
  // --- behavioral (fingerprinted) ---------------------------------------
  /// Checkpoint cadence in simulated cycles; 0 disables checkpointing.
  /// At each multiple the serving loop drains to a quiescent point, folds
  /// machine counters into the baseline and snapshots. The headline
  /// guarantee — interrupted+resumed == uninterrupted, bit for bit — holds
  /// between runs with the *same* cadence.
  Cycle every = 0;
  /// Drain-poll period while waiting for in-flight events to settle at a
  /// checkpoint boundary. Part of the schedule, hence fingerprinted.
  Cycle settle_grace = 256;

  // --- I/O only (not fingerprinted) -------------------------------------
  /// Snapshot directory; empty with every > 0 means "drain and normalize
  /// but write nothing" (useful in tests of the fold path itself).
  std::string dir;
  /// Load the newest valid snapshot from `dir` before running.
  bool resume = false;
  /// Completed snapshots retained on disk (older ones are pruned after a
  /// successful write). At least 2, so a torn newest file always leaves a
  /// previous good snapshot to fall back to.
  unsigned keep = 2;

  bool enabled() const noexcept { return every > 0; }
  /// Behavioral fields only, e.g. "ck300000/g256" — appended to the
  /// RunConfig fingerprint string when enabled() (a disabled checkpoint
  /// leaves existing fingerprints untouched).
  std::string canonical() const {
    std::ostringstream os;
    os << "ck" << every << "/g" << settle_grace;
    return os.str();
  }
};

}  // namespace tdn::ckpt
