// Byte-buffer codec for checkpoint snapshots (docs/serving.md §checkpoint).
//
// Fixed little-endian integer layout and bit-exact doubles (via u64
// bit-pattern), so a snapshot written on one host restores identically on
// any other. The Decoder is fully bounds-checked and throws SnapshotError
// instead of reading past the payload — a truncated or corrupt snapshot
// must be *detected*, never trusted (ISSUE 8 acceptance).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace tdn::ckpt {

/// Thrown on any malformed snapshot: bad magic, version or fingerprint
/// mismatch, checksum failure, or a decode running past the payload.
class SnapshotError : public RequireError {
 public:
  explicit SnapshotError(const std::string& what) : RequireError(what) {}
};

class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  const std::string& bytes() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Decoder {
 public:
  Decoder(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::string& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    // Each element needs 8 bytes; reject an absurd count before reserving.
    need(n * 8);
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
    return v;
  }

  bool done() const noexcept { return pos_ == size_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw SnapshotError("snapshot decode past end of payload");
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace tdn::ckpt
