#include "stats/registry.hpp"

#include <sstream>

#include "common/jsonfmt.hpp"

namespace tdn::stats {

void Registry::set(const std::string& key, double value) { values_[key] = value; }

void Registry::add(const std::string& key, double value) { values_[key] += value; }

double Registry::get(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? 0.0 : it->second;
}

bool Registry::has(const std::string& key) const { return values_.count(key) != 0; }

double Registry::sum_prefix(const std::string& prefix) const {
  double sum = 0.0;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second;
  }
  return sum;
}

std::string Registry::to_csv() const {
  std::ostringstream os;
  os << "key,value\n";
  for (const auto& [k, v] : values_) os << k << "," << v << "\n";
  return os.str();
}

std::string Registry::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : values_) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(k)
       << "\": " << json_number(v);
    first = false;
  }
  os << (first ? "}" : "\n}");
  return os.str();
}

}  // namespace tdn::stats
