// A name -> value registry that components export their statistics into at
// the end of a run. Keys are hierarchical dotted paths ("llc.bank3.hits").
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace tdn::stats {

class Registry {
 public:
  void set(const std::string& key, double value);
  void add(const std::string& key, double value);

  double get(const std::string& key) const;             ///< 0.0 if absent.
  bool has(const std::string& key) const;
  const std::map<std::string, double>& all() const { return values_; }

  /// Sum of all keys with the given prefix (e.g. "llc.bank" sums all banks).
  /// Iterates only the [lower_bound(prefix), first non-match) range — the
  /// map is ordered, so matching keys are contiguous.
  double sum_prefix(const std::string& prefix) const;

  std::string to_csv() const;
  /// Flat JSON object, keys sorted; non-finite values serialize as null.
  std::string to_json() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace tdn::stats
