// Lightweight statistics primitives. Counters are plain value types owned by
// the component that produces them; the Registry (registry.hpp) gives tools a
// uniform way to dump everything.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace tdn::stats {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean/min/max of a sampled quantity (e.g. NUCA distance per access,
/// RRT occupancy per sample point).
class Sampled {
 public:
  void add(double v, double weight = 1.0) noexcept {
    sum_ += v * weight;
    weight_ += weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++n_;
  }
  double mean() const noexcept { return weight_ > 0 ? sum_ / weight_ : 0.0; }
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  std::uint64_t samples() const noexcept { return n_; }
  double total() const noexcept { return sum_; }
  /// Accumulated weight (== samples() when every add used weight 1).
  /// Checkpoint folds use it to recombine means exactly: the folded
  /// aggregate carries (sum, weight) so `baseline + fresh` reproduces the
  /// uninterrupted run's division bit-for-bit.
  double weight() const noexcept { return weight_; }
  void reset() noexcept { *this = Sampled{}; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
  std::uint64_t n_ = 0;
};

/// Fixed-bucket integer histogram; values >= bucket count land in the last
/// (overflow) bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : buckets_(buckets + 1, 0) {
    TDN_REQUIRE(buckets > 0, "histogram needs at least one bucket");
  }

  void add(std::uint64_t v, std::uint64_t count = 1) noexcept {
    const std::size_t idx = std::min<std::uint64_t>(v, buckets_.size() - 1);
    buckets_[idx] += count;
    total_ += count;
    weighted_ += v * count;
  }

  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  double mean() const noexcept {
    return total_ > 0 ? static_cast<double>(weighted_) / static_cast<double>(total_)
                      : 0.0;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_ = 0;
};

}  // namespace tdn::stats
