// Aligned-column text tables for the figure/table regeneration benches.
// Every bench binary prints its paper artifact through this formatter so the
// output is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace tdn::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Format a double with the given precision (helper for row building).
  static std::string num(double v, int precision = 3);

  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdn::stats
