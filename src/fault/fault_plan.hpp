// FaultPlan — a deterministic schedule of hardware faults, parsed from the
// config/CLI DSL (docs/faults.md):
//
//   plan    := event (',' event)*
//   event   := kind '@' target (':' param)*
//   kind    := bank_fail | bank_slow | link_fail | link_degrade
//            | rrt_flip | rrt_evict | dram_stall
//   target  := <bank index> | bank<N> | core<N> | mc<N>
//            | '(' x ',' y ')' '-' '(' x ',' y ')'      (mesh link)
//   param   := cycle=<N[k|M|G]> | x<factor> | len=<N[k|M|G]>
//
// Example: "bank_fail@3:cycle=1M,link_degrade@(1,2)-(2,2):x4,
//           rrt_flip@core5:cycle=2M".
//
// Plans are part of SystemConfig and feed the config fingerprint, so fault
// runs are cacheable and bit-reproducible; any randomness (which RRT entry a
// flip hits, which bit it flips) comes from a PRNG seeded by the plan's
// canonical string and the configured seed, never from wall-clock state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tdn::fault {

enum class FaultKind {
  BankFail,     ///< LLC bank stops serving; resident lines evacuated
  BankSlow,     ///< LLC bank service interval multiplied by `factor`
  LinkFail,     ///< mesh link (both directions) stops forwarding
  LinkDegrade,  ///< mesh link serialization multiplied by `factor`
  RrtFlip,      ///< soft error flips one mask bit of one RRT entry
  RrtEvict,     ///< one RRT entry force-evicted (parity scrub)
  DramStall,    ///< memory controller refuses new requests for `len` cycles
};

const char* to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::BankFail;
  Cycle at = 0;        ///< injection cycle (param `cycle=`, default 0)
  unsigned unit = 0;   ///< bank / core / mc index (non-link kinds)
  unsigned ax = 0, ay = 0, bx = 0, by = 0;  ///< link endpoints (link kinds)
  unsigned factor = 1;      ///< slow-down / degrade multiplier (param `x<N>`)
  Cycle length = 0;         ///< stall length in cycles (param `len=`)
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse the DSL. Throws tdn::RequireError with a pointer to the offending
  /// token on malformed input. An empty spec yields an empty plan.
  static FaultPlan parse(const std::string& spec);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Stable, whitespace-normalized re-serialization of the plan; feeds the
  /// SystemConfig fingerprint and seeds the injector PRNG.
  std::string canonical() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace tdn::fault
