#include "fault/invariant.hpp"

#include <sstream>

#include "coherence/coherent_system.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "tdnuca/runtime_hooks.hpp"

namespace tdn::fault {

std::string InvariantReport::to_string() const {
  if (violations.empty()) return "invariants: ok";
  std::ostringstream os;
  os << "invariant violations (" << violations.size() << "):";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

InvariantReport check_invariants(const coherence::CoherentSystem& caches,
                                 const nuca::TdNucaPolicy* policy,
                                 const tdnuca::TdNucaRuntimeHooks* hooks,
                                 const HealthState* health,
                                 unsigned num_cores) {
  InvariantReport rep;
  auto fail = [&rep](std::string v) { rep.violations.push_back(std::move(v)); };

  for (CoreId c = 0; c < num_cores; ++c) {
    if (const auto n = caches.mshr_outstanding(c); n != 0) {
      fail("core " + std::to_string(c) + " leaked " + std::to_string(n) +
           " MSHR(s) after drain");
    }
  }
  for (BankId b = 0; b < num_cores; ++b) {
    if (const auto n = caches.bank_blocked_lines(b); n != 0) {
      fail("bank " + std::to_string(b) + " still blocks " + std::to_string(n) +
           " line(s): in-flight coherence after drain");
    }
  }
  if (health != nullptr && health->any_bank_failed()) {
    health->failed_banks().for_each([&](CoreId b) {
      if (const auto n = caches.bank_occupied_lines(b); n != 0) {
        fail("failed bank " + std::to_string(b) + " still holds " +
             std::to_string(n) + " resident line(s)");
      }
    });
  }
  if (policy != nullptr) {
    const BankMask healthy = health != nullptr
                                 ? health->healthy_banks()
                                 : BankMask::first_n(num_cores);
    for (CoreId c = 0; c < num_cores; ++c) {
      for (const auto& e : policy->rrt(c).entries()) {
        if (!((e.mask & healthy) == e.mask)) {
          fail("core " + std::to_string(c) + " RRT entry [" +
               std::to_string(e.prange.begin) + "," +
               std::to_string(e.prange.end) + ") maps to unhealthy banks " +
               e.mask.to_string(num_cores));
        }
      }
    }
  }
  if (hooks != nullptr && !hooks->quiescent()) {
    fail("TD-NUCA runtime not quiescent: " +
         std::to_string(hooks->pending_flushes()) +
         " flush(es) in flight / tasks still active");
  }
  return rep;
}

}  // namespace tdn::fault
