// End-of-run InvariantChecker — runs after the event queue drains, in
// Release builds too (via TDN_CHECK), so silent state leaks become loud
// failures instead of skewed metrics:
//
//   * no leaked MSHRs (every miss completed and retired),
//   * no in-flight coherence transactions (every bank's blocked map empty),
//   * every RRT entry maps only to healthy banks,
//   * the TD-NUCA runtime is quiescent (no task mid-flight, every
//     end-of-task flush drained),
//   * failed banks hold no resident lines (evacuation completed).
//
// The checks are read-only: running them never changes metrics, so they are
// active for healthy runs as well.
#pragma once

#include <string>
#include <vector>

#include "fault/health.hpp"

namespace tdn::coherence {
class CoherentSystem;
}
namespace tdn::nuca {
class TdNucaPolicy;
}
namespace tdn::tdnuca {
class TdNucaRuntimeHooks;
}

namespace tdn::fault {

struct InvariantReport {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string to_string() const;
};

/// @p policy / @p hooks / @p health may be null (policy-dependent checks are
/// skipped; a null health means all banks are treated as healthy).
InvariantReport check_invariants(const coherence::CoherentSystem& caches,
                                 const nuca::TdNucaPolicy* policy,
                                 const tdnuca::TdNucaRuntimeHooks* hooks,
                                 const HealthState* health,
                                 unsigned num_cores);

}  // namespace tdn::fault
