#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/require.hpp"

namespace tdn::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::BankFail: return "bank_fail";
    case FaultKind::BankSlow: return "bank_slow";
    case FaultKind::LinkFail: return "link_fail";
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::RrtFlip: return "rrt_flip";
    case FaultKind::RrtEvict: return "rrt_evict";
    case FaultKind::DramStall: return "dram_stall";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(const std::string& tok, const std::string& why) {
  TDN_REQUIRE(false, "fault plan: " + why + " in '" + tok + "'");
  __builtin_unreachable();
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse "<digits>[k|M|G]" (decimal multipliers 1e3/1e6/1e9).
std::uint64_t parse_scaled(const std::string& tok, const std::string& s) {
  if (s.empty()) bad(tok, "missing number");
  std::uint64_t v = 0;
  std::size_t i = 0;
  for (; i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])); ++i)
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  if (i == 0) bad(tok, "expected a number, got '" + s + "'");
  if (i + 1 == s.size()) {
    switch (s[i]) {
      case 'k': return v * 1000ull;
      case 'M': return v * 1000000ull;
      case 'G': return v * 1000000000ull;
      default: bad(tok, "unknown suffix '" + s.substr(i) + "'");
    }
  }
  if (i != s.size()) bad(tok, "trailing garbage '" + s.substr(i) + "'");
  return v;
}

FaultKind parse_kind(const std::string& tok, const std::string& s) {
  if (s == "bank_fail") return FaultKind::BankFail;
  if (s == "bank_slow") return FaultKind::BankSlow;
  if (s == "link_fail") return FaultKind::LinkFail;
  if (s == "link_degrade") return FaultKind::LinkDegrade;
  if (s == "rrt_flip") return FaultKind::RrtFlip;
  if (s == "rrt_evict") return FaultKind::RrtEvict;
  if (s == "dram_stall") return FaultKind::DramStall;
  bad(tok, "unknown fault kind '" + s + "'");
}

bool is_link_kind(FaultKind k) {
  return k == FaultKind::LinkFail || k == FaultKind::LinkDegrade;
}

/// Parse "(x,y)-(x,y)" into the four endpoint coordinates.
void parse_link_target(const std::string& tok, const std::string& s,
                       FaultEvent& ev) {
  unsigned vals[4] = {0, 0, 0, 0};
  std::size_t i = 0, v = 0;
  auto expect = [&](char c) {
    if (i >= s.size() || s[i] != c)
      bad(tok, std::string("expected '") + c + "' in link target '" + s + "'");
    ++i;
  };
  auto number = [&]() {
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      bad(tok, "expected a coordinate in link target '" + s + "'");
    unsigned n = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
      n = n * 10 + static_cast<unsigned>(s[i++] - '0');
    vals[v++] = n;
  };
  expect('(');
  number();
  expect(',');
  number();
  expect(')');
  expect('-');
  expect('(');
  number();
  expect(',');
  number();
  expect(')');
  if (i != s.size()) bad(tok, "trailing garbage in link target '" + s + "'");
  ev.ax = vals[0];
  ev.ay = vals[1];
  ev.bx = vals[2];
  ev.by = vals[3];
  const bool adjacent = (ev.ax == ev.bx && (ev.ay + 1 == ev.by || ev.by + 1 == ev.ay)) ||
                        (ev.ay == ev.by && (ev.ax + 1 == ev.bx || ev.bx + 1 == ev.ax));
  if (!adjacent) bad(tok, "link endpoints must be mesh neighbours");
}

void parse_unit_target(const std::string& tok, const std::string& s,
                       FaultEvent& ev) {
  std::string digits = s;
  if (s.rfind("bank", 0) == 0) digits = s.substr(4);
  else if (s.rfind("core", 0) == 0) digits = s.substr(4);
  else if (s.rfind("mc", 0) == 0) digits = s.substr(2);
  if (digits.empty()) bad(tok, "missing unit index in target '" + s + "'");
  for (const char c : digits)
    if (!std::isdigit(static_cast<unsigned char>(c)))
      bad(tok, "bad unit index in target '" + s + "'");
  ev.unit = static_cast<unsigned>(std::stoul(digits));
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string raw;
  while (std::getline(ss, raw, ',')) {
    // Link targets contain a comma — "(1,2)-(2,2)" — so a token with an
    // unbalanced '(' swallows the next comma-separated chunk.
    while (std::count(raw.begin(), raw.end(), '(') >
           std::count(raw.begin(), raw.end(), ')')) {
      std::string more;
      if (!std::getline(ss, more, ',')) break;
      raw += ',' + more;
    }
    const std::string tok = strip(raw);
    if (tok.empty()) continue;

    const std::size_t at = tok.find('@');
    if (at == std::string::npos) bad(tok, "missing '@target'");
    FaultEvent ev;
    ev.kind = parse_kind(tok, strip(tok.substr(0, at)));

    std::size_t colon = tok.find(':', at + 1);
    const std::string target = strip(tok.substr(at + 1, colon == std::string::npos
                                                            ? std::string::npos
                                                            : colon - at - 1));
    if (is_link_kind(ev.kind)) parse_link_target(tok, target, ev);
    else parse_unit_target(tok, target, ev);

    while (colon != std::string::npos) {
      const std::size_t next = tok.find(':', colon + 1);
      const std::string p = strip(tok.substr(colon + 1, next == std::string::npos
                                                            ? std::string::npos
                                                            : next - colon - 1));
      if (p.rfind("cycle=", 0) == 0) ev.at = parse_scaled(tok, p.substr(6));
      else if (p.rfind("len=", 0) == 0) ev.length = parse_scaled(tok, p.substr(4));
      else if (!p.empty() && p[0] == 'x')
        ev.factor = static_cast<unsigned>(parse_scaled(tok, p.substr(1)));
      else bad(tok, "unknown parameter '" + p + "'");
      colon = next;
    }

    if (ev.kind == FaultKind::BankSlow || ev.kind == FaultKind::LinkDegrade)
      TDN_REQUIRE(ev.factor >= 1, "fault plan: factor must be >= 1");
    if (ev.kind == FaultKind::DramStall)
      TDN_REQUIRE(ev.length > 0,
                  "fault plan: dram_stall needs len=<cycles> in '" + tok + "'");
    plan.events_.push_back(ev);
  }
  return plan;
}

std::string FaultPlan::canonical() const {
  std::ostringstream os;
  bool first = true;
  for (const FaultEvent& ev : events_) {
    if (!first) os << ',';
    first = false;
    os << to_string(ev.kind) << '@';
    if (is_link_kind(ev.kind)) {
      os << '(' << ev.ax << ',' << ev.ay << ")-(" << ev.bx << ',' << ev.by << ')';
    } else {
      os << ev.unit;
    }
    if (ev.at != 0) os << ":cycle=" << ev.at;
    if (ev.factor != 1) os << ":x" << ev.factor;
    if (ev.length != 0) os << ":len=" << ev.length;
  }
  return os.str();
}

}  // namespace tdn::fault
