#include "fault/injector.hpp"

#include <sstream>

#include "coherence/coherent_system.hpp"
#include "common/prng.hpp"
#include "common/require.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"

namespace tdn::fault {

namespace {

/// Direction index (0=E,1=W,2=N,3=S) of the link from coordinate @p a to the
/// adjacent coordinate @p b — same convention as noc::Network.
unsigned dir_from_to(const noc::Coord& a, const noc::Coord& b) {
  if (b.x == a.x + 1) return kLinkEast;
  if (a.x == b.x + 1) return kLinkWest;
  if (b.y == a.y + 1) return kLinkSouth;  // y grows downward
  return kLinkNorth;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, FaultConfig cfg, Targets t,
                             unsigned num_banks, unsigned line_size)
    : plan_(std::move(plan)), cfg_(std::move(cfg)), t_(t),
      health_(num_banks, line_size) {
  TDN_REQUIRE(t_.eq != nullptr && t_.mesh != nullptr,
              "fault injector needs an event queue and a mesh");
  const std::string canon = plan_.canonical();
  seed_base_ = fnv1a64(canon.data(), canon.size()) ^ cfg_.seed;
}

void FaultInjector::arm() {
  TDN_REQUIRE(!armed_, "fault injector armed twice");
  armed_ = true;
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent ev = plan_.events()[i];
    ++plan_pending_;
    t_.eq->schedule_at(ev.at, [this, ev, i] { apply(ev, i); });
  }
}

void FaultInjector::arm_from(Cycle resume) {
  TDN_REQUIRE(!armed_, "fault injector armed twice");
  armed_ = true;
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent ev = plan_.events()[i];
    if (ev.at <= resume) {
      replay(ev, resume);
    } else {
      ++plan_pending_;
      t_.eq->schedule_at(ev.at, [this, ev, i] { apply(ev, i); });
    }
  }
}

void FaultInjector::replay(const FaultEvent& ev, Cycle resume) {
  const unsigned n = health_.num_banks();
  switch (ev.kind) {
    case FaultKind::BankFail: {
      const BankId bank = ev.unit % n;
      if (health_.bank_ok(bank)) health_.fail_bank(bank);
      // No evacuation: the rebuilt arrays are cold, and the snapshotted
      // lineage already performed (and accounted) the evacuation flushes.
      break;
    }
    case FaultKind::BankSlow:
      health_.slow_bank(ev.unit % n, ev.factor);
      break;
    case FaultKind::LinkFail:
    case FaultKind::LinkDegrade: {
      const noc::Coord a{ev.ax, ev.ay};
      const noc::Coord b{ev.bx, ev.by};
      const CoreId ta = t_.mesh->tile(a);
      const CoreId tb = t_.mesh->tile(b);
      if (ev.kind == FaultKind::LinkFail) {
        health_.fail_link(ta, dir_from_to(a, b));
        health_.fail_link(tb, dir_from_to(b, a));
      } else {
        health_.degrade_link(ta, dir_from_to(a, b), ev.factor);
        health_.degrade_link(tb, dir_from_to(b, a), ev.factor);
      }
      break;
    }
    case FaultKind::RrtFlip:
    case FaultKind::RrtEvict:
      // Transient soft errors against tables that were cold-cleared at the
      // boundary (and scrubbed long before it): nothing to reconstruct.
      break;
    case FaultKind::DramStall: {
      if (t_.mcs == nullptr) break;
      const unsigned mc = ev.unit % t_.mcs->count();
      // The original event stalled the controller until at + length; only a
      // horizon still in the future can shape post-resume timing.
      if (ev.at + ev.length > resume)
        t_.mcs->mc(mc).inject_stall(ev.at + ev.length);
      ++health_.counters.dram_stalls;
      break;
    }
  }
}

void FaultInjector::record(const FaultEvent& ev) {
  if (t_.rec == nullptr || !t_.rec->trace_on()) return;
  std::ostringstream args;
  args << "\"at\":" << ev.at;
  if (ev.factor != 1) args << ",\"factor\":" << ev.factor;
  if (ev.length != 0) args << ",\"len\":" << ev.length;
  t_.rec->instant(obs::Recorder::kFaultTrack, "fault", to_string(ev.kind),
                  args.str());
}

void FaultInjector::apply(const FaultEvent& ev, std::size_t index) {
  TDN_ASSERT(plan_pending_ > 0);
  --plan_pending_;
  SplitMix64 rng(seed_base_ ^ ((index + 1) * 0x9e3779b97f4a7c15ull));
  const unsigned n = health_.num_banks();
  switch (ev.kind) {
    case FaultKind::BankFail: {
      const BankId bank = ev.unit % n;
      if (!health_.bank_ok(bank)) break;  // already dead
      health_.fail_bank(bank);
      // Recovery, in dependency order: future placements avoid the bank
      // (RRT heal + policy health guards), then resident lines are pushed
      // out so no data is stranded behind a dead controller.
      if (t_.tdnuca != nullptr) {
        const BankMask healthy = health_.healthy_banks();
        for (CoreId c = 0; c < n; ++c) {
          const auto res = t_.tdnuca->rrt(c).heal(healthy);
          health_.counters.rrt_entries_narrowed += res.narrowed;
          health_.counters.rrt_entries_dropped += res.erased;
        }
      }
      if (t_.caches != nullptr) t_.caches->evacuate_bank(bank);
      break;
    }
    case FaultKind::BankSlow:
      health_.slow_bank(ev.unit % n, ev.factor);
      break;
    case FaultKind::LinkFail:
    case FaultKind::LinkDegrade: {
      const noc::Coord a{ev.ax, ev.ay};
      const noc::Coord b{ev.bx, ev.by};
      TDN_REQUIRE(a.x < t_.mesh->width() && a.y < t_.mesh->height() &&
                      b.x < t_.mesh->width() && b.y < t_.mesh->height(),
                  "fault plan: link endpoint outside the mesh");
      const CoreId ta = t_.mesh->tile(a);
      const CoreId tb = t_.mesh->tile(b);
      if (ev.kind == FaultKind::LinkFail) {
        health_.fail_link(ta, dir_from_to(a, b));
        health_.fail_link(tb, dir_from_to(b, a));
      } else {
        health_.degrade_link(ta, dir_from_to(a, b), ev.factor);
        health_.degrade_link(tb, dir_from_to(b, a), ev.factor);
      }
      break;
    }
    case FaultKind::RrtFlip: {
      if (t_.tdnuca == nullptr) break;
      auto& rrt = t_.tdnuca->rrt(ev.unit % n);
      if (rrt.size() == 0) break;  // soft error hit an empty table
      const unsigned idx =
          static_cast<unsigned>(rng.next_below(rrt.size()));
      const tdnuca::RrtEntry entry = rrt.entries()[idx];
      const unsigned bit = static_cast<unsigned>(rng.next_below(n));
      rrt.corrupt_entry(idx, BankMask(entry.mask.bits() ^ (1ull << bit)));
      ++health_.counters.rrt_corruptions;
      // The runtime detects the parity error after a delay and conservatively
      // scrubs the damaged range from the RRT and every cache.
      scrub_rrt(ev.unit % n, entry.prange);
      break;
    }
    case FaultKind::RrtEvict: {
      if (t_.tdnuca == nullptr) break;
      auto& rrt = t_.tdnuca->rrt(ev.unit % n);
      if (rrt.size() == 0) break;
      const unsigned idx =
          static_cast<unsigned>(rng.next_below(rrt.size()));
      const AddrRange prange = rrt.evict_entry(idx);
      ++health_.counters.rrt_evictions;
      scrub_rrt(ev.unit % n, prange);
      break;
    }
    case FaultKind::DramStall: {
      if (t_.mcs == nullptr) break;
      const unsigned mc = ev.unit % t_.mcs->count();
      t_.mcs->mc(mc).inject_stall(t_.eq->now() + ev.length);
      ++health_.counters.dram_stalls;
      break;
    }
  }
  record(ev);
}

void FaultInjector::scrub_rrt(CoreId core, AddrRange prange) {
  t_.eq->schedule_in(cfg_.rrt_scrub_delay, [this, core, prange] {
    ++health_.counters.rrt_scrubs;
    if (t_.tdnuca != nullptr) {
      // Every core's RRT may alias the range (replicated registrations);
      // dropping the entries falls the addresses back to S-NUCA.
      for (CoreId c = 0; c < health_.num_banks(); ++c)
        t_.tdnuca->rrt(c).invalidate_range(prange);
    }
    if (t_.caches != nullptr) {
      // Conservative recovery: the mis-steered window may have scattered the
      // range across arbitrary banks and private caches; flush it everywhere.
      const BankMask all_banks = BankMask::first_n(health_.num_banks());
      const CoreMask all_cores = CoreMask::first_n(health_.num_banks());
      t_.caches->flush_llc_range(all_banks, prange, [] {});
      t_.caches->flush_l1_range(all_cores, prange, [] {});
    }
  });
}

}  // namespace tdn::fault
