// FaultInjector — executes a FaultPlan against a live system.
//
// arm() schedules one *real* event per plan entry (faults are part of the
// simulated machine's history, so they participate in event accounting and
// must be identical across serial/parallel sweep runs). When an event fires
// the injector mutates the shared HealthState and drives the immediate
// recovery actions: evacuating a failed bank, healing every core's RRT,
// scrubbing a corrupted RRT entry after a detection delay, or stalling a
// memory controller. All randomness (which entry a soft error hits, which
// mask bit flips) comes from a SplitMix64 seeded by the plan's canonical
// string and the configured seed — runs are bit-reproducible and
// cache-fingerprintable.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "fault/health.hpp"

namespace tdn::sim {
class EventQueue;
}
namespace tdn::noc {
class Mesh;
class Network;
}
namespace tdn::coherence {
class CoherentSystem;
}
namespace tdn::mem {
class MemControllers;
}
namespace tdn::nuca {
class TdNucaPolicy;
}
namespace tdn::obs {
class Recorder;
}

namespace tdn::fault {

/// Knobs carried inside system::SystemConfig. The plan, seed and scrub delay
/// alter simulation results and feed the config fingerprint; the watchdog
/// budget and invariant toggle are observers and deliberately do not.
struct FaultConfig {
  std::string plan;                ///< DSL spec; empty = no faults
  std::uint64_t seed = 0x7dfb2c9a;  ///< injector PRNG seed
  Cycle rrt_scrub_delay = 2000;    ///< corruption-detection latency before
                                   ///< the runtime scrubs the damaged range
  Cycle watchdog_budget = 0;       ///< no-progress window; 0 = watchdog off
  bool check_invariants = true;    ///< end-of-run InvariantChecker
};

class FaultInjector {
 public:
  struct Targets {
    sim::EventQueue* eq = nullptr;
    const noc::Mesh* mesh = nullptr;
    noc::Network* net = nullptr;
    coherence::CoherentSystem* caches = nullptr;
    mem::MemControllers* mcs = nullptr;
    nuca::TdNucaPolicy* tdnuca = nullptr;  ///< may be null (S-NUCA / R-NUCA)
    obs::Recorder* rec = nullptr;          ///< may be null
  };

  FaultInjector(FaultPlan plan, FaultConfig cfg, Targets t, unsigned num_banks,
                unsigned line_size);

  /// Schedule every plan event. Call once, before the event loop runs.
  void arm();

  /// Checkpoint-restore arming (tdn::ckpt): rebuild the injector's effect
  /// on a freshly constructed machine resuming at cycle @p resume.
  ///
  ///  * Events with `at <= resume` already fired in the snapshotted lineage
  ///    (plan events are scheduled before any periodic chain, so they win
  ///    same-cycle ties against the checkpoint marker). They are REPLAYED as
  ///    pure state mutations — health topology (failed/slowed banks, dead
  ///    and degraded links) and DRAM stall horizons still reaching past the
  ///    boundary (`inject_stall(at + length)`). No events are scheduled, no
  ///    bank evacuation runs (the cold arrays hold nothing to evacuate; the
  ///    snapshotted lineage already paid those flushes), and nothing is
  ///    recorded to the trace.
  ///  * Events with `at > resume` are scheduled normally, exactly as arm()
  ///    would have.
  ///
  /// RRT soft-error events replay as no-ops against the cold (empty) tables;
  /// in serving configurations the TD-NUCA target is detached anyway, so
  /// this loses nothing. Call after EventQueue::fast_forward(resume).
  void arm_from(Cycle resume);

  /// Plan events scheduled but not yet applied — quiescence detection
  /// subtracts these from the pending-event census (a scheduled fault is
  /// expected future work, not an in-flight transaction).
  std::size_t plan_pending() const noexcept { return plan_pending_; }

  HealthState& health() noexcept { return health_; }
  const HealthState& health() const noexcept { return health_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void apply(const FaultEvent& ev, std::size_t index);
  /// State-mutation-only replay of one already-fired event (see arm_from).
  void replay(const FaultEvent& ev, Cycle resume);
  void scrub_rrt(CoreId core, AddrRange prange);
  void record(const FaultEvent& ev);

  FaultPlan plan_;
  FaultConfig cfg_;
  Targets t_;
  HealthState health_;
  std::uint64_t seed_base_;
  bool armed_ = false;
  std::size_t plan_pending_ = 0;
};

}  // namespace tdn::fault
