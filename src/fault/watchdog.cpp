#include "fault/watchdog.hpp"

#include <sstream>

namespace tdn::fault {

void Watchdog::arm() {
  if (budget_ == 0) return;
  last_executed_ = eq_.executed();
  last_progress_ = progress_ ? progress_() : 0;
  eq_.schedule_observer_in(budget_, [this] { tick(); });
}

void Watchdog::tick() {
  ++ticks_;
  if (fired_) return;
  if (eq_.real_pending() == 0) return;  // drained: nothing left to watch
  const std::uint64_t executed = eq_.executed();
  const std::uint64_t progress = progress_ ? progress_() : 0;
  const bool live = executed != last_executed_;
  const bool advanced = progress != last_progress_;
  last_executed_ = executed;
  last_progress_ = progress;
  if (live && !advanced) {
    fired_ = true;
    const std::string d = dump();
    if (on_fire_) {
      on_fire_(d);
      return;  // collector chose not to throw; keep quiet afterwards
    }
    throw WatchdogError(d);
  }
  eq_.schedule_observer_in(budget_, [this] { tick(); });
}

std::string Watchdog::dump() const {
  std::ostringstream os;
  os << "watchdog: no forward progress for " << budget_
     << " cycles despite live event traffic (possible deadlock/livelock)\n";
  os << "  cycle=" << eq_.now() << " pending=" << eq_.pending()
     << " real_pending=" << eq_.real_pending()
     << " executed=" << eq_.executed() << '\n';
  for (const auto& [name, fn] : diagnostics_) {
    os << "  " << name << ": " << fn() << '\n';
  }
  return os.str();
}

}  // namespace tdn::fault
