// Watchdog — detects a wedged simulation and reports a structured
// diagnostic dump instead of letting ctest (or a 12-hour sweep) hang.
//
// Implemented as a self-rescheduling *observer* event so arming it never
// perturbs simulation results: every `budget` cycles it compares the
// progress witness against the previous tick. If real events executed but
// the witness did not advance (a livelock: traffic circulating with no task
// or memory-system progress), it fires. Observer events are excluded from
// EventQueue::executed(), so an idle-but-sampled run can never trip it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace tdn::fault {

/// Thrown (by the default on_fire handler) when the watchdog detects no
/// forward progress; what() carries the full diagnostic dump.
class WatchdogError : public RequireError {
 public:
  explicit WatchdogError(const std::string& what) : RequireError(what) {}
};

class Watchdog {
 public:
  /// @p budget: no-progress cycle window; 0 disables the watchdog.
  Watchdog(sim::EventQueue& eq, Cycle budget) : eq_(eq), budget_(budget) {}

  /// The progress witness: any monotonically increasing counter that moves
  /// whenever the simulation does useful work (default: tasks completed +
  /// memory requests retired; set by TiledSystem).
  void set_progress(std::function<std::uint64_t()> fn) {
    progress_ = std::move(fn);
  }

  /// Register a named diagnostic section for the dump (MSHR occupancy,
  /// per-bank queues, scheduler depth, ...).
  void add_diagnostic(std::string name, std::function<std::string()> fn) {
    diagnostics_.emplace_back(std::move(name), std::move(fn));
  }

  /// Override what happens on detection. Default throws WatchdogError with
  /// the dump; tests install a collector instead to inspect the string.
  void on_fire(std::function<void(const std::string&)> fn) {
    on_fire_ = std::move(fn);
  }

  /// Start ticking. No-op when the budget is 0.
  void arm();

  bool fired() const noexcept { return fired_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

  /// Build the diagnostic dump (public so tests and the on-fire path share
  /// one formatter).
  std::string dump() const;

 private:
  void tick();

  sim::EventQueue& eq_;
  Cycle budget_;
  std::function<std::uint64_t()> progress_;
  std::vector<std::pair<std::string, std::function<std::string()>>> diagnostics_;
  std::function<void(const std::string&)> on_fire_;
  std::uint64_t last_executed_ = 0;
  std::uint64_t last_progress_ = 0;
  std::uint64_t ticks_ = 0;
  bool fired_ = false;
};

}  // namespace tdn::fault
