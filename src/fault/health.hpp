// HealthState — the shared, mutable picture of which NUCA resources are
// currently usable. The FaultInjector writes it when a scheduled fault
// fires; the mapping policies, coherence protocol, NoC and runtime hooks
// read it to steer around dead banks and links (docs/faults.md).
//
// Depends only on common/ so that every layer can hold a pointer without
// cycles. All holders treat a null pointer (or a HealthState with no
// failures) as "fully healthy" and take their original, fault-free code
// paths — an empty fault plan is bit-identical to a build without fault
// support.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/tile_mask.hpp"
#include "common/types.hpp"

namespace tdn::fault {

/// Mesh link directions, matching noc::Network's accounting.
inline constexpr unsigned kLinkEast = 0;
inline constexpr unsigned kLinkWest = 1;
inline constexpr unsigned kLinkNorth = 2;
inline constexpr unsigned kLinkSouth = 3;

/// Raw event counters incremented by the degradation paths. Aggregated into
/// `fault.*` metrics by TiledSystem::collect_stats when a plan is active.
struct FaultCounters {
  std::uint64_t banks_failed = 0;
  std::uint64_t banks_slowed = 0;
  std::uint64_t links_failed = 0;
  std::uint64_t links_degraded = 0;
  std::uint64_t bounced_requests = 0;   ///< LLC requests re-homed off a dead bank
  std::uint64_t dead_bank_writebacks = 0;  ///< writebacks forwarded to DRAM
  std::uint64_t evacuated_lines = 0;
  std::uint64_t evacuated_dirty = 0;
  std::uint64_t rrt_entries_narrowed = 0;
  std::uint64_t rrt_entries_dropped = 0;
  std::uint64_t rrt_corruptions = 0;
  std::uint64_t rrt_evictions = 0;
  std::uint64_t rrt_scrubs = 0;
  std::uint64_t noc_reroutes = 0;    ///< packets sent via Y-X fallback
  std::uint64_t noc_retries = 0;     ///< packets delayed by dead-link backoff
  std::uint64_t dram_stalls = 0;
};

class HealthState {
 public:
  HealthState(unsigned num_banks, unsigned line_size)
      : num_banks_(num_banks),
        line_size_(line_size),
        bank_factor_(num_banks, 1u),
        link_failed_(static_cast<std::size_t>(num_banks) * 4, 0u),
        link_factor_(static_cast<std::size_t>(num_banks) * 4, 1u) {
    for (BankId b = 0; b < num_banks; ++b) healthy_.push_back(b);
  }

  // --- banks ----------------------------------------------------------
  void fail_bank(BankId b) {
    TDN_REQUIRE(b < num_banks_, "fault: bank index out of range");
    if (failed_banks_.test(b)) return;
    TDN_REQUIRE(healthy_.size() > 1, "fault: cannot fail the last LLC bank");
    failed_banks_.set(b);
    healthy_.clear();
    for (BankId i = 0; i < num_banks_; ++i)
      if (!failed_banks_.test(i)) healthy_.push_back(i);
    ++counters.banks_failed;
  }
  void slow_bank(BankId b, unsigned factor) {
    TDN_REQUIRE(b < num_banks_, "fault: bank index out of range");
    TDN_REQUIRE(factor >= 1, "fault: bank slow-down factor must be >= 1");
    bank_factor_[b] = factor;
    ++counters.banks_slowed;
  }
  bool bank_ok(BankId b) const { return !failed_banks_.test(b); }
  unsigned bank_factor(BankId b) const { return bank_factor_[b]; }
  bool any_bank_failed() const { return !failed_banks_.empty(); }
  bool any_bank_slowed() const {
    for (const unsigned f : bank_factor_)
      if (f != 1) return true;
    return false;
  }
  BankMask healthy_banks() const {
    BankMask m;
    for (const BankId b : healthy_) m.set(b);
    return m;
  }
  BankMask failed_banks() const { return failed_banks_; }
  unsigned num_healthy() const { return static_cast<unsigned>(healthy_.size()); }

  /// S-NUCA line interleaving restricted to the healthy banks — the
  /// degraded fallback home for any address (paper Sec. III-B2's overflow
  /// fallback, shrunk to the surviving set).
  BankId remap_bank(Addr paddr) const {
    return healthy_[(paddr / line_size_) % healthy_.size()];
  }

  // --- mesh links (per source tile, per direction) --------------------
  void fail_link(CoreId tile, unsigned dir) {
    link_failed_.at(link_index(tile, dir)) = 1;
    any_link_failed_ = true;
    ++counters.links_failed;
  }
  void degrade_link(CoreId tile, unsigned dir, unsigned factor) {
    TDN_REQUIRE(factor >= 1, "fault: link degrade factor must be >= 1");
    link_factor_.at(link_index(tile, dir)) = factor;
    ++counters.links_degraded;
  }
  bool link_ok(CoreId tile, unsigned dir) const {
    return link_failed_[link_index(tile, dir)] == 0;
  }
  unsigned link_factor(CoreId tile, unsigned dir) const {
    return link_factor_[link_index(tile, dir)];
  }
  bool any_link_failed() const { return any_link_failed_; }

  /// True when any resource is failed/degraded — the cheap "do I need to
  /// look?" gate the hot paths use before consulting details.
  bool any_fault() const {
    return any_bank_failed() || any_bank_slowed() || any_link_failed_;
  }

  unsigned num_banks() const { return num_banks_; }
  unsigned line_size() const { return line_size_; }

  /// Degradation-path event counters; mutable by design (written by const
  /// holders on otherwise-const paths).
  mutable FaultCounters counters;

 private:
  std::size_t link_index(CoreId tile, unsigned dir) const {
    TDN_REQUIRE(tile < num_banks_ && dir < 4, "fault: link index out of range");
    return static_cast<std::size_t>(tile) * 4 + dir;
  }

  unsigned num_banks_;
  unsigned line_size_;
  BankMask failed_banks_;
  std::vector<BankId> healthy_;
  std::vector<unsigned> bank_factor_;
  std::vector<std::uint8_t> link_failed_;
  std::vector<unsigned> link_factor_;
  bool any_link_failed_ = false;
};

}  // namespace tdn::fault
