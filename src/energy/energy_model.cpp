#include "energy/energy_model.hpp"

#include "coherence/coherent_system.hpp"
#include "mem/dram.hpp"
#include "noc/network.hpp"

namespace tdn::energy {

EnergyBreakdown compute_energy(const EnergyInputs& in,
                               const EnergyParams& p) {
  EnergyBreakdown e;
  // Every event that reads or writes a bank's data/tag arrays:
  // demand lookups, fills after misses, writebacks, and flush-engine scans.
  // The summation order is load-bearing: it matches the original
  // object-based formula exactly, so fingerprint goldens are unchanged.
  const double llc_events =
      static_cast<double>(in.llc_requests) +
      static_cast<double>(in.llc_misses) +     // fill write
      static_cast<double>(in.llc_writebacks) +
      static_cast<double>(in.flush_llc_lines);
  e.llc_pj = llc_events * p.llc_access_pj;
  const double l1_events = static_cast<double>(in.l1_hits) +
                           static_cast<double>(in.l1_misses) +
                           static_cast<double>(in.flush_l1_lines);
  e.l1_pj = l1_events * p.l1_access_pj;
  e.noc_pj = static_cast<double>(in.noc_router_bytes) * p.noc_byte_hop_pj;
  e.dram_pj = static_cast<double>(in.dram_accesses) * p.dram_access_pj;
  e.rrt_pj =
      static_cast<double>(in.rrt_lookups) * p.rrt_sram_pj * p.rrt_tcam_factor;
  return e;
}

EnergyBreakdown compute_energy(const coherence::CoherentSystem& caches,
                               const noc::Network& net,
                               const mem::MemControllers& mcs,
                               std::uint64_t rrt_lookups,
                               const EnergyParams& p) {
  const auto& s = caches.stats();
  EnergyInputs in;
  in.llc_requests = s.llc_requests.value();
  in.llc_misses = s.llc_misses.value();
  in.llc_writebacks = s.llc_writebacks.value();
  in.flush_llc_lines = s.flush_llc_lines.value();
  in.l1_hits = s.l1_hits.value();
  in.l1_misses = s.l1_misses.value();
  in.flush_l1_lines = s.flush_l1_lines.value();
  in.noc_router_bytes = net.total_router_bytes();
  in.dram_accesses = mcs.total_accesses();
  in.rrt_lookups = rrt_lookups;
  return compute_energy(in, p);
}

}  // namespace tdn::energy
