#include "energy/energy_model.hpp"

#include "coherence/coherent_system.hpp"
#include "mem/dram.hpp"
#include "noc/network.hpp"

namespace tdn::energy {

EnergyBreakdown compute_energy(const coherence::CoherentSystem& caches,
                               const noc::Network& net,
                               const mem::MemControllers& mcs,
                               std::uint64_t rrt_lookups,
                               const EnergyParams& p) {
  EnergyBreakdown e;
  const auto& s = caches.stats();
  // Every event that reads or writes a bank's data/tag arrays:
  // demand lookups, fills after misses, writebacks, and flush-engine scans.
  const double llc_events =
      static_cast<double>(s.llc_requests.value()) +
      static_cast<double>(s.llc_misses.value()) +     // fill write
      static_cast<double>(s.llc_writebacks.value()) +
      static_cast<double>(s.flush_llc_lines.value());
  e.llc_pj = llc_events * p.llc_access_pj;
  const double l1_events = static_cast<double>(s.l1_hits.value()) +
                           static_cast<double>(s.l1_misses.value()) +
                           static_cast<double>(s.flush_l1_lines.value());
  e.l1_pj = l1_events * p.l1_access_pj;
  e.noc_pj = static_cast<double>(net.total_router_bytes()) * p.noc_byte_hop_pj;
  e.dram_pj = static_cast<double>(mcs.total_accesses()) * p.dram_access_pj;
  e.rrt_pj = static_cast<double>(rrt_lookups) * p.rrt_sram_pj * p.rrt_tcam_factor;
  return e;
}

}  // namespace tdn::energy
