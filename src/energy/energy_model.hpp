// Event-based dynamic energy model (McPAT/CACTI substitution; DESIGN.md
// Sec. 2). Per-event energies are CACTI-6.0-flavoured values for a 22nm
// process; the paper's Figures 13/14 report energies *normalized to S-NUCA*,
// which this linear model reproduces because the figures track LLC access
// counts and NoC byte-hops.
//
// The RRT is modelled as an SRAM whose per-access energy is multiplied by
// 30 to approximate a real TCAM implementation (paper Sec. V-E, citing
// Z-TCAM).
#pragma once

#include <cstdint>

namespace tdn::coherence {
class CoherentSystem;
}
namespace tdn::noc {
class Network;
}
namespace tdn::mem {
class MemControllers;
}

namespace tdn::energy {

struct EnergyParams {
  double llc_access_pj = 150.0;   ///< one 64B read/write of a 16-way bank
  double l1_access_pj = 12.0;     ///< one L1 access
  double dram_access_pj = 2200.0; ///< one 64B DRAM transfer
  double noc_byte_hop_pj = 1.1;   ///< moving one byte through one router+link
  double rrt_sram_pj = 0.6;       ///< SRAM-equivalent RRT lookup
  double rrt_tcam_factor = 30.0;  ///< TCAM approximation multiplier
};

struct EnergyBreakdown {
  double llc_pj = 0;
  double noc_pj = 0;
  double dram_pj = 0;
  double l1_pj = 0;
  double rrt_pj = 0;
  double total_pj() const { return llc_pj + noc_pj + dram_pj + l1_pj + rrt_pj; }
};

/// The raw event counts the model consumes, decoupled from the live
/// objects. Checkpoint folds (tdn::ckpt) sum a baseline's counts with the
/// post-restore counts *as integers* and evaluate the model once on the
/// combined inputs — the only way the interrupted+resumed lineage's energy
/// is bit-identical to the uninterrupted one (evaluating the linear model
/// per segment and adding the doubles is not associative).
struct EnergyInputs {
  std::uint64_t llc_requests = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t llc_writebacks = 0;
  std::uint64_t flush_llc_lines = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t flush_l1_lines = 0;
  std::uint64_t noc_router_bytes = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t rrt_lookups = 0;
};

/// Aggregate dynamic energy from explicit event counts.
EnergyBreakdown compute_energy(const EnergyInputs& in,
                               const EnergyParams& params = {});

/// Aggregate dynamic energy from the run's event counts.
/// @p rrt_lookups is 0 for policies without an RRT.
EnergyBreakdown compute_energy(const coherence::CoherentSystem& caches,
                               const noc::Network& net,
                               const mem::MemControllers& mcs,
                               std::uint64_t rrt_lookups,
                               const EnergyParams& params = {});

}  // namespace tdn::energy
