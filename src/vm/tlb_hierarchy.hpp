// Two-level data TLB for vm mode: split L1 (one fully-associative LRU array
// per page size, as x86 cores split 4K/2M/1G dTLBs) backed by a unified L2
// ("STLB") holding entries of every size. Shootdown semantics match the
// legacy single-level TLB: invalidate_page drops the covering entry from
// every level and counts one shootdown.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.hpp"
#include "vm/config.hpp"

namespace tdn::vm {

/// One fully-associative true-LRU translation array whose entries map a
/// va_base to a page span. The unified level stores mixed spans; lookup
/// probes the 4K/2M/1G alignments of the address (three tag compares — how
/// hardware STLBs hash mixed sizes is modeled away).
class TlbArray {
 public:
  /// @p fixed_span != 0 pins every entry to one span (split-L1 arrays and
  /// the walker's paging-structure caches): lookups probe a single
  /// alignment. 0 = mixed spans (unified L2), probing the 4K/2M/1G
  /// alignments.
  explicit TlbArray(unsigned entries, Addr fixed_span = 0)
      : entries_(entries), fixed_span_(fixed_span) {}

  /// True if an entry covers @p vaddr; updates LRU. On a hit the covering
  /// entry's geometry is reported through the optional out-params (used by
  /// the unified L2 to refill the right split-L1 array).
  bool lookup(Addr vaddr, Addr* base = nullptr, Addr* span = nullptr);
  void fill(Addr va_base, Addr span);
  /// Drop the entry covering @p vaddr, if any; returns whether one existed.
  bool invalidate(Addr vaddr);
  void clear();
  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::list<Addr>::iterator find(Addr vaddr);

  unsigned entries_;
  Addr fixed_span_;
  std::list<Addr> lru_;  // front = most recent; values are va_base
  std::unordered_map<Addr, std::pair<std::list<Addr>::iterator, Addr>>
      map_;  // va_base -> (lru pos, span)
};

class TlbHierarchy {
 public:
  explicit TlbHierarchy(const VmConfig& cfg);

  struct Result {
    bool hit = false;
    Cycle latency = 0;  ///< probe latency (miss = full L1+L2 probe cost)
  };
  /// Probe L1 (by the page size of the translation, unknown to the
  /// requester: all three split arrays are probed in parallel, so one L1
  /// latency) then L2. An L2 hit refills the L1 array of its size class.
  Result lookup(Addr vaddr);
  /// Install a translation in L2 and the size-appropriate L1 array.
  void fill(Addr va_base, Addr span);
  /// TLB shootdown for the page covering @p vaddr.
  void invalidate_page(Addr vaddr);
  void invalidate_all();
  /// Drop every entry WITHOUT counting shootdowns (checkpoint cold
  /// normalization — see mem::Tlb::ckpt_cold_reset).
  void ckpt_cold_reset() {
    l1_4k_.clear();
    l1_2m_.clear();
    l1_1g_.clear();
    l2_.clear();
  }

  std::uint64_t l1_hits() const noexcept { return l1_hits_; }
  std::uint64_t l2_hits() const noexcept { return l2_hits_; }
  std::uint64_t hits() const noexcept { return l1_hits_ + l2_hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t shootdowns() const noexcept { return shootdowns_; }
  /// Zero the counters (checkpoint counter folding); entries are untouched.
  void reset_stats() noexcept {
    l1_hits_ = l2_hits_ = misses_ = shootdowns_ = 0;
  }

 private:
  TlbArray& l1_for(Addr span);

  VmConfig cfg_;
  TlbArray l1_4k_;
  TlbArray l1_2m_;
  TlbArray l1_1g_;
  TlbArray l2_;
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t shootdowns_ = 0;
};

}  // namespace tdn::vm
