#include "vm/tlb_hierarchy.hpp"

namespace tdn::vm {

std::list<Addr>::iterator TlbArray::find(Addr vaddr) {
  // An entry's key is its va_base; with mixed spans the covering entry (if
  // any) is keyed at one of the three page-size alignments of vaddr.
  if (fixed_span_ != 0) {
    auto it = map_.find(align_down(vaddr, fixed_span_));
    return it != map_.end() ? it->second.first : lru_.end();
  }
  for (Addr span : {kPage4K, kPage2M, kPage1G}) {
    auto it = map_.find(align_down(vaddr, span));
    if (it != map_.end() && vaddr < it->first + it->second.second)
      return it->second.first;
  }
  return lru_.end();
}

bool TlbArray::lookup(Addr vaddr, Addr* base, Addr* span) {
  auto pos = find(vaddr);
  if (pos == lru_.end()) return false;
  if (base != nullptr) *base = *pos;
  if (span != nullptr) *span = map_.at(*pos).second;
  lru_.splice(lru_.begin(), lru_, pos);  // promote to MRU
  return true;
}

void TlbArray::fill(Addr va_base, Addr span) {
  if (entries_ == 0) return;
  auto it = map_.find(va_base);
  if (it != map_.end()) {
    it->second.second = span;
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return;
  }
  if (map_.size() >= entries_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(va_base);
  map_[va_base] = {lru_.begin(), span};
}

bool TlbArray::invalidate(Addr vaddr) {
  auto pos = find(vaddr);
  if (pos == lru_.end()) return false;
  map_.erase(*pos);
  lru_.erase(pos);
  return true;
}

void TlbArray::clear() {
  map_.clear();
  lru_.clear();
}

TlbHierarchy::TlbHierarchy(const VmConfig& cfg)
    : cfg_(cfg), l1_4k_(cfg.l1_4k_entries, kPage4K),
      l1_2m_(cfg.l1_2m_entries, kPage2M), l1_1g_(cfg.l1_1g_entries, kPage1G),
      l2_(cfg.l2_entries) {}

TlbArray& TlbHierarchy::l1_for(Addr span) {
  if (span >= kPage1G) return l1_1g_;
  if (span >= kPage2M) return l1_2m_;
  return l1_4k_;
}

TlbHierarchy::Result TlbHierarchy::lookup(Addr vaddr) {
  if (l1_4k_.lookup(vaddr) || l1_2m_.lookup(vaddr) || l1_1g_.lookup(vaddr)) {
    ++l1_hits_;
    return {true, cfg_.l1_latency};
  }
  Addr base = 0;
  Addr span = 0;
  if (l2_.lookup(vaddr, &base, &span)) {
    ++l2_hits_;
    // Refill the size-appropriate L1 array so the next access hits fast.
    l1_for(span).fill(base, span);
    return {true, cfg_.l1_latency + cfg_.l2_latency};
  }
  ++misses_;
  return {false, cfg_.l1_latency + cfg_.l2_latency};
}

void TlbHierarchy::fill(Addr va_base, Addr span) {
  l2_.fill(va_base, span);
  l1_for(span).fill(va_base, span);
}

void TlbHierarchy::invalidate_page(Addr vaddr) {
  bool any = l1_4k_.invalidate(vaddr);
  any = l1_2m_.invalidate(vaddr) || any;
  any = l1_1g_.invalidate(vaddr) || any;
  any = l2_.invalidate(vaddr) || any;
  if (any) ++shootdowns_;
}

void TlbHierarchy::invalidate_all() {
  shootdowns_ += l2_.size();
  l1_4k_.clear();
  l1_2m_.clear();
  l1_1g_.clear();
  l2_.clear();
}

}  // namespace tdn::vm
