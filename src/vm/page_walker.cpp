#include "vm/page_walker.hpp"

#include <array>
#include <memory>

#include "coherence/coherent_system.hpp"
#include "common/prng.hpp"
#include "sim/event_queue.hpp"

namespace tdn::vm {

namespace {
/// Page-table structures live in this physical window above kKernelBase.
constexpr Addr kPtRegion = 256 * kMiB;
/// VA-region span covered by one entry at each radix level (level-1 span is
/// the page itself and depends on the page size).
constexpr Addr kLevelSpan[5] = {0, kPage4K, kPage2M, kPage1G, 512 * kPage1G};
}  // namespace

PageWalker::PageWalker(CoreId core, sim::EventQueue& eq,
                       coherence::CoherentSystem* caches, const VmConfig& cfg)
    : core_(core), eq_(eq), caches_(caches), cfg_(cfg),
      psc_l4_(cfg.psc_l4_entries, kLevelSpan[4]),
      psc_l3_(cfg.psc_l3_entries, kLevelSpan[3]),
      psc_l2_(cfg.psc_l2_entries, kLevelSpan[2]) {}

unsigned PageWalker::leaf_level(Addr span) {
  if (span >= kPage1G) return 3;
  if (span >= kPage2M) return 2;
  return 1;
}

Addr PageWalker::level_prefix(Addr vaddr, unsigned level) {
  return align_down(vaddr, kLevelSpan[level]);
}

Addr PageWalker::pte_paddr(unsigned level, Addr vaddr) const {
  const unsigned shift = 12 + 9 * (level - 1);
  const Addr idx = (vaddr >> shift) & 0x1ff;
  // Each radix table sits at a deterministic pseudo-random 4K-aligned slot
  // in the kernel window, derived from (level, table-covering prefix).
  const std::uint64_t key[2] = {level, vaddr >> (shift + 9)};
  const std::uint64_t h =
      fnv1a64(reinterpret_cast<const char*>(key), sizeof key);
  return kKernelBase + align_down(h & (kPtRegion - 1), kPage4K) + idx * 8;
}

void PageWalker::plan_loads(Addr vaddr, Addr span, Addr out[4], unsigned& n) {
  const unsigned leaf = leaf_level(span);
  // Deepest paging-structure-cache hit wins: a cached level-L entry skips
  // every load above level L-1. Non-leaf entries only — the leaf is the
  // TLB's job.
  unsigned top = 4;
  if (leaf < 2 && psc_l2_.lookup(vaddr)) {
    top = 1;
    ++psc_hits_;
  } else if (leaf < 3 && psc_l3_.lookup(vaddr)) {
    top = 2;
    ++psc_hits_;
  } else if (leaf < 4 && psc_l4_.lookup(vaddr)) {
    top = 3;
    ++psc_hits_;
  }
  if (top < leaf) top = leaf;
  n = 0;
  for (unsigned level = top; level >= leaf; --level)
    out[n++] = pte_paddr(level, vaddr);
}

void PageWalker::fill_psc(Addr vaddr, Addr span) {
  const unsigned leaf = leaf_level(span);
  if (leaf < 4)
    psc_l4_.fill(level_prefix(vaddr, 4), kLevelSpan[4]);
  if (leaf < 3)
    psc_l3_.fill(level_prefix(vaddr, 3), kLevelSpan[3]);
  if (leaf < 2)
    psc_l2_.fill(level_prefix(vaddr, 2), kLevelSpan[2]);
}

void PageWalker::walk(Addr vaddr, Addr span, std::function<void(Cycle)> done) {
  struct Job {
    std::array<Addr, 4> loads;
    unsigned n = 0;
    Cycle start = 0;
    std::function<void(Cycle)> done;
  };
  auto job = std::make_shared<Job>();
  plan_loads(vaddr, span, job->loads.data(), job->n);
  ++walks_;
  walk_loads_ += job->n;
  job->start = eq_.now();
  job->done = std::move(done);

  // Dependent chain: each PTE load's fill triggers the next level's load.
  auto step = [this, job, vaddr, span](unsigned i, const auto& self) -> void {
    if (i == job->n) {
      fill_psc(vaddr, span);
      const Cycle lat = (eq_.now() - job->start) + cfg_.psc_latency;
      walk_cycles_ += lat;
      job->done(lat);
      return;
    }
    const Addr pa = job->loads[i];
    caches_->access(core_, pa, pa, AccessKind::Read,
                   [i, self](Cycle) { self(i + 1, self); });
  };
  step(0, step);
}

Cycle PageWalker::charge_walk(Addr vaddr, Addr span) {
  Addr loads[4];
  unsigned n = 0;
  plan_loads(vaddr, span, loads, n);
  ++walks_;
  walk_loads_ += n;
  fill_psc(vaddr, span);
  const Cycle c = cfg_.psc_latency + n * cfg_.walk_charge_per_level;
  charge_cycles_ += c;
  // Fire the same PTE loads into the hierarchy (chained, fire-and-forget)
  // so the ISA-path walk warms and perturbs the caches like hardware would,
  // while its cycle cost stays a deterministic synchronous charge.
  struct Job {
    std::array<Addr, 4> loads;
    unsigned n = 0;
  };
  auto job = std::make_shared<Job>();
  std::copy(loads, loads + n, job->loads.begin());
  job->n = n;
  auto step = [this, job](unsigned i, const auto& self) -> void {
    if (i == job->n) return;
    const Addr pa = job->loads[i];
    caches_->access(core_, pa, pa, AccessKind::Read,
                   [i, self](Cycle) { self(i + 1, self); });
  };
  step(0, step);
  return c;
}

void PageWalker::invalidate_psc(Addr vaddr) {
  // A leaf change can promote/demote the covering PDE; drop it. Upper
  // levels are structural and survive shootdowns.
  psc_l2_.invalidate(vaddr);
}

void PageWalker::clear_psc() {
  psc_l4_.clear();
  psc_l3_.clear();
  psc_l2_.clear();
}

}  // namespace tdn::vm
