#include "vm/mmu.hpp"

#include "common/require.hpp"

namespace tdn::vm {

Mmu::Mmu(CoreId core, sim::EventQueue& eq, coherence::CoherentSystem* caches,
         mem::PageTable& pt, const mem::TlbConfig& legacy_cfg,
         const VmConfig& vm)
    : pt_(pt), vm_(vm), tlb_(legacy_cfg, pt.page_size()), tlbs_(vm),
      walker_(core, eq, caches, vm) {
  TDN_REQUIRE(!vm.enabled || caches != nullptr,
              "vm mode needs a cache hierarchy for page walks");
}

void Mmu::translate(Addr vaddr, std::function<void(Cycle, Addr)> done) {
  if (!vm_.enabled) {
    const Cycle lat = tlb_.access(vaddr);
    if (obs_translation_ != nullptr) obs_translation_->add(lat);
    done(lat, pt_.translate(vaddr));
    return;
  }
  const TlbHierarchy::Result r = tlbs_.lookup(vaddr);
  if (r.hit) {
    if (obs_translation_ != nullptr) obs_translation_->add(r.latency);
    done(r.latency, pt_.translate(vaddr));
    return;
  }
  const mem::PageTable::PageMapping m = pt_.touch_page(vaddr);
  walker_.walk(vaddr, m.span,
               [this, vaddr, m, probe = r.latency,
                done = std::move(done)](Cycle walk_cycles) {
                 tlbs_.fill(m.va_base, m.span);
                 const Cycle lat = probe + walk_cycles;
                 if (obs_translation_ != nullptr) obs_translation_->add(lat);
                 if (obs_walk_ != nullptr) obs_walk_->add(walk_cycles);
                 done(lat, m.pa_base + (vaddr - m.va_base));
               });
}

Cycle Mmu::charge_translation(Addr vaddr) {
  if (!vm_.enabled) return tlb_.access(vaddr);
  const TlbHierarchy::Result r = tlbs_.lookup(vaddr);
  if (r.hit) return r.latency;
  const mem::PageTable::PageMapping m = pt_.touch_page(vaddr);
  const Cycle walk = walker_.charge_walk(vaddr, m.span);
  tlbs_.fill(m.va_base, m.span);
  return r.latency + walk;
}

void Mmu::invalidate_page(Addr vaddr) {
  if (!vm_.enabled) {
    tlb_.invalidate_page(vaddr);
    return;
  }
  tlbs_.invalidate_page(vaddr);
  walker_.invalidate_psc(vaddr);
}

void Mmu::invalidate_all() {
  if (!vm_.enabled) {
    tlb_.invalidate_all();
    return;
  }
  tlbs_.invalidate_all();
  walker_.clear_psc();
}

void Mmu::ckpt_cold_reset() {
  if (!vm_.enabled) {
    tlb_.ckpt_cold_reset();
    return;
  }
  tlbs_.ckpt_cold_reset();
  walker_.clear_psc();
}

}  // namespace tdn::vm
