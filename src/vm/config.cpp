#include "vm/config.hpp"

#include <sstream>

namespace tdn::vm {

std::string VmConfig::canonical() const {
  if (!enabled) return "off";
  std::ostringstream os;
  os << "thp=" << to_string(thp) << ",1g=" << use_1g
     << ",frag=" << fragmentation << ",seed=" << seed << ",l1="
     << l1_4k_entries << '.' << l1_2m_entries << '.' << l1_1g_entries << '@'
     << l1_latency << ",l2=" << l2_entries << '@' << l2_latency << ",psc="
     << psc_l4_entries << '.' << psc_l3_entries << '.' << psc_l2_entries
     << '@' << psc_latency << ",chg=" << walk_charge_per_level;
  return os.str();
}

}  // namespace tdn::vm
