// tdn::vm configuration — the modular virtual-memory subsystem
// (docs/memory.md).
//
// With `enabled = false` (the default) the memory system is the legacy
// first-touch 4K model: flat per-core TLB, constant miss penalty, PRNG
// fragmentation injection. Every pre-existing fingerprint reproduces
// bit-identically. With `enabled = true` the Mmu replaces that path end to
// end: multi-size pages (4K/2M/1G) from a contiguity-aware buddy allocator,
// a split-L1 + unified-L2 TLB, and a modeled radix page walk whose loads
// travel the real cache hierarchy, fronted by paging-structure caches.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tdn::vm {

inline constexpr Addr kPage4K = 4 * kKiB;
inline constexpr Addr kPage2M = 2 * kMiB;
inline constexpr Addr kPage1G = kGiB;

/// Transparent-huge-page policy, mirroring Linux
/// /sys/kernel/mm/transparent_hugepage/enabled:
///   Never   — base 4K pages only.
///   Always  — the allocator promotes any aligned fault to the largest page
///             it can back contiguously (over-mapping past the region is
///             allowed: THP bloat).
///   Madvise — huge pages only inside ranges the runtime has advised
///             (TdNucaRuntimeHooks issues the hint from the dependency
///             region at tdnuca_register time).
enum class ThpPolicy : std::uint8_t { Never, Always, Madvise };

constexpr const char* to_string(ThpPolicy p) noexcept {
  switch (p) {
    case ThpPolicy::Never: return "never";
    case ThpPolicy::Always: return "always";
    case ThpPolicy::Madvise: return "madvise";
  }
  return "?";
}

struct VmConfig {
  bool enabled = false;
  ThpPolicy thp = ThpPolicy::Never;
  /// Allow 1G pages (gated separately: 1G-capable TLBs are rarer and 1G
  /// mappings over-map aggressively under ThpPolicy::Always).
  bool use_1g = false;
  /// Physical-pool fragmentation: probability that a 2M-aligned block of a
  /// freshly grown superblock gets one of its 4K frames punctured (reserved
  /// by the "kernel"), breaking its contiguity. Subsumes the legacy
  /// PageTableConfig::fragmentation knob for vm-mode runs.
  double fragmentation = 0.15;
  std::uint64_t seed = 0x9a1b44d0'c3f72e85ull;

  // --- two-level data TLB (per core) -----------------------------------
  unsigned l1_4k_entries = 64;
  unsigned l1_2m_entries = 32;
  unsigned l1_1g_entries = 4;
  Cycle l1_latency = 1;
  unsigned l2_entries = 1024;  ///< unified second-level TLB (all page sizes)
  Cycle l2_latency = 8;

  // --- hardware page walker --------------------------------------------
  /// Paging-structure cache sizes by radix level (PML4E / PDPTE / PDE).
  /// A hit at level L lets the walker skip the loads above level L.
  unsigned psc_l4_entries = 16;
  unsigned psc_l3_entries = 16;
  unsigned psc_l2_entries = 64;
  Cycle psc_latency = 1;
  /// Synchronous-path charge per walker load (ISA translation inside
  /// tdnuca_register executes under the runtime lock; its walk cost is
  /// charged as cycles while the real PTE loads are fired into the
  /// hierarchy to warm/perturb it like hardware would).
  Cycle walk_charge_per_level = 30;

  /// Stable textual form for config fingerprints. Collapses to "off" when
  /// disabled so pre-vm fingerprints depend on nothing else in here.
  std::string canonical() const;
};

}  // namespace tdn::vm
