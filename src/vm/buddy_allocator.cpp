#include "vm/buddy_allocator.hpp"

#include "common/require.hpp"

namespace tdn::vm {

namespace {
constexpr std::uint64_t kFramesPer2M = 512;   // order 9
constexpr unsigned k2MOrder = 9;
}  // namespace

BuddyAllocator::BuddyAllocator(double puncture, std::uint64_t seed)
    : puncture_(puncture), rng_(seed) {
  TDN_REQUIRE(puncture_ >= 0.0 && puncture_ <= 1.0,
              "puncture probability must be in [0,1]");
}

void BuddyAllocator::grow() {
  const std::uint64_t base = superblocks_ << kMaxOrder;
  ++superblocks_;
  free_[kMaxOrder].insert(base);
  if (puncture_ <= 0.0) return;
  for (std::uint64_t blk = 0; blk < (1ull << (kMaxOrder - k2MOrder)); ++blk) {
    if (rng_.next_double() >= puncture_) continue;
    const std::uint64_t victim =
        base + blk * kFramesPer2M + rng_.next_below(kFramesPer2M);
    take_frame(victim);
    ++punctured_;
  }
}

void BuddyAllocator::take_frame(std::uint64_t frame) {
  // Find the free block containing `frame`, smallest order first.
  for (unsigned o = 0; o <= kMaxOrder; ++o) {
    const std::uint64_t blk = frame & ~((1ull << o) - 1);
    auto it = free_[o].find(blk);
    if (it == free_[o].end()) continue;
    free_[o].erase(it);
    // Split down, keeping the half that contains `frame` each time and
    // freeing its buddy.
    for (unsigned k = o; k > 0; --k) {
      const std::uint64_t half = 1ull << (k - 1);
      const std::uint64_t lo = frame & ~((1ull << k) - 1);
      free_[k - 1].insert(frame < lo + half ? lo + half : lo);
    }
    return;
  }
  // Already allocated (a previous puncture landed on the same frame).
}

std::optional<std::uint64_t> BuddyAllocator::try_allocate(unsigned order,
                                                          unsigned max_grows) {
  TDN_REQUIRE(order <= kMaxOrder, "order exceeds superblock order");
  for (;;) {
    for (unsigned o = order; o <= kMaxOrder; ++o) {
      if (free_[o].empty()) continue;
      std::uint64_t base = *free_[o].begin();
      free_[o].erase(free_[o].begin());
      for (unsigned k = o; k > order; --k)
        free_[k - 1].insert(base + (1ull << (k - 1)));  // free the upper half
      frames_allocated_ += 1ull << order;
      return base;
    }
    if (max_grows == 0) return std::nullopt;
    --max_grows;
    grow();
  }
}

std::vector<std::uint64_t> BuddyAllocator::serialize() const {
  std::vector<std::uint64_t> w;
  w.push_back(rng_.state());
  w.push_back(superblocks_);
  w.push_back(frames_allocated_);
  w.push_back(punctured_);
  for (const auto& fl : free_) {
    w.push_back(fl.size());
    w.insert(w.end(), fl.begin(), fl.end());
  }
  return w;
}

void BuddyAllocator::restore(const std::vector<std::uint64_t>& words) {
  std::size_t i = 0;
  auto next = [&] {
    TDN_REQUIRE(i < words.size(), "truncated buddy-allocator snapshot");
    return words[i++];
  };
  rng_.set_state(next());
  superblocks_ = next();
  frames_allocated_ = next();
  punctured_ = next();
  for (auto& fl : free_) {
    fl.clear();
    std::uint64_t n = next();
    while (n-- > 0) fl.insert(fl.end(), next());
  }
  TDN_REQUIRE(i == words.size(), "trailing data in buddy-allocator snapshot");
}

}  // namespace tdn::vm
