// Hardware page-table walker model.
//
// On a TLB miss the walker resolves the translation by issuing the radix
// walk's PTE loads as *real memory accesses* through the coherent cache
// hierarchy — they travel the NoC, can hit in LLC banks, and fall through
// to DRAM, so walk latency responds to cache pressure and NUCA distance
// instead of being a constant penalty. Paging-structure caches (PSCs, one
// small LRU per non-leaf radix level, as in x86 MMUs) let warm walks skip
// the upper levels: a walk for a 4K page costs 4 dependent loads cold but
// typically 1-2 warm.
//
// Page-table layout: the simulated kernel places each radix table at a
// deterministic pseudo-random 4K-aligned address inside [kKernelBase,
// kKernelBase + 256 MiB), derived by hashing (level, va-prefix). Entries
// are 8 bytes, so walks for neighbouring pages hit the same PTE cache
// lines — the spatial locality real walkers exploit.
//
// Two entry points mirror the two translation contexts:
//  * walk()        — demand-path TLB miss: fully event-driven, dependent
//                    loads chained through the hierarchy, completion via
//                    callback.
//  * charge_walk() — ISA path (tdnuca_register's iterative translation,
//                    executed under the runtime lock): returns a
//                    deterministic synchronous cycle charge and fires the
//                    same PTE loads fire-and-forget so the hierarchy is
//                    warmed/perturbed like hardware would.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "vm/config.hpp"
#include "vm/tlb_hierarchy.hpp"

namespace tdn::sim {
class EventQueue;
}
namespace tdn::coherence {
class CoherentSystem;
}

namespace tdn::vm {

class PageWalker {
 public:
  /// @p caches may be null only when vm is disabled (the walker is then
  /// never invoked) — lets tests build legacy-mode Mmus without a system.
  PageWalker(CoreId core, sim::EventQueue& eq,
             coherence::CoherentSystem* caches, const VmConfig& cfg);

  /// Resolve the translation for an established mapping of size @p span
  /// covering @p vaddr. Issues the (PSC-shortened) chain of dependent PTE
  /// loads; @p done fires with the walk's total cycle cost when the last
  /// load returns.
  void walk(Addr vaddr, Addr span, std::function<void(Cycle)> done);

  /// Synchronous ISA-path walk: returns psc_latency + loads *
  /// walk_charge_per_level, fires the PTE loads into the hierarchy in the
  /// background, and fills the PSC as if the walk completed.
  Cycle charge_walk(Addr vaddr, Addr span);

  void invalidate_psc(Addr vaddr);
  void clear_psc();

  std::uint64_t walks() const noexcept { return walks_; }
  std::uint64_t walk_loads() const noexcept { return walk_loads_; }
  /// Demand-walk cycles measured through the hierarchy.
  Cycle walk_cycles() const noexcept { return walk_cycles_; }
  /// ISA-path walk cycles charged synchronously.
  Cycle charge_cycles() const noexcept { return charge_cycles_; }
  std::uint64_t psc_hits() const noexcept { return psc_hits_; }
  void reset_stats() {
    walks_ = walk_loads_ = psc_hits_ = 0;
    walk_cycles_ = charge_cycles_ = 0;
  }

 private:
  /// Radix levels are numbered 1 (leaf PTE) .. 4 (PML4E); a page of size S
  /// has its leaf entry at level 1 (4K), 2 (2M) or 3 (1G).
  static unsigned leaf_level(Addr span);
  static Addr level_prefix(Addr vaddr, unsigned level);
  Addr pte_paddr(unsigned level, Addr vaddr) const;
  /// PTE load addresses root→leaf after PSC shortening; probes (and, via
  /// @p fill, updates) the PSCs.
  void plan_loads(Addr vaddr, Addr span, Addr out[4], unsigned& n);
  void fill_psc(Addr vaddr, Addr span);

  CoreId core_;
  sim::EventQueue& eq_;
  coherence::CoherentSystem* caches_;
  VmConfig cfg_;
  TlbArray psc_l4_;  // caches PML4E: skips the level-4 load
  TlbArray psc_l3_;  // caches PDPTE: skips levels 4-3
  TlbArray psc_l2_;  // caches PDE:   skips levels 4-2
  std::uint64_t walks_ = 0;
  std::uint64_t walk_loads_ = 0;
  Cycle walk_cycles_ = 0;
  Cycle charge_cycles_ = 0;
  std::uint64_t psc_hits_ = 0;
};

}  // namespace tdn::vm
