// Per-core MMU — the single translation front-end the timing core and the
// runtime's ISA-path translation talk to.
//
// Legacy mode (vm.enabled == false, the default): delegates to the flat
// single-level mem::Tlb + PageTable exactly as before — translate() answers
// synchronously and consumes the same PRNG/LRU state in the same order, so
// every pre-vm fingerprint reproduces bit-identically.
//
// vm mode: two-level TLB (vm::TlbHierarchy) backed by the hardware page
// walker (vm::PageWalker) whose PTE loads travel the real cache hierarchy.
// translate() becomes asynchronous on a TLB miss; charge_translation()
// keeps the ISA path synchronous by charging a deterministic walk cost
// while firing the walk's loads in the background.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"
#include "obs/latency_histogram.hpp"
#include "vm/config.hpp"
#include "vm/page_walker.hpp"
#include "vm/tlb_hierarchy.hpp"

namespace tdn::vm {

class Mmu {
 public:
  /// @p caches may be null only when @p vm is disabled (tests building
  /// legacy-mode Mmus without a cache hierarchy).
  Mmu(CoreId core, sim::EventQueue& eq, coherence::CoherentSystem* caches,
      mem::PageTable& pt, const mem::TlbConfig& legacy_cfg,
      const VmConfig& vm);

  /// Translate @p vaddr for a demand access, allocating the page on first
  /// touch. @p done receives (translation cycles, physical address); it is
  /// invoked synchronously on a TLB hit (and always, in legacy mode).
  void translate(Addr vaddr, std::function<void(Cycle, Addr)> done);

  /// Synchronous translation charge for the runtime's ISA path (the
  /// iterative tdnuca_register walk executes under the runtime lock).
  /// Returns the cycle cost; fills TLB/PSC state as a side effect.
  Cycle charge_translation(Addr vaddr);

  /// TLB shootdown for the page covering @p vaddr.
  void invalidate_page(Addr vaddr);
  void invalidate_all();
  /// Checkpoint cold-normalization: drop every cached translation — TLBs
  /// and, in vm mode, the walker's paging-structure caches — WITHOUT
  /// counting shootdowns. The continuing lineage must end up in the same
  /// state as a freshly restored one, and a restored lineage's TLBs start
  /// empty, so counting here would make the shootdown metric depend on
  /// occupancy at the fold and break resume bit-identity.
  void ckpt_cold_reset();
  /// Zero every translation counter (checkpoint counter folding: the caller
  /// accumulates them into a snapshotted baseline first).
  void ckpt_reset_stats() noexcept {
    tlb_.ckpt_reset_stats();
    tlbs_.reset_stats();
    walker_.reset_stats();
  }

  // --- statistics -------------------------------------------------------
  std::uint64_t tlb_hits() const noexcept {
    return vm_.enabled ? tlbs_.hits() : tlb_.hits();
  }
  std::uint64_t tlb_misses() const noexcept {
    return vm_.enabled ? tlbs_.misses() : tlb_.misses();
  }
  std::uint64_t tlb_shootdowns() const noexcept {
    return vm_.enabled ? tlbs_.shootdowns() : tlb_.shootdowns();
  }
  std::uint64_t l2_tlb_hits() const noexcept {
    return vm_.enabled ? tlbs_.l2_hits() : 0;
  }
  std::uint64_t walks() const noexcept {
    return vm_.enabled ? walker_.walks() : 0;
  }
  std::uint64_t walk_loads() const noexcept {
    return vm_.enabled ? walker_.walk_loads() : 0;
  }
  Cycle walk_cycles() const noexcept {
    return vm_.enabled ? walker_.walk_cycles() : 0;
  }
  Cycle charge_walk_cycles() const noexcept {
    return vm_.enabled ? walker_.charge_cycles() : 0;
  }
  std::uint64_t psc_hits() const noexcept {
    return vm_.enabled ? walker_.psc_hits() : 0;
  }

  /// Observability sinks (null = off): per-translation latency and
  /// per-demand-walk cycles, feeding the tdn-obs-report-v1 translation
  /// section. Wired by the system when a latency report is requested;
  /// never feeds back into timing.
  void set_obs_sinks(obs::LatencyHistogram* translation,
                     obs::LatencyHistogram* walk) {
    obs_translation_ = translation;
    obs_walk_ = walk;
  }

  /// Legacy single-level TLB (tests; legacy mode only).
  mem::Tlb& legacy_tlb() noexcept { return tlb_; }
  bool vm_enabled() const noexcept { return vm_.enabled; }

 private:
  mem::PageTable& pt_;
  VmConfig vm_;
  mem::Tlb tlb_;         // legacy mode
  TlbHierarchy tlbs_;    // vm mode
  PageWalker walker_;    // vm mode
  obs::LatencyHistogram* obs_translation_ = nullptr;
  obs::LatencyHistogram* obs_walk_ = nullptr;
};

}  // namespace tdn::vm
