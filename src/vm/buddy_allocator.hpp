// Contiguity-aware physical-frame allocator (binary buddy over 4K frames).
//
// The legacy allocator hands out frames one at a time with PRNG-injected
// discontiguity; that cannot express "give me 512 physically contiguous
// frames" — which is exactly what a 2M page mapping is. The buddy allocator
// keeps free lists per power-of-two order (order 0 = one 4K frame, order 9 =
// one 2M run, order 18 = one 1G run) and grows the pool in whole 1G
// superblocks on demand.
//
// Fragmentation is modeled as *puncturing*: when a superblock is grown, each
// 2M-aligned block inside it has its contiguity broken with probability
// `puncture` by reserving one random 4K frame (the "kernel" grabbed it).
// A punctured 2M block can never back a 2M page, so huge-page allocation
// degrades gracefully with physical-pool fragmentation — the mechanism the
// legacy `fragmentation` knob only approximated at 4K grain.
//
// Determinism: free lists are ordered std::sets and allocation always takes
// the lowest available base, so identical request streams produce identical
// frame layouts. There is no free(): the simulator's working sets are
// append-only within a run, and checkpoint/restore snapshots the whole
// allocator verbatim (serialize()/restore()).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace tdn::vm {

class BuddyAllocator {
 public:
  static constexpr unsigned kFrameShift = 12;  ///< 4K frames
  static constexpr unsigned kMaxOrder = 18;    ///< 2^18 frames = 1 GiB

  BuddyAllocator(double puncture, std::uint64_t seed);

  /// Allocate 2^order contiguous frames; returns the first frame number, or
  /// nullopt if the pool (after growing at most @p max_grows superblocks)
  /// has no such run — the caller falls back to a smaller page size. Order 0
  /// always succeeds with max_grows >= 1.
  std::optional<std::uint64_t> try_allocate(unsigned order,
                                            unsigned max_grows = 2);

  std::uint64_t frames_allocated() const noexcept { return frames_allocated_; }
  std::uint64_t punctured_frames() const noexcept { return punctured_; }
  std::uint64_t superblocks() const noexcept { return superblocks_; }

  // --- checkpoint/restore (tdn::ckpt) ----------------------------------
  /// Flat word encoding of the complete allocator state (free lists, PRNG
  /// position, counters). Opaque to the caller; restore() is the inverse.
  std::vector<std::uint64_t> serialize() const;
  void restore(const std::vector<std::uint64_t>& words);

 private:
  void grow();
  /// Carve one specific frame out of whatever free block contains it
  /// (puncturing). No-op if the frame is already allocated.
  void take_frame(std::uint64_t frame);

  std::array<std::set<std::uint64_t>, kMaxOrder + 1> free_;  // base frames
  std::uint64_t superblocks_ = 0;
  std::uint64_t frames_allocated_ = 0;
  std::uint64_t punctured_ = 0;
  double puncture_;
  SplitMix64 rng_;
};

}  // namespace tdn::vm
