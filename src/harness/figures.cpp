#include "harness/figures.hpp"

#include <cstdio>

#include "workloads/workload.hpp"

namespace tdn::harness {

std::pair<stats::Table, double> normalized_table(
    const NormalizedFigure& fig, const std::vector<RunResult>& results) {
  std::vector<std::string> header{"bench"};
  for (const auto p : fig.policies) header.push_back(system::to_string(p));
  if (fig.paper_ref) header.push_back("paper");
  stats::Table table(std::move(header));

  std::vector<double> last_col;
  for (const std::string& wl : workloads::paper_workload_names()) {
    const double base =
        find_result(results, wl, system::PolicyKind::SNuca).get(fig.metric);
    std::vector<std::string> row{wl};
    double last = 0.0;
    for (const auto p : fig.policies) {
      const double v = find_result(results, wl, p).get(fig.metric);
      const double norm = fig.invert ? base / v : v / base;
      row.push_back(stats::Table::num(norm, 3));
      last = norm;
    }
    if (fig.paper_ref) {
      const auto ref = fig.paper_ref(wl);
      row.push_back(ref ? stats::Table::num(*ref, 3) : "-");
    }
    table.add_row(std::move(row));
    // Fully-bypassed benchmarks can drive a normalized metric to exactly
    // zero (no LLC accesses at all); floor it so the geometric mean stays
    // defined — the floor only understates TD-NUCA's advantage.
    last_col.push_back(last > 1e-3 ? last : 1e-3);
  }
  const double gm = geometric_mean(last_col);
  std::vector<std::string> avg_row{"geomean"};
  for (std::size_t i = 0; i < fig.policies.size(); ++i) avg_row.push_back("");
  avg_row.back() = stats::Table::num(gm, 3);
  if (fig.paper_ref) avg_row.push_back(stats::Table::num(fig.paper_avg, 3));
  table.add_row(std::move(avg_row));
  return {std::move(table), gm};
}

void print_figure_header(const std::string& id, const std::string& caption) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), caption.c_str());
}

}  // namespace tdn::harness
