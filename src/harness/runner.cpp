#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/jsonfmt.hpp"
#include "common/prng.hpp"
#include "common/require.hpp"
#include "harness/results_cache.hpp"
#include "harness/sweep_runner.hpp"
#include "multi/multi_system.hpp"
#include "obs/critical_path.hpp"
#include "serve/serve_system.hpp"

namespace tdn::harness {

namespace {

std::string cache_key(const RunConfig& cfg) {
  std::ostringstream os;
  os << cfg.workload << "-" << static_cast<int>(cfg.policy) << "-" << std::hex
     << cfg.fingerprint();
  return os.str();
}

/// Fig. 3 right bars: classify every dependency's cache blocks by its
/// lifetime usage in the RTCacheDirectory. A block is NotReused when its
/// dependency actually bypassed the LLC at some point; otherwise it is
/// classified by direction. Overlapping dependencies (halo sub-regions) are
/// deduplicated by interval merging so coverage never exceeds the footprint.
void add_fig3_tdnuca(const system::TiledSystem& sys_const,
                     std::map<std::string, double>& m) {
  auto& sys = const_cast<system::TiledSystem&>(sys_const);
  const auto* hooks = sys.tdnuca_hooks();
  if (hooks == nullptr) return;
  // Category per byte range; later (smaller, more specific) ranges win by
  // being merged after subtraction of already-counted bytes.
  struct Piece {
    AddrRange r;
    int cat;  // 0=notreused 1=both 2=in 3=out
  };
  std::vector<Piece> pieces;
  for (const auto& [dep, e] : hooks->directory().all()) {
    (void)dep;
    const Addr begin = align_up(e.vrange.begin, 64);
    const Addr end = align_down(e.vrange.end, 64);
    if (end <= begin) continue;
    int cat;
    if (e.ever_bypassed) cat = 0;
    else if (e.ever_in && e.ever_out) cat = 1;
    else if (e.ever_in) cat = 2;
    else cat = 3;
    pieces.push_back({AddrRange{begin, end}, cat});
  }
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    if (a.r.size() != b.r.size()) return a.r.size() < b.r.size();
    return a.r.begin < b.r.begin;
  });
  // Count lines smallest-range first; a line already claimed by a more
  // specific dependency is not recounted for an enclosing one.
  std::unordered_set<Addr> claimed;
  double blocks[4] = {0, 0, 0, 0};
  for (const Piece& p : pieces) {
    for (Addr la = p.r.begin; la < p.r.end; la += 64) {
      if (claimed.insert(la).second) blocks[p.cat] += 1.0;
    }
  }
  m["fig3.td.notreused_blocks"] = blocks[0];
  m["fig3.td.both_blocks"] = blocks[1];
  m["fig3.td.in_blocks"] = blocks[2];
  m["fig3.td.out_blocks"] = blocks[3];
  m["fig3.td.dep_blocks"] = blocks[0] + blocks[1] + blocks[2] + blocks[3];
}

void add_fig3_rnuca(system::TiledSystem& sys,
                    std::map<std::string, double>& m) {
  const auto* pol = sys.rnuca_policy();
  if (pol == nullptr) return;
  const auto c = pol->census();
  const double blocks_per_page =
      static_cast<double>(sys.page_table().page_size() / 64);
  m["fig3.rnuca.private_blocks"] =
      static_cast<double>(c.private_pages) * blocks_per_page;
  m["fig3.rnuca.shared_ro_blocks"] =
      static_cast<double>(c.shared_ro_pages) * blocks_per_page;
  m["fig3.rnuca.shared_blocks"] =
      static_cast<double>(c.shared_pages) * blocks_per_page;
  m["fig3.rnuca.total_blocks"] =
      static_cast<double>(c.total()) * blocks_per_page;
}

}  // namespace

obs::RecorderConfig ObsOptions::recorder_config() const {
  obs::RecorderConfig rc;
  rc.trace = !trace_path.empty();
  rc.epochs = !epochs_csv_path.empty() || !epochs_json_path.empty();
  rc.heatmaps = !heatmaps_path.empty() || !heatmaps_json_path.empty();
  rc.trace_coherence = trace_coherence;
  rc.attribution = !latency_report_path.empty();
  rc.epoch_cycles = epoch_cycles;
  return rc;
}

std::uint64_t RunConfig::fingerprint() const {
  std::ostringstream os;
  // "v8": derived-metric schema version; bump to invalidate cached results
  // when the metric extraction changes (v3 added the per-bank llc.bankN.*
  // keys; v4 added the fault.* keys and folded the fault plan into the
  // system fingerprint; v5 added multiprogram mixes — the appK.* /
  // multi.* keys and the colocation options below; v6 added
  // cache.forced_unsafe_evictions; v7 added open-arrival serving — the
  // serve.* keys and the serving options below; v8 added tdn::vm — the
  // mem.* / vm.* / tdnuca.translate_* keys and the vm segment of the
  // system fingerprint).
  os << "v8/" << workload << '/' << static_cast<int>(policy) << '/' << params.scale
     << '/' << params.compute << '/' << params.seed << '/'
     << multi.canonical() << '/' << sys.fingerprint() << '/'
     << (serve.enabled() ? serve.canonical() : std::string("-"));
  // Checkpoint cadence is simulated behavior (the drain detour is real
  // simulated work), so it keys results; appended only when enabled so every
  // pre-existing fingerprint is unchanged.
  if (serve.enabled() && ckpt.enabled()) os << '/' << ckpt.canonical();
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

std::string RunConfig::describe() const {
  std::ostringstream os;
  os << workload << '/' << system::to_string(policy)
     << " scale=" << params.scale << " compute=" << params.compute
     << " seed=" << params.seed;
  // Plain string test — describe() also labels failed runs, so it must not
  // itself throw on a bad mix spelling.
  if (workload.find('+') != std::string::npos)
    os << " multi=" << multi.canonical();
  if (serve.enabled()) os << " serve=" << serve.canonical();
  if (serve.enabled() && ckpt.enabled()) os << " ckpt=" << ckpt.canonical();
  if (!sys.fault.plan.empty()) os << " faults=\"" << sys.fault.plan << '"';
  return os.str();
}

double RunResult::get(const std::string& key) const {
  auto it = metrics.find(key);
  TDN_REQUIRE(it != metrics.end(), "missing metric: " + key);
  return it->second;
}

RunResult run_experiment(const RunConfig& cfg, bool use_cache,
                         ObsArtifacts* artifacts) {
  RunResult result;
  result.workload = cfg.workload;
  system::SystemConfig sys_cfg = cfg.sys;
  sys_cfg.policy = cfg.policy;
  result.policy = system::to_string(cfg.policy);

  // A cached run never re-simulates and so cannot produce observability
  // artifacts: recording forces a fresh simulation (results are identical —
  // the recorder only observes).
  const bool obs_active = cfg.obs.any();
  if (obs_active) use_cache = false;
  // Checkpointing exists to survive the simulation being killed; serving a
  // memoized result would skip the simulation and publish nothing.
  const bool ckpt_active = cfg.serve.enabled() && cfg.ckpt.enabled();
  if (ckpt_active) use_cache = false;

  const std::string key = cache_key(cfg);
  if (use_cache) {
    if (auto cached = ResultsCache::load(key)) {
      result.metrics = std::move(*cached);
      result.from_cache = true;
      return result;
    }
  }

  obs::Recorder rec(cfg.obs.recorder_config());

  // Runs after metric collection (the report embeds sim.cycles/sim.events).
  // @p tasks is the runtime's executed task table for critical-path
  // analysis, or null for multiprogram mixes (each app has its own DAG; the
  // shared-machine report carries attribution only).
  auto emit_artifacts = [&](const std::vector<runtime::Task>* tasks) {
    if (!obs_active) return;
    ObsArtifacts arts;
    arts.trace_events = rec.trace_events();
    arts.epoch_rows = rec.epoch_rows();
    arts.epoch_series = rec.epoch_series();
    arts.heatmaps = rec.heatmap_count();
    auto emit = [&](const std::string& path, const std::string& content) {
      if (path.empty()) return;
      if (obs::write_file(path, content)) arts.files_written.push_back(path);
    };
    emit(cfg.obs.trace_path, rec.trace_json());
    emit(cfg.obs.epochs_csv_path, rec.epochs_csv());
    emit(cfg.obs.epochs_json_path, rec.epochs_json());
    emit(cfg.obs.heatmaps_path, rec.heatmaps_text());
    emit(cfg.obs.heatmaps_json_path, rec.heatmaps_json());
    if (!cfg.obs.latency_report_path.empty() &&
        rec.attribution() != nullptr) {
      const obs::LatencyAttribution& attr = *rec.attribution();
      arts.attributed_accesses = static_cast<std::size_t>(
          attr.total().count() + attr.merged().count());
      std::ostringstream os;
      os << "{\"schema\":\"tdn-obs-report-v1\",\"workload\":\""
         << json_escape(cfg.workload) << "\",\"policy\":\""
         << json_escape(result.policy) << "\",\"sim\":{\"cycles\":"
         << static_cast<std::uint64_t>(result.metrics.at("sim.cycles"))
         << ",\"events\":"
         << static_cast<std::uint64_t>(result.metrics.at("sim.events"))
         << "}," << attr.report_json() << ",\"critical_path\":";
      if (tasks != nullptr) {
        os << obs::analyze_critical_path(*tasks).report_json();
      } else {
        os << "null";
      }
      os << "}\n";
      if (atomic_write_file(cfg.obs.latency_report_path, os.str()))
        arts.files_written.push_back(cfg.obs.latency_report_path);
    }
    if (artifacts != nullptr) *artifacts = std::move(arts);
  };

  // Serving runs treat the workload string as the tenant list and assemble
  // an open-arrival ServeSystem; multiprogram mixes assemble a
  // shared-substrate machine with per-app runtimes; single names build the
  // classic one-app TiledSystem. Cache lookup/store and obs artifact
  // plumbing are shared by all three paths.
  const multi::MixSpec mix = multi::MixSpec::parse(cfg.workload);
  if (cfg.serve.enabled()) {
    serve::ServeSystem ssys(sys_cfg, mix, cfg.serve,
                            obs_active ? &rec : nullptr);
    ssys.build(cfg.params);
    if (ckpt_active) {
      ssys.set_checkpoint(cfg.ckpt, cfg.fingerprint());
      if (cfg.ckpt.resume && !cfg.ckpt.dir.empty()) {
        // Resume from the newest *valid* snapshot; torn or corrupt files are
        // skipped by the loader, and with none usable the run starts fresh.
        if (auto snap = ckpt::load_latest(cfg.ckpt.dir, cfg.fingerprint()))
          ssys.resume_from(*snap);
      }
    }
    ssys.run();
    result.metrics = ssys.collect_stats().all();
    emit_artifacts(nullptr);
  } else if (mix.is_multi()) {
    multi::MultiProgramSystem msys(sys_cfg, mix, cfg.multi,
                                   obs_active ? &rec : nullptr);
    msys.build(cfg.params);
    msys.run();
    result.metrics = msys.collect_stats().all();
    emit_artifacts(nullptr);
  } else {
    system::TiledSystem sys(sys_cfg, obs_active ? &rec : nullptr);
    auto wl = workloads::make_workload(cfg.workload, cfg.params);
    wl->build(sys);
    sys.run();

    result.metrics = sys.collect_stats().all();
    emit_artifacts(&sys.runtime().tasks());
    const auto& ws = wl->stats();
    result.metrics["workload.input_bytes"] =
        static_cast<double>(ws.input_bytes);
    result.metrics["workload.num_tasks"] = static_cast<double>(ws.num_tasks);
    result.metrics["workload.avg_task_bytes"] =
        static_cast<double>(ws.avg_task_bytes);
    result.metrics["workload.num_phases"] =
        static_cast<double>(ws.num_phases);
    result.metrics["workload.total_blocks"] =
        static_cast<double>(ws.input_bytes / 64);
    add_fig3_tdnuca(sys, result.metrics);
    add_fig3_rnuca(sys, result.metrics);
  }

  if (use_cache) ResultsCache::store(key, result.metrics);
  return result;
}

std::vector<RunResult> run_suite(
    const std::vector<system::PolicyKind>& policies,
    const workloads::WorkloadParams& params, bool use_cache, unsigned jobs) {
  std::vector<RunConfig> cfgs;
  for (const std::string& wl : workloads::paper_workload_names()) {
    for (const system::PolicyKind p : policies) {
      RunConfig cfg;
      cfg.workload = wl;
      cfg.policy = p;
      cfg.params = params;
      cfgs.push_back(std::move(cfg));
    }
  }
  SweepOptions opts;
  opts.jobs = jobs;
  opts.use_cache = use_cache;
  return SweepRunner(opts).run(cfgs);
}

const RunResult& find_result(const std::vector<RunResult>& results,
                             const std::string& workload,
                             system::PolicyKind policy) {
  const std::string pol = system::to_string(policy);
  for (const RunResult& r : results) {
    if (r.workload == workload && r.policy == pol) return r;
  }
  TDN_REQUIRE(false, "no result for " + workload + "/" + pol);
  static RunResult dummy;
  return dummy;
}

double geometric_mean(const std::vector<double>& xs) {
  TDN_REQUIRE(!xs.empty(), "geometric mean of empty set");
  double log_sum = 0.0;
  for (double x : xs) {
    TDN_REQUIRE(x > 0.0, "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace tdn::harness
