#include "harness/sweep_runner.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/require.hpp"

namespace tdn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One unit of work: a unique fingerprint and every input position it fills.
struct WorkItem {
  RunConfig cfg;
  std::vector<std::size_t> positions;
  RunResult result;
  double wall_ms = 0.0;
  std::exception_ptr error;
};

/// Serialized progress reporting. On a TTY the line redraws in place; on a
/// pipe (CI logs) only the final summary is printed to avoid \r spam.
class Progress {
 public:
  Progress(bool enabled, std::size_t total)
      : enabled_(enabled), tty_(enabled && ::isatty(2) != 0), total_(total),
        t0_(Clock::now()) {}

  void completed(std::size_t done, std::size_t cache_hits) {
    if (!tty_) return;
    std::lock_guard<std::mutex> lock(mu_);
    const double elapsed = ms_since(t0_);
    // Guard the extrapolation: done can only be 0 if a caller misuses us,
    // and done > total_ would underflow the remaining-run count. Either way
    // (or with a non-finite elapsed) format_eta renders "--" rather than
    // arithmetic garbage.
    double eta = 0.0;
    if (done == 0 || done > total_) {
      eta = std::numeric_limits<double>::quiet_NaN();
    } else {
      eta = elapsed / static_cast<double>(done) *
            static_cast<double>(total_ - done);
    }
    std::fprintf(stderr,
                 "\r[sweep] %zu/%zu done, %zu cache hits, ETA %s   ", done,
                 total_, cache_hits, format_eta(eta).c_str());
    if (done == total_) std::fprintf(stderr, "\n");
  }

  void summary(const SweepStats& st) {
    if (!enabled_) return;
    std::fprintf(stderr,
                 "[sweep] %zu runs (%zu simulated, %zu cache hits, %zu "
                 "deduped) in %.1fs, jobs=%u\n",
                 st.runs, st.simulated, st.cache_hits, st.deduped,
                 st.wall_ms / 1000.0, st.jobs);
  }

 private:
  bool enabled_;
  bool tty_;
  std::size_t total_;
  Clock::time_point t0_;
  std::mutex mu_;
};

}  // namespace

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::string format_eta(double ms) {
  // NaN, infinities and negative durations are placeholders, not estimates;
  // the upper clamp keeps the cast to integer seconds in-range (casting a
  // double beyond LONG_MAX is undefined behaviour).
  if (!std::isfinite(ms) || ms < 0.0) return "--";
  constexpr double kMaxMs = 99.0 * 3600.0 * 1000.0;
  if (ms > kMaxMs) return ">99h";
  const long s = static_cast<long>(ms / 1000.0 + 0.5);
  char buf[32];
  if (s >= 3600) std::snprintf(buf, sizeof buf, "%ldh%02ldm", s / 3600, s % 3600 / 60);
  else if (s >= 60) std::snprintf(buf, sizeof buf, "%ldm%02lds", s / 60, s % 60);
  else std::snprintf(buf, sizeof buf, "%lds", s);
  return buf;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

std::vector<RunResult> SweepRunner::run(const std::vector<RunConfig>& configs) {
  const auto t0 = Clock::now();
  stats_ = SweepStats{};
  registry_ = stats::Registry{};
  stats_.runs = configs.size();

  // Coalesce equal fingerprints: each unique key is simulated exactly once
  // per process, so pool workers never race on the same cache entry. Items
  // keep first-appearance order, which keeps jobs=1 execution order equal
  // to the legacy serial loop.
  std::vector<WorkItem> items;
  {
    std::map<std::uint64_t, std::size_t> by_fp;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const std::uint64_t fp = configs[i].fingerprint();
      const auto it = by_fp.find(fp);
      if (it == by_fp.end()) {
        by_fp.emplace(fp, items.size());
        items.push_back(WorkItem{configs[i], {i}, {}, 0.0, nullptr});
      } else {
        items[it->second].positions.push_back(i);
        ++stats_.deduped;
      }
    }
  }

  const unsigned jobs = std::min<unsigned>(
      resolve_jobs(opts_.jobs),
      static_cast<unsigned>(std::max<std::size_t>(items.size(), 1)));
  stats_.jobs = jobs;

  // Force logger initialization (TDN_LOG parse) on this thread before any
  // worker exists; first-use init from a pool thread would still be safe
  // (magic static + std::once_flag) but doing it here makes startup order
  // deterministic.
  log::init_from_env();

  Progress progress(opts_.progress, configs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> cache_hits{0};

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      WorkItem& item = items[i];
      const auto run_t0 = Clock::now();
      try {
        item.result = run_experiment(item.cfg, opts_.use_cache);
      } catch (...) {
        item.error = std::current_exception();
      }
      item.wall_ms = ms_since(run_t0);
      if (item.error == nullptr && item.result.from_cache)
        cache_hits.fetch_add(1, std::memory_order_relaxed);
      progress.completed(done.fetch_add(1, std::memory_order_relaxed) + 1,
                         cache_hits.load(std::memory_order_relaxed));
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Collect in input order; duplicate-fingerprint positions share a copy of
  // the one simulated result.
  std::vector<RunResult> out(configs.size());
  const WorkItem* first_error_item = nullptr;
  std::size_t first_error_pos = configs.size();
  for (const WorkItem& item : items) {
    for (const std::size_t pos : item.positions) {
      if (item.error != nullptr) {
        if (pos < first_error_pos) {
          first_error_pos = pos;
          first_error_item = &item;
        }
        continue;
      }
      out[pos] = item.result;
      out[pos].wall_ms = item.wall_ms;
      registry_.set("sweep.run" + std::to_string(pos) + ".wall_ms",
                    item.wall_ms);
      registry_.set("sweep.run" + std::to_string(pos) + ".cache_hit",
                    item.result.from_cache ? 1.0 : 0.0);
    }
  }

  stats_.cache_hits = cache_hits.load();
  // An errored item neither simulated to completion nor hit the cache.
  std::size_t errored = 0;
  for (const WorkItem& item : items)
    if (item.error != nullptr) ++errored;
  stats_.simulated = items.size() - stats_.cache_hits - errored;
  stats_.wall_ms = ms_since(t0);
  registry_.set("sweep.total_wall_ms", stats_.wall_ms);
  registry_.set("sweep.runs", static_cast<double>(stats_.runs));
  registry_.set("sweep.simulated", static_cast<double>(stats_.simulated));
  registry_.set("sweep.cache_hits", static_cast<double>(stats_.cache_hits));
  registry_.set("sweep.deduped", static_cast<double>(stats_.deduped));
  registry_.set("sweep.jobs", static_cast<double>(stats_.jobs));

  progress.summary(stats_);

  if (first_error_item != nullptr) {
    // With jobs>1 the original throw site says nothing about *which* config
    // died; attach the run's identity and cache fingerprint.
    std::ostringstream ctx;
    ctx << "sweep run " << first_error_pos << " failed ["
        << first_error_item->cfg.describe() << ", fingerprint=0x" << std::hex
        << first_error_item->cfg.fingerprint() << "]";
    try {
      std::rethrow_exception(first_error_item->error);
    } catch (const std::exception& e) {
      throw RequireError(ctx.str() + ": " + e.what());
    } catch (...) {
      throw RequireError(ctx.str() + ": unknown exception");
    }
  }
  return out;
}

}  // namespace tdn::harness
