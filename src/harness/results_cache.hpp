// Disk memoization for experiment results. Simulations are deterministic, so
// a (workload, config-fingerprint) key fully determines the result; cached
// entries are plain key,value CSV files under $TDN_CACHE_DIR (default
// /tmp/tdnuca_cache). Set TDN_NO_CACHE=1 to disable.
//
// Safe under concurrent readers and writers (multiple SweepRunner pool
// threads, multiple bench processes): store() publishes via temp file +
// atomic rename, so load() sees complete files only; load() additionally
// skips malformed lines rather than trusting them. On-disk format and
// operational details: docs/harness.md.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace tdn::harness {

/// Write @p content to @p path via a uniquely named temp file in the same
/// directory plus an atomic rename: concurrent readers see either the old
/// complete file or the new complete file, never a torn one. Parent
/// directories are created on demand. Returns false on any I/O failure
/// (nothing is left behind at @p path beyond what was already there).
bool atomic_write_file(const std::string& path, const std::string& content);

class ResultsCache {
 public:
  /// Directory from TDN_CACHE_DIR or the default; created on demand.
  static std::string directory();
  static bool enabled();

  static std::optional<std::map<std::string, double>> load(
      const std::string& key);
  static void store(const std::string& key,
                    const std::map<std::string, double>& metrics);
};

}  // namespace tdn::harness
