// Parallel sweep execution. Every experiment is an independent,
// deterministic, single-threaded event loop over its own TiledSystem, so a
// sweep of RunConfigs is embarrassingly parallel: SweepRunner executes one
// on a fixed-size thread pool while guaranteeing that the results are
// bit-identical to a serial run:
//
//  * each run owns its system, workload and stats::Registry — no state is
//    shared between workers except the results cache, which is safe under
//    concurrent writers (temp file + atomic rename, results_cache.hpp);
//  * PRNG seeds derive from the RunConfig alone (params.seed and per-entity
//    fnv1a64 hashes), never from pool scheduling order, thread ids or time;
//  * results come back in input order regardless of completion order;
//  * configs with equal fingerprints are simulated once per process
//    (in-process dedup) and the result is replicated to every position, so
//    two workers never race to simulate the same key.
//
// Operator's manual: docs/harness.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "stats/registry.hpp"

namespace tdn::harness {

struct SweepOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency(); 1 = run
  /// everything on the calling thread (no pool).
  unsigned jobs = 0;
  bool use_cache = true;
  /// Emit progress to stderr: a live completed/total + cache-hits + ETA
  /// line on a TTY, a single summary line otherwise.
  bool progress = false;
};

/// Aggregate accounting for one SweepRunner::run call.
struct SweepStats {
  std::size_t runs = 0;        ///< configs submitted
  std::size_t simulated = 0;   ///< fresh simulations executed
  std::size_t cache_hits = 0;  ///< served from the on-disk results cache
  std::size_t deduped = 0;     ///< duplicate-fingerprint configs coalesced
  unsigned jobs = 0;           ///< pool size actually used
  double wall_ms = 0.0;        ///< whole-sweep wall clock
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Execute every config (possibly concurrently) and return results in
  /// input order. If any run throws, the first failure in input order is
  /// rethrown after all workers have stopped.
  std::vector<RunResult> run(const std::vector<RunConfig>& configs);

  /// Accounting for the most recent run() call.
  const SweepStats& stats() const noexcept { return stats_; }

  /// Per-run wall clock and sweep totals from the most recent run() call,
  /// as a metrics registry: sweep.runN.wall_ms, sweep.runN.cache_hit,
  /// sweep.total_wall_ms, sweep.simulated, sweep.cache_hits, sweep.jobs.
  /// Kept separate from RunResult::metrics, which stay bit-identical
  /// between serial and parallel sweeps (wall clock is not deterministic).
  const stats::Registry& registry() const noexcept { return registry_; }

 private:
  SweepOptions opts_;
  SweepStats stats_;
  stats::Registry registry_;
};

/// Resolve a jobs request (0 = auto) against the host, never returning 0.
unsigned resolve_jobs(unsigned requested);

/// Render a duration (milliseconds) as a compact ETA ("42s", "3m07s",
/// "2h15m"). Total-function over the whole double range: NaN, infinities
/// and negative values (a first run completing in ~0 elapsed ms used to
/// push Inf/garbage into the progress line) render as "--", and durations
/// beyond 99 hours clamp to ">99h" instead of overflowing the cast.
std::string format_eta(double ms);

}  // namespace tdn::harness
