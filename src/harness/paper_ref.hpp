// Reference values transcribed from the paper's evaluation (Sec. V). Values
// the text states explicitly are exact; per-benchmark values only shown
// graphically are estimates read off the figures and flagged as such. The
// bench binaries print these next to our measurements so EXPERIMENTS.md can
// record paper-vs-measured for every artifact.
#pragma once

#include <optional>
#include <string>

namespace tdn::harness::paper {

/// Per-benchmark value; nullopt when the paper gives no usable number.
std::optional<double> fig8_speedup_td(const std::string& bench);
std::optional<double> fig8_speedup_rnuca(const std::string& bench);
std::optional<double> fig9_llc_accesses_td(const std::string& bench);
std::optional<double> fig15_speedup_bypass_only(const std::string& bench);

// Authoritative suite averages from the text.
inline constexpr double kFig8AvgTd = 1.18;
inline constexpr double kFig8AvgRnuca = 1.02;
inline constexpr double kFig9AvgTd = 0.48;
inline constexpr double kFig9AvgRnuca = 0.99;
inline constexpr double kFig10AvgHitS = 0.41;
inline constexpr double kFig10AvgHitR = 0.40;
inline constexpr double kFig10AvgHitTd = 0.74;
inline constexpr double kFig11DistS = 2.49;
inline constexpr double kFig11DistR = 1.46;
inline constexpr double kFig11DistTd = 1.91;
inline constexpr double kFig12AvgTd = 0.62;
inline constexpr double kFig12AvgRnuca = 0.84;
inline constexpr double kFig13AvgLlcEnergyTd = 0.52;
inline constexpr double kFig13AvgLlcEnergyR = 1.00;
inline constexpr double kFig14AvgNocEnergyTd = 0.64;
inline constexpr double kFig14AvgNocEnergyR = 0.88;
inline constexpr double kFig15AvgBypassOnly = 1.06;
inline constexpr double kFig3AvgDepCoverage = 0.96;   // blocks in deps (TD)
inline constexpr double kFig3AvgNotReused = 0.72;     // predicted non-reused
inline constexpr double kFig3AvgSharedRnuca = 0.64;   // R-NUCA shared

}  // namespace tdn::harness::paper
