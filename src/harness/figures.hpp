// Figure/table formatting helpers shared by the bench binaries: per-benchmark
// normalized comparisons against the S-NUCA baseline, with the paper's
// reference values in adjacent columns.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hpp"
#include "stats/table.hpp"

namespace tdn::harness {

/// Extract metric(policy)/metric(S-NUCA) per benchmark for each policy and
/// format it with the paper's reference column.
/// @p metric      key into RunResult::metrics
/// @p invert      true when the figure reports S-NUCA/policy (speedup) rather
///                than policy/S-NUCA
struct NormalizedFigure {
  std::string title;
  std::string metric;
  bool invert = false;  // speedup-style normalization (baseline / policy)
  std::vector<system::PolicyKind> policies;
  /// Paper per-benchmark reference for the last policy column (optional).
  std::function<std::optional<double>(const std::string&)> paper_ref;
  double paper_avg = 0.0;
};

/// Build the normalized table and return (table, measured geomean of the
/// last policy column).
std::pair<stats::Table, double> normalized_table(
    const NormalizedFigure& fig, const std::vector<RunResult>& results);

/// Convenience: print a figure header in the uniform bench style.
void print_figure_header(const std::string& id, const std::string& caption);

}  // namespace tdn::harness
