#include "harness/results_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tdn::harness {

std::string ResultsCache::directory() {
  if (const char* d = std::getenv("TDN_CACHE_DIR")) return d;
  return "/tmp/tdnuca_cache";
}

bool ResultsCache::enabled() {
  const char* v = std::getenv("TDN_NO_CACHE");
  return v == nullptr || v[0] == '0';
}

std::optional<std::map<std::string, double>> ResultsCache::load(
    const std::string& key) {
  if (!enabled()) return std::nullopt;
  const std::filesystem::path p =
      std::filesystem::path(directory()) / (key + ".csv");
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::map<std::string, double> m;
  std::string line;
  while (std::getline(in, line)) {
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    try {
      m[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
    } catch (...) {
      return std::nullopt;  // corrupt entry: recompute
    }
  }
  if (m.empty()) return std::nullopt;
  return m;
}

void ResultsCache::store(const std::string& key,
                         const std::map<std::string, double>& metrics) {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory(), ec);
  if (ec) return;  // cache is best-effort
  const std::filesystem::path p =
      std::filesystem::path(directory()) / (key + ".csv");
  std::ostringstream os;
  os.precision(17);
  for (const auto& [k, v] : metrics) os << k << "," << v << "\n";
  std::ofstream out(p);
  out << os.str();
}

}  // namespace tdn::harness
