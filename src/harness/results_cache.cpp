#include "harness/results_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tdn::harness {

bool atomic_write_file(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  std::error_code ec;
  if (!p.parent_path().empty()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  // Unique temp name per (process, call): concurrent writers of the same
  // path each publish a complete file and the last rename wins.
  static std::atomic<unsigned> seq{0};
  std::ostringstream tmp_name;
  tmp_name << p.filename().string() << ".tmp." << ::getpid() << "."
           << seq.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp = p.parent_path() / tmp_name.str();
  // POSIX fd path rather than ofstream: the data must be fsync'd *before*
  // the rename publishes the name. Rename-then-crash on an unsynced file
  // can otherwise surface as a complete-looking but empty (or partial) file
  // after a host crash — exactly the torn state atomic publication is meant
  // to rule out (docs/harness.md §durability).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      fs::remove(tmp, ec);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fs::remove(tmp, ec);
    return false;
  }
  if (::close(fd) != 0) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, p, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  // Make the rename itself durable: fsync the containing directory. Failure
  // here (e.g. an fsync-less filesystem) is not fatal — the data blocks are
  // already synced, only the name's durability is best-effort.
  const std::string dir =
      p.parent_path().empty() ? "." : p.parent_path().string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

std::string ResultsCache::directory() {
  if (const char* d = std::getenv("TDN_CACHE_DIR")) return d;
  return "/tmp/tdnuca_cache";
}

bool ResultsCache::enabled() {
  const char* v = std::getenv("TDN_NO_CACHE");
  return v == nullptr || v[0] == '0';
}

std::optional<std::map<std::string, double>> ResultsCache::load(
    const std::string& key) {
  if (!enabled()) return std::nullopt;
  const std::filesystem::path p =
      std::filesystem::path(directory()) / (key + ".csv");
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::map<std::string, double> m;
  std::string line;
  while (std::getline(in, line)) {
    // Tolerate malformed lines (corrupt entry from a pre-atomic-rename
    // writer, stray edit, disk hiccup): skip them instead of trusting or
    // propagating them; the metric simply recomputes on its next miss.
    const auto comma = line.rfind(',');
    if (comma == std::string::npos || comma == 0) continue;
    try {
      std::size_t consumed = 0;
      const std::string value = line.substr(comma + 1);
      const double v = std::stod(value, &consumed);
      if (consumed != value.size()) continue;  // trailing junk: torn write
      m[line.substr(0, comma)] = v;
    } catch (...) {
      continue;
    }
  }
  if (m.empty()) return std::nullopt;
  return m;
}

void ResultsCache::store(const std::string& key,
                         const std::map<std::string, double>& metrics) {
  if (!enabled()) return;
  const std::filesystem::path p =
      std::filesystem::path(directory()) / (key + ".csv");
  // Publication is atomic (see atomic_write_file): concurrent writers of the
  // same key each publish a complete file, last rename wins — both wrote
  // identical bytes, simulations being deterministic.
  std::ostringstream out;
  out.precision(17);
  for (const auto& [k, v] : metrics) out << k << "," << v << "\n";
  atomic_write_file(p.string(), out.str());
}

}  // namespace tdn::harness
