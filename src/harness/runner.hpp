// Experiment runner: builds a TiledSystem, constructs a workload's task
// graph in it, runs to completion and extracts every metric the paper's
// figures need. Results are memoized on disk (results_cache.hpp) keyed by
// the full configuration fingerprint, so the per-figure bench binaries share
// one simulation sweep.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ckpt/options.hpp"
#include "multi/mix.hpp"
#include "obs/recorder.hpp"
#include "serve/options.hpp"
#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

namespace tdn::harness {

/// Observability sinks for one experiment. Empty paths disable the
/// corresponding sink; any non-empty path makes the run bypass the results
/// cache (a memoized run never re-simulates, so it cannot produce a trace).
/// None of these fields enter the fingerprint — recording never changes the
/// simulation's results.
struct ObsOptions {
  std::string trace_path;         ///< Chrome trace_event JSON (Perfetto)
  std::string epochs_csv_path;    ///< epoch time-series, CSV
  std::string epochs_json_path;   ///< epoch time-series, JSON
  std::string heatmaps_path;      ///< end-of-run heatmaps, aligned text
  std::string heatmaps_json_path; ///< end-of-run heatmaps, JSON
  /// tdn-obs-report-v1 JSON: latency attribution histograms + task
  /// critical-path analysis (docs/observability.md). Written atomically
  /// (harness::atomic_write_file), so a watcher never reads a torn report.
  std::string latency_report_path;
  Cycle epoch_cycles = 10'000;
  bool trace_coherence = false;   ///< per-transaction instants (high volume)

  bool any() const noexcept {
    return !trace_path.empty() || !epochs_csv_path.empty() ||
           !epochs_json_path.empty() || !heatmaps_path.empty() ||
           !heatmaps_json_path.empty() || !latency_report_path.empty();
  }
  obs::RecorderConfig recorder_config() const;
};

/// What an obs-enabled run produced (sizes + the files actually written).
struct ObsArtifacts {
  std::size_t trace_events = 0;
  std::size_t epoch_rows = 0;
  std::size_t epoch_series = 0;
  std::size_t heatmaps = 0;
  /// Accesses finalized by the latency-attribution sink (primary + merged
  /// misses); zero unless a latency report was requested.
  std::size_t attributed_accesses = 0;
  std::vector<std::string> files_written;
};

struct RunConfig {
  /// A workload name, or a '+'-joined mix ("gauss+histo"): mixes run on a
  /// multi::MultiProgramSystem and report per-app appK.* metrics alongside
  /// the shared-machine totals. With serve.arrival set, the same string
  /// names the *tenants* of an open-arrival serving run instead (single
  /// names allowed: a one-tenant service).
  std::string workload;
  system::PolicyKind policy = system::PolicyKind::SNuca;
  workloads::WorkloadParams params{};
  system::SystemConfig sys{};  ///< policy field is overridden by `policy`
  multi::MultiOptions multi{}; ///< colocation knobs; ignored for single apps
  serve::ServeOptions serve{}; ///< open-arrival serving (docs/serving.md)
  ObsOptions obs{};            ///< not fingerprinted; see ObsOptions
  /// Quiescent-point checkpointing for serving runs (docs/serving.md
  /// §checkpoint/restore). Only the simulated-behavior knobs (cadence,
  /// settle grace) enter the fingerprint; dir/resume/keep are harness
  /// plumbing. Enabling it bypasses the results cache — a memoized run
  /// never simulates, so it cannot publish snapshots.
  ckpt::Options ckpt{};

  std::uint64_t fingerprint() const;
  /// One-line human description (workload, policy, params, fault plan) —
  /// attached to sweep errors so a failure out of hundreds of runs
  /// identifies itself.
  std::string describe() const;
};

struct RunResult {
  std::string workload;
  std::string policy;
  std::map<std::string, double> metrics;
  /// True when the result was served from the on-disk results cache.
  bool from_cache = false;
  /// Wall clock of this run (simulate or cache load), filled by SweepRunner.
  /// Deliberately NOT part of `metrics`: metrics are bit-identical between
  /// serial and parallel sweeps, wall clock is not.
  double wall_ms = 0.0;

  double get(const std::string& key) const;
  bool has(const std::string& key) const { return metrics.count(key) != 0; }
};

/// Run one experiment (or fetch it from the cache). When cfg.obs requests
/// any sink the cache is bypassed, the artifacts are written to the
/// configured paths, and @p artifacts (if non-null) reports what was
/// produced.
RunResult run_experiment(const RunConfig& cfg, bool use_cache = true,
                         ObsArtifacts* artifacts = nullptr);

/// Run the full 8-benchmark suite for the given policies, `jobs` at a time
/// on a SweepRunner pool (0 = hardware_concurrency, 1 = serial). Results are
/// in (workload, policy) input order and bit-identical for every jobs value.
std::vector<RunResult> run_suite(const std::vector<system::PolicyKind>& policies,
                                 const workloads::WorkloadParams& params = {},
                                 bool use_cache = true, unsigned jobs = 1);

/// Pull the result for (workload, policy) out of a suite result set.
const RunResult& find_result(const std::vector<RunResult>& results,
                             const std::string& workload,
                             system::PolicyKind policy);

double geometric_mean(const std::vector<double>& xs);

}  // namespace tdn::harness
