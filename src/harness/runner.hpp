// Experiment runner: builds a TiledSystem, constructs a workload's task
// graph in it, runs to completion and extracts every metric the paper's
// figures need. Results are memoized on disk (results_cache.hpp) keyed by
// the full configuration fingerprint, so the per-figure bench binaries share
// one simulation sweep.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

namespace tdn::harness {

struct RunConfig {
  std::string workload;
  system::PolicyKind policy = system::PolicyKind::SNuca;
  workloads::WorkloadParams params{};
  system::SystemConfig sys{};  ///< policy field is overridden by `policy`

  std::uint64_t fingerprint() const;
};

struct RunResult {
  std::string workload;
  std::string policy;
  std::map<std::string, double> metrics;

  double get(const std::string& key) const;
  bool has(const std::string& key) const { return metrics.count(key) != 0; }
};

/// Run one experiment (or fetch it from the cache).
RunResult run_experiment(const RunConfig& cfg, bool use_cache = true);

/// Run the full 8-benchmark suite for the given policies.
std::vector<RunResult> run_suite(const std::vector<system::PolicyKind>& policies,
                                 const workloads::WorkloadParams& params = {},
                                 bool use_cache = true);

/// Pull the result for (workload, policy) out of a suite result set.
const RunResult& find_result(const std::vector<RunResult>& results,
                             const std::string& workload,
                             system::PolicyKind policy);

double geometric_mean(const std::vector<double>& xs);

}  // namespace tdn::harness
