#include "harness/paper_ref.hpp"

#include <map>

namespace tdn::harness::paper {

namespace {
const std::map<std::string, double> kFig8Td = {
    // Sec. V-A text: Gauss 1.26x, LU 1.59x, Redblack 1.20x; Histo, Jacobi,
    // Kmeans 1.09-1.10x; KNN, MD5 1.04x.
    {"gauss", 1.26}, {"histo", 1.09}, {"jacobi", 1.09}, {"kmeans", 1.10},
    {"knn", 1.04},   {"lu", 1.59},    {"md5", 1.04},    {"redblack", 1.20},
};
const std::map<std::string, double> kFig8R = {
    // Sec. V-A: 1.11x for Gauss, below 1.05x elsewhere (estimate 1.03).
    {"gauss", 1.11}, {"histo", 1.03}, {"jacobi", 1.03}, {"kmeans", 1.03},
    {"knn", 1.03},   {"lu", 1.03},    {"md5", 1.03},    {"redblack", 1.03},
};
const std::map<std::string, double> kFig9Td = {
    // Sec. V-A text: from 0.99x (KNN) down to 0.14x (MD5); others read off
    // the figure (estimates).
    {"gauss", 0.60}, {"histo", 0.75}, {"jacobi", 0.25}, {"kmeans", 0.30},
    {"knn", 0.99},   {"lu", 0.90},    {"md5", 0.14},    {"redblack", 0.25},
};
const std::map<std::string, double> kFig15 = {
    // Sec. V-D: no benefit in Histo/KNN/LU; matches full TD-NUCA in Jacobi,
    // Kmeans, MD5, Redblack; partial in Gauss (estimate 1.10).
    {"gauss", 1.10}, {"histo", 1.00}, {"jacobi", 1.09}, {"kmeans", 1.10},
    {"knn", 1.00},   {"lu", 1.00},    {"md5", 1.04},    {"redblack", 1.20},
};

std::optional<double> find(const std::map<std::string, double>& m,
                           const std::string& k) {
  auto it = m.find(k);
  if (it == m.end()) return std::nullopt;
  return it->second;
}
}  // namespace

std::optional<double> fig8_speedup_td(const std::string& b) {
  return find(kFig8Td, b);
}
std::optional<double> fig8_speedup_rnuca(const std::string& b) {
  return find(kFig8R, b);
}
std::optional<double> fig9_llc_accesses_td(const std::string& b) {
  return find(kFig9Td, b);
}
std::optional<double> fig15_speedup_bypass_only(const std::string& b) {
  return find(kFig15, b);
}

}  // namespace tdn::harness::paper
