// Generic set-associative tag array with tree-pseudoLRU replacement.
//
// The array stores only metadata (the simulator never carries data values);
// the Meta type parameter lets each cache level attach its own per-line
// state: L1 lines carry a MESI state and the LLC bank that served them,
// LLC lines carry presence/dirty plus the colocated directory entry.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hpp"
#include "common/require.hpp"
#include "common/types.hpp"

namespace tdn::cache {

struct CacheGeometry {
  Addr size_bytes = 32 * kKiB;
  unsigned associativity = 8;
  unsigned line_size = 64;
  /// Low line-address bits to skip when computing the set index. LLC banks
  /// set this to log2(num_banks): under address interleaving the bank-select
  /// bits are constant within a bank, and indexing with them would leave
  /// most sets unused (a classic banked-NUCA pitfall).
  unsigned set_index_shift = 0;

  unsigned sets() const {
    return static_cast<unsigned>(size_bytes / (associativity * line_size));
  }
  void validate() const {
    TDN_REQUIRE(is_pow2(line_size), "line size must be a power of two");
    TDN_REQUIRE(is_pow2(associativity), "associativity must be a power of two");
    TDN_REQUIRE(size_bytes % (static_cast<Addr>(associativity) * line_size) == 0,
                "cache size must be divisible by way size");
    TDN_REQUIRE(is_pow2(sets()), "set count must be a power of two");
  }
};

template <typename Meta>
class CacheArray {
 public:
  struct Line {
    Addr addr = kInvalidLine;  ///< line-aligned physical address
    Meta meta{};
    bool valid() const noexcept { return addr != kInvalidLine; }
  };
  static constexpr Addr kInvalidLine = ~Addr{0};

  explicit CacheArray(CacheGeometry geo) : geo_(geo) {
    geo_.validate();
    sets_ = geo_.sets();
    lines_.resize(static_cast<std::size_t>(sets_) * geo_.associativity);
    plru_.assign(sets_, PseudoLruTree(geo_.associativity));
  }

  unsigned line_size() const noexcept { return geo_.line_size; }
  Addr line_of(Addr a) const noexcept { return align_down(a, geo_.line_size); }
  unsigned set_of(Addr line_addr) const noexcept {
    return static_cast<unsigned>(
        ((line_addr / geo_.line_size) >> geo_.set_index_shift) & (sets_ - 1));
  }

  /// Probe for a line; nullptr on miss. Does not update replacement state.
  Line* find(Addr line_addr) {
    const unsigned s = set_of(line_addr);
    for (unsigned w = 0; w < geo_.associativity; ++w) {
      Line& ln = at(s, w);
      if (ln.valid() && ln.addr == line_addr) return &ln;
    }
    return nullptr;
  }
  const Line* find(Addr line_addr) const {
    return const_cast<CacheArray*>(this)->find(line_addr);
  }

  /// Update replacement state after a hit on @p line_addr.
  void touch(Addr line_addr) {
    const unsigned s = set_of(line_addr);
    for (unsigned w = 0; w < geo_.associativity; ++w) {
      if (at(s, w).valid() && at(s, w).addr == line_addr) {
        plru_[s].touch(w);
        return;
      }
    }
    TDN_ASSERT(false && "touch on a line that is not present");
  }

  /// Allocate a frame for @p line_addr (must not already be present).
  /// If a valid victim is displaced, it is returned so the caller can write
  /// it back / invalidate copies. The new line is MRU.
  ///
  /// @p avoid, when set, marks victim addresses that must not be displaced
  /// (lines with an in-flight coherence transaction). If every way in the
  /// allocation window is unevictable — effectively impossible for a
  /// blocking directory over a full 16-way set, but reachable under narrow
  /// tdn::multi way quotas — the pseudo-LRU victim is used regardless. That
  /// forced choice is a protocol hazard, so it is counted in
  /// forced_unsafe_evictions() and trips TDN_ASSERT in debug builds rather
  /// than passing silently.
  ///
  /// @p first_way / @p way_count, when way_count > 0, restrict the
  /// allocation (invalid-way scan, victim choice and avoid fallback) to that
  /// way range of the set — CAT-style way partitioning (tdn::multi).
  /// way_count == 0 means the whole set.
  struct Eviction {
    Addr addr;
    Meta meta;
  };
  Line& allocate(Addr line_addr, std::optional<Eviction>& evicted,
                 const std::function<bool(Addr)>& avoid = {},
                 unsigned first_way = 0, unsigned way_count = 0) {
    TDN_ASSERT(find(line_addr) == nullptr);
    if (way_count == 0) {
      first_way = 0;
      way_count = geo_.associativity;
    }
    TDN_ASSERT(first_way + way_count <= geo_.associativity);
    const unsigned end_way = first_way + way_count;
    evicted.reset();
    const unsigned s = set_of(line_addr);
    unsigned way = geo_.associativity;  // first invalid way, if any
    for (unsigned w = first_way; w < end_way; ++w) {
      if (!at(s, w).valid()) {
        way = w;
        break;
      }
    }
    if (way == geo_.associativity) {
      way = plru_[s].victim_in(first_way, way_count);
      if (avoid && avoid(at(s, way).addr)) {
        bool found_safe = false;
        for (unsigned w = first_way; w < end_way; ++w) {
          if (!avoid(at(s, w).addr)) {
            way = w;
            found_safe = true;
            break;
          }
        }
        if (!found_safe) {
          // Every way in the window is pinned: the eviction below displaces
          // a line the caller asked to protect.
          ++forced_unsafe_evictions_;
          TDN_ASSERT(!"allocate: every way in the window is pinned; "
                      "forcing an unsafe eviction");
        }
      }
      Line& victim = at(s, way);
      evicted = Eviction{victim.addr, victim.meta};
    } else {
      ++occupied_;
    }
    Line& ln = at(s, way);
    ln.addr = line_addr;
    ln.meta = Meta{};
    plru_[s].touch(way);
    return ln;
  }

  /// Remove a line if present; returns its meta.
  std::optional<Meta> invalidate(Addr line_addr) {
    const unsigned s = set_of(line_addr);
    for (unsigned w = 0; w < geo_.associativity; ++w) {
      Line& ln = at(s, w);
      if (ln.valid() && ln.addr == line_addr) {
        Meta m = ln.meta;
        ln.addr = kInvalidLine;
        --occupied_;
        return m;
      }
    }
    return std::nullopt;
  }

  /// Visit every resident line whose address falls inside [range). The
  /// visitor may mutate the meta; if it returns true the line is invalidated.
  /// Returns the number of lines visited.
  std::uint64_t for_each_in_range(
      const AddrRange& range,
      const std::function<bool(Addr, Meta&)>& visit) {
    std::uint64_t visited = 0;
    // Only lines entirely inside the range are eligible: the paper's
    // Sec. III-D alignment rule excludes partially covered first/last lines.
    const Addr first = align_up(range.begin, geo_.line_size);
    if (first + geo_.line_size > range.end) return 0;
    // Walking line-by-line over the range beats scanning the whole array
    // whenever the range is smaller than the cache; flushed dependencies
    // are often comparable, so pick the cheaper direction.
    const std::uint64_t range_lines = (range.end - first) / geo_.line_size;
    if (range_lines < lines_.size()) {
      for (Addr la = first; la + geo_.line_size <= range.end;
           la += geo_.line_size) {
        Line* ln = find(la);
        if (ln == nullptr) continue;
        ++visited;
        if (visit(la, ln->meta)) {
          ln->addr = kInvalidLine;
          --occupied_;
        }
      }
    } else {
      for (Line& ln : lines_) {
        if (!ln.valid()) continue;
        if (ln.addr < range.begin || ln.addr + geo_.line_size > range.end) continue;
        ++visited;
        if (visit(ln.addr, ln.meta)) {
          ln.addr = kInvalidLine;
          --occupied_;
        }
      }
    }
    return visited;
  }

  /// Visit every resident line, read-only (occupancy breakdowns).
  void for_each_valid(
      const std::function<void(Addr, const Meta&)>& visit) const {
    for (const Line& ln : lines_) {
      if (ln.valid()) visit(ln.addr, ln.meta);
    }
  }

  /// Cold-reset: drop every line and restore the replacement trees to their
  /// construction state, with no eviction/writeback side effects. Checkpoint
  /// normalization (tdn::ckpt) uses this to make a warmed array
  /// indistinguishable from a freshly built one; counters (including
  /// forced_unsafe_evictions_) deliberately survive — they are history, not
  /// contents.
  void reset_all() {
    for (Line& ln : lines_) {
      ln.addr = kInvalidLine;
      ln.meta = Meta{};
    }
    plru_.assign(sets_, PseudoLruTree(geo_.associativity));
    occupied_ = 0;
  }

  std::uint64_t occupied_lines() const noexcept { return occupied_; }
  std::uint64_t capacity_lines() const noexcept { return lines_.size(); }
  /// Times allocate() had to evict a line its `avoid` predicate pinned
  /// because the whole way window was pinned (see allocate()).
  std::uint64_t forced_unsafe_evictions() const noexcept {
    return forced_unsafe_evictions_;
  }

 private:
  Line& at(unsigned set, unsigned way) {
    return lines_[static_cast<std::size_t>(set) * geo_.associativity + way];
  }

  CacheGeometry geo_;
  unsigned sets_ = 0;
  std::vector<Line> lines_;
  std::vector<PseudoLruTree> plru_;
  std::uint64_t occupied_ = 0;
  std::uint64_t forced_unsafe_evictions_ = 0;
};

}  // namespace tdn::cache
