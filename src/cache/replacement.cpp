#include "cache/replacement.hpp"

namespace tdn::cache {

void PseudoLruTree::touch(unsigned way) {
  TDN_ASSERT(way < ways_);
  // Walk from the leaf up: at each internal node set the bit to point to the
  // *other* subtree. Node numbering: root = 1, children of n are 2n, 2n+1.
  unsigned node = (ways_ + way) >> 1;
  unsigned child = ways_ + way;
  while (node >= 1) {
    const bool went_right = (child & 1u) != 0;
    // Bit 0 means "victim is in the left subtree". Point away from `way`.
    if (went_right) bits_ &= ~(1ull << node);
    else bits_ |= (1ull << node);
    child = node;
    node >>= 1;
  }
}

unsigned PseudoLruTree::victim() const {
  TDN_ASSERT(ways_ > 0);
  unsigned node = 1;
  while (node < ways_) {
    const bool right = (bits_ >> node) & 1u;
    node = node * 2 + (right ? 1u : 0u);
  }
  return node - ways_;
}

unsigned PseudoLruTree::victim_in(unsigned first, unsigned count) const {
  TDN_ASSERT(ways_ > 0 && count > 0 && first < ways_ &&
             first + count <= ways_);
  const unsigned last = first + count;  // exclusive
  unsigned node = 1;
  unsigned lo = 0;       // first way covered by this node's subtree
  unsigned span = ways_; // ways covered by this node's subtree
  while (node < ways_) {
    const unsigned mid = lo + span / 2;
    // Eligible = subtree overlaps [first, last).
    const bool left_ok = lo < last && first < mid;
    const bool right_ok = mid < last && first < lo + span;
    TDN_ASSERT(left_ok || right_ok);
    const bool go_right =
        (left_ok && right_ok) ? (((bits_ >> node) & 1u) != 0) : right_ok;
    node = node * 2 + (go_right ? 1u : 0u);
    if (go_right) lo = mid;
    span /= 2;
  }
  return node - ways_;
}

}  // namespace tdn::cache
