#include "cache/replacement.hpp"

namespace tdn::cache {

void PseudoLruTree::touch(unsigned way) {
  TDN_ASSERT(way < ways_);
  // Walk from the leaf up: at each internal node set the bit to point to the
  // *other* subtree. Node numbering: root = 1, children of n are 2n, 2n+1.
  unsigned node = (ways_ + way) >> 1;
  unsigned child = ways_ + way;
  while (node >= 1) {
    const bool went_right = (child & 1u) != 0;
    // Bit 0 means "victim is in the left subtree". Point away from `way`.
    if (went_right) bits_ &= ~(1ull << node);
    else bits_ |= (1ull << node);
    child = node;
    node >>= 1;
  }
}

unsigned PseudoLruTree::victim() const {
  TDN_ASSERT(ways_ > 0);
  unsigned node = 1;
  while (node < ways_) {
    const bool right = (bits_ >> node) & 1u;
    node = node * 2 + (right ? 1u : 0u);
  }
  return node - ways_;
}

}  // namespace tdn::cache
