#include "cache/mshr.hpp"

#include "common/require.hpp"

namespace tdn::cache {

MshrFile::Outcome MshrFile::register_miss(Addr line_addr,
                                          std::function<void()>&& on_fill) {
  auto it = entries_.find(line_addr);
  if (it != entries_.end()) {
    it->second.push_back(std::move(on_fill));
    merges_.inc();
    return Outcome::Merged;
  }
  // Capacity is checked before consuming on_fill: on Full the callback must
  // remain with the caller (see the header contract) so it can be retried.
  if (entries_.size() >= capacity_) {
    full_.inc();
    return Outcome::Full;
  }
  entries_[line_addr].push_back(std::move(on_fill));
  return Outcome::NewEntry;
}

std::vector<std::function<void()>> MshrFile::complete(Addr line_addr) {
  auto it = entries_.find(line_addr);
  TDN_REQUIRE(it != entries_.end(), "completing a miss that is not in flight");
  auto cbs = std::move(it->second);
  entries_.erase(it);
  return cbs;
}

}  // namespace tdn::cache
