// Tree pseudo-LRU replacement state for one cache set, as used by the
// paper's LLC configuration ("16-way, pseudoLRU"). The tree is a perfect
// binary tree of direction bits over a power-of-two number of ways.
#pragma once

#include <cstdint>

#include "common/require.hpp"

namespace tdn::cache {

class PseudoLruTree {
 public:
  explicit PseudoLruTree(unsigned ways = 0) { reset(ways); }

  void reset(unsigned ways) {
    TDN_REQUIRE(ways == 0 || (ways & (ways - 1)) == 0,
                "pseudo-LRU requires a power-of-two way count");
    ways_ = ways;
    bits_ = 0;
  }

  unsigned ways() const noexcept { return ways_; }

  /// Mark @p way most-recently used: flip the bits on the root-to-leaf path
  /// to point *away* from it.
  void touch(unsigned way);

  /// The way the tree currently points at (the pseudo-least-recently used).
  unsigned victim() const;

  /// Pseudo-LRU victim restricted to ways [first, first+count): the tree
  /// walk follows its direction bits wherever both subtrees intersect the
  /// range and is forced toward the range otherwise — Intel CAT-style way
  /// partitioning (tdn::multi gives each colocated app a way quota).
  /// victim_in(0, ways()) == victim().
  unsigned victim_in(unsigned first, unsigned count) const;

 private:
  unsigned ways_ = 0;
  std::uint64_t bits_ = 0;  // node i's bit; root is node 1
};

}  // namespace tdn::cache
