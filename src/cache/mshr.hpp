// Miss Status Holding Registers: outstanding-miss tracking with same-line
// request merging and a finite capacity (structural hazard).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/counters.hpp"

namespace tdn::cache {

class MshrFile {
 public:
  explicit MshrFile(unsigned capacity = 16) : capacity_(capacity) {}

  /// Result of registering a miss for @p line_addr.
  enum class Outcome {
    NewEntry,  ///< primary miss: caller must launch the transaction
    Merged,    ///< secondary miss: callback queued behind the in-flight one
    Full,      ///< no free MSHR: caller must retry later
  };

  /// Register a miss. On Outcome::Full @p on_fill is guaranteed untouched
  /// (not moved from): the caller keeps ownership and must retry later —
  /// a dropped fill callback would strand the access forever.
  Outcome register_miss(Addr line_addr, std::function<void()>&& on_fill);

  bool in_flight(Addr line_addr) const { return entries_.count(line_addr) != 0; }
  std::size_t outstanding() const noexcept { return entries_.size(); }
  unsigned capacity() const noexcept { return capacity_; }

  /// Complete the miss: pops the entry and returns all queued callbacks
  /// (primary first) for the caller to run.
  std::vector<std::function<void()>> complete(Addr line_addr);

  std::uint64_t merges() const noexcept { return merges_.value(); }
  std::uint64_t structural_stalls() const noexcept { return full_.value(); }

 private:
  unsigned capacity_;
  std::unordered_map<Addr, std::vector<std::function<void()>>> entries_;
  stats::Counter merges_;
  stats::Counter full_;
};

}  // namespace tdn::cache
