// Discrete-event simulation engine.
//
// A single binary-heap event queue drives the whole system. Events scheduled
// for the same cycle execute in schedule order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic
// (DESIGN.md decision 6).
//
// Performance model (DESIGN.md decision 1): events live in a recycled pool
// and their callables are stored inline (InlineFunction), so steady-state
// scheduling and dispatch never touch the heap allocator. The priority heap
// orders Event* pointers — sift operations move 8-byte pointers, not whole
// closures. The (when, seq) order is exactly the pre-pool order, so every
// fingerprint golden stays bit-identical.
//
// Exception safety: grow_pool() reserves *full pool capacity* for both the
// free list and the heap, so once a slot is acquired neither push_event()
// nor recycle() can allocate. That makes recycle() honestly noexcept (it
// runs in destructors during unwind) and lets commit() stamp the sequence
// number and observer census only after the action is safely in place — a
// throwing capture constructor leaks no seq and skews no counter.
//
// Sharded mode (DESIGN.md decision 7): a ShardedEventQueue may attach to
// one or more EventQueues and drive them in bounded windows on worker
// threads. The hooks below (ShardClient, run_window, inject) are engine-only
// plumbing; the serial path pays exactly one predictable branch in commit().
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "sim/inline_function.hpp"

namespace tdn::sim {

/// Inline-capture budget for one event action. Sized for the largest
/// capture on the coherence path (a miss continuation carrying a
/// std::function completion plus addresses and ids); anything larger fails
/// to compile — see InlineFunction.
inline constexpr std::size_t kActionCapacity = 120;

/// The event-queue callable. Also used directly for per-message delivery
/// continuations (noc::Network) and blocked-directory queues
/// (coherence::CoherentSystem) so those paths are allocation-free too.
using Action = InlineFunction<void(), kActionCapacity>;

class ShardedEventQueue;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule a callable to run at absolute cycle @p when (>= now()).
  /// The callable is emplaced directly into a pooled event slot: no heap
  /// allocation, and captures larger than kActionCapacity fail to compile.
  /// Strong exception guarantee: if the capture constructor throws, the
  /// slot returns to the pool and no seq or counter moves.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Action>>>
  void schedule_at(Cycle when, F&& fn) {
    Event* ev = acquire(when, /*observer=*/false);
    PoolGuard guard{this, ev};
    ev->fn.emplace(std::forward<F>(fn));
    commit(ev);
    guard.release();
  }
  /// Overload for an already-built Action (moved, not re-wrapped).
  void schedule_at(Cycle when, Action fn) {
    Event* ev = acquire(when, /*observer=*/false);
    PoolGuard guard{this, ev};
    ev->fn = std::move(fn);
    commit(ev);
    guard.release();
  }

  /// Schedule a callable to run @p delay cycles from now.
  template <typename F>
  void schedule_in(Cycle delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule an *observer* event: it runs like a normal event but is
  /// invisible to the simulation's accounting — it is excluded from
  /// executed(), from real_pending(), and from the run_until() cycle-limit
  /// check (beyond-limit observers are silently dropped). Observer actions
  /// must never mutate simulation state; the obs epoch sampler uses them so
  /// that recording on/off yields bit-identical results.
  ///
  /// The observer census (real_pending(), the ckpt quiescence check) is
  /// updated inside commit(), after the push that can no longer fail — a
  /// throwing capture constructor leaves the census untouched.
  template <typename F>
  void schedule_observer_at(Cycle when, F&& fn) {
    Event* ev = acquire(when, /*observer=*/true);
    PoolGuard guard{this, ev};
    ev->fn.emplace(std::forward<F>(fn));
    commit(ev);
    guard.release();
  }
  template <typename F>
  void schedule_observer_in(Cycle delay, F&& fn) {
    schedule_observer_at(now_ + delay, std::forward<F>(fn));
  }

  /// Run events until the queue drains. Returns the final cycle.
  Cycle run();
  /// Run events with a hard cycle limit (deadlock guard in tests).
  /// Returns the final cycle; throws RequireError if the limit is exceeded.
  ///
  /// The guard is non-destructive: the over-limit event is *peeked*, not
  /// popped, so a caught overrun leaves the queue, now() and executed()
  /// exactly as they were after the last in-limit event — the run can be
  /// resumed with a higher limit. An event whose action throws is consumed
  /// (it cannot be un-run) but is not counted in executed(); the remaining
  /// events stay queued and runnable.
  Cycle run_until(Cycle limit);

  Cycle now() const noexcept { return now_; }

  /// Jump a *fresh* queue's clock to @p cycle (checkpoint restore: the
  /// rebuilt machine resumes at the snapshot's quiescent point, and
  /// everything re-armed afterwards — remaining arrivals, periodic chains,
  /// observer samplers — schedules at absolute post-restore cycles). Only
  /// legal before anything has been scheduled or run, so it can never skip
  /// over a pending event.
  void fast_forward(Cycle cycle) {
    TDN_REQUIRE(heap_.empty() && executed_ == 0 && now_ == 0,
                "fast_forward is restore-only: queue must be fresh");
    now_ = cycle;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  /// Pending events excluding observers — "is the simulation still live?".
  std::size_t real_pending() const noexcept {
    return heap_.size() - observer_pending_;
  }
  /// Observer events still queued (sampler ticks, watchdog checks).
  std::size_t observer_pending() const noexcept { return observer_pending_; }
  /// Observer events run_until() dropped because they fell past the cycle
  /// limit. Schedulers of periodic observers (the obs epoch sampler) compare
  /// this against a snapshot to learn their tick was discarded and must be
  /// re-armed rather than assumed live.
  std::uint64_t observer_dropped() const noexcept { return observer_dropped_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Event slots ever allocated (pool high-water mark, rounded up to the
  /// chunk size). Steady-state simulation recycles slots, so this tracks
  /// peak pending concurrency, not event count — exposed for the substrate
  /// bench and the pool-recycling tests.
  std::size_t pool_slots() const noexcept { return chunks_.size() * kChunk; }
  /// Free-list capacity — the pool-churn regression test asserts this never
  /// falls below pool_slots(), the invariant that keeps recycle() noexcept.
  std::size_t free_capacity() const noexcept { return free_.capacity(); }

 private:
  friend class ShardedEventQueue;

  /// Sentinel: event was not created inside a sharded window.
  static constexpr std::uint32_t kNoEmit = 0xffffffffu;
  /// Seqs with this bit set are *provisional*: assigned inside a sharded
  /// window and renumbered to their serial values at the window barrier.
  /// The bit places them after every committed (serial) seq, which is
  /// exactly where the serial order puts events that do not exist yet.
  static constexpr std::uint64_t kProvisionalBit = 1ull << 63;

  struct Event {
    Cycle when = 0;
    std::uint64_t seq = 0;
    std::uint32_t emit_idx = kNoEmit;  ///< shard-mode backref, see ShardClient
    bool observer = false;
    Action fn;
  };
  struct Later {
    bool operator()(const Event* a, const Event* b) const noexcept {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };
  static constexpr std::size_t kChunk = 256;

  /// Engine-side bookkeeping for one domain of a ShardedEventQueue. The
  /// emit log records every schedule made inside the current window in
  /// program order; the exec log records every event run. At the window
  /// barrier the engine replays these records in serial (when, seq) order
  /// to assign the exact sequence numbers a serial run would have produced
  /// (sharded_event_queue.hpp has the full argument).
  struct ShardClient {
    struct EmitRec {
      Cycle when = 0;
      Event* ev = nullptr;           ///< pending local child; null once run
      std::int32_t child_exec = -1;  ///< exec-log index if run this window
      std::int32_t channel_msg = -1; ///< engine channel index (cross sends)
    };
    struct ExecRec {
      Cycle when = 0;
      std::uint64_t seq = 0;
      std::uint32_t emit_begin = 0;
      std::uint32_t emit_end = 0;
      bool provisional = false;
    };
    std::uint64_t* global_seq = nullptr;  ///< engine's serial seq counter
    bool in_window = false;
    std::uint64_t prov_count = 0;  ///< provisional ranks, reset per window
    std::vector<EmitRec> emits;
    std::vector<ExecRec> execs;
  };

  /// Returns an acquired-but-uncommitted slot to the free list when the
  /// action's capture constructor (or the shard emit log) throws. recycle()
  /// cannot allocate (grow_pool invariant), so unwinding stays safe.
  struct PoolGuard {
    EventQueue* q;
    Event* ev;
    ~PoolGuard() {
      if (ev != nullptr) q->recycle(ev);
    }
    void release() noexcept { ev = nullptr; }
  };

  /// Grab a free pooled slot (allocating a new chunk only when the free
  /// list is empty) and stamp it with (when, observer). The seq is stamped
  /// later, by commit(), so an abandoned slot never consumes one.
  Event* acquire(Cycle when, bool observer) {
    TDN_REQUIRE(when >= now_, "cannot schedule an event in the past");
    if (free_.empty()) grow_pool();
    Event* ev = free_.back();
    free_.pop_back();
    ev->when = when;
    ev->observer = observer;
    ev->emit_idx = kNoEmit;
    return ev;
  }

  /// Stamp the seq and enqueue a fully-built event. Everything after the
  /// (possibly allocating) shard emit-log append is no-throw, so a failure
  /// anywhere leaves seq counters, the heap and the observer census
  /// untouched — the caller's PoolGuard returns the slot.
  void commit(Event* ev) {
    if (shard_ == nullptr) {
      ev->seq = next_seq_++;
    } else if (shard_->in_window) {
      shard_->emits.push_back(ShardClient::EmitRec{ev->when, ev, -1, -1});
      ev->emit_idx = static_cast<std::uint32_t>(shard_->emits.size() - 1);
      ev->seq = kProvisionalBit | shard_->prov_count++;
    } else {
      // Attached but between windows (program setup): draw from the
      // engine-wide counter so cross-domain schedule order is call order,
      // exactly as one serial queue would number them.
      ev->seq = (*shard_->global_seq)++;
    }
    push_event(ev);
    if (ev->observer) ++observer_pending_;
  }

  void push_event(Event* ev) noexcept;
  /// Pop the heap top; the caller runs the action and then recycles.
  Event* pop_top() noexcept;
  void recycle(Event* ev) noexcept {
    ev->fn.reset();
    free_.push_back(ev);  // cannot allocate: grow_pool reserved full capacity
  }
  void grow_pool();

  /// Engine-only: run every event strictly before @p horizon, recording
  /// exec/emit bookkeeping for the barrier replay. Cycle-limit and observer
  /// drop policy stay with the engine, which sees all domains.
  void run_window(Cycle horizon);
  /// Engine-only: deliver a cross-domain message carrying the serial seq
  /// assigned at the window barrier.
  void inject(Cycle when, std::uint64_t seq, Action fn);

  std::vector<Event*> heap_;  ///< binary min-heap of pooled events
  std::vector<Event*> free_;  ///< recycled slots
  std::vector<std::unique_ptr<Event[]>> chunks_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t observer_dropped_ = 0;
  std::size_t observer_pending_ = 0;
  ShardClient* shard_ = nullptr;  ///< non-null while attached to an engine
};

}  // namespace tdn::sim
