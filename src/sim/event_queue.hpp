// Discrete-event simulation engine.
//
// A single binary-heap event queue drives the whole system. Events scheduled
// for the same cycle execute in schedule order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic
// (DESIGN.md decision 6).
//
// Performance model (DESIGN.md decision 1): events live in a recycled pool
// and their callables are stored inline (InlineFunction), so steady-state
// scheduling and dispatch never touch the heap allocator. The priority heap
// orders Event* pointers — sift operations move 8-byte pointers, not whole
// closures. The (when, seq) order is exactly the pre-pool order, so every
// fingerprint golden stays bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "sim/inline_function.hpp"

namespace tdn::sim {

/// Inline-capture budget for one event action. Sized for the largest
/// capture on the coherence path (a miss continuation carrying a
/// std::function completion plus addresses and ids); anything larger fails
/// to compile — see InlineFunction.
inline constexpr std::size_t kActionCapacity = 120;

/// The event-queue callable. Also used directly for per-message delivery
/// continuations (noc::Network) and blocked-directory queues
/// (coherence::CoherentSystem) so those paths are allocation-free too.
using Action = InlineFunction<void(), kActionCapacity>;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule a callable to run at absolute cycle @p when (>= now()).
  /// The callable is emplaced directly into a pooled event slot: no heap
  /// allocation, and captures larger than kActionCapacity fail to compile.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Action>>>
  void schedule_at(Cycle when, F&& fn) {
    Event* ev = acquire(when, /*observer=*/false);
    ev->fn.emplace(std::forward<F>(fn));
    push_event(ev);
  }
  /// Overload for an already-built Action (moved, not re-wrapped).
  void schedule_at(Cycle when, Action fn) {
    Event* ev = acquire(when, /*observer=*/false);
    ev->fn = std::move(fn);
    push_event(ev);
  }

  /// Schedule a callable to run @p delay cycles from now.
  template <typename F>
  void schedule_in(Cycle delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule an *observer* event: it runs like a normal event but is
  /// invisible to the simulation's accounting — it is excluded from
  /// executed(), from real_pending(), and from the run_until() cycle-limit
  /// check (beyond-limit observers are silently dropped). Observer actions
  /// must never mutate simulation state; the obs epoch sampler uses them so
  /// that recording on/off yields bit-identical results.
  template <typename F>
  void schedule_observer_at(Cycle when, F&& fn) {
    Event* ev = acquire(when, /*observer=*/true);
    ev->fn.emplace(std::forward<F>(fn));
    push_event(ev);
    ++observer_pending_;
  }
  template <typename F>
  void schedule_observer_in(Cycle delay, F&& fn) {
    schedule_observer_at(now_ + delay, std::forward<F>(fn));
  }

  /// Run events until the queue drains. Returns the final cycle.
  Cycle run();
  /// Run events with a hard cycle limit (deadlock guard in tests).
  /// Returns the final cycle; throws RequireError if the limit is exceeded.
  ///
  /// The guard is non-destructive: the over-limit event is *peeked*, not
  /// popped, so a caught overrun leaves the queue, now() and executed()
  /// exactly as they were after the last in-limit event — the run can be
  /// resumed with a higher limit. An event whose action throws is consumed
  /// (it cannot be un-run) but is not counted in executed(); the remaining
  /// events stay queued and runnable.
  Cycle run_until(Cycle limit);

  Cycle now() const noexcept { return now_; }

  /// Jump a *fresh* queue's clock to @p cycle (checkpoint restore: the
  /// rebuilt machine resumes at the snapshot's quiescent point, and
  /// everything re-armed afterwards — remaining arrivals, periodic chains,
  /// observer samplers — schedules at absolute post-restore cycles). Only
  /// legal before anything has been scheduled or run, so it can never skip
  /// over a pending event.
  void fast_forward(Cycle cycle) {
    TDN_REQUIRE(heap_.empty() && executed_ == 0 && now_ == 0,
                "fast_forward is restore-only: queue must be fresh");
    now_ = cycle;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  /// Pending events excluding observers — "is the simulation still live?".
  std::size_t real_pending() const noexcept {
    return heap_.size() - observer_pending_;
  }
  /// Observer events still queued (sampler ticks, watchdog checks).
  std::size_t observer_pending() const noexcept { return observer_pending_; }
  /// Observer events run_until() dropped because they fell past the cycle
  /// limit. Schedulers of periodic observers (the obs epoch sampler) compare
  /// this against a snapshot to learn their tick was discarded and must be
  /// re-armed rather than assumed live.
  std::uint64_t observer_dropped() const noexcept { return observer_dropped_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Event slots ever allocated (pool high-water mark, rounded up to the
  /// chunk size). Steady-state simulation recycles slots, so this tracks
  /// peak pending concurrency, not event count — exposed for the substrate
  /// bench and the pool-recycling tests.
  std::size_t pool_slots() const noexcept { return chunks_.size() * kChunk; }

 private:
  struct Event {
    Cycle when = 0;
    std::uint64_t seq = 0;
    bool observer = false;
    Action fn;
  };
  struct Later {
    bool operator()(const Event* a, const Event* b) const noexcept {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };
  static constexpr std::size_t kChunk = 256;

  /// Grab a free pooled slot (allocating a new chunk only when the free
  /// list is empty) and stamp it with (when, seq, observer).
  Event* acquire(Cycle when, bool observer) {
    TDN_REQUIRE(when >= now_, "cannot schedule an event in the past");
    if (free_.empty()) grow_pool();
    Event* ev = free_.back();
    free_.pop_back();
    ev->when = when;
    ev->seq = next_seq_++;
    ev->observer = observer;
    return ev;
  }
  void push_event(Event* ev);
  /// Pop the heap top; the caller runs the action and then recycles.
  Event* pop_top();
  void recycle(Event* ev) noexcept {
    ev->fn.reset();
    free_.push_back(ev);
  }
  void grow_pool();

  std::vector<Event*> heap_;  ///< binary min-heap of pooled events
  std::vector<Event*> free_;  ///< recycled slots
  std::vector<std::unique_ptr<Event[]>> chunks_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t observer_dropped_ = 0;
  std::size_t observer_pending_ = 0;
};

}  // namespace tdn::sim
