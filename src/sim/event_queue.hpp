// Discrete-event simulation engine.
//
// A single binary-heap event queue drives the whole system. Events scheduled
// for the same cycle execute in schedule order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic
// (DESIGN.md decision 6).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace tdn::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule @p fn to run at absolute cycle @p when (>= now()).
  void schedule_at(Cycle when, Action fn);
  /// Schedule @p fn to run @p delay cycles from now.
  void schedule_in(Cycle delay, Action fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedule an *observer* event: it runs like a normal event but is
  /// invisible to the simulation's accounting — it is excluded from
  /// executed(), from real_pending(), and from the run_until() cycle-limit
  /// check (beyond-limit observers are silently dropped). Observer actions
  /// must never mutate simulation state; the obs epoch sampler uses them so
  /// that recording on/off yields bit-identical results.
  void schedule_observer_at(Cycle when, Action fn);
  void schedule_observer_in(Cycle delay, Action fn) {
    schedule_observer_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue drains. Returns the final cycle.
  Cycle run();
  /// Run events with a hard cycle limit (deadlock guard in tests).
  /// Returns the final cycle; throws RequireError if the limit is exceeded.
  Cycle run_until(Cycle limit);

  Cycle now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  /// Pending events excluding observers — "is the simulation still live?".
  std::size_t real_pending() const noexcept {
    return heap_.size() - observer_pending_;
  }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Action fn;
    bool observer = false;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t observer_pending_ = 0;
};

}  // namespace tdn::sim
