// MeshTraffic — a shared-nothing reference simulation for the sharded
// engine: random-walk packets hopping across a W×H mesh of tiles, one
// domain per tile, with per-tile PRNGs and digests.
//
// It exists for two jobs:
//   * Tests prove the engine's bit-identity contract on a genuinely
//     multi-domain program: run_serial (one EventQueue) and run_sharded
//     (ShardedEventQueue, any thread count) must produce identical
//     digests, event counts and final cycles.
//   * bench_micro_substrate measures real scaling: every hop is a
//     cross-domain channel send, every tile's state is private, so the
//     engine's window/barrier overhead and thread scaling are what is
//     measured — not model-level sharing.
//
// The model honors the domain-ownership contract by construction: a hop's
// action touches only the destination tile's state, and travels via
// schedule_cross with `hop_latency` (== the engine lookahead) delay.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace tdn::sim {

struct MeshTrafficParams {
  unsigned width = 8;
  unsigned height = 8;
  unsigned packets_per_tile = 4;
  unsigned ttl = 32;        ///< hops each packet makes before retiring
  Cycle hop_latency = 2;    ///< per-hop delay; also the engine lookahead
  unsigned work = 32;       ///< digest-mix rounds per hop (compute weight)
  std::uint64_t seed = 1;
};

struct MeshTrafficResult {
  std::vector<std::uint64_t> tile_digest;  ///< per-tile order-sensitive digest
  std::uint64_t events = 0;
  Cycle final_cycle = 0;
  /// Stable hash over digests + events + final cycle, for identity asserts.
  std::uint64_t fingerprint() const;
};

/// Reference: the whole mesh on one serial EventQueue.
MeshTrafficResult run_mesh_traffic_serial(const MeshTrafficParams& p);
/// One engine domain per tile, executed with @p threads workers. Bit-
/// identical to run_serial for every thread count.
MeshTrafficResult run_mesh_traffic_sharded(const MeshTrafficParams& p,
                                           unsigned threads);

}  // namespace tdn::sim
