#include "sim/event_queue.hpp"

namespace tdn::sim {

void EventQueue::schedule_at(Cycle when, Action fn) {
  TDN_REQUIRE(when >= now_, "cannot schedule an event in the past");
  heap_.push(Event{when, next_seq_++, std::move(fn), /*observer=*/false});
}

void EventQueue::schedule_observer_at(Cycle when, Action fn) {
  TDN_REQUIRE(when >= now_, "cannot schedule an event in the past");
  heap_.push(Event{when, next_seq_++, std::move(fn), /*observer=*/true});
  ++observer_pending_;
}

Cycle EventQueue::run() { return run_until(kNeverCycle); }

Cycle EventQueue::run_until(Cycle limit) {
  while (!heap_.empty()) {
    // Move the action out before popping: the action may schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (ev.observer) {
      --observer_pending_;
      // Observers past the limit are dropped, not an error: a cycle-limited
      // run must not be failed by a pending sampler tick.
      if (ev.when > limit) continue;
      now_ = ev.when;
      ev.fn();
      continue;
    }
    TDN_REQUIRE(ev.when <= limit, "simulation exceeded cycle limit (deadlock?)");
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  return now_;
}

}  // namespace tdn::sim
