#include "sim/event_queue.hpp"

#include <algorithm>

namespace tdn::sim {

void EventQueue::grow_pool() {
  chunks_.push_back(std::make_unique<Event[]>(kChunk));
  Event* base = chunks_.back().get();
  // Reserve *full pool capacity* for both vectors: every live slot can be
  // in the heap at once, and every slot can be on the free list at once.
  // This is what makes recycle() honestly noexcept (it runs in destructors
  // during exception unwind — an allocating push_back there would
  // std::terminate) and push_event() unable to fail after acquire.
  const std::size_t cap = chunks_.size() * kChunk;
  free_.reserve(cap);
  heap_.reserve(cap);
  for (std::size_t i = 0; i < kChunk; ++i) free_.push_back(base + i);
}

void EventQueue::push_event(Event* ev) noexcept {
  heap_.push_back(ev);  // cannot allocate: grow_pool reserved full capacity
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Event* EventQueue::pop_top() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event* ev = heap_.back();
  heap_.pop_back();
  return ev;
}

Cycle EventQueue::run() { return run_until(kNeverCycle); }

Cycle EventQueue::run_until(Cycle limit) {
  while (!heap_.empty()) {
    // Peek before popping: if the next real event is over the limit the
    // deadlock guard must fire *without* consuming it, so a caught overrun
    // leaves the queue resumable and the counters truthful.
    Event* top = heap_.front();
    if (!top->observer) {
      TDN_REQUIRE(top->when <= limit,
                  "simulation exceeded cycle limit (deadlock?)");
    }
    Event* ev = pop_top();
    // Recycle the slot whether the action returns or throws: a throwing
    // event is consumed (it cannot be un-run), but its slot and captured
    // state must not linger until pool teardown.
    struct Recycler {
      EventQueue* q;
      Event* e;
      ~Recycler() { q->recycle(e); }
    } recycler{this, ev};
    if (ev->observer) {
      --observer_pending_;
      // Observers past the limit are dropped, not an error: a cycle-limited
      // run must not be failed by a pending sampler tick. The drop is
      // counted so the scheduler of a periodic observer can re-arm.
      if (ev->when > limit) {
        ++observer_dropped_;
        continue;
      }
      now_ = ev->when;
      ev->fn();
      continue;
    }
    now_ = ev->when;
    ev->fn();
    // Counted only after the action completes: an action that throws is not
    // a (successfully) executed event.
    ++executed_;
  }
  return now_;
}

void EventQueue::run_window(Cycle horizon) {
  TDN_REQUIRE(shard_ != nullptr, "run_window is engine-only");
  shard_->in_window = true;
  // Reset in_window even when an action throws — the engine's barrier
  // replay still runs (it must renumber whatever this window created), and
  // any schedule it performs afterwards is between-windows.
  struct WindowExit {
    ShardClient* s;
    ~WindowExit() { s->in_window = false; }
  } window_exit{shard_};
  while (!heap_.empty()) {
    Event* top = heap_.front();
    if (top->when >= horizon) break;
    Event* ev = pop_top();
    struct Recycler {
      EventQueue* q;
      Event* e;
      ~Recycler() { q->recycle(e); }
    } recycler{this, ev};
    const auto exec_idx = static_cast<std::int32_t>(shard_->execs.size());
    const bool provisional = (ev->seq & kProvisionalBit) != 0;
    if (provisional) {
      // Link this exec back to the emit that created the event, and null
      // the emit's pointer: the slot recycles at end of scope and may be
      // reused within this same window.
      shard_->emits[ev->emit_idx].child_exec = exec_idx;
      shard_->emits[ev->emit_idx].ev = nullptr;
    }
    shard_->execs.push_back(ShardClient::ExecRec{
        ev->when, ev->seq, static_cast<std::uint32_t>(shard_->emits.size()),
        0, provisional});
    // Close the exec's emit range even if the action throws: children it
    // managed to schedule before throwing are real and must be renumbered.
    struct CloseExec {
      ShardClient* s;
      std::int32_t idx;
      ~CloseExec() {
        s->execs[static_cast<std::size_t>(idx)].emit_end =
            static_cast<std::uint32_t>(s->emits.size());
      }
    } close_exec{shard_, exec_idx};
    if (ev->observer) {
      --observer_pending_;
      // No drop policy here: the engine caps the horizon at limit + 1, so
      // any beyond-limit observer is handled by the engine's end phase
      // with full cross-domain visibility.
      now_ = ev->when;
      ev->fn();
      continue;
    }
    now_ = ev->when;
    ev->fn();
    ++executed_;
  }
}

void EventQueue::inject(Cycle when, std::uint64_t seq, Action fn) {
  TDN_REQUIRE(when >= now_, "cannot deliver a message in the past");
  if (free_.empty()) grow_pool();
  Event* ev = free_.back();
  free_.pop_back();
  ev->when = when;
  ev->seq = seq;  // the serial seq assigned at the window barrier
  ev->observer = false;
  ev->emit_idx = kNoEmit;
  ev->fn = std::move(fn);
  push_event(ev);
}

}  // namespace tdn::sim
