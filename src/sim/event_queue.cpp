#include "sim/event_queue.hpp"

#include <algorithm>

namespace tdn::sim {

void EventQueue::grow_pool() {
  chunks_.push_back(std::make_unique<Event[]>(kChunk));
  Event* base = chunks_.back().get();
  free_.reserve(free_.size() + kChunk);
  for (std::size_t i = 0; i < kChunk; ++i) free_.push_back(base + i);
}

void EventQueue::push_event(Event* ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Event* EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event* ev = heap_.back();
  heap_.pop_back();
  return ev;
}

Cycle EventQueue::run() { return run_until(kNeverCycle); }

Cycle EventQueue::run_until(Cycle limit) {
  while (!heap_.empty()) {
    // Peek before popping: if the next real event is over the limit the
    // deadlock guard must fire *without* consuming it, so a caught overrun
    // leaves the queue resumable and the counters truthful.
    Event* top = heap_.front();
    if (!top->observer) {
      TDN_REQUIRE(top->when <= limit,
                  "simulation exceeded cycle limit (deadlock?)");
    }
    Event* ev = pop_top();
    // Recycle the slot whether the action returns or throws: a throwing
    // event is consumed (it cannot be un-run), but its slot and captured
    // state must not linger until pool teardown.
    struct Recycler {
      EventQueue* q;
      Event* e;
      ~Recycler() { q->recycle(e); }
    } recycler{this, ev};
    if (ev->observer) {
      --observer_pending_;
      // Observers past the limit are dropped, not an error: a cycle-limited
      // run must not be failed by a pending sampler tick. The drop is
      // counted so the scheduler of a periodic observer can re-arm.
      if (ev->when > limit) {
        ++observer_dropped_;
        continue;
      }
      now_ = ev->when;
      ev->fn();
      continue;
    }
    now_ = ev->when;
    ev->fn();
    // Counted only after the action completes: an action that throws is not
    // a (successfully) executed event.
    ++executed_;
  }
  return now_;
}

}  // namespace tdn::sim
