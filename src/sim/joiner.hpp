// Joiner — completion join for a dynamic set of asynchronous operations.
// Usage: create via std::make_shared, call add() before launching each
// async operation and complete() from its callback; call arm() once all
// operations have been issued. The done callback fires exactly once, when
// armed and the pending count reaches zero (synchronously if nothing is
// pending).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/require.hpp"

namespace tdn::sim {

class Joiner {
 public:
  explicit Joiner(std::function<void()> done) : done_(std::move(done)) {}

  void add(std::uint64_t n = 1) { pending_ += n; }

  void complete() {
    TDN_ASSERT(pending_ > 0);
    --pending_;
    check();
  }

  void arm() {
    TDN_ASSERT(!armed_);
    armed_ = true;
    check();
  }

  std::uint64_t pending() const noexcept { return pending_; }

 private:
  void check() {
    if (armed_ && pending_ == 0 && done_) {
      auto d = std::move(done_);
      done_ = nullptr;
      d();
    }
  }

  std::function<void()> done_;
  std::uint64_t pending_ = 0;
  bool armed_ = false;
};

using JoinerPtr = std::shared_ptr<Joiner>;

inline JoinerPtr make_joiner(std::function<void()> done) {
  return std::make_shared<Joiner>(std::move(done));
}

}  // namespace tdn::sim
