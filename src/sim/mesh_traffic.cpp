#include "sim/mesh_traffic.hpp"

#include <cstddef>

#include "common/prng.hpp"
#include "common/require.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_event_queue.hpp"

namespace tdn::sim {
namespace {

// SplitMix64 finalizer — cheap order-sensitive digest mixing.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Packet {
  std::uint32_t id = 0;
  std::uint32_t ttl = 0;
};

struct TileState {
  SplitMix64 rng{0};
  std::uint64_t digest = 0;
};

struct Ctx {
  MeshTrafficParams p;
  std::vector<TileState> tiles;
  EventQueue* eq = nullptr;             // serial build
  ShardedEventQueue* engine = nullptr;  // sharded build
};

void hop(Ctx& c, std::uint32_t tile, Packet pkt);

// Both builds make the exact same schedule calls in the exact same order —
// that call order is what sequence numbers encode, so the serial reference
// and every sharded thread count replay one identical event stream.
void schedule_hop(Ctx& c, std::uint32_t from, std::uint32_t to, Cycle when,
                  Packet pkt) {
  Ctx* cp = &c;
  auto fn = [cp, to, pkt] { hop(*cp, to, pkt); };
  if (c.engine == nullptr) {
    c.eq->schedule_at(when, fn);
  } else if (from == to) {
    c.engine->domain(to).schedule_at(when, fn);
  } else {
    c.engine->schedule_cross(from, to, when, fn);
  }
}

// A packet arrives at `tile`: mix the arrival into the tile digest (the
// tile's own state — domain ownership holds by construction), burn `work`
// rounds of compute, then walk to a uniformly random in-bounds neighbor.
void hop(Ctx& c, std::uint32_t tile, Packet pkt) {
  TileState& ts = c.tiles[tile];
  const Cycle now =
      c.engine != nullptr ? c.engine->domain(tile).now() : c.eq->now();
  std::uint64_t d =
      mix64(ts.digest ^ (static_cast<std::uint64_t>(pkt.id) << 32) ^ now);
  for (unsigned i = 0; i < c.p.work; ++i) d = mix64(d + i);
  ts.digest = d;
  if (pkt.ttl == 0) return;

  const std::uint32_t x = tile % c.p.width;
  const std::uint32_t y = tile / c.p.width;
  std::uint32_t nbr[4];
  std::uint32_t n = 0;
  if (x + 1 < c.p.width) nbr[n++] = tile + 1;
  if (x > 0) nbr[n++] = tile - 1;
  if (y + 1 < c.p.height) nbr[n++] = tile + c.p.width;
  if (y > 0) nbr[n++] = tile - c.p.width;
  const std::uint32_t to = nbr[ts.rng.next_below(n)];
  schedule_hop(c, tile, to, now + c.p.hop_latency,
               Packet{pkt.id, pkt.ttl - 1});
}

void check_params(const MeshTrafficParams& p) {
  TDN_REQUIRE(p.width >= 1 && p.height >= 1 && p.width * p.height >= 2,
              "mesh traffic needs at least two tiles");
  TDN_REQUIRE(p.hop_latency >= 1, "hop latency must be at least one cycle");
}

// Initial injection: every packet arrives at its home tile at cycle
// hop_latency. Tiles then packets in row-major order — the schedule call
// order both builds share.
void inject(Ctx& c) {
  const std::uint32_t ntiles = c.p.width * c.p.height;
  for (std::uint32_t t = 0; t < ntiles; ++t) {
    c.tiles[t].rng.set_state(mix64(c.p.seed ^ (t + 1)));
    for (std::uint32_t k = 0; k < c.p.packets_per_tile; ++k) {
      schedule_hop(c, t, t, c.p.hop_latency,
                   Packet{t * c.p.packets_per_tile + k, c.p.ttl});
    }
  }
}

MeshTrafficResult collect(const Ctx& c, Cycle final_cycle,
                          std::uint64_t events) {
  MeshTrafficResult r;
  r.tile_digest.reserve(c.tiles.size());
  for (const TileState& ts : c.tiles) r.tile_digest.push_back(ts.digest);
  r.events = events;
  r.final_cycle = final_cycle;
  return r;
}

}  // namespace

std::uint64_t MeshTrafficResult::fingerprint() const {
  std::uint64_t h = fnv1a64("mesh-traffic", 12);
  const auto mix = [&h](std::uint64_t v) {
    h = fnv1a64(reinterpret_cast<const char*>(&v), sizeof(v), h);
  };
  for (const std::uint64_t d : tile_digest) mix(d);
  mix(events);
  mix(final_cycle);
  return h;
}

MeshTrafficResult run_mesh_traffic_serial(const MeshTrafficParams& p) {
  check_params(p);
  Ctx c;
  c.p = p;
  c.tiles.resize(static_cast<std::size_t>(p.width) * p.height);
  EventQueue eq;
  c.eq = &eq;
  inject(c);
  const Cycle end = eq.run();
  return collect(c, end, eq.executed());
}

MeshTrafficResult run_mesh_traffic_sharded(const MeshTrafficParams& p,
                                           unsigned threads) {
  check_params(p);
  Ctx c;
  c.p = p;
  const std::uint32_t ntiles = p.width * p.height;
  c.tiles.resize(ntiles);
  ShardedEventQueue engine(ntiles, threads, p.hop_latency);
  c.engine = &engine;
  inject(c);
  const Cycle end = engine.run();
  return collect(c, end, engine.executed());
}

}  // namespace tdn::sim
