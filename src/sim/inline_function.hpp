// InlineFunction — a move-only std::function replacement whose captured
// state always lives in an in-object buffer, never on the heap.
//
// The event-driven substrate dispatches millions of closures per simulated
// second; std::function's small-buffer window (16 bytes on libstdc++) is far
// smaller than a typical coherence continuation, so the type-erased closure
// path allocated on almost every schedule/send. InlineFunction makes the
// capture size a compile-time contract instead: a callable that does not fit
// the buffer fails to build (static_assert), which keeps the hot path
// allocation-free by construction rather than by luck. The same discipline
// as gem5's pooled/intrusive events, expressed as a vocabulary type.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tdn::sim {

template <typename Sig, std::size_t Cap>
class InlineFunction;

template <typename R, typename... Args, std::size_t Cap>
class InlineFunction<R(Args...), Cap> {
 public:
  static constexpr std::size_t kCapacity = Cap;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit) — drop-in for std::function
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  /// Construct a callable in place. The static_asserts are the no-heap
  /// guarantee: every capture must fit the inline buffer and be nothrow
  /// movable (events move between pool slots, never throw mid-sift).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(!std::is_same_v<Fn, InlineFunction>,
                  "use move assignment, not emplace, for InlineFunction");
    static_assert(sizeof(Fn) <= Cap,
                  "capture too large for the inline buffer: shrink the "
                  "capture (capture pointers/ids, not objects) or raise Cap");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-move-constructible");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(p)))(
          std::forward<Args>(args)...);
    };
    // One manager for both lifetime operations: dst == nullptr destroys the
    // source; otherwise it move-constructs into dst and destroys the source.
    manage_ = [](void* dst, void* src) noexcept {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      if (dst != nullptr) ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
  }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(nullptr, buf_);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      manage_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Cap];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(void* dst, void* src) noexcept = nullptr;
};

}  // namespace tdn::sim
