#include "sim/sharded_event_queue.hpp"

#include <algorithm>
#include <utility>

namespace tdn::sim {

ShardedEventQueue::ShardedEventQueue(std::vector<EventQueue*> domains,
                                     unsigned threads, Cycle lookahead)
    : queues_(std::move(domains)), lookahead_(lookahead) {
  for (auto* q : queues_) TDN_REQUIRE(q != nullptr, "null domain queue");
  init(threads);
}

ShardedEventQueue::ShardedEventQueue(unsigned domains, unsigned threads,
                                     Cycle lookahead)
    : lookahead_(lookahead) {
  owned_.reserve(domains);
  queues_.reserve(domains);
  for (unsigned i = 0; i < domains; ++i) {
    owned_.push_back(std::make_unique<EventQueue>());
    queues_.push_back(owned_.back().get());
  }
  init(threads);
}

void ShardedEventQueue::init(unsigned threads) {
  TDN_REQUIRE(!queues_.empty(), "engine needs at least one domain");
  TDN_REQUIRE(lookahead_ >= 1, "lookahead must be at least one cycle");
  threads_ = std::max(
      1u, std::min(threads, static_cast<unsigned>(queues_.size())));
  attach();
  if (threads_ > 1) {
    pool_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      pool_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedEventQueue::~ShardedEventQueue() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_) t.join();
  detach();
}

void ShardedEventQueue::attach() {
  for (auto* q : queues_) {
    TDN_REQUIRE(q->shard_ == nullptr, "queue is already attached to an engine");
  }
  if (queues_.size() > 1) {
    // With several domains, sequence numbers must be globally unique in
    // call order (they are the serial tiebreaker). Fresh queues guarantee
    // it: every later schedule draws from the engine-wide counter.
    for (auto* q : queues_) {
      TDN_REQUIRE(q->heap_.empty() && q->next_seq_ == 0,
                  "multi-domain attach requires fresh queues: build the "
                  "program through the attached domains");
    }
  }
  next_seq_ = 0;
  for (auto* q : queues_) next_seq_ = std::max(next_seq_, q->next_seq_);
  clients_.resize(queues_.size());
  channels_.resize(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    clients_[i].global_seq = &next_seq_;
    queues_[i]->shard_ = &clients_[i];
  }
}

void ShardedEventQueue::detach() noexcept {
  for (auto* q : queues_) {
    if (q->shard_ != nullptr) {
      // The queue continues serially from the engine's counter, so a later
      // schedule sorts after everything the engine numbered.
      q->next_seq_ = next_seq_;
      q->shard_ = nullptr;
    }
  }
}

void ShardedEventQueue::schedule_cross(DomainId from, DomainId to, Cycle when,
                                       Action fn) {
  TDN_REQUIRE(from < queues_.size() && to < queues_.size(),
              "domain id out of range");
  auto& c = clients_[from];
  if (!c.in_window) {
    // Program setup between windows: an ordinary schedule, numbered in
    // call order by the engine-wide counter (see EventQueue::commit).
    queues_[to]->schedule_at(when, std::move(fn));
    return;
  }
  TDN_REQUIRE(from != to, "schedule_cross is for distinct domains");
  TDN_REQUIRE(when >= queues_[from]->now_ + lookahead_,
              "cross-domain send violates the lookahead horizon");
  auto& ch = channels_[from];
  // Reserve the emit slot first so the two appends cannot come apart: a
  // channel message without its emit record would never receive a seq.
  c.emits.reserve(c.emits.size() + 1);
  ch.push_back(ChannelMsg{to, when, 0, std::move(fn)});
  c.emits.push_back(EventQueue::ShardClient::EmitRec{
      when, nullptr, -1, static_cast<std::int32_t>(ch.size() - 1)});
}

Cycle ShardedEventQueue::run() { return run_until(kNeverCycle); }

Cycle ShardedEventQueue::run_until(Cycle limit) {
  const Cycle cap = limit == kNeverCycle ? kNeverCycle : limit + 1;
  for (;;) {
    // T = earliest pending cycle anywhere, observers included.
    Cycle t = kNeverCycle;
    bool any = false;
    for (auto* q : queues_) {
      if (!q->heap_.empty()) {
        any = true;
        t = std::min(t, q->heap_.front()->when);
      }
    }
    if (!any) break;
    if (t > limit) {
      finish_overrun();
      break;
    }
    const Cycle horizon = std::min(
        t >= kNeverCycle - lookahead_ ? kNeverCycle : t + lookahead_, cap);
    ++windows_;
    execute_window(horizon);
    // The barrier replay runs even when a domain's action threw: whatever
    // the window created must be renumbered so the engine (and a resumed
    // run) only ever sees serial sequence numbers.
    replay_renumber();
    deliver_channels();
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk(mu_);
      std::swap(err, first_error_);
    }
    if (err) std::rethrow_exception(err);
  }
  return now();
}

void ShardedEventQueue::execute_window(Cycle horizon) {
  if (threads_ == 1) {
    for (DomainId d = 0; d < queues_.size(); ++d) {
      run_domain_window(d, horizon);
    }
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_count_ = 0;
  work_horizon_ = horizon;
  ++window_gen_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return done_count_ == threads_; });
}

void ShardedEventQueue::run_domain_window(DomainId d, Cycle horizon) noexcept {
  try {
    queues_[d]->run_window(horizon);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ShardedEventQueue::worker_loop(unsigned wid) {
  std::uint64_t seen = 0;
  for (;;) {
    Cycle horizon = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || window_gen_ != seen; });
      if (stop_) return;
      seen = window_gen_;
      horizon = work_horizon_;
    }
    for (DomainId d = wid; d < queues_.size();
         d += static_cast<DomainId>(threads_)) {
      run_domain_window(d, horizon);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++done_count_ == threads_) cv_done_.notify_one();
    }
  }
}

void ShardedEventQueue::replay_renumber() {
  // Reconstruct the order in which one serial queue would have assigned
  // sequence numbers this window: executed events by (when, seq), each
  // event's schedules in program order. See the header's bit-identity
  // argument.
  const auto later = [](const ReplayEnt& a, const ReplayEnt& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  };
  replay_.clear();
  for (DomainId d = 0; d < clients_.size(); ++d) {
    const auto& execs = clients_[d].execs;
    for (std::uint32_t i = 0; i < execs.size(); ++i) {
      if (!execs[i].provisional) {
        replay_.push_back(ReplayEnt{execs[i].when, execs[i].seq, d, i});
      }
    }
  }
  std::make_heap(replay_.begin(), replay_.end(), later);
  while (!replay_.empty()) {
    std::pop_heap(replay_.begin(), replay_.end(), later);
    const ReplayEnt e = replay_.back();
    replay_.pop_back();
    auto& c = clients_[e.d];
    const auto exec = c.execs[e.exec];
    for (std::uint32_t j = exec.emit_begin; j < exec.emit_end; ++j) {
      auto& em = c.emits[j];
      const std::uint64_t s = next_seq_++;
      if (em.channel_msg >= 0) {
        channels_[e.d][static_cast<std::size_t>(em.channel_msg)].seq = s;
      } else if (em.child_exec >= 0) {
        // The child ran this window too: its own schedules renumber once
        // its serial position comes up.
        replay_.push_back(
            ReplayEnt{em.when, s, e.d, static_cast<std::uint32_t>(em.child_exec)});
        std::push_heap(replay_.begin(), replay_.end(), later);
      } else if (em.ev != nullptr) {
        // Still pending locally: rewrite in place. Ranks were assigned in
        // the same order seqs are now, so relative order inside the heap —
        // and therefore the heap invariant — is untouched.
        em.ev->seq = s;
      }
    }
  }
  for (auto& c : clients_) {
    c.execs.clear();
    c.emits.clear();
    c.prov_count = 0;
  }
}

void ShardedEventQueue::deliver_channels() {
  for (auto& ch : channels_) {
    for (auto& m : ch) {
      queues_[m.to]->inject(m.when, m.seq, std::move(m.fn));
      ++cross_messages_;
    }
    ch.clear();
  }
}

void ShardedEventQueue::finish_overrun() {
  // Every pending event lies past the limit. Serial execution would pop in
  // (when, seq) order, dropping observers, until the first real event
  // trips the guard without being consumed. Find that first real key, drop
  // exactly the observers ahead of it, then fire the same guard.
  Cycle rw = kNeverCycle;
  std::uint64_t rs = std::numeric_limits<std::uint64_t>::max();
  bool any_real = false;
  for (auto* q : queues_) {
    for (const auto* ev : q->heap_) {
      if (ev->observer) continue;
      if (!any_real || ev->when < rw || (ev->when == rw && ev->seq < rs)) {
        any_real = true;
        rw = ev->when;
        rs = ev->seq;
      }
    }
  }
  for (auto* q : queues_) {
    while (!q->heap_.empty()) {
      const auto* top = q->heap_.front();
      if (!top->observer) break;
      if (any_real && !(top->when < rw || (top->when == rw && top->seq < rs))) {
        break;
      }
      auto* ev = q->pop_top();
      --q->observer_pending_;
      ++q->observer_dropped_;
      q->recycle(ev);
    }
  }
  TDN_REQUIRE(!any_real, "simulation exceeded cycle limit (deadlock?)");
}

Cycle ShardedEventQueue::now() const noexcept {
  Cycle n = 0;
  for (const auto* q : queues_) n = std::max(n, q->now_);
  return n;
}

std::uint64_t ShardedEventQueue::executed() const noexcept {
  std::uint64_t n = 0;
  for (const auto* q : queues_) n += q->executed_;
  return n;
}

std::size_t ShardedEventQueue::pending() const noexcept {
  std::size_t n = 0;
  for (const auto* q : queues_) n += q->pending();
  return n;
}

std::size_t ShardedEventQueue::real_pending() const noexcept {
  std::size_t n = 0;
  for (const auto* q : queues_) n += q->real_pending();
  return n;
}

std::size_t ShardedEventQueue::observer_pending() const noexcept {
  std::size_t n = 0;
  for (const auto* q : queues_) n += q->observer_pending();
  return n;
}

std::uint64_t ShardedEventQueue::observer_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto* q : queues_) n += q->observer_dropped();
  return n;
}

}  // namespace tdn::sim
