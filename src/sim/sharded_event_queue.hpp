// ShardedEventQueue — conservative parallel discrete-event execution that is
// bit-identical to the serial EventQueue (DESIGN.md decision 7).
//
// The simulation is partitioned into *domains*, each owning a private
// EventQueue. Execution proceeds in windows: the engine finds the earliest
// pending cycle T across all domains and lets every domain run its events
// with `when < min(T + lookahead, limit + 1)` concurrently on a thread pool.
// The lookahead is the minimum cross-domain latency (for the NoC, router +
// link traversal of one hop — noc::DomainMap::lookahead), so no domain can
// receive work inside a window it is already executing: cross-domain sends
// go through per-source channels and are merged at the window barrier.
//
// Bit-identity argument. Serial execution is the unique order of the keys
// (when, seq), where seq is assigned in schedule-call order. Two facts make
// the sharded run identical:
//
//   1. Within a domain, a window executes exactly the serial order
//      restricted to that domain: pending events carry their serial seqs,
//      and events created inside the window (provisional seqs, in emit
//      order) sort after them — which is where serial numbering would put
//      them, because a child's seq always exceeds every pending seq.
//   2. At the barrier the engine *replays* the window's exec/emit metadata
//      in global (when, seq) order: walking executed events by key and
//      their emits in program order reproduces, exactly, the sequence in
//      which one serial queue would have assigned seqs. Provisional seqs —
//      on still-pending events and on channel messages — are rewritten to
//      those serial values (relative order within each heap is unchanged,
//      so the rewrite preserves the heap invariant).
//
// Therefore every action runs at the same cycle, in the same global order,
// against the same state as the serial run — fingerprints and metrics
// hashes cannot differ. The one obligation on the *model* is the domain
// ownership contract: an action scheduled on domain D may touch only state
// owned by D (cross-domain effects travel through schedule_cross). A model
// placed entirely on one domain (TiledSystem today) satisfies it trivially.
//
// threads=1 with a single domain is not routed here at all (callers run
// the serial EventQueue directly); a multi-domain engine with threads=1
// runs windows inline on the caller with no threads spawned — useful for
// validating the channel protocol deterministically.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace tdn::sim {

/// Index of one shard domain (e.g. one tile of the mesh).
using DomainId = std::uint32_t;

class ShardedEventQueue {
 public:
  /// Attach existing queues as domains (non-owning; detached on
  /// destruction, at which point each queue continues serially with the
  /// engine's sequence counter). Multi-domain attach requires fresh queues:
  /// schedule the program *through the attached domains* so sequence
  /// numbers are globally unique in call order. A single-domain attach
  /// accepts a queue with history (the full-system path).
  ShardedEventQueue(std::vector<EventQueue*> domains, unsigned threads,
                    Cycle lookahead);
  /// Convenience: create and own @p domains fresh queues.
  ShardedEventQueue(unsigned domains, unsigned threads, Cycle lookahead);
  ~ShardedEventQueue();
  ShardedEventQueue(const ShardedEventQueue&) = delete;
  ShardedEventQueue& operator=(const ShardedEventQueue&) = delete;

  EventQueue& domain(DomainId d) {
    TDN_REQUIRE(d < queues_.size(), "domain id out of range");
    return *queues_[d];
  }
  unsigned domains() const noexcept {
    return static_cast<unsigned>(queues_.size());
  }
  unsigned threads() const noexcept { return threads_; }
  Cycle lookahead() const noexcept { return lookahead_; }

  /// Cross-domain send. Inside a window this buffers the message in the
  /// sender's channel (it must respect the lookahead horizon: when >=
  /// sender.now() + lookahead) and the barrier stamps it with its serial
  /// seq before delivery. Outside a window it is a plain schedule on the
  /// destination, numbered in call order like any serial schedule.
  void schedule_cross(DomainId from, DomainId to, Cycle when, Action fn);

  /// Run until every domain drains. Returns the final cycle (max over
  /// domains). An action that throws aborts the run after the current
  /// window's barrier (state stays consistent); the exception is rethrown.
  Cycle run();
  /// Run with a hard cycle limit; same semantics as EventQueue::run_until —
  /// non-destructive overrun guard, beyond-limit observers dropped, throws
  /// RequireError if a real event lies past the limit.
  Cycle run_until(Cycle limit);

  Cycle now() const noexcept;
  std::uint64_t executed() const noexcept;
  std::size_t pending() const noexcept;
  std::size_t real_pending() const noexcept;
  std::size_t observer_pending() const noexcept;
  std::uint64_t observer_dropped() const noexcept;
  bool empty() const noexcept { return pending() == 0; }

  /// Telemetry: barrier windows executed and cross-domain messages merged.
  std::uint64_t windows() const noexcept { return windows_; }
  std::uint64_t cross_messages() const noexcept { return cross_messages_; }

 private:
  struct ChannelMsg {
    DomainId to = 0;
    Cycle when = 0;
    std::uint64_t seq = 0;  ///< serial seq, stamped at the window barrier
    Action fn;
  };
  /// Replay-heap entry: one executed event, keyed by its serial (when, seq).
  struct ReplayEnt {
    Cycle when = 0;
    std::uint64_t seq = 0;
    DomainId d = 0;
    std::uint32_t exec = 0;
  };

  void init(unsigned threads);
  void attach();
  void detach() noexcept;
  void execute_window(Cycle horizon);
  void replay_renumber();
  void deliver_channels();
  /// Serial end-phase once every pending event is past the limit: drop
  /// observers the serial loop would have reached, then fire the guard if
  /// a real event remains (non-destructively, exactly like the peek).
  void finish_overrun();
  void worker_loop(unsigned wid);
  void run_domain_window(DomainId d, Cycle horizon) noexcept;

  std::vector<EventQueue*> queues_;
  std::vector<std::unique_ptr<EventQueue>> owned_;
  std::vector<EventQueue::ShardClient> clients_;
  std::vector<std::vector<ChannelMsg>> channels_;  ///< per source domain
  std::vector<ReplayEnt> replay_;                  ///< reused barrier heap
  unsigned threads_ = 1;
  Cycle lookahead_ = 1;
  std::uint64_t next_seq_ = 0;  ///< the engine-wide serial seq counter
  std::uint64_t windows_ = 0;
  std::uint64_t cross_messages_ = 0;

  // Window handoff. The mutex is the happens-before edge for all domain
  // state: workers acquire it before reading the horizon and after
  // finishing their domains; the coordinator holds it while preparing a
  // window and while replaying at the barrier.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Cycle work_horizon_ = 0;
  std::uint64_t window_gen_ = 0;
  unsigned done_count_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< guarded by mu_
};

}  // namespace tdn::sim
