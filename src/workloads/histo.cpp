// Histo — two-pass blocked histogramming with a reduction tree (paper
// Table II: 1500x1500 image, 50x50 blocks, 50 bins).
//
// Pass 1 computes per-tile value ranges; a reducer merges them; pass 2 bins
// each tile into a per-tile partial histogram; a tree of reducers merges the
// partials. All tasks are created up front (no taskwait), so the runtime
// sees every future reader:
//   * image tiles are read twice (range pass + binning pass): first read
//     replicates, second bypasses,
//   * partial histograms are written (out -> local bank mapping; Histo has
//     the highest Out share of the suite, paper Sec. V-E) and read once by
//     their reducer,
//   * the merged global range is read by all pass-2 tasks -> replicated.
// Little of the miss traffic is bypassable, which is why the bypass-only
// variant gains nothing here (Fig. 15).
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class HistoWorkload final : public Workload {
 public:
  explicit HistoWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "histo"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    const unsigned tiles_n = 256;
    const Addr tile_bytes = scaled_bytes(32.0 * kKiB, params_.scale);
    const Addr hist_bytes = 4 * kKiB;
    std::vector<Builder::Region> tiles(tiles_n), ranges(tiles_n), hists(tiles_n);
    for (unsigned i = 0; i < tiles_n; ++i) {
      std::ostringstream tn, rn, hn;
      tn << "img[" << i << "]";
      rn << "range[" << i << "]";
      hn << "hist[" << i << "]";
      tiles[i] = b.alloc(tile_bytes, tn.str());
      ranges[i] = b.alloc(256, rn.str());
      hists[i] = b.alloc(hist_bytes, hn.str());
    }
    const auto global_range = b.alloc(256, "global_range");

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;

    // Pass 1: per-tile min/max.
    for (unsigned i = 0; i < tiles_n; ++i) {
      core::TaskProgram prog;
      prog.add_phase(b.read(tiles[i]));
      prog.add_phase(b.write(ranges[i]));
      std::ostringstream nm;
      nm << "range(" << i << ")";
      rt.create_task(nm.str(),
                     {{tiles[i].dep, DepUse::In}, {ranges[i].dep, DepUse::Out}},
                     std::move(prog));
      dep_bytes_total += tiles[i].range.size() + ranges[i].range.size();
      ++tasks;
    }
    // Merge ranges.
    {
      core::TaskProgram prog;
      std::vector<runtime::DepAccess> deps;
      for (unsigned i = 0; i < tiles_n; ++i) {
        deps.push_back({ranges[i].dep, DepUse::In});
        prog.add_phase(b.read(ranges[i]));
        dep_bytes_total += ranges[i].range.size();
      }
      deps.push_back({global_range.dep, DepUse::Out});
      prog.add_phase(b.write(global_range));
      dep_bytes_total += global_range.range.size();
      rt.create_task("merge_ranges", std::move(deps), std::move(prog));
      ++tasks;
    }
    // Pass 2: bin each tile.
    for (unsigned i = 0; i < tiles_n; ++i) {
      core::TaskProgram prog;
      prog.add_phase(b.read(global_range));
      prog.add_group({b.read(tiles[i]), b.phase(hists[i].range,
                                                AccessKind::Write, 1)});
      std::ostringstream nm;
      nm << "bin(" << i << ")";
      rt.create_task(nm.str(),
                     {{global_range.dep, DepUse::In},
                      {tiles[i].dep, DepUse::In},
                      {hists[i].dep, DepUse::Out}},
                     std::move(prog));
      dep_bytes_total += global_range.range.size() + tiles[i].range.size() +
                         hists[i].range.size();
      ++tasks;
    }
    // Reduction tree over partial histograms, fan-in 8.
    std::vector<Builder::Region> level = hists;
    unsigned depth = 0;
    while (level.size() > 1) {
      std::vector<Builder::Region> next;
      for (std::size_t g = 0; g < level.size(); g += 8) {
        std::ostringstream an;
        an << "acc[" << depth << "][" << g / 8 << "]";
        const auto acc = b.alloc(hist_bytes, an.str());
        core::TaskProgram prog;
        std::vector<runtime::DepAccess> deps;
        const std::size_t end = std::min(level.size(), g + 8);
        for (std::size_t i = g; i < end; ++i) {
          deps.push_back({level[i].dep, DepUse::In});
          prog.add_group({b.read(level[i]),
                          b.phase(acc.range, AccessKind::Write, 1)});
          dep_bytes_total += level[i].range.size();
        }
        deps.push_back({acc.dep, DepUse::InOut});
        dep_bytes_total += acc.range.size();
        std::ostringstream nm;
        nm << "reduce(" << depth << "," << g / 8 << ")";
        rt.create_task(nm.str(), std::move(deps), std::move(prog));
        ++tasks;
        next.push_back(acc);
      }
      level = std::move(next);
      ++depth;
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_histo(const WorkloadParams& p) {
  return std::make_unique<HistoWorkload>(p);
}

}  // namespace tdn::workloads
