// Kmeans — one Lloyd iteration over blocked points (paper Table II: 450000
// points, 90 dims, 6 clusters, 1 iteration).
//
// Map tasks read their point block (once — predicted not-reused, bypassed)
// and the shared centroids (read by every map task -> cluster replicated),
// producing per-task accumulators; a reduction tree folds the accumulators
// and a final task updates the centroids (the RO->RW transition exercises
// TD-NUCA's lazy replica invalidation).
#include "workloads/workloads.hpp"

#include <algorithm>
#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class KmeansWorkload final : public Workload {
 public:
  explicit KmeansWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "kmeans"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute + 2);  // distance computation per line
    auto& rt = b.rt();

    const unsigned blocks = 96;
    const Addr block_bytes = scaled_bytes(64.0 * kKiB, params_.scale);
    const Addr centroid_bytes = 4 * kKiB;
    const Addr acc_bytes = 4 * kKiB;

    const auto centroids = b.alloc(centroid_bytes, "centroids");
    std::vector<Builder::Region> points(blocks), accs(blocks);
    for (unsigned i = 0; i < blocks; ++i) {
      std::ostringstream pn, an;
      pn << "pts[" << i << "]";
      an << "acc[" << i << "]";
      points[i] = b.alloc(block_bytes, pn.str());
      accs[i] = b.alloc(acc_bytes, an.str());
    }

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    // Map: assign points to nearest centroid, accumulate partial sums.
    for (unsigned i = 0; i < blocks; ++i) {
      core::TaskProgram prog;
      prog.add_phase(b.read(centroids));
      prog.add_group({b.read(points[i]),
                      b.phase(accs[i].range, AccessKind::Write, 1)});
      std::ostringstream nm;
      nm << "assign(" << i << ")";
      rt.create_task(nm.str(),
                     {{centroids.dep, DepUse::In},
                      {points[i].dep, DepUse::In},
                      {accs[i].dep, DepUse::Out}},
                     std::move(prog));
      dep_bytes_total += centroids.range.size() + points[i].range.size() +
                         accs[i].range.size();
      ++tasks;
    }
    // Reduce accumulators, fan-in 8, then update centroids.
    std::vector<Builder::Region> level = accs;
    unsigned depth = 0;
    while (level.size() > 1) {
      std::vector<Builder::Region> next;
      for (std::size_t g = 0; g < level.size(); g += 8) {
        std::ostringstream an;
        an << "sum[" << depth << "][" << g / 8 << "]";
        const auto sum = b.alloc(acc_bytes, an.str());
        core::TaskProgram prog;
        std::vector<runtime::DepAccess> deps;
        const std::size_t end = std::min(level.size(), g + 8);
        for (std::size_t i = g; i < end; ++i) {
          deps.push_back({level[i].dep, DepUse::In});
          prog.add_group({b.read(level[i]),
                          b.phase(sum.range, AccessKind::Write, 1)});
          dep_bytes_total += level[i].range.size();
        }
        deps.push_back({sum.dep, DepUse::InOut});
        dep_bytes_total += sum.range.size();
        std::ostringstream nm;
        nm << "reduce(" << depth << "," << g / 8 << ")";
        rt.create_task(nm.str(), std::move(deps), std::move(prog));
        ++tasks;
        next.push_back(sum);
      }
      level = std::move(next);
      ++depth;
    }
    {
      core::TaskProgram prog;
      prog.add_group({b.read(level[0]),
                      b.phase(centroids.range, AccessKind::Write, 1)});
      rt.create_task("update_centroids",
                     {{level[0].dep, DepUse::In},
                      {centroids.dep, DepUse::InOut}},
                     std::move(prog));
      dep_bytes_total += level[0].range.size() + centroids.range.size();
      ++tasks;
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_kmeans(const WorkloadParams& p) {
  return std::make_unique<KmeansWorkload>(p);
}

}  // namespace tdn::workloads
