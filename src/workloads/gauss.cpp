// Gauss — blocked in-place Gauss-Seidel sweep (paper Table II: N^2 matrix,
// 2 iterations), tile-major layout.
//
// Per iteration, task(i,j) updates tile(i,j) in place (inout) reading the
// already-updated west and north tiles (in) — a wavefront TDG. A taskwait
// separates the two iterations, so within one phase each tile is written
// once and read by at most two successor tasks. TD-NUCA behaviour:
//   * the inout tile maps to the writer's local bank (future readers exist),
//   * the first cross-task read replicates it, the last read bypasses,
//   * next iteration's write triggers the lazy RO->RW invalidation.
// This mirrors the paper's Gauss profile: almost every block is eventually
// predicted not-reused, but a small set of inout tiles causes a large share
// of misses, which is why full TD-NUCA clearly beats the bypass-only variant
// (Fig. 15).
#include "workloads/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class GaussWorkload final : public Workload {
 public:
  explicit GaussWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "gauss"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    // ~13.5 MiB matrix (3.4x the scaled LLC; the paper's is ~15x its LLC)
    // in 48 KiB tile-major tiles => 17x17 tile grid. The matrix exceeds the
    // LLC and iterations are barrier-separated, so tile updates round-trip
    // to DRAM under every policy; what differentiates the policies is the
    // placement of the heavily re-read halo regions (two neighbours' halos
    // exceed the L1 together, so their re-reads stream from the LLC). Each
    // tile's trailing half (its last rows) doubles as the halo its two
    // wavefront successors read — a distinct, finer-grained dependency,
    // exactly like OmpSs array-section halos.
    const Addr tile_bytes = scaled_bytes(48.0 * kKiB, 1.0);
    const Addr halo_bytes = tile_bytes / 2;
    const unsigned grid = std::max<unsigned>(
        2, static_cast<unsigned>(17.0 * std::sqrt(params_.scale)));
    std::vector<Builder::Region> tiles;
    std::vector<Builder::Region> halos;
    tiles.reserve(static_cast<std::size_t>(grid) * grid);
    for (unsigned i = 0; i < grid; ++i) {
      for (unsigned j = 0; j < grid; ++j) {
        std::ostringstream nm;
        nm << "A[" << i << "][" << j << "]";
        tiles.push_back(b.alloc(tile_bytes, nm.str()));
        const AddrRange t = tiles.back().range;
        // Halo: the trailing rows of the tile, as their own dependency.
        const AddrRange h{t.end - halo_bytes, t.end};
        halos.push_back({rt.region(h, nm.str() + ".halo"), h});
      }
    }
    const AddrRange consts = b.alloc_untracked(16 * kKiB, "gauss.coeffs");

    const unsigned iters = 2;
    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    for (unsigned it = 0; it < iters; ++it) {
      for (unsigned i = 0; i < grid; ++i) {
        for (unsigned j = 0; j < grid; ++j) {
          const auto& own = tiles[i * grid + j];
          std::vector<runtime::DepAccess> deps;
          deps.push_back({own.dep, DepUse::InOut});
          core::TaskProgram prog;
          std::vector<core::AccessPhase> halo_reads;
          std::vector<core::AccessPhase> halo_rereads;
          if (i > 0) {
            const auto& north = halos[(i - 1) * grid + j];
            deps.push_back({north.dep, DepUse::In});
            // Boundary values feed the whole first row of updates: the
            // first sweep streams them in (prefetchable), then they are
            // re-read with dependent accesses (this is the small set of
            // blocks behind a large share of misses, paper Sec. V-D).
            halo_reads.push_back(b.read(north, /*passes=*/1, /*mlp=*/8));
            halo_rereads.push_back(b.read(north, /*passes=*/2, /*mlp=*/2));
            dep_bytes_total += north.range.size();
          }
          if (j > 0) {
            const auto& west = halos[i * grid + (j - 1)];
            deps.push_back({west.dep, DepUse::In});
            halo_reads.push_back(b.read(west, /*passes=*/1, /*mlp=*/8));
            halo_rereads.push_back(b.read(west, /*passes=*/2, /*mlp=*/2));
            dep_bytes_total += west.range.size();
          }
          if (!halo_reads.empty()) prog.add_group(std::move(halo_reads));
          if (!halo_rereads.empty()) prog.add_group(std::move(halo_rereads));
          prog.add_group(b.rmw(own));
          prog.add_phase(b.sample(consts, 16, params_.seed + tasks));
          dep_bytes_total += own.range.size();
          std::ostringstream nm;
          nm << "gauss(" << it << "," << i << "," << j << ")";
          rt.create_task(nm.str(), std::move(deps), std::move(prog));
          ++tasks;
        }
      }
      // Barrier between iterations (residual/convergence check): within a
      // phase each tile is written exactly once (predicted not-reused ->
      // bypassed) while its halo is read by two successors (-> replicated).
      if (it + 1 < iters) rt.taskwait();
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = iters;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_gauss(const WorkloadParams& p) {
  return std::make_unique<GaussWorkload>(p);
}

}  // namespace tdn::workloads
