// KNN — k-nearest-neighbour classification (paper Table II: 512 training /
// 229376 input points, 8 classes).
//
// Every task classifies one block of input points against the whole training
// set, which it scans repeatedly (the training set exceeds the L1, so these
// re-reads dominate the miss stream). All tasks are created up front, so the
// training chunks are visibly reused: TD-NUCA cluster-replicates them and
// every core reads its local-cluster replica. The input blocks are read once
// and bypass, but they are a small share of the misses — which is why the
// bypass-only variant gains nothing on KNN while full TD-NUCA still wins via
// replication (Fig. 15), and why every policy's LLC hit ratio is high
// (Fig. 10).
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class KnnWorkload final : public Workload {
 public:
  explicit KnnWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "knn"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute + 2);
    auto& rt = b.rt();

    const unsigned train_chunks = 4;
    const Addr chunk_bytes = scaled_bytes(48.0 * kKiB, params_.scale);
    std::vector<Builder::Region> train(train_chunks);
    for (unsigned i = 0; i < train_chunks; ++i) {
      std::ostringstream tn;
      tn << "train[" << i << "]";
      train[i] = b.alloc(chunk_bytes, tn.str());
    }
    const unsigned in_blocks = 64;
    const Addr in_bytes = scaled_bytes(64.0 * kKiB, params_.scale);

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    for (unsigned i = 0; i < in_blocks; ++i) {
      std::ostringstream bn, rn;
      bn << "input[" << i << "]";
      rn << "labels[" << i << "]";
      const auto input = b.alloc(in_bytes, bn.str());
      const auto labels = b.alloc(256, rn.str());
      core::TaskProgram prog;
      std::vector<runtime::DepAccess> deps;
      deps.push_back({input.dep, DepUse::In});
      prog.add_phase(b.read(input));
      for (unsigned c = 0; c < train_chunks; ++c) {
        deps.push_back({train[c].dep, DepUse::In});
        // Distance computation rescans the training chunk several times
        // (once per sub-batch of input points).
        prog.add_phase(b.read(train[c], /*passes=*/3));
        dep_bytes_total += train[c].range.size();
      }
      deps.push_back({labels.dep, DepUse::Out});
      prog.add_phase(b.write(labels));
      dep_bytes_total += input.range.size() + labels.range.size();
      std::ostringstream nm;
      nm << "knn(" << i << ")";
      rt.create_task(nm.str(), std::move(deps), std::move(prog));
      ++tasks;
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_knn(const WorkloadParams& p) {
  return std::make_unique<KnnWorkload>(p);
}

}  // namespace tdn::workloads
