// Jacobi — out-of-place band relaxation, alternating source and destination
// matrices across iterations (paper Table II: 5 iterations; average task
// size ≈ input/64, i.e. one band in + one band out per task, matching the
// paper's 4112 KB per task on a 264 MB input).
//
// A taskwait separates iterations, so at placement time the runtime sees no
// future user of either band: both the read of the source band and the write
// of the destination band are predicted not-reused and bypass the LLC —
// reproducing the paper's ">97% NotReused" profile and the Fig. 15 result
// that bypass-only TD-NUCA matches the full design on Jacobi.
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class JacobiWorkload final : public Workload {
 public:
  explicit JacobiWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "jacobi"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    const unsigned bands = 64;
    const Addr band_bytes = scaled_bytes(64.0 * kKiB, params_.scale);
    std::vector<Builder::Region> a(bands), bb(bands);
    for (unsigned i = 0; i < bands; ++i) {
      std::ostringstream an, bn;
      an << "A[" << i << "]";
      bn << "B[" << i << "]";
      a[i] = b.alloc(band_bytes, an.str());
      bb[i] = b.alloc(band_bytes, bn.str());
    }

    const unsigned iters = 5;
    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    for (unsigned it = 0; it < iters; ++it) {
      const auto& src = (it % 2 == 0) ? a : bb;
      const auto& dst = (it % 2 == 0) ? bb : a;
      for (unsigned i = 0; i < bands; ++i) {
        core::TaskProgram prog;
        // Stencil: stream the source band while producing the destination.
        prog.add_group({b.read(src[i]), b.write(dst[i])});
        std::ostringstream nm;
        nm << "jacobi(" << it << "," << i << ")";
        rt.create_task(nm.str(),
                       {{src[i].dep, DepUse::In}, {dst[i].dep, DepUse::Out}},
                       std::move(prog));
        dep_bytes_total += src[i].range.size() + dst[i].range.size();
        ++tasks;
      }
      if (it + 1 < iters) rt.taskwait();
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = iters;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_jacobi(const WorkloadParams& p) {
  return std::make_unique<JacobiWorkload>(p);
}

}  // namespace tdn::workloads
