// Cholesky — the paper's running example (Fig. 2): tiled right-looking
// Cholesky factorization of a symmetric positive-definite matrix.
//
//   potrf(k):     inout A[k][k]
//   trsm(i,k):    in A[k][k],  inout A[i][k]          (i > k)
//   syrk(i,k):    in A[i][k],  inout A[i][i]
//   gemm(i,j,k):  in A[i][k], in A[j][k], inout A[i][j]   (k < j < i)
//
// Not part of the paper's evaluation suite; used by the examples and the
// integration tests as a structurally rich TDG.
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class CholeskyWorkload final : public Workload {
 public:
  explicit CholeskyWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "cholesky"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    const unsigned T = 10;
    const Addr tile_bytes = scaled_bytes(32.0 * kKiB, params_.scale);
    // Lower triangle only.
    std::vector<std::vector<Builder::Region>> tiles(T);
    for (unsigned i = 0; i < T; ++i) {
      for (unsigned j = 0; j <= i; ++j) {
        std::ostringstream nm;
        nm << "A[" << i << "][" << j << "]";
        tiles[i].push_back(b.alloc(tile_bytes, nm.str()));
      }
    }

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    for (unsigned k = 0; k < T; ++k) {
      {
        core::TaskProgram prog;
        prog.add_group(b.rmw(tiles[k][k]));
        std::ostringstream nm;
        nm << "potrf(" << k << ")";
        rt.create_task(nm.str(), {{tiles[k][k].dep, DepUse::InOut}},
                       std::move(prog));
        dep_bytes_total += tile_bytes;
        ++tasks;
      }
      for (unsigned i = k + 1; i < T; ++i) {
        core::TaskProgram prog;
        prog.add_phase(b.read(tiles[k][k]));
        prog.add_group(b.rmw(tiles[i][k]));
        std::ostringstream nm;
        nm << "trsm(" << i << "," << k << ")";
        rt.create_task(nm.str(),
                       {{tiles[k][k].dep, DepUse::In},
                        {tiles[i][k].dep, DepUse::InOut}},
                       std::move(prog));
        dep_bytes_total += 2 * tile_bytes;
        ++tasks;
      }
      for (unsigned i = k + 1; i < T; ++i) {
        {
          core::TaskProgram prog;
          prog.add_phase(b.read(tiles[i][k]));
          prog.add_group(b.rmw(tiles[i][i]));
          std::ostringstream nm;
          nm << "syrk(" << i << "," << k << ")";
          rt.create_task(nm.str(),
                         {{tiles[i][k].dep, DepUse::In},
                          {tiles[i][i].dep, DepUse::InOut}},
                         std::move(prog));
          dep_bytes_total += 2 * tile_bytes;
          ++tasks;
        }
        for (unsigned j = k + 1; j < i; ++j) {
          core::TaskProgram prog;
          prog.add_group({b.read(tiles[i][k]), b.read(tiles[j][k])});
          prog.add_group(b.rmw(tiles[i][j]));
          std::ostringstream nm;
          nm << "gemm(" << i << "," << j << "," << k << ")";
          rt.create_task(nm.str(),
                         {{tiles[i][k].dep, DepUse::In},
                          {tiles[j][k].dep, DepUse::In},
                          {tiles[i][j].dep, DepUse::InOut}},
                         std::move(prog));
          dep_bytes_total += 3 * tile_bytes;
          ++tasks;
        }
      }
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_cholesky(const WorkloadParams& p) {
  return std::make_unique<CholeskyWorkload>(p);
}

}  // namespace tdn::workloads
