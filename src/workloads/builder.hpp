// Shared helpers for workload construction: dependency-region allocation and
// access-program phrase building.
#pragma once

#include <string>
#include <vector>

#include "core/access_stream.hpp"
#include "mem/address_space.hpp"
#include "runtime/runtime_system.hpp"
#include "workloads/workload.hpp"

namespace tdn::workloads {

class Builder {
 public:
  explicit Builder(BuildContext ctx, Cycle compute)
      : ctx_(ctx), compute_(compute) {}

  runtime::RuntimeSystem& rt() { return ctx_.rt; }

  /// Allocate a named, line-aligned region and register it as a dependency.
  struct Region {
    DepId dep;
    AddrRange range;
  };
  Region alloc(Addr bytes, const std::string& name) {
    const AddrRange r = ctx_.vspace.allocate(bytes, 64, name);
    return Region{rt().region(r, name), r};
  }
  /// Allocate a region that is *not* declared as a dependency (runtime
  /// metadata, lookup tables) — under TD-NUCA such data is untracked and
  /// falls back to S-NUCA interleaving.
  AddrRange alloc_untracked(Addr bytes, const std::string& name) {
    return ctx_.vspace.allocate(bytes, 64, name);
  }

  // --- access-program phrases -----------------------------------------
  core::AccessPhase read(const Region& r, unsigned passes = 1,
                         unsigned mlp = 0) const {
    auto p = phase(r.range, AccessKind::Read, passes);
    p.mlp = mlp;
    return p;
  }
  core::AccessPhase write(const Region& r, unsigned passes = 1) const {
    return phase(r.range, AccessKind::Write, passes);
  }
  /// Read-modify-write: interleaved read+write of each line, as an in-place
  /// kernel does. Returns a phase group.
  std::vector<core::AccessPhase> rmw(const Region& r) const {
    return {phase(r.range, AccessKind::Read, 1),
            phase(r.range, AccessKind::Write, 1)};
  }
  core::AccessPhase sample(const AddrRange& range, std::uint64_t touches,
                           std::uint64_t seed) const {
    core::AccessPhase p;
    p.range = range;
    p.kind = AccessKind::Read;
    p.order = core::AccessPhase::Order::RandomSample;
    p.touches = touches;
    p.seed = seed;
    p.compute_per_touch = compute_;
    return p;
  }

  core::AccessPhase phase(const AddrRange& range, AccessKind kind,
                          unsigned passes) const {
    core::AccessPhase p;
    p.range = range;
    p.kind = kind;
    p.passes = passes;
    p.compute_per_touch = compute_;
    return p;
  }

 private:
  BuildContext ctx_;
  Cycle compute_;
};

/// Round a scaled byte count to whole 64B lines (at least one line).
inline Addr scaled_bytes(double base, double scale) {
  const Addr b = static_cast<Addr>(base * scale);
  return b < 64 ? 64 : align_down(b, 64);
}

}  // namespace tdn::workloads
