// Randtouch — TLB-hostile irregular pointer-chasing surrogate (not part of
// the paper suite; built for the tdn::vm huge-page ablation,
// docs/memory.md).
//
// A pool of multi-page buffers is first-touch initialized with a one-line-
// per-4K-page strided write (every base page is allocated, no intra-page
// locality), then two waves of gather tasks sample random lines across
// whole buffers:
//   * wave 1 reads each buffer once (in) — under TD-NUCA the region is
//     registered, read and flushed;
//   * wave 2 reads each buffer *and* its neighbour — the re-registration
//     re-translates every page, and the shared re-read exercises the
//     replicated placement.
// With 4K pages the working set spans far more pages than the L1 TLB holds,
// so nearly every touch misses and the walk/translation path dominates;
// with 2M pages the same footprint collapses to a handful of TLB entries
// and one RRT piece per buffer.
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class RandtouchWorkload final : public Workload {
 public:
  explicit RandtouchWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "randtouch"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    // 2 MiB per buffer at scale 1 — one huge page under ThpPolicy::Always,
    // 512 base pages otherwise. The pool dwarfs a 64-entry 4K TLB at any
    // scale >= 0.125.
    const unsigned bufs_n = 32;
    const Addr buf_bytes = scaled_bytes(2.0 * kMiB, params_.scale);
    const Addr page_lines = 4 * kKiB / 64;
    std::vector<Builder::Region> bufs(bufs_n);
    for (unsigned i = 0; i < bufs_n; ++i) {
      std::ostringstream nm;
      nm << "pool[" << i << "]";
      bufs[i] = b.alloc(buf_bytes, nm.str());
    }

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    const std::uint64_t touches =
        std::max<std::uint64_t>(buf_bytes / (4 * kKiB) * 2, 16);

    // Init: touch one line in every 4K page (first-touch allocation with no
    // spatial reuse).
    for (unsigned i = 0; i < bufs_n; ++i) {
      core::TaskProgram prog;
      core::AccessPhase p = b.phase(bufs[i].range, AccessKind::Write, 1);
      p.stride_lines = static_cast<unsigned>(page_lines);
      prog.add_phase(p);
      std::ostringstream nm;
      nm << "scatter(" << i << ")";
      rt.create_task(nm.str(), {{bufs[i].dep, DepUse::Out}}, std::move(prog));
      dep_bytes_total += bufs[i].range.size();
      ++tasks;
    }
    // Wave 1: random gather over each buffer.
    for (unsigned i = 0; i < bufs_n; ++i) {
      core::TaskProgram prog;
      prog.add_phase(b.sample(bufs[i].range, touches, params_.seed + i));
      std::ostringstream nm;
      nm << "gather(" << i << ")";
      rt.create_task(nm.str(), {{bufs[i].dep, DepUse::In}}, std::move(prog));
      dep_bytes_total += bufs[i].range.size();
      ++tasks;
    }
    // Wave 2: re-gather each buffer plus its neighbour (shared re-read).
    for (unsigned i = 0; i < bufs_n; ++i) {
      const unsigned j = (i + 1) % bufs_n;
      core::TaskProgram prog;
      prog.add_group(
          {b.sample(bufs[i].range, touches, params_.seed + 1000 + i),
           b.sample(bufs[j].range, touches, params_.seed + 2000 + i)});
      std::ostringstream nm;
      nm << "regather(" << i << ")";
      rt.create_task(nm.str(),
                     {{bufs[i].dep, DepUse::In}, {bufs[j].dep, DepUse::In}},
                     std::move(prog));
      dep_bytes_total += bufs[i].range.size() + bufs[j].range.size();
      ++tasks;
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 3;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_randtouch(const WorkloadParams& p) {
  return std::make_unique<RandtouchWorkload>(p);
}

}  // namespace tdn::workloads
