// Concrete workload declarations. See each .cpp for the kernel's dependency
// structure and how it maps to the paper's Table II entry.
#pragma once

#include "workloads/workload.hpp"

namespace tdn::workloads {

std::unique_ptr<Workload> make_gauss(const WorkloadParams&);
std::unique_ptr<Workload> make_histo(const WorkloadParams&);
std::unique_ptr<Workload> make_jacobi(const WorkloadParams&);
std::unique_ptr<Workload> make_kmeans(const WorkloadParams&);
std::unique_ptr<Workload> make_knn(const WorkloadParams&);
std::unique_ptr<Workload> make_lu(const WorkloadParams&);
std::unique_ptr<Workload> make_md5(const WorkloadParams&);
std::unique_ptr<Workload> make_redblack(const WorkloadParams&);
std::unique_ptr<Workload> make_cholesky(const WorkloadParams&);
std::unique_ptr<Workload> make_randtouch(const WorkloadParams&);

}  // namespace tdn::workloads
