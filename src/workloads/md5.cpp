// MD5 — independent hashing of fixed-size buffers (paper Table II:
// 128 x 4 MB buffers; scaled to 32 x 256 KiB). One task per buffer: the
// buffer is read exactly once (in) and a small digest is written (out).
//
// Every buffer predicts not-reused and bypasses the LLC, giving the paper's
// extreme 0.14x LLC-access ratio (Fig. 9) — but the kernel is compute-heavy
// (high per-line compute cost here), so the speedup is a moderate 1.04x
// (Fig. 8): exactly the shape this workload is meant to reproduce.
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class Md5Workload final : public Workload {
 public:
  explicit Md5Workload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "md5"; }

  void build(BuildContext ctx) override {
    // Hashing does many rounds of ALU work per 64B block: MD5 is strongly
    // compute-bound, which caps the achievable speedup near the paper's
    // 1.04x despite the huge LLC-access reduction.
    Builder b(ctx, params_.compute * 25);
    auto& rt = b.rt();

    const unsigned buffers = 32;
    const Addr buf_bytes = scaled_bytes(384.0 * kKiB, params_.scale);
    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    for (unsigned i = 0; i < buffers; ++i) {
      std::ostringstream bn, dn;
      bn << "buf[" << i << "]";
      dn << "digest[" << i << "]";
      const auto buf = b.alloc(buf_bytes, bn.str());
      const auto digest = b.alloc(256, dn.str());
      core::TaskProgram prog;
      prog.add_phase(b.read(buf));
      prog.add_phase(b.write(digest));
      std::ostringstream nm;
      nm << "md5(" << i << ")";
      rt.create_task(nm.str(),
                     {{buf.dep, DepUse::In}, {digest.dep, DepUse::Out}},
                     std::move(prog));
      dep_bytes_total += buf.range.size() + digest.range.size();
      ++tasks;
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_md5(const WorkloadParams& p) {
  return std::make_unique<Md5Workload>(p);
}

}  // namespace tdn::workloads
