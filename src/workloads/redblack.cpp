// Redblack — red/black Gauss-Seidel with split colour arrays (paper
// Table II: 5 iterations). Each iteration runs a red half-sweep (update red
// bands reading black) and a black half-sweep (update black reading red),
// with a taskwait between half-sweeps.
//
// Within a half-sweep phase no future user of any band is visible: reads of
// the opposite colour and the in-place update of the own colour both predict
// not-reused, so virtually the whole working set bypasses the LLC — the
// paper's ">97% NotReused" profile, and the largest LLC-access reduction
// after MD5 (Fig. 9).
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class RedblackWorkload final : public Workload {
 public:
  explicit RedblackWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "redblack"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute);
    auto& rt = b.rt();

    const unsigned bands = 64;
    const Addr band_bytes = scaled_bytes(56.0 * kKiB, params_.scale);
    std::vector<Builder::Region> red(bands), black(bands);
    for (unsigned i = 0; i < bands; ++i) {
      std::ostringstream rn, bn;
      rn << "red[" << i << "]";
      bn << "black[" << i << "]";
      red[i] = b.alloc(band_bytes, rn.str());
      black[i] = b.alloc(band_bytes, bn.str());
    }

    const unsigned iters = 5;
    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    std::size_t phases = 0;
    for (unsigned it = 0; it < iters; ++it) {
      for (unsigned colour = 0; colour < 2; ++colour) {
        const auto& upd = colour == 0 ? red : black;
        const auto& other = colour == 0 ? black : red;
        for (unsigned i = 0; i < bands; ++i) {
          core::TaskProgram prog;
          prog.add_group({b.read(other[i]), b.phase(upd[i].range,
                                                    AccessKind::Read, 1),
                          b.write(upd[i])});
          std::ostringstream nm;
          nm << "rb(" << it << (colour == 0 ? ",red," : ",black,") << i << ")";
          rt.create_task(
              nm.str(),
              {{other[i].dep, DepUse::In}, {upd[i].dep, DepUse::InOut}},
              std::move(prog));
          dep_bytes_total += other[i].range.size() + upd[i].range.size();
          ++tasks;
        }
        ++phases;
        if (!(it + 1 == iters && colour == 1)) rt.taskwait();
      }
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = phases;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_redblack(const WorkloadParams& p) {
  return std::make_unique<RedblackWorkload>(p);
}

}  // namespace tdn::workloads
