#include "workloads/workload.hpp"

#include "common/require.hpp"
#include "system/tiled_system.hpp"
#include "workloads/workloads.hpp"

namespace tdn::workloads {

void Workload::build(system::TiledSystem& sys) {
  build(BuildContext{sys.vspace(), sys.runtime()});
}

const std::vector<std::string>& paper_workload_names() {
  static const std::vector<std::string> names = {
      "gauss", "histo", "jacobi", "kmeans", "knn", "lu", "md5", "redblack"};
  return names;
}

bool is_valid_workload(std::string_view name) {
  if (name == "cholesky" || name == "randtouch") return true;
  for (const std::string& n : paper_workload_names()) {
    if (name == n) return true;
  }
  return false;
}

std::string valid_workload_names() {
  std::string out;
  for (const std::string& n : paper_workload_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  out += ", cholesky, randtouch";
  return out;
}

std::unique_ptr<Workload> make_workload(std::string_view name,
                                        const WorkloadParams& params) {
  if (name == "gauss") return make_gauss(params);
  if (name == "histo") return make_histo(params);
  if (name == "jacobi") return make_jacobi(params);
  if (name == "kmeans") return make_kmeans(params);
  if (name == "knn") return make_knn(params);
  if (name == "lu") return make_lu(params);
  if (name == "md5") return make_md5(params);
  if (name == "redblack") return make_redblack(params);
  if (name == "cholesky") return make_cholesky(params);
  if (name == "randtouch") return make_randtouch(params);
  TDN_REQUIRE(false, "unknown workload: '" + std::string(name) +
                         "' (valid: " + valid_workload_names() + ")");
  return nullptr;
}

}  // namespace tdn::workloads
