// Workload framework — the paper's eight task dataflow benchmarks (Table II)
// re-implemented as task-graph generators: each workload allocates its data
// regions in the system's virtual space, declares tasks with
// in/out/inout dependencies, and attaches a line-granular access program
// describing the kernel's memory behaviour.
//
// Footprints are scaled to preserve the paper's governing ratios against the
// scaled 2 MiB LLC (DESIGN.md Sec. 6): every input set exceeds the LLC by
// the same order the paper's inputs exceed its 32 MB LLC.
//
// Layouts are tile-major (each dependency block contiguous in virtual
// memory), as task-based linear algebra and stencil codes use in practice —
// and as OmpSs array-section dependencies require.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "system/tiled_system.hpp"

namespace tdn::workloads {

struct WorkloadParams {
  /// Footprint multiplier (1.0 = the DESIGN.md default sizes).
  double scale = 1.0;
  /// Arithmetic intensity baseline: compute cycles charged per line touch.
  Cycle compute = 4;
  std::uint64_t seed = 7;
};

struct WorkloadStats {
  Addr input_bytes = 0;        ///< total data footprint (Table II col. 3)
  std::size_t num_tasks = 0;   ///< Table II col. 4
  Addr avg_task_bytes = 0;     ///< mean per-task dependency footprint
  std::size_t num_phases = 1;  ///< taskwait-delimited phases
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual const char* name() const = 0;
  /// Allocate regions and create the task graph in @p sys.
  virtual void build(system::TiledSystem& sys) = 0;
  /// Valid after build().
  const WorkloadStats& stats() const noexcept { return stats_; }

 protected:
  WorkloadStats stats_;
};

/// The paper's benchmarks in Table II order.
const std::vector<std::string>& paper_workload_names();

/// Factory; also accepts "cholesky" (the Fig. 2 running example).
/// Throws RequireError for unknown names.
std::unique_ptr<Workload> make_workload(std::string_view name,
                                        const WorkloadParams& params = {});

}  // namespace tdn::workloads
