// Workload framework — the paper's eight task dataflow benchmarks (Table II)
// re-implemented as task-graph generators: each workload allocates its data
// regions in the system's virtual space, declares tasks with
// in/out/inout dependencies, and attaches a line-granular access program
// describing the kernel's memory behaviour.
//
// Footprints are scaled to preserve the paper's governing ratios against the
// scaled 2 MiB LLC (DESIGN.md Sec. 6): every input set exceeds the LLC by
// the same order the paper's inputs exceed its 32 MB LLC.
//
// Layouts are tile-major (each dependency block contiguous in virtual
// memory), as task-based linear algebra and stencil codes use in practice —
// and as OmpSs array-section dependencies require.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tdn::mem {
class VirtualSpace;
}
namespace tdn::runtime {
class RuntimeSystem;
}
namespace tdn::system {
class TiledSystem;
}

namespace tdn::workloads {

struct WorkloadParams {
  /// Footprint multiplier (1.0 = the DESIGN.md default sizes).
  double scale = 1.0;
  /// Arithmetic intensity baseline: compute cycles charged per line touch.
  Cycle compute = 4;
  std::uint64_t seed = 7;
};

struct WorkloadStats {
  Addr input_bytes = 0;        ///< total data footprint (Table II col. 3)
  std::size_t num_tasks = 0;   ///< Table II col. 4
  Addr avg_task_bytes = 0;     ///< mean per-task dependency footprint
  std::size_t num_phases = 1;  ///< taskwait-delimited phases
};

/// Everything a workload's build() needs: a virtual address space to
/// allocate dependency regions in and a runtime to create tasks in.
/// Decoupled from TiledSystem so multiprogram mixes (tdn::multi) can build
/// each app into its own runtime and offset address space while sharing one
/// machine substrate.
struct BuildContext {
  mem::VirtualSpace& vspace;
  runtime::RuntimeSystem& rt;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual const char* name() const = 0;
  /// Allocate regions and create the task graph via @p ctx.
  virtual void build(BuildContext ctx) = 0;
  /// Single-app convenience: build into @p sys's own space and runtime.
  void build(system::TiledSystem& sys);
  /// Valid after build().
  const WorkloadStats& stats() const noexcept { return stats_; }

 protected:
  WorkloadStats stats_;
};

/// The paper's benchmarks in Table II order.
const std::vector<std::string>& paper_workload_names();

/// Every name make_workload() accepts: the paper suite plus "cholesky" (the
/// Fig. 2 running example). For validation and error messages.
bool is_valid_workload(std::string_view name);
std::string valid_workload_names();  ///< comma-separated, for diagnostics

/// Factory. Throws RequireError listing the valid names for unknown ones —
/// a mix typo must fail loudly, not yield a wrong-but-plausible figure.
std::unique_ptr<Workload> make_workload(std::string_view name,
                                        const WorkloadParams& params = {});

}  // namespace tdn::workloads
