// LU — tiled right-looking LU factorization without pivoting (paper
// Table II), tile-major layout, all tasks created up front (a single
// dataflow phase — factorizations have no iteration barrier).
//
// Dependency structure per step k:
//   getrf(k):      inout A[k][k]
//   trsm_row(k,j): in A[k][k], inout A[k][j]          (j > k)
//   trsm_col(i,k): in A[k][k], inout A[i][k]          (i > k)
//   gemm(i,j,k):   in A[i][k], in A[k][j], inout A[i][j]
//
// Panel tiles A[i][k] / A[k][j] are read by O(T) gemm tasks each — heavy
// visible reuse, so TD-NUCA cluster-replicates them and LU shows the suite's
// largest speedup (1.59x in the paper) while being the one benchmark whose
// LLC dynamic energy *rises* under TD-NUCA (replication fills, Fig. 13).
// R-NUCA classifies the panels as shared (touched by many cores) and cannot
// replicate them once written.
#include "workloads/workloads.hpp"

#include <sstream>

#include "workloads/builder.hpp"

namespace tdn::workloads {
namespace {

class LuWorkload final : public Workload {
 public:
  explicit LuWorkload(const WorkloadParams& p) : params_(p) {}
  const char* name() const override { return "lu"; }

  void build(BuildContext ctx) override {
    Builder b(ctx, params_.compute / 2 + 1);
    auto& rt = b.rt();

    // 10x10 tiles of 24 KiB. Two panels plus the destination tile exceed
    // the L1, so the blocked microkernel's panel re-reads (passes below)
    // miss the L1 and stream from the LLC — the dominant access class, as
    // in the real kernel. That is what gives LU its near-100% LLC hit
    // ratio under every policy (paper Fig. 10) and makes NUCA *distance*
    // the deciding factor (paper Sec. V-A: 1.59x).
    const unsigned T = 10;
    const Addr tile_bytes = scaled_bytes(24.0 * kKiB, params_.scale);
    std::vector<Builder::Region> tiles(static_cast<std::size_t>(T) * T);
    for (unsigned i = 0; i < T; ++i) {
      for (unsigned j = 0; j < T; ++j) {
        std::ostringstream nm;
        nm << "A[" << i << "][" << j << "]";
        tiles[i * T + j] = b.alloc(tile_bytes, nm.str());
      }
    }
    auto tile = [&](unsigned i, unsigned j) -> Builder::Region& {
      return tiles[i * T + j];
    };

    Addr dep_bytes_total = 0;
    std::size_t tasks = 0;
    auto create = [&](const std::string& label,
                      std::vector<runtime::DepAccess> deps,
                      core::TaskProgram prog, Addr bytes) {
      rt.create_task(label, std::move(deps), std::move(prog));
      dep_bytes_total += bytes;
      ++tasks;
    };

    for (unsigned k = 0; k < T; ++k) {
      {  // getrf(k)
        core::TaskProgram prog;
        prog.add_group(b.rmw(tile(k, k)));
        std::ostringstream nm;
        nm << "getrf(" << k << ")";
        create(nm.str(), {{tile(k, k).dep, DepUse::InOut}}, std::move(prog),
               tile_bytes);
      }
      for (unsigned j = k + 1; j < T; ++j) {  // trsm on row k
        core::TaskProgram prog;
        prog.add_phase(b.read(tile(k, k)));
        prog.add_group(b.rmw(tile(k, j)));
        std::ostringstream nm;
        nm << "trsm_r(" << k << "," << j << ")";
        create(nm.str(),
               {{tile(k, k).dep, DepUse::In}, {tile(k, j).dep, DepUse::InOut}},
               std::move(prog), 2 * tile_bytes);
      }
      for (unsigned i = k + 1; i < T; ++i) {  // trsm on column k
        core::TaskProgram prog;
        prog.add_phase(b.read(tile(k, k)));
        prog.add_group(b.rmw(tile(i, k)));
        std::ostringstream nm;
        nm << "trsm_c(" << i << "," << k << ")";
        create(nm.str(),
               {{tile(k, k).dep, DepUse::In}, {tile(i, k).dep, DepUse::InOut}},
               std::move(prog), 2 * tile_bytes);
      }
      for (unsigned i = k + 1; i < T; ++i) {  // trailing update
        for (unsigned j = k + 1; j < T; ++j) {
          core::TaskProgram prog;
          // Inner-blocked GEMM re-reads the panels (their reuse in the L1 is
          // partial since two panels plus the tile exceed it): panel reads
          // dominate the task's miss stream, as in the real kernel. The
          // first sweep is a prefetchable stream (high MLP); the re-reads
          // feed multiply-accumulate chains with dependent addresses (low
          // MLP), exposing the LLC access latency — and hence NUCA
          // distance — on them.
          prog.add_group({b.read(tile(i, k), /*passes=*/1, /*mlp=*/8),
                          b.read(tile(k, j), /*passes=*/1, /*mlp=*/8)});
          prog.add_group({b.read(tile(i, k), /*passes=*/18, /*mlp=*/2),
                          b.read(tile(k, j), /*passes=*/18, /*mlp=*/2)});
          prog.add_group(b.rmw(tile(i, j)));
          std::ostringstream nm;
          nm << "gemm(" << i << "," << j << "," << k << ")";
          create(nm.str(),
                 {{tile(i, k).dep, DepUse::In},
                  {tile(k, j).dep, DepUse::In},
                  {tile(i, j).dep, DepUse::InOut}},
                 std::move(prog), 3 * tile_bytes);
        }
      }
    }

    stats_.input_bytes = ctx.vspace.footprint();
    stats_.num_tasks = tasks;
    stats_.avg_task_bytes = dep_bytes_total / tasks;
    stats_.num_phases = 1;
  }

 private:
  WorkloadParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_lu(const WorkloadParams& p) {
  return std::make_unique<LuWorkload>(p);
}

}  // namespace tdn::workloads
