#include "core/sim_core.hpp"

#include "common/require.hpp"

namespace tdn::core {

SimCore::SimCore(CoreId id, sim::EventQueue& eq,
                 coherence::CoherentSystem& caches, mem::PageTable& pt,
                 CoreConfig cfg, mem::TlbConfig tlb_cfg, vm::VmConfig vm_cfg)
    : id_(id), eq_(eq), caches_(caches), pt_(pt), cfg_(cfg),
      mmu_(id, eq, &caches, pt, tlb_cfg, vm_cfg) {}

void SimCore::execute(const TaskProgram& prog, std::function<void()> done) {
  TDN_REQUIRE(!running_, "core is already executing");
  running_ = true;
  prog_ = &prog;
  stream_ = std::make_unique<AccessStream>(prog, caches_.config().l1.line_size);
  done_ = std::move(done);
  stream_exhausted_ = false;
  stalled_on_store_buffer_ = false;
  task_start_ = eq_.now();
  task_ideal_ = 0;
  step();
}

void SimCore::busy(Cycle cycles, std::function<void()> done) {
  TDN_REQUIRE(!running_, "core is already executing");
  busy_cycles_ += cycles;
  eq_.schedule_in(cycles, std::move(done));
}

void SimCore::step() {
  AccessOp op;
  if (!stream_->next(op)) {
    stream_exhausted_ = true;
    finish_if_drained();
    return;
  }
  // Translation: synchronous in legacy mode (flat TLB); on a vm-mode TLB
  // miss the continuation fires when the page walk's PTE loads return from
  // the hierarchy — the core is stalled on translation until then.
  mmu_.translate(op.vaddr, [this, op](Cycle tlb_lat, Addr paddr) {
    const Cycle issue_at = eq_.now() + op.compute + tlb_lat;
    // Ideal-timeline accounting (obs critical path): the cycles this op
    // costs with every access an L1 hit. Pure arithmetic — never feeds back
    // into the simulated timing.
    task_ideal_ += op.compute + tlb_lat +
                   (op.kind == AccessKind::Read ? cfg_.load_issue_cost
                                                : cfg_.store_issue_cost);

    if (op.kind == AccessKind::Read) {
      loads_.inc();
      eq_.schedule_at(issue_at, [this, op, paddr] {
        const unsigned window = op.mlp != 0 ? op.mlp : cfg_.load_window;
        if (loads_in_flight_ >= window) {
          // Load window full: stall until an outstanding load returns.
          lw_stalls_.inc();
          stalled_on_load_window_ = true;
          resume_load_ = [this, op, paddr] { issue_load(op, paddr); };
          return;
        }
        issue_load(op, paddr);
      });
      return;
    }

    stores_.inc();
    eq_.schedule_at(issue_at, [this, op, paddr] {
      if (stores_in_flight_ >= cfg_.store_buffer_entries) {
        // Store buffer full: stall until a slot frees (resume handled by the
        // completion callback of an outstanding store).
        sb_stalls_.inc();
        stalled_on_store_buffer_ = true;
        // Re-issue this store when unstalled: wrap the op in a resume
        // closure.
        resume_store_ = [this, op, paddr] { issue_store(op, paddr); };
        return;
      }
      issue_store(op, paddr);
    });
  });
}

void SimCore::issue_load(const AccessOp& op, Addr paddr) {
  ++loads_in_flight_;
  caches_.access(id_, op.vaddr, paddr, AccessKind::Read, [this](Cycle) {
    TDN_ASSERT(loads_in_flight_ > 0);
    --loads_in_flight_;
    if (stalled_on_load_window_) {
      stalled_on_load_window_ = false;
      auto resume = std::move(resume_load_);
      resume_load_ = nullptr;
      eq_.schedule_in(0, std::move(resume));
    } else {
      finish_if_drained();
    }
  });
  // Overlapped loads: the core keeps issuing after the issue cost; data
  // dependencies are approximated by the window bound.
  eq_.schedule_in(cfg_.load_issue_cost, [this] { step(); });
}

void SimCore::issue_store(const AccessOp& op, Addr paddr) {
  ++stores_in_flight_;
  caches_.access(id_, op.vaddr, paddr, AccessKind::Write, [this](Cycle) {
    TDN_ASSERT(stores_in_flight_ > 0);
    --stores_in_flight_;
    if (stalled_on_store_buffer_) {
      stalled_on_store_buffer_ = false;
      auto resume = std::move(resume_store_);
      resume_store_ = nullptr;
      eq_.schedule_in(0, std::move(resume));
    } else {
      finish_if_drained();
    }
  });
  // The core moves on after the issue cost; the store drains asynchronously.
  eq_.schedule_in(cfg_.store_issue_cost, [this] { step(); });
}

void SimCore::finish_if_drained() {
  if (!running_ || !stream_exhausted_ || stores_in_flight_ != 0 ||
      loads_in_flight_ != 0)
    return;
  running_ = false;
  task_cycles_ += eq_.now() - task_start_;
  stream_.reset();
  prog_ = nullptr;
  auto done = std::move(done_);
  done_ = nullptr;
  done();
}

}  // namespace tdn::core
