// Task access programs.
//
// The simulator is trace-driven at cache-line granularity: a task's memory
// behaviour is described as a program of access phases over its dependency
// regions (stream a region, stride over it, sample it randomly), and the
// timing core executes that program against the cache hierarchy. Line
// granularity is the standard trace reduction — the L1 filters intra-line
// locality anyway — and keeps full-benchmark runs in the millisecond range
// (DESIGN.md Sec. 2, core substitution).
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace tdn::core {

/// One homogeneous sweep over a region.
struct AccessPhase {
  AddrRange range;  ///< virtual address range (typically a dependency)
  AccessKind kind = AccessKind::Read;
  enum class Order : std::uint8_t {
    Sequential,    ///< lines in ascending order, `stride_lines` apart
    RandomSample,  ///< `touches` uniform random lines from the range
  };
  Order order = Order::Sequential;
  unsigned passes = 1;         ///< how many times the sweep repeats
  unsigned stride_lines = 1;   ///< Sequential: step in lines
  std::uint64_t touches = 0;   ///< RandomSample: number of line touches
  Cycle compute_per_touch = 4; ///< arithmetic cycles charged before the access
  std::uint64_t seed = 1;      ///< RandomSample PRNG seed
  /// Memory-level parallelism of this phase: how many of its loads may be
  /// outstanding at once (0 = the core's default window). Pure streams
  /// prefetch well (high MLP, miss latency overlapped); compute-coupled
  /// re-reads have dependent addresses (low MLP) and expose the cache's
  /// access latency — which is where NUCA distance matters.
  unsigned mlp = 0;
};

/// Phases in one group execute interleaved round-robin (one touch each in
/// turn) — this models kernels that read inputs and write outputs in the
/// same loop iteration. Groups execute in order.
struct TaskProgram {
  std::vector<std::vector<AccessPhase>> groups;

  void add_phase(AccessPhase p) { groups.push_back({std::move(p)}); }
  void add_group(std::vector<AccessPhase> g) { groups.push_back(std::move(g)); }
  bool empty() const noexcept { return groups.empty(); }

  /// Total line touches the program will generate (for workload tables).
  std::uint64_t total_touches(unsigned line_size = 64) const;
};

struct AccessOp {
  Addr vaddr = 0;
  AccessKind kind = AccessKind::Read;
  Cycle compute = 0;
  unsigned mlp = 0;  ///< per-phase load window override (0 = core default)
};

/// Pull-based iterator over a TaskProgram's accesses.
class AccessStream {
 public:
  explicit AccessStream(const TaskProgram& prog, unsigned line_size = 64);

  /// Produce the next access; returns false at end of program.
  bool next(AccessOp& op);

 private:
  struct PhaseCursor {
    const AccessPhase* phase;
    Addr first_line;           // line-aligned start
    std::uint64_t num_lines;   // fully contained lines
    unsigned pass = 0;
    std::uint64_t index = 0;   // line index within pass (or touch count)
    SplitMix64 rng;
    bool done = false;

    explicit PhaseCursor(const AccessPhase& p, unsigned line_size);
    bool produce(AccessOp& op, unsigned line_size);
  };

  const TaskProgram& prog_;
  unsigned line_size_;
  std::size_t group_ = 0;
  std::vector<PhaseCursor> cursors_;  // cursors of the current group
  std::size_t rr_ = 0;                // round-robin position

  void load_group();
};

}  // namespace tdn::core
