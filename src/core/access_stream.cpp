#include "core/access_stream.hpp"

#include "common/require.hpp"

namespace tdn::core {

namespace {
std::uint64_t contained_lines(const AddrRange& r, unsigned line_size) {
  const Addr first = align_up(r.begin, line_size);
  if (first + line_size > r.end) return 0;
  return (align_down(r.end, line_size) - first) / line_size;
}
}  // namespace

std::uint64_t TaskProgram::total_touches(unsigned line_size) const {
  std::uint64_t total = 0;
  for (const auto& group : groups) {
    for (const auto& p : group) {
      if (p.order == AccessPhase::Order::RandomSample) {
        total += p.touches * p.passes;
      } else {
        const std::uint64_t lines = contained_lines(p.range, line_size);
        const std::uint64_t per_pass =
            (lines + p.stride_lines - 1) / (p.stride_lines ? p.stride_lines : 1);
        total += per_pass * p.passes;
      }
    }
  }
  return total;
}

AccessStream::PhaseCursor::PhaseCursor(const AccessPhase& p, unsigned line_size)
    : phase(&p),
      first_line(align_up(p.range.begin, line_size)),
      num_lines(contained_lines(p.range, line_size)),
      rng(p.seed) {
  if (num_lines == 0 || p.passes == 0) done = true;
  if (p.order == AccessPhase::Order::RandomSample && p.touches == 0) done = true;
}

bool AccessStream::PhaseCursor::produce(AccessOp& op, unsigned line_size) {
  if (done) return false;
  const AccessPhase& p = *phase;
  op.kind = p.kind;
  op.compute = p.compute_per_touch;
  op.mlp = p.mlp;
  if (p.order == AccessPhase::Order::RandomSample) {
    op.vaddr = first_line + rng.next_below(num_lines) * line_size;
    if (++index >= p.touches) {
      index = 0;
      if (++pass >= p.passes) done = true;
    }
    return true;
  }
  const std::uint64_t stride = p.stride_lines ? p.stride_lines : 1;
  op.vaddr = first_line + index * line_size;
  index += stride;
  if (index >= num_lines) {
    index = 0;
    if (++pass >= p.passes) done = true;
  }
  return true;
}

AccessStream::AccessStream(const TaskProgram& prog, unsigned line_size)
    : prog_(prog), line_size_(line_size) {
  TDN_REQUIRE(is_pow2(line_size_), "line size must be a power of two");
  load_group();
}

void AccessStream::load_group() {
  cursors_.clear();
  rr_ = 0;
  if (group_ >= prog_.groups.size()) return;
  for (const auto& p : prog_.groups[group_]) cursors_.emplace_back(p, line_size_);
}

bool AccessStream::next(AccessOp& op) {
  while (group_ < prog_.groups.size()) {
    // Round-robin over the live cursors of the current group.
    for (std::size_t tried = 0; tried < cursors_.size(); ++tried) {
      PhaseCursor& c = cursors_[rr_];
      rr_ = (rr_ + 1) % cursors_.size();
      if (c.produce(op, line_size_)) return true;
    }
    ++group_;
    load_group();
  }
  return false;
}

}  // namespace tdn::core
