// In-order timing core.
//
// Executes a TaskProgram against the coherent cache hierarchy: loads block
// the core until the fill returns; stores retire through a small store
// buffer that drains in the background (the core stalls only when the buffer
// is full). Arithmetic is charged as per-touch compute cycles. This exposes
// the same memory-latency sensitivity as the paper's out-of-order cores
// without modelling ILP (DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "coherence/coherent_system.hpp"
#include "common/types.hpp"
#include "core/access_stream.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"
#include "sim/event_queue.hpp"
#include "stats/counters.hpp"
#include "vm/mmu.hpp"

namespace tdn::core {

struct CoreConfig {
  unsigned store_buffer_entries = 8;
  Cycle store_issue_cost = 1;  ///< cycles to slot a store into the buffer
  /// Maximum overlapped outstanding loads. The paper's 4-wide OoO cores with
  /// 128-entry ROBs overlap many stream misses; a load window of 8 gives the
  /// in-order timing core equivalent memory-level parallelism on the
  /// streaming kernels of the suite (set to 1 for fully blocking loads).
  unsigned load_window = 8;
  Cycle load_issue_cost = 1;
};

class SimCore {
 public:
  SimCore(CoreId id, sim::EventQueue& eq, coherence::CoherentSystem& caches,
          mem::PageTable& pt, CoreConfig cfg = {},
          mem::TlbConfig tlb_cfg = {}, vm::VmConfig vm_cfg = {});

  CoreId id() const noexcept { return id_; }

  /// Execute @p prog; @p done fires when every access (including buffered
  /// stores) has completed. The core must be idle.
  void execute(const TaskProgram& prog, std::function<void()> done);

  /// Occupy the core with non-memory work for @p cycles (runtime-system
  /// overhead, TD-NUCA ISA instruction execution). The core must be idle.
  void busy(Cycle cycles, std::function<void()> done);

  /// Reservation — the runtime marks a core taken for the whole task
  /// lifecycle (dispatch overhead + hooks + execution), so the dispatcher
  /// never double-books it between those stages.
  void reserve() {
    TDN_REQUIRE(!reserved_, "core is already reserved");
    reserved_ = true;
  }
  void release() {
    TDN_REQUIRE(reserved_, "core is not reserved");
    reserved_ = false;
  }
  bool idle() const noexcept { return !running_ && !reserved_; }
  /// Translation front-end: legacy flat TLB or the tdn::vm two-level
  /// TLB + page walker, per the VmConfig this core was built with.
  vm::Mmu& mmu() noexcept { return mmu_; }

  // --- statistics ------------------------------------------------------
  std::uint64_t loads() const noexcept { return loads_.value(); }
  std::uint64_t stores() const noexcept { return stores_.value(); }
  Cycle busy_cycles() const noexcept { return busy_cycles_; }
  Cycle task_cycles() const noexcept { return task_cycles_; }
  /// Ideal (stall-free) cycles of the most recently executed program:
  /// per-touch compute + TLB + issue costs, with every memory access an L1
  /// hit. The obs critical-path analysis splits the executed span into this
  /// plus memory stall. Valid after execute()'s done callback fires.
  Cycle task_ideal_cycles() const noexcept { return task_ideal_; }
  std::uint64_t store_buffer_stalls() const noexcept {
    return sb_stalls_.value();
  }
  std::uint64_t load_window_stalls() const noexcept {
    return lw_stalls_.value();
  }

 private:
  void step();
  void issue_load(const AccessOp& op, Addr paddr);
  void issue_store(const AccessOp& op, Addr paddr);
  void finish_if_drained();

  CoreId id_;
  sim::EventQueue& eq_;
  coherence::CoherentSystem& caches_;
  mem::PageTable& pt_;
  CoreConfig cfg_;
  vm::Mmu mmu_;

  // Execution state for the in-flight program.
  bool running_ = false;
  bool reserved_ = false;
  const TaskProgram* prog_ = nullptr;
  std::unique_ptr<AccessStream> stream_;
  std::function<void()> done_;
  unsigned stores_in_flight_ = 0;
  unsigned loads_in_flight_ = 0;
  bool stream_exhausted_ = false;
  bool stalled_on_store_buffer_ = false;
  bool stalled_on_load_window_ = false;
  std::function<void()> resume_store_;
  std::function<void()> resume_load_;
  Cycle task_start_ = 0;
  Cycle task_ideal_ = 0;

  stats::Counter loads_;
  stats::Counter stores_;
  stats::Counter sb_stalls_;
  stats::Counter lw_stalls_;
  Cycle busy_cycles_ = 0;
  Cycle task_cycles_ = 0;
};

}  // namespace tdn::core
