// Regenerates paper Fig. 13: LLC dynamic energy normalized to S-NUCA.
// Expected shape: big savings from bypassing everywhere except LU, where
// cluster replication *increases* LLC energy.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::NormalizedFigure fig;
  fig.metric = "energy.llc_pj";
  fig.invert = false;
  fig.policies = {PolicyKind::RNuca, PolicyKind::TdNuca};
  fig.paper_ref = [](const std::string&) { return std::nullopt; };
  fig.paper_avg = harness::paper::kFig13AvgLlcEnergyTd;
  print_normalized("Fig. 13",
                   "LLC dynamic energy normalized to S-NUCA "
                   "(paper: TD-NUCA avg 0.52, best Jacobi 0.10, LU > 1)",
                   fig, results);
  bench::obs_section(argc, argv);
  return 0;
}
