// Ablation: NoC link bandwidth. With narrow links the mesh congests and
// placement quality acts through queueing (traffic reduction, Fig. 12); with
// wide links only raw hop latency remains. Quantifies how much of TD-NUCA's
// gain is bandwidth-mediated (DESIGN.md decision on link sizing).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  harness::print_figure_header(
      "Ablation", "link bandwidth (workload: lu, speedup of TD-NUCA over "
                  "S-NUCA at the same bandwidth)");
  stats::Table table({"bytes/cycle", "S-NUCA cycles", "TD-NUCA cycles",
                      "speedup"});
  const std::vector<unsigned> bpcs = {8, 16, 32, 64};
  std::vector<harness::RunConfig> cfgs;
  for (const unsigned bpc : bpcs) {
    for (const auto pol : {PolicyKind::SNuca, PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "lu";
      cfg.policy = pol;
      cfg.sys.network.link_bytes_per_cycle = bpc;
      cfgs.push_back(std::move(cfg));
    }
  }
  const auto results = run_all(cfgs);
  for (std::size_t r = 0; r < bpcs.size(); ++r) {
    const double snuca = results[2 * r].get("sim.cycles");
    const double tdnuca = results[2 * r + 1].get("sim.cycles");
    table.add_row({std::to_string(bpcs[r]), stats::Table::num(snuca, 0),
                   stats::Table::num(tdnuca, 0),
                   stats::Table::num(snuca / tdnuca, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
