// Ablation: NoC link bandwidth. With narrow links the mesh congests and
// placement quality acts through queueing (traffic reduction, Fig. 12); with
// wide links only raw hop latency remains. Quantifies how much of TD-NUCA's
// gain is bandwidth-mediated (DESIGN.md decision on link sizing).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  harness::print_figure_header(
      "Ablation", "link bandwidth (workload: lu, speedup of TD-NUCA over "
                  "S-NUCA at the same bandwidth)");
  stats::Table table({"bytes/cycle", "S-NUCA cycles", "TD-NUCA cycles",
                      "speedup"});
  for (const unsigned bpc : {8u, 16u, 32u, 64u}) {
    double cycles[2];
    int i = 0;
    for (const auto pol : {PolicyKind::SNuca, PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "lu";
      cfg.policy = pol;
      cfg.sys.network.link_bytes_per_cycle = bpc;
      cycles[i++] = harness::run_experiment(cfg).get("sim.cycles");
    }
    table.add_row({std::to_string(bpc), stats::Table::num(cycles[0], 0),
                   stats::Table::num(cycles[1], 0),
                   stats::Table::num(cycles[0] / cycles[1], 3)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
