// Regenerates paper Fig. 10: absolute LLC hit ratios (no normalization).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::print_figure_header("Fig. 10", "LLC hit ratio (absolute)");
  stats::Table table({"bench", "S-NUCA", "R-NUCA", "TD-NUCA"});
  double s_sum = 0, r_sum = 0, t_sum = 0;
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const double s =
        harness::find_result(results, wl, PolicyKind::SNuca).get("llc.hit_ratio");
    const double r =
        harness::find_result(results, wl, PolicyKind::RNuca).get("llc.hit_ratio");
    const double t =
        harness::find_result(results, wl, PolicyKind::TdNuca).get("llc.hit_ratio");
    s_sum += s;
    r_sum += r;
    t_sum += t;
    table.add_row({wl, stats::Table::num(s, 3), stats::Table::num(r, 3),
                   stats::Table::num(t, 3)});
  }
  const double n = static_cast<double>(names.size());
  table.add_row({"mean", stats::Table::num(s_sum / n, 3),
                 stats::Table::num(r_sum / n, 3),
                 stats::Table::num(t_sum / n, 3)});
  std::printf("%s", table.to_string().c_str());
  std::printf("paper means: S-NUCA %.2f   R-NUCA %.2f   TD-NUCA %.2f\n",
              harness::paper::kFig10AvgHitS, harness::paper::kFig10AvgHitR,
              harness::paper::kFig10AvgHitTd);
  std::printf("note: TD-NUCA's hit ratio excludes bypassed accesses, which "
              "never touch the LLC.\n");
  bench::obs_section(argc, argv);
  return 0;
}
