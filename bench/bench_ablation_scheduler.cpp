// Ablation: dynamic scheduler policy (FIFO vs predecessor-affinity) under
// each NUCA design. Affinity partially restores the task/core stability that
// OS page classification needs — quantifying how much of R-NUCA's weakness
// is scheduler-induced (paper Sec. II-C), and whether TD-NUCA (which is
// scheduler-agnostic by construction) cares.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  harness::print_figure_header("Ablation", "scheduler policy (cycles)");
  stats::Table table({"bench", "policy", "fifo", "affinity", "affinity/fifo"});
  for (const char* wl : {"kmeans", "lu"}) {
    for (const auto pol :
         {PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca}) {
      double cycles[2];
      for (int s = 0; s < 2; ++s) {
        harness::RunConfig cfg;
        cfg.workload = wl;
        cfg.policy = pol;
        cfg.sys.scheduler = s == 0 ? system::SchedulerKind::Fifo
                                   : system::SchedulerKind::Affinity;
        cycles[s] = harness::run_experiment(cfg).get("sim.cycles");
      }
      table.add_row({wl, system::to_string(pol),
                     stats::Table::num(cycles[0], 0),
                     stats::Table::num(cycles[1], 0),
                     stats::Table::num(cycles[1] / cycles[0], 3)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
