// Ablation: dynamic scheduler policy (FIFO vs predecessor-affinity) under
// each NUCA design. Affinity partially restores the task/core stability that
// OS page classification needs — quantifying how much of R-NUCA's weakness
// is scheduler-induced (paper Sec. II-C), and whether TD-NUCA (which is
// scheduler-agnostic by construction) cares.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  harness::print_figure_header("Ablation", "scheduler policy (cycles)");
  stats::Table table({"bench", "policy", "fifo", "affinity", "affinity/fifo"});
  const std::vector<std::string> wls = {"kmeans", "lu"};
  const std::vector<PolicyKind> pols = {PolicyKind::SNuca, PolicyKind::RNuca,
                                        PolicyKind::TdNuca};
  std::vector<harness::RunConfig> cfgs;
  for (const auto& wl : wls) {
    for (const auto pol : pols) {
      for (int s = 0; s < 2; ++s) {
        harness::RunConfig cfg;
        cfg.workload = wl;
        cfg.policy = pol;
        cfg.sys.scheduler = s == 0 ? system::SchedulerKind::Fifo
                                   : system::SchedulerKind::Affinity;
        cfgs.push_back(std::move(cfg));
      }
    }
  }
  const auto results = run_all(cfgs);
  std::size_t i = 0;
  for (const auto& wl : wls) {
    for (const auto pol : pols) {
      const double fifo = results[i++].get("sim.cycles");
      const double affinity = results[i++].get("sim.cycles");
      table.add_row({wl, system::to_string(pol), stats::Table::num(fifo, 0),
                     stats::Table::num(affinity, 0),
                     stats::Table::num(affinity / fifo, 3)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
