// Regenerates paper Fig. 11: average NUCA distance (hops from requesting
// core to serving LLC bank; bypassed accesses excluded, local bank = 0).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::print_figure_header("Fig. 11", "average NUCA distance (hops)");
  stats::Table table({"bench", "S-NUCA", "R-NUCA", "TD-NUCA"});
  double s_sum = 0, r_sum = 0, t_sum = 0;
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const double s = harness::find_result(results, wl, PolicyKind::SNuca)
                         .get("nuca.mean_distance");
    const double r = harness::find_result(results, wl, PolicyKind::RNuca)
                         .get("nuca.mean_distance");
    const double t = harness::find_result(results, wl, PolicyKind::TdNuca)
                         .get("nuca.mean_distance");
    s_sum += s;
    r_sum += r;
    t_sum += t;
    table.add_row({wl, stats::Table::num(s, 2), stats::Table::num(r, 2),
                   stats::Table::num(t, 2)});
  }
  const double n = static_cast<double>(names.size());
  table.add_row({"mean", stats::Table::num(s_sum / n, 2),
                 stats::Table::num(r_sum / n, 2),
                 stats::Table::num(t_sum / n, 2)});
  std::printf("%s", table.to_string().c_str());
  std::printf("paper means: S-NUCA %.2f (theoretical 2.5)   R-NUCA %.2f   "
              "TD-NUCA %.2f\n",
              harness::paper::kFig11DistS, harness::paper::kFig11DistR,
              harness::paper::kFig11DistTd);
  bench::obs_section(argc, argv);
  return 0;
}
