// Regenerates paper Fig. 12: total NoC data movement (bytes through all
// routers) normalized to S-NUCA.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::NormalizedFigure fig;
  fig.metric = "noc.router_bytes";
  fig.invert = false;
  fig.policies = {PolicyKind::RNuca, PolicyKind::TdNuca};
  fig.paper_ref = [](const std::string&) { return std::nullopt; };
  fig.paper_avg = harness::paper::kFig12AvgTd;
  print_normalized("Fig. 12",
                   "NoC data movement normalized to S-NUCA "
                   "(paper avgs: R-NUCA 0.84, TD-NUCA 0.62)",
                   fig, results);
  bench::obs_section(argc, argv);
  return 0;
}
