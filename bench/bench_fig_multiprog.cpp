// Multiprogram colocation figure: weighted speedup and ANTT of TD-NUCA vs
// S-NUCA / R-NUCA when 2 and 4 independent apps share one machine
// (docs/multiprog.md). Each mix runs twice per policy — Partitioned (row
// bank/core partitions, TD-NUCA clusters confined per app) and Shared
// (free-for-all LLC) — so the table doubles as the partitioning ablation.
//
// Per-app slowdowns come from appK.sim.cycles against a whole-machine alone
// run of the same workload and policy (the standard colocation baseline):
//   WS   = sum_k T_alone_k / T_colo_k          (higher is better, max = N)
//   ANTT = mean_k T_colo_k / T_alone_k         (lower is better, min = 1)
//
//   --smoke    one 2-app mix under TD-NUCA: verify both apps complete, the
//              per-app LLC counters sum to the machine totals, and WS is
//              finite. Exit status reports the outcome (CI multiprog step).
#include "bench_common.hpp"
#include "multi/mix.hpp"

namespace {

using namespace bench;
using multi::PartitionMode;

const std::vector<std::string> kMixes = {
    "gauss+histo", "jacobi+kmeans", "lu+md5",
    "gauss+histo+jacobi+kmeans"};

harness::RunConfig mix_cfg(const std::string& mix, PolicyKind pol,
                           PartitionMode mode) {
  harness::RunConfig cfg;
  cfg.workload = mix;
  cfg.policy = pol;
  cfg.multi.mode = mode;
  return cfg;
}

harness::RunConfig alone_cfg(const std::string& wl, PolicyKind pol) {
  harness::RunConfig cfg;
  cfg.workload = wl;
  cfg.policy = pol;
  return cfg;
}

struct Score {
  double ws = 0.0;
  double antt = 0.0;
};

/// WS/ANTT for one colocated run given the matching alone results
/// (one per app, same order as the mix spelling).
Score score(const RunResult& colo, const std::vector<RunResult>& alone) {
  Score s;
  for (std::size_t k = 0; k < alone.size(); ++k) {
    const std::string key = "app" + std::to_string(k) + ".sim.cycles";
    const double t_colo = colo.get(key);
    const double t_alone = alone[k].get("sim.cycles");
    s.ws += t_alone / t_colo;
    s.antt += t_colo / t_alone;
  }
  s.antt /= static_cast<double>(alone.size());
  return s;
}

int smoke() {
  std::printf("multiprog smoke: gauss+histo, TD-NUCA, partitioned\n");
  const auto colo = harness::run_experiment(
      mix_cfg("gauss+histo", PolicyKind::TdNuca, PartitionMode::Partitioned));
  const auto alone_g =
      harness::run_experiment(alone_cfg("gauss", PolicyKind::TdNuca));
  const auto alone_h =
      harness::run_experiment(alone_cfg("histo", PolicyKind::TdNuca));
  bool ok = true;
  auto expect = [&ok](bool cond, const char* what) {
    std::printf("  %-38s %s\n", what, cond ? "ok" : "FAILED");
    if (!cond) ok = false;
  };
  expect(colo.get("multi.num_apps") == 2.0, "two apps instantiated");
  expect(colo.get("app0.sim.cycles") > 0.0 && colo.get("app1.sim.cycles") > 0.0,
         "both apps ran to completion");
  expect(colo.get("tasks.completed") ==
             colo.get("app0.tasks.completed") + colo.get("app1.tasks.completed"),
         "task counts sum to machine total");
  expect(colo.get("app0.llc.requests") + colo.get("app1.llc.requests") ==
             colo.get("llc.requests"),
         "per-app LLC requests sum to total");
  expect(colo.get("sim.cycles") >= colo.get("app0.sim.cycles") &&
             colo.get("sim.cycles") >= colo.get("app1.sim.cycles"),
         "mix makespan covers both apps");
  const Score s = score(colo, {alone_g, alone_h});
  expect(s.ws > 0.0 && s.ws <= 2.0 + 1e-9, "weighted speedup in (0, 2]");
  expect(s.antt >= 0.5, "ANTT is sane");
  std::printf("multiprog smoke: %s (WS=%.3f ANTT=%.3f)\n",
              ok ? "PASS" : "FAIL", s.ws, s.antt);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return smoke();
  }

  harness::print_figure_header(
      "Multiprog",
      "colocation: weighted speedup (WS, max = #apps) and avg normalized "
      "turnaround (ANTT, min = 1) per mix, policy and partition mode");

  const std::vector<PolicyKind> policies = {
      PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca};
  const std::vector<PartitionMode> modes = {PartitionMode::Partitioned,
                                            PartitionMode::Shared};

  // Alone baselines first (deduplicated across mixes), then every
  // mix x mode x policy colocated run — one sweep so --jobs covers it all.
  std::vector<std::string> alone_wls;
  for (const auto& mix : kMixes) {
    for (const auto& wl : multi::MixSpec::parse(mix).apps) {
      if (std::find(alone_wls.begin(), alone_wls.end(), wl) == alone_wls.end())
        alone_wls.push_back(wl);
    }
  }
  std::vector<harness::RunConfig> cfgs;
  for (const auto& wl : alone_wls)
    for (const PolicyKind pol : policies) cfgs.push_back(alone_cfg(wl, pol));
  const std::size_t colo_base = cfgs.size();
  for (const auto& mix : kMixes)
    for (const PartitionMode mode : modes)
      for (const PolicyKind pol : policies)
        cfgs.push_back(mix_cfg(mix, pol, mode));
  const auto results = run_all(cfgs);

  auto alone_of = [&](const std::string& wl, std::size_t p) -> const RunResult& {
    const auto it = std::find(alone_wls.begin(), alone_wls.end(), wl);
    const auto w = static_cast<std::size_t>(it - alone_wls.begin());
    return results[w * policies.size() + p];
  };

  stats::Table table({"mix", "mode", "WS snuca", "WS rnuca", "WS tdnuca",
                      "ANTT snuca", "ANTT rnuca", "ANTT tdnuca", "xconf td"});
  std::vector<double> ws_td_part, ws_td_shared, ws_snuca_part;
  for (std::size_t m = 0; m < kMixes.size(); ++m) {
    const auto parts = multi::MixSpec::parse(kMixes[m]).apps;
    for (std::size_t md = 0; md < modes.size(); ++md) {
      Score s[3];
      double xconf_td = 0.0;
      for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto& colo =
            results[colo_base + (m * modes.size() + md) * policies.size() + p];
        std::vector<RunResult> alone;
        for (const auto& wl : parts) alone.push_back(alone_of(wl, p));
        s[p] = score(colo, alone);
        if (policies[p] == PolicyKind::TdNuca)
          xconf_td = colo.get("multi.cross_app_conflicts");
      }
      if (modes[md] == PartitionMode::Partitioned) {
        ws_td_part.push_back(s[2].ws);
        ws_snuca_part.push_back(s[0].ws);
      } else {
        ws_td_shared.push_back(s[2].ws);
      }
      table.add_row({kMixes[m], multi::to_string(modes[md]),
                     stats::Table::num(s[0].ws, 3), stats::Table::num(s[1].ws, 3),
                     stats::Table::num(s[2].ws, 3),
                     stats::Table::num(s[0].antt, 3),
                     stats::Table::num(s[1].antt, 3),
                     stats::Table::num(s[2].antt, 3),
                     stats::Table::num(xconf_td, 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "geomean WS — tdnuca partitioned: %.3f   tdnuca shared: %.3f   "
      "snuca partitioned: %.3f\n",
      harness::geometric_mean(ws_td_part),
      harness::geometric_mean(ws_td_shared),
      harness::geometric_mean(ws_snuca_part));
  bench::obs_section(argc, argv);
  return 0;
}
