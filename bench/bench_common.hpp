// Shared plumbing for the figure-regeneration binaries: one full-suite
// simulation sweep, memoized on disk so the per-figure binaries share it.
#pragma once

#include <cstdio>
#include <vector>

#include "harness/figures.hpp"
#include "harness/paper_ref.hpp"
#include "harness/runner.hpp"
#include "stats/table.hpp"
#include "workloads/workload.hpp"

namespace bench {

using namespace tdn;
using harness::RunResult;
using system::PolicyKind;

inline std::vector<RunResult> suite(std::vector<PolicyKind> policies) {
  return harness::run_suite(policies, workloads::WorkloadParams{});
}

inline std::vector<RunResult> suite_srt() {
  return suite({PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca});
}

inline void print_normalized(const std::string& id, const std::string& caption,
                             const harness::NormalizedFigure& fig,
                             const std::vector<RunResult>& results) {
  harness::print_figure_header(id, caption);
  const auto [table, gm] = harness::normalized_table(fig, results);
  std::printf("%s", table.to_string().c_str());
  std::printf("measured geomean (last column): %.3f   paper average: %.3f\n",
              gm, fig.paper_avg);
}

}  // namespace bench
