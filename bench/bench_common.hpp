// Shared plumbing for the figure-regeneration binaries: one full-suite
// simulation sweep, executed on a SweepRunner thread pool and memoized on
// disk so the per-figure binaries share it. Operator's manual:
// docs/harness.md.
#pragma once

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "harness/figures.hpp"
#include "harness/paper_ref.hpp"
#include "harness/runner.hpp"
#include "harness/sweep_runner.hpp"
#include "stats/table.hpp"
#include "workloads/workload.hpp"

namespace bench {

using namespace tdn;
using harness::RunResult;
using system::PolicyKind;

/// --jobs/-j value shared by every bench binary. 0 = hardware_concurrency.
inline unsigned& jobs_flag() {
  static unsigned jobs = 0;
  return jobs;
}

/// Checkpoint flags shared by the serving binaries (docs/serving.md
/// §checkpoint/restore). Applied by serving paths that opt in; ignored by
/// closed-run figures.
inline ckpt::Options& ckpt_flags() {
  static ckpt::Options opts;
  return opts;
}

/// "50k" / "2M" / "12345" → cycles. Returns 0 on garbage (flag ignored).
inline Cycle parse_cycles(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0) return 0;
  if (end != nullptr && *end == 'k') v *= 1e3;
  else if (end != nullptr && *end == 'M') v *= 1e6;
  return static_cast<Cycle>(v);
}

/// First SIGINT/SIGTERM: request a cooperative interrupt — a serving run
/// with checkpointing drains to the next quiescent point, publishes a final
/// emergency snapshot and unwinds; every experiment that already finished
/// was flushed to the results cache atomically (fsync + rename), so an
/// interrupted sweep loses at most the in-flight runs and resumes from the
/// cache. A second signal falls back to the default disposition (kill) for
/// runs that cannot reach a quiescent point.
extern "C" inline void bench_interrupt_handler(int sig) {
  tdn::ckpt::request_interrupt();
  std::signal(sig, SIG_DFL);
}

/// Parse the flags every bench binary shares. Call first in main(); flags
/// not recognized here (the obs flags) are handled later by obs_section().
///
///   --jobs N | -j N          simulations run N at a time (default: all cores)
///   --checkpoint-dir PATH    serving runs publish quiescent-point snapshots
///   --checkpoint-every N     snapshot cadence in simulated cycles (k/M
///                            suffixes ok; serving binaries default it when
///                            only --checkpoint-dir is given)
///   --resume                 resume serving runs from the newest valid
///                            snapshot in --checkpoint-dir
inline void init(int argc, char** argv) {
  std::signal(SIGINT, bench_interrupt_handler);
  std::signal(SIGTERM, bench_interrupt_handler);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" || a == "-j") {
      if (i + 1 < argc) {
        jobs_flag() = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
      }
    } else if (a == "--checkpoint-dir") {
      if (i + 1 < argc) ckpt_flags().dir = argv[++i];
      else std::fprintf(stderr, "%s requires a value\n", a.c_str());
    } else if (a == "--checkpoint-every") {
      if (i + 1 < argc) ckpt_flags().every = parse_cycles(argv[++i]);
      else std::fprintf(stderr, "%s requires a value\n", a.c_str());
    } else if (a == "--resume") {
      ckpt_flags().resume = true;
    }
  }
}

/// Run a sweep of configs --jobs at a time; results come back in input
/// order and bit-identical to a serial run regardless of the pool size.
inline std::vector<RunResult> run_all(
    const std::vector<harness::RunConfig>& cfgs) {
  harness::SweepOptions opts;
  opts.jobs = jobs_flag();
  opts.progress = true;
  harness::SweepRunner runner(opts);
  try {
    return runner.run(cfgs);
  } catch (const ckpt::InterruptedError& e) {
    // The sweep pool has already stopped and every completed experiment was
    // flushed atomically to the results cache; rerunning the same command
    // picks those up as cache hits and only re-simulates the remainder.
    std::fprintf(stderr,
                 "\nsweep interrupted (%s); completed results are in the "
                 "results cache — rerun to resume\n",
                 e.what());
    std::exit(130);
  }
}

inline std::vector<RunResult> suite(const std::vector<PolicyKind>& policies) {
  std::vector<harness::RunConfig> cfgs;
  for (const auto& wl : workloads::paper_workload_names()) {
    for (const PolicyKind p : policies) {
      harness::RunConfig cfg;
      cfg.workload = wl;
      cfg.policy = p;
      cfgs.push_back(std::move(cfg));
    }
  }
  return run_all(cfgs);
}

inline std::vector<RunResult> suite_srt() {
  return suite({PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca});
}

/// Every figure binary accepts the shared observability flags (in addition
/// to --jobs/-j, parsed by init()):
///
///   --trace PATH           Chrome trace_event JSON (open in Perfetto)
///   --trace-coherence      also record per-transaction coherence instants
///   --epochs PATH          epoch time-series CSV
///   --epochs-json PATH     epoch time-series JSON
///   --heatmaps PATH        end-of-run heatmaps, aligned text
///   --heatmaps-json PATH   end-of-run heatmaps, JSON
///   --latency-report PATH  tdn-obs-report-v1 JSON: latency attribution +
///                          tail histograms + task critical path
///   --epoch-cycles N       sampling period in simulated cycles
///   --obs-workload NAME    workload to instrument (default gauss)
///   --obs-policy NAME      snuca | rnuca | tdnuca | bypass | dryrun
///
/// If any output flag is present, one instrumented experiment runs (cache
/// bypassed) and a "tdn obs" section reports the artifacts. The figure
/// output itself is unaffected: recording never changes simulation results.
inline void obs_section(int argc, char** argv) {
  harness::RunConfig cfg;
  // gauss keeps real LLC bank traffic under TD-NUCA (jacobi bypasses ~all of
  // it, which would make the default bank heatmaps identically zero).
  cfg.workload = "gauss";
  cfg.policy = PolicyKind::TdNuca;
  auto val = [&](int& i) -> std::string {
    return i + 1 < argc ? argv[++i] : "";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace") cfg.obs.trace_path = val(i);
    else if (a == "--trace-coherence") cfg.obs.trace_coherence = true;
    else if (a == "--epochs") cfg.obs.epochs_csv_path = val(i);
    else if (a == "--epochs-json") cfg.obs.epochs_json_path = val(i);
    else if (a == "--heatmaps") cfg.obs.heatmaps_path = val(i);
    else if (a == "--heatmaps-json") cfg.obs.heatmaps_json_path = val(i);
    else if (a == "--latency-report") cfg.obs.latency_report_path = val(i);
    else if (a == "--epoch-cycles") cfg.obs.epoch_cycles = std::strtoull(val(i).c_str(), nullptr, 10);
    else if (a == "--obs-workload") {
      cfg.workload = val(i);
      // Reject typos up front with the full menu — a bad name would
      // otherwise surface as an exception mid-run. '+'-joined mixes are
      // instrumentable too, so validate each component.
      bool ok = !cfg.workload.empty();
      for (std::size_t start = 0; ok;) {
        const std::size_t plus = cfg.workload.find('+', start);
        const std::string part = cfg.workload.substr(
            start, plus == std::string::npos ? std::string::npos : plus - start);
        if (!workloads::is_valid_workload(part)) ok = false;
        if (plus == std::string::npos) break;
        start = plus + 1;
      }
      if (!ok) {
        std::fprintf(stderr,
                     "unknown --obs-workload '%s' (valid: %s; join with '+' "
                     "for a multiprogram mix)\n",
                     cfg.workload.c_str(),
                     workloads::valid_workload_names().c_str());
        std::exit(2);
      }
    }
    else if (a == "--obs-policy") {
      const std::string p = val(i);
      if (p == "snuca") cfg.policy = PolicyKind::SNuca;
      else if (p == "rnuca") cfg.policy = PolicyKind::RNuca;
      else if (p == "tdnuca") cfg.policy = PolicyKind::TdNuca;
      else if (p == "bypass") cfg.policy = PolicyKind::TdNucaBypassOnly;
      else if (p == "dryrun") cfg.policy = PolicyKind::TdNucaDryRun;
      else std::fprintf(stderr, "unknown --obs-policy '%s'\n", p.c_str());
    }
  }
  if (!cfg.obs.any()) return;

  harness::ObsArtifacts arts;
  harness::run_experiment(cfg, /*use_cache=*/true, &arts);

  std::printf("\n== tdn obs ==\n");
  std::printf("instrumented run: %s / %s (epoch = %llu cycles)\n",
              cfg.workload.c_str(), system::to_string(cfg.policy),
              static_cast<unsigned long long>(cfg.obs.epoch_cycles));
  if (!cfg.obs.trace_path.empty()) {
    std::printf("trace:    %s  (%zu events) — open in https://ui.perfetto.dev "
                "or chrome://tracing\n",
                cfg.obs.trace_path.c_str(), arts.trace_events);
  }
  if (!cfg.obs.epochs_csv_path.empty() || !cfg.obs.epochs_json_path.empty()) {
    std::printf("epochs:   %s%s%s  (%zu rows x %zu series)\n",
                cfg.obs.epochs_csv_path.c_str(),
                !cfg.obs.epochs_csv_path.empty() &&
                        !cfg.obs.epochs_json_path.empty()
                    ? ", "
                    : "",
                cfg.obs.epochs_json_path.c_str(), arts.epoch_rows,
                arts.epoch_series);
  }
  if (!cfg.obs.heatmaps_path.empty() || !cfg.obs.heatmaps_json_path.empty()) {
    std::printf("heatmaps: %s%s%s  (%zu matrices)\n",
                cfg.obs.heatmaps_path.c_str(),
                !cfg.obs.heatmaps_path.empty() &&
                        !cfg.obs.heatmaps_json_path.empty()
                    ? ", "
                    : "",
                cfg.obs.heatmaps_json_path.c_str(), arts.heatmaps);
  }
  if (!cfg.obs.latency_report_path.empty()) {
    std::printf("latency:  %s  (%zu attributed accesses)\n",
                cfg.obs.latency_report_path.c_str(),
                arts.attributed_accesses);
  }
  for (const std::string* p :
       {&cfg.obs.trace_path, &cfg.obs.epochs_csv_path,
        &cfg.obs.epochs_json_path, &cfg.obs.heatmaps_path,
        &cfg.obs.heatmaps_json_path, &cfg.obs.latency_report_path}) {
    if (p->empty()) continue;
    if (std::find(arts.files_written.begin(), arts.files_written.end(), *p) ==
        arts.files_written.end()) {
      std::printf("WRITE FAILED: %s\n", p->c_str());
    }
  }
}

inline void print_normalized(const std::string& id, const std::string& caption,
                             const harness::NormalizedFigure& fig,
                             const std::vector<RunResult>& results) {
  harness::print_figure_header(id, caption);
  const auto [table, gm] = harness::normalized_table(fig, results);
  std::printf("%s", table.to_string().c_str());
  std::printf("measured geomean (last column): %.3f   paper average: %.3f\n",
              gm, fig.paper_avg);
}

}  // namespace bench
