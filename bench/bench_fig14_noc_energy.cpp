// Regenerates paper Fig. 14: NoC dynamic energy normalized to S-NUCA.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::NormalizedFigure fig;
  fig.metric = "energy.noc_pj";
  fig.invert = false;
  fig.policies = {PolicyKind::RNuca, PolicyKind::TdNuca};
  fig.paper_ref = [](const std::string&) { return std::nullopt; };
  fig.paper_avg = harness::paper::kFig14AvgNocEnergyTd;
  print_normalized("Fig. 14",
                   "NoC dynamic energy normalized to S-NUCA "
                   "(paper: TD-NUCA 0.55-0.80, avg 0.64; R-NUCA avg 0.88)",
                   fig, results);
  bench::obs_section(argc, argv);
  return 0;
}
