// Regenerates the paper's Sec. V-E RRT occupancy study: mean and maximum
// RRT entries in use per benchmark (paper: 14.71 mean; max 23 for
// Gauss/Histo/Kmeans/KNN, up to 59 in Redblack; 64 entries always suffice).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite({PolicyKind::TdNuca});
  harness::print_figure_header("Sec. V-E", "RRT occupancy (entries per core)");
  stats::Table table({"bench", "mean", "max", "lookups", "capacity"});
  double mean_sum = 0;
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const auto& r = harness::find_result(results, wl, PolicyKind::TdNuca);
    mean_sum += r.get("rrt.mean_occupancy");
    table.add_row({wl, stats::Table::num(r.get("rrt.mean_occupancy"), 2),
                   stats::Table::num(r.get("rrt.max_occupancy"), 0),
                   stats::Table::num(r.get("rrt.lookups"), 0), "64"});
  }
  table.add_row({"mean", stats::Table::num(mean_sum / names.size(), 2), "", "",
                 ""});
  std::printf("%s", table.to_string().c_str());
  std::printf("paper: 14.71 mean occupancy; maxima 23-59 depending on task "
              "size; 64 entries always sufficient\n");
  bench::obs_section(argc, argv);
  return 0;
}
