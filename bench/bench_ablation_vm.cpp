// Ablation: tdn::vm page-size policy x physical fragmentation x NUCA policy
// on the TLB-hostile randtouch workload — the RRT-translation study the
// paper's infrastructure could not produce (docs/memory.md).
//
// Huge pages collapse the iterative tdnuca_register translation (one TLB
// probe per page, paper Sec. V-E) by 512x and shrink the walk footprint;
// under R-NUCA they also coarsen page classification to 2M grain, while
// TD-NUCA's region-grain placement is page-size independent.
//
// --smoke runs a reduced-scale sweep (CI).
#include <cstring>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  harness::print_figure_header(
      "Ablation",
      "tdn::vm page policy x fragmentation x NUCA policy (workload: "
      "randtouch)");

  struct Thp {
    const char* name;
    vm::ThpPolicy policy;
  };
  const Thp thps[] = {{"4K (never)", vm::ThpPolicy::Never},
                      {"2M (always)", vm::ThpPolicy::Always},
                      {"madvise", vm::ThpPolicy::Madvise}};
  // 1.0 punctures every 2M block in the pool — no huge allocation can
  // succeed, so the fallback path (and the knob's worst case) is on the
  // table; 0.5 leaves enough unpunctured blocks that huge pages survive.
  const double frags[] = {0.0, 0.5, 1.0};
  const PolicyKind policies[] = {PolicyKind::TdNuca, PolicyKind::RNuca};

  std::vector<harness::RunConfig> cfgs;
  for (const PolicyKind pk : policies) {
    for (const double frag : frags) {
      for (const Thp& thp : thps) {
        harness::RunConfig cfg;
        cfg.workload = "randtouch";
        cfg.policy = pk;
        cfg.params.scale = smoke ? 0.125 : 0.5;
        cfg.sys.vm.enabled = true;
        cfg.sys.vm.thp = thp.policy;
        cfg.sys.vm.fragmentation = frag;
        cfgs.push_back(std::move(cfg));
      }
    }
  }
  const auto results = run_all(cfgs);

  stats::Table table({"policy", "pages", "frag", "cycles", "reg pages",
                      "reg cycles", "tlb misses", "walk loads", "2M pages",
                      "huge fallbacks", "rnuca pages"});
  std::size_t i = 0;
  for (const PolicyKind pk : policies) {
    for (const double frag : frags) {
      for (const Thp& thp : thps) {
        const auto& r = results[i++];
        const bool td = pk == PolicyKind::TdNuca;
        // R-NUCA classifies at page grain: with 2M pages the census counts
        // 2M-grain entries, so "rnuca pages" shrinking is the coarsening.
        const double rnuca_pages = td ? 0.0
                                      : r.get("rnuca.private_pages") +
                                            r.get("rnuca.shared_ro_pages") +
                                            r.get("rnuca.shared_pages");
        table.add_row(
            {system::to_string(pk), thp.name, stats::Table::num(frag, 2),
             stats::Table::num(r.get("sim.cycles"), 0),
             td ? stats::Table::num(r.get("tdnuca.translate_pages"), 0) : "-",
             td ? stats::Table::num(r.get("tdnuca.translate_cycles"), 0) : "-",
             stats::Table::num(r.get("tlb.misses"), 0),
             stats::Table::num(r.get("vm.walk_loads"), 0),
             stats::Table::num(r.get("vm.pages_2m"), 0),
             stats::Table::num(r.get("vm.huge_fallbacks"), 0),
             td ? "-" : stats::Table::num(rnuca_pages, 0)});
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "expected shape: 2M pages collapse the per-dependency register "
      "translation (reg pages / reg cycles) and cut TLB misses + walker "
      "loads; a fully punctured pool (frag=1.0) defeats every huge "
      "allocation — fallbacks fire and the 4K costs return; R-NUCA's census "
      "coarsens to 2M grain while TD-NUCA placement is unchanged by page "
      "size. madvise hints are issued by the TD-NUCA runtime hooks, so "
      "under R-NUCA madvise behaves as never.\n");
  bench::obs_section(argc, argv);
  return 0;
}
