// Regenerates the paper's Sec. V-E RRT latency sensitivity study: TD-NUCA
// performance with the RRT lookup latency swept from 0 to 4 cycles,
// normalized to the 0-cycle (ideal) RRT.
// Paper: 1 cycle costs 0.1%; 2/3/4 cycles cost 0.5% / 1.1% / 1.9% on average.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const std::vector<std::string> wls = {"lu", "knn", "jacobi"};
  harness::print_figure_header(
      "Sec. V-E", "RRT latency sweep (slowdown vs ideal 0-cycle RRT)");
  stats::Table table({"bench", "1 cyc", "2 cyc", "3 cyc", "4 cyc"});
  std::vector<double> overhead_sum(5, 0.0);
  std::vector<harness::RunConfig> cfgs;
  for (const auto& wl : wls) {
    for (Cycle lat = 0; lat <= 4; ++lat) {
      harness::RunConfig cfg;
      cfg.workload = wl;
      cfg.policy = PolicyKind::TdNuca;
      cfg.sys.tdnuca.rrt_latency = lat;
      cfgs.push_back(std::move(cfg));
    }
  }
  const auto results = run_all(cfgs);
  for (std::size_t w = 0; w < wls.size(); ++w) {
    const auto& wl = wls[w];
    std::vector<double> cycles;
    for (int lat = 0; lat <= 4; ++lat)
      cycles.push_back(results[5 * w + lat].get("sim.cycles"));
    std::vector<std::string> row{wl};
    for (int lat = 1; lat <= 4; ++lat) {
      const double slowdown = cycles[lat] / cycles[0] - 1.0;
      overhead_sum[lat] += slowdown;
      row.push_back(stats::Table::num(100.0 * slowdown, 2) + "%");
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"mean"};
  for (int lat = 1; lat <= 4; ++lat)
    avg.push_back(
        stats::Table::num(100.0 * overhead_sum[lat] / wls.size(), 2) + "%");
  table.add_row(std::move(avg));
  std::printf("%s", table.to_string().c_str());
  std::printf("paper averages: 1 cyc 0.1%%, 2 cyc 0.5%%, 3 cyc 1.1%%, "
              "4 cyc 1.9%%\n");
  bench::obs_section(argc, argv);
  return 0;
}
