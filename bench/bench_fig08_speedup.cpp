// Regenerates paper Fig. 8: performance speedup of R-NUCA and TD-NUCA over
// the S-NUCA baseline, per benchmark, with the paper's values alongside.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();

  harness::NormalizedFigure fig;
  fig.metric = "sim.cycles";
  fig.invert = true;  // speedup = baseline / policy
  fig.policies = {PolicyKind::RNuca, PolicyKind::TdNuca};
  fig.paper_ref = harness::paper::fig8_speedup_td;
  fig.paper_avg = harness::paper::kFig8AvgTd;
  print_normalized("Fig. 8", "speedup over S-NUCA (paper column = TD-NUCA)",
                   fig, results);

  // R-NUCA average for completeness (paper: 1.02x).
  std::vector<double> r_speedups;
  for (const auto& wl : workloads::paper_workload_names()) {
    const double base =
        harness::find_result(results, wl, PolicyKind::SNuca).get("sim.cycles");
    r_speedups.push_back(
        base /
        harness::find_result(results, wl, PolicyKind::RNuca).get("sim.cycles"));
  }
  std::printf("R-NUCA measured geomean: %.3f   paper average: %.3f\n",
              harness::geometric_mean(r_speedups),
              harness::paper::kFig8AvgRnuca);
  bench::obs_section(argc, argv);
  return 0;
}
