// Regenerates paper Fig. 15: the TD-NUCA variant that only performs LLC
// bypassing, vs full TD-NUCA, both normalized to S-NUCA. Expected shape:
// bypass-only ~1.0 on Histo/KNN/LU, matching full TD-NUCA on the
// barrier-separated stencils, partial on Gauss (paper avg 1.06 vs 1.18).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite({PolicyKind::SNuca, PolicyKind::TdNucaBypassOnly,
                              PolicyKind::TdNuca});
  harness::NormalizedFigure fig;
  fig.metric = "sim.cycles";
  fig.invert = true;
  fig.policies = {PolicyKind::TdNucaBypassOnly, PolicyKind::TdNuca};
  fig.paper_ref = harness::paper::fig15_speedup_bypass_only;
  fig.paper_avg = harness::paper::kFig8AvgTd;
  print_normalized(
      "Fig. 15",
      "speedup over S-NUCA: bypass-only variant vs full TD-NUCA "
      "(paper column = bypass-only)",
      fig, results);

  std::vector<double> byp;
  for (const auto& wl : workloads::paper_workload_names()) {
    const double base =
        harness::find_result(results, wl, PolicyKind::SNuca).get("sim.cycles");
    byp.push_back(base / harness::find_result(results, wl,
                                              PolicyKind::TdNucaBypassOnly)
                             .get("sim.cycles"));
  }
  std::printf("bypass-only measured geomean: %.3f   paper average: %.3f\n",
              harness::geometric_mean(byp),
              harness::paper::kFig15AvgBypassOnly);
  bench::obs_section(argc, argv);
  return 0;
}
