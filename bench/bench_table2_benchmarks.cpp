// Regenerates paper Table II: benchmarks, input set sizes, task counts and
// average task sizes — the paper's values next to the scaled reproduction's
// (ratios to the LLC capacity are the preserved quantity, DESIGN.md Sec. 6).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/table.hpp"
#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace tdn;
  bench::init(argc, argv);
  struct PaperRow {
    const char* bench;
    double input_mb;
    int tasks;
    int task_kb;
  };
  const PaperRow paper[] = {
      {"gauss", 488.04, 3200, 294}, {"histo", 478.75, 1800, 528},
      {"jacobi", 264.34, 320, 4112}, {"kmeans", 314.37, 228, 1404},
      {"knn", 85.01, 448, 318},      {"lu", 73.45, 1188, 318},
      {"md5", 513.39, 128, 4096},    {"redblack", 223.96, 320, 3549},
  };
  const double paper_llc_mb = 32.0;

  stats::Table t({"bench", "paper MB (xLLC)", "ours KB (xLLC)", "paper tasks",
                  "ours tasks", "paper task KB", "ours task KB", "phases"});
  for (const auto& row : paper) {
    system::SystemConfig cfg;
    system::TiledSystem sys(cfg);
    auto wl = workloads::make_workload(row.bench, {});
    wl->build(sys);
    const auto& st = wl->stats();
    const double our_llc =
        static_cast<double>(cfg.hierarchy.llc_bank.size_bytes) *
        cfg.num_cores();
    t.add_row({row.bench,
               stats::Table::num(row.input_mb, 1) + " (" +
                   stats::Table::num(row.input_mb / paper_llc_mb, 1) + "x)",
               stats::Table::num(st.input_bytes / 1024.0, 0) + " (" +
                   stats::Table::num(st.input_bytes / our_llc, 1) + "x)",
               std::to_string(row.tasks), std::to_string(st.num_tasks),
               std::to_string(row.task_kb),
               stats::Table::num(st.avg_task_bytes / 1024.0, 0),
               std::to_string(st.num_phases)});
  }
  std::printf("=== Table II: benchmarks, problem and task sizes ===\n%s",
              t.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
