// Ablation: fault resilience. How much of TD-NUCA's speedup over S-NUCA
// survives LLC bank failures? Both policies degrade through the shared
// HealthState (docs/faults.md): S-NUCA re-interleaves over the healthy set,
// TD-NUCA additionally heals its RRTs and narrows cluster maps. The
// end-of-run invariant checker runs on every simulation, so each cell in
// this table doubles as a degraded-mode correctness check.
//
//   --smoke    one workload, one bank failure: verify the run completes,
//              invariants hold, and metrics differ from the healthy run.
//              Exit status reports the outcome (CI fault-injection step).
#include "bench_common.hpp"

namespace {

using namespace bench;

// Mid-run injection points for the default-scale suite (shortest healthy
// makespan ~156k cycles): the first bank dies at 50k, the second at 100k.
const char* kOneFault = "bank_fail@3:cycle=50k";
const char* kTwoFaults = "bank_fail@3:cycle=50k,bank_fail@9:cycle=100k";

harness::RunConfig make_cfg(const std::string& wl, PolicyKind pol,
                            const std::string& plan) {
  harness::RunConfig cfg;
  cfg.workload = wl;
  cfg.policy = pol;
  cfg.sys.fault.plan = plan;
  return cfg;
}

int smoke() {
  std::printf("fault smoke: kmeans, TD-NUCA, %s\n", kOneFault);
  const auto healthy =
      harness::run_experiment(make_cfg("kmeans", PolicyKind::TdNuca, ""));
  // The faulted run exercises bank evacuation, RRT healing and the
  // invariant checker (run_experiment throws on a violation).
  const auto faulted = harness::run_experiment(
      make_cfg("kmeans", PolicyKind::TdNuca, kOneFault));
  bool ok = true;
  auto expect = [&ok](bool cond, const char* what) {
    std::printf("  %-34s %s\n", what, cond ? "ok" : "FAILED");
    if (!cond) ok = false;
  };
  expect(faulted.get("tasks.completed") == healthy.get("tasks.completed"),
         "all tasks completed");
  expect(faulted.get("fault.banks_failed") == 1.0, "bank failure injected");
  expect(faulted.get("fault.healthy_banks") == 15.0, "15 banks survive");
  expect(faulted.get("sim.cycles") != healthy.get("sim.cycles"),
         "results differ from healthy");
  std::printf("fault smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return smoke();
  }

  harness::print_figure_header(
      "Ablation", "fault resilience (TD-NUCA speedup over S-NUCA under 0/1/2 "
                  "failed LLC banks; retained = 2-fail/healthy)");
  const auto workloads = workloads::paper_workload_names();
  const std::vector<std::string> plans = {"", kOneFault, kTwoFaults};
  std::vector<harness::RunConfig> cfgs;
  for (const auto& wl : workloads)
    for (const std::string& plan : plans)
      for (const auto pol : {PolicyKind::SNuca, PolicyKind::TdNuca})
        cfgs.push_back(make_cfg(wl, pol, plan));
  const auto results = run_all(cfgs);

  stats::Table table({"workload", "speedup 0f", "speedup 1f", "speedup 2f",
                      "retained", "evac lines", "bounced"});
  std::vector<double> retained;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    double speedup[3];
    for (std::size_t f = 0; f < plans.size(); ++f) {
      const auto& snuca = results[(w * 3 + f) * 2];
      const auto& tdnuca = results[(w * 3 + f) * 2 + 1];
      speedup[f] = snuca.get("sim.cycles") / tdnuca.get("sim.cycles");
    }
    const auto& two_fail_td = results[(w * 3 + 2) * 2 + 1];
    retained.push_back(speedup[2] / speedup[0]);
    table.add_row({workloads[w], stats::Table::num(speedup[0], 3),
                   stats::Table::num(speedup[1], 3),
                   stats::Table::num(speedup[2], 3),
                   stats::Table::num(retained.back(), 3),
                   stats::Table::num(two_fail_td.get("fault.evacuated_lines"), 0),
                   stats::Table::num(two_fail_td.get("fault.bounced_requests"), 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("geomean retained speedup under 2 failed banks: %.3f\n",
              harness::geometric_mean(retained));
  bench::obs_section(argc, argv);
  return 0;
}
