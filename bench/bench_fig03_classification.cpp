// Regenerates paper Fig. 3: categorization of unique cache blocks under
// R-NUCA's OS page classification (left bar) vs TD-NUCA's dependency types
// (right bar), per benchmark.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite({PolicyKind::RNuca, PolicyKind::TdNuca});

  harness::print_figure_header(
      "Fig. 3", "block classification: R-NUCA pages vs TD-NUCA dependencies "
                "(fractions of unique blocks)");
  stats::Table table({"bench", "R:private", "R:sharedRO", "R:shared",
                      "TD:in", "TD:out", "TD:both", "TD:notreused",
                      "TD:dep-cover"});
  double shared_sum = 0, dep_sum = 0, nr_sum = 0;
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const auto& r = harness::find_result(results, wl, PolicyKind::RNuca);
    const auto& t = harness::find_result(results, wl, PolicyKind::TdNuca);
    const double rtot = r.get("fig3.rnuca.total_blocks");
    const double rp = r.get("fig3.rnuca.private_blocks") / rtot;
    const double rro = r.get("fig3.rnuca.shared_ro_blocks") / rtot;
    const double rsh = r.get("fig3.rnuca.shared_blocks") / rtot;
    const double total = t.get("workload.total_blocks");
    const double dep = t.get("fig3.td.dep_blocks");
    const double in = t.get("fig3.td.in_blocks") / total;
    const double out = t.get("fig3.td.out_blocks") / total;
    const double both = t.get("fig3.td.both_blocks") / total;
    const double nr = t.get("fig3.td.notreused_blocks") / total;
    shared_sum += rsh;
    dep_sum += dep / total;
    nr_sum += nr;
    table.add_row({wl, stats::Table::num(rp, 2), stats::Table::num(rro, 2),
                   stats::Table::num(rsh, 2), stats::Table::num(in, 2),
                   stats::Table::num(out, 2), stats::Table::num(both, 2),
                   stats::Table::num(nr, 2),
                   stats::Table::num(dep / total, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  const double n = static_cast<double>(names.size());
  std::printf(
      "measured means: R-NUCA shared %.2f (paper 0.64)   TD dependency "
      "coverage %.2f (paper 0.96)   TD not-reused %.2f (paper 0.72)\n",
      shared_sum / n, dep_sum / n, nr_sum / n);
  std::printf("note: 'notreused' counts blocks whose dependency actually "
              "bypassed the LLC at some point; overlapping dependencies are "
              "deduplicated smallest-first — see DESIGN.md.\n");
  bench::obs_section(argc, argv);
  return 0;
}
