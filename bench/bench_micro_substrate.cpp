// Google-benchmark microbenchmarks of the simulation substrate itself:
// event-queue throughput, cache-array probes, RRT range lookups, XY routing
// and region-map dependence analysis. These bound the simulator's wall-clock
// cost per modeled event (DESIGN.md decision 1).
#include <benchmark/benchmark.h>

#include "cache/cache_array.hpp"
#include "common/prng.hpp"
#include "noc/mesh.hpp"
#include "runtime/region_map.hpp"
#include "sim/event_queue.hpp"
#include "tdnuca/cluster_map.hpp"
#include "tdnuca/rrt.hpp"

using namespace tdn;

static void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue eq;
    int sink = 0;
    for (int i = 0; i < 1024; ++i)
      eq.schedule_at(static_cast<Cycle>(i * 7 % 997), [&] { ++sink; });
    eq.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueue);

static void BM_CacheArrayProbe(benchmark::State& state) {
  struct M {
    bool dirty = false;
  };
  cache::CacheArray<M> arr({256 * kKiB, 16, 64});
  SplitMix64 rng(1);
  std::optional<cache::CacheArray<M>::Eviction> ev;
  for (int i = 0; i < 4096; ++i) arr.allocate(rng.next_below(1 << 20) * 64, ev);
  SplitMix64 probe(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.find(probe.next_below(1 << 20) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayProbe);

static void BM_RrtLookup(benchmark::State& state) {
  tdnuca::Rrt rrt(64, 1);
  for (Addr i = 0; i < 64; ++i)
    rrt.register_range({i * 0x10000, i * 0x10000 + 0x8000},
                       BankMask::single(static_cast<CoreId>(i % 16)));
  SplitMix64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrt.lookup(rng.next_below(64) * 0x10000 + 0x4000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RrtLookup);

static void BM_XyRoute(benchmark::State& state) {
  noc::Mesh mesh(4, 4);
  SplitMix64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.xy_route(
        static_cast<CoreId>(rng.next_below(16)),
        static_cast<CoreId>(rng.next_below(16))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XyRoute);

static void BM_ClusterInterleave(benchmark::State& state) {
  noc::Mesh mesh(4, 4);
  tdnuca::ClusterMap cm(mesh);
  const BankMask mask = cm.mask_of(1);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdnuca::ClusterMap::bank_for_mask(mask, a += 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterInterleave);

static void BM_RegionMapAccess(benchmark::State& state) {
  for (auto _ : state) {
    runtime::RegionMap rm;
    for (TaskId t = 0; t < 256; ++t) {
      const Addr base = (t % 64) * 0x8000;
      benchmark::DoNotOptimize(
          rm.access({base, base + 0x8000}, t, t % 3 == 0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RegionMapAccess);
