// Microbenchmarks of the simulation substrate itself: event-queue dispatch
// throughput, cache-array probes, RRT range lookups, XY routing and
// region-map dependence analysis, plus end-to-end simulation wall time for
// one small workload per NUCA policy. These bound the simulator's
// wall-clock cost per modeled event (DESIGN.md decision 1).
//
// Self-contained binary (no google-benchmark): emits a machine-readable
// JSON report (schema tdn-bench-substrate-v1) consumed by
// scripts/check_perf_regression.py against the committed baseline in
// bench/baselines/BENCH_substrate.json.
//
//   bench_micro_substrate [--smoke] [--out PATH]
//
//   --smoke   cut iteration counts ~20x for CI (noisier; pair with a wide
//             tolerance band)
//   --out     write the JSON report to PATH (default: stdout only)
//
// The event-dispatch benchmark uses a realistic ~72-byte coherence-shaped
// capture (ids + addresses + a std::function completion), not a tiny int
// capture: small captures fit std::function's inline window and would hide
// exactly the allocations the InlineFunction substrate removes. A reference
// std::function-over-priority_queue queue is benchmarked on the same
// payload so the speedup is measured, not asserted.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/prng.hpp"
#include "harness/runner.hpp"
#include "noc/mesh.hpp"
#include "runtime/region_map.hpp"
#include "sim/event_queue.hpp"
#include "sim/mesh_traffic.hpp"
#include "tdnuca/rrt.hpp"

using namespace tdn;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Reference event queue: the pre-pool design (std::function closures moved
/// through a priority_queue of whole events). Kept only as the dispatch
/// benchmark's comparison point.
class StdFunctionQueue {
 public:
  void schedule_at(Cycle when, std::function<void()> fn) {
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }
  Cycle now() const noexcept { return now_; }
  void run() {
    while (!heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.when;
      ev.fn();
    }
  }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Coherence-shaped capture: what a miss continuation actually carries.
struct Payload {
  void* self;
  std::uint64_t vaddr, line, issued;
  std::uint32_t core;
  std::uint8_t kind;
  std::function<void(Cycle)> done;
};

template <typename Queue>
double dispatch_ns_per_event(int waves) {
  Queue q;
  std::uint64_t sink = 0;
  std::function<void(Cycle)> done = [&sink](Cycle c) { sink += c; };
  const auto t0 = Clock::now();
  std::uint64_t n = 0;
  for (int w = 0; w < waves; ++w) {
    for (int i = 0; i < 1024; ++i) {
      Payload p{&q,          0x1000ull * i, 64ull * i, q.now(),
                std::uint32_t(i), 1,        done};
      q.schedule_at(q.now() + static_cast<Cycle>(i * 7 % 997),
                    [p = std::move(p), &sink]() mutable {
                      sink += p.line;
                      p.done(p.issued);
                    });
      ++n;
    }
    q.run();
  }
  const double ns = ms_since(t0) * 1e6;
  if (sink == 0) std::fprintf(stderr, "impossible\n");  // defeat DCE
  return ns / static_cast<double>(n);
}

/// Best-of-3 wrapper for the sub-second micro kernels: the minimum is the
/// least noisy location statistic for "how fast can this go".
template <typename F>
double best_of_3(F&& f) {
  double best = f();
  for (int i = 0; i < 2; ++i) best = std::min(best, f());
  return best;
}

double cache_probe_ns(std::uint64_t iters) {
  struct M {
    bool dirty = false;
  };
  cache::CacheArray<M> arr({256 * kKiB, 16, 64});
  SplitMix64 rng(1);
  std::optional<cache::CacheArray<M>::Eviction> ev;
  for (int i = 0; i < 4096; ++i) arr.allocate(rng.next_below(1 << 20) * 64, ev);
  SplitMix64 probe(2);
  std::uint64_t hits = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    hits += arr.find(probe.next_below(1 << 20) * 64) != nullptr;
  }
  const double ns = ms_since(t0) * 1e6;
  if (hits == iters + 1) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double rrt_lookup_ns(std::uint64_t iters) {
  tdnuca::Rrt rrt(64, 1);
  for (Addr i = 0; i < 64; ++i)
    rrt.register_range({i * 0x10000, i * 0x10000 + 0x8000},
                       BankMask::single(static_cast<CoreId>(i % 16)));
  SplitMix64 rng(3);
  std::uint64_t found = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    found += rrt.lookup(rng.next_below(64) * 0x10000 + 0x4000).has_value();
  }
  const double ns = ms_since(t0) * 1e6;
  if (found == iters + 1) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double xy_route_ns(std::uint64_t iters) {
  noc::Mesh mesh(4, 4);
  SplitMix64 rng(4);
  std::uint64_t hops = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    hops += mesh.xy_route(static_cast<CoreId>(rng.next_below(16)),
                          static_cast<CoreId>(rng.next_below(16)))
                .size();
  }
  const double ns = ms_since(t0) * 1e6;
  if (hops == iters + 1) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double region_map_ns(std::uint64_t iters) {
  std::uint64_t deps = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t it = 0; it < iters; ++it) {
    runtime::RegionMap rm;
    for (TaskId t = 0; t < 256; ++t) {
      const Addr base = (t % 64) * 0x8000;
      deps += rm.access({base, base + 0x8000}, t, t % 3 == 0).size();
    }
  }
  const double ns = ms_since(t0) * 1e6;
  if (deps == iters + 1) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters * 256);
}

/// One MeshTraffic run (threads == 0 selects the serial reference queue);
/// returns modeled events/sec and reports the result for identity checks.
double mesh_traffic_events_per_sec(const sim::MeshTrafficParams& p,
                                   unsigned threads,
                                   sim::MeshTrafficResult* out) {
  const auto t0 = Clock::now();
  sim::MeshTrafficResult r = threads == 0
                                 ? sim::run_mesh_traffic_serial(p)
                                 : sim::run_mesh_traffic_sharded(p, threads);
  const double wall = ms_since(t0);
  const double eps = static_cast<double>(r.events) / (wall / 1e3);
  if (out != nullptr) *out = std::move(r);
  return eps;
}

double peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss);  // KiB on Linux
}

std::string json_escape_free(const std::string& s) { return s; }  // keys are ASCII

void write_json(const std::map<std::string, double>& metrics, bool smoke,
                const std::string& out_path) {
  std::string json = "{\n  \"schema\": \"tdn-bench-substrate-v1\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  // Host parallelism when the report was produced: the sharded_traffic.*
  // scaling metrics are only comparable between equal-width hosts, so the
  // perf checker warns (not fails) on a mismatch, like the smoke flag.
  json += "  \"threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"metrics\": {\n";
  std::size_t i = 0;
  for (const auto& [k, v] : metrics) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    json += "    \"" + json_escape_free(k) + "\": " + buf;
    json += (++i < metrics.size()) ? ",\n" : "\n";
  }
  json += "  }\n}\n";
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json;
    std::fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const int dispatch_waves = smoke ? 1000 : 20000;
  const std::uint64_t kernel_iters = smoke ? 500'000 : 10'000'000;
  const std::uint64_t map_iters = smoke ? 1'000 : 20'000;

  std::map<std::string, double> m;

  // Event dispatch: the substrate's headline number, plus the reference
  // std::function queue on the identical payload stream.
  const double pooled =
      best_of_3([&] { return dispatch_ns_per_event<sim::EventQueue>(dispatch_waves); });
  const double legacy = best_of_3(
      [&] { return dispatch_ns_per_event<StdFunctionQueue>(dispatch_waves); });
  m["event_dispatch.ns_per_event"] = pooled;
  m["event_dispatch.events_per_sec"] = 1e9 / pooled;
  m["event_dispatch.stdfunction_ref_ns_per_event"] = legacy;
  m["event_dispatch.speedup_vs_stdfunction"] = legacy / pooled;

  // Sharded-engine scaling: a ~1M-event shared-nothing MeshTraffic mesh
  // (16x16 tiles, one engine domain per tile), serial EventQueue reference
  // vs ShardedEventQueue at 1/2/4 threads. The run aborts if any thread
  // count's result fingerprint drifts from the serial reference — the
  // scaling numbers are only meaningful for bit-identical runs.
  {
    sim::MeshTrafficParams p;
    p.width = 16;
    p.height = 16;
    p.packets_per_tile = smoke ? 4 : 16;
    p.ttl = smoke ? 63 : 255;
    p.work = 32;
    p.seed = 9;
    sim::MeshTrafficResult ref;
    const double serial_eps = mesh_traffic_events_per_sec(p, 0, &ref);
    m["sharded_traffic.serial.events_per_sec"] = serial_eps;
    m["sharded_traffic.events"] = static_cast<double>(ref.events);
    for (const unsigned t : {1u, 2u, 4u}) {
      sim::MeshTrafficResult r;
      const double eps = mesh_traffic_events_per_sec(p, t, &r);
      if (r.fingerprint() != ref.fingerprint()) {
        std::fprintf(stderr,
                     "FATAL: sharded MeshTraffic (threads=%u) diverged from "
                     "the serial reference fingerprint\n", t);
        return 1;
      }
      const std::string key = "sharded_traffic.t" + std::to_string(t);
      m[key + ".events_per_sec"] = eps;
      m[key + ".speedup_vs_serial"] = eps / serial_eps;
    }
  }

  m["cache_probe.ns_per_op"] = best_of_3([&] { return cache_probe_ns(kernel_iters); });
  m["rrt_lookup.ns_per_op"] = best_of_3([&] { return rrt_lookup_ns(kernel_iters); });
  m["xy_route.ns_per_op"] = best_of_3([&] { return xy_route_ns(kernel_iters); });
  m["region_map.ns_per_op"] = best_of_3([&] { return region_map_ns(map_iters); });

  // End-to-end: one workload per NUCA policy at a fixed scale, fresh
  // simulation (no results cache), wall clock + modeled events/sec.
  struct Case {
    const char* key;
    const char* workload;
    system::PolicyKind policy;
  } cases[] = {
      {"gauss_snuca", "gauss", system::PolicyKind::SNuca},
      {"histo_rnuca", "histo", system::PolicyKind::RNuca},
      {"jacobi_tdnuca", "jacobi", system::PolicyKind::TdNuca},
  };
  for (const Case& c : cases) {
    harness::RunConfig cfg;
    cfg.workload = c.workload;
    cfg.policy = c.policy;
    cfg.params.scale = smoke ? 0.1 : 0.25;
    const auto t0 = Clock::now();
    const harness::RunResult r = harness::run_experiment(cfg, /*use_cache=*/false);
    const double wall = ms_since(t0);
    m[std::string("sim.") + c.key + ".wall_ms"] = wall;
    m[std::string("sim.") + c.key + ".events_per_sec"] =
        r.get("sim.events") / (wall / 1e3);
  }

  m["peak_rss_kb"] = peak_rss_kb();

  std::fprintf(stderr,
               "[bench] dispatch %.1f ns/event (%.2fx vs std::function ref), "
               "probe %.1f ns, rrt %.1f ns, route %.1f ns, region %.1f ns\n",
               m["event_dispatch.ns_per_event"],
               m["event_dispatch.speedup_vs_stdfunction"],
               m["cache_probe.ns_per_op"], m["rrt_lookup.ns_per_op"],
               m["xy_route.ns_per_op"], m["region_map.ns_per_op"]);
  std::fprintf(stderr,
               "[bench] sharded traffic %.2fM ev/s serial; speedup t1 %.2fx, "
               "t2 %.2fx, t4 %.2fx (host threads: %u)\n",
               m["sharded_traffic.serial.events_per_sec"] / 1e6,
               m["sharded_traffic.t1.speedup_vs_serial"],
               m["sharded_traffic.t2.speedup_vs_serial"],
               m["sharded_traffic.t4.speedup_vs_serial"],
               std::thread::hardware_concurrency());
  write_json(m, smoke, out_path);
  return 0;
}
