// Google-benchmark microbenchmarks of the tdn::obs recorder, proving the
// "zero-cost when disabled" contract: the instrumented L1-hit path with a
// disabled Recorder attached must match the null-recorder path to within
// run-to-run noise, and a disabled span()/instant() call must compile down
// to a flag check.
#include <benchmark/benchmark.h>

#include <memory>

#include "coherence/coherent_system.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;

namespace {

/// Minimal 2x2 S-NUCA hierarchy, optionally with a Recorder attached.
struct Rig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  std::unique_ptr<coherence::CoherentSystem> sys;

  explicit Rig(obs::Recorder* rec) {
    sys = std::make_unique<coherence::CoherentSystem>(
        eq, net, mesh, mcs, policy, coherence::HierarchyConfig{}, 4, rec);
  }
};

void run_hit_path(benchmark::State& state, obs::Recorder* rec) {
  Rig rig(rec);
  // Warm one line into core 0's L1 so the measured loop is pure hits —
  // the hottest instrumented path in the simulator.
  rig.sys->access(0, 0x1000, 0x1000, AccessKind::Read, [](Cycle) {});
  rig.eq.run();
  for (auto _ : state) {
    Cycle done = 0;
    rig.sys->access(0, 0x1000, 0x1000, AccessKind::Read,
                    [&](Cycle at) { done = at; });
    rig.eq.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

static void BM_L1Hit_NullRecorder(benchmark::State& state) {
  run_hit_path(state, nullptr);
}
BENCHMARK(BM_L1Hit_NullRecorder);

static void BM_L1Hit_DisabledRecorder(benchmark::State& state) {
  obs::Recorder rec;  // all sinks off
  run_hit_path(state, &rec);
}
BENCHMARK(BM_L1Hit_DisabledRecorder);

static void BM_L1Hit_CoherenceTrace(benchmark::State& state) {
  // Upper bound for contrast: full per-transaction instants enabled.
  obs::RecorderConfig cfg;
  cfg.trace = true;
  cfg.trace_coherence = true;
  obs::Recorder rec(cfg);
  run_hit_path(state, &rec);
}
BENCHMARK(BM_L1Hit_CoherenceTrace);

static void BM_DisabledSpan(benchmark::State& state) {
  obs::Recorder rec;
  for (auto _ : state) {
    rec.span(0, "task", "t", 0, 100);
    benchmark::DoNotOptimize(rec.trace_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpan);

static void BM_DisabledInstant(benchmark::State& state) {
  obs::Recorder rec;
  for (auto _ : state) {
    rec.instant(0, "coherence", "GetS");
    benchmark::DoNotOptimize(rec.trace_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledInstant);

static void BM_EnabledSpan(benchmark::State& state) {
  obs::RecorderConfig cfg;
  cfg.trace = true;
  obs::Recorder rec(cfg);
  for (auto _ : state) {
    rec.span(0, "task", "t", 0, 100);
    benchmark::DoNotOptimize(rec.trace_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnabledSpan);
