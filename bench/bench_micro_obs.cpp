// Microbenchmarks of the tdn::obs layer, proving two contracts:
//
//  1. Zero-cost when disabled — the instrumented L1-hit and LLC-miss paths
//     with a disabled Recorder attached must match the null-recorder paths
//     to within run-to-run noise (the overhead ratios hover around 1.0).
//  2. Bounded cost when enabled — histogram recording, latency-attribution
//     stamping, and the end-to-end --latency-report pipeline each get a
//     headline ns/op (or wall-clock) number that the committed baseline
//     gates against.
//
// Self-contained binary (no google-benchmark): emits a machine-readable
// JSON report (schema tdn-bench-obs-v1) consumed by
// scripts/check_perf_regression.py against the committed baseline in
// bench/baselines/BENCH_obs.json.
//
//   bench_micro_obs [--smoke] [--out PATH]
//
//   --smoke   cut iteration counts ~10-20x for CI (noisier; pair with a
//             wide tolerance band)
//   --out     write the JSON report to PATH (default: stdout only)
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "coherence/coherent_system.hpp"
#include "common/prng.hpp"
#include "harness/runner.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Best-of-3 wrapper for the sub-second micro kernels: the minimum is the
/// least noisy location statistic for "how fast can this go".
template <typename F>
double best_of_3(F&& f) {
  double best = f();
  for (int i = 0; i < 2; ++i) best = std::min(best, f());
  return best;
}

/// Minimal 2x2 S-NUCA hierarchy, optionally with a Recorder attached.
struct Rig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  std::unique_ptr<coherence::CoherentSystem> sys;

  explicit Rig(obs::Recorder* rec) {
    sys = std::make_unique<coherence::CoherentSystem>(
        eq, net, mesh, mcs, policy, coherence::HierarchyConfig{}, 4, rec);
  }
};

/// Pure L1 hits — the hottest instrumented path in the simulator. With a
/// disabled (or null) recorder this must cost the same either way.
double l1_hit_ns(obs::Recorder* rec, std::uint64_t iters) {
  Rig rig(rec);
  // Warm one line into core 0's L1 so the measured loop is pure hits.
  rig.sys->access(0, 0x1000, 0x1000, AccessKind::Read, [](Cycle) {});
  rig.eq.run();
  Cycle done = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    rig.sys->access(0, 0x1000, 0x1000, AccessKind::Read,
                    [&](Cycle at) { done = at; });
    rig.eq.run();
  }
  const double ns = ms_since(t0) * 1e6;
  if (done == 0) std::fprintf(stderr, "impossible\n");  // defeat DCE
  return ns / static_cast<double>(iters);
}

/// Streaming LLC misses — every access is a fresh line, so each one walks
/// the full miss path (MSHR, NoC, bank, DRAM) and, when attribution is on,
/// stamps all six in-flight timestamps.
double llc_miss_ns(obs::Recorder* rec, std::uint64_t iters) {
  Rig rig(rec);
  Cycle done = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const Addr a = 0x100000 + i * 64;
    rig.sys->access(0, a, a, AccessKind::Read, [&](Cycle at) { done = at; });
    rig.eq.run();
  }
  const double ns = ms_since(t0) * 1e6;
  if (done == 0) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double hist_add_ns(std::uint64_t iters) {
  obs::LatencyHistogram h;
  SplitMix64 rng(7);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    h.add(rng.next_below(1u << 20));
  }
  const double ns = ms_since(t0) * 1e6;
  if (h.count() != iters) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double hist_percentile_ns(std::uint64_t iters) {
  obs::LatencyHistogram h;
  SplitMix64 rng(8);
  for (int i = 0; i < 100'000; ++i) h.add(rng.next_below(1u << 20));
  Cycle sink = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += h.percentile(0.99);
  }
  const double ns = ms_since(t0) * 1e6;
  if (sink == 0) std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double span_ns(bool enabled, std::uint64_t iters) {
  obs::RecorderConfig cfg;
  cfg.trace = enabled;
  obs::Recorder rec(cfg);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    rec.span(0, "task", "t", 0, 100);
  }
  const double ns = ms_since(t0) * 1e6;
  if (enabled && rec.trace_events() != iters)
    std::fprintf(stderr, "impossible\n");
  return ns / static_cast<double>(iters);
}

double peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss);  // KiB on Linux
}

void write_json(const std::map<std::string, double>& metrics, bool smoke,
                const std::string& out_path) {
  std::string json = "{\n  \"schema\": \"tdn-bench-obs-v1\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"metrics\": {\n";
  std::size_t i = 0;
  for (const auto& [k, v] : metrics) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    json += "    \"" + k + "\": " + buf;
    json += (++i < metrics.size()) ? ",\n" : "\n";
  }
  json += "  }\n}\n";
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json;
    std::fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::uint64_t hit_iters = smoke ? 20'000 : 200'000;
  const std::uint64_t miss_iters = smoke ? 10'000 : 100'000;
  const std::uint64_t hist_iters = smoke ? 2'000'000 : 40'000'000;
  const std::uint64_t pct_iters = smoke ? 100'000 : 2'000'000;
  const std::uint64_t span_iters = smoke ? 5'000'000 : 100'000'000;

  std::map<std::string, double> m;

  // Histogram primitives.
  m["hist_add.ns_per_op"] = best_of_3([&] { return hist_add_ns(hist_iters); });
  m["hist_percentile.ns_per_op"] =
      best_of_3([&] { return hist_percentile_ns(pct_iters); });

  // Disabled trace sink: a span() call must compile down to a flag check.
  m["span_disabled.ns_per_op"] =
      best_of_3([&] { return span_ns(false, span_iters); });
  m["span_enabled.ns_per_op"] =
      best_of_3([&] { return span_ns(true, span_iters / 20); });

  // Coherence hot paths under three recorder states. The disabled ratios
  // are the "below noise" guarantee the issue asks for; the attribution
  // ratio is the price of the six-stamp in-flight tracking on real misses.
  obs::Recorder disabled;  // all sinks off
  obs::RecorderConfig attr_cfg;
  attr_cfg.attribution = true;

  const double hit_null =
      best_of_3([&] { return l1_hit_ns(nullptr, hit_iters); });
  const double hit_off =
      best_of_3([&] { return l1_hit_ns(&disabled, hit_iters); });
  m["l1_hit_null.ns_per_op"] = hit_null;
  m["l1_hit_disabled.ns_per_op"] = hit_off;
  m["l1_hit_disabled.overhead_ratio"] = hit_off / hit_null;

  const double miss_null =
      best_of_3([&] { return llc_miss_ns(nullptr, miss_iters); });
  const double miss_off =
      best_of_3([&] { return llc_miss_ns(&disabled, miss_iters); });
  const double miss_attr = best_of_3([&] {
    obs::Recorder rec(attr_cfg);
    return llc_miss_ns(&rec, miss_iters);
  });
  m["llc_miss_null.ns_per_op"] = miss_null;
  m["llc_miss_disabled.ns_per_op"] = miss_off;
  m["llc_miss_disabled.overhead_ratio"] = miss_off / miss_null;
  m["llc_miss_attribution.ns_per_op"] = miss_attr;
  m["llc_miss_attribution.overhead_ratio"] = miss_attr / miss_null;

  // End-to-end: one full workload with and without the --latency-report
  // pipeline (attribution + critical path + report serialization).
  {
    harness::RunConfig cfg;
    cfg.workload = "gauss";
    cfg.policy = system::PolicyKind::TdNuca;
    cfg.params.scale = smoke ? 0.1 : 0.25;
    const auto t0 = Clock::now();
    (void)harness::run_experiment(cfg, /*use_cache=*/false);
    const double plain_ms = ms_since(t0);

    cfg.obs.latency_report_path = "/tmp/bench_micro_obs_report.json";
    const auto t1 = Clock::now();
    (void)harness::run_experiment(cfg, /*use_cache=*/false);
    const double attr_ms = ms_since(t1);

    m["sim_gauss_tdnuca.wall_ms"] = plain_ms;
    m["sim_gauss_tdnuca_report.wall_ms"] = attr_ms;
    m["sim_gauss_tdnuca_report.overhead_ratio"] = attr_ms / plain_ms;
  }

  m["peak_rss_kb"] = peak_rss_kb();

  std::fprintf(stderr,
               "[bench] hist add %.1f ns, l1 hit %.0f/%.0f ns (null/off), "
               "miss %.0f/%.0f/%.0f ns (null/off/attr), report overhead "
               "%.2fx\n",
               m["hist_add.ns_per_op"], m["l1_hit_null.ns_per_op"],
               m["l1_hit_disabled.ns_per_op"], m["llc_miss_null.ns_per_op"],
               m["llc_miss_disabled.ns_per_op"],
               m["llc_miss_attribution.ns_per_op"],
               m["sim_gauss_tdnuca_report.overhead_ratio"]);
  write_json(m, smoke, out_path);
  return 0;
}
