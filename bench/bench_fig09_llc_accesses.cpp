// Regenerates paper Fig. 9: LLC accesses normalized to S-NUCA.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite_srt();
  harness::NormalizedFigure fig;
  fig.metric = "llc.accesses";
  fig.invert = false;
  fig.policies = {PolicyKind::RNuca, PolicyKind::TdNuca};
  fig.paper_ref = harness::paper::fig9_llc_accesses_td;
  fig.paper_avg = harness::paper::kFig9AvgTd;
  print_normalized("Fig. 9",
                   "LLC accesses normalized to S-NUCA (paper col = TD-NUCA; "
                   "per-bench paper values are figure estimates except KNN "
                   "0.99 / MD5 0.14)",
                   fig, results);
  bench::obs_section(argc, argv);
  return 0;
}
