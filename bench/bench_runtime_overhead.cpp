// Regenerates the paper's Sec. V-E runtime-extension overhead study: the
// runtime performs all TD-NUCA bookkeeping (RTCacheDirectory, placement
// decisions) but never executes the ISA instructions, so the cache behaves
// as S-NUCA; the slowdown vs plain S-NUCA is the software overhead.
// Paper: 0.01% average, below 0.03% in all benchmarks.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite({PolicyKind::SNuca, PolicyKind::TdNucaDryRun});
  harness::print_figure_header(
      "Sec. V-E", "runtime-extension software overhead (dry-run vs S-NUCA)");
  stats::Table table(
      {"bench", "S-NUCA cycles", "dry-run cycles", "overhead"});
  double sum = 0;
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const double s =
        harness::find_result(results, wl, PolicyKind::SNuca).get("sim.cycles");
    const double d = harness::find_result(results, wl, PolicyKind::TdNucaDryRun)
                         .get("sim.cycles");
    const double ovh = d / s - 1.0;
    sum += ovh;
    table.add_row({wl, stats::Table::num(s, 0), stats::Table::num(d, 0),
                   stats::Table::num(100.0 * ovh, 3) + "%"});
  }
  table.add_row({"mean", "", "",
                 stats::Table::num(100.0 * sum / names.size(), 3) + "%"});
  std::printf("%s", table.to_string().c_str());
  std::printf("paper: 0.01%% average, <0.03%% everywhere (dominated by the "
              "placement-decision algorithm)\n");
  bench::obs_section(argc, argv);
  return 0;
}
