// Open-arrival serving figure (docs/serving.md): tail sojourn, goodput and
// shed rate when task-graph requests arrive on a live arrival process and an
// admission controller guards a bounded pending queue.
//
// Two tables beyond the paper's closed-run scope:
//   A. offered-load sweep — one arrival process, tightening mean gap, both
//      admission policies: where the knee is and what shedding buys.
//   B. arrival-process x NUCA-policy grid — the same offered load shaped as
//      poisson / bursty MMPP / diurnal replay under each mapping policy,
//      plus an adaptive TD-NUCA<->R-NUCA switching row.
//
//   --smoke    one serving run: verify admission conservation (offered =
//              shed + completed), queue bound, tail ordering and per-tenant
//              QoS splits. Exit status reports the outcome (CI serving step).
//              Honors the shared checkpoint flags (--checkpoint-dir,
//              --checkpoint-every, --resume; bench_common.hpp) and prints
//              the config fingerprint and a metrics hash, so the CI
//              kill-and-resume job can diff an interrupted+resumed run
//              against an uninterrupted reference.
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "common/prng.hpp"
#include "serve/options.hpp"

namespace {

using namespace bench;
using serve::AdmissionPolicy;

constexpr const char* kTenants = "gauss+histo";
constexpr Cycle kHorizon = 600'000;
// Small request graphs (~1/8 of the closed-run footprint) keep the mean
// service time well under the lightest arrival gap so the sweep actually
// crosses the knee instead of starting saturated.
constexpr double kRequestScale = 0.02;

harness::RunConfig serve_cfg(const std::string& arrival, PolicyKind pol,
                             AdmissionPolicy adm = AdmissionPolicy::Reject) {
  harness::RunConfig cfg;
  cfg.workload = kTenants;
  cfg.policy = pol;
  cfg.serve.arrival = arrival;
  cfg.serve.horizon = kHorizon;
  cfg.serve.admission = adm;
  cfg.serve.request_scale = kRequestScale;
  return cfg;
}

std::uint64_t metrics_hash(const std::map<std::string, double>& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

int smoke() {
  std::printf("serving smoke: %s, poisson arrivals, TD-NUCA\n", kTenants);
  auto cfg = serve_cfg("poisson:gap=25k", PolicyKind::TdNuca);
  cfg.serve.horizon = 200'000;
  cfg.ckpt = ckpt_flags();
  if (!cfg.ckpt.dir.empty() && cfg.ckpt.every == 0)
    cfg.ckpt.every = 50'000;  // --checkpoint-dir alone gets a sane cadence
  harness::RunResult res;
  try {
    res = harness::run_experiment(cfg);
  } catch (const ckpt::InterruptedError& e) {
    std::printf("serving smoke: INTERRUPTED (%s)\n", e.what());
    return 130;
  }
  std::printf("  fingerprint: 0x%016llx\n",
              static_cast<unsigned long long>(cfg.fingerprint()));
  std::printf("  metrics hash: 0x%016llx over %zu keys\n",
              static_cast<unsigned long long>(metrics_hash(res.metrics)),
              res.metrics.size());
  bool ok = true;
  auto expect = [&ok](bool cond, const char* what) {
    std::printf("  %-42s %s\n", what, cond ? "ok" : "FAILED");
    if (!cond) ok = false;
  };
  expect(res.get("serve.offered") > 0.0, "requests arrived");
  expect(res.get("serve.offered") ==
             res.get("serve.shed") + res.get("serve.completed"),
         "admission conserves requests");
  expect(res.get("serve.queue.max_depth") <= cfg.serve.max_pending,
         "pending queue never exceeds its bound");
  const double p50 = res.get("serve.sojourn.p50");
  const double p99 = res.get("serve.sojourn.p99");
  const double p999 = res.get("serve.sojourn.p999");
  expect(p50 > 0.0 && p99 >= p50 && p999 >= p99,
         "sojourn tail percentiles are ordered");
  expect(res.get("serve.goodput") > 0.0, "goodput is positive");
  expect(res.get("serve.tenant0.offered") + res.get("serve.tenant1.offered") ==
             res.get("serve.offered"),
         "per-tenant offered sums to total");
  expect(res.get("serve.tenant0.completed") +
                 res.get("serve.tenant1.completed") ==
             res.get("serve.completed"),
         "per-tenant completed sums to total");
  expect(res.get("tasks.completed") > 0.0, "request task graphs executed");
  std::printf("serving smoke: %s (offered=%.0f completed=%.0f p99=%.0f)\n",
              ok ? "PASS" : "FAIL", res.get("serve.offered"),
              res.get("serve.completed"), p99);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return smoke();
  }

  harness::print_figure_header(
      "Serving",
      "open-arrival serving: p99/p999 sojourn (cycles), goodput "
      "(requests/Mcycle) and shed rate under admission control");

  // --- Table A: offered-load sweep ---------------------------------------
  const std::vector<std::string> load_gaps = {"100k", "50k", "25k", "12k"};
  const std::vector<AdmissionPolicy> admissions = {AdmissionPolicy::Reject,
                                                   AdmissionPolicy::DropOldest};
  std::vector<harness::RunConfig> cfgs;
  for (const auto& gap : load_gaps)
    for (const AdmissionPolicy adm : admissions)
      cfgs.push_back(
          serve_cfg("poisson:gap=" + gap, PolicyKind::TdNuca, adm));

  // --- Table B: arrival process x policy (+ adaptive row) -----------------
  const std::vector<std::pair<std::string, std::string>> processes = {
      {"poisson", "poisson:gap=20k"},
      {"mmpp", "mmpp:gap=40k,burst=5k,dwell=60k"},
      {"diurnal", "diurnal:gap=20k,amp=0.8,period=200k"}};
  const std::vector<PolicyKind> policies = {
      PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca};
  const std::size_t grid_base = cfgs.size();
  for (const auto& [name, spec] : processes)
    for (const PolicyKind pol : policies) cfgs.push_back(serve_cfg(spec, pol));
  // Adaptive: tenant 1 dominates arrivals, so the epoch sampler switches
  // future dispatches off TD-NUCA; compare against the static rows above.
  const std::size_t adaptive_idx = cfgs.size();
  {
    auto cfg = serve_cfg("mmpp:gap=40k,burst=5k,dwell=60k", PolicyKind::TdNuca);
    cfg.serve.weights = "1:3";
    cfg.serve.adaptive = true;
    cfgs.push_back(std::move(cfg));
  }

  const auto results = run_all(cfgs);

  stats::Table load({"mean gap", "admission", "offered", "shed rate",
                     "svc mean", "p99 sojourn", "p999 sojourn", "goodput"});
  for (std::size_t g = 0; g < load_gaps.size(); ++g) {
    for (std::size_t a = 0; a < admissions.size(); ++a) {
      const auto& r = results[g * admissions.size() + a];
      load.add_row({load_gaps[g], serve::to_string(admissions[a]),
                    stats::Table::num(r.get("serve.offered"), 0),
                    stats::Table::num(r.get("serve.shed_rate"), 3),
                    stats::Table::num(r.get("serve.service.mean"), 0),
                    stats::Table::num(r.get("serve.sojourn.p99"), 0),
                    stats::Table::num(r.get("serve.sojourn.p999"), 0),
                    stats::Table::num(r.get("serve.goodput"), 2)});
    }
  }
  std::printf("offered-load sweep — %s, poisson arrivals, TD-NUCA:\n%s\n",
              kTenants, load.to_string().c_str());

  stats::Table grid({"arrivals", "policy", "p99 sojourn", "p999 sojourn",
                     "goodput", "shed rate", "switches"});
  for (std::size_t p = 0; p < processes.size(); ++p) {
    for (std::size_t k = 0; k < policies.size(); ++k) {
      const auto& r = results[grid_base + p * policies.size() + k];
      grid.add_row({processes[p].first, system::to_string(policies[k]),
                    stats::Table::num(r.get("serve.sojourn.p99"), 0),
                    stats::Table::num(r.get("serve.sojourn.p999"), 0),
                    stats::Table::num(r.get("serve.goodput"), 2),
                    stats::Table::num(r.get("serve.shed_rate"), 3),
                    stats::Table::num(r.get("serve.policy_switches"), 0)});
    }
  }
  {
    const auto& r = results[adaptive_idx];
    grid.add_row({"mmpp 1:3", "adaptive td<->r",
                  stats::Table::num(r.get("serve.sojourn.p99"), 0),
                  stats::Table::num(r.get("serve.sojourn.p999"), 0),
                  stats::Table::num(r.get("serve.goodput"), 2),
                  stats::Table::num(r.get("serve.shed_rate"), 3),
                  stats::Table::num(r.get("serve.policy_switches"), 0)});
  }
  std::printf("arrival process x policy — %s:\n%s", kTenants,
              grid.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
