// Regenerates paper Table I: the simulated machine configuration, printing
// the paper's gem5 parameters next to this reproduction's scaled values
// (scaling rules in DESIGN.md Sec. 6).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/table.hpp"
#include "system/config.hpp"

int main(int argc, char** argv) {
  using namespace tdn;
  bench::init(argc, argv);
  system::SystemConfig cfg;
  stats::Table t({"parameter", "paper (gem5)", "this reproduction"});
  t.add_row({"cores", "16 OoO x86, 4-wide, 2 GHz",
             "16 in-order timing cores, load window " +
                 std::to_string(cfg.core.load_window)});
  t.add_row({"L1 caches", "32KB, 8-way, 64B, 2 cycles",
             std::to_string(cfg.hierarchy.l1.size_bytes / 1024) + "KB, " +
                 std::to_string(cfg.hierarchy.l1.associativity) + "-way, 64B, " +
                 std::to_string(cfg.hierarchy.l1_latency) + " cycles"});
  t.add_row({"TLBs", "64-entry fully assoc., 1 cycle",
             std::to_string(cfg.tlb.entries) + "-entry fully assoc., " +
                 std::to_string(cfg.tlb.hit_latency) + " cycle"});
  t.add_row({"LLC", "32MB inclusive, 2MB/core banks, 16-way, 15 cyc, pLRU",
             std::to_string(cfg.hierarchy.llc_bank.size_bytes *
                            cfg.num_cores() / (1024 * 1024)) +
                 "MB inclusive, " +
                 std::to_string(cfg.hierarchy.llc_bank.size_bytes / 1024) +
                 "KB/core banks, 16-way, " +
                 std::to_string(cfg.hierarchy.llc_latency) + " cyc, pLRU"});
  t.add_row({"coherence", "MESI, blocking states, silent evictions",
             "directory MESI, blocking directory, silent clean evictions"});
  t.add_row({"NoC", "4x4 mesh, link 1 cycle, router 1 cycle",
             std::to_string(cfg.mesh_w) + "x" + std::to_string(cfg.mesh_h) +
                 " mesh, link " + std::to_string(cfg.network.link_latency) +
                 " cycle, router " +
                 std::to_string(cfg.network.router_latency) + " cycle, " +
                 std::to_string(cfg.network.link_bytes_per_cycle) + "B/cyc links"});
  t.add_row({"RRT", "64 entries/core, 1 cycle",
             std::to_string(cfg.tdnuca.rrt_entries) + " entries/core, " +
                 std::to_string(cfg.tdnuca.rrt_latency) + " cycle"});
  t.add_row({"memory", "(gem5 DRAM)",
             std::to_string(cfg.num_memory_controllers) +
                 " MCs at mesh corners, " +
                 std::to_string(cfg.dram.access_latency) + " cycle access"});
  t.add_row({"pages", "4KB (Linux default allocator)",
             std::to_string(cfg.page_table.page_size / 1024) +
                 "KB, first-touch, fragmentation " +
                 stats::Table::num(cfg.page_table.fragmentation, 2)});
  std::printf("=== Table I: simulator configuration ===\n%s",
              t.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
