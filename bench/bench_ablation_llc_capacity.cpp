// Ablation: LLC bank capacity. TD-NUCA's bypass advantage is strongest when
// the baseline is capacity-stressed; as banks grow and the working set fits,
// S-NUCA recovers and the bypass margin narrows (the paper sizes every input
// set well beyond the LLC for exactly this reason, Table II).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  harness::print_figure_header(
      "Ablation", "LLC bank capacity (workload: redblack, speedup vs S-NUCA "
                  "at the same capacity)");
  stats::Table table(
      {"bank KiB", "total MiB", "S-NUCA cycles", "TD-NUCA cycles", "speedup"});
  const std::vector<Addr> bank_kibs = {128, 256, 512, 1024};
  std::vector<harness::RunConfig> cfgs;
  for (const Addr bank_kib : bank_kibs) {
    for (const auto pol : {PolicyKind::SNuca, PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "redblack";
      cfg.policy = pol;
      cfg.sys.hierarchy.llc_bank.size_bytes = bank_kib * kKiB;
      cfgs.push_back(std::move(cfg));
    }
  }
  const auto results = run_all(cfgs);
  for (std::size_t r = 0; r < bank_kibs.size(); ++r) {
    const Addr bank_kib = bank_kibs[r];
    const double snuca = results[2 * r].get("sim.cycles");
    const double tdnuca = results[2 * r + 1].get("sim.cycles");
    table.add_row({std::to_string(bank_kib),
                   stats::Table::num(bank_kib * 16 / 1024.0, 1),
                   stats::Table::num(snuca, 0),
                   stats::Table::num(tdnuca, 0),
                   stats::Table::num(snuca / tdnuca, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
