// Ablation: LLC bank capacity. TD-NUCA's bypass advantage is strongest when
// the baseline is capacity-stressed; as banks grow and the working set fits,
// S-NUCA recovers and the bypass margin narrows (the paper sizes every input
// set well beyond the LLC for exactly this reason, Table II).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  harness::print_figure_header(
      "Ablation", "LLC bank capacity (workload: redblack, speedup vs S-NUCA "
                  "at the same capacity)");
  stats::Table table(
      {"bank KiB", "total MiB", "S-NUCA cycles", "TD-NUCA cycles", "speedup"});
  for (const Addr bank_kib : {128ull, 256ull, 512ull, 1024ull}) {
    double cycles[2];
    int i = 0;
    for (const auto pol : {PolicyKind::SNuca, PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "redblack";
      cfg.policy = pol;
      cfg.sys.hierarchy.llc_bank.size_bytes = bank_kib * kKiB;
      cycles[i++] = harness::run_experiment(cfg).get("sim.cycles");
    }
    table.add_row({std::to_string(bank_kib),
                   stats::Table::num(bank_kib * 16 / 1024.0, 1),
                   stats::Table::num(cycles[0], 0),
                   stats::Table::num(cycles[1], 0),
                   stats::Table::num(cycles[0] / cycles[1], 3)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::obs_section(argc, argv);
  return 0;
}
