// Ablation: physical page fragmentation (DESIGN.md decision 5). Fragmented
// dependencies need multiple collapsed RRT entries, raising occupancy and
// register cost; when entries no longer fit, ranges silently fall back to
// S-NUCA interleaving (paper Sec. III-B2 / V-E).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  harness::print_figure_header(
      "Ablation", "page-table fragmentation under TD-NUCA (workload: lu)");
  stats::Table table({"fragmentation", "cycles", "rrt mean occ", "rrt max occ",
                      "runtime overhead cyc"});
  const std::vector<double> frags = {0.0, 0.15, 0.5, 0.9};
  std::vector<harness::RunConfig> cfgs;
  for (const double frag : frags) {
    harness::RunConfig cfg;
    cfg.workload = "lu";
    cfg.policy = PolicyKind::TdNuca;
    cfg.sys.page_table.fragmentation = frag;
    cfgs.push_back(std::move(cfg));
  }
  const auto results = run_all(cfgs);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    const double frag = frags[i];
    const auto& r = results[i];
    table.add_row({stats::Table::num(frag, 2),
                   stats::Table::num(r.get("sim.cycles"), 0),
                   stats::Table::num(r.get("rrt.mean_occupancy"), 1),
                   stats::Table::num(r.get("rrt.max_occupancy"), 0),
                   stats::Table::num(r.get("tdnuca.runtime_overhead_cycles"),
                                     0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: occupancy and register overhead grow with "
              "fragmentation; performance degrades only once the 64-entry "
              "RRTs overflow.\n");
  bench::obs_section(argc, argv);
  return 0;
}
