// Regenerates the paper's Sec. V-E cache-flush overhead study: fraction of
// execution time the flush engines spend processing tdnuca_flush ranges
// (paper: < 0.1% everywhere except Histo at 0.49%, which has the highest
// proportion of Out dependencies).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  init(argc, argv);
  const auto results = suite({PolicyKind::TdNuca});
  harness::print_figure_header("Sec. V-E",
                               "flush-engine busy time as % of execution");
  stats::Table table({"bench", "flush busy cycles", "exec cycles (x16 cores)",
                      "percent"});
  const auto& names = workloads::paper_workload_names();
  for (const auto& wl : names) {
    const auto& r = harness::find_result(results, wl, PolicyKind::TdNuca);
    const double busy = r.get("flush.busy_cycles");
    const double total = r.get("sim.cycles") * 16.0;
    table.add_row({wl, stats::Table::num(busy, 0), stats::Table::num(total, 0),
                   stats::Table::num(100.0 * busy / total, 3) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("paper: <0.1%% in all benchmarks except Histo (0.49%%)\n");
  bench::obs_section(argc, argv);
  return 0;
}
