// Sharded-engine tests: the bit-identity contract (serial EventQueue vs
// ShardedEventQueue at every thread count), run_until overrun/observer
// parity, the lookahead protocol, the Network channel hook, and the
// end-to-end guarantee that `sim.threads` changes nothing but wall clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "harness/runner.hpp"
#include "noc/domain_map.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/mesh_traffic.hpp"
#include "sim/sharded_event_queue.hpp"

namespace tdn {
namespace {

using sim::EventQueue;
using sim::MeshTrafficParams;
using sim::MeshTrafficResult;
using sim::ShardedEventQueue;

TEST(ShardedEventQueue, RunsAcrossDomainsWindowByWindow) {
  ShardedEventQueue engine(/*domains=*/2, /*threads=*/1, /*lookahead=*/4);
  std::vector<int> order;
  engine.domain(0).schedule_at(10, [&] { order.push_back(1); });
  engine.domain(1).schedule_at(5, [&] { order.push_back(0); });
  engine.domain(0).schedule_at(5, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 10u);
  // Within one window, cross-domain interleaving of side effects is
  // unspecified — actions may only touch their own domain's state (this
  // shared vector is a test-only violation). What IS guaranteed: the
  // barrier between windows is a hard order, so both cycle-5 events
  // (window 1) precede the cycle-10 event (window 2); per-domain order
  // and the (when, seq) stamps match serial exactly (see the MeshTraffic
  // and full-system bit-identity tests below).
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 1);
  std::vector<int> window1(order.begin(), order.begin() + 2);
  std::sort(window1.begin(), window1.end());
  EXPECT_EQ(window1, (std::vector<int>{0, 2}));
  EXPECT_EQ(engine.executed(), 3u);
  EXPECT_GE(engine.windows(), 2u);
  EXPECT_TRUE(engine.empty());
}

TEST(ShardedEventQueue, CrossDomainSendDeliversWithSerialOrdering) {
  ShardedEventQueue engine(2, 1, /*lookahead=*/3);
  std::vector<std::pair<int, Cycle>> log;
  engine.domain(1).schedule_at(12, [&] { log.emplace_back(9, 12); });
  engine.domain(0).schedule_at(10, [&, e = &engine] {
    e->schedule_cross(0, 1, 13, [&] {
      log.emplace_back(1, engine.domain(1).now());
    });
  });
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, Cycle>{9, 12}));
  EXPECT_EQ(log[1], (std::pair<int, Cycle>{1, 13}));
  EXPECT_EQ(engine.cross_messages(), 1u);
}

TEST(ShardedEventQueue, LookaheadViolationIsARequireError) {
  ShardedEventQueue engine(2, 1, /*lookahead=*/5);
  engine.domain(0).schedule_at(10, [&e = engine] {
    // One cycle of delay is inside the conservative horizon: domain 1 may
    // already be executing cycle 11 concurrently. The engine must refuse.
    e.schedule_cross(0, 1, 11, [] {});
  });
  EXPECT_THROW(engine.run(), RequireError);
}

// --- run_until parity with the serial queue ------------------------------

struct OverrunProgram {
  // Schedules the same four events in the same call order on either one
  // serial queue or two engine domains (d0: real@10 + observer@40,
  // d1: real@100 + observer@150).
  template <typename S0, typename S1>
  static void build(S0&& d0, S1&& d1, std::vector<Cycle>* ran) {
    d0.schedule_at(10, [ran, &d0] { ran->push_back(d0.now()); });
    d1.schedule_at(100, [ran, &d1] { ran->push_back(d1.now()); });
    d0.schedule_observer_at(40, [ran, &d0] { ran->push_back(d0.now()); });
    d1.schedule_observer_at(150, [ran, &d1] { ran->push_back(d1.now()); });
  }
};

TEST(ShardedEventQueue, OverrunAndResumeMatchSerialSemantics) {
  // Serial reference.
  EventQueue eq;
  std::vector<Cycle> serial_ran;
  OverrunProgram::build(eq, eq, &serial_ran);
  EXPECT_THROW(eq.run_until(50), RequireError);

  ShardedEventQueue engine(2, 1, /*lookahead=*/5);
  std::vector<Cycle> sharded_ran;
  OverrunProgram::build(engine.domain(0), engine.domain(1), &sharded_ran);
  EXPECT_THROW(engine.run_until(50), RequireError);

  // The overrun guard is non-destructive and the in-limit observer ran.
  EXPECT_EQ(sharded_ran, serial_ran);
  EXPECT_EQ(engine.executed(), eq.executed());
  EXPECT_EQ(engine.pending(), eq.pending());
  EXPECT_EQ(engine.observer_pending(), eq.observer_pending());
  EXPECT_EQ(engine.observer_dropped(), eq.observer_dropped());
  EXPECT_EQ(engine.now(), eq.now());

  // Resume with a higher limit: both complete identically.
  EXPECT_EQ(engine.run_until(200), eq.run_until(200));
  EXPECT_EQ(sharded_ran, serial_ran);
  EXPECT_EQ(engine.executed(), eq.executed());
  EXPECT_EQ(engine.observer_dropped(), eq.observer_dropped());
  EXPECT_TRUE(engine.empty());
}

TEST(ShardedEventQueue, BeyondLimitObserversDroppedLikeSerial) {
  EventQueue eq;
  eq.schedule_at(10, [] {});
  eq.schedule_at(20, [] {});
  eq.schedule_observer_at(100, [] {});
  const Cycle serial_end = eq.run_until(50);

  ShardedEventQueue engine(2, 1, /*lookahead=*/4);
  engine.domain(0).schedule_at(10, [] {});
  engine.domain(1).schedule_at(20, [] {});
  engine.domain(0).schedule_observer_at(100, [] {});
  EXPECT_EQ(engine.run_until(50), serial_end);
  EXPECT_EQ(engine.executed(), eq.executed());
  EXPECT_EQ(engine.observer_dropped(), eq.observer_dropped());
  EXPECT_EQ(engine.observer_dropped(), 1u);
  EXPECT_TRUE(engine.empty());
}

// --- MeshTraffic: genuinely multi-domain bit-identity --------------------

TEST(ShardedEventQueue, MeshTrafficBitIdenticalAcrossThreadCounts) {
  MeshTrafficParams p;
  p.width = 6;
  p.height = 6;
  p.packets_per_tile = 3;
  p.ttl = 24;
  p.work = 8;
  p.seed = 42;
  const MeshTrafficResult ref = sim::run_mesh_traffic_serial(p);
  // Every packet arrives once at injection and once per hop.
  EXPECT_EQ(ref.events, 6ull * 6 * 3 * (24 + 1));
  for (const unsigned threads : {1u, 2u, 4u}) {
    const MeshTrafficResult r = sim::run_mesh_traffic_sharded(p, threads);
    EXPECT_EQ(r.tile_digest, ref.tile_digest) << "threads=" << threads;
    EXPECT_EQ(r.events, ref.events) << "threads=" << threads;
    EXPECT_EQ(r.final_cycle, ref.final_cycle) << "threads=" << threads;
    EXPECT_EQ(r.fingerprint(), ref.fingerprint()) << "threads=" << threads;
  }
}

TEST(ShardedEventQueue, MeshTrafficIdentityHoldsAcrossSeeds) {
  for (const std::uint64_t seed : {7ull, 11ull, 13ull}) {
    MeshTrafficParams p;
    p.width = 4;
    p.height = 4;
    p.packets_per_tile = 2;
    p.ttl = 16;
    p.work = 4;
    p.seed = seed;
    const MeshTrafficResult ref = sim::run_mesh_traffic_serial(p);
    const MeshTrafficResult r = sim::run_mesh_traffic_sharded(p, 4);
    EXPECT_EQ(r.fingerprint(), ref.fingerprint()) << "seed=" << seed;
  }
}

// --- Network channel hook ------------------------------------------------

TEST(ShardedEventQueue, NetworkChannelProtocolMatchesSerialTiming) {
  // All traffic originates on tile 0 so every link/stat update happens in
  // domain 0's window order — the serial restriction — and deliveries to
  // tiles 1..3 travel through the engine channels. Per-tile machine
  // decomposition beyond this (multiple sending domains sharing links) is
  // the staged ROADMAP follow-on.
  const noc::Mesh mesh(2, 2);
  const noc::NetworkConfig ncfg{};
  using Arrivals = std::vector<std::pair<CoreId, Cycle>>;
  const auto drive = [](noc::Network& net, EventQueue& sender_q,
                        Arrivals& arrivals, auto now_of_dst) {
    for (int burst = 0; burst < 3; ++burst) {
      sender_q.schedule_at(static_cast<Cycle>(1 + burst * 4),
                           [&net, &arrivals, now_of_dst, burst] {
        for (CoreId dst = 1; dst < 4; ++dst) {
          net.send(0, dst,
                   burst % 2 == 0 ? noc::MsgClass::Data
                                  : noc::MsgClass::Control,
                   [&arrivals, dst, now_of_dst] {
                     arrivals.emplace_back(dst, now_of_dst(dst));
                   });
        }
      });
    }
  };

  // Serial reference.
  EventQueue eq;
  noc::Network serial_net(mesh, eq, ncfg);
  Arrivals serial_arrivals;
  drive(serial_net, eq, serial_arrivals, [&eq](CoreId) { return eq.now(); });
  eq.run();

  // Sharded: one domain per tile, channel deliveries through the engine.
  const noc::DomainMap dmap = noc::DomainMap::per_tile(mesh);
  ShardedEventQueue engine(mesh.tiles(), /*threads=*/1,
                           noc::DomainMap::min_lookahead(ncfg));
  noc::Network net(mesh, engine.domain(0), ncfg);
  net.set_shard(&engine, &dmap);
  Arrivals sharded_arrivals;
  drive(net, engine.domain(0), sharded_arrivals,
        [&engine](CoreId dst) { return engine.domain(dst).now(); });
  engine.run();
  net.set_shard(nullptr, nullptr);

  EXPECT_GT(engine.cross_messages(), 0u);
  // Arrival cycles are identical; arrival *order across domains* within a
  // window is by domain, so compare as sets.
  std::sort(serial_arrivals.begin(), serial_arrivals.end());
  std::sort(sharded_arrivals.begin(), sharded_arrivals.end());
  EXPECT_EQ(sharded_arrivals, serial_arrivals);
  EXPECT_EQ(net.messages(), serial_net.messages());
  EXPECT_EQ(net.total_router_bytes(), serial_net.total_router_bytes());
  EXPECT_EQ(net.total_hops(), serial_net.total_hops());
  EXPECT_EQ(net.mean_latency(), serial_net.mean_latency());
}

// --- Full system: sim.threads is execution-only --------------------------

std::uint64_t metrics_hash(const std::map<std::string, double>& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

TEST(ShardedSystem, ConfigFingerprintIsThreadNeutral) {
  // Like --jobs, sim.threads must never enter the fingerprint: results are
  // bit-identical across thread counts, so all counts share cache entries
  // and goldens (threads=1 is the exact serial path that minted them).
  harness::RunConfig a;
  a.workload = "gauss";
  a.sys.sim.threads = 1;
  harness::RunConfig b = a;
  b.sys.sim.threads = 4;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ShardedSystem, MetricsBitIdenticalAcrossThreadCounts) {
  // >= 3 policies x >= 2 workloads x >= 3 seeds, each compared across
  // threads in {1, 2, 4}. The cache must be bypassed: fingerprints are
  // thread-neutral by design, so a cached threads=1 result would mask a
  // divergence.
  const system::PolicyKind policies[] = {system::PolicyKind::SNuca,
                                         system::PolicyKind::RNuca,
                                         system::PolicyKind::TdNuca};
  const char* workloads[] = {"gauss", "histo"};
  const std::uint64_t seeds[] = {7, 11, 13};
  for (const auto policy : policies) {
    for (const char* workload : workloads) {
      for (const std::uint64_t seed : seeds) {
        harness::RunConfig cfg;
        cfg.workload = workload;
        cfg.policy = policy;
        cfg.params.scale = 0.125;
        cfg.params.seed = seed;
        cfg.sys.sim.threads = 1;
        const harness::RunResult ref =
            harness::run_experiment(cfg, /*use_cache=*/false);
        const std::uint64_t ref_hash = metrics_hash(ref.metrics);
        for (const unsigned threads : {2u, 4u}) {
          cfg.sys.sim.threads = threads;
          const harness::RunResult r =
              harness::run_experiment(cfg, /*use_cache=*/false);
          EXPECT_EQ(metrics_hash(r.metrics), ref_hash)
              << cfg.describe() << " threads=" << threads;
          EXPECT_EQ(r.get("sim.cycles"), ref.get("sim.cycles"))
              << cfg.describe() << " threads=" << threads;
          EXPECT_EQ(r.get("sim.events"), ref.get("sim.events"))
              << cfg.describe() << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tdn
