// Tests of the TiledSystem builder: all policy kinds construct and run,
// configurations fingerprint distinctly, stats export, and runs are
// bit-deterministic.
#include <gtest/gtest.h>

#include "system/tiled_system.hpp"

using namespace tdn;
using namespace tdn::system;

namespace {
void tiny_program(TiledSystem& sys, int tasks = 8) {
  auto& rt = sys.runtime();
  for (int i = 0; i < tasks; ++i) {
    const AddrRange r = sys.vspace().allocate(16 * kKiB, 64, "r");
    const DepId d = rt.region(r, "r");
    core::TaskProgram p;
    core::AccessPhase ph;
    ph.range = r;
    ph.kind = (i % 2 != 0) ? AccessKind::Write : AccessKind::Read;
    p.add_phase(ph);
    rt.create_task("t", {{d, i % 2 != 0 ? DepUse::Out : DepUse::In}},
                   std::move(p));
  }
}
}  // namespace

TEST(TiledSystem, AllPolicyKindsRun) {
  for (const auto kind :
       {PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::TdNuca,
        PolicyKind::TdNucaBypassOnly, PolicyKind::TdNucaDryRun}) {
    SystemConfig cfg;
    cfg.policy = kind;
    TiledSystem sys(cfg);
    tiny_program(sys);
    const Cycle c = sys.run(/*cycle_limit=*/50'000'000);
    EXPECT_GT(c, 0u) << to_string(kind);
    EXPECT_TRUE(sys.completed());
  }
}

TEST(TiledSystem, PolicyAccessorsMatchKind) {
  SystemConfig cfg;
  cfg.policy = PolicyKind::RNuca;
  TiledSystem sys(cfg);
  EXPECT_NE(sys.rnuca_policy(), nullptr);
  EXPECT_EQ(sys.tdnuca_policy(), nullptr);

  cfg.policy = PolicyKind::TdNuca;
  TiledSystem sys2(cfg);
  EXPECT_NE(sys2.tdnuca_policy(), nullptr);
  EXPECT_NE(sys2.tdnuca_hooks(), nullptr);
  EXPECT_EQ(sys2.rnuca_policy(), nullptr);
}

TEST(TiledSystem, DeterministicAcrossRuns) {
  auto run_once = [] {
    SystemConfig cfg;
    cfg.policy = PolicyKind::TdNuca;
    TiledSystem sys(cfg);
    tiny_program(sys, 16);
    sys.run();
    return sys.collect_stats().all();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(TiledSystem, FingerprintSensitivity) {
  SystemConfig a;
  SystemConfig b;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.tdnuca.rrt_latency = 4;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  SystemConfig c;
  c.policy = PolicyKind::TdNuca;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  SystemConfig d;
  d.hierarchy.llc_bank.size_bytes = 512 * kKiB;
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(TiledSystem, CollectStatsHasHeadlineKeys) {
  SystemConfig cfg;
  cfg.policy = PolicyKind::TdNuca;
  TiledSystem sys(cfg);
  tiny_program(sys);
  sys.run();
  const auto r = sys.collect_stats();
  for (const char* key :
       {"sim.cycles", "llc.accesses", "llc.hit_ratio", "nuca.mean_distance",
        "noc.router_bytes", "dram.accesses", "energy.llc_pj", "energy.noc_pj",
        "tasks.completed", "rrt.lookups", "tdnuca.bypass_placements"}) {
    EXPECT_TRUE(r.has(key)) << key;
  }
  EXPECT_DOUBLE_EQ(r.get("tasks.completed"), 8.0);
}

TEST(TiledSystem, EnergyBreakdownPositive) {
  SystemConfig cfg;
  TiledSystem sys(cfg);
  tiny_program(sys);
  sys.run();
  const auto e = sys.energy();
  EXPECT_GT(e.llc_pj, 0.0);
  EXPECT_GT(e.noc_pj, 0.0);
  EXPECT_GT(e.dram_pj, 0.0);
  EXPECT_GT(e.total_pj(), e.llc_pj);
  EXPECT_DOUBLE_EQ(e.rrt_pj, 0.0);  // S-NUCA has no RRTs
}

TEST(TiledSystem, RrtEnergyOnlyForTdNuca) {
  SystemConfig cfg;
  cfg.policy = PolicyKind::TdNuca;
  TiledSystem sys(cfg);
  tiny_program(sys);
  sys.run();
  EXPECT_GT(sys.energy().rrt_pj, 0.0);
}

TEST(TiledSystem, SmallerMeshWorks) {
  SystemConfig cfg;
  cfg.mesh_w = 2;
  cfg.mesh_h = 2;
  cfg.num_memory_controllers = 2;
  cfg.policy = PolicyKind::TdNuca;
  TiledSystem sys(cfg);
  tiny_program(sys);
  EXPECT_GT(sys.run(), 0u);
}

TEST(TiledSystem, CycleLimitGuards) {
  SystemConfig cfg;
  TiledSystem sys(cfg);
  tiny_program(sys);
  EXPECT_THROW(sys.run(/*cycle_limit=*/10), RequireError);
}
