// Unit tests: region-map dependence tracking, TDG construction, dynamic
// dispatch, phases (taskwait) and schedulers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "coherence/coherent_system.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "runtime/region_map.hpp"
#include "runtime/runtime_system.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;
using namespace tdn::runtime;

TEST(RegionMap, RawEdge) {
  RegionMap rm;
  EXPECT_TRUE(rm.access({0, 100}, 0, true).empty());   // writer
  const auto preds = rm.access({0, 100}, 1, false);    // reader
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
}

TEST(RegionMap, WarAndWawEdges) {
  RegionMap rm;
  rm.access({0, 100}, 0, true);
  rm.access({0, 100}, 1, false);
  rm.access({0, 100}, 2, false);
  const auto preds = rm.access({0, 100}, 3, true);  // WAR on 1,2; WAW on 0
  EXPECT_EQ(preds.size(), 3u);
  EXPECT_NE(std::find(preds.begin(), preds.end(), 0), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), 1), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), 2), preds.end());
}

TEST(RegionMap, ReadersDoNotDependOnReaders) {
  RegionMap rm;
  rm.access({0, 64}, 0, false);
  EXPECT_TRUE(rm.access({0, 64}, 1, false).empty());
}

TEST(RegionMap, PartialOverlapSplits) {
  RegionMap rm;
  rm.access({0, 100}, 0, true);
  rm.access({100, 200}, 1, true);
  const auto preds = rm.access({50, 150}, 2, false);  // straddles both
  EXPECT_EQ(preds.size(), 2u);
  EXPECT_GT(rm.interval_count(), 2u);
}

TEST(RegionMap, DisjointRangesIndependent) {
  RegionMap rm;
  rm.access({0, 64}, 0, true);
  EXPECT_TRUE(rm.access({64, 128}, 1, true).empty());
}

TEST(RegionMap, NoSelfEdges) {
  RegionMap rm;
  rm.access({0, 64}, 5, false);
  const auto preds = rm.access({0, 64}, 5, true);  // same task inout
  EXPECT_TRUE(preds.empty());
}

namespace {
struct RtRig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  coherence::CoherentSystem caches{eq, net, mesh, mcs, policy, {}, 4};
  mem::PageTable pt;
  std::vector<std::unique_ptr<core::SimCore>> cores;
  FifoScheduler sched;
  RuntimeHooks hooks;
  std::unique_ptr<RuntimeSystem> rt;

  RtRig() {
    std::vector<core::SimCore*> ptrs;
    for (CoreId i = 0; i < 4; ++i) {
      cores.push_back(std::make_unique<core::SimCore>(i, eq, caches, pt));
      ptrs.push_back(cores.back().get());
    }
    rt = std::make_unique<RuntimeSystem>(eq, ptrs, sched, hooks);
  }

  core::TaskProgram tiny_prog(AddrRange r, AccessKind k = AccessKind::Read) {
    core::TaskProgram p;
    core::AccessPhase ph;
    ph.range = r;
    ph.kind = k;
    p.add_phase(ph);
    return p;
  }
};
}  // namespace

TEST(RuntimeSystem, RegionDedupesExactRanges) {
  RtRig rig;
  const DepId a = rig.rt->region({0x1000, 0x2000}, "a");
  const DepId b = rig.rt->region({0x1000, 0x2000}, "again");
  const DepId c = rig.rt->region({0x1000, 0x2001}, "different");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(rig.rt->num_deps(), 2u);
}

TEST(RuntimeSystem, BuildsRawEdges) {
  RtRig rig;
  const AddrRange r{0x10000000, 0x10001000};
  const DepId d = rig.rt->region(r);
  const TaskId w =
      rig.rt->create_task("w", {{d, DepUse::Out}},
                          rig.tiny_prog(r, AccessKind::Write));
  const TaskId rd =
      rig.rt->create_task("r", {{d, DepUse::In}}, rig.tiny_prog(r));
  const Task& reader = rig.rt->task(rd);
  EXPECT_EQ(reader.predecessors, (std::vector<TaskId>{w}));
  EXPECT_EQ(rig.rt->task(w).successors, (std::vector<TaskId>{rd}));
}

TEST(RuntimeSystem, IndependentTasksRunInParallel) {
  RtRig rig;
  for (int i = 0; i < 4; ++i) {
    const AddrRange r{0x10000000 + i * 0x10000,
                      0x10000000 + i * 0x10000 + 0x2000};
    const DepId d = rig.rt->region(r);
    rig.rt->create_task("t", {{d, DepUse::In}}, rig.tiny_prog(r));
  }
  bool done = false;
  rig.rt->run([&] { done = true; });
  rig.eq.run();
  ASSERT_TRUE(done);
  // All 4 cores used (tasks ran concurrently on distinct cores).
  std::set<CoreId> used;
  for (const auto& t : rig.rt->tasks()) used.insert(t.ran_on);
  EXPECT_EQ(used.size(), 4u);
}

TEST(RuntimeSystem, DependentChainSerializes) {
  RtRig rig;
  const AddrRange r{0x10000000, 0x10000400};
  const DepId d = rig.rt->region(r);
  for (int i = 0; i < 3; ++i)
    rig.rt->create_task("c", {{d, DepUse::InOut}},
                        rig.tiny_prog(r, AccessKind::Write));
  bool done = false;
  rig.rt->run([&] { done = true; });
  rig.eq.run();
  ASSERT_TRUE(done);
  const auto& tasks = rig.rt->tasks();
  EXPECT_LE(tasks[0].finished_at, tasks[1].started_at);
  EXPECT_LE(tasks[1].finished_at, tasks[2].started_at);
}

TEST(RuntimeSystem, TaskwaitGatesPhases) {
  RtRig rig;
  const AddrRange a{0x10000000, 0x10000400};
  const AddrRange b{0x20000000, 0x20000400};
  const DepId da = rig.rt->region(a);
  const DepId db = rig.rt->region(b);
  rig.rt->create_task("p0", {{da, DepUse::In}}, rig.tiny_prog(a));
  rig.rt->taskwait();
  // Independent data, but in the next phase: must not start early.
  rig.rt->create_task("p1", {{db, DepUse::In}}, rig.tiny_prog(b));
  bool done = false;
  rig.rt->run([&] { done = true; });
  rig.eq.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(rig.rt->num_phases(), 2u);
  EXPECT_GE(rig.rt->task(1).started_at, rig.rt->task(0).finished_at);
}

TEST(RuntimeSystem, EmptyTaskwaitCoalesces) {
  RtRig rig;
  rig.rt->taskwait();
  rig.rt->taskwait();
  EXPECT_EQ(rig.rt->num_phases(), 1u);
}

TEST(RuntimeSystem, CompletesAllAndRecordsMakespan) {
  RtRig rig;
  for (int i = 0; i < 10; ++i) {
    const AddrRange r{0x10000000 + i * 0x1000,
                      0x10000000 + i * 0x1000 + 0x400};
    rig.rt->create_task("t", {{rig.rt->region(r), DepUse::In}},
                        rig.tiny_prog(r));
  }
  bool done = false;
  rig.rt->run([&] { done = true; });
  rig.eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.rt->tasks_completed(), 10u);
  EXPECT_GT(rig.rt->makespan(), 0u);
}

TEST(RuntimeSystem, RunTwiceThrows) {
  RtRig rig;
  rig.rt->run([] {});
  EXPECT_THROW(rig.rt->run([] {}), RequireError);
}

TEST(Scheduler, FifoOrder) {
  FifoScheduler s;
  Task a, b;
  a.id = 0;
  b.id = 1;
  s.enqueue(a);
  s.enqueue(b);
  EXPECT_EQ(s.dequeue(0), &a);
  EXPECT_EQ(s.dequeue(0), &b);
  EXPECT_EQ(s.dequeue(0), nullptr);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, AffinityRequiresTaskTableBeforeDispatch) {
  AffinityScheduler s;
  // Empty queue: the early-exit fires before the wiring check, so probing
  // an idle scheduler never needs the table.
  EXPECT_EQ(s.dequeue(0), nullptr);
  Task t;
  t.id = 0;
  s.enqueue(t);
  // First real dispatch without set_tasks(): assembly forgot to wire the
  // runtime's task table — fail loudly instead of scheduling blind.
  EXPECT_THROW(s.dequeue(0), RequireError);
  std::vector<Task> tasks(1);
  tasks[0].id = 0;
  s.set_tasks(&tasks);
  EXPECT_EQ(s.dequeue(0), &t);
}

TEST(Scheduler, AffinityPrefersPredecessorCore) {
  std::vector<Task> tasks(3);
  tasks[0].id = 0;
  tasks[0].ran_on = 2;
  tasks[1].id = 1;
  tasks[1].predecessors = {0};
  tasks[2].id = 2;  // no affinity
  AffinityScheduler s;
  s.set_tasks(&tasks);
  s.enqueue(tasks[2]);
  s.enqueue(tasks[1]);
  // Core 2 should receive task 1 (its predecessor ran there).
  EXPECT_EQ(s.dequeue(2), &tasks[1]);
  EXPECT_EQ(s.dequeue(2), &tasks[2]);
}
