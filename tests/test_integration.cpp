// End-to-end integration tests: full workloads across all policies, with
// cross-policy invariants the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

using namespace tdn;
using namespace tdn::system;

namespace {
harness::RunResult run(const std::string& wl, PolicyKind p,
                       double scale = 0.2) {
  harness::RunConfig cfg;
  cfg.workload = wl;
  cfg.policy = p;
  cfg.params.scale = scale;
  return harness::run_experiment(cfg, /*use_cache=*/false);
}
}  // namespace

TEST(Integration, CholeskyCompletesOnEveryPolicy) {
  for (const auto p : {PolicyKind::SNuca, PolicyKind::RNuca,
                       PolicyKind::TdNuca, PolicyKind::TdNucaBypassOnly,
                       PolicyKind::TdNucaDryRun}) {
    const auto r = run("cholesky", p);
    EXPECT_GT(r.get("sim.cycles"), 0.0) << to_string(p);
    EXPECT_GT(r.get("tasks.completed"), 0.0) << to_string(p);
  }
}

TEST(Integration, TdNucaReducesNucaDistance) {
  const auto s = run("lu", PolicyKind::SNuca);
  const auto t = run("lu", PolicyKind::TdNuca);
  EXPECT_LT(t.get("nuca.mean_distance"), s.get("nuca.mean_distance"));
  // S-NUCA's distance matches the theoretical uniform mean (paper: 2.49
  // measured vs 2.5 theoretical on the 4x4 mesh).
  EXPECT_NEAR(s.get("nuca.mean_distance"), 2.5, 0.15);
}

TEST(Integration, TdNucaReducesLlcAccessesOnStreaming) {
  const auto s = run("md5", PolicyKind::SNuca);
  const auto t = run("md5", PolicyKind::TdNuca);
  // The Fig. 9 headline: bypassing slashes LLC accesses on MD5.
  EXPECT_LT(t.get("llc.accesses"), 0.2 * s.get("llc.accesses"));
}

TEST(Integration, TdNucaReducesDataMovement) {
  for (const char* wl : {"jacobi", "md5", "redblack"}) {
    const auto s = run(wl, PolicyKind::SNuca);
    const auto t = run(wl, PolicyKind::TdNuca);
    EXPECT_LT(t.get("noc.router_bytes"), s.get("noc.router_bytes")) << wl;
  }
}

TEST(Integration, BypassOnlyMatchesFullOnBarrierStencils) {
  // Paper Fig. 15: Jacobi/Redblack gain everything from bypassing alone.
  const auto full = run("jacobi", PolicyKind::TdNuca);
  const auto bypass = run("jacobi", PolicyKind::TdNucaBypassOnly);
  EXPECT_NEAR(full.get("sim.cycles"), bypass.get("sim.cycles"),
              0.02 * full.get("sim.cycles"));
}

TEST(Integration, DryRunMatchesSNucaCacheBehaviour) {
  const auto s = run("kmeans", PolicyKind::SNuca);
  const auto d = run("kmeans", PolicyKind::TdNucaDryRun);
  // Identical cache-event counts; only the runtime overhead differs.
  EXPECT_DOUBLE_EQ(d.get("llc.bypass_reads"), 0.0);
  EXPECT_NEAR(d.get("llc.accesses"), s.get("llc.accesses"),
              0.02 * s.get("llc.accesses"));
  EXPECT_GE(d.get("sim.cycles"), s.get("sim.cycles"));
  // The paper reports ~0.01% overhead; allow a loose 3% bound at our scale.
  EXPECT_LT(d.get("sim.cycles"), 1.03 * s.get("sim.cycles"));
}

TEST(Integration, Fig3ClassificationCoverage) {
  const auto t = run("jacobi", PolicyKind::TdNuca);
  const double dep_blocks = t.get("fig3.td.dep_blocks");
  const double total = t.get("workload.total_blocks");
  // Nearly all of Jacobi's footprint is task dependencies (paper: 96% avg),
  // and nearly all of it predicts not-reused (paper: >97% for Jacobi).
  EXPECT_GT(dep_blocks / total, 0.9);
  EXPECT_GT(t.get("fig3.td.notreused_blocks") / dep_blocks, 0.95);
}

TEST(Integration, RNucaClassifiesDynamicSchedulingAsShared) {
  const auto r = run("lu", PolicyKind::RNuca);
  const double shared = r.get("fig3.rnuca.shared_blocks");
  const double total = r.get("fig3.rnuca.total_blocks");
  // With tasks migrating freely, most touched pages end up shared —
  // R-NUCA's key limitation (paper Fig. 3: 64% avg, >90% on half the suite).
  EXPECT_GT(shared / total, 0.5);
}

TEST(Integration, EnergyFollowsEventCounts) {
  const auto s = run("redblack", PolicyKind::SNuca);
  const auto t = run("redblack", PolicyKind::TdNuca);
  // Bypassing: far fewer LLC events -> far less LLC dynamic energy
  // (paper Fig. 13), and NoC energy tracks data movement (Fig. 14).
  EXPECT_LT(t.get("energy.llc_pj"), 0.5 * s.get("energy.llc_pj"));
  EXPECT_LT(t.get("energy.noc_pj"), s.get("energy.noc_pj"));
}

TEST(Integration, TlbImpactIsNegligible) {
  const auto s = run("kmeans", PolicyKind::SNuca);
  const auto t = run("kmeans", PolicyKind::TdNuca);
  const double s_ratio = s.get("tlb.hits") / (s.get("tlb.hits") + s.get("tlb.misses"));
  const double t_ratio = t.get("tlb.hits") / (t.get("tlb.hits") + t.get("tlb.misses"));
  // Paper Sec. V-A: TD-NUCA degrades the TLB hit ratio by ~0.001%.
  EXPECT_GT(s_ratio, 0.95);
  EXPECT_GT(t_ratio, 0.9);
}

TEST(Integration, RrtOccupancyWithinCapacity) {
  const auto t = run("lu", PolicyKind::TdNuca, 0.3);
  EXPECT_LE(t.get("rrt.max_occupancy"), 64.0);
  EXPECT_GT(t.get("rrt.mean_occupancy"), 0.0);
}
