// Unit tests: virtual space, page table (first touch + fragmentation +
// range collapse), TLB, DRAM timing.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"

using namespace tdn;
using namespace tdn::mem;

TEST(VirtualSpace, AlignedBumpAllocation) {
  VirtualSpace vs;
  const AddrRange a = vs.allocate(100, 64, "a");
  const AddrRange b = vs.allocate(64, 4096, "b");
  EXPECT_EQ(a.begin % 64, 0u);
  EXPECT_EQ(b.begin % 4096, 0u);
  EXPECT_GE(b.begin, a.end);
  EXPECT_EQ(vs.regions().size(), 2u);
  EXPECT_GT(vs.footprint(), 0u);
}

TEST(VirtualSpace, RejectsBadArgs) {
  VirtualSpace vs;
  EXPECT_THROW(vs.allocate(0), RequireError);
  EXPECT_THROW(vs.allocate(64, 48), RequireError);  // not pow2
  EXPECT_THROW(vs.allocate(64, 32), RequireError);  // below line size
}

TEST(PageTable, FirstTouchIsStable) {
  PageTable pt;
  const Addr p1 = pt.translate(0x10000000);
  const Addr p2 = pt.translate(0x10000000 + 100);
  EXPECT_EQ(p2 - p1, 100u);  // same page, same frame
  EXPECT_EQ(pt.translate(0x10000000), p1);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, TryTranslateDoesNotAllocate) {
  PageTable pt;
  Addr pa = 0;
  EXPECT_FALSE(pt.try_translate(0x20000000, pa));
  EXPECT_EQ(pt.mapped_pages(), 0u);
  pt.translate(0x20000000);
  EXPECT_TRUE(pt.try_translate(0x20000000, pa));
}

TEST(PageTable, DeterministicForSameSeed) {
  PageTableConfig cfg;
  PageTable a(cfg), b(cfg);
  for (Addr va = 0x10000000; va < 0x10000000 + 64 * 4096; va += 4096)
    EXPECT_EQ(a.translate(va), b.translate(va));
}

TEST(PageTable, ZeroFragmentationIsContiguous) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.0;
  PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 16 * 4096};
  const auto tr = pt.translate_range(vr);
  ASSERT_EQ(tr.physical_pieces.size(), 1u);
  EXPECT_EQ(tr.physical_pieces[0].size(), vr.size());
  EXPECT_EQ(tr.pages_walked, 16u);
}

TEST(PageTable, FragmentationSplitsRanges) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.5;
  PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 64 * 4096};
  const auto tr = pt.translate_range(vr);
  EXPECT_GT(tr.physical_pieces.size(), 1u);
  // The pieces always cover exactly the range's bytes.
  Addr total = 0;
  for (const auto& p : tr.physical_pieces) total += p.size();
  EXPECT_EQ(total, vr.size());
}

TEST(PageTable, SubPageRangeClipping) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.0;
  PageTable pt(cfg);
  // Range straddling two pages with byte offsets.
  const AddrRange vr{0x10000000 + 100, 0x10000000 + 4096 + 200};
  const auto tr = pt.translate_range(vr);
  Addr total = 0;
  for (const auto& p : tr.physical_pieces) total += p.size();
  EXPECT_EQ(total, vr.size());
  EXPECT_EQ(tr.pages_walked, 2u);
}

TEST(Tlb, HitAfterMiss) {
  Tlb tlb({.entries = 4, .hit_latency = 1, .miss_penalty = 20}, 4096);
  EXPECT_EQ(tlb.access(0x1000), 21u);  // miss
  EXPECT_EQ(tlb.access(0x1004), 1u);   // hit, same page
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb({.entries = 2, .hit_latency = 1, .miss_penalty = 20}, 4096);
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.access(0x1000);  // touch page 1 -> page 2 is LRU
  tlb.access(0x3000);  // evicts page 2
  EXPECT_TRUE(tlb.contains(0x1000));
  EXPECT_FALSE(tlb.contains(0x2000));
  EXPECT_TRUE(tlb.contains(0x3000));
}

TEST(Tlb, Shootdown) {
  Tlb tlb({}, 4096);
  tlb.access(0x5000);
  EXPECT_TRUE(tlb.contains(0x5000));
  tlb.invalidate_page(0x5008);
  EXPECT_FALSE(tlb.contains(0x5000));
  EXPECT_EQ(tlb.shootdowns(), 1u);
  tlb.invalidate_page(0x5000);  // absent: no-op
  EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(Dram, LatencyAndBandwidth) {
  MemController mc({.access_latency = 100, .service_interval = 4});
  EXPECT_EQ(mc.request(0, AccessKind::Read), 100u);
  // Second request one cycle later queues behind the service interval.
  EXPECT_EQ(mc.request(1, AccessKind::Read), 104u);
  EXPECT_EQ(mc.reads(), 2u);
}

TEST(Dram, IdleGapResetsQueue) {
  MemController mc({.access_latency = 100, .service_interval = 4});
  mc.request(0, AccessKind::Write);
  EXPECT_EQ(mc.request(1000, AccessKind::Read), 1100u);
  EXPECT_EQ(mc.writes(), 1u);
}

TEST(MemControllers, InterleaveCoversAll) {
  MemControllers mcs(4, {0, 3, 12, 15});
  bool used[4] = {};
  for (Addr line = 0; line < 64 * 64; line += 64) used[mcs.index_for(line)] = true;
  for (bool u : used) EXPECT_TRUE(u);
  EXPECT_EQ(mcs.tile_of(0), 0u);
  EXPECT_EQ(mcs.tile_of(3), 15u);
}

TEST(MemControllers, RejectsMismatchedTiles) {
  EXPECT_THROW(MemControllers(2, {0}), RequireError);
}
