// Unit tests: virtual space, page table (first touch + fragmentation +
// range collapse), TLB, DRAM timing.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"

using namespace tdn;
using namespace tdn::mem;

TEST(VirtualSpace, AlignedBumpAllocation) {
  VirtualSpace vs;
  const AddrRange a = vs.allocate(100, 64, "a");
  const AddrRange b = vs.allocate(64, 4096, "b");
  EXPECT_EQ(a.begin % 64, 0u);
  EXPECT_EQ(b.begin % 4096, 0u);
  EXPECT_GE(b.begin, a.end);
  EXPECT_EQ(vs.regions().size(), 2u);
  EXPECT_GT(vs.footprint(), 0u);
}

TEST(VirtualSpace, RejectsBadArgs) {
  VirtualSpace vs;
  EXPECT_THROW(vs.allocate(0), RequireError);
  EXPECT_THROW(vs.allocate(64, 48), RequireError);  // not pow2
  EXPECT_THROW(vs.allocate(64, 32), RequireError);  // below line size
}

TEST(PageTable, FirstTouchIsStable) {
  PageTable pt;
  const Addr p1 = pt.translate(0x10000000);
  const Addr p2 = pt.translate(0x10000000 + 100);
  EXPECT_EQ(p2 - p1, 100u);  // same page, same frame
  EXPECT_EQ(pt.translate(0x10000000), p1);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, TryTranslateDoesNotAllocate) {
  PageTable pt;
  Addr pa = 0;
  EXPECT_FALSE(pt.try_translate(0x20000000, pa));
  EXPECT_EQ(pt.mapped_pages(), 0u);
  pt.translate(0x20000000);
  EXPECT_TRUE(pt.try_translate(0x20000000, pa));
}

TEST(PageTable, DeterministicForSameSeed) {
  PageTableConfig cfg;
  PageTable a(cfg), b(cfg);
  for (Addr va = 0x10000000; va < 0x10000000 + 64 * 4096; va += 4096)
    EXPECT_EQ(a.translate(va), b.translate(va));
}

TEST(PageTable, ZeroFragmentationIsContiguous) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.0;
  PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 16 * 4096};
  const auto tr = pt.translate_range(vr);
  ASSERT_EQ(tr.physical_pieces.size(), 1u);
  EXPECT_EQ(tr.physical_pieces[0].size(), vr.size());
  EXPECT_EQ(tr.pages_walked, 16u);
}

TEST(PageTable, FragmentationSplitsRanges) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.5;
  PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 64 * 4096};
  const auto tr = pt.translate_range(vr);
  EXPECT_GT(tr.physical_pieces.size(), 1u);
  // The pieces always cover exactly the range's bytes.
  Addr total = 0;
  for (const auto& p : tr.physical_pieces) total += p.size();
  EXPECT_EQ(total, vr.size());
}

TEST(PageTable, SubPageRangeClipping) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.0;
  PageTable pt(cfg);
  // Range straddling two pages with byte offsets.
  const AddrRange vr{0x10000000 + 100, 0x10000000 + 4096 + 200};
  const auto tr = pt.translate_range(vr);
  Addr total = 0;
  for (const auto& p : tr.physical_pieces) total += p.size();
  EXPECT_EQ(total, vr.size());
  EXPECT_EQ(tr.pages_walked, 2u);
}

TEST(PageTable, ZeroLengthRange) {
  PageTable pt;
  const auto tr = pt.translate_range({0x10000000, 0x10000000});
  EXPECT_TRUE(tr.physical_pieces.empty());
  EXPECT_EQ(tr.pages_walked, 0u);
  EXPECT_EQ(pt.mapped_pages(), 0u);  // nothing allocated
}

TEST(PageTable, UnalignedRangeWithinOnePage) {
  PageTable pt;
  const AddrRange vr{0x10000000 + 100, 0x10000000 + 300};
  const auto tr = pt.translate_range(vr);
  ASSERT_EQ(tr.physical_pieces.size(), 1u);
  EXPECT_EQ(tr.physical_pieces[0].size(), 200u);
  EXPECT_EQ(tr.pages_walked, 1u);
  // The piece carries the in-page byte offset of the virtual begin.
  EXPECT_EQ(tr.physical_pieces[0].begin % 4096, 100u);
}

TEST(PageTable, FullFragmentationBreaksEveryPage) {
  PageTableConfig cfg;
  cfg.fragmentation = 1.0;
  PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 8 * 4096};
  const auto tr = pt.translate_range(vr);
  // Every boundary is a physical break: one piece per page walked.
  EXPECT_EQ(tr.physical_pieces.size(), tr.pages_walked);
  EXPECT_EQ(tr.pages_walked, 8u);
}

// Property: for arbitrary (mis)aligned ranges under fragmentation, the
// pieces exactly tile the virtual range in order, each piece lies within
// the range's translation, and pages_walked matches the page stepping.
TEST(PageTable, PiecesTileRangeProperty) {
  PageTableConfig cfg;
  cfg.fragmentation = 0.5;
  PageTable pt(cfg);
  const Addr offs[] = {0, 1, 100, 4095, 4096 + 17};
  const Addr lens[] = {1, 4095, 4096, 10 * 4096 + 33, 64 * 4096 - 1};
  Addr base = 0x20000000;
  for (const Addr off : offs) {
    for (const Addr len : lens) {
      const AddrRange vr{base + off, base + off + len};
      const auto tr = pt.translate_range(vr);
      Addr covered = 0;
      for (const auto& p : tr.physical_pieces) {
        EXPECT_GT(p.size(), 0u);
        covered += p.size();
      }
      EXPECT_EQ(covered, vr.size()) << off << "+" << len;
      const Addr first = vr.begin / 4096, last = (vr.end - 1) / 4096;
      EXPECT_EQ(tr.pages_walked, last - first + 1) << off << "+" << len;
      // Byte-for-byte: each address translates into the piece covering it.
      Addr va = vr.begin;
      for (const auto& p : tr.physical_pieces) {
        EXPECT_EQ(pt.translate(va), p.begin);
        va += p.size();
      }
      base += kMiB;  // fresh pages for the next shape
    }
  }
}

TEST(Tlb, HitAfterMiss) {
  Tlb tlb({.entries = 4, .hit_latency = 1, .miss_penalty = 20}, 4096);
  EXPECT_EQ(tlb.access(0x1000), 21u);  // miss
  EXPECT_EQ(tlb.access(0x1004), 1u);   // hit, same page
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb({.entries = 2, .hit_latency = 1, .miss_penalty = 20}, 4096);
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.access(0x1000);  // touch page 1 -> page 2 is LRU
  tlb.access(0x3000);  // evicts page 2
  EXPECT_TRUE(tlb.contains(0x1000));
  EXPECT_FALSE(tlb.contains(0x2000));
  EXPECT_TRUE(tlb.contains(0x3000));
}

TEST(Tlb, Shootdown) {
  Tlb tlb({}, 4096);
  tlb.access(0x5000);
  EXPECT_TRUE(tlb.contains(0x5000));
  tlb.invalidate_page(0x5008);
  EXPECT_FALSE(tlb.contains(0x5000));
  EXPECT_EQ(tlb.shootdowns(), 1u);
  tlb.invalidate_page(0x5000);  // absent: no-op
  EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(Dram, LatencyAndBandwidth) {
  MemController mc({.access_latency = 100, .service_interval = 4});
  EXPECT_EQ(mc.request(0, AccessKind::Read), 100u);
  // Second request one cycle later queues behind the service interval.
  EXPECT_EQ(mc.request(1, AccessKind::Read), 104u);
  EXPECT_EQ(mc.reads(), 2u);
}

TEST(Dram, IdleGapResetsQueue) {
  MemController mc({.access_latency = 100, .service_interval = 4});
  mc.request(0, AccessKind::Write);
  EXPECT_EQ(mc.request(1000, AccessKind::Read), 1100u);
  EXPECT_EQ(mc.writes(), 1u);
}

TEST(MemControllers, InterleaveCoversAll) {
  MemControllers mcs(4, {0, 3, 12, 15});
  bool used[4] = {};
  for (Addr line = 0; line < 64 * 64; line += 64) used[mcs.index_for(line)] = true;
  for (bool u : used) EXPECT_TRUE(u);
  EXPECT_EQ(mcs.tile_of(0), 0u);
  EXPECT_EQ(mcs.tile_of(3), 15u);
}

TEST(MemControllers, RejectsMismatchedTiles) {
  EXPECT_THROW(MemControllers(2, {0}), RequireError);
}
