// Unit tests: RRT, cluster map, RTCacheDirectory, ISA cost model.
#include <gtest/gtest.h>

#include <set>

#include "noc/mesh.hpp"
#include "tdnuca/cluster_map.hpp"
#include "tdnuca/isa.hpp"
#include "tdnuca/rrt.hpp"
#include "tdnuca/rt_cache_directory.hpp"

using namespace tdn;
using namespace tdn::tdnuca;

TEST(Rrt, RegisterLookupInvalidate) {
  Rrt rrt(4, 1);
  EXPECT_TRUE(rrt.register_range({0x1000, 0x2000}, BankMask::single(3)));
  auto e = rrt.lookup(0x1800);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->mask.sole_bit(), 3u);
  EXPECT_FALSE(rrt.lookup(0x2000).has_value());  // end is exclusive
  EXPECT_EQ(rrt.invalidate_range({0x1000, 0x2000}), 1u);
  EXPECT_FALSE(rrt.lookup(0x1800).has_value());
}

TEST(Rrt, NoReplacementOnOverflow) {
  Rrt rrt(2, 1);
  EXPECT_TRUE(rrt.register_range({0x0000, 0x1000}, BankMask::none()));
  EXPECT_TRUE(rrt.register_range({0x1000, 0x2000}, BankMask::none()));
  // Full: the third range is NOT registered (falls back to S-NUCA).
  EXPECT_FALSE(rrt.register_range({0x2000, 0x3000}, BankMask::none()));
  EXPECT_EQ(rrt.size(), 2u);
  EXPECT_EQ(rrt.overflows(), 1u);
  EXPECT_TRUE(rrt.lookup(0x0800).has_value());
  EXPECT_FALSE(rrt.lookup(0x2800).has_value());
}

TEST(Rrt, InvalidateRemovesOverlapping) {
  Rrt rrt(8, 1);
  rrt.register_range({0x0000, 0x1000}, BankMask::none());
  rrt.register_range({0x1000, 0x2000}, BankMask::none());
  rrt.register_range({0x5000, 0x6000}, BankMask::none());
  EXPECT_EQ(rrt.invalidate_range({0x0800, 0x1800}), 2u);
  EXPECT_EQ(rrt.size(), 1u);
}

TEST(Rrt, OccupancyTracking) {
  Rrt rrt(8, 1);
  rrt.register_range({0, 64}, BankMask::none());
  rrt.register_range({64, 128}, BankMask::none());
  EXPECT_EQ(rrt.max_occupancy(), 2u);
  rrt.invalidate_range({0, 128});
  EXPECT_EQ(rrt.max_occupancy(), 2u);  // high-water mark persists
  EXPECT_EQ(rrt.size(), 0u);
}

TEST(Rrt, CountsLookups) {
  Rrt rrt(4, 2);
  rrt.lookup(0x42);
  rrt.lookup(0x43);
  EXPECT_EQ(rrt.lookups(), 2u);
  EXPECT_EQ(rrt.lookup_latency(), 2u);
}

TEST(ClusterMap, QuadrantsOn4x4) {
  noc::Mesh mesh(4, 4);
  ClusterMap cm(mesh);
  EXPECT_EQ(cm.num_clusters(), 4u);
  EXPECT_EQ(cm.cluster_size(), 4u);
  EXPECT_EQ(cm.cluster_of(0), cm.cluster_of(5));
  EXPECT_EQ(cm.mask_of(0).count(), 4);
  EXPECT_TRUE(cm.mask_of(0).test(0));
  EXPECT_TRUE(cm.mask_of(0).test(5));
}

TEST(ClusterMap, InterleaveCoversClusterBanks) {
  noc::Mesh mesh(4, 4);
  ClusterMap cm(mesh);
  std::set<BankId> used;
  for (Addr line = 0; line < 64 * 16; line += 64)
    used.insert(cm.bank_for(0, line));
  EXPECT_EQ(used.size(), 4u);
  for (BankId b : used) EXPECT_EQ(cm.cluster_of(b), 0u);
}

TEST(ClusterMap, MaskInterleaveMatchesBankFor) {
  noc::Mesh mesh(4, 4);
  ClusterMap cm(mesh);
  const BankMask mask = cm.mask_of(2);
  for (Addr line = 0; line < 64 * 32; line += 64) {
    const BankId via_mask = ClusterMap::bank_for_mask(mask, line);
    EXPECT_EQ(cm.cluster_of(via_mask), 2u);
  }
}

TEST(RtCacheDirectory, EntryLifecycle) {
  RtCacheDirectory dir;
  auto& e = dir.entry(7, {0x1000, 0x2000});
  EXPECT_EQ(e.vrange.begin, 0x1000u);
  e.use_desc = 3;
  // Re-fetching the same dep returns the same entry.
  EXPECT_EQ(dir.entry(7, {0xdead, 0xbeef}).use_desc, 3);
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_NE(dir.find(7), nullptr);
  EXPECT_EQ(dir.find(8), nullptr);
}

TEST(IsaCosts, ScaleWithPagesAndPieces) {
  IsaCostConfig c;
  const Cycle small = isa_register_cost(c, 2, 1);
  const Cycle large = isa_register_cost(c, 64, 8);
  EXPECT_LT(small, large);
  EXPECT_EQ(large - small, (64 - 2) + 7 * c.per_rrt_slot);
  EXPECT_GT(isa_flush_issue_cost(c, 10), isa_flush_issue_cost(c, 0));
  EXPECT_EQ(isa_invalidate_cost(c, 0, 1), c.issue_overhead + c.per_rrt_slot);
}
