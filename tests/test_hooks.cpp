// Tests of the TD-NUCA runtime hooks: UseDesc accounting, Fig. 7 placement
// decisions, RRT management, flush sequencing and the dry-run mode. Uses a
// full TiledSystem so the hooks act on real hardware structures.
#include <gtest/gtest.h>

#include "system/tiled_system.hpp"

using namespace tdn;
using namespace tdn::system;

namespace {

core::TaskProgram prog_for(const AddrRange& r,
                           AccessKind k = AccessKind::Read) {
  core::TaskProgram p;
  core::AccessPhase ph;
  ph.range = r;
  ph.kind = k;
  p.add_phase(ph);
  return p;
}

SystemConfig td_config() {
  SystemConfig cfg;
  cfg.policy = PolicyKind::TdNuca;
  return cfg;
}

}  // namespace

TEST(Hooks, SingleUseDependencyBypasses) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "buf");
  const DepId d = rt.region(r, "buf");
  rt.create_task("consume", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  ASSERT_NE(hooks, nullptr);
  EXPECT_EQ(hooks->bypass_placements(), 1u);
  const auto* e = hooks->directory().find(d);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->ever_bypassed);
  EXPECT_TRUE(e->ever_predicted_dead);
  // Every access bypassed the LLC.
  EXPECT_EQ(sys.caches().stats().llc_requests.value(), 0u);
  EXPECT_GT(sys.caches().stats().bypass_reads.value(), 0u);
}

TEST(Hooks, WriterWithFutureReaderMapsLocal) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "buf");
  const DepId d = rt.region(r, "buf");
  rt.create_task("produce", {{d, DepUse::Out}},
                 prog_for(r, AccessKind::Write));
  rt.create_task("consume", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  EXPECT_EQ(hooks->local_placements(), 1u);
  const auto* e = hooks->directory().find(d);
  EXPECT_TRUE(e->ever_in);
  EXPECT_TRUE(e->ever_out);
  EXPECT_EQ(e->use_desc, 0);
}

TEST(Hooks, SharedReadOnlyReplicates) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "table");
  const DepId d = rt.region(r, "table");
  for (int i = 0; i < 6; ++i)
    rt.create_task("reader", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  EXPECT_GE(hooks->replicated_placements(), 5u);
  // The final reader sees UseDesc==0 but the data is replicated-resident,
  // so it is not sent to DRAM (the visible-reuse guard).
  EXPECT_EQ(hooks->bypass_placements(), 0u);
}

TEST(Hooks, RoToRwTransitionFlushesReplicas) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "data");
  const DepId d = rt.region(r, "data");
  for (int i = 0; i < 3; ++i)
    rt.create_task("reader", {{d, DepUse::In}}, prog_for(r));
  rt.create_task("reader2", {{d, DepUse::In}}, prog_for(r));
  // The writer forces the lazy invalidation of the replicas.
  rt.create_task("writer", {{d, DepUse::InOut}},
                 prog_for(r, AccessKind::Write));
  rt.create_task("after", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  EXPECT_GE(hooks->ro_rw_transitions(), 1u);
  EXPECT_GT(sys.caches().stats().flush_llc_lines.value(), 0u);
}

TEST(Hooks, UseDescCountsPhaseLocally) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "buf");
  const DepId d = rt.region(r, "buf");
  rt.create_task("p0", {{d, DepUse::In}}, prog_for(r));
  rt.taskwait();
  rt.create_task("p1", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  // Each phase's only task saw UseDesc==0 -> both bypassed.
  EXPECT_EQ(sys.tdnuca_hooks()->bypass_placements(), 2u);
}

TEST(Hooks, BypassRegistersAndClearsRrt) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(32 * kKiB, 64, "buf");
  const DepId d = rt.region(r, "buf");
  rt.create_task("t", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  // After the task, its RRT entries were invalidated everywhere.
  auto* pol = sys.tdnuca_policy();
  for (CoreId c = 0; c < 16; ++c) EXPECT_EQ(pol->rrt(c).size(), 0u);
}

TEST(Hooks, DryRunLeavesCachesAlone) {
  SystemConfig cfg;
  cfg.policy = PolicyKind::TdNucaDryRun;
  TiledSystem sys(cfg);
  auto& rt = sys.runtime();
  const AddrRange r = sys.vspace().allocate(64 * kKiB, 64, "buf");
  const DepId d = rt.region(r, "buf");
  rt.create_task("t", {{d, DepUse::In}}, prog_for(r));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  // Decisions happen (overhead is charged)...
  EXPECT_EQ(hooks->bypass_placements(), 1u);
  EXPECT_GT(hooks->runtime_overhead_cycles(), 0u);
  // ...but no ISA instruction executes: no bypass, no flush, plain S-NUCA.
  EXPECT_EQ(sys.caches().stats().bypass_reads.value(), 0u);
  EXPECT_EQ(sys.caches().stats().flush_l1_lines.value(), 0u);
  EXPECT_GT(sys.caches().stats().llc_requests.value(), 0u);
}

TEST(Hooks, BypassOnlyVariantNeverMapsOrReplicates) {
  SystemConfig cfg;
  cfg.policy = PolicyKind::TdNucaBypassOnly;
  TiledSystem sys(cfg);
  auto& rt = sys.runtime();
  const AddrRange shared = sys.vspace().allocate(64 * kKiB, 64, "shared");
  const AddrRange once = sys.vspace().allocate(64 * kKiB, 64, "once");
  const DepId ds = rt.region(shared, "shared");
  const DepId d1 = rt.region(once, "once");
  rt.create_task("r1", {{ds, DepUse::In}}, prog_for(shared));
  rt.create_task("r2", {{ds, DepUse::In}}, prog_for(shared));
  rt.create_task("single", {{d1, DepUse::In}}, prog_for(once));
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  EXPECT_EQ(hooks->replicated_placements(), 0u);
  EXPECT_EQ(hooks->local_placements(), 0u);
  EXPECT_EQ(hooks->bypass_placements(), 1u);  // only the single-use dep
}

TEST(Hooks, AlignmentRuleExcludesPartialBlocks) {
  TiledSystem sys(td_config());
  auto& rt = sys.runtime();
  // A dependency whose bounds are not line-aligned: first/last partial
  // blocks stay under S-NUCA (paper Sec. III-D).
  const AddrRange big = sys.vspace().allocate(8 * kKiB, 64, "buf");
  const AddrRange unaligned{big.begin + 8, big.end - 8};
  const DepId d = rt.region(unaligned, "unaligned");
  rt.create_task("t", {{d, DepUse::In}}, prog_for(big));
  sys.run();
  // The run completes and bypassed only whole blocks: the partial first and
  // last block accesses went through the normal LLC path.
  EXPECT_GT(sys.caches().stats().llc_requests.value(), 0u);
  EXPECT_GT(sys.caches().stats().bypass_reads.value(), 0u);
}
