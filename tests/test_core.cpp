// Unit tests: access stream generation and the timing core.
#include <gtest/gtest.h>

#include <set>

#include "coherence/coherent_system.hpp"
#include "core/access_stream.hpp"
#include "core/sim_core.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;
using namespace tdn::core;

TEST(AccessStream, SequentialCoversContainedLines) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x1000, 0x1200};  // 8 lines
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  std::vector<Addr> seen;
  while (s.next(op)) seen.push_back(op.vaddr);
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.front(), 0x1000u);
  EXPECT_EQ(seen.back(), 0x11C0u);
}

TEST(AccessStream, UnalignedRangeSkipsPartialLines) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x1010, 0x11F0};  // partial first/last lines
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  std::vector<Addr> seen;
  while (s.next(op)) seen.push_back(op.vaddr);
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), 0x1040u);
}

TEST(AccessStream, PassesRepeat) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0, 256};  // 4 lines
  p.passes = 3;
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  int n = 0;
  while (s.next(op)) ++n;
  EXPECT_EQ(n, 12);
  EXPECT_EQ(prog.total_touches(), 12u);
}

TEST(AccessStream, StrideSkipsLines) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0, 512};  // 8 lines
  p.stride_lines = 2;
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  std::vector<Addr> seen;
  while (s.next(op)) seen.push_back(op.vaddr);
  EXPECT_EQ(seen, (std::vector<Addr>{0, 128, 256, 384}));
}

TEST(AccessStream, RandomSampleWithinRange) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x4000, 0x8000};
  p.order = AccessPhase::Order::RandomSample;
  p.touches = 100;
  p.seed = 9;
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  int n = 0;
  while (s.next(op)) {
    EXPECT_GE(op.vaddr, 0x4000u);
    EXPECT_LT(op.vaddr, 0x8000u);
    EXPECT_EQ(op.vaddr % 64, 0u);
    ++n;
  }
  EXPECT_EQ(n, 100);
}

TEST(AccessStream, GroupInterleavesRoundRobin) {
  TaskProgram prog;
  AccessPhase a;
  a.range = {0, 128};  // 2 lines
  AccessPhase b;
  b.range = {0x1000, 0x1080};
  b.kind = AccessKind::Write;
  prog.add_group({a, b});
  AccessStream s(prog);
  AccessOp op;
  std::vector<Addr> seen;
  while (s.next(op)) seen.push_back(op.vaddr);
  EXPECT_EQ(seen, (std::vector<Addr>{0, 0x1000, 64, 0x1040}));
}

TEST(AccessStream, GroupsExecuteInOrder) {
  TaskProgram prog;
  AccessPhase a;
  a.range = {0, 64};
  AccessPhase b;
  b.range = {0x1000, 0x1040};
  prog.add_phase(a);
  prog.add_phase(b);
  AccessStream s(prog);
  AccessOp op;
  ASSERT_TRUE(s.next(op));
  EXPECT_EQ(op.vaddr, 0u);
  ASSERT_TRUE(s.next(op));
  EXPECT_EQ(op.vaddr, 0x1000u);
  EXPECT_FALSE(s.next(op));
}

TEST(AccessStream, MlpPropagates) {
  TaskProgram prog;
  AccessPhase p;
  p.range = {0, 64};
  p.mlp = 3;
  prog.add_phase(p);
  AccessStream s(prog);
  AccessOp op;
  ASSERT_TRUE(s.next(op));
  EXPECT_EQ(op.mlp, 3u);
}

namespace {
struct CoreRig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  coherence::CoherentSystem caches{eq, net, mesh, mcs, policy, {}, 4};
  mem::PageTable pt;
  SimCore core{0, eq, caches, pt};
};
}  // namespace

TEST(SimCore, ExecutesProgramToCompletion) {
  CoreRig rig;
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x10000000, 0x10000000 + 4096};
  prog.add_phase(p);
  bool done = false;
  rig.core.execute(prog, [&] { done = true; });
  rig.eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.core.loads(), 64u);
  EXPECT_TRUE(rig.core.idle());
  EXPECT_GT(rig.core.task_cycles(), 0u);
}

TEST(SimCore, StoresDrainBeforeCompletion) {
  CoreRig rig;
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x10000000, 0x10000000 + 2048};
  p.kind = AccessKind::Write;
  prog.add_phase(p);
  bool done = false;
  rig.core.execute(prog, [&] { done = true; });
  rig.eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.core.stores(), 32u);
}

TEST(SimCore, BusyOccupiesAndCompletes) {
  CoreRig rig;
  bool done = false;
  rig.core.busy(500, [&] { done = true; });
  EXPECT_FALSE(rig.core.idle() && done);
  rig.eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.eq.now(), 500u);
  EXPECT_EQ(rig.core.busy_cycles(), 500u);
}

TEST(SimCore, ReservationBlocksIdle) {
  CoreRig rig;
  EXPECT_TRUE(rig.core.idle());
  rig.core.reserve();
  EXPECT_FALSE(rig.core.idle());
  EXPECT_THROW(rig.core.reserve(), RequireError);
  rig.core.release();
  EXPECT_TRUE(rig.core.idle());
}

TEST(SimCore, RejectsConcurrentExecute) {
  CoreRig rig;
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x10000000, 0x10000000 + 640};
  prog.add_phase(p);
  rig.core.execute(prog, [] {});
  EXPECT_THROW(rig.core.execute(prog, [] {}), RequireError);
  rig.eq.run();
}

TEST(SimCore, LoadWindowLimitsOverlap) {
  CoreRig rig;
  // With window 1, loads serialize: runtime scales with full miss latency.
  TaskProgram prog;
  AccessPhase p;
  p.range = {0x10000000, 0x10000000 + 64 * 64};
  p.mlp = 1;
  prog.add_phase(p);
  rig.core.execute(prog, [] {});
  const Cycle serial = rig.eq.run();

  CoreRig rig2;
  TaskProgram prog2;
  AccessPhase p2;
  p2.range = {0x10000000, 0x10000000 + 64 * 64};
  p2.mlp = 8;
  prog2.add_phase(p2);
  rig2.core.execute(prog2, [] {});
  const Cycle overlapped = rig2.eq.run();
  EXPECT_LT(overlapped, serial / 2);
}
