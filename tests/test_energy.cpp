// Unit tests: the event-based dynamic energy model.
#include <gtest/gtest.h>

#include "coherence/coherent_system.hpp"
#include "energy/energy_model.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;

namespace {
struct Rig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  coherence::CoherentSystem sys{eq, net, mesh, mcs, policy, {}, 4};

  void access(CoreId c, Addr a, AccessKind k) {
    bool done = false;
    sys.access(c, a, a, k, [&](Cycle) { done = true; });
    eq.run();
    ASSERT_TRUE(done);
  }
};
}  // namespace

TEST(Energy, ZeroWhenNothingHappened) {
  Rig rig;
  const auto e = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0);
  EXPECT_DOUBLE_EQ(e.total_pj(), 0.0);
}

TEST(Energy, ScalesWithActivity) {
  Rig rig;
  rig.access(0, 0x1000, AccessKind::Read);
  const auto one = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0);
  EXPECT_GT(one.llc_pj, 0.0);
  EXPECT_GT(one.noc_pj, 0.0);
  EXPECT_GT(one.dram_pj, 0.0);
  EXPECT_GT(one.l1_pj, 0.0);
  for (Addr a = 0x2000; a < 0x4000; a += 64) rig.access(0, a, AccessKind::Read);
  const auto many = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0);
  EXPECT_GT(many.llc_pj, one.llc_pj);
  EXPECT_GT(many.noc_pj, one.noc_pj);
}

TEST(Energy, RrtUsesTcamFactor) {
  Rig rig;
  rig.access(0, 0x1000, AccessKind::Read);
  energy::EnergyParams p;
  const auto e = energy::compute_energy(rig.sys, rig.net, rig.mcs, 1000, p);
  EXPECT_DOUBLE_EQ(e.rrt_pj, 1000.0 * p.rrt_sram_pj * p.rrt_tcam_factor);
}

TEST(Energy, ParamsAreRespected) {
  Rig rig;
  rig.access(0, 0x1000, AccessKind::Read);
  energy::EnergyParams cheap;
  cheap.llc_access_pj = 1.0;
  energy::EnergyParams pricey;
  pricey.llc_access_pj = 1000.0;
  const auto a = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0, cheap);
  const auto b = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0, pricey);
  EXPECT_DOUBLE_EQ(b.llc_pj / a.llc_pj, 1000.0);
  EXPECT_DOUBLE_EQ(a.noc_pj, b.noc_pj);  // independent knobs
}

TEST(Energy, DramTracksMemoryAccesses) {
  Rig rig;
  // Two misses to distinct lines = two DRAM reads.
  rig.access(0, 0x1000, AccessKind::Read);
  rig.access(0, 0x2000, AccessKind::Read);
  energy::EnergyParams p;
  const auto e = energy::compute_energy(rig.sys, rig.net, rig.mcs, 0, p);
  EXPECT_DOUBLE_EQ(e.dram_pj, 2.0 * p.dram_access_pj);
}
