// Fuzz test: RegionMap's interval-based dependence analysis against a
// brute-force per-byte reference model, across random access patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/prng.hpp"
#include "runtime/region_map.hpp"

using namespace tdn;
using namespace tdn::runtime;

namespace {

/// Reference model: last writer + readers-since tracked per byte.
class ByteModel {
 public:
  std::vector<TaskId> access(const AddrRange& r, TaskId task, bool write) {
    std::set<TaskId> preds;
    for (Addr a = r.begin; a < r.end; ++a) {
      auto& st = bytes_[a];
      if (st.writer != kNone && st.writer != task) preds.insert(st.writer);
      if (write) {
        for (TaskId t : st.readers)
          if (t != task) preds.insert(t);
        st.writer = task;
        st.readers.clear();
      } else {
        st.readers.insert(task);
      }
    }
    return {preds.begin(), preds.end()};
  }

 private:
  static constexpr TaskId kNone = ~TaskId{0};
  struct State {
    TaskId writer = kNone;
    std::set<TaskId> readers;
  };
  std::map<Addr, State> bytes_;
};

}  // namespace

class RegionMapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionMapFuzz, MatchesByteReference) {
  SplitMix64 rng(GetParam());
  RegionMap rm;
  ByteModel ref;
  for (TaskId t = 0; t < 300; ++t) {
    // Small address universe to force heavy overlap.
    const Addr begin = rng.next_below(64);
    const Addr len = 1 + rng.next_below(32);
    const bool write = rng.next_below(2) == 0;
    auto got = rm.access({begin, begin + len}, t, write);
    auto want = ref.access({begin, begin + len}, t, write);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "task " << t << " range [" << begin << ","
                         << begin + len << ") write=" << write;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionMapFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(RegionMapFuzz, ManyTinyWritersCoalesce) {
  RegionMap rm;
  for (TaskId t = 0; t < 100; ++t) rm.access({t, t + 1}, t, true);
  // One reader spanning everything depends on all 100 writers.
  const auto preds = rm.access({0, 100}, 100, false);
  EXPECT_EQ(preds.size(), 100u);
}
