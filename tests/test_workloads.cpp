// Tests of the benchmark suite: every workload builds a valid task graph,
// reports Table II statistics, and (for a sample) runs to completion
// deterministically at reduced scale.
#include <gtest/gtest.h>

#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

using namespace tdn;
using namespace tdn::workloads;

TEST(Workloads, RegistryListsPaperSuite) {
  const auto& names = paper_workload_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "gauss");
  EXPECT_EQ(names.back(), "redblack");
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nonsense", {}), RequireError);
}

class WorkloadBuild : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadBuild, BuildsTasksAndStats) {
  system::SystemConfig cfg;
  system::TiledSystem sys(cfg);
  WorkloadParams params;
  params.scale = 0.25;
  auto wl = make_workload(GetParam(), params);
  wl->build(sys);
  const auto& st = wl->stats();
  EXPECT_GT(st.num_tasks, 10u) << GetParam();
  EXPECT_GT(st.input_bytes, 64 * kKiB) << GetParam();
  EXPECT_GT(st.avg_task_bytes, 0u);
  EXPECT_GE(st.num_phases, 1u);
  EXPECT_EQ(sys.runtime().tasks().size(), st.num_tasks);
  // Every task must have at least one dependency and a non-empty program.
  for (const auto& t : sys.runtime().tasks()) {
    EXPECT_FALSE(t.deps.empty()) << GetParam() << " " << t.label;
    EXPECT_FALSE(t.program.empty()) << GetParam() << " " << t.label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadBuild,
                         ::testing::Values("gauss", "histo", "jacobi",
                                           "kmeans", "knn", "lu", "md5",
                                           "redblack", "cholesky"));

class WorkloadRun : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRun, CompletesUnderTdNuca) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  system::TiledSystem sys(cfg);
  WorkloadParams params;
  params.scale = 0.15;
  auto wl = make_workload(GetParam(), params);
  wl->build(sys);
  const Cycle c = sys.run();
  EXPECT_GT(c, 0u);
  EXPECT_EQ(sys.runtime().tasks_completed(), wl->stats().num_tasks);
}

INSTANTIATE_TEST_SUITE_P(SampledBenchmarks, WorkloadRun,
                         ::testing::Values("jacobi", "md5", "kmeans",
                                           "cholesky"));

TEST(Workloads, JacobiIsFullyBypassedUnderTdNuca) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  system::TiledSystem sys(cfg);
  WorkloadParams params;
  params.scale = 0.15;
  auto wl = make_workload("jacobi", params);
  wl->build(sys);
  sys.run();
  // Barrier-separated stencil: every dependency predicts not-reused, so
  // demand accesses bypass the LLC entirely (paper Fig. 9's extreme cases).
  EXPECT_EQ(sys.caches().stats().llc_requests.value(), 0u);
  EXPECT_GT(sys.caches().stats().bypass_reads.value(), 0u);
}

TEST(Workloads, KnnRepliesOnReplicationNotBypass) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  system::TiledSystem sys(cfg);
  WorkloadParams params;
  params.scale = 0.2;
  auto wl = make_workload("knn", params);
  wl->build(sys);
  sys.run();
  auto* hooks = sys.tdnuca_hooks();
  EXPECT_GT(hooks->replicated_placements(), 0u);
  // The training set is never sent to DRAM by the bypass policy.
  EXPECT_LT(sys.caches().stats().bypass_reads.value(),
            sys.caches().stats().llc_requests.value());
}

TEST(Workloads, DeterministicBuild) {
  auto build_ids = [] {
    system::SystemConfig cfg;
    system::TiledSystem sys(cfg);
    auto wl = make_workload("lu", {});
    wl->build(sys);
    std::vector<std::string> labels;
    for (const auto& t : sys.runtime().tasks()) labels.push_back(t.label);
    return labels;
  };
  EXPECT_EQ(build_ids(), build_ids());
}

TEST(Workloads, ScaleShrinksFootprint) {
  system::SystemConfig cfg;
  system::TiledSystem big_sys(cfg);
  auto big = make_workload("jacobi", {.scale = 1.0});
  big->build(big_sys);
  system::TiledSystem small_sys(cfg);
  auto small = make_workload("jacobi", {.scale = 0.25});
  small->build(small_sys);
  EXPECT_GT(big->stats().input_bytes, small->stats().input_bytes);
}
