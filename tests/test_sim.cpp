// Unit tests: event queue determinism, the pooled/inline-callable substrate
// and the Joiner completion helper.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/joiner.hpp"

using namespace tdn;
using namespace tdn::sim;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
  EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameCycleFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eq.schedule_at(5, [&, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduleEvents) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] {
    eq.schedule_in(5, [&] { ++fired; });
  });
  eq.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, CannotScheduleInThePast) {
  EventQueue eq;
  eq.schedule_at(10, [&] {
    EXPECT_THROW(eq.schedule_at(5, [] {}), RequireError);
  });
  eq.run();
}

TEST(EventQueue, RunUntilThrowsOnOverrun) {
  EventQueue eq;
  eq.schedule_at(100, [] {});
  EXPECT_THROW(eq.run_until(50), RequireError);
}

TEST(EventQueue, ResumeAfterCaughtLimitOverrun) {
  // Regression: the deadlock guard used to pop the over-limit event before
  // throwing, so catching the overrun lost an event. The guard now peeks, so
  // a caught overrun leaves the queue resumable with a higher limit.
  EventQueue eq;
  std::vector<Cycle> ran;
  eq.schedule_at(10, [&] { ran.push_back(eq.now()); });
  eq.schedule_at(100, [&] { ran.push_back(eq.now()); });
  EXPECT_THROW(eq.run_until(50), RequireError);
  EXPECT_EQ(eq.now(), 10u);
  EXPECT_EQ(eq.executed(), 1u);
  EXPECT_EQ(eq.pending(), 1u);
  // Resume: the previously over-limit event must still fire.
  EXPECT_EQ(eq.run_until(200), 100u);
  EXPECT_EQ(ran, (std::vector<Cycle>{10, 100}));
  EXPECT_EQ(eq.executed(), 2u);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ThrowingActionIsConsumedButNotCounted) {
  // An action that throws cannot be un-run, so its event is consumed (and
  // its pool slot recycled), but it is not counted in executed(). The rest
  // of the queue stays intact and runnable.
  EventQueue eq;
  bool later_ran = false;
  eq.schedule_at(5, [] { throw std::runtime_error("boom"); });
  eq.schedule_at(10, [&] { later_ran = true; });
  EXPECT_THROW(eq.run(), std::runtime_error);
  EXPECT_EQ(eq.executed(), 0u);
  EXPECT_EQ(eq.pending(), 1u);
  eq.run();
  EXPECT_TRUE(later_ran);
  EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, PoolRecyclesSlotsAcrossWaves) {
  // Thousands of sequential events must reuse a handful of pooled slots:
  // the pool high-water mark tracks peak *pending* events, not total count.
  EventQueue eq;
  std::uint64_t fired = 0;
  for (int wave = 0; wave < 100; ++wave) {
    for (int i = 0; i < 8; ++i) {
      eq.schedule_in(static_cast<Cycle>(i + 1), [&] { ++fired; });
    }
    eq.run();
  }
  EXPECT_EQ(fired, 800u);
  EXPECT_EQ(eq.executed(), 800u);
  // 8 concurrent events fit comfortably in the first 256-slot chunk.
  EXPECT_LE(eq.pool_slots(), 256u);
}

TEST(EventQueue, PoolChurnPastOneChunkKeepsRecycleCapacity) {
  // Regression: recycle() is noexcept (it runs in destructors during
  // unwind) but free_.push_back could allocate once the pool grew past one
  // chunk — grow_pool reserved only the new chunk's worth. The invariant is
  // now free_capacity() >= pool_slots() at every growth step, so a recycle
  // can never allocate no matter how the pool churns.
  EventQueue eq;
  std::uint64_t fired = 0;
  for (int wave = 0; wave < 4; ++wave) {
    // 600 concurrent events force the pool well past the first 256-slot
    // chunk; draining them returns every slot through recycle().
    for (int i = 0; i < 600; ++i) {
      eq.schedule_in(static_cast<Cycle>(i % 7) + 1, [&] { ++fired; });
    }
    eq.run();
    EXPECT_GE(eq.free_capacity(), eq.pool_slots());
  }
  EXPECT_EQ(fired, 2400u);
  EXPECT_GE(eq.pool_slots(), 512u);
}

namespace {
// Copying throws, moving does not — the only failure InlineFunction::emplace
// admits (captures must be nothrow-move-constructible), so this is the
// exception-safety injection vector for the schedule paths.
struct ThrowOnCopy {
  bool* ran;
  explicit ThrowOnCopy(bool* r) : ran(r) {}
  ThrowOnCopy(const ThrowOnCopy& other) : ran(other.ran) {
    throw std::runtime_error("capture copy failed");
  }
  ThrowOnCopy(ThrowOnCopy&&) noexcept = default;
  void operator()() const { *ran = true; }
};
}  // namespace

TEST(EventQueue, ThrowingCaptureLeaksNoEventOrSeq) {
  // Strong guarantee on schedule_at: a capture constructor that throws must
  // leave the queue exactly as it was — no pending event, no consumed pool
  // slot, and no skipped sequence number (same-cycle FIFO stays gapless).
  EventQueue eq;
  std::vector<int> order;
  bool bad_ran = false;
  eq.schedule_at(5, [&] { order.push_back(1); });
  const std::size_t slots = eq.pool_slots();
  ThrowOnCopy bad{&bad_ran};
  EXPECT_THROW(eq.schedule_at(5, bad), std::runtime_error);
  EXPECT_EQ(eq.pending(), 1u);
  EXPECT_EQ(eq.pool_slots(), slots);
  eq.schedule_at(5, [&] { order.push_back(2); });
  eq.run();
  EXPECT_FALSE(bad_ran);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, ThrowingObserverCaptureLeavesCensusUntouched) {
  // Regression: schedule_observer_at bumped observer_pending_ before the
  // push that could throw, so a failed emplace skewed the observer census
  // (real_pending() and the ckpt quiescence check read it) and leaked a
  // stamped seq. The counter now moves only after the event is in the heap.
  EventQueue eq;
  bool bad_ran = false;
  eq.schedule_at(10, [] {});
  eq.schedule_observer_at(5, [] {});
  ThrowOnCopy bad{&bad_ran};
  EXPECT_THROW(eq.schedule_observer_at(7, bad), std::runtime_error);
  EXPECT_EQ(eq.pending(), 2u);
  EXPECT_EQ(eq.observer_pending(), 1u);
  EXPECT_EQ(eq.real_pending(), 1u);
  // The queue stays fully usable: both surviving events run normally.
  eq.run();
  EXPECT_FALSE(bad_ran);
  EXPECT_EQ(eq.executed(), 1u);
  EXPECT_EQ(eq.observer_pending(), 0u);
}

TEST(InlineFunction, CallsAndReturnsThroughTheInlineBuffer) {
  InlineFunction<int(int), 64> f = [](int x) { return x * 2; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(21), 42);
}

TEST(InlineFunction, MoveTransfersStateAndEmptiesSource) {
  int calls = 0;
  InlineFunction<void(), 64> a = [&calls] { ++calls; };
  InlineFunction<void(), 64> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InlineFunction<void(), 64> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, DestroysCaptureOnResetAndDestruction) {
  auto token = std::make_shared<int>(7);
  {
    InlineFunction<void(), 64> f = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    f.reset();
    EXPECT_EQ(token.use_count(), 1);
    f.emplace([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunction, HoldsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(5);
  InlineFunction<int(), 64> f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), 5);
}

TEST(InlineFunction, NearCapacityCaptureFitsInline) {
  // A capture filling (almost) the whole Action budget still compiles and
  // round-trips through the event queue — the compile-time contract that
  // real coherence continuations rely on.
  struct Big {
    unsigned char bytes[kActionCapacity - 8];
  };
  Big big{};
  std::memset(big.bytes, 0x5a, sizeof big.bytes);
  unsigned char seen = 0;
  EventQueue eq;
  eq.schedule_at(1, [big, &seen] { seen = big.bytes[sizeof(Big::bytes) - 1]; });
  eq.run();
  EXPECT_EQ(seen, 0x5a);
}

TEST(EventQueue, ZeroDelaySameCycle) {
  EventQueue eq;
  bool ran = false;
  eq.schedule_at(7, [&] { eq.schedule_in(0, [&] { ran = true; }); });
  eq.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, ObserverEventsExcludedFromAccounting) {
  EventQueue eq;
  int real = 0;
  int observed = 0;
  eq.schedule_at(10, [&] { ++real; });
  eq.schedule_observer_at(5, [&] { ++observed; });
  eq.schedule_observer_in(20, [&] { ++observed; });
  EXPECT_EQ(eq.pending(), 3u);
  EXPECT_EQ(eq.real_pending(), 1u);
  eq.run();
  EXPECT_EQ(real, 1);
  EXPECT_EQ(observed, 2);
  // Observer callbacks run but never count as executed events.
  EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, ObserverBeyondLimitIsDroppedNotFatal) {
  EventQueue eq;
  bool observed = false;
  eq.schedule_at(10, [] {});
  eq.schedule_observer_at(100, [&] { observed = true; });
  // A real event past the limit throws; a pending observer tick must not.
  eq.run_until(50);
  EXPECT_FALSE(observed);
  EXPECT_EQ(eq.executed(), 1u);
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ObserverInterleavesAtCorrectCycles) {
  EventQueue eq;
  std::vector<Cycle> at;
  eq.schedule_at(10, [&] { at.push_back(eq.now()); });
  eq.schedule_observer_at(15, [&] { at.push_back(eq.now()); });
  eq.schedule_at(20, [&] { at.push_back(eq.now()); });
  eq.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 10u);
  EXPECT_EQ(at[1], 15u);
  EXPECT_EQ(at[2], 20u);
}

TEST(Joiner, FiresWhenArmedAndDrained) {
  bool done = false;
  auto j = make_joiner([&] { done = true; });
  j->add(2);
  j->arm();
  EXPECT_FALSE(done);
  j->complete();
  EXPECT_FALSE(done);
  j->complete();
  EXPECT_TRUE(done);
}

TEST(Joiner, FiresImmediatelyWhenNothingPending) {
  bool done = false;
  auto j = make_joiner([&] { done = true; });
  j->arm();
  EXPECT_TRUE(done);
}

TEST(Joiner, CompletionBeforeArmDoesNotFireTwice) {
  int fires = 0;
  auto j = make_joiner([&] { ++fires; });
  j->add();
  j->complete();
  j->arm();
  EXPECT_EQ(fires, 1);
}
