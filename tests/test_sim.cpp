// Unit tests: event queue determinism and the Joiner completion helper.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/joiner.hpp"

using namespace tdn;
using namespace tdn::sim;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
  EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameCycleFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eq.schedule_at(5, [&, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduleEvents) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] {
    eq.schedule_in(5, [&] { ++fired; });
  });
  eq.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, CannotScheduleInThePast) {
  EventQueue eq;
  eq.schedule_at(10, [&] {
    EXPECT_THROW(eq.schedule_at(5, [] {}), RequireError);
  });
  eq.run();
}

TEST(EventQueue, RunUntilThrowsOnOverrun) {
  EventQueue eq;
  eq.schedule_at(100, [] {});
  EXPECT_THROW(eq.run_until(50), RequireError);
}

TEST(EventQueue, ZeroDelaySameCycle) {
  EventQueue eq;
  bool ran = false;
  eq.schedule_at(7, [&] { eq.schedule_in(0, [&] { ran = true; }); });
  eq.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, ObserverEventsExcludedFromAccounting) {
  EventQueue eq;
  int real = 0;
  int observed = 0;
  eq.schedule_at(10, [&] { ++real; });
  eq.schedule_observer_at(5, [&] { ++observed; });
  eq.schedule_observer_in(20, [&] { ++observed; });
  EXPECT_EQ(eq.pending(), 3u);
  EXPECT_EQ(eq.real_pending(), 1u);
  eq.run();
  EXPECT_EQ(real, 1);
  EXPECT_EQ(observed, 2);
  // Observer callbacks run but never count as executed events.
  EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, ObserverBeyondLimitIsDroppedNotFatal) {
  EventQueue eq;
  bool observed = false;
  eq.schedule_at(10, [] {});
  eq.schedule_observer_at(100, [&] { observed = true; });
  // A real event past the limit throws; a pending observer tick must not.
  eq.run_until(50);
  EXPECT_FALSE(observed);
  EXPECT_EQ(eq.executed(), 1u);
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ObserverInterleavesAtCorrectCycles) {
  EventQueue eq;
  std::vector<Cycle> at;
  eq.schedule_at(10, [&] { at.push_back(eq.now()); });
  eq.schedule_observer_at(15, [&] { at.push_back(eq.now()); });
  eq.schedule_at(20, [&] { at.push_back(eq.now()); });
  eq.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 10u);
  EXPECT_EQ(at[1], 15u);
  EXPECT_EQ(at[2], 20u);
}

TEST(Joiner, FiresWhenArmedAndDrained) {
  bool done = false;
  auto j = make_joiner([&] { done = true; });
  j->add(2);
  j->arm();
  EXPECT_FALSE(done);
  j->complete();
  EXPECT_FALSE(done);
  j->complete();
  EXPECT_TRUE(done);
}

TEST(Joiner, FiresImmediatelyWhenNothingPending) {
  bool done = false;
  auto j = make_joiner([&] { done = true; });
  j->arm();
  EXPECT_TRUE(done);
}

TEST(Joiner, CompletionBeforeArmDoesNotFireTwice) {
  int fires = 0;
  auto j = make_joiner([&] { ++fires; });
  j->add();
  j->complete();
  j->arm();
  EXPECT_EQ(fires, 1);
}
