// Property-based tests (parameterized sweeps) over the substrate's
// structural invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "cache/cache_array.hpp"
#include "cache/replacement.hpp"
#include "common/prng.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"
#include "tdnuca/rrt.hpp"

using namespace tdn;

// --- mesh metric properties -------------------------------------------

class MeshProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshProperty, HopsIsAMetric) {
  const auto [w, h] = GetParam();
  noc::Mesh m(w, h);
  const unsigned n = m.tiles();
  for (CoreId a = 0; a < n; ++a) {
    EXPECT_EQ(m.hops(a, a), 0u);
    for (CoreId b = 0; b < n; ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));  // symmetry
      for (CoreId c = 0; c < n; ++c) {
        EXPECT_LE(m.hops(a, c), m.hops(a, b) + m.hops(b, c));  // triangle
      }
    }
  }
}

TEST_P(MeshProperty, ClustersPartitionTheMesh) {
  const auto [w, h] = GetParam();
  if (w % 2 != 0 || h % 2 != 0) GTEST_SKIP();
  noc::Mesh m(w, h);
  std::map<unsigned, unsigned> sizes;
  for (CoreId t = 0; t < m.tiles(); ++t) ++sizes[m.cluster_of(t)];
  for (const auto& [cluster, size] : sizes) EXPECT_EQ(size, 4u) << cluster;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshProperty,
                         ::testing::Values(std::make_pair(2, 2),
                                           std::make_pair(4, 4),
                                           std::make_pair(4, 2),
                                           std::make_pair(8, 4),
                                           std::make_pair(3, 5)));

// --- pseudo-LRU properties --------------------------------------------

class PlruProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlruProperty, VictimAlwaysValidAndNotMru) {
  const unsigned ways = GetParam();
  cache::PseudoLruTree t(ways);
  SplitMix64 rng(GetParam() * 977);
  unsigned last_touched = ways;  // none
  for (int i = 0; i < 2000; ++i) {
    const unsigned v = t.victim();
    ASSERT_LT(v, ways);
    if (ways > 1 && last_touched < ways) EXPECT_NE(v, last_touched);
    last_touched = static_cast<unsigned>(rng.next_below(ways));
    t.touch(last_touched);
  }
}

INSTANTIATE_TEST_SUITE_P(WayCounts, PlruProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// --- cache array random-operation invariants ----------------------------

class ArrayProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArrayProperty, OccupancyAndResidencyInvariants) {
  struct M {
    int x = 0;
  };
  cache::CacheArray<M> arr({8 * kKiB, GetParam(), 64});
  SplitMix64 rng(99);
  std::set<Addr> resident;
  for (int i = 0; i < 5000; ++i) {
    const Addr line = rng.next_below(512) * 64;
    if (rng.next_below(3) == 0 && resident.count(line)) {
      arr.invalidate(line);
      resident.erase(line);
    } else if (arr.find(line) == nullptr) {
      std::optional<cache::CacheArray<M>::Eviction> ev;
      arr.allocate(line, ev);
      resident.insert(line);
      if (ev) resident.erase(ev->addr);
    } else {
      arr.touch(line);
    }
    ASSERT_EQ(arr.occupied_lines(), resident.size());
    ASSERT_LE(arr.occupied_lines(), arr.capacity_lines());
  }
  // Everything the model says is resident must be findable, and vice versa.
  for (const Addr a : resident) EXPECT_NE(arr.find(a), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Assoc, ArrayProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// --- page table properties ----------------------------------------------

class FragmentationProperty : public ::testing::TestWithParam<double> {};

TEST_P(FragmentationProperty, PiecesTileTheRangeExactly) {
  mem::PageTableConfig cfg;
  cfg.fragmentation = GetParam();
  mem::PageTable pt(cfg);
  SplitMix64 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Addr begin = 0x10000000 + rng.next_below(100) * 4096;
    const Addr bytes = (1 + rng.next_below(64)) * 4096;
    const auto tr = pt.translate_range({begin, begin + bytes});
    Addr covered = 0;
    for (std::size_t i = 0; i < tr.physical_pieces.size(); ++i) {
      EXPECT_FALSE(tr.physical_pieces[i].empty());
      covered += tr.physical_pieces[i].size();
      if (i > 0) {
        // Collapsing is maximal: adjacent pieces are never contiguous.
        EXPECT_NE(tr.physical_pieces[i - 1].end, tr.physical_pieces[i].begin);
      }
    }
    EXPECT_EQ(covered, bytes);
    EXPECT_EQ(tr.pages_walked, bytes / 4096);
  }
}

TEST_P(FragmentationProperty, TranslationIsIdempotent) {
  mem::PageTableConfig cfg;
  cfg.fragmentation = GetParam();
  mem::PageTable pt(cfg);
  const AddrRange vr{0x10000000, 0x10000000 + 32 * 4096};
  const auto first = pt.translate_range(vr);
  const auto second = pt.translate_range(vr);
  ASSERT_EQ(first.physical_pieces.size(), second.physical_pieces.size());
  for (std::size_t i = 0; i < first.physical_pieces.size(); ++i)
    EXPECT_EQ(first.physical_pieces[i], second.physical_pieces[i]);
}

INSTANTIATE_TEST_SUITE_P(Levels, FragmentationProperty,
                         ::testing::Values(0.0, 0.05, 0.15, 0.5, 1.0));

// --- S-NUCA interleave balance -------------------------------------------

class InterleaveProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(InterleaveProperty, PerfectBalanceOverAlignedRanges) {
  const unsigned banks = GetParam();
  std::map<BankId, unsigned> counts;
  const unsigned lines = banks * 64;
  for (Addr a = 0; a < lines * 64ull; a += 64)
    ++counts[nuca::snuca_bank(a, banks)];
  ASSERT_EQ(counts.size(), banks);
  for (const auto& [b, n] : counts) EXPECT_EQ(n, 64u) << b;
}

INSTANTIATE_TEST_SUITE_P(BankCounts, InterleaveProperty,
                         ::testing::Values(4u, 8u, 16u, 12u));

// --- RRT range-lookup properties ----------------------------------------

class RrtProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RrtProperty, LookupAgreesWithLinearScan) {
  const unsigned cap = GetParam();
  tdnuca::Rrt rrt(cap, 1);
  SplitMix64 rng(cap);
  // Shadow model mirroring the RRT's disjoint-trim semantics: a new
  // registration covers only the addresses no older entry already holds,
  // split into pieces, inserted lowest-address first up to capacity.
  std::vector<std::pair<AddrRange, BankMask>> shadow;
  auto subtract = [](std::vector<AddrRange> pieces, const AddrRange& e) {
    std::vector<AddrRange> out;
    for (const AddrRange& p : pieces) {
      if (p.end <= e.begin || e.end <= p.begin) {
        out.push_back(p);
        continue;
      }
      if (p.begin < e.begin) out.push_back(AddrRange{p.begin, e.begin});
      if (e.end < p.end) out.push_back(AddrRange{e.end, p.end});
    }
    return out;
  };
  for (unsigned i = 0; i < cap; ++i) {
    const Addr begin = rng.next_below(1000) * 0x1000;
    const AddrRange r{begin, begin + (1 + rng.next_below(8)) * 0x1000};
    const BankMask m = BankMask::single(static_cast<CoreId>(i % 16));
    rrt.register_range(r, m);
    std::vector<AddrRange> pieces{r};
    for (const auto& e : shadow) pieces = subtract(std::move(pieces), e.first);
    std::sort(pieces.begin(), pieces.end(),
              [](const AddrRange& a, const AddrRange& b) {
                return a.begin < b.begin;
              });
    for (const AddrRange& p : pieces) {
      if (shadow.size() < cap) shadow.push_back({p, m});
    }
  }
  for (int probe = 0; probe < 500; ++probe) {
    const Addr a = rng.next_below(1200) * 0x800;
    const auto got = rrt.lookup(a);
    const auto* expect = [&]() -> const std::pair<AddrRange, BankMask>* {
      for (const auto& e : shadow)
        if (e.first.contains(a)) return &e;
      return nullptr;
    }();
    EXPECT_EQ(got.has_value(), expect != nullptr);
    if (got && expect) {
      EXPECT_EQ(got->prange, expect->first);
      EXPECT_EQ(got->mask, expect->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RrtProperty,
                         ::testing::Values(4u, 16u, 64u));

// --- event queue ordering under random load ------------------------------

TEST(EventQueueProperty, RandomScheduleExecutesInOrder) {
  sim::EventQueue eq;
  SplitMix64 rng(17);
  std::vector<Cycle> executed_at;
  for (int i = 0; i < 1000; ++i) {
    eq.schedule_at(rng.next_below(500), [&] { executed_at.push_back(eq.now()); });
  }
  eq.run();
  ASSERT_EQ(executed_at.size(), 1000u);
  for (std::size_t i = 1; i < executed_at.size(); ++i)
    EXPECT_LE(executed_at[i - 1], executed_at[i]);
}
