// Tests of the tdn::fault subsystem: plan DSL parsing, HealthState
// semantics, RRT degradation hooks and the register_range overlap-split
// regression, the no-progress watchdog, end-to-end degraded runs, and the
// serial/parallel bit-identity of fault runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/require.hpp"
#include "fault/fault_plan.hpp"
#include "fault/health.hpp"
#include "fault/watchdog.hpp"
#include "harness/runner.hpp"
#include "harness/sweep_runner.hpp"
#include "sim/event_queue.hpp"
#include "tdnuca/rrt.hpp"

using namespace tdn;
using namespace tdn::fault;

// --- fault plan DSL ------------------------------------------------------

TEST(FaultPlan, ParsesTheIssueExample) {
  const auto plan = FaultPlan::parse(
      "bank_fail@3:cycle=1M,link_degrade@(1,2)-(2,2):x4,rrt_flip@core5:cycle=2M");
  ASSERT_EQ(plan.events().size(), 3u);

  const FaultEvent& bank = plan.events()[0];
  EXPECT_EQ(bank.kind, FaultKind::BankFail);
  EXPECT_EQ(bank.unit, 3u);
  EXPECT_EQ(bank.at, 1'000'000u);

  const FaultEvent& link = plan.events()[1];
  EXPECT_EQ(link.kind, FaultKind::LinkDegrade);
  EXPECT_EQ(link.ax, 1u);
  EXPECT_EQ(link.ay, 2u);
  EXPECT_EQ(link.bx, 2u);
  EXPECT_EQ(link.by, 2u);
  EXPECT_EQ(link.factor, 4u);

  const FaultEvent& flip = plan.events()[2];
  EXPECT_EQ(flip.kind, FaultKind::RrtFlip);
  EXPECT_EQ(flip.unit, 5u);
  EXPECT_EQ(flip.at, 2'000'000u);
}

TEST(FaultPlan, CanonicalIsAStableRoundTrip) {
  const std::string messy =
      "  bank_slow@bank2 : x3 : cycle=10k ,dram_stall@mc1:len=5k ";
  const auto plan = FaultPlan::parse(messy);
  const std::string canon = plan.canonical();
  EXPECT_EQ(canon, "bank_slow@2:cycle=10000:x3,dram_stall@1:len=5000");
  // Canonical form re-parses to itself: the fingerprint input is stable no
  // matter how the user spelled the plan.
  EXPECT_EQ(FaultPlan::parse(canon).canonical(), canon);
}

TEST(FaultPlan, ScaledSuffixesAndDefaults) {
  const auto plan = FaultPlan::parse("bank_fail@0,dram_stall@2:cycle=2G:len=1M");
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].at, 0u);  // cycle defaults to 0
  EXPECT_EQ(plan.events()[1].at, 2'000'000'000u);
  EXPECT_EQ(plan.events()[1].length, 1'000'000u);
}

TEST(FaultPlan, EmptySpecIsAnEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ,  ").empty());
  EXPECT_EQ(FaultPlan::parse("").canonical(), "");
}

TEST(FaultPlan, MalformedSpecsThrowWithTheOffendingToken) {
  EXPECT_THROW(FaultPlan::parse("bank_melt@3"), RequireError);
  EXPECT_THROW(FaultPlan::parse("bank_fail"), RequireError);           // no target
  EXPECT_THROW(FaultPlan::parse("bank_fail@x"), RequireError);         // bad index
  EXPECT_THROW(FaultPlan::parse("bank_fail@3:cycle=abc"), RequireError);
  EXPECT_THROW(FaultPlan::parse("bank_fail@3:wat=1"), RequireError);
  EXPECT_THROW(FaultPlan::parse("link_fail@(0,0)-(2,0)"), RequireError);  // not neighbours
  EXPECT_THROW(FaultPlan::parse("link_fail@(0,0)-(1,0"), RequireError);   // unbalanced
  EXPECT_THROW(FaultPlan::parse("dram_stall@0"), RequireError);           // needs len=
  try {
    FaultPlan::parse("bank_fail@3:cycle=1z");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    EXPECT_NE(std::string(e.what()).find("bank_fail@3:cycle=1z"),
              std::string::npos);
  }
}

// --- HealthState ---------------------------------------------------------

TEST(HealthState, BankFailureShrinksTheHealthySet) {
  HealthState hs(16, 64);
  EXPECT_FALSE(hs.any_fault());
  EXPECT_EQ(hs.num_healthy(), 16u);

  hs.fail_bank(3);
  EXPECT_TRUE(hs.any_bank_failed());
  EXPECT_FALSE(hs.bank_ok(3));
  EXPECT_TRUE(hs.bank_ok(4));
  EXPECT_EQ(hs.num_healthy(), 15u);
  EXPECT_FALSE(hs.healthy_banks().test(3));
  EXPECT_TRUE(hs.failed_banks().test(3));
  EXPECT_EQ(hs.counters.banks_failed, 1u);

  // Idempotent: failing a dead bank again is a no-op.
  hs.fail_bank(3);
  EXPECT_EQ(hs.counters.banks_failed, 1u);
}

TEST(HealthState, RemapNeverReturnsAFailedBank) {
  HealthState hs(16, 64);
  hs.fail_bank(0);
  hs.fail_bank(7);
  hs.fail_bank(15);
  for (Addr a = 0; a < 4096 * 64; a += 64) {
    const BankId b = hs.remap_bank(a);
    EXPECT_TRUE(hs.bank_ok(b)) << "addr " << a << " -> bank " << b;
  }
}

TEST(HealthState, TheLastBankCannotFail) {
  HealthState hs(2, 64);
  hs.fail_bank(0);
  EXPECT_THROW(hs.fail_bank(1), RequireError);
}

TEST(HealthState, LinksAndFactors) {
  HealthState hs(16, 64);
  EXPECT_TRUE(hs.link_ok(5, kLinkEast));
  hs.fail_link(5, kLinkEast);
  EXPECT_FALSE(hs.link_ok(5, kLinkEast));
  EXPECT_TRUE(hs.link_ok(5, kLinkWest));
  EXPECT_TRUE(hs.any_link_failed());

  EXPECT_EQ(hs.bank_factor(2), 1u);
  hs.slow_bank(2, 8);
  EXPECT_EQ(hs.bank_factor(2), 8u);
  EXPECT_TRUE(hs.any_bank_slowed());

  hs.degrade_link(3, kLinkSouth, 4);
  EXPECT_EQ(hs.link_factor(3, kLinkSouth), 4u);
  EXPECT_EQ(hs.counters.links_failed, 1u);
  EXPECT_EQ(hs.counters.links_degraded, 1u);
}

// --- RRT overlap splitting (regression) and degradation hooks ------------

TEST(RrtOverlap, NewRangeIsTrimmedAgainstOlderEntries) {
  tdnuca::Rrt rrt(64, 1);
  const BankMask m0 = BankMask::single(0);
  const BankMask m1 = BankMask::single(1);
  ASSERT_TRUE(rrt.register_range({0x2000, 0x6000}, m0));
  // Overlapping registration: only [0x1000,0x2000) and [0x6000,0x8000)
  // are uncovered; the middle stays with the older entry.
  ASSERT_TRUE(rrt.register_range({0x1000, 0x8000}, m1));
  ASSERT_EQ(rrt.size(), 3u);

  EXPECT_EQ(rrt.lookup(0x3000)->mask, m0);  // older entry keeps the middle
  EXPECT_EQ(rrt.lookup(0x1000)->mask, m1);
  EXPECT_EQ(rrt.lookup(0x1000)->prange, (AddrRange{0x1000, 0x2000}));
  EXPECT_EQ(rrt.lookup(0x7000)->mask, m1);
  EXPECT_EQ(rrt.lookup(0x7000)->prange, (AddrRange{0x6000, 0x8000}));
  EXPECT_EQ(rrt.overlap_trims(), 1u);

  // Entries stay pairwise disjoint.
  const auto& es = rrt.entries();
  for (std::size_t i = 0; i < es.size(); ++i)
    for (std::size_t j = i + 1; j < es.size(); ++j)
      EXPECT_FALSE(es[i].prange.overlaps(es[j].prange)) << i << "," << j;
}

TEST(RrtOverlap, FullyShadowedRangeRegistersNothing) {
  tdnuca::Rrt rrt(64, 1);
  ASSERT_TRUE(rrt.register_range({0x0, 0x10000}, BankMask::single(0)));
  // Shadowed duplicate: no new entry, no overflow, still returns true.
  EXPECT_TRUE(rrt.register_range({0x4000, 0x8000}, BankMask::single(9)));
  EXPECT_EQ(rrt.size(), 1u);
  EXPECT_EQ(rrt.lookup(0x5000)->mask, BankMask::single(0));
  // invalidate_range removes exactly one entry — no shadowed duplicate
  // survives to double-count.
  EXPECT_EQ(rrt.invalidate_range({0x4000, 0x8000}), 1u);
  EXPECT_EQ(rrt.size(), 0u);
}

TEST(RrtOverlap, CapacityOverflowDropsLowestPiecesLast) {
  tdnuca::Rrt rrt(2, 1);
  ASSERT_TRUE(rrt.register_range({0x4000, 0x5000}, BankMask::single(0)));
  // Splits into [0x1000,0x4000) and [0x5000,0x8000); only the first fits.
  EXPECT_FALSE(rrt.register_range({0x1000, 0x8000}, BankMask::single(1)));
  EXPECT_EQ(rrt.size(), 2u);
  EXPECT_TRUE(rrt.lookup(0x2000).has_value());   // low piece inserted
  EXPECT_FALSE(rrt.lookup(0x6000).has_value());  // high piece dropped
  EXPECT_EQ(rrt.overflows(), 1u);
}

TEST(RrtDegradation, HealNarrowsAndErasesEntries) {
  tdnuca::Rrt rrt(64, 1);
  const BankMask cluster = BankMask(0b1111);                 // banks 0-3
  ASSERT_TRUE(rrt.register_range({0x1000, 0x2000}, cluster));
  ASSERT_TRUE(rrt.register_range({0x2000, 0x3000}, BankMask::single(5)));
  ASSERT_TRUE(rrt.register_range({0x3000, 0x4000}, BankMask()));  // bypass

  BankMask healthy = BankMask::first_n(16);
  healthy.clear(5);
  healthy.clear(2);
  const auto res = rrt.heal(healthy);
  EXPECT_EQ(res.narrowed, 1u);  // cluster loses bank 2
  EXPECT_EQ(res.erased, 1u);    // single-bank entry on dead bank 5
  ASSERT_EQ(rrt.size(), 2u);
  EXPECT_EQ(rrt.lookup(0x1000)->mask, BankMask(0b1011));
  EXPECT_FALSE(rrt.lookup(0x2000).has_value());  // falls back to S-NUCA
  EXPECT_TRUE(rrt.lookup(0x3000)->mask.empty()); // bypass entries untouched
}

TEST(RrtDegradation, CorruptAndEvictEntries) {
  tdnuca::Rrt rrt(64, 1);
  ASSERT_TRUE(rrt.register_range({0x1000, 0x2000}, BankMask::single(4)));
  rrt.corrupt_entry(0, BankMask::single(9));
  EXPECT_EQ(rrt.lookup(0x1000)->mask, BankMask::single(9));
  EXPECT_EQ(rrt.evict_entry(0), (AddrRange{0x1000, 0x2000}));
  EXPECT_EQ(rrt.size(), 0u);
  EXPECT_THROW(rrt.corrupt_entry(0, BankMask()), RequireError);
  EXPECT_THROW(rrt.evict_entry(0), RequireError);
}

// --- watchdog ------------------------------------------------------------

namespace {

/// Seed a livelock: a chain of real events that executes merrily without the
/// progress witness ever advancing.
void seed_livelock(sim::EventQueue& eq, int hops, Cycle step) {
  if (hops <= 0) return;
  eq.schedule_in(step, [&eq, hops, step] { seed_livelock(eq, hops - 1, step); });
}

}  // namespace

TEST(Watchdog, FiringProducesADiagnosticInsteadOfAborting) {
  sim::EventQueue eq;
  Watchdog wd(eq, /*budget=*/50);
  wd.set_progress([] { return 0ull; });  // never advances
  wd.add_diagnostic("queue_depth", [&eq] {
    return std::to_string(eq.pending());
  });
  std::string captured;
  wd.on_fire([&captured](const std::string& d) { captured = d; });

  seed_livelock(eq, /*hops=*/100, /*step=*/10);
  wd.arm();
  eq.run();  // does not hang and does not throw: the collector absorbed it

  EXPECT_TRUE(wd.fired());
  EXPECT_NE(captured.find("no forward progress"), std::string::npos);
  EXPECT_NE(captured.find("queue_depth"), std::string::npos);
  EXPECT_NE(captured.find("cycle="), std::string::npos);
}

TEST(Watchdog, DefaultHandlerThrowsWatchdogError) {
  sim::EventQueue eq;
  Watchdog wd(eq, /*budget=*/50);
  wd.set_progress([] { return 0ull; });
  seed_livelock(eq, /*hops=*/100, /*step=*/10);
  wd.arm();
  EXPECT_THROW(eq.run(), WatchdogError);
}

TEST(Watchdog, AdvancingProgressNeverFires) {
  sim::EventQueue eq;
  std::uint64_t work = 0;
  Watchdog wd(eq, /*budget=*/50);
  wd.set_progress([&work] { return work; });
  // Real events that DO advance the witness each step.
  std::function<void(int)> chain = [&](int hops) {
    if (hops <= 0) return;
    eq.schedule_in(10, [&chain, &work, hops] {
      ++work;
      chain(hops - 1);
    });
  };
  chain(100);
  wd.arm();
  eq.run();
  EXPECT_FALSE(wd.fired());
  EXPECT_GT(wd.ticks(), 5u);  // it was watching the whole time
}

TEST(Watchdog, ObserverEventsNeverSatisfyTheProgressCheck) {
  // Observer traffic (epoch samplers, the watchdog itself) is excluded from
  // executed(): a window where ONLY observers ran is idle, not live, so the
  // watchdog must not fire even though the witness is frozen.
  sim::EventQueue eq;
  Watchdog wd(eq, /*budget=*/50);
  wd.set_progress([] { return 0ull; });
  std::string captured;
  wd.on_fire([&captured](const std::string& d) { captured = d; });

  // Dense observer chain across the whole window, interleaving with every
  // watchdog deadline tick.
  std::function<void(int)> observers = [&](int hops) {
    if (hops <= 0) return;
    eq.schedule_observer_in(5, [&observers, hops] { observers(hops - 1); });
  };
  observers(200);
  // One distant real event keeps real_pending() nonzero so the watchdog
  // keeps watching rather than declaring the run drained.
  eq.schedule_at(990, [] {});
  wd.arm();
  eq.run();

  EXPECT_FALSE(wd.fired());
  EXPECT_TRUE(captured.empty());
  EXPECT_GT(wd.ticks(), 10u);  // deadlines interleaved with the observers
}

TEST(Watchdog, ZeroBudgetIsDisabled) {
  sim::EventQueue eq;
  Watchdog wd(eq, /*budget=*/0);
  wd.set_progress([] { return 0ull; });
  seed_livelock(eq, 50, 10);
  wd.arm();
  eq.run();
  EXPECT_FALSE(wd.fired());
  EXPECT_EQ(wd.ticks(), 0u);
}

// --- end-to-end degraded runs --------------------------------------------

namespace {

harness::RunResult run_faulted(const std::string& wl, system::PolicyKind p,
                               const std::string& plan,
                               double scale = 0.1) {
  harness::RunConfig cfg;
  cfg.workload = wl;
  cfg.policy = p;
  cfg.params.scale = scale;
  cfg.sys.fault.plan = plan;
  return harness::run_experiment(cfg, /*use_cache=*/false);
}

}  // namespace

TEST(FaultIntegration, BankFailureDegradesGracefully) {
  for (const auto p : {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
    const auto healthy = run_faulted("kmeans", p, "");
    const auto faulted = run_faulted("kmeans", p, "bank_fail@3:cycle=1k");
    // The run completes (the end-of-run invariant checker passed inside
    // run_experiment) and actually took the degraded path.
    EXPECT_GT(faulted.get("tasks.completed"), 0.0);
    EXPECT_EQ(faulted.get("tasks.completed"), healthy.get("tasks.completed"));
    EXPECT_EQ(faulted.get("fault.banks_failed"), 1.0);
    EXPECT_EQ(faulted.get("fault.healthy_banks"), 15.0);
    // Healthy runs carry no fault.* keys at all, and a failed bank visibly
    // changes the simulation.
    EXPECT_FALSE(healthy.has("fault.banks_failed"));
    EXPECT_NE(faulted.get("sim.cycles"), healthy.get("sim.cycles"));
  }
}

TEST(FaultIntegration, TwoBankFailures) {
  const auto r =
      run_faulted("jacobi", system::PolicyKind::TdNuca,
                  "bank_fail@3:cycle=1k,bank_fail@9:cycle=2k");
  EXPECT_EQ(r.get("fault.banks_failed"), 2.0);
  EXPECT_EQ(r.get("fault.healthy_banks"), 14.0);
  EXPECT_GT(r.get("tasks.completed"), 0.0);
}

TEST(FaultIntegration, LinkFailureReroutesTraffic) {
  const auto r = run_faulted("kmeans", system::PolicyKind::SNuca,
                             "link_fail@(1,1)-(2,1)");
  EXPECT_EQ(r.get("fault.links_failed"), 2.0);  // both directions
  EXPECT_GT(r.get("fault.noc_reroutes"), 0.0);  // Y-X fallback engaged
  EXPECT_GT(r.get("tasks.completed"), 0.0);
}

TEST(FaultIntegration, DramStallDelaysTheRun) {
  const auto healthy = run_faulted("md5", system::PolicyKind::SNuca, "");
  const auto stalled = run_faulted("md5", system::PolicyKind::SNuca,
                                   "dram_stall@0:cycle=1k:len=50k");
  EXPECT_EQ(stalled.get("fault.dram_stalls"), 1.0);
  EXPECT_GT(stalled.get("sim.cycles"), healthy.get("sim.cycles"));
}

TEST(FaultIntegration, RrtCorruptionIsScrubbed) {
  const auto r = run_faulted(
      "kmeans", system::PolicyKind::TdNuca,
      "rrt_flip@core0:cycle=5k,rrt_evict@core1:cycle=5k");
  EXPECT_GT(r.get("tasks.completed"), 0.0);
  // Each injected soft error that landed on a populated table gets scrubbed
  // after the detection delay.
  EXPECT_EQ(r.get("fault.rrt_scrubs"),
            r.get("fault.rrt_corruptions") + r.get("fault.rrt_evictions"));
}

TEST(FaultIntegration, FaultRunsAreBitIdenticalAcrossJobs) {
  std::vector<harness::RunConfig> cfgs;
  for (const char* wl : {"kmeans", "jacobi"}) {
    for (const auto p : {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = wl;
      cfg.policy = p;
      cfg.params.scale = 0.1;
      cfg.sys.fault.plan = "bank_fail@3:cycle=1k,link_degrade@(0,1)-(1,1):x4";
      cfgs.push_back(std::move(cfg));
    }
  }
  harness::SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.use_cache = false;
  harness::SweepOptions pool_opts;
  pool_opts.jobs = 4;
  pool_opts.use_cache = false;
  const auto serial = harness::SweepRunner(serial_opts).run(cfgs);
  const auto pooled = harness::SweepRunner(pool_opts).run(cfgs);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].metrics, pooled[i].metrics) << "run " << i;
}

// --- fingerprinting ------------------------------------------------------

TEST(FaultFingerprint, PlanSeedAndScrubDelayChangeIt) {
  harness::RunConfig base;
  base.workload = "kmeans";
  base.policy = system::PolicyKind::TdNuca;
  const std::uint64_t fp0 = base.fingerprint();

  harness::RunConfig planned = base;
  planned.sys.fault.plan = "bank_fail@3:cycle=1k";
  EXPECT_NE(planned.fingerprint(), fp0);

  harness::RunConfig seeded = planned;
  seeded.sys.fault.seed ^= 1;
  EXPECT_NE(seeded.fingerprint(), planned.fingerprint());

  harness::RunConfig scrub = planned;
  scrub.sys.fault.rrt_scrub_delay += 1;
  EXPECT_NE(scrub.fingerprint(), planned.fingerprint());

  // Equivalent spellings of the same plan share a fingerprint (canonical
  // form feeds the hash, not the raw string).
  harness::RunConfig spaced = base;
  spaced.sys.fault.plan = " bank_fail@bank3 : cycle=1000 ";
  EXPECT_EQ(spaced.fingerprint(), planned.fingerprint());
}

TEST(FaultFingerprint, ObserverKnobsDoNot) {
  harness::RunConfig base;
  base.workload = "kmeans";
  const std::uint64_t fp0 = base.fingerprint();

  harness::RunConfig wd = base;
  wd.sys.fault.watchdog_budget = 1'000'000;
  EXPECT_EQ(wd.fingerprint(), fp0);

  harness::RunConfig inv = base;
  inv.sys.fault.check_invariants = false;
  EXPECT_EQ(inv.fingerprint(), fp0);
}

// --- sweep error context --------------------------------------------------

TEST(SweepErrorContext, FailureCarriesDescribeAndFingerprint) {
  harness::RunConfig good;
  good.workload = "md5";
  good.params.scale = 0.1;
  harness::RunConfig bad;
  bad.workload = "no_such_workload";
  bad.policy = system::PolicyKind::TdNuca;
  bad.sys.fault.plan = "bank_fail@3:cycle=1k";
  const std::vector<harness::RunConfig> cfgs{good, bad};

  harness::SweepOptions opts;
  opts.jobs = 2;
  opts.use_cache = false;
  try {
    harness::SweepRunner(opts).run(cfgs);
    FAIL() << "expected the sweep to rethrow the bad run's error";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep run 1 failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("no_such_workload"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fingerprint=0x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("faults=\"bank_fail@3:cycle=1k\""), std::string::npos)
        << msg;
  }
}
