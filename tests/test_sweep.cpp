// Tests of the parallel sweep runner: serial/parallel bit-identity,
// in-process fingerprint dedup, concurrent results-cache safety, and
// malformed-cache tolerance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "harness/results_cache.hpp"
#include "harness/sweep_runner.hpp"

using namespace tdn;
using namespace tdn::harness;

namespace {

struct CacheDirGuard {
  std::string dir;
  CacheDirGuard() {
    dir = (std::filesystem::temp_directory_path() /
           ("tdn_test_sweep_" + std::to_string(::getpid())))
              .string();
    ::setenv("TDN_CACHE_DIR", dir.c_str(), 1);
    ::unsetenv("TDN_NO_CACHE");
  }
  ~CacheDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    ::unsetenv("TDN_CACHE_DIR");
  }
};

/// 6 distinct small configs: 3 workloads x 2 policies.
std::vector<RunConfig> six_configs() {
  std::vector<RunConfig> cfgs;
  for (const char* wl : {"md5", "lu", "knn"}) {
    for (const auto pol : {system::PolicyKind::SNuca,
                           system::PolicyKind::TdNuca}) {
      RunConfig cfg;
      cfg.workload = wl;
      cfg.policy = pol;
      cfg.params.scale = 0.1;
      cfgs.push_back(std::move(cfg));
    }
  }
  return cfgs;
}

std::vector<RunResult> sweep(const std::vector<RunConfig>& cfgs, unsigned jobs,
                             bool use_cache = false,
                             SweepStats* stats_out = nullptr) {
  SweepOptions opts;
  opts.jobs = jobs;
  opts.use_cache = use_cache;
  SweepRunner runner(opts);
  auto results = runner.run(cfgs);
  if (stats_out != nullptr) *stats_out = runner.stats();
  return results;
}

}  // namespace

TEST(FormatEta, RendersCompactDurations) {
  using harness::format_eta;
  EXPECT_EQ(format_eta(0.0), "0s");
  EXPECT_EQ(format_eta(400.0), "0s");        // rounds to nearest second
  EXPECT_EQ(format_eta(59499.0), "59s");     // just under the minute cutover
  EXPECT_EQ(format_eta(60000.0), "1m00s");
  EXPECT_EQ(format_eta(187000.0), "3m07s");
  EXPECT_EQ(format_eta(3600000.0), "1h00m");
  EXPECT_EQ(format_eta(8100000.0), "2h15m");
}

TEST(FormatEta, NonFiniteAndNegativeRenderAsDashes) {
  using harness::format_eta;
  // Regression: a first run completing in ~0 elapsed ms used to extrapolate
  // Inf/NaN into the progress line; a done>total miscount produced negative
  // remaining work. All of these must render as placeholders, never feed a
  // non-finite double into an integer cast (UB).
  EXPECT_EQ(format_eta(std::numeric_limits<double>::quiet_NaN()), "--");
  EXPECT_EQ(format_eta(std::numeric_limits<double>::infinity()), "--");
  EXPECT_EQ(format_eta(-1.0), "--");
  EXPECT_EQ(format_eta(-std::numeric_limits<double>::infinity()), "--");
}

TEST(FormatEta, ClampsBeyondNinetyNineHours) {
  using harness::format_eta;
  EXPECT_EQ(format_eta(99.0 * 3600.0 * 1000.0), "99h00m");
  EXPECT_EQ(format_eta(100.0 * 3600.0 * 1000.0), ">99h");
  EXPECT_EQ(format_eta(1e300), ">99h");
  EXPECT_EQ(format_eta(std::numeric_limits<double>::max()), ">99h");
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  const auto cfgs = six_configs();
  const auto serial = sweep(cfgs, /*jobs=*/1);
  const auto parallel = sweep(cfgs, /*jobs=*/4);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    // Input-ordered: result i corresponds to config i in both sweeps.
    EXPECT_EQ(serial[i].workload, cfgs[i].workload) << "run " << i;
    EXPECT_EQ(parallel[i].workload, cfgs[i].workload) << "run " << i;
    EXPECT_EQ(serial[i].policy, parallel[i].policy) << "run " << i;
    // Bit-identical metrics regardless of pool scheduling order. std::map
    // equality compares every key and every double exactly.
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "run " << i;
  }
}

TEST(SweepRunner, DedupSimulatesEachFingerprintOnce) {
  RunConfig cfg;
  cfg.workload = "md5";
  cfg.policy = system::PolicyKind::SNuca;
  cfg.params.scale = 0.1;
  const std::vector<RunConfig> cfgs(4, cfg);
  SweepStats stats;
  const auto results = sweep(cfgs, /*jobs=*/4, /*use_cache=*/false, &stats);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.simulated, 1u);
  EXPECT_EQ(stats.deduped, 3u);
  for (const auto& r : results) EXPECT_EQ(r.metrics, results[0].metrics);
}

TEST(SweepRunner, RecordsWallClockAndAccounting) {
  const auto cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 2;
  opts.use_cache = false;
  SweepRunner runner(opts);
  const auto results = runner.run(cfgs);
  const stats::Registry& reg = runner.registry();
  EXPECT_EQ(reg.get("sweep.runs"), 6.0);
  EXPECT_EQ(reg.get("sweep.simulated"), 6.0);
  EXPECT_EQ(reg.get("sweep.cache_hits"), 0.0);
  EXPECT_EQ(reg.get("sweep.jobs"), 2.0);
  EXPECT_GT(reg.get("sweep.total_wall_ms"), 0.0);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(reg.has("sweep.run" + std::to_string(i) + ".wall_ms"));
    EXPECT_GE(results[i].wall_ms, 0.0);
    EXPECT_FALSE(results[i].from_cache);
  }
}

TEST(SweepRunner, SecondSweepIsServedFromCache) {
  CacheDirGuard guard;
  const auto cfgs = six_configs();
  SweepStats cold, warm;
  const auto first = sweep(cfgs, /*jobs=*/3, /*use_cache=*/true, &cold);
  const auto second = sweep(cfgs, /*jobs=*/3, /*use_cache=*/true, &warm);
  EXPECT_EQ(cold.simulated, 6u);
  EXPECT_EQ(warm.cache_hits, 6u);
  EXPECT_EQ(warm.simulated, 0u);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(first[i].metrics, second[i].metrics);
    EXPECT_TRUE(second[i].from_cache);
  }
}

TEST(ResultsCacheConcurrency, ContendingStoreLoadNeverSeesTornFiles) {
  CacheDirGuard guard;
  std::map<std::string, double> payload;
  for (int i = 0; i < 64; ++i)
    payload["metric." + std::to_string(i)] = 1.0 / (i + 1);
  const std::string key = "contended";
  constexpr int kIters = 200;

  std::thread writer_a([&] {
    for (int i = 0; i < kIters; ++i) ResultsCache::store(key, payload);
  });
  std::thread writer_b([&] {
    for (int i = 0; i < kIters; ++i) ResultsCache::store(key, payload);
  });
  std::size_t seen = 0, torn = 0;
  std::atomic<bool> writers_done{false};
  std::thread reader([&] {
    // Probe until the writers finish and at least one publish was observed:
    // store() fsyncs before renaming, so a fixed probe count could drain
    // before the first entry lands.
    while (!writers_done.load(std::memory_order_acquire) || seen == 0) {
      const auto loaded = ResultsCache::load(key);
      if (!loaded.has_value()) continue;  // not yet published: fine
      ++seen;
      // Any published file must be complete — a partial map means a reader
      // observed a torn write.
      if (*loaded != payload) ++torn;
    }
  });
  writer_a.join();
  writer_b.join();
  writers_done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn, 0u);
  EXPECT_GT(seen, 0u);
  // After the dust settles the entry round-trips exactly, and no temp files
  // leak into the cache directory.
  const auto final_load = ResultsCache::load(key);
  ASSERT_TRUE(final_load.has_value());
  EXPECT_EQ(*final_load, payload);
  for (const auto& e : std::filesystem::directory_iterator(guard.dir)) {
    EXPECT_EQ(e.path().extension(), ".csv") << e.path();
  }
}

TEST(ResultsCacheConcurrency, MalformedLinesAreSkippedNotTrusted) {
  CacheDirGuard guard;
  std::filesystem::create_directories(guard.dir);
  {
    std::ofstream out(std::filesystem::path(guard.dir) / "mixed.csv");
    out << "good.metric,2.5\n"
        << "no comma in this line\n"
        << "torn.value,1.7e3garbage\n"
        << ",0.5\n"
        << "another.good,42\n";
  }
  const auto loaded = ResultsCache::load("mixed");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->at("good.metric"), 2.5);
  EXPECT_DOUBLE_EQ(loaded->at("another.good"), 42.0);

  // A file with only malformed lines is a miss, not an empty result.
  {
    std::ofstream out(std::filesystem::path(guard.dir) / "allbad.csv");
    out << "garbage\nmore garbage\n";
  }
  EXPECT_FALSE(ResultsCache::load("allbad").has_value());
}

TEST(Logger, ConcurrentFirstUseAndWritesAreSafe) {
  // Exercises the once_flag env-parse path and the serialized write path
  // from many threads at once; TSan/ASan builds would flag a race here.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        (void)log::level(log::Sub::Harness);
        if (t == 0 && i == 0)
          log::configure("warn");  // concurrent reconfigure is also safe
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}
