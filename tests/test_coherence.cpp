// Integration-level tests of the MESI cache hierarchy on a small 2x2 system
// under S-NUCA, exercising fills, hits, upgrades, writebacks, invalidations,
// inclusive back-invalidation, LLC bypass, and range flushes.
#include <gtest/gtest.h>

#include "coherence/coherent_system.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;
using namespace tdn::coherence;

namespace {

struct Rig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  HierarchyConfig cfg;
  std::unique_ptr<CoherentSystem> sys;

  explicit Rig(HierarchyConfig c = {}) : cfg(c) {
    sys = std::make_unique<CoherentSystem>(eq, net, mesh, mcs, policy, cfg, 4);
  }

  Cycle access(CoreId core, Addr paddr, AccessKind kind) {
    Cycle done = kNeverCycle;
    sys->access(core, paddr, paddr, kind, [&](Cycle at) { done = at; });
    eq.run();
    EXPECT_NE(done, kNeverCycle);
    return done;
  }
};

/// A policy that bypasses everything (to test the bypass datapath).
class AlwaysBypass final : public nuca::MappingPolicy {
 public:
  const char* name() const override { return "bypass-all"; }
  nuca::MapDecision map(CoreId, Addr, Addr, AccessKind) override {
    return nuca::MapDecision::bypass();
  }
};

}  // namespace

TEST(Coherence, ReadMissFillsAndHits) {
  Rig rig;
  const Cycle t1 = rig.access(0, 0x1000, AccessKind::Read);
  EXPECT_GT(t1, rig.cfg.l1_latency);  // went to LLC + memory
  EXPECT_EQ(rig.sys->stats().l1_misses.value(), 1u);
  EXPECT_EQ(rig.sys->stats().llc_misses.value(), 1u);
  EXPECT_EQ(rig.mcs.mc(0).reads(), 1u);

  const Cycle before = rig.eq.now();
  const Cycle t2 = rig.access(0, 0x1000, AccessKind::Read);
  EXPECT_EQ(t2, before + rig.cfg.l1_latency);  // L1 hit
  EXPECT_EQ(rig.sys->stats().l1_hits.value(), 1u);
}

TEST(Coherence, SecondCoreReadHitsLlc) {
  Rig rig;
  rig.access(0, 0x1000, AccessKind::Read);
  rig.access(1, 0x1000, AccessKind::Read);
  EXPECT_EQ(rig.sys->stats().llc_hits.value(), 1u);
  EXPECT_EQ(rig.mcs.mc(0).reads(), 1u);  // no second memory fetch
}

TEST(Coherence, WriteMissGetsExclusive) {
  Rig rig;
  rig.access(0, 0x2000, AccessKind::Write);
  // Subsequent write is a pure L1 hit (M state).
  const Cycle before = rig.eq.now();
  const Cycle t = rig.access(0, 0x2000, AccessKind::Write);
  EXPECT_EQ(t, before + rig.cfg.l1_latency);
}

TEST(Coherence, UpgradeInvalidatesSharers) {
  Rig rig;
  rig.access(0, 0x3000, AccessKind::Read);
  rig.access(1, 0x3000, AccessKind::Read);
  // Core 0 writes: core 1's copy must be invalidated.
  rig.access(0, 0x3000, AccessKind::Write);
  EXPECT_GE(rig.sys->stats().invalidations_sent.value(), 1u);
  // Core 1 re-reads: misses in L1 (its copy was invalidated).
  const auto misses_before = rig.sys->stats().l1_misses.value();
  rig.access(1, 0x3000, AccessKind::Read);
  EXPECT_EQ(rig.sys->stats().l1_misses.value(), misses_before + 1);
}

TEST(Coherence, DirtyDataForwardedToReader) {
  Rig rig;
  rig.access(0, 0x4000, AccessKind::Write);
  // Reader gets the data (from the owner) and the line becomes shared.
  rig.access(1, 0x4000, AccessKind::Read);
  // Writer can still read its (now S) copy as an L1 hit.
  const Cycle before = rig.eq.now();
  const Cycle t = rig.access(0, 0x4000, AccessKind::Read);
  EXPECT_EQ(t, before + rig.cfg.l1_latency);
}

TEST(Coherence, BypassSkipsLlc) {
  sim::EventQueue eq;
  noc::Mesh mesh(2, 2);
  noc::Network net(mesh, eq, {});
  mem::MemControllers mcs(1, {0}, {});
  AlwaysBypass policy;
  CoherentSystem sys(eq, net, mesh, mcs, policy, {}, 4);
  Cycle done = 0;
  sys.access(0, 0x1000, 0x1000, AccessKind::Read, [&](Cycle t) { done = t; });
  eq.run();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(sys.stats().llc_requests.value(), 0u);
  EXPECT_EQ(sys.stats().bypass_reads.value(), 1u);
  EXPECT_EQ(mcs.mc(0).reads(), 1u);
  EXPECT_EQ(sys.llc_resident_lines(), 0u);
}

TEST(Coherence, FlushL1WritesBackDirtyLines) {
  Rig rig;
  for (Addr a = 0x8000; a < 0x8200; a += 64) rig.access(0, a, AccessKind::Write);
  const auto wb_before = rig.sys->stats().llc_writebacks.value();
  bool flushed = false;
  rig.sys->flush_l1_range(CoreMask::single(0), {0x8000, 0x8200},
                          [&] { flushed = true; });
  rig.eq.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(rig.sys->stats().flush_l1_lines.value(), 8u);
  EXPECT_GT(rig.sys->stats().llc_writebacks.value(), wb_before);
  // After the flush, re-reading misses in L1.
  const auto misses = rig.sys->stats().l1_misses.value();
  rig.access(0, 0x8000, AccessKind::Read);
  EXPECT_EQ(rig.sys->stats().l1_misses.value(), misses + 1);
}

TEST(Coherence, FlushLlcEvictsToMemoryAndBackInvalidates) {
  Rig rig;
  for (Addr a = 0x9000; a < 0x9100; a += 64) rig.access(2, a, AccessKind::Write);
  // Push dirty data into the LLC by flushing the L1 first.
  bool l1done = false;
  rig.sys->flush_l1_range(CoreMask::single(2), {0x9000, 0x9100},
                          [&] { l1done = true; });
  rig.eq.run();
  ASSERT_TRUE(l1done);
  const auto writes_before = rig.mcs.mc(0).writes();
  bool llcdone = false;
  rig.sys->flush_llc_range(BankMask::first_n(4), {0x9000, 0x9100},
                           [&] { llcdone = true; });
  rig.eq.run();
  EXPECT_TRUE(llcdone);
  EXPECT_GT(rig.mcs.mc(0).writes(), writes_before);
  EXPECT_GT(rig.sys->stats().flush_llc_lines.value(), 0u);
  // Fully flushed: next read misses all the way to memory.
  const auto mem_reads = rig.mcs.mc(0).reads();
  rig.access(2, 0x9000, AccessKind::Read);
  EXPECT_EQ(rig.mcs.mc(0).reads(), mem_reads + 1);
}

TEST(Coherence, InclusiveEvictionBackInvalidatesL1) {
  HierarchyConfig small;
  small.llc_bank = {4 * kKiB, 2, 64};  // tiny LLC banks force evictions
  small.l1 = {8 * kKiB, 8, 64};
  Rig rig(small);
  // Stream enough lines through one bank to force LLC evictions.
  for (Addr a = 0; a < 64 * kKiB; a += 64) rig.access(0, a, AccessKind::Read);
  EXPECT_GT(rig.sys->stats().llc_evictions.value(), 0u);
}

TEST(Coherence, MergedMissesAllComplete) {
  Rig rig;
  int done = 0;
  rig.sys->access(0, 0x5000, 0x5000, AccessKind::Read, [&](Cycle) { ++done; });
  rig.sys->access(0, 0x5000, 0x5000, AccessKind::Read, [&](Cycle) { ++done; });
  rig.sys->access(0, 0x5040, 0x5040, AccessKind::Read, [&](Cycle) { ++done; });
  rig.eq.run();
  EXPECT_EQ(done, 3);
}

TEST(Coherence, MshrFullMissesEventuallyCompleteViaLlc) {
  // Structural hazard: with a single L1 MSHR, concurrent misses to distinct
  // lines serialize through back-off retries. Every access must eventually
  // complete — a lost retry would leave done < N and the queue drained.
  HierarchyConfig cfg;
  cfg.l1_mshrs = 1;
  Rig rig(cfg);
  int done = 0;
  for (Addr a = 0x9000; a < 0x9000 + 8 * 64; a += 64)
    rig.sys->access(0, a, a, AccessKind::Read, [&](Cycle) { ++done; });
  rig.eq.run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(rig.sys->stats().mshr_stalls.value(), 0u);
  EXPECT_EQ(rig.sys->mshr_outstanding(0), 0u);
}

TEST(Coherence, MshrFullMissesEventuallyCompleteViaBypass) {
  // Same hazard on the bypass/memory datapath (no LLC bank involved).
  sim::EventQueue eq;
  noc::Mesh mesh(2, 2);
  noc::Network net(mesh, eq, {});
  mem::MemControllers mcs(1, {0}, {});
  AlwaysBypass policy;
  HierarchyConfig cfg;
  cfg.l1_mshrs = 1;
  CoherentSystem sys(eq, net, mesh, mcs, policy, cfg, 4);
  int done = 0;
  for (Addr a = 0xA000; a < 0xA000 + 8 * 64; a += 64)
    sys.access(0, a, a, AccessKind::Read, [&](Cycle) { ++done; });
  eq.run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(sys.stats().mshr_stalls.value(), 0u);
  EXPECT_EQ(mcs.mc(0).reads(), 8u);
}

TEST(Coherence, NucaDistanceSampledOnDemand) {
  Rig rig;
  for (Addr a = 0; a < 4096; a += 64) rig.access(0, a, AccessKind::Read);
  EXPECT_GT(rig.sys->stats().nuca_distance.samples(), 0u);
  // On a 2x2 mesh from corner 0: distances are 0,1,1,2 interleaved -> mean 1.
  EXPECT_NEAR(rig.sys->stats().nuca_distance.mean(), 1.0, 0.01);
}
