// Tests of the experiment harness: runner, results cache, paper references,
// figure formatting.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "harness/figures.hpp"
#include "harness/paper_ref.hpp"
#include "harness/results_cache.hpp"
#include "harness/runner.hpp"
#include "workloads/workload.hpp"

using namespace tdn;
using namespace tdn::harness;

namespace {
struct CacheDirGuard {
  std::string dir;
  CacheDirGuard() {
    dir = (std::filesystem::temp_directory_path() /
           ("tdn_test_cache_" + std::to_string(::getpid())))
              .string();
    ::setenv("TDN_CACHE_DIR", dir.c_str(), 1);
    ::unsetenv("TDN_NO_CACHE");
  }
  ~CacheDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    ::unsetenv("TDN_CACHE_DIR");
  }
};
}  // namespace

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({3.0}), 3.0);
  EXPECT_THROW(geometric_mean({}), RequireError);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), RequireError);
}

TEST(ResultsCache, RoundTrip) {
  CacheDirGuard guard;
  std::map<std::string, double> m{{"a", 1.5}, {"b", 2.0}};
  ResultsCache::store("key1", m);
  const auto loaded = ResultsCache::load("key1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, m);
  EXPECT_FALSE(ResultsCache::load("missing").has_value());
}

TEST(ResultsCache, DisabledByEnv) {
  CacheDirGuard guard;
  ::setenv("TDN_NO_CACHE", "1", 1);
  EXPECT_FALSE(ResultsCache::enabled());
  ResultsCache::store("k", {{"a", 1.0}});
  EXPECT_FALSE(ResultsCache::load("k").has_value());
  ::unsetenv("TDN_NO_CACHE");
}

TEST(Runner, ExperimentProducesMetrics) {
  CacheDirGuard guard;
  RunConfig cfg;
  cfg.workload = "md5";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.params.scale = 0.1;
  const auto r = run_experiment(cfg, /*use_cache=*/false);
  EXPECT_EQ(r.workload, "md5");
  EXPECT_EQ(r.policy, "TD-NUCA");
  EXPECT_GT(r.get("sim.cycles"), 0.0);
  EXPECT_GT(r.get("workload.num_tasks"), 0.0);
  EXPECT_TRUE(r.has("fig3.td.notreused_blocks"));
  EXPECT_THROW(r.get("no.such.metric"), RequireError);
}

TEST(Runner, CacheReturnsIdenticalResults) {
  CacheDirGuard guard;
  RunConfig cfg;
  cfg.workload = "md5";
  cfg.policy = system::PolicyKind::SNuca;
  cfg.params.scale = 0.1;
  const auto first = run_experiment(cfg, true);   // simulates + stores
  const auto second = run_experiment(cfg, true);  // loads from cache
  EXPECT_EQ(first.metrics, second.metrics);
}

TEST(Runner, FingerprintSeparatesConfigs) {
  RunConfig a;
  a.workload = "md5";
  RunConfig b = a;
  b.params.scale = 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  RunConfig c = a;
  c.policy = system::PolicyKind::RNuca;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Runner, FindResult) {
  std::vector<RunResult> rs;
  RunResult r;
  r.workload = "lu";
  r.policy = "S-NUCA";
  r.metrics["x"] = 7;
  rs.push_back(r);
  EXPECT_DOUBLE_EQ(find_result(rs, "lu", system::PolicyKind::SNuca).get("x"),
                   7.0);
  EXPECT_THROW(find_result(rs, "lu", system::PolicyKind::TdNuca),
               RequireError);
}

TEST(PaperRef, KnownValues) {
  EXPECT_DOUBLE_EQ(*paper::fig8_speedup_td("lu"), 1.59);
  EXPECT_DOUBLE_EQ(*paper::fig8_speedup_td("gauss"), 1.26);
  EXPECT_DOUBLE_EQ(*paper::fig9_llc_accesses_td("md5"), 0.14);
  EXPECT_FALSE(paper::fig8_speedup_td("bogus").has_value());
  EXPECT_DOUBLE_EQ(paper::kFig8AvgTd, 1.18);
  EXPECT_DOUBLE_EQ(paper::kFig12AvgTd, 0.62);
}

TEST(Figures, NormalizedTableBuilds) {
  // Synthesize a result set: S-NUCA baseline 100 cycles, TD 50 everywhere.
  std::vector<RunResult> rs;
  for (const auto& w : workloads::paper_workload_names()) {
    RunResult s;
    s.workload = w;
    s.policy = "S-NUCA";
    s.metrics["sim.cycles"] = 100;
    rs.push_back(s);
    RunResult t;
    t.workload = w;
    t.policy = "TD-NUCA";
    t.metrics["sim.cycles"] = 50;
    rs.push_back(t);
  }
  NormalizedFigure fig;
  fig.title = "test";
  fig.metric = "sim.cycles";
  fig.invert = true;  // speedup
  fig.policies = {system::PolicyKind::TdNuca};
  fig.paper_ref = paper::fig8_speedup_td;
  fig.paper_avg = paper::kFig8AvgTd;
  const auto [table, gm] = normalized_table(fig, rs);
  EXPECT_DOUBLE_EQ(gm, 2.0);
  EXPECT_NE(table.to_string().find("geomean"), std::string::npos);
}
