// tdn::ckpt — snapshot codec, crash-safe snapshot files, and the
// checkpoint/restore contract for serving runs: an interrupted-and-resumed
// run finishes with bit-identical metrics (including p99/p999 tails) to an
// uninterrupted one (docs/serving.md §checkpoint/restore).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/snapshot.hpp"
#include "common/require.hpp"
#include "harness/runner.hpp"
#include "multi/mix.hpp"
#include "obs/latency_histogram.hpp"
#include "serve/serve_system.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

using namespace tdn;
using serve::ServeSystem;

namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("tdn_ckpt_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// The interrupt flag is process-global; every test that raises it must
/// lower it no matter how the assertion unwinds.
struct InterruptGuard {
  ~InterruptGuard() { ckpt::clear_interrupt(); }
};

workloads::WorkloadParams small_params() {
  workloads::WorkloadParams p;
  p.scale = 0.1;
  return p;
}

serve::ServeOptions serving() {
  serve::ServeOptions o;
  o.arrival = "poisson:gap=25k";
  o.horizon = 300'000;
  o.request_scale = 0.05;
  return o;
}

ckpt::Options cadence(const std::string& dir, Cycle every = 60'000) {
  ckpt::Options o;
  o.every = every;
  o.dir = dir;
  o.keep = 16;  // tests resume from every snapshot, not just the newest
  return o;
}

constexpr std::uint64_t kFp = 0x5eed5eed5eed5eedull;

/// Run one serving config to completion with checkpointing, collecting
/// snapshots into @p dir, and return its full metrics map.
std::map<std::string, double> reference_run(const system::SystemConfig& cfg,
                                            const multi::MixSpec& mix,
                                            const serve::ServeOptions& opts,
                                            const ckpt::Options& ck) {
  ServeSystem sys(cfg, mix, opts);
  sys.build(small_params());
  sys.set_checkpoint(ck, kFp);
  sys.run();
  EXPECT_TRUE(sys.completed());
  EXPECT_GT(sys.snapshots_written(), 0u);
  return sys.collect_stats().all();
}

/// Rebuild the machine fresh, restore @p snap, run to completion, and
/// return the final metrics map.
std::map<std::string, double> resumed_run(const system::SystemConfig& cfg,
                                          const multi::MixSpec& mix,
                                          const serve::ServeOptions& opts,
                                          const ckpt::Options& ck,
                                          const ckpt::Snapshot& snap) {
  ServeSystem sys(cfg, mix, opts);
  sys.build(small_params());
  ckpt::Options quiet = ck;
  quiet.dir.clear();  // resumed lineages fold identically but write nothing
  sys.set_checkpoint(quiet, kFp);
  sys.resume_from(snap);
  EXPECT_TRUE(sys.resumed());
  EXPECT_EQ(sys.resume_cycle(), snap.cycle);
  sys.run();
  EXPECT_TRUE(sys.completed());
  return sys.collect_stats().all();
}

/// EXPECT_EQ over whole metric maps, with a readable diff on mismatch.
void expect_metrics_identical(const std::map<std::string, double>& a,
                              const std::map<std::string, double>& b,
                              const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    ASSERT_NE(it, b.end()) << label << ": missing key " << k;
    EXPECT_EQ(v, it->second) << label << ": key " << k;
  }
}

}  // namespace

// --- codec ----------------------------------------------------------------

TEST(CkptCodec, RoundTripsEveryType) {
  ckpt::Encoder e;
  e.u8(7);
  e.u32(0xDEADBEEFu);
  e.u64(0x0123456789ABCDEFull);
  e.f64(-1234.5678e-9);
  e.str("quiescent");
  e.u64_vec({1, 0, 0xFFFFFFFFFFFFFFFFull});
  const std::string bytes = e.take();

  ckpt::Decoder d(bytes);
  EXPECT_EQ(d.u8(), 7u);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.f64(), -1234.5678e-9);
  EXPECT_EQ(d.str(), "quiescent");
  EXPECT_EQ(d.u64_vec(), (std::vector<std::uint64_t>{1, 0, 0xFFFFFFFFFFFFFFFFull}));
  EXPECT_TRUE(d.done());
}

TEST(CkptCodec, DecoderThrowsOnTruncationNeverReadsPast) {
  ckpt::Encoder e;
  e.u64(42);
  const std::string bytes = e.take();
  ckpt::Decoder d(bytes.substr(0, 5));
  EXPECT_THROW(d.u64(), ckpt::SnapshotError);
  ckpt::Decoder d2(bytes);
  (void)d2.u64();
  EXPECT_THROW(d2.u8(), ckpt::SnapshotError);
}

// --- histogram restore ----------------------------------------------------

TEST(CkptHistogram, RestoreReproducesEveryPercentile) {
  obs::LatencyHistogram h;
  for (Cycle v : {3u, 17u, 17u, 950u, 9'000u, 1'000'000u}) h.add(v);

  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> counts{};
  for (std::size_t i = 0; i < obs::LatencyHistogram::kBuckets; ++i)
    counts[i] = h.bucket_count(i);
  obs::LatencyHistogram r;
  r.restore(counts, h.count(), h.sum(), h.min(), h.max());

  EXPECT_EQ(r.count(), h.count());
  EXPECT_EQ(r.mean(), h.mean());
  EXPECT_EQ(r.min(), h.min());
  EXPECT_EQ(r.max(), h.max());
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(r.percentile(q), h.percentile(q)) << q;
  // A restored histogram keeps accumulating exactly like the original.
  h.add(1);
  r.add(1);
  EXPECT_EQ(r.min(), h.min());
  EXPECT_EQ(r.percentile(0.5), h.percentile(0.5));
}

// --- snapshot files -------------------------------------------------------

TEST(CkptSnapshotFile, WriteLoadRoundTripAndOrdering) {
  TempDir dir("roundtrip");
  ckpt::Options o = cadence(dir.path);
  ASSERT_TRUE(ckpt::write_snapshot(o, kFp, 100, "payload-a").has_value());
  ASSERT_TRUE(ckpt::write_snapshot(o, kFp, 250, "payload-b").has_value());

  const auto latest = ckpt::load_latest(dir.path, kFp);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->cycle, 250u);
  EXPECT_EQ(latest->payload, "payload-b");
  EXPECT_EQ(latest->config_fingerprint, kFp);
  EXPECT_FALSE(latest->emergency);

  const auto all = ckpt::load_all(dir.path, kFp);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].cycle, 100u);
  EXPECT_EQ(all[1].cycle, 250u);

  // A different configuration's snapshots are invisible.
  EXPECT_FALSE(ckpt::load_latest(dir.path, kFp ^ 1).has_value());
}

TEST(CkptSnapshotFile, PruneKeepsOnlyTheNewest) {
  TempDir dir("prune");
  ckpt::Options o = cadence(dir.path);
  o.keep = 2;
  for (Cycle c : {100u, 200u, 300u, 400u})
    ASSERT_TRUE(ckpt::write_snapshot(o, kFp, c, "p").has_value());
  const auto all = ckpt::load_all(dir.path, kFp);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].cycle, 300u);
  EXPECT_EQ(all[1].cycle, 400u);
}

TEST(CkptSnapshotFile, CorruptTornAndForeignFilesAreNeverTrusted) {
  TempDir dir("corrupt");
  ckpt::Options o = cadence(dir.path);
  const auto p1 = ckpt::write_snapshot(o, kFp, 100, "good-payload");
  const auto p2 = ckpt::write_snapshot(o, kFp, 200, "newer-payload");
  ASSERT_TRUE(p1.has_value() && p2.has_value());

  // Flip one payload byte of the newest snapshot: checksum must reject it
  // and the loader must fall back to the older valid one.
  {
    std::fstream f(*p2, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(48);  // first payload byte
    f.put('X');
  }
  std::vector<std::string> skipped;
  const auto latest = ckpt::load_latest(dir.path, kFp, &skipped);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->cycle, 100u);
  EXPECT_EQ(latest->payload, "good-payload");
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find(*p2), std::string::npos);

  // Truncated mid-header (a torn write that bypassed the atomic rename).
  {
    std::ofstream f(dir.path + "/snap-0000000000000000-00000000000000000300.ckpt",
                    std::ios::binary);
    f << "TDNC";
  }
  // Garbage that merely matches the name pattern.
  {
    std::ofstream f(dir.path + "/snap-junk.ckpt", std::ios::binary);
    f << std::string(64, 'z');
  }
  const auto still = ckpt::load_latest(dir.path, kFp);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->cycle, 100u);
}

// --- event-queue fast-forward ---------------------------------------------

TEST(CkptEventQueue, FastForwardIsRestoreOnly) {
  sim::EventQueue eq;
  eq.fast_forward(5'000);
  EXPECT_EQ(eq.now(), 5'000u);
  int fired_at = 0;
  eq.schedule_in(10, [&] { fired_at = static_cast<int>(eq.now()); });
  eq.run_until(1'000'000);
  EXPECT_EQ(fired_at, 5'010);

  sim::EventQueue used;
  used.schedule_in(1, [] {});
  used.run_until(1'000'000);
  EXPECT_THROW(used.fast_forward(99), RequireError);
}

// --- serve checkpoint/restore: the headline guarantee ----------------------

TEST(CkptServe, ResumeFromEverySnapshotIsBitIdentical) {
  TempDir dir("bitident");
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  const serve::ServeOptions opts = serving();
  const ckpt::Options ck = cadence(dir.path);

  const auto reference = reference_run(cfg, mix, opts, ck);
  const auto snaps = ckpt::load_all(dir.path, kFp);
  ASSERT_GE(snaps.size(), 2u) << "cadence produced too few snapshots";

  for (const ckpt::Snapshot& snap : snaps) {
    const auto resumed = resumed_run(cfg, mix, opts, ck, snap);
    expect_metrics_identical(reference, resumed,
                             "resume@" + std::to_string(snap.cycle));
  }
}

// The ISSUE acceptance bar for tdn::vm: a serving run with huge pages
// enabled checkpoints and resumes bit-identically. The snapshot carries the
// buddy allocator (payload v2 AllocState::vm_words) and cold-normalization
// drops TLBs + paging-structure caches on both lineages.
TEST(CkptServe, VmHugePagesResumeIsBitIdentical) {
  TempDir dir("vmident");
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.vm.enabled = true;
  cfg.vm.thp = vm::ThpPolicy::Always;
  cfg.vm.fragmentation = 0.5;  // exercise punctured-pool PRNG state too
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  const serve::ServeOptions opts = serving();
  const ckpt::Options ck = cadence(dir.path);

  const auto reference = reference_run(cfg, mix, opts, ck);
  // vm.pages_2m is a point-in-time gauge and the last fold drops mappings,
  // so huge-page evidence comes from monotonic counters: the buddy pool
  // hands out whole 512-frame runs, and walks only happen in vm mode.
  EXPECT_GE(reference.at("mem.frames_used"), 512.0) << "huge pages never mapped";
  EXPECT_GT(reference.at("vm.walks"), 0.0);
  const auto snaps = ckpt::load_all(dir.path, kFp);
  ASSERT_GE(snaps.size(), 2u) << "cadence produced too few snapshots";

  for (const ckpt::Snapshot& snap : snaps) {
    const auto resumed = resumed_run(cfg, mix, opts, ck, snap);
    expect_metrics_identical(reference, resumed,
                             "vm resume@" + std::to_string(snap.cycle));
  }
}

TEST(CkptServe, AdaptiveResumeIsBitIdentical) {
  TempDir dir("adaptive");
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  serve::ServeOptions opts = serving();
  opts.adaptive = true;
  opts.epoch = 30'000;
  opts.weights = "1:3";
  // Adaptive mode: the cadence must ride the epoch-tick chain.
  const ckpt::Options ck = cadence(dir.path, 60'000);

  const auto reference = reference_run(cfg, mix, opts, ck);
  const auto snaps = ckpt::load_all(dir.path, kFp);
  ASSERT_GE(snaps.size(), 1u);
  for (const ckpt::Snapshot& snap : snaps) {
    const auto resumed = resumed_run(cfg, mix, opts, ck, snap);
    expect_metrics_identical(reference, resumed,
                             "adaptive resume@" + std::to_string(snap.cycle));
  }
}

TEST(CkptServe, AdaptiveCadenceMustRideTheEpoch) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  serve::ServeOptions opts = serving();
  opts.adaptive = true;
  opts.epoch = 30'000;
  ServeSystem sys(cfg, multi::MixSpec::parse("gauss+histo"), opts);
  sys.build(small_params());
  EXPECT_THROW(sys.set_checkpoint(cadence("", 45'000), kFp), RequireError);
}

// Satellite: a degraded machine (bank evacuation + link dog-leg rerouting)
// crossing a checkpoint/restore cycle keeps the serving invariants AND the
// bit-identity guarantee — fault health is replayed into the rebuilt
// machine, not re-simulated.
TEST(CkptServe, DegradedModeSurvivesRestore) {
  TempDir dir("degraded");
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.fault.plan = "bank_fail@3:cycle=40k,link_fail@(1,1)-(2,1):cycle=200k";
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  const serve::ServeOptions opts = serving();
  const ckpt::Options ck = cadence(dir.path);

  const auto reference = reference_run(cfg, mix, opts, ck);
  EXPECT_EQ(reference.at("serve.offered"),
            reference.at("serve.shed") + reference.at("serve.completed"));

  const auto snaps = ckpt::load_all(dir.path, kFp);
  ASSERT_GE(snaps.size(), 2u);
  // Folds only land at quiescent points, so their cycles shift with the
  // degraded machine's drains — but the newest snapshot must follow both
  // faults, so restoring it replays the whole plan (dead bank + dead link)
  // as health-state mutations into the rebuilt machine.
  EXPECT_GT(snaps.front().cycle, 40'000u);
  EXPECT_GT(snaps.back().cycle, 200'000u);

  for (const ckpt::Snapshot& snap : snaps) {
    const auto resumed = resumed_run(cfg, mix, opts, ck, snap);
    expect_metrics_identical(reference, resumed,
                             "degraded resume@" + std::to_string(snap.cycle));
    EXPECT_EQ(resumed.at("serve.offered"),
              resumed.at("serve.shed") + resumed.at("serve.completed"));
    EXPECT_LE(resumed.at("serve.queue.max_depth"),
              static_cast<double>(opts.max_pending));
  }
}

// --- interruption ---------------------------------------------------------

TEST(CkptServe, InterruptPublishesEmergencySnapshotThatResumes) {
  TempDir dir("interrupt");
  InterruptGuard guard;
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  const serve::ServeOptions opts = serving();
  const ckpt::Options ck = cadence(dir.path);

  ServeSystem sys(cfg, mix, opts);
  sys.build(small_params());
  sys.set_checkpoint(ck, kFp);
  // Raised before run(): the first control event polls it, drains to the
  // next quiescent point, publishes the emergency snapshot and unwinds.
  ckpt::request_interrupt();
  EXPECT_THROW(sys.run(), ckpt::InterruptedError);
  EXPECT_FALSE(sys.completed());

  const auto latest = ckpt::load_latest(dir.path, kFp);
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->emergency);

  ckpt::clear_interrupt();
  const auto resumed = resumed_run(cfg, mix, opts, ck, *latest);
  EXPECT_EQ(resumed.at("serve.offered"),
            resumed.at("serve.shed") + resumed.at("serve.completed"));
  EXPECT_GT(resumed.at("serve.completed"), 0.0);
  EXPECT_GE(resumed.at("serve.sojourn.p999"), resumed.at("serve.sojourn.p99"));
}

// --- guard rails ----------------------------------------------------------

TEST(CkptServe, ResumeRejectsForeignOrInconsistentSnapshots) {
  TempDir dir("reject");
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");
  const serve::ServeOptions opts = serving();
  const ckpt::Options ck = cadence(dir.path);
  (void)reference_run(cfg, mix, opts, ck);
  const auto snaps = ckpt::load_all(dir.path, kFp);
  ASSERT_GE(snaps.size(), 1u);

  // Wrong fingerprint: refused before any payload is touched.
  {
    ServeSystem sys(cfg, mix, opts);
    sys.build(small_params());
    sys.set_checkpoint(ck, kFp ^ 0xBAD);
    EXPECT_THROW(sys.resume_from(snaps[0]), RequireError);
  }
  // Same fingerprint claim, different actual configuration: the regenerated
  // trace disagrees with the snapshot and validation rejects it.
  {
    serve::ServeOptions other = serving();
    other.arrival = "poisson:gap=12k";
    ServeSystem sys(cfg, mix, other);
    sys.build(small_params());
    sys.set_checkpoint(ck, kFp);
    EXPECT_THROW(sys.resume_from(snaps[0]), RequireError);
  }
  // Truncated payload: decoding must fail loudly, never misinterpret.
  {
    ckpt::Snapshot torn = snaps[0];
    torn.payload.resize(torn.payload.size() / 2);
    ServeSystem sys(cfg, mix, opts);
    sys.build(small_params());
    sys.set_checkpoint(ck, kFp);
    EXPECT_THROW(sys.resume_from(torn), ckpt::SnapshotError);
  }
}

TEST(CkptServe, WatchdogIsArmedAndQuietInServingRuns) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.fault.watchdog_budget = 50'000;
  ServeSystem sys(cfg, multi::MixSpec::parse("gauss+histo"), serving());
  sys.build(small_params());
  EXPECT_EQ(sys.watchdog(), nullptr);  // built lazily by run()
  sys.run();
  ASSERT_NE(sys.watchdog(), nullptr);
  EXPECT_FALSE(sys.watchdog()->fired());
  EXPECT_GT(sys.watchdog()->ticks(), 0u);
}

// --- harness plumbing -----------------------------------------------------

TEST(CkptHarness, FingerprintCoversCadenceNotPlumbing) {
  harness::RunConfig base;
  base.workload = "gauss+histo";
  base.policy = system::PolicyKind::TdNuca;
  base.serve.arrival = "poisson:gap=25k";

  harness::RunConfig with_ckpt = base;
  with_ckpt.ckpt.every = 60'000;
  EXPECT_NE(base.fingerprint(), with_ckpt.fingerprint());

  harness::RunConfig other_cadence = with_ckpt;
  other_cadence.ckpt.every = 120'000;
  EXPECT_NE(with_ckpt.fingerprint(), other_cadence.fingerprint());

  // dir / resume / keep are harness plumbing, not simulated behavior.
  harness::RunConfig plumbing = with_ckpt;
  plumbing.ckpt.dir = "/somewhere/else";
  plumbing.ckpt.resume = true;
  plumbing.ckpt.keep = 9;
  EXPECT_EQ(with_ckpt.fingerprint(), plumbing.fingerprint());

  // Checkpoint options without serving never alter a closed run's key.
  harness::RunConfig closed;
  closed.workload = "gauss";
  harness::RunConfig closed_ck = closed;
  closed_ck.ckpt.every = 60'000;
  EXPECT_EQ(closed.fingerprint(), closed_ck.fingerprint());
}

TEST(CkptHarness, RunExperimentResumesFromTheNewestSnapshot) {
  TempDir dir("harness");
  ::setenv("TDN_NO_CACHE", "1", 1);
  harness::RunConfig cfg;
  cfg.workload = "gauss+histo";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.params = small_params();
  cfg.serve.arrival = "poisson:gap=25k";
  cfg.serve.horizon = 300'000;
  cfg.serve.request_scale = 0.05;
  cfg.ckpt = cadence(dir.path);

  const auto reference = harness::run_experiment(cfg, /*use_cache=*/false);
  ASSERT_FALSE(ckpt::load_all(dir.path, cfg.fingerprint()).empty());

  cfg.ckpt.resume = true;
  const auto resumed = harness::run_experiment(cfg, /*use_cache=*/false);
  EXPECT_EQ(reference.metrics, resumed.metrics);
  ::unsetenv("TDN_NO_CACHE");
}
