// Unit tests: S-NUCA interleaving, TD-NUCA hardware mapping, R-NUCA page
// classification state machine.
#include <gtest/gtest.h>

#include <set>

#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "nuca/rnuca.hpp"
#include "nuca/snuca.hpp"
#include "nuca/tdnuca_policy.hpp"
#include "sim/event_queue.hpp"
#include "vm/mmu.hpp"

using namespace tdn;
using namespace tdn::nuca;

TEST(SNuca, InterleavesAcrossAllBanks) {
  SNucaPolicy p(16);
  std::set<BankId> used;
  for (Addr a = 0; a < 64 * 64; a += 64)
    used.insert(p.map(0, a, a, AccessKind::Read).bank);
  EXPECT_EQ(used.size(), 16u);
  // Mapping is requester-independent.
  EXPECT_EQ(p.map(0, 0x40, 0x40, AccessKind::Read).bank,
            p.map(9, 0x40, 0x40, AccessKind::Read).bank);
}

TEST(TdNucaPolicy, FallsBackToSNucaOnRrtMiss) {
  noc::Mesh mesh(4, 4);
  TdNucaPolicy p(mesh, 16, {});
  const auto d = p.map(2, 0x1000, 0x1000, AccessKind::Read);
  EXPECT_EQ(d.kind, MapDecision::Kind::Bank);
  EXPECT_EQ(d.bank, snuca_bank(0x1000, 16));
  EXPECT_EQ(d.lookup_latency, 1u);  // RRT consulted on every miss
  EXPECT_EQ(p.rrt_misses(), 1u);
}

TEST(TdNucaPolicy, ZeroMaskBypasses) {
  noc::Mesh mesh(4, 4);
  TdNucaPolicy p(mesh, 16, {});
  p.rrt(3).register_range({0x1000, 0x2000}, BankMask::none());
  const auto d = p.map(3, 0x1800, 0x1800, AccessKind::Read);
  EXPECT_EQ(d.kind, MapDecision::Kind::Bypass);
  // Other cores' RRTs are independent.
  EXPECT_EQ(p.map(4, 0x1800, 0x1800, AccessKind::Read).kind,
            MapDecision::Kind::Bank);
}

TEST(TdNucaPolicy, SingleBitMapsToThatBank) {
  noc::Mesh mesh(4, 4);
  TdNucaPolicy p(mesh, 16, {});
  p.rrt(0).register_range({0x1000, 0x2000}, BankMask::single(7));
  const auto d = p.map(0, 0x1040, 0x1040, AccessKind::Write);
  EXPECT_EQ(d.kind, MapDecision::Kind::Bank);
  EXPECT_EQ(d.bank, 7u);
}

TEST(TdNucaPolicy, FourBitMaskInterleavesWithinCluster) {
  noc::Mesh mesh(4, 4);
  TdNucaPolicy p(mesh, 16, {});
  const BankMask cluster = p.clusters().mask_of(1);
  p.rrt(0).register_range({0, 0x10000}, cluster);
  std::set<BankId> used;
  for (Addr a = 0; a < 64 * 16; a += 64)
    used.insert(p.map(0, a, a, AccessKind::Read).bank);
  EXPECT_EQ(used.size(), 4u);
  for (BankId b : used) EXPECT_TRUE(cluster.test(b));
}

TEST(TdNucaPolicy, LatencyConfigurable) {
  noc::Mesh mesh(4, 4);
  TdNucaConfig cfg;
  cfg.rrt_latency = 3;
  TdNucaPolicy p(mesh, 16, cfg);
  EXPECT_EQ(p.map(0, 0, 0, AccessKind::Read).lookup_latency, 3u);
}

namespace {
struct RNucaRig {
  noc::Mesh mesh{4, 4};
  mem::PageTable pt;
  RNucaPolicy p{mesh, 16, pt};
};
}  // namespace

TEST(RNuca, FirstTouchIsPrivateToLocalBank) {
  RNucaRig rig;
  rig.p.on_access(5, 0x10000000, AccessKind::Read);
  const Addr pa = rig.pt.translate(0x10000000);
  EXPECT_EQ(rig.p.map(5, 0x10000000, pa, AccessKind::Read).bank, 5u);
  const auto c = rig.p.census();
  EXPECT_EQ(c.private_pages, 1u);
}

TEST(RNuca, SecondCoreReadMakesSharedRO) {
  RNucaRig rig;
  rig.p.on_access(0, 0x10000000, AccessKind::Read);
  const Cycle penalty = rig.p.on_access(1, 0x10000000, AccessKind::Read);
  EXPECT_GT(penalty, 0u);
  const auto c = rig.p.census();
  EXPECT_EQ(c.shared_ro_pages, 1u);
  EXPECT_EQ(rig.p.reclassifications(), 1u);
  // Shared-RO pages map within the requester's quadrant cluster.
  const Addr pa = rig.pt.translate(0x10000000);
  const BankId b = rig.p.map(1, 0x10000000, pa, AccessKind::Read).bank;
  EXPECT_EQ(rig.mesh.cluster_of(b), rig.mesh.cluster_of(1));
}

TEST(RNuca, WrittenThenSharedBecomesShared) {
  RNucaRig rig;
  rig.p.on_access(0, 0x10000000, AccessKind::Write);
  rig.p.on_access(1, 0x10000000, AccessKind::Read);
  EXPECT_EQ(rig.p.census().shared_pages, 1u);
  const Addr pa = rig.pt.translate(0x10000000);
  EXPECT_EQ(rig.p.map(1, 0x10000000, pa, AccessKind::Read).bank,
            snuca_bank(pa, 16));
}

TEST(RNuca, WriteToSharedRODemotes) {
  RNucaRig rig;
  rig.p.on_access(0, 0x10000000, AccessKind::Read);
  rig.p.on_access(1, 0x10000000, AccessKind::Read);  // -> SharedRO
  ASSERT_EQ(rig.p.census().shared_ro_pages, 1u);
  rig.p.on_access(2, 0x10000000, AccessKind::Write);
  EXPECT_EQ(rig.p.census().shared_pages, 1u);
  EXPECT_EQ(rig.p.reclassifications(), 2u);
}

TEST(RNuca, SharedNeverReturnsToPrivate) {
  RNucaRig rig;
  rig.p.on_access(0, 0x10000000, AccessKind::Write);
  rig.p.on_access(1, 0x10000000, AccessKind::Write);
  // Even after core 1 becomes the only user, the page stays Shared
  // (the key limitation TD-NUCA addresses, paper Sec. II-C).
  for (int i = 0; i < 10; ++i)
    rig.p.on_access(1, 0x10000000, AccessKind::Write);
  EXPECT_EQ(rig.p.census().shared_pages, 1u);
  EXPECT_EQ(rig.p.census().private_pages, 0u);
}

TEST(RNuca, TlbShootdownOnReclassification) {
  RNucaRig rig;
  sim::EventQueue eq;
  vm::Mmu mmu0(0, eq, nullptr, rig.pt, {}, {});
  vm::Mmu mmu1(1, eq, nullptr, rig.pt, {}, {});
  rig.p.set_mmus({&mmu0, &mmu1});
  mmu0.charge_translation(0x10000000);
  rig.p.on_access(0, 0x10000000, AccessKind::Read);
  rig.p.on_access(1, 0x10000000, AccessKind::Read);
  // Previous owner shot down.
  EXPECT_FALSE(mmu0.legacy_tlb().contains(0x10000000));
  EXPECT_EQ(mmu0.tlb_shootdowns(), 1u);
}

TEST(RNuca, DistinctPagesClassifyIndependently) {
  RNucaRig rig;
  rig.p.on_access(0, 0x10000000, AccessKind::Read);
  rig.p.on_access(0, 0x10002000, AccessKind::Write);
  rig.p.on_access(3, 0x10002000, AccessKind::Read);
  const auto c = rig.p.census();
  EXPECT_EQ(c.private_pages, 1u);
  EXPECT_EQ(c.shared_pages, 1u);
}
