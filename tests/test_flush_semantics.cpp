// Focused tests of flush-engine corner cases: flushes racing in-flight
// coherence transactions, flush pacing, and bypass-line flushes.
#include <gtest/gtest.h>

#include "coherence/coherent_system.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;
using namespace tdn::coherence;

namespace {
struct Rig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  HierarchyConfig cfg;
  std::unique_ptr<CoherentSystem> sys;
  Rig() { sys = std::make_unique<CoherentSystem>(eq, net, mesh, mcs, policy,
                                                 cfg, 4); }
};
}  // namespace

TEST(FlushSemantics, FlushDefersForInFlightTransaction) {
  Rig rig;
  // Warm the line into the LLC, flush the L1 copy so a later access misses
  // in L1 but hits the (dirty) LLC.
  bool warm = false;
  rig.sys->access(0, 0x1000, 0x1000, AccessKind::Write,
                  [&](Cycle) { warm = true; });
  rig.eq.run();
  ASSERT_TRUE(warm);
  bool l1_flushed = false;
  rig.sys->flush_l1_range(CoreMask::single(0), {0x1000, 0x1040},
                          [&] { l1_flushed = true; });
  rig.eq.run();
  ASSERT_TRUE(l1_flushed);

  // Launch a demand access and, while its bank transaction is in flight,
  // flush the same line from the LLC: the flush must defer behind the
  // blocked line and both must complete.
  bool access_done = false;
  bool flush_done = false;
  rig.sys->access(1, 0x1000, 0x1000, AccessKind::Read,
                  [&](Cycle) { access_done = true; });
  rig.eq.schedule_at(rig.eq.now() + 5, [&] {
    rig.sys->flush_llc_range(BankMask::first_n(4), {0x1000, 0x1040},
                             [&] { flush_done = true; });
  });
  rig.eq.run();
  EXPECT_TRUE(access_done);
  EXPECT_TRUE(flush_done);
  // The line is gone from the LLC afterwards.
  const auto reads_before = rig.mcs.mc(0).reads();
  bool refetch = false;
  rig.sys->access(2, 0x1000, 0x1000, AccessKind::Read,
                  [&](Cycle) { refetch = true; });
  rig.eq.run();
  EXPECT_TRUE(refetch);
  EXPECT_EQ(rig.mcs.mc(0).reads(), reads_before + 1);
}

TEST(FlushSemantics, WritebacksArePacedByScanRate) {
  Rig rig;
  // Dirty 32 lines in core 0's L1.
  for (Addr a = 0x8000; a < 0x8000 + 32 * 64; a += 64) {
    bool done = false;
    rig.sys->access(0, a, a, AccessKind::Write, [&](Cycle) { done = true; });
    rig.eq.run();
    ASSERT_TRUE(done);
  }
  const Cycle start = rig.eq.now();
  bool flushed = false;
  rig.sys->flush_l1_range(CoreMask::single(0), {0x8000, 0x8000 + 32 * 64},
                          [&] { flushed = true; });
  rig.eq.run();
  ASSERT_TRUE(flushed);
  // 32 lines at flush_lines_per_cycle=1 cannot finish faster than the scan.
  EXPECT_GE(rig.eq.now() - start, 32u / rig.cfg.flush_lines_per_cycle);
}

TEST(FlushSemantics, FlushEngineBusyAccounted) {
  Rig rig;
  bool done = false;
  rig.sys->access(3, 0x9000, 0x9000, AccessKind::Write,
                  [&](Cycle) { done = true; });
  rig.eq.run();
  ASSERT_TRUE(done);
  ASSERT_EQ(rig.sys->flush_busy_cycles(3), 0u);
  rig.sys->flush_l1_range(CoreMask::single(3), {0x9000, 0xA000}, [] {});
  rig.eq.run();
  EXPECT_GT(rig.sys->flush_busy_cycles(3), 0u);
}

TEST(FlushSemantics, EmptyRangeCompletesImmediately) {
  Rig rig;
  bool done = false;
  rig.sys->flush_l1_range(CoreMask::single(0), {0x1000, 0x1000},
                          [&] { done = true; });
  rig.eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.sys->stats().flush_l1_lines.value(), 0u);
}

TEST(FlushSemantics, FlushOfCleanLinesSendsNoWritebacks) {
  Rig rig;
  for (Addr a = 0xA000; a < 0xA200; a += 64) {
    bool done = false;
    rig.sys->access(1, a, a, AccessKind::Read, [&](Cycle) { done = true; });
    rig.eq.run();
    ASSERT_TRUE(done);
  }
  const auto wb_before = rig.sys->stats().flush_writebacks.value();
  rig.sys->flush_l1_range(CoreMask::single(1), {0xA000, 0xA200}, [] {});
  rig.eq.run();
  EXPECT_EQ(rig.sys->stats().flush_writebacks.value(), wb_before);
  EXPECT_EQ(rig.sys->stats().flush_l1_lines.value(), 8u);
}
