// Unit tests: common value types, masks, PRNG, error handling.
#include <gtest/gtest.h>

#include <set>

#include "common/prng.hpp"
#include "common/log.hpp"
#include "common/require.hpp"
#include "common/tile_mask.hpp"
#include "common/types.hpp"

using namespace tdn;

TEST(AddrRange, SizeEmptyContains) {
  AddrRange r{100, 200};
  EXPECT_EQ(r.size(), 100u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(199));
  EXPECT_FALSE(r.contains(200));
  EXPECT_FALSE(r.contains(99));
  EXPECT_TRUE((AddrRange{5, 5}).empty());
}

TEST(AddrRange, Overlaps) {
  AddrRange a{0, 100};
  EXPECT_TRUE(a.overlaps({50, 150}));
  EXPECT_TRUE(a.overlaps({99, 100}));
  EXPECT_FALSE(a.overlaps({100, 200}));
  EXPECT_FALSE((AddrRange{100, 200}).overlaps(a));
  EXPECT_TRUE(a.overlaps({0, 1}));
  EXPECT_TRUE(a.contains_range({10, 90}));
  EXPECT_FALSE(a.contains_range({10, 101}));
}

TEST(Align, UpDown) {
  EXPECT_EQ(align_down(127, 64), 64u);
  EXPECT_EQ(align_down(128, 64), 128u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(0, 64), 0u);
}

TEST(Pow2, Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(16), 4u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(TileMask, BasicOps) {
  TileMask m;
  EXPECT_TRUE(m.empty());
  m.set(3);
  m.set(15);
  EXPECT_EQ(m.count(), 2);
  EXPECT_TRUE(m.test(3));
  EXPECT_FALSE(m.test(4));
  m.clear(3);
  EXPECT_EQ(m.count(), 1);
  EXPECT_EQ(m.sole_bit(), 15u);
}

TEST(TileMask, Factories) {
  EXPECT_TRUE(TileMask::none().empty());
  EXPECT_EQ(TileMask::single(7).sole_bit(), 7u);
  EXPECT_EQ(TileMask::first_n(16).count(), 16);
  EXPECT_EQ(TileMask::first_n(16).bits(), 0xFFFFull);
}

TEST(TileMask, NthBitAndForEach) {
  TileMask m;
  m.set(2);
  m.set(5);
  m.set(11);
  EXPECT_EQ(m.nth_bit(0), 2u);
  EXPECT_EQ(m.nth_bit(1), 5u);
  EXPECT_EQ(m.nth_bit(2), 11u);
  std::vector<CoreId> seen;
  m.for_each([&](CoreId c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<CoreId>{2, 5, 11}));
}

TEST(TileMask, SetAlgebra) {
  TileMask a = TileMask::single(1) | TileMask::single(2);
  TileMask b = TileMask::single(2) | TileMask::single(3);
  EXPECT_EQ((a & b).sole_bit(), 2u);
  a |= b;
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.to_string(4), "1110");
}

TEST(Require, ThrowsWithMessage) {
  try {
    TDN_REQUIRE(false, "something broke");
    FAIL() << "should have thrown";
  } catch (const RequireError& e) {
    EXPECT_NE(std::string(e.what()).find("something broke"), std::string::npos);
  }
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, BoundedAndDouble) {
  SplitMix64 r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 1000 draws
}

TEST(Fnv1a, StableAndSensitive) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_EQ(fnv1a64(a, 5), fnv1a64(a, 5));
  EXPECT_NE(fnv1a64(a, 5), fnv1a64(b, 5));
}

TEST(Log, ConfigureBareLevelAppliesEverywhere) {
  log::configure("error");
  EXPECT_EQ(log::level(), log::Level::Error);
  EXPECT_EQ(log::level(log::Sub::Noc), log::Level::Error);
  EXPECT_EQ(log::level(log::Sub::Cache), log::Level::Error);
  log::configure("warn");  // restore default
}

TEST(Log, ConfigurePerSubsystemOverrides) {
  EXPECT_TRUE(log::configure("info,noc=debug,cache=trace"));
  EXPECT_EQ(log::level(log::Sub::General), log::Level::Info);
  EXPECT_EQ(log::level(log::Sub::Noc), log::Level::Debug);
  EXPECT_EQ(log::level(log::Sub::Cache), log::Level::Trace);
  EXPECT_EQ(log::level(log::Sub::Runtime), log::Level::Info);
  log::configure("warn");
}

TEST(Log, ConfigureRejectsBadTokensButAppliesGoodOnes) {
  log::configure("warn");
  EXPECT_FALSE(log::configure("bogus"));
  EXPECT_FALSE(log::configure("noc=nope"));
  EXPECT_FALSE(log::configure("nosuchsub=debug"));
  // Valid entries in a partially bad spec still apply.
  EXPECT_FALSE(log::configure("mem=debug,junk"));
  EXPECT_EQ(log::level(log::Sub::Mem), log::Level::Debug);
  log::configure("warn");
}

TEST(Log, SetLevelSingleSubsystem) {
  log::configure("warn");
  log::set_level(log::Sub::Obs, log::Level::Trace);
  EXPECT_EQ(log::level(log::Sub::Obs), log::Level::Trace);
  EXPECT_EQ(log::level(log::Sub::Sim), log::Level::Warn);
  log::configure("warn");
}

TEST(Log, SubNamesRoundTripThroughConfigure) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(log::Sub::kCount); ++i) {
    const auto sub = static_cast<log::Sub>(i);
    EXPECT_TRUE(log::configure(std::string(log::sub_name(sub)) + "=debug"));
    EXPECT_EQ(log::level(sub), log::Level::Debug);
  }
  log::configure("warn");
}
